#!/usr/bin/env python
"""Fail CI if the resilient-HPCG guarantees or overhead regress.

Benchmark E26 writes ``BENCH_e26.json`` with the fault-tolerant
stencil27 path's deterministic metrics.  Three absolute checks always
apply -- they are the subsystem's contract, not a trajectory:

* every fault-free resilient run must reproduce the plain solve
  **bitwise** at every checkpoint interval (resilience is overhead,
  never perturbation);
* the durable checkpoint store must be observationally identical to the
  in-memory dict store (same bits, same iterations, same checkpoint
  set, zero leftover tmp files);
* the seeded chaos sweep over stencil27/mg with ABFT and reproducible
  reductions must hold the contract on every run, with bitwise
  reference equality on converged outcomes.

The trajectory check guards the simulated-time overhead ratio at the
default checkpoint interval (5): the simulated cost of checkpoints and
audits is deterministic, so if a change makes the freshly generated
ratio exceed the last *committed* ratio by more than 20%, exit 1.

Baseline = ``git show HEAD:BENCH_e26.json``.  No committed baseline
(first run, or file renamed) is a clean pass for the trajectory check --
the job seeds it -- but the absolute checks always apply.

Usage: run E26 first so BENCH_e26.json reflects the checked-out code,
then ``python scripts/check_e26_regression.py``.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH = REPO_ROOT / "BENCH_e26.json"
TOLERANCE = 1.20  # >20% worse than the committed baseline fails
GUARDED_INTERVAL = "5"


def load_current() -> dict:
    if not BENCH.exists():
        print(f"FAIL: {BENCH} missing -- run benchmark E26 first "
              "(python -m pytest benchmarks/bench_e26_resilient_hpcg.py "
              "--benchmark-disable)")
        sys.exit(1)
    return json.loads(BENCH.read_text(encoding="utf-8"))


def load_baseline() -> dict | None:
    proc = subprocess.run(
        ["git", "show", "HEAD:BENCH_e26.json"],
        cwd=REPO_ROOT, capture_output=True, text=True,
    )
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


def main() -> int:
    current = load_current()
    try:
        sweep = current["overhead_by_interval"]
        ratio = sweep[GUARDED_INTERVAL]["sim_time_ratio"]
        durable_ok = current["durable_store_matches_memory"]
        chaos = current["chaos"]
    except KeyError as missing:
        print(f"FAIL: BENCH_e26.json is missing {missing} -- regenerate it")
        return 1

    failed = False

    bitwise = all(row["bitwise_equal_to_plain"] for row in sweep.values())
    verdict = "OK" if bitwise else "REGRESSION"
    failed |= not bitwise
    print("fault-free resilient solves bitwise-equal to plain "
          f"(intervals {sorted(sweep, key=int)}): {bitwise} {verdict}")

    verdict = "OK" if durable_ok else "REGRESSION"
    failed |= not durable_ok
    print(f"durable store matches in-memory store: {durable_ok} {verdict}")

    contract = (
        chaos["ok_runs"] == chaos["total_runs"] and chaos["bitwise"]
    )
    verdict = "OK" if contract else "REGRESSION"
    failed |= not contract
    print(f"chaos contract ({chaos['scenario']}/{chaos['precond']}, "
          f"bitwise): {chaos['ok_runs']}/{chaos['total_runs']} {verdict}")

    baseline = load_baseline()
    if baseline is None:
        print("no committed BENCH_e26.json baseline -- seeding the "
              "trajectory with the current run.")
    else:
        base = (
            baseline.get("overhead_by_interval", {})
            .get(GUARDED_INTERVAL, {})
            .get("sim_time_ratio")
        )
        if base is not None:
            limit = base * TOLERANCE
            verdict = "OK" if ratio <= limit else "REGRESSION"
            failed |= verdict == "REGRESSION"
            print(f"trajectory: interval-{GUARDED_INTERVAL} overhead "
                  f"{ratio:.3f} vs committed {base:.3f} "
                  f"(limit {limit:.3f}) {verdict}")

    if failed:
        print("\nFAIL: resilience perturbed the solution, the durable "
              "store diverged, the chaos contract broke, or checkpoint "
              "overhead regressed.")
        return 1
    print("\nPASS: resilient-HPCG guarantees and overhead hold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
