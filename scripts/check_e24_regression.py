#!/usr/bin/env python
"""Fail CI if the warm-pool service throughput advantage regresses.

Benchmark E24 writes ``BENCH_e24.json`` with solves/sec for three paths
over the same (n, P) stream: one-shot process execution (fresh backend
per job), the warm pool, and the full service stack.  Two numbers are
guarded:

* **floor** -- the warm-pool speedup over one-shot must stay >= 2.0x
  (the service's acceptance criterion).  This is absolute: a pool that
  no longer amortises worker startup has lost its reason to exist.
* **trajectory** -- the speedup must not collapse to less than half the
  last *committed* value, so a gross leak of per-job overhead into the
  pool path (extra rebuilds, queue churn, supervision cost) is caught
  even while still above the floor.  The band is deliberately wide: the
  speedup is a wall-clock ratio and varies ~30% run to run.

Baseline = ``git show HEAD:BENCH_e24.json``.  No committed baseline
(first run, or file renamed) skips the trajectory check -- the job
seeds it -- but the 2.0x floor always applies.

Usage: run E24 first so BENCH_e24.json reflects the checked-out code,
then ``python scripts/check_e24_regression.py``.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH = REPO_ROOT / "BENCH_e24.json"
# Unlike E23's counted-collective ratio (deterministic), this speedup is
# a wall-clock ratio of spawn cost to solve cost and swings ~30% between
# runs even on an idle host -- so the trajectory band is wide and the
# 2.0x floor is the hard criterion.
TOLERANCE = 2.0    # more than 2x below the committed baseline fails
FLOOR = 2.0        # warm pool must at least double one-shot throughput


def load_current() -> dict:
    if not BENCH.exists():
        print(f"FAIL: {BENCH} missing -- run benchmark E24 first "
              "(python -m pytest benchmarks/bench_e24_service.py "
              "--benchmark-disable)")
        sys.exit(1)
    return json.loads(BENCH.read_text(encoding="utf-8"))


def load_baseline() -> dict | None:
    proc = subprocess.run(
        ["git", "show", "HEAD:BENCH_e24.json"],
        cwd=REPO_ROOT, capture_output=True, text=True,
    )
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


def main() -> int:
    current = load_current()
    try:
        speedup = current["warm_pool"]["speedup_vs_one_shot"]
        service_speedup = current["service"]["speedup_vs_one_shot"]
    except KeyError as missing:
        print(f"FAIL: BENCH_e24.json is missing {missing} -- regenerate it")
        return 1

    failed = False

    verdict = "OK" if speedup >= FLOOR else "REGRESSION"
    if verdict == "REGRESSION":
        failed = True
    print(f"warm pool vs one-shot: {speedup:.2f}x "
          f"(floor {FLOOR:.1f}x) {verdict}")
    print(f"service vs one-shot:   {service_speedup:.2f}x (informational)")

    baseline = load_baseline()
    if baseline is None:
        print("no committed BENCH_e24.json baseline -- seeding the "
              "trajectory with the current run.")
    else:
        base = baseline.get("warm_pool", {}).get("speedup_vs_one_shot")
        if base is not None:
            limit = base / TOLERANCE
            verdict = "OK" if speedup >= limit else "REGRESSION"
            if verdict == "REGRESSION":
                failed = True
            print(f"trajectory: {speedup:.2f}x vs committed {base:.2f}x "
                  f"(limit {limit:.2f}x) {verdict}")

    if failed:
        print("\nFAIL: the warm pool no longer amortises worker startup -- "
              "per-job overhead has crept back into the pooled path.")
        return 1
    print("\nPASS: warm-pool throughput advantage holds.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
