#!/usr/bin/env python
"""Fail CI if multigrid's iteration advantage over Jacobi regresses.

Benchmark E25 writes ``BENCH_e25.json`` with per-preconditioner CG
iteration counts on the stencil27 system.  The deterministic heart of
the HPCG subsystem is the ratio ``mg_iterations / jacobi_iterations``
(lower = better): if a change to the V-cycle, the smoother or the
coarsening makes the freshly generated ratio exceed the last *committed*
ratio by more than 20%, exit 1.  Two absolute checks always apply:

* MG must need strictly fewer iterations than Jacobi -- a V-cycle that
  stops paying for itself has lost its reason to exist;
* the reproducible run must have reported bitwise p-invariant scalars
  (the benchmark asserts it and records the verdict).

Baseline = ``git show HEAD:BENCH_e25.json``.  No committed baseline
(first run, or file renamed) is a clean pass for the trajectory check --
the job seeds it -- but the absolute checks always apply.

Usage: run E25 first so BENCH_e25.json reflects the checked-out code,
then ``python scripts/check_e25_regression.py``.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH = REPO_ROOT / "BENCH_e25.json"
TOLERANCE = 1.20  # >20% worse than the committed baseline fails


def load_current() -> dict:
    if not BENCH.exists():
        print(f"FAIL: {BENCH} missing -- run benchmark E25 first "
              "(python -m pytest benchmarks/bench_e25_hpcg.py "
              "--benchmark-disable)")
        sys.exit(1)
    return json.loads(BENCH.read_text(encoding="utf-8"))


def load_baseline() -> dict | None:
    proc = subprocess.run(
        ["git", "show", "HEAD:BENCH_e25.json"],
        cwd=REPO_ROOT, capture_output=True, text=True,
    )
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


def main() -> int:
    current = load_current()
    try:
        ratio = current["iteration_ratio_mg_vs_jacobi"]
        mg = current["runs"]["mg"]["iterations"]
        jacobi = current["runs"]["jacobi"]["iterations"]
        p_invariant = current["reproducible_bitwise_p_invariant"]
    except KeyError as missing:
        print(f"FAIL: BENCH_e25.json is missing {missing} -- regenerate it")
        return 1

    failed = False

    verdict = "OK" if mg < jacobi else "REGRESSION"
    if verdict == "REGRESSION":
        failed = True
    print(f"iterations: mg={mg} jacobi={jacobi} "
          f"(ratio {ratio:.3f}, must be < 1) {verdict}")

    verdict = "OK" if p_invariant else "REGRESSION"
    if verdict == "REGRESSION":
        failed = True
    print(f"reproducible scalars bitwise p-invariant: {p_invariant} {verdict}")

    baseline = load_baseline()
    if baseline is None:
        print("no committed BENCH_e25.json baseline -- seeding the "
              "trajectory with the current run.")
    else:
        base = baseline.get("iteration_ratio_mg_vs_jacobi")
        if base is not None:
            limit = base * TOLERANCE
            verdict = "OK" if ratio <= limit else "REGRESSION"
            if verdict == "REGRESSION":
                failed = True
            print(f"trajectory: ratio {ratio:.3f} vs committed {base:.3f} "
                  f"(limit {limit:.3f}) {verdict}")

    if failed:
        print("\nFAIL: the multigrid V-cycle no longer earns its keep "
              "against Jacobi, or reproducibility broke.")
        return 1
    print("\nPASS: MG iteration advantage and reproducibility hold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
