#!/usr/bin/env python
"""Fail CI if the job journal's throughput overhead regresses.

Benchmark E27 writes ``BENCH_e27.json`` with the warm-pool stream's
solves/sec with and without the write-ahead job journal.  Two numbers
are guarded:

* **gate** -- the journaled (``fsync=False``) stream must keep at least
  90% of the unjournaled throughput: durability is worth at most a 10%
  tax on the warm pool's reason to exist (E24).  This is absolute.
* **trajectory** -- the relative throughput must not collapse to less
  than half the last *committed* value, catching a gross cost leak into
  the journal write path (extra records per job, manifest churn,
  serialization bloat) even while still above the gate.  Wall-clock
  ratios on a shared CI host swing, so the band is wide.

``fsync=True`` and the replay rates are informational: the first is the
disk's flush latency, the second is bounded by the restart path's test
(``test_service_crash_replay.py``), not a throughput promise.

Baseline = ``git show HEAD:BENCH_e27.json``.  No committed baseline
(first run) skips the trajectory check -- the job seeds it -- but the
90% gate always applies.

Usage: run E27 first so BENCH_e27.json reflects the checked-out code,
then ``python scripts/check_e27_regression.py``.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH = REPO_ROOT / "BENCH_e27.json"
GATE = 0.9         # journaled stream >= 0.9x unjournaled solves/sec
TOLERANCE = 2.0    # more than 2x below the committed ratio fails


def load_current() -> dict:
    if not BENCH.exists():
        print(f"FAIL: {BENCH} missing -- run benchmark E27 first "
              "(python -m pytest benchmarks/bench_e27_journal.py "
              "--benchmark-disable)")
        sys.exit(1)
    return json.loads(BENCH.read_text(encoding="utf-8"))


def load_baseline() -> dict | None:
    proc = subprocess.run(
        ["git", "show", "HEAD:BENCH_e27.json"],
        cwd=REPO_ROOT, capture_output=True, text=True,
    )
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


def main() -> int:
    current = load_current()
    try:
        relative = current["journal_nofsync"]["relative_throughput"]
        overhead = current["journal_nofsync"]["overhead_pct"]
        fsync_relative = current["journal_fsync"]["relative_throughput"]
        replay = current["replay"]
    except KeyError as missing:
        print(f"FAIL: BENCH_e27.json is missing {missing} -- regenerate it")
        return 1

    failed = False

    verdict = "OK" if relative >= GATE else "REGRESSION"
    if verdict == "REGRESSION":
        failed = True
    print(f"journal (fsync=False) vs no journal: {relative:.2f}x "
          f"({overhead:.1f}% overhead; gate >= {GATE:.2f}x) {verdict}")
    print(f"journal (fsync=True) vs no journal:  {fsync_relative:.2f}x "
          "(informational)")
    for entry in replay:
        print(f"replay load: {entry['records']} records in "
              f"{entry['elapsed_s'] * 1e3:.1f} ms "
              f"({entry['records_per_sec']:.0f} rec/s, informational)")

    baseline = load_baseline()
    if baseline is None:
        print("no committed BENCH_e27.json baseline -- seeding the "
              "trajectory with the current run.")
    else:
        base = baseline.get("journal_nofsync", {}).get(
            "relative_throughput"
        )
        if base is not None:
            limit = base / TOLERANCE
            verdict = "OK" if relative >= limit else "REGRESSION"
            if verdict == "REGRESSION":
                failed = True
            print(f"trajectory: {relative:.2f}x vs committed {base:.2f}x "
                  f"(limit {limit:.2f}x) {verdict}")

    if failed:
        print("\nFAIL: the job journal is taxing warm-pool throughput -- "
              "cost has crept into the per-job record path.")
        return 1
    print("\nPASS: journal durability stays within its overhead budget.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
