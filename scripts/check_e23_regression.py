#!/usr/bin/env python
"""Fail CI if the fused-vs-classic allreduce-count ratio regresses.

Benchmark E23 writes ``BENCH_e23.json`` with, per processor count, the
number of allreduce trees a tag-counted run of classic and fused CG
actually executed.  The fused/classic ratio is the deterministic heart
of the single-reduction claim (0.5 asymptotically: one tree per
iteration instead of two), so it is the one number CI guards: if a code
change makes the freshly generated ratio exceed the last *committed*
ratio by more than 20% for any P, exit 1.

Baseline = ``git show HEAD:BENCH_e23.json``.  No committed baseline
(first run, or file renamed) is a clean pass -- the job seeds the
trajectory instead of failing it.

Usage: run E23 first so BENCH_e23.json reflects the checked-out code,
then ``python scripts/check_e23_regression.py``.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH = REPO_ROOT / "BENCH_e23.json"
TOLERANCE = 1.20  # >20% worse than the committed baseline fails


def load_current() -> dict:
    if not BENCH.exists():
        print(f"FAIL: {BENCH} missing -- run benchmark E23 first "
              "(python -m pytest benchmarks/bench_e23_fused_cg.py "
              "--benchmark-disable)")
        sys.exit(1)
    return json.loads(BENCH.read_text(encoding="utf-8"))


def load_baseline() -> dict | None:
    proc = subprocess.run(
        ["git", "show", "HEAD:BENCH_e23.json"],
        cwd=REPO_ROOT, capture_output=True, text=True,
    )
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


def main() -> int:
    current = load_current()
    baseline = load_baseline()
    if baseline is None:
        print("PASS: no committed BENCH_e23.json baseline -- seeding the "
              "trajectory with the current run.")
        return 0

    cur_sim = current.get("simulated", {})
    base_sim = baseline.get("simulated", {})
    if not cur_sim:
        print("FAIL: current BENCH_e23.json has no 'simulated' section")
        return 1

    failed = False
    for p in sorted(cur_sim, key=int):
        cur_ratio = cur_sim[p]["allreduce_ratio"]
        base = base_sim.get(p)
        if base is None:
            print(f"P={p}: ratio {cur_ratio:.4f} (no baseline entry -- new)")
            continue
        base_ratio = base["allreduce_ratio"]
        limit = base_ratio * TOLERANCE
        verdict = "OK" if cur_ratio <= limit else "REGRESSION"
        if verdict == "REGRESSION":
            failed = True
        print(f"P={p}: fused/classic allreduce ratio {cur_ratio:.4f} "
              f"(baseline {base_ratio:.4f}, limit {limit:.4f}) {verdict}")

    if failed:
        print(f"\nFAIL: allreduce-count ratio regressed by more than "
              f"{(TOLERANCE - 1) * 100:.0f}% -- the fused path is issuing "
              "extra reduction trees.")
        return 1
    print("\nPASS: fused-vs-classic allreduce-count ratio within tolerance.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
