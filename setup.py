"""Legacy installer shim: all metadata lives in pyproject.toml.

Kept so `python setup.py develop` works in offline environments that lack
the `wheel` package (which PEP 660 editable installs require).
"""

from setuptools import setup

setup()
