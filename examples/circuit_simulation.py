"""Circuit-simulation scenario: nodal analysis of a resistor network.

Builds the conductance matrix of a random resistor network (the paper's
circuit-simulation application), injects current at one node and extracts
it at another, and solves ``G v = i`` three ways:

* dense Gaussian elimination (the direct method the paper contrasts),
* sequential CG,
* distributed HPF CG on the simulated machine,

then reports node voltages and the operation-count crossover.

Run:  python examples/circuit_simulation.py
"""

import numpy as np

from repro import (
    Machine,
    StoppingCriterion,
    Table,
    cg_reference,
    circuit_nodal,
    direct_vs_cg_flops,
    gaussian_elimination,
    hpf_cg,
    make_strategy,
)


def main() -> None:
    n = 300
    G = circuit_nodal(n, avg_degree=5.0, seed=3)

    # current source: 1 A into node 0, out of node n-1
    current = np.zeros(n)
    current[0] = +1.0
    current[-1] = -1.0
    crit = StoppingCriterion(rtol=1e-10)

    # --- three solvers ------------------------------------------------- #
    v_direct, ge_flops = gaussian_elimination(G, current)
    seq = cg_reference(G, current, criterion=crit)
    machine = Machine(nprocs=8)
    dist = hpf_cg(make_strategy("csr_forall_aligned", machine, G), current,
                  criterion=crit)

    assert np.allclose(v_direct, seq.x, atol=1e-6)
    assert np.allclose(v_direct, dist.x, atol=1e-6)

    t = Table(
        ["solver", "iterations", "flops (approx)", "sim time (ms)"],
        title=f"nodal analysis, n={n} nodes, nnz={G.nnz}",
    )
    t.add_row("Gaussian elimination (dense)", 1, ge_flops, "-")
    t.add_row("CG (sequential)", seq.iterations,
              seq.iterations * (2 * G.nnz + 10 * n), "-")
    t.add_row("CG (HPF, N_P=8)", dist.iterations,
              dist.iterations * (2 * G.nnz + 10 * n),
              dist.machine_elapsed * 1e3)
    t.print()

    cmp = direct_vs_cg_flops(G, current, criterion=crit)
    print(f"direct/iterative flop ratio: {cmp['ratio']:.1f}x in CG's favour "
          f"(the introduction's 'preferred when A is very large and sparse')\n")

    # effective two-point resistance between source and sink
    r_eff = v_direct[0] - v_direct[-1]
    t2 = Table(["quantity", "value"], title="circuit answers")
    t2.add_row("effective resistance node0 -> node299 (ohm)", r_eff)
    t2.add_row("max node voltage (V)", float(v_direct.max()))
    t2.add_row("min node voltage (V)", float(v_direct.min()))
    t2.print()


if __name__ == "__main__":
    main()
