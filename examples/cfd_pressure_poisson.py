"""CFD scenario: pressure-Poisson solves across data layouts and machines.

The paper's introduction cites computational fluid dynamics as a canonical
CG workload.  A projection-method flow solver calls a Poisson solve for the
pressure correction every time step; this example runs that solve under
every mat-vec layout of the paper (Scenarios 1 and 2, CSR FORALL, CSC with
the PRIVATE/MERGE extension) and sweeps the machine size, printing the
paper's trade-offs as tables.

Run:  python examples/cfd_pressure_poisson.py
"""

import numpy as np

from repro import (
    Machine,
    StoppingCriterion,
    Table,
    hpf_cg,
    make_strategy,
    poisson2d,
    rhs_for_solution,
)

LAYOUTS = [
    ("dense_rowblock", "Scenario 1: A(BLOCK,*), broadcast p"),
    ("dense_colblock_serial", "Scenario 2: A(*,BLOCK), serial loop"),
    ("dense_colblock_2dtemp", "Scenario 2 + 2-D temp + SUM"),
    ("csr_forall", "Figure 2: CSR FORALL (naive col/a layout)"),
    ("csr_forall_aligned", "Figure 2 + row atoms (Section 5.2.1)"),
    ("csc_private", "Section 5.1: CSC + PRIVATE/MERGE"),
]


def pressure_solve(nx: int, ny: int, nprocs: int, layout: str):
    """One pressure-correction solve on a fresh machine."""
    A = poisson2d(nx, ny)
    rng = np.random.default_rng(42)
    divergence = rng.standard_normal(A.nrows)  # velocity divergence field
    b = divergence - divergence.mean()  # compatible RHS
    machine = Machine(nprocs=nprocs, topology="hypercube")
    strategy = make_strategy(layout, machine, A)
    result = hpf_cg(strategy, b, criterion=StoppingCriterion(rtol=1e-8))
    return result


def main() -> None:
    nx = ny = 24  # 576-cell grid
    nprocs = 8

    print(f"pressure-Poisson grid {nx}x{ny} (n={nx * ny}), N_P={nprocs}\n")

    t = Table(
        ["layout", "iters", "sim time (ms)", "comm words", "imbalance"],
        title="one pressure solve under each data layout",
    )
    for layout, label in LAYOUTS:
        res = pressure_solve(nx, ny, nprocs, layout)
        t.add_row(
            label,
            res.iterations,
            res.machine_elapsed * 1e3,
            res.comm["words"],
            res.extras["load_imbalance"],
        )
    t.print()

    # --- scaling sweeps -------------------------------------------------- #
    # (a) the sparse 5-point solve: each mat-vec moves the whole vector p
    #     (the paper: "it is not possible to reduce the communication time"
    #     with regular stripes), so with only ~5 nonzeros per row the solve
    #     is communication-bound and stops scaling almost immediately;
    # (b) the dense operator (the paper's computational-electromagnetics
    #     case): O(n^2/N_P) local work amortises the same broadcast, and
    #     speedup follows until the t_s*log(N_P) dot merges bite.
    from repro import poisson2d as _p2d

    dense_A = _p2d(48, 48)  # n = 2304, treated as dense in Scenario 1
    rng = np.random.default_rng(7)
    dense_b = rng.standard_normal(dense_A.nrows)

    t2 = Table(
        ["N_P", "sparse CG speedup", "dense CG speedup"],
        title="scaling: sparse (comm-bound) vs dense (compute-bound)",
    )
    base_sparse = base_dense = None
    for p in (1, 2, 4, 8, 16, 32):
        sparse_res = pressure_solve(nx, ny, p, "csr_forall_aligned")
        machine = Machine(nprocs=p, topology="hypercube")
        dense_res = hpf_cg(
            make_strategy("dense_rowblock", machine, dense_A),
            dense_b,
            criterion=StoppingCriterion(rtol=1e-8),
        )
        if base_sparse is None:
            base_sparse = sparse_res.machine_elapsed
            base_dense = dense_res.machine_elapsed
        t2.add_row(
            p,
            base_sparse / sparse_res.machine_elapsed,
            base_dense / dense_res.machine_elapsed,
        )
    t2.print()

    print("Notes: the serial Scenario-2 layout is orders of magnitude "
          "slower, exactly why the paper proposes the PRIVATE extension. "
          "The sparse stencil solve is latency/bandwidth-bound on the 1996 "
          "cost model (broadcasting all of p for ~5 flops per element), "
          "while the dense Scenario-1 solve scales until the t_s*log(N_P) "
          "inner-product merges dominate.")


if __name__ == "__main__":
    main()
