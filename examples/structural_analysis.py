"""Structural-analysis scenario: stiffness systems with preconditioned CG.

Assembles the stiffness matrix of a randomly-stiffened truss (one of the
paper's motivating applications), then compares plain CG against
preconditioned CG with the Jacobi, SSOR and Neumann preconditioners -- both
the convergence gain (Section 2.1) and the parallel price: SSOR's
triangular sweeps serialise on the simulated machine while Jacobi/Neumann
stay owner-computes-local.

Run:  python examples/structural_analysis.py
"""

import numpy as np

from repro import (
    JacobiPreconditioner,
    Machine,
    NeumannPreconditioner,
    SSORPreconditioner,
    StoppingCriterion,
    Table,
    hpf_cg,
    hpf_pcg,
    make_strategy,
    rhs_for_solution,
    structural_truss,
)


def main() -> None:
    n = 400
    A = structural_truss(n, seed=11)
    # load: a point force mid-span plus distributed self-weight
    load = np.full(n, -0.5)
    load[n // 2] = -50.0
    crit = StoppingCriterion(rtol=1e-10, maxiter=5000)

    def solve(precond=None):
        machine = Machine(nprocs=8)
        strategy = make_strategy("csr_forall_aligned", machine, A)
        if precond is None:
            return hpf_cg(strategy, load, criterion=crit)
        return hpf_pcg(strategy, load, precond, criterion=crit)

    rows = [
        ("CG (none)", solve()),
        ("PCG + Jacobi", solve(JacobiPreconditioner(A))),
        ("PCG + Neumann(2)", solve(NeumannPreconditioner(A, 2))),
        ("PCG + SSOR(1.2)", solve(SSORPreconditioner(A, 1.2))),
    ]

    t = Table(
        ["solver", "iters", "sim time (ms)", "time/iter (us)", "parallel apply"],
        title=f"truss stiffness solve, n={n}, N_P=8",
    )
    parallel = {"CG (none)": "-", "PCG + Jacobi": "yes",
                "PCG + Neumann(2)": "yes", "PCG + SSOR(1.2)": "NO (serial sweeps)"}
    for name, res in rows:
        assert res.converged, name
        t.add_row(
            name,
            res.iterations,
            res.machine_elapsed * 1e3,
            res.machine_elapsed / res.iterations * 1e6,
            parallel[name],
        )
    t.print()

    # sanity: all four produce the same displacement field
    ref = rows[0][1].x
    for name, res in rows[1:]:
        assert np.allclose(res.x, ref, atol=1e-6), name
    print(f"max displacement: {np.abs(ref).max():.4f} "
          f"(at node {int(np.argmax(np.abs(ref)))})")
    print("\nThe Section-2.1 trade-off: SSOR needs the fewest iterations "
          "but its serialised sweeps cost the most per iteration on the "
          "simulated machine; Jacobi/Neumann keep every apply local.")


if __name__ == "__main__":
    main()
