"""The Section-2.1 solver family on a nonsymmetric system.

CG requires symmetry ("the residual vectors employed by CG cannot be made
orthogonal with short recurrences" otherwise); this example builds a
convection-dominated transport system and runs the whole nonsymmetric
family the paper surveys -- BiCG (needs A^T), CGS (no A^T, unstable),
BiCGSTAB (no A^T, four inner products) and restarted GMRES (long
recurrences, big basis) -- reporting exactly the trade-offs Section 2.1
enumerates: transpose traffic, inner-product pressure, storage, stability.

Run:  python examples/nonsymmetric_solvers.py
"""

import numpy as np

from repro import (
    Machine,
    StoppingCriterion,
    Table,
    hpf_bicg,
    hpf_bicgstab,
    hpf_cgs,
    hpf_gmres,
    make_strategy,
    nonsymmetric_diag_dominant,
    rhs_for_solution,
)


def main() -> None:
    n = 200
    A = nonsymmetric_diag_dominant(n, nnz_per_row=7, seed=8)
    x_true = np.sin(np.arange(float(n)))
    b = rhs_for_solution(A, x_true)
    crit = StoppingCriterion(rtol=1e-10, maxiter=800)

    def run(solver, **kwargs):
        machine = Machine(nprocs=8)
        strategy = make_strategy("csr_forall_aligned", machine, A)
        res = solver(strategy, b, criterion=crit, **kwargs)
        dots = machine.stats.by_tag().get("dot", {"count": 0})["count"]
        merges = machine.stats.by_op().get("reduce_scatter", {"words": 0})["words"]
        storage = machine.stats.storage_words_per_rank.max()
        return res, dots, merges, storage

    t = Table(
        ["solver", "A^T?", "iters", "dots/iter", "transpose merge words",
         "peak words/rank", "max err"],
        title=f"nonsymmetric family on a diag-dominant system, n={n}, N_P=8",
    )
    for name, solver, needs_t, kwargs in [
        ("BiCG", hpf_bicg, "yes", {}),
        ("CGS", hpf_cgs, "no", {}),
        ("BiCGSTAB", hpf_bicgstab, "no", {}),
        ("GMRES(20)", hpf_gmres, "no", {"restart": 20}),
    ]:
        res, dots, merges, storage = run(solver, **kwargs)
        assert res.converged, name
        t.add_row(
            name, needs_t, res.iterations,
            round(dots / max(1, res.iterations), 1),
            merges, storage,
            float(np.abs(res.x - x_true).max()),
        )
    t.print()

    print("Section 2.1's ledger, measured: BiCG pays the wrong-way A^T "
          "merge every iteration; CGS and BiCGSTAB avoid it (BiCGSTAB at "
          "4+ inner products per iteration); GMRES trades both for a "
          "21-vector Krylov basis per restart cycle.")


if __name__ == "__main__":
    main()
