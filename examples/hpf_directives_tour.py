"""A tour of the HPF directive layer, using the paper's directive text.

Walks through what an HPF compiler does with the Figure-2 declarations:
parses the directives verbatim, shows the resulting distributions and
alignment cascades, demonstrates the two language rules that *reject* the
CSC scatter loop (FORALL many-to-one, INDEPENDENT/Bernstein), and finally
runs the proposed extension pipeline -- SPARSE_MATRIX binding, INDIVISABLE
atoms, the balanced partitioner, and a PRIVATE/MERGE mat-vec.

Run:  python examples/hpf_directives_tour.py
"""

import numpy as np

from repro import (
    HpfNamespace,
    Machine,
    PrivateRegion,
    Table,
    figure1_matrix,
    forall_indexed,
)
from repro.hpf import BernsteinViolationError, DistributedArray, ManyToOneAssignmentError
from repro.hpf.independent import independent_do

FIGURE2 = """
!HPF$ PROCESSORS :: PROCS(NP)
!HPF$ ALIGN (:) WITH p(:) :: q, r, x, b
!HPF$ DISTRIBUTE p(BLOCK)
!HPF$ DISTRIBUTE row(BLOCK((n+NP-1)/NP))
!HPF$ ALIGN a(:) WITH col(:)
!HPF$ DISTRIBUTE col(BLOCK)
"""

EXTENSIONS = """
!HPF$ SPARSE_MATRIX (CSR) :: smA(row, col, a)
!EXT$ REDISTRIBUTE smA USING CG_BALANCED_PARTITIONER_1
"""


def main() -> None:
    A = figure1_matrix()
    machine = Machine(nprocs=2)
    n, nz = A.nrows, A.nnz

    # ------------------------------------------------------------------ #
    print("== 1. the Figure-2 directives, applied ==\n")
    ns = HpfNamespace(machine, env={"n": n, "nz": nz})
    for name in ("p", "q", "r", "x", "b"):
        ns.declare(name, n)
    ns.declare("row", n + 1, values=A.indptr.astype(float))
    ns.declare("col", nz, values=A.indices.astype(float))
    ns.declare("a", nz, values=A.data)
    ns.apply(FIGURE2)

    t = Table(["array", "distribution", "aligned with"])
    for name in ("p", "q", "r", "x", "b", "row", "col", "a"):
        arr = ns.array(name)
        target = arr.group.target.name if arr.group else "-"
        t.add_row(name, repr(arr.distribution), target)
    t.print()

    # ------------------------------------------------------------------ #
    print("== 2. why the CSC scatter loop is illegal in HPF-1 ==\n")
    csc = A.to_csc()
    out = DistributedArray(machine, n)
    try:
        forall_indexed(
            out, range(csc.nnz),
            target=lambda k: int(csc.indices[k]),
            value=lambda k: float(csc.data[k]),
        )
    except ManyToOneAssignmentError as err:
        print(f"FORALL      -> {type(err).__name__}:\n    {err}\n")

    arrays = {"q": np.zeros(n), "a2": csc.data.copy(),
              "row2": csc.indices.astype(float)}

    def body(k, q, a2, row2):
        q[int(row2[k])] = q[int(row2[k])] + a2[k]

    try:
        independent_do(range(csc.nnz), body, arrays)
    except BernsteinViolationError as err:
        print(f"INDEPENDENT -> {type(err).__name__}:\n    {err}\n")

    # ------------------------------------------------------------------ #
    print("== 3. the proposed extensions make it parallel ==\n")
    ns.declare_sparse("smA", A)
    ns.apply(EXTENSIONS)
    binding = ns.sparse("smA")
    print(f"balanced atom cuts: {binding.atom_cuts.tolist()}")
    print(f"non-local elements after partitioning: "
          f"{binding.nonlocal_elements().sum()}\n")

    p_vec = np.arange(1.0, n + 1.0)
    region = PrivateRegion(machine, n, merge="+")
    # each rank scatters its own columns into its private copy of q
    cuts = [0, 3, 6]  # columns per rank for NP=2
    for rank in range(2):
        local = region.local(rank)
        for j in range(cuts[rank], cuts[rank + 1]):
            rows_j, vals_j = csc.col_slice(j)
            local[rows_j] += vals_j * p_vec[j]
    q = DistributedArray(machine, n)
    region.merge_into(q)
    expected = csc.matvec(p_vec)
    assert np.allclose(q.to_global(), expected)
    t2 = Table(["i", "q = A p (PRIVATE/MERGE)", "reference"])
    for i in range(n):
        t2.add_row(i + 1, q.to_global()[i], expected[i])
    t2.print()
    print("the privatised loop computes the same product the serial "
          "loop would -- but in parallel, with one MERGE(+) at the end.")


if __name__ == "__main__":
    main()
