"""Visualising the machine: ASCII Gantt charts of the paper's scenarios.

Attaches a :class:`~repro.machine.Tracer` to the simulated machine and
renders per-rank timelines for three mat-vec executions:

1. the serialised Scenario-2 / CSC loop (one rank computing at a time --
   the staircase the paper says HPF-1 is stuck with),
2. the PRIVATE/MERGE parallel version (all ranks compute, one merge),
3. the SHADOW halo version (thin communication stripes instead of the
   broadcast wall).

Legend: ``#`` compute, ``~`` communication, ``.`` idle.

Run:  python examples/machine_trace_gantt.py
"""

import numpy as np

from repro import Machine
from repro.core import CsrHalo, make_strategy
from repro.machine import Tracer
from repro.sparse import poisson2d


def trace_one(label: str, strategy_factory, nprocs: int = 4, width: int = 68,
              cost=None):
    A = poisson2d(16, 16)
    machine = Machine(nprocs=nprocs) if cost is None else Machine(
        nprocs=nprocs, cost=cost)
    tracer = Tracer.attach(machine)
    strategy = strategy_factory(machine, A)
    pv = np.linspace(0.0, 1.0, A.nrows)
    p = strategy.make_vector("p", pv)
    q = strategy.make_vector("q")
    strategy.apply(p, q)
    assert np.allclose(q.to_global(), A.matvec(pv))

    print(f"--- {label} ---")
    print(tracer.ascii_gantt(width=width))
    util = tracer.utilization()
    print(f"utilization per rank: {np.round(util, 2).tolist()}  "
          f"(compute fraction {tracer.compute_fraction():.2f})\n")


def main() -> None:
    print("one sparse mat-vec (poisson2d 16x16, N_P=4) under three executions\n")
    trace_one(
        "Scenario 2 / CSC serial: 'can not be performed in parallel'",
        lambda m, a: make_strategy("csc_serial", m, a),
    )
    trace_one(
        "Section 5.1: ON PROCESSOR + PRIVATE(q) WITH MERGE(+)",
        lambda m, a: make_strategy("csc_private", m, a),
    )
    from repro.machine import CostModel

    trace_one(
        "HPF-2 SHADOW halo exchange, low-latency network (t_s=2us)",
        CsrHalo,
        cost=CostModel(t_startup=2e-6, t_comm=2e-9),
    )
    print("The serial loop shows the diagonal staircase of one-rank-at-a-"
          "time compute (the trace spans only the traced compute; the "
          "untraced serialised messages follow it).  The privatised loop "
          "is parallel compute followed by a long MERGE stripe -- on the "
          "1996 cost model the merge latency dominates at this small n.  "
          "The halo pane shows one short pairwise exchange, then all ranks "
          "computing together; at larger n the compute block widens while "
          "the halo stripe stays constant.")


if __name__ == "__main__":
    main()
