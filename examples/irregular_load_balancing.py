"""Irregular-grid scenario: load balancing a power-law sparse system.

'This might arise from a very irregular grid model in which some grid
points may have many neighbours, while others have very few.'  (Section
5.2.2.)  This example builds such a matrix, shows the nnz imbalance a
uniform distribution suffers, runs the paper's CG_BALANCED_PARTITIONER_1
plus the LPT and edge-cut alternatives, and measures the effect on a full
CG solve.

Run:  python examples/irregular_load_balancing.py
"""

import numpy as np

from repro import (
    Machine,
    StoppingCriterion,
    Table,
    cg_balanced_partitioner_1,
    hpf_cg,
    irregular_powerlaw,
    load_report,
    make_strategy,
)
from repro.extensions import (
    assignment_imbalance,
    edge_cut_partitioner,
    imbalance,
    lpt_partitioner,
)


def main() -> None:
    n, nprocs = 600, 8
    A = irregular_powerlaw(n, seed=17)
    weights = np.diff(A.to_csc().indptr).astype(float)

    print(f"power-law matrix: n={n}, nnz={A.nnz}, "
          f"row lengths {int(weights.min())}..{int(weights.max())} "
          f"(mean {weights.mean():.1f})\n")

    # --- partitioner comparison ---------------------------------------- #
    k = -(-n // nprocs)
    uniform_cuts = np.minimum(np.arange(nprocs + 1) * k, n)
    balanced_cuts = cg_balanced_partitioner_1(weights, nprocs)
    lpt_assign = lpt_partitioner(weights, nprocs)
    ec_assign = edge_cut_partitioner(A, nprocs, seed=1)

    t = Table(
        ["partitioner", "contiguous", "distribution state", "nnz imbalance"],
        title=f"partitioning {nprocs} ways",
    )
    t.add_row("uniform BLOCK (HPF-1)", "yes", f"{nprocs + 1} cuts",
              imbalance(weights, uniform_cuts))
    t.add_row("CG_BALANCED_PARTITIONER_1", "yes", f"{nprocs + 1} cuts",
              imbalance(weights, balanced_cuts))
    t.add_row("LPT greedy", "no", f"{n}-entry map",
              assignment_imbalance(weights, lpt_assign, nprocs))
    t.add_row("Kernighan-Lin edge cut", "no", f"{n}-entry map",
              assignment_imbalance(weights, ec_assign, nprocs))
    t.print()

    # --- effect on a CG solve ------------------------------------------ #
    # (a random load: the Laplacian's rows sum to 1, so b = ones would be
    # solved in a single iteration)
    b = np.random.default_rng(5).standard_normal(n)
    crit = StoppingCriterion(rtol=1e-8, maxiter=500)
    results = {}
    for label, layout in [
        ("uniform columns", "csc_private"),
        ("balanced partitioner", "csc_private_balanced"),
    ]:
        machine = Machine(nprocs=nprocs)
        strategy = make_strategy(layout, machine, A)
        res = hpf_cg(strategy, b, criterion=crit)
        results[label] = (res, strategy)

    t2 = Table(
        ["layout", "iters", "max nnz/rank", "nnz imbalance", "sim time (ms)"],
        title="CG on the irregular system",
    )
    for label, (res, strategy) in results.items():
        rep = load_report(strategy.per_rank_nnz())
        t2.add_row(label, res.iterations, rep.maximum, rep.imbalance,
                   res.machine_elapsed * 1e3)
    t2.print()

    x_uni = results["uniform columns"][0].x
    x_bal = results["balanced partitioner"][0].x
    assert np.allclose(x_uni, x_bal, atol=1e-6)
    print("identical solutions -- the partitioner moves work, not numerics.")


if __name__ == "__main__":
    main()
