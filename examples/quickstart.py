"""Quickstart: solve a sparse SPD system with HPF-style distributed CG.

Builds the Figure-2 configuration -- CSR storage, BLOCK-distributed
vectors, FORALL-style mat-vec -- on a simulated 8-processor hypercube, and
prints convergence plus the communication bill.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Machine,
    StoppingCriterion,
    Table,
    hpf_cg,
    make_strategy,
    poisson2d,
    rhs_for_solution,
)


def main() -> None:
    # 1. the system: a 2-D Poisson pressure solve, n = 1024 unknowns
    A = poisson2d(32, 32)
    x_true = np.sin(np.linspace(0.0, 6.0, A.nrows))
    b = rhs_for_solution(A, x_true)

    # 2. the machine: 8 processors on a hypercube, 1990s cost ratios
    machine = Machine(nprocs=8, topology="hypercube")

    # 3. the paper's Figure-2 implementation: CSR + FORALL over rows, with
    #    the col/a arrays aligned to row ownership (Section 5.2.1 atoms)
    strategy = make_strategy("csr_forall_aligned", machine, A)

    # 4. solve
    result = hpf_cg(strategy, b, criterion=StoppingCriterion(rtol=1e-10))

    print(f"solver      : {result.solver} / {result.strategy}")
    print(f"converged   : {result.converged} in {result.iterations} iterations")
    print(f"final ||r|| : {result.final_residual:.3e}")
    print(f"error       : {np.abs(result.x - x_true).max():.3e}")
    print(f"sim. time   : {result.machine_elapsed * 1e3:.3f} ms "
          f"on {machine.nprocs} processors")
    print()

    t = Table(["communication", "messages", "words", "time (ms)"],
              title="where the communication went")
    for op, agg in sorted(machine.stats.by_op().items()):
        t.add_row(op, agg["messages"], agg["words"], agg["time"] * 1e3)
    t.print()

    t2 = Table(["phase", "words"], title="traffic by solver phase")
    for tag, agg in sorted(machine.stats.by_tag().items()):
        t2.add_row(tag, agg["words"])
    t2.print()


if __name__ == "__main__":
    main()
