"""Unit tests for deterministic fault injection (machine layer)."""

import numpy as np
import pytest

from repro.machine import (
    ANY_SOURCE,
    Barrier,
    Compute,
    DeadlockError,
    FaultPlan,
    FaultRule,
    Machine,
    RankCrash,
    RankFailedError,
    Recv,
    RecvTimeoutError,
    Send,
    StateCorruption,
    run_spmd,
)


class TestFaultPlanValidation:
    def test_probabilities_must_be_in_unit_interval(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_prob=1.5)
        with pytest.raises(ValueError):
            FaultPlan(corrupt_prob=-0.1)

    def test_probabilities_must_sum_to_at_most_one(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_prob=0.6, duplicate_prob=0.6)

    def test_one_crash_per_rank(self):
        with pytest.raises(ValueError):
            FaultPlan(crashes=[RankCrash(0, 1.0), RankCrash(0, 2.0)])

    def test_rule_kind_checked(self):
        with pytest.raises(ValueError):
            FaultRule(kind="explode")
        with pytest.raises(ValueError):
            FaultRule(kind="drop", nth=0)

    def test_corruption_target_checked(self):
        with pytest.raises(ValueError):
            StateCorruption(iteration=1, target="q")
        with pytest.raises(ValueError):
            StateCorruption(iteration=0)

    def test_none_plan_is_inert(self):
        plan = FaultPlan.none()
        assert not plan.enabled
        assert FaultPlan(drop_prob=0.1).enabled
        assert FaultPlan(crashes=[RankCrash(0, 1.0)]).enabled
        assert FaultPlan(
            state_corruptions=[StateCorruption(iteration=3)]
        ).enabled


class TestFaultPlanDraws:
    def test_clone_replays_identical_decisions(self):
        plan = FaultPlan(seed=9, drop_prob=0.3, corrupt_prob=0.2, delay_prob=0.1)
        a = [plan.next_action(0, 1, 0) for _ in range(200)]
        b_plan = plan.clone()
        b = [b_plan.next_action(0, 1, 0) for _ in range(200)]
        assert a == b
        assert any(x != "deliver" for x in a)

    def test_rule_overrides_probability(self):
        plan = FaultPlan(rules=[FaultRule(kind="drop", src=0, dst=1, nth=2)])
        assert plan.next_action(0, 1, 0) == "deliver"  # first match: not nth
        assert plan.next_action(0, 2, 0) == "deliver"  # different dst
        assert plan.next_action(0, 1, 0) == "drop"  # second match
        assert plan.next_action(0, 1, 0) == "deliver"  # nth consumed
        assert plan.stats.dropped == 1

    def test_corrupt_payload_preserves_structure(self):
        plan = FaultPlan(seed=1)
        arr = np.arange(8.0)
        out = plan.corrupt_payload(arr)
        assert out.shape == arr.shape
        assert np.sum(out != arr) == 1  # exactly one perturbed entry
        tup = (3, 4.0, np.ones(3))
        out_t = plan.corrupt_payload(tup)
        assert isinstance(out_t, tuple) and len(out_t) == 3

    def test_crash_schedule_consumed_once(self):
        plan = FaultPlan(crashes=[RankCrash(rank=1, at_time=0.5)])
        assert plan.has_scheduled_crash(1)
        assert not plan.crash_due(1, 0.4)
        assert plan.crash_due(1, 0.5)
        assert plan.fire_crash(1) == 0.5
        assert not plan.has_scheduled_crash(1)
        assert plan.stats.crashed_ranks == [1]

    def test_state_corruption_rank_filter_and_consumption(self):
        plan = FaultPlan(
            state_corruptions=[StateCorruption(iteration=4, target="r", rank=2)]
        )
        assert plan.take_state_corruption(4, rank=0) is None
        got = plan.take_state_corruption(4, rank=2)
        assert got is not None and got.target == "r"
        assert plan.take_state_corruption(4, rank=2) is None  # consumed


def _pingpong(rank, size):
    if rank == 0:
        yield Send(dest=1, payload=np.arange(4.0), tag=7)
        return (yield Recv(source=1, tag=8))
    data = yield Recv(source=0, tag=7)
    yield Send(dest=0, payload=float(np.sum(data)), tag=8)
    return data


class TestSchedulerInjection:
    def test_targeted_drop_stalls_unprotected_program(self):
        plan = FaultPlan(rules=[FaultRule(kind="drop", src=0, dst=1, tag=7)])
        with pytest.raises(DeadlockError):
            run_spmd(Machine(nprocs=2), _pingpong, faults=plan)
        assert plan.stats.dropped == 1

    def test_dropped_words_charged_to_stats(self):
        m = Machine(nprocs=2)
        plan = FaultPlan(rules=[FaultRule(kind="drop", src=0, dst=1, tag=7)])
        with pytest.raises(DeadlockError):
            run_spmd(m, _pingpong, faults=plan)
        dropped = [r for r in m.stats.comm_records if r.op == "p2p-dropped"]
        assert len(dropped) == 1 and dropped[0].words == 4.0

    def test_duplicate_delivers_twice(self):
        def prog(rank, size):
            if rank == 0:
                yield Send(dest=1, payload=5)
                return None
            first = yield Recv(source=0)
            second = yield Recv(source=0)
            return (first, second)

        plan = FaultPlan(rules=[FaultRule(kind="duplicate", src=0, dst=1)])
        results = run_spmd(Machine(nprocs=2), prog, faults=plan)
        assert results[1] == (5, 5)

    def test_corruption_perturbs_payload_in_flight(self):
        plan = FaultPlan(seed=2, rules=[FaultRule(kind="corrupt", src=0, dst=1)])
        results = run_spmd(Machine(nprocs=2), _pingpong, faults=plan)
        assert np.sum(results[1] != np.arange(4.0)) == 1

    def test_delay_adds_latency(self):
        m_ref, m_del = Machine(nprocs=2), Machine(nprocs=2)
        run_spmd(m_ref, _pingpong)
        plan = FaultPlan(
            seed=3, delay_time=0.25,
            rules=[FaultRule(kind="delay", src=0, dst=1)],
        )
        run_spmd(m_del, _pingpong, faults=plan)
        assert m_del.elapsed() > m_ref.elapsed() + 0.1

    def test_self_message_exempt_from_injection(self):
        def prog(rank, size):
            yield Send(dest=rank, payload=rank * 10)
            return (yield Recv(source=rank))

        plan = FaultPlan(drop_prob=1.0)
        assert run_spmd(Machine(nprocs=2), prog, faults=plan) == [0, 10]

    def test_control_messages_exempt_from_injection(self):
        def prog(rank, size):
            if rank == 0:
                yield Send(dest=1, payload=1, control=True)
                return None
            return (yield Recv(source=0))

        plan = FaultPlan(drop_prob=1.0)
        assert run_spmd(Machine(nprocs=2), prog, faults=plan) == [None, 1]

    def test_inert_plan_identical_to_no_plan(self):
        m_a, m_b = Machine(nprocs=2), Machine(nprocs=2)
        run_spmd(m_a, _pingpong)
        run_spmd(m_b, _pingpong, faults=FaultPlan.none())
        assert m_a.elapsed() == m_b.elapsed()
        assert m_a.stats.total_words == m_b.stats.total_words


class TestCrashes:
    def test_crash_raises_rank_failed(self):
        def prog(rank, size):
            for _ in range(10):
                yield Compute(1e6)
            return rank

        plan = FaultPlan(crashes=[RankCrash(rank=1, at_time=2e-3)])
        with pytest.raises(RankFailedError, match=r"\[1\]"):
            run_spmd(Machine(nprocs=2), prog, faults=plan)

    def test_crash_of_awaited_peer_surfaces_as_rank_failed(self):
        def prog(rank, size):
            if rank == 0:
                return (yield Recv(source=1))
            yield Compute(1e9)  # crashes mid-compute, never sends
            yield Send(dest=0, payload=1)
            return None

        plan = FaultPlan(crashes=[RankCrash(rank=1, at_time=1e-4)])
        with pytest.raises(RankFailedError):
            run_spmd(Machine(nprocs=2), prog, faults=plan)

    def test_barrier_with_crashed_rank_raises_rank_failed(self):
        def prog(rank, size):
            yield Compute(1e6 * (rank + 1))
            yield Barrier()
            return rank

        plan = FaultPlan(crashes=[RankCrash(rank=2, at_time=1e-4)])
        with pytest.raises(RankFailedError, match="barrier"):
            run_spmd(Machine(nprocs=4), prog, faults=plan)

    def test_messages_to_dead_rank_are_lost(self):
        def prog(rank, size):
            if rank == 0:
                yield Compute(1e6)  # crash hits during this
                return None
            yield Compute(2e6)  # outlive the crash before sending
            yield Send(dest=0, payload=np.ones(3))
            return rank

        plan = FaultPlan(crashes=[RankCrash(rank=0, at_time=1e-5)])
        with pytest.raises(RankFailedError):
            run_spmd(Machine(nprocs=2), prog, faults=plan)
        assert plan.stats.lost_to_dead_rank == 1
        assert plan.stats.crashed_ranks == [0]


class TestRecvTimeout:
    def test_timeout_must_be_positive(self):
        with pytest.raises(ValueError):
            Recv(source=0, timeout=0.0)
        with pytest.raises(ValueError):
            Recv(source=0, timeout=-1.0)

    def test_timeout_fires_when_no_sender(self):
        caught = []

        def prog(rank, size):
            if rank == 0:
                try:
                    yield Recv(source=1, timeout=0.5)
                except RecvTimeoutError as e:
                    caught.append(str(e))
                return "gave up"
            return None  # never sends

        m = Machine(nprocs=2)
        results = run_spmd(m, prog)
        assert results[0] == "gave up"
        assert caught and "timed out" in caught[0]
        assert m.clock[0] == pytest.approx(0.5)  # clock advanced to deadline

    def test_timeout_does_not_fire_when_message_arrives(self):
        def prog(rank, size):
            if rank == 0:
                return (yield Recv(source=1, timeout=1.0))
            yield Compute(1e6)  # slow, but well inside the deadline
            yield Send(dest=0, payload=99)
            return None

        assert run_spmd(Machine(nprocs=2), prog)[0] == 99

    def test_earliest_deadline_fires_first(self):
        order = []

        def prog(rank, size):
            if rank == 3:
                return None
            try:
                yield Recv(source=3, timeout=0.1 * (rank + 1))
            except RecvTimeoutError:
                order.append(rank)
            return None

        run_spmd(Machine(nprocs=4), prog)
        assert order == [0, 1, 2]

    def test_timeout_beats_simultaneous_later_crash(self):
        """A retry deadline due before a crash must fire before it."""
        def prog(rank, size):
            if rank == 0:
                try:
                    yield Recv(source=1, timeout=0.01)
                except RecvTimeoutError:
                    return "retried"
                return "got data"
            yield Recv(source=0)  # blocks forever; crash scheduled far out
            return None

        plan = FaultPlan(crashes=[RankCrash(rank=1, at_time=100.0)])
        with pytest.raises(RankFailedError):
            # rank 0 times out first (returns "retried"), then the stall
            # remains and rank 1's crash fires -> run fails overall
            run_spmd(Machine(nprocs=2), prog, faults=plan)


class TestDiagnostics:
    def test_invalid_recv_source_is_immediate_value_error(self):
        def prog(rank, size):
            yield Recv(source=7)

        with pytest.raises(ValueError, match="invalid rank 7"):
            run_spmd(Machine(nprocs=2), prog)

    def test_deadlock_message_lists_pending_sends(self):
        def prog(rank, size):
            if rank == 0:
                yield Send(dest=1, payload=np.zeros(6), tag=3)
                return None
            return (yield Recv(source=0, tag=4))  # mismatched tag

        with pytest.raises(DeadlockError, match=r"0 -> 1 \(tag=3, words=6\)"):
            run_spmd(Machine(nprocs=2), prog)
