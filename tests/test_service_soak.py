"""Service acceptance soak: >=32 jobs under injected crashes + stragglers.

The stream-level contract (ISSUE/DESIGN §11):

* every job converges bitwise-equal to its fault-free reference
  (full-rank outcomes), converges within tolerance on fewer ranks
  (degraded, after a mid-stream shrink), or returns a classified error;
* the queue keeps serving after a mid-stream shrink (jobs complete while
  the pool is below target) and the pool heals between jobs;
* zero leaked worker processes at drain.

The process soak is the real acceptance gate (CI runs it in the
``service-soak`` job); a simulated twin keeps the contract covered on
platforms without OS-process support.
"""

import pytest

from repro.backend import process_backend_support
from repro.backend.process import crash_injection_support
from repro.service import JobStatus, leaked_pool_workers, soak_run

_OK, _DETAIL = process_backend_support()
if _OK:
    _OK, _DETAIL = crash_injection_support()
needs_chaos = pytest.mark.skipif(
    not _OK, reason=f"process soak unavailable: {_DETAIL}"
)

SOAK_SEED = 2026


def _assert_stream_contract(report, expect_shrink=True,
                            expect_faults=("crash", "straggler")):
    # per-job contract, with the failing job's diagnosis in the message
    for v in report.verdicts:
        assert v.contract_ok, (
            f"job {v.job_id} ({v.fault}) broke the contract: "
            f"status={v.status} class={v.classification!r} {v.detail}"
        )
    assert report.contract_held
    # the stream must have actually been under fire, or the soak proves
    # nothing: both fault kinds drawn, and some jobs still converged
    faults = {v.fault for v in report.verdicts}
    for kind in expect_faults:
        assert kind in faults, f"seed drew no {kind} fault"
    assert report.ok_jobs >= report.jobs // 2
    if expect_shrink:
        # a mid-stream shrink happened...
        degraded = [v.job_id for v in report.verdicts
                    if v.status == JobStatus.DEGRADED]
        assert degraded, "no job degraded; soak never exercised shrink"
        # ...and the queue kept serving afterwards: a later job converged
        first_shrink = min(degraded)
        later_ok = [v for v in report.verdicts
                    if v.job_id > first_shrink
                    and v.status in (JobStatus.OK, JobStatus.DEGRADED)]
        assert later_ok, "queue stopped serving after the first shrink"


@needs_chaos
def test_process_soak_32_jobs_contract():
    report = soak_run(
        jobs=32, seed=SOAK_SEED, backend="process", nprocs=4, n=48,
        tenants=4, crash_prob=0.3, straggler_prob=0.2, policy="shrink",
        deadline=60.0,
    )
    _assert_stream_contract(report)
    # zero leaked workers at drain -- the report snapshots it, and we
    # double-check live
    assert report.leaked_workers == []
    assert leaked_pool_workers() == []
    # full-rank outcomes were bitwise, not merely close
    full_rank_ok = [v for v in report.verdicts if v.status == JobStatus.OK]
    assert full_rank_ok and all(v.bitwise for v in full_rank_ok)
    # the pool healed back to target at the end of the stream
    pool_state = report.final_status["pool"]
    assert pool_state["generation_size"] in (0, 4)
    # multi-tenant stream: every tenant was served
    assert len({v.tenant for v in report.verdicts}) == 4


def test_simulated_soak_contract():
    report = soak_run(
        jobs=16, seed=SOAK_SEED, backend="simulated", nprocs=4, n=48,
        tenants=3, crash_prob=0.35, straggler_prob=0.25, policy="shrink",
    )
    _assert_stream_contract(report)
    assert report.leaked_workers == []  # trivially: no processes involved


def test_simulated_soak_respawn_policy_full_rank_bitwise():
    # under respawn nothing ever shrinks: every converged job must be
    # bitwise-identical to the reference (crash recovery replays exactly)
    report = soak_run(
        jobs=12, seed=SOAK_SEED + 1, backend="simulated", nprocs=4, n=48,
        crash_prob=0.5, straggler_prob=0.0, policy="respawn",
    )
    _assert_stream_contract(report, expect_shrink=False,
                            expect_faults=("crash",))
    converged = [v for v in report.verdicts if v.status == JobStatus.OK]
    assert converged and all(v.bitwise for v in converged)
    assert all(v.nprocs_final == 4 for v in converged)
    crashes = [v for v in converged if v.fault == "crash"]
    assert crashes, "seed drew no crash among converged jobs"


def test_soak_report_serializes():
    report = soak_run(
        jobs=4, seed=0, backend="simulated", nprocs=4, n=48,
        crash_prob=0.0, straggler_prob=0.0,
    )
    import json

    payload = json.loads(json.dumps(report.as_dict()))
    assert payload["jobs"] == 4 and payload["contract_held"]
    assert len(payload["verdicts"]) == 4
    assert "counters" in payload and "final_status" in payload
