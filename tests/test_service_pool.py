"""Warm pool mechanics: reuse, condemnation, healing, crash handling.

Everything here runs real OS processes; the numerical path through the
pool is identical to the one-shot backend (same ``_drive``), so these
tests focus on generation lifecycle -- the part that is new.
"""

import multiprocessing as mp
import os
import signal
import time

import numpy as np
import pytest

from repro.backend import (
    BackendTimeoutError,
    WorkerFailedError,
    process_backend_support,
)
from repro.backend.base import WorkerCrashedError
from repro.backend.process import ProcessBackend, crash_injection_support
from repro.machine.events import Barrier, Compute, Recv, Send
from repro.service import WarmPool, leaked_pool_workers

_OK, _DETAIL = process_backend_support()
needs_process = pytest.mark.skipif(
    not _OK, reason=f"process backend unavailable: {_DETAIL}"
)
_KILL_OK, _KILL_DETAIL = crash_injection_support()
needs_kill = pytest.mark.skipif(
    not _KILL_OK, reason=f"crash injection unavailable: {_KILL_DETAIL}"
)


# ------------------------------------------------------------------ #
# module-level (picklable) programs
# ------------------------------------------------------------------ #
class RingProgram:
    """Every rank passes its id right and returns what arrived from left."""

    def __call__(self, rank, size):
        yield Compute(10.0)
        yield Send(dest=(rank + 1) % size, payload=np.float64(rank), tag=1)
        got = yield Recv(source=(rank - 1) % size, tag=1)
        yield Barrier("done")
        return float(got)


class FailOnceMarkerProgram:
    """Rank 1 raises; used to condemn a generation on demand."""

    def __call__(self, rank, size):
        yield Compute(1.0)
        if rank == 1:
            raise RuntimeError("deliberate pool-job failure")
        return rank


class BlockingRecvProgram:
    """Rank 0 posts a receive nobody satisfies (deadline fodder)."""

    def __call__(self, rank, size):
        if rank == 0:
            got = yield Recv(source=1, tag=99)
            return got
        yield Compute(1.0)
        return rank


def _expected_ring(size):
    return [float((r - 1) % size) for r in range(size)]


@pytest.fixture
def pool():
    p = WarmPool(2, timeout=30.0)
    yield p
    p.shutdown()
    # the reaper uses bounded joins; give the OS a beat, then assert
    deadline = time.monotonic() + 5.0
    while leaked_pool_workers() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert leaked_pool_workers() == []


@needs_process
class TestWarmReuse:
    def test_workers_survive_across_jobs(self, pool):
        r1 = pool.run(RingProgram(), 2)
        pids = sorted(w.pid for w in pool._gen.workers)
        r2 = pool.run(RingProgram(), 2)
        r3 = pool.run(RingProgram(), 2)
        assert r1.results == r2.results == r3.results == _expected_ring(2)
        assert sorted(w.pid for w in pool._gen.workers) == pids
        assert pool.rebuilds == 1  # one generation served all three
        assert pool.jobs_served == 3
        assert pool.healthy()

    def test_stats_and_per_rank_reports_intact(self, pool):
        run = pool.run(RingProgram(), 2)
        assert run.stats.total_messages == 2
        assert run.stats.total_flops == 20.0
        assert len(run.per_rank) == 2
        assert all(rep["wall"] >= 0.0 for rep in run.per_rank)

    def test_size_change_rebuilds(self, pool):
        pool.run(RingProgram(), 2)
        run = pool.run(RingProgram(), 1)  # shrink request
        assert run.results == [0.0]
        assert pool.generation_size == 1
        assert pool.rebuilds == 2

    def test_context_manager_shuts_down(self):
        with WarmPool(2, timeout=30.0) as p:
            p.run(RingProgram(), 2)
        time.sleep(0.2)
        assert leaked_pool_workers() == []


@needs_process
class TestCondemnation:
    def test_worker_error_condemns_and_next_run_rebuilds(self, pool):
        pool.run(RingProgram(), 2)
        first_rebuilds = pool.rebuilds
        with pytest.raises(WorkerFailedError) as err:
            pool.run(FailOnceMarkerProgram(), 2)
        assert "deliberate pool-job failure" in str(err.value)
        assert pool.generation_size == 0  # condemned immediately
        run = pool.run(RingProgram(), 2)  # transparently rebuilt
        assert run.results == _expected_ring(2)
        assert pool.rebuilds == first_rebuilds + 1

    def test_deadline_condemns(self, pool):
        pool.timeout = 1.0
        # the worker-side hard deadline usually fires first and surfaces
        # as a WorkerFailedError embedding the BackendTimeoutError (same
        # as the one-shot backend; classify_failure maps both to
        # "timeout"); the parent-side deadline raises the typed error
        with pytest.raises((BackendTimeoutError, WorkerFailedError)) as err:
            pool.run(BlockingRecvProgram(), 2)
        assert "BackendTimeoutError" in f"{type(err.value).__name__}" \
            or "BackendTimeoutError" in str(err.value)
        assert pool.generation_size == 0
        time.sleep(0.2)
        assert leaked_pool_workers() == []  # condemned = fully reaped
        pool.timeout = 30.0
        assert pool.run(RingProgram(), 2).results == _expected_ring(2)

    @needs_kill
    def test_external_sigkill_is_failstop_crash(self, pool):
        pool.run(RingProgram(), 2)
        rebuilds_before = pool.rebuilds
        victim = pool._gen.workers[1]
        os.kill(victim.pid, signal.SIGKILL)
        # the kill races the next dispatch: usually the job is in flight
        # when the death is noticed and surfaces as a typed fail-stop
        # crash; if _ensure_generation sees the corpse first it rebuilds
        # up front and the job succeeds (the idle-death path below).
        # Either way the generation is condemned, rebuilt exactly once,
        # and never produces a wrong answer.
        try:
            run = pool.run(RingProgram(), 2)
        except (WorkerCrashedError, WorkerFailedError):
            pass
        else:
            assert run.results == _expected_ring(2)
        # rebuilt generation serves normally
        assert pool.run(RingProgram(), 2).results == _expected_ring(2)
        assert pool.rebuilds == rebuilds_before + 1

    def test_idle_worker_death_detected_on_next_run(self, pool):
        pool.run(RingProgram(), 2)
        if not _KILL_OK:
            pytest.skip(_KILL_DETAIL)
        os.kill(pool._gen.workers[0].pid, signal.SIGKILL)
        time.sleep(0.2)
        # _ensure_generation sees the dead worker and rebuilds up front,
        # so the job itself still succeeds
        run = pool.run(RingProgram(), 2)
        assert run.results == _expected_ring(2)
        assert pool.rebuilds == 2


@needs_process
class TestHeal:
    def test_heal_regrows_to_target(self, pool):
        pool.run(RingProgram(), 1)
        assert pool.generation_size == 1
        assert pool.heal() == 2  # back to target_nprocs
        assert pool.run(RingProgram(), 2).results == _expected_ring(2)

    def test_heal_is_cheap_when_healthy(self, pool):
        pool.run(RingProgram(), 2)
        pids = sorted(w.pid for w in pool._gen.workers)
        assert pool.heal() == 2
        assert sorted(w.pid for w in pool._gen.workers) == pids
        assert pool.rebuilds == 1  # no-op, not a rebuild

    def test_heal_on_cold_pool_builds(self):
        with WarmPool(2, timeout=30.0) as p:
            assert p.generation_size == 0
            assert p.heal() == 2
            assert p.healthy()


@needs_process
class TestShutdown:
    def test_shutdown_idempotent_and_leakfree(self):
        p = WarmPool(2, timeout=30.0)
        p.run(RingProgram(), 2)
        p.shutdown()
        p.shutdown()  # second call is a no-op
        time.sleep(0.2)
        assert leaked_pool_workers() == []
        assert p.generation_size == 0

    def test_shutdown_unstarted_pool(self):
        WarmPool(2).shutdown()  # nothing to do, nothing to raise
