"""Numerical invariants of the CG recurrence (Section 2 theory).

Beyond "it converges": the defining structural properties of conjugate
gradients, checked on the actual iterates --

* residuals are mutually orthogonal,
* search directions are A-conjugate,
* the A-norm of the error decreases monotonically,
* alpha and beta match their closed-form Rayleigh expressions.
"""

import numpy as np
import pytest

from repro.core import StoppingCriterion
from repro.sparse import poisson2d, random_sparse_symmetric, rhs_for_solution


def _instrumented_cg(A, b, iterations):
    """Run CG keeping every iterate (reference recurrence, no stopping)."""
    n = A.nrows
    x = np.zeros(n)
    r = b.copy()
    p = r.copy()
    rho = float(r @ r)
    xs, rs, ps = [x.copy()], [r.copy()], [p.copy()]
    for _ in range(iterations):
        q = A.matvec(p)
        alpha = rho / float(p @ q)
        x = x + alpha * p
        r = r - alpha * q
        rho0, rho = rho, float(r @ r)
        beta = rho / rho0
        p = r + beta * p
        xs.append(x.copy())
        rs.append(r.copy())
        ps.append(p.copy())
    return xs, rs, ps


@pytest.fixture
def system(rng):
    A = poisson2d(6, 6)
    xt = rng.standard_normal(36)
    return A, xt, rhs_for_solution(A, xt)


class TestCgInvariants:
    def test_residual_orthogonality(self, system):
        A, _, b = system
        _, rs, _ = _instrumented_cg(A, b, 10)
        for i in range(8):
            for j in range(i + 1, 8):
                cos = abs(rs[i] @ rs[j]) / (
                    np.linalg.norm(rs[i]) * np.linalg.norm(rs[j])
                )
                assert cos < 1e-7, (i, j, cos)

    def test_search_direction_a_conjugacy(self, system):
        A, _, b = system
        _, _, ps = _instrumented_cg(A, b, 10)
        dense = A.toarray()
        for i in range(8):
            for j in range(i + 1, 8):
                val = abs(ps[i] @ dense @ ps[j])
                scale = np.sqrt((ps[i] @ dense @ ps[i]) * (ps[j] @ dense @ ps[j]))
                assert val / scale < 1e-7, (i, j)

    def test_a_norm_error_monotone_decrease(self, system):
        A, xt, b = system
        xs, _, _ = _instrumented_cg(A, b, 15)
        dense = A.toarray()
        errors = [float((x - xt) @ dense @ (x - xt)) for x in xs]
        for e0, e1 in zip(errors[:-1], errors[1:]):
            assert e1 <= e0 * (1 + 1e-12)

    def test_residual_matches_definition(self, system):
        """The recurrence's r_k equals b - A x_k throughout."""
        A, _, b = system
        xs, rs, _ = _instrumented_cg(A, b, 12)
        for x, r in zip(xs, rs):
            assert np.allclose(r, b - A.matvec(x), atol=1e-10)

    def test_alpha_is_rayleigh_optimal_step(self, system):
        """alpha_k minimises the A-norm error along p_k (line-search optimality)."""
        A, xt, b = system
        xs, rs, ps = _instrumented_cg(A, b, 6)
        dense = A.toarray()
        for k in range(5):
            alpha = float(rs[k] @ rs[k]) / float(ps[k] @ dense @ ps[k])

            def err(a):
                e = xs[k] + a * ps[k] - xt
                return float(e @ dense @ e)

            assert err(alpha) <= err(alpha * 1.01) + 1e-12
            assert err(alpha) <= err(alpha * 0.99) + 1e-12

    def test_krylov_exactness_on_random_spd(self, rng):
        """Full CG terminates (to round-off) within n iterations."""
        A = random_sparse_symmetric(16, nnz_per_row=5, seed=3)
        xt = rng.standard_normal(16)
        b = rhs_for_solution(A, xt)
        _, rs, _ = _instrumented_cg(A, b, 16)
        assert np.linalg.norm(rs[-1]) < 1e-6 * np.linalg.norm(b)
