"""Smoke tests: every example script must run to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_expected_example_set_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "cfd_pressure_poisson",
        "structural_analysis",
        "circuit_simulation",
        "hpf_directives_tour",
        "irregular_load_balancing",
        "machine_trace_gantt",
        "nonsymmetric_solvers",
    } <= names
