"""Property tests for the directive-expression mini-language.

Random expression trees are rendered to text, re-tokenised through the
directive parser, and evaluated -- the result must equal direct AST
evaluation, and evaluation must match Fortran integer-division semantics.
"""

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.hpf.directives import (
    BinOp,
    DirectiveSyntaxError,
    Num,
    Var,
    parse_directive,
)

SLOW = settings(
    deadline=None,
    max_examples=60,
    suppress_health_check=[HealthCheck.too_slow],
)

ENV = {"n": 100, "NP": 4, "nz": 500, "m": 7}


@st.composite
def expr_trees(draw, depth=0):
    """Random arithmetic expression ASTs over ENV's variables."""
    if depth >= 3 or draw(st.booleans()):
        if draw(st.booleans()):
            return Num(draw(st.integers(min_value=0, max_value=50)))
        return Var(draw(st.sampled_from(sorted(ENV))))
    op = draw(st.sampled_from(["+", "-", "*", "/"]))
    left = draw(expr_trees(depth=depth + 1))
    right = draw(expr_trees(depth=depth + 1))
    return BinOp(op, left, right)


def _safe_eval(expr):
    """Evaluate, returning None when a division by zero occurs anywhere."""
    try:
        return expr.eval(ENV)
    except DirectiveSyntaxError:
        return None


@given(expr_trees())
@SLOW
def test_render_parse_eval_round_trip(expr):
    """str(expr) fed back through the parser evaluates identically."""
    direct = _safe_eval(expr)
    assume(direct is not None)
    line = f"!HPF$ DISTRIBUTE x(BLOCK({expr}))"
    reparsed = parse_directive(line).dist.block_size
    assert reparsed.eval(ENV) == direct


@given(expr_trees())
@SLOW
def test_fortran_division_truncates_toward_zero(expr):
    """Check the truncation convention on every division in the tree."""
    direct = _safe_eval(expr)
    assume(direct is not None)

    def python_eval(e):
        if isinstance(e, Num):
            return e.value
        if isinstance(e, Var):
            return ENV[e.name] if e.name in ENV else ENV[e.name.lower()]
        a, b = python_eval(e.left), python_eval(e.right)
        if e.op == "+":
            return a + b
        if e.op == "-":
            return a - b
        if e.op == "*":
            return a * b
        # Fortran: truncate toward zero (not Python floor)
        return int(a / b)

    assert direct == python_eval(expr)


@given(
    st.integers(min_value=-100, max_value=100),
    st.integers(min_value=-100, max_value=100),
)
@SLOW
def test_division_matches_fortran_for_all_sign_combinations(a, b):
    assume(b != 0)
    expr = BinOp("/", Num(0), Num(1))  # placeholder shape
    expr = BinOp("/", BinOp("-", Num(0), Num(-a)) if a >= 0 else Num(a), Num(b))
    # build simply: (a) / (b) with a possibly negative via 0 - |a|
    lhs = Num(a) if a >= 0 else BinOp("-", Num(0), Num(-a))
    rhs = Num(b) if b >= 0 else BinOp("-", Num(0), Num(-b))
    expr = BinOp("/", lhs, rhs)
    assert expr.eval({}) == int(a / b)  # truncation toward zero
