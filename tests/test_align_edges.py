"""Edge-case tests for alignment groups and the aligned() predicate."""

import numpy as np
import pytest

from repro.hpf import (
    AlignmentError,
    AlignmentGroup,
    Block,
    Cyclic,
    DistributedArray,
    IrregularBlock,
    aligned,
)
from repro.machine import Machine


class TestAlignmentGroupEdges:
    def test_add_is_idempotent(self, machine4):
        p = DistributedArray(machine4, 8, name="p")
        q = DistributedArray(machine4, 8, name="q").align_with(p)
        q.align_with(p)  # again
        assert len(p.group) == 2

    def test_names(self, machine4):
        p = DistributedArray(machine4, 8, name="p")
        DistributedArray(machine4, 8, name="q").align_with(p)
        assert p.group.names() == ["p", "q"]

    def test_contains(self, machine4):
        p = DistributedArray(machine4, 8, name="p")
        q = DistributedArray(machine4, 8, name="q").align_with(p)
        other = DistributedArray(machine4, 8, name="o")
        assert q in p.group
        assert other not in p.group

    def test_alignee_with_different_layout_is_moved(self, machine4, rng):
        """Joining a group relays the newcomer onto the target's layout."""
        values = rng.standard_normal(8)
        p = DistributedArray(machine4, 8, Cyclic(8, 4), name="p")
        q = DistributedArray.from_global(machine4, values, Block(8, 4), name="q")
        q.align_with(p)
        assert q.distribution.same_mapping(p.distribution)
        assert np.allclose(q.to_global(), values)

    def test_group_redistribute_uncharged_option(self, machine4):
        p = DistributedArray(machine4, 8, name="p")
        DistributedArray(machine4, 8, name="q").align_with(p)
        before = machine4.stats.snapshot()
        p.group.redistribute(Cyclic(8, 4), charge=False)
        assert before.since(machine4.stats).words == 0

    def test_new_aligned_helper(self, machine4):
        p = DistributedArray(machine4, 8, Cyclic(8, 4), name="p")
        w = p.new_aligned("w", fill=5.0)
        assert w.distribution.same_mapping(p.distribution)
        assert (w.to_global() == 5.0).all()
        assert w in p.group


class TestAlignedPredicateEdges:
    def test_single_and_empty(self, machine4):
        p = DistributedArray(machine4, 8)
        assert aligned(p)
        assert aligned()

    def test_irregular_matching_block_counts_as_aligned(self, machine4):
        p = DistributedArray(machine4, 8, Block(8, 4))
        q = DistributedArray(machine4, 8, IrregularBlock([0, 2, 4, 6, 8]))
        assert aligned(p, q)

    def test_extent_mismatch_not_aligned(self, machine4):
        assert not aligned(
            DistributedArray(machine4, 8), DistributedArray(machine4, 9)
        )
