"""SIGKILL the *service driver* mid-stream; replay from the journal.

The service-level mirror of ``test_resilient_hpcg.py``'s driver-restart
test: a child process runs a journaled :class:`SolverService`, submits a
keyed job stream, and SIGKILLs itself after a fixed number of
completions — deterministically leaving a mix of terminal, queued, and
possibly in-flight jobs in the journal.  A fresh service opened on the
same ``journal_dir`` must then complete **every accepted job exactly
once**: already-terminal jobs answer resubmissions from their recorded
results (never re-run), the rest replay and converge, and with
``reproducible=True`` every answer — recorded or replayed — is
bitwise-identical to an independent reference solve.
"""

import os
import signal
import subprocess
import sys
import textwrap

import numpy as np

from repro.backend.chaos import _chaos_problem
from repro.backend.simulated import SimulatedBackend
from repro.backend.solve import backend_solve
from repro.core.stopping import StoppingCriterion
from repro.service import JobJournal, JobSpec, JobStatus, SolverService
from repro.service.journal import COMPLETED

JOBS = 8
KILL_AFTER = 3  # completions witnessed before the child SIGKILLs itself
N = 32
NPROCS = 4

_KILLED_DRIVER = textwrap.dedent("""
    import os, signal
    from repro.backend.chaos import _chaos_problem
    from repro.backend.simulated import SimulatedBackend
    from repro.core.stopping import StoppingCriterion
    from repro.service import JobSpec, SolverService

    JOBS, KILL_AFTER, N = %(jobs)d, %(kill_after)d, %(n)d
    A, b = _chaos_problem(N)
    svc = SolverService(
        backend=SimulatedBackend(),
        journal_dir=os.environ["JOURNAL_DIR"],
    ).start()
    handles = [
        svc.submit(JobSpec(
            matrix=A, b=b, tenant=f"t{i %% 2}", nprocs=%(nprocs)d,
            criterion=StoppingCriterion(rtol=1e-10, atol=0.0),
            reproducible=True, idempotency_key=f"job-{i}",
        ))
        for i in range(JOBS)
    ]
    # wait for the first KILL_AFTER completions, then die the hard way:
    # no drain, no park, no close -- the journal is all that survives
    for h in handles[:KILL_AFTER]:
        assert h.result(timeout=60.0).ok
    os.kill(os.getpid(), signal.SIGKILL)
    raise SystemExit("unreachable: the driver should have been killed")
""") % {"jobs": JOBS, "kill_after": KILL_AFTER, "n": N, "nprocs": NPROCS}


def test_sigkill_service_driver_then_replay(tmp_path):
    journal_dir = str(tmp_path / "journal")
    env = dict(os.environ, JOURNAL_DIR=journal_dir,
               PYTHONPATH=os.pathsep.join(sys.path))
    proc = subprocess.run(
        [sys.executable, "-c", _KILLED_DRIVER],
        env=env, capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == -signal.SIGKILL, proc.stderr

    # the dead driver journaled every accepted job; some are terminal
    journal = JobJournal(journal_dir)
    assert journal.tmp_files() == []
    keys = [f"job-{i}" for i in range(JOBS)]
    states = {k: journal.state(k) for k in keys}
    assert all(s is not None for s in states.values()), "lost accepted jobs"
    done_before = [k for k in keys if states[k].terminal == COMPLETED]
    pending = [k for k in keys if states[k].terminal is None]
    assert len(done_before) >= KILL_AFTER  # the witnessed completions
    assert pending, "kill came too late: nothing left to replay"
    assert len(done_before) + len(pending) == JOBS

    # an independent reference: reproducible reductions make the answer
    # bitwise-identical no matter which driver generation computes it
    A, b = _chaos_problem(N)
    crit = StoppingCriterion(rtol=1e-10, atol=0.0)
    ref = backend_solve("cg", A, b, backend="simulated", nprocs=NPROCS,
                        criterion=crit, reproducible=True).x

    # restart on the same journal: pending jobs replay, terminal jobs
    # answer resubmissions from the record -- each job exactly once
    with SolverService(backend=SimulatedBackend(),
                       journal_dir=journal_dir) as svc:
        assert svc.counters.replayed == len(pending)
        resubmitted = [
            svc.submit(JobSpec(
                matrix=A, b=b, tenant=f"t{i % 2}", nprocs=NPROCS,
                criterion=crit, reproducible=True,
                idempotency_key=f"job-{i}",
            ))
            for i in range(JOBS)
        ]
        results = {k: h.result(timeout=120.0)
                   for k, h in zip(keys, resubmitted)}
    # every resubmission joined an existing (live or recorded) job
    assert svc.counters.deduped == JOBS
    assert svc.counters.submitted == 0
    # no duplicated completions: only the pending jobs ran this time
    assert svc.counters.completed == len(pending)
    assert svc.counters.quarantined == 0

    for key in keys:
        res = results[key]
        assert res.status == JobStatus.OK, (key, res.status, res.error)
        np.testing.assert_array_equal(res.x, ref)  # bitwise, both paths

    # the journal agrees: every job has exactly one terminal record path
    final = JobJournal(journal_dir)
    assert all(final.state(k).terminal == COMPLETED for k in keys)
    assert final.replayable() == []

    # a third generation finds nothing to do
    with SolverService(backend=SimulatedBackend(),
                       journal_dir=journal_dir) as svc3:
        assert svc3.counters.replayed == 0
