"""Tests for RCM bandwidth reordering."""

import numpy as np
import pytest

from repro.core import CsrHalo, StoppingCriterion, cg_reference
from repro.machine import Machine
from repro.sparse import (
    bandwidth,
    irregular_powerlaw,
    is_symmetric,
    permute_symmetric,
    poisson2d,
    rcm_permutation,
    reorder_rcm,
)


@pytest.fixture
def scrambled_stencil(rng):
    A = poisson2d(12, 12)
    perm = rng.permutation(A.nrows)
    return A, permute_symmetric(A, perm)


class TestPermuteSymmetric:
    def test_entry_mapping(self, rng):
        A = poisson2d(5, 5)
        perm = rng.permutation(25)
        B = permute_symmetric(A, perm)
        assert np.allclose(B.toarray(), A.toarray()[np.ix_(perm, perm)])

    def test_identity_permutation(self, spd_small):
        B = permute_symmetric(spd_small, np.arange(spd_small.nrows))
        assert np.allclose(B.toarray(), spd_small.toarray())

    def test_preserves_symmetry_and_nnz(self, scrambled_stencil):
        A, S = scrambled_stencil
        assert is_symmetric(S)
        assert S.nnz == A.nnz

    def test_invalid_permutation_rejected(self, spd_small):
        with pytest.raises(ValueError):
            permute_symmetric(spd_small, np.zeros(spd_small.nrows, dtype=int))

    def test_rectangular_rejected(self):
        from repro.sparse import COOMatrix

        rect = COOMatrix([0], [1], [1.0], shape=(2, 3))
        with pytest.raises(ValueError):
            permute_symmetric(rect, np.array([0, 1]))


class TestRcm:
    def test_permutation_is_valid(self, spd_small):
        perm = rcm_permutation(spd_small)
        assert sorted(perm.tolist()) == list(range(spd_small.nrows))

    def test_recovers_stencil_bandwidth(self, scrambled_stencil):
        """Scrambling a 12x12 grid destroys locality; RCM restores it."""
        A, S = scrambled_stencil
        R, _ = reorder_rcm(S)
        assert bandwidth(S) > 3 * bandwidth(A)
        assert bandwidth(R) <= 2 * bandwidth(A)

    def test_reduces_halo_volume_on_scrambled_stencil(self, scrambled_stencil):
        _, S = scrambled_stencil
        R, _ = reorder_rcm(S)
        halo_scrambled = CsrHalo(Machine(nprocs=4), S)
        halo_rcm = CsrHalo(Machine(nprocs=4), R)
        assert halo_rcm.halo_words_total() < halo_scrambled.halo_words_total()

    def test_solution_maps_back(self, rng):
        A = irregular_powerlaw(80, seed=4)
        xt = rng.standard_normal(80)
        b = A.matvec(xt)
        B, perm = reorder_rcm(A)
        res = cg_reference(B, b[perm], criterion=StoppingCriterion(rtol=1e-12))
        assert res.converged
        x = np.empty(80)
        x[perm] = res.x
        assert np.allclose(x, xt, atol=1e-6)

    def test_reordered_matrix_equivalent_operator(self, rng):
        A = poisson2d(6, 6)
        B, perm = reorder_rcm(A)
        v = rng.standard_normal(36)
        # B (P v) == P (A v) where (P v)[i] = v[perm[i]]
        assert np.allclose(B.matvec(v[perm]), A.matvec(v)[perm])
