"""Unit tests for the discrete-event SPMD scheduler."""

import numpy as np
import pytest

from repro.machine import (
    ANY_SOURCE,
    Barrier,
    Compute,
    DeadlockError,
    Machine,
    Recv,
    Scheduler,
    Send,
    payload_words,
    run_spmd,
)


class TestPayloadWords:
    def test_none_is_zero(self):
        assert payload_words(None) == 0.0

    def test_scalar_is_one(self):
        assert payload_words(3.14) == 1.0
        assert payload_words(7) == 1.0

    def test_array_counts_elements(self):
        assert payload_words(np.zeros(50)) == 50.0

    def test_containers_sum(self):
        assert payload_words((np.zeros(10), 1.0)) == 11.0
        assert payload_words({"a": np.zeros(4), "b": 2}) == 5.0


class TestBasicExchange:
    def test_two_rank_ping(self):
        def prog(rank, size):
            if rank == 0:
                yield Send(dest=1, payload=42)
                reply = yield Recv(source=1)
                return reply
            value = yield Recv(source=0)
            yield Send(dest=0, payload=value + 1)
            return value

        m = Machine(nprocs=2)
        results = run_spmd(m, prog)
        assert results == [43, 42]
        assert m.stats.total_messages == 2

    def test_any_source(self):
        def prog(rank, size):
            if rank == 0:
                got = []
                for _ in range(size - 1):
                    got.append((yield Recv(source=ANY_SOURCE)))
                return sorted(got)
            yield Send(dest=0, payload=rank)
            return None

        m = Machine(nprocs=4)
        results = run_spmd(m, prog)
        assert results[0] == [1, 2, 3]

    def test_any_source_order_is_deterministic(self):
        """ANY_SOURCE drains pending sends in enqueue order (the scheduler
        advances ranks in rank order each round), independent of the
        senders' virtual-time costs -- and the order repeats across runs."""

        def prog(rank, size):
            if rank == 0:
                got = []
                for _ in range(size - 1):
                    got.append((yield Recv(source=ANY_SOURCE)))
                return got
            yield Compute(1000 * (size - rank))  # virtual time must not matter
            yield Send(dest=0, payload=rank)
            return None

        runs = [run_spmd(Machine(nprocs=4), prog)[0] for _ in range(3)]
        assert runs[0] == [1, 2, 3]
        assert runs[0] == runs[1] == runs[2]

    def test_compute_advances_clock(self):
        def prog(rank, size):
            yield Compute(1000)
            return None

        m = Machine(nprocs=2)
        run_spmd(m, prog)
        assert m.elapsed() == pytest.approx(1000 * m.cost.t_flop)
        assert m.stats.total_flops == 2000

    def test_tag_matching(self):
        def prog(rank, size):
            if rank == 0:
                yield Send(dest=1, payload="a", tag=5)
                yield Send(dest=1, payload="b", tag=9)
                return None
            second = yield Recv(source=0, tag=9)
            first = yield Recv(source=0, tag=5)
            return (first, second)

        m = Machine(nprocs=2)
        results = run_spmd(m, prog)
        assert results[1] == ("a", "b")

    def test_message_order_preserved_per_tag(self):
        def prog(rank, size):
            if rank == 0:
                for i in range(5):
                    yield Send(dest=1, payload=i)
                return None
            got = []
            for _ in range(5):
                got.append((yield Recv(source=0)))
            return got

        m = Machine(nprocs=2)
        assert run_spmd(m, prog)[1] == [0, 1, 2, 3, 4]


class TestBarrier:
    def test_barrier_synchronises(self):
        def prog(rank, size):
            yield Compute(rank * 1000)
            yield Barrier()
            return None

        m = Machine(nprocs=4)
        run_spmd(m, prog)
        assert np.allclose(m.clock, m.clock[0])

    def test_barrier_after_rank_done_raises(self):
        def prog(rank, size):
            if rank == 0:
                return None  # finishes immediately, never reaches barrier
            yield Barrier()
            return None

        m = Machine(nprocs=2)
        with pytest.raises(DeadlockError):
            run_spmd(m, prog)


class TestDeadlockDetection:
    def test_mutual_recv_deadlocks(self):
        def prog(rank, size):
            other = 1 - rank
            value = yield Recv(source=other)
            return value

        with pytest.raises(DeadlockError):
            run_spmd(Machine(nprocs=2), prog)

    def test_recv_from_silent_rank_deadlocks(self):
        def prog(rank, size):
            if rank == 0:
                value = yield Recv(source=1)
                return value
            return None

        with pytest.raises(DeadlockError):
            run_spmd(Machine(nprocs=2), prog)

    def test_send_to_invalid_rank(self):
        def prog(rank, size):
            yield Send(dest=99, payload=1)

        with pytest.raises(ValueError):
            run_spmd(Machine(nprocs=2), prog)

    def test_non_op_yield_rejected(self):
        def prog(rank, size):
            yield "not an op"

        with pytest.raises(TypeError):
            run_spmd(Machine(nprocs=1), prog)


class TestTimingSemantics:
    def test_receiver_waits_for_late_sender(self):
        def prog(rank, size):
            if rank == 0:
                yield Compute(1_000_000)  # slow sender
                yield Send(dest=1, payload=np.zeros(10))
                return None
            data = yield Recv(source=0)
            return data.size

        m = Machine(nprocs=2)
        results = run_spmd(m, prog)
        assert results[1] == 10
        expected = 1_000_000 * m.cost.t_flop + m.cost.message_time(10)
        assert m.clock[1] == pytest.approx(expected)

    def test_explicit_nwords_overrides_payload(self):
        def prog(rank, size):
            if rank == 0:
                yield Send(dest=1, payload=1, nwords=5000)
            else:
                yield Recv(source=0)
            return None

        m = Machine(nprocs=2)
        run_spmd(m, prog)
        assert m.stats.total_words == 5000
