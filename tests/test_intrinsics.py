"""Tests for the HPF intrinsic wrappers."""

import numpy as np
import pytest

from repro.hpf import (
    DistributedArray,
    dot_product,
    maxval,
    minval,
    sum_,
    sum_private_copies,
)
from repro.machine import Machine


class TestDotProduct:
    def test_value_and_comm(self, rng):
        m = Machine(nprocs=4)
        xv, yv = rng.standard_normal(10), rng.standard_normal(10)
        x = DistributedArray.from_global(m, xv)
        y = DistributedArray.from_global(m, yv)
        assert dot_product(x, y) == pytest.approx(float(xv @ yv))
        assert m.stats.by_op()["allreduce"]["count"] == 1

    def test_tag_attribution(self, rng):
        m = Machine(nprocs=4)
        x = DistributedArray.from_global(m, rng.standard_normal(8))
        dot_product(x, x, tag="sdot")
        assert "sdot" in m.stats.by_tag()


class TestScalarReductions:
    def test_sum(self, machine4):
        x = DistributedArray.from_global(machine4, np.arange(9.0))
        assert sum_(x) == pytest.approx(36.0)

    def test_maxval_minval(self, machine4, rng):
        v = rng.standard_normal(13)
        x = DistributedArray.from_global(machine4, v)
        assert maxval(x) == pytest.approx(v.max())
        assert minval(x) == pytest.approx(v.min())

    def test_maxval_with_empty_rank(self, machine4):
        # n=2 on 4 ranks: two ranks empty; reduction must still work
        x = DistributedArray.from_global(machine4, np.array([3.0, -1.0]))
        assert maxval(x) == 3.0
        assert minval(x) == -1.0

    def test_reduction_over_empty_array(self, machine4):
        x = DistributedArray(machine4, 0)
        with pytest.raises(ValueError):
            maxval(x)


class TestSumPrivateCopies:
    def test_merge_correctness(self, rng):
        m = Machine(nprocs=4)
        copies = [rng.standard_normal(10) for _ in range(4)]
        out = DistributedArray(m, 10)
        sum_private_copies(copies, out)
        assert np.allclose(out.to_global(), np.sum(copies, axis=0))

    def test_merge_cost_recorded(self):
        m = Machine(nprocs=4)
        out = DistributedArray(m, 10)
        sum_private_copies([np.ones(10)] * 4, out, tag="merge")
        ops = m.stats.by_op()
        assert "reduce_scatter" in ops
        assert m.stats.by_tag()["merge"]["count"] == 1

    def test_copy_count_checked(self, machine4):
        out = DistributedArray(machine4, 4)
        with pytest.raises(ValueError):
            sum_private_copies([np.ones(4)] * 3, out)

    def test_copy_shape_checked(self, machine4):
        out = DistributedArray(machine4, 4)
        with pytest.raises(ValueError):
            sum_private_copies([np.ones(5)] * 4, out)
