"""Tests for the message-passing and direct-method baselines."""

import numpy as np
import pytest

from repro.baselines import direct_solve, direct_vs_cg_flops, spmd_cg
from repro.core import StoppingCriterion, cg_reference, hpf_cg, make_strategy
from repro.machine import Machine
from repro.sparse import poisson2d, rhs_for_solution

CRIT = StoppingCriterion(rtol=1e-10)


class TestSpmdCg:
    @pytest.mark.parametrize("nprocs,topology", [(1, "hypercube"), (2, "hypercube"),
                                                 (3, "ring"), (4, "hypercube"),
                                                 (8, "hypercube")])
    def test_solution_across_sizes(self, nprocs, topology, spd_small, rng):
        xt = rng.standard_normal(spd_small.nrows)
        b = rhs_for_solution(spd_small, xt)
        m = Machine(nprocs=nprocs, topology=topology)
        res = spmd_cg(m, spd_small, b, criterion=CRIT)
        assert res.converged
        assert np.allclose(res.x, xt, atol=1e-6)

    def test_iterations_match_sequential(self, spd_small, rng):
        b = rng.standard_normal(spd_small.nrows)
        seq = cg_reference(spd_small, b, criterion=CRIT)
        m = Machine(nprocs=4)
        mp = spmd_cg(m, spd_small, b, criterion=CRIT)
        assert abs(mp.iterations - seq.iterations) <= 1

    def test_history_recorded(self, spd_small, rng):
        b = rng.standard_normal(spd_small.nrows)
        m = Machine(nprocs=4)
        res = spmd_cg(m, spd_small, b, criterion=CRIT)
        assert len(res.history.residual_norms) == res.iterations + 1

    def test_nonzero_initial_guess(self, spd_small, rng):
        xt = rng.standard_normal(spd_small.nrows)
        b = rhs_for_solution(spd_small, xt)
        m = Machine(nprocs=4)
        res = spmd_cg(m, spd_small, b, x0=xt.copy(), criterion=CRIT)
        assert res.converged
        assert res.iterations == 0

    def test_comm_volume_comparable_to_hpf(self, spd_small, rng):
        """The paper's claim: HPF can match message-passing efficiency.

        Same algorithm, same layout -> communication volume within 2x.
        """
        b = rng.standard_normal(spd_small.nrows)
        m_hpf = Machine(nprocs=4)
        res_hpf = hpf_cg(
            make_strategy("csr_forall_aligned", m_hpf, spd_small), b, criterion=CRIT
        )
        m_mp = Machine(nprocs=4)
        res_mp = spmd_cg(m_mp, spd_small, b, criterion=CRIT)
        ratio = res_hpf.comm["words"] / res_mp.comm["words"]
        assert 0.5 < ratio < 2.0

    def test_shape_validation(self, spd_small):
        m = Machine(nprocs=2)
        with pytest.raises(ValueError):
            spmd_cg(m, spd_small, np.zeros(7))

    def test_strategy_label(self, spd_small, rng):
        m = Machine(nprocs=2)
        res = spmd_cg(m, spd_small, rng.standard_normal(36), criterion=CRIT)
        assert res.strategy == "spmd_message_passing"


class TestDirectBaseline:
    def test_direct_solve(self, spd_small, rng):
        xt = rng.standard_normal(spd_small.nrows)
        b = rhs_for_solution(spd_small, xt)
        res = direct_solve(spd_small, b)
        assert res.converged
        assert np.allclose(res.x, xt, atol=1e-8)
        assert res.extras["flops"] > 0
        assert res.final_residual < 1e-8

    def test_cg_wins_on_large_sparse(self, rng):
        """The paper's preference: iterative beats direct for large sparse."""
        A = poisson2d(12, 12)  # n=144, nnz ~ 5n
        b = rng.standard_normal(144)
        cmp = direct_vs_cg_flops(A, b, criterion=StoppingCriterion(rtol=1e-8))
        assert cmp["cg_wins"]
        assert cmp["ratio"] > 1.0

    def test_comparison_fields(self, spd_small, rng):
        cmp = direct_vs_cg_flops(spd_small, rng.standard_normal(36))
        assert set(cmp) == {
            "n", "nnz", "ge_flops", "cg_iterations", "cg_flops", "cg_wins", "ratio"
        }
