"""Process-backend mechanics: platform probing, timeouts, failure paths.

The numerical behaviour is covered by the parity suite; this file tests
everything around it -- the support probe, the hard timeout actually
killing stray workers, worker exceptions surfacing as errors instead of
hangs, the stats mirror, the measured Chrome trace, and the spawn start
method (which requires picklable programs, hence the module-level
classes below).
"""

import json
import os
import time

import numpy as np
import pytest

from repro.backend import (
    BackendError,
    BackendTimeoutError,
    ProcessBackend,
    WorkerFailedError,
    default_start_method,
    process_backend_support,
)
from repro.machine import Machine, RecvTimeoutError, Tracer
from repro.machine.events import Barrier, Compute, Recv, Send

_OK, _DETAIL = process_backend_support()
needs_process = pytest.mark.skipif(
    not _OK, reason=f"process backend unavailable: {_DETAIL}"
)


# ------------------------------------------------------------------ #
# module-level (picklable) programs, as the spawn start method requires
# ------------------------------------------------------------------ #
class EchoProgram:
    """Rank 0 sends its payload around the ring; everyone returns theirs."""

    def __call__(self, rank, size):
        yield Compute(10.0)
        right = (rank + 1) % size
        left = (rank - 1) % size
        yield Send(dest=right, payload=np.float64(rank), tag=1)
        got = yield Recv(source=left, tag=1)
        yield Barrier("done")
        return float(got)


class HangingRecvProgram:
    """Rank 1 posts a receive nobody will ever satisfy."""

    def __call__(self, rank, size):
        if rank == 1:
            got = yield Recv(source=0, tag=99)
            return got
        yield Compute(1.0)
        return rank


class SleepProgram:
    """Hangs in user code (not in a Recv), so only the parent can notice."""

    def __call__(self, rank, size):
        if rank == 1:
            time.sleep(3600.0)
        yield Compute(1.0)
        return rank


class RaisingProgram:
    def __call__(self, rank, size):
        yield Compute(1.0)
        if rank == 1:
            raise RuntimeError("deliberate rank failure")
        return rank


class SoftTimeoutProgram:
    """Per-op Recv timeout raises RecvTimeoutError *inside* the program."""

    def __call__(self, rank, size):
        try:
            got = yield Recv(source=(rank + 1) % size, tag=7, timeout=0.1)
            return got
        except RecvTimeoutError:
            return "timed out"


def test_support_probe_shape():
    ok, detail = process_backend_support()
    assert isinstance(ok, bool) and isinstance(detail, str) and detail
    assert default_start_method() in ("fork", "spawn")
    ok2, detail2 = process_backend_support("no-such-method")
    assert not ok2 and "no-such-method" in detail2


@needs_process
def test_echo_ring_and_stats_mirror():
    run = ProcessBackend(timeout=30.0).run(EchoProgram(), nprocs=4)
    # each rank receives its left neighbour's rank
    assert run.results == [3.0, 0.0, 1.0, 2.0]
    assert run.stats.total_messages == 4
    assert run.stats.total_words == 4.0  # one float64 word per message
    assert run.stats.total_flops == 40.0
    assert run.elapsed > 0.0
    assert len(run.per_rank) == 4
    for rep in run.per_rank:
        assert rep["wall"] >= 0.0 and rep["messages"] == 1.0
    ops = run.stats.by_op()
    assert "p2p" in ops and "barrier" in ops


@needs_process
def test_hard_timeout_kills_hanging_recv():
    backend = ProcessBackend(timeout=1.5)
    t0 = time.monotonic()
    with pytest.raises(BackendError) as excinfo:
        backend.run(HangingRecvProgram(), nprocs=2)
    # the worker's own deadline fires first and reports the stuck receive
    assert "timeout" in str(excinfo.value).lower()
    assert time.monotonic() - t0 < 30.0  # bounded, no grace-period pile-up


@needs_process
def test_parent_timeout_kills_sleeping_worker():
    with pytest.raises(BackendTimeoutError) as excinfo:
        ProcessBackend(timeout=1.0).run(SleepProgram(), nprocs=2)
    assert "ranks missing" in str(excinfo.value)
    # no stray repro-rank children left behind
    import multiprocessing as mp

    assert all(not c.name.startswith("repro-rank")
               for c in mp.active_children())


@needs_process
def test_worker_exception_surfaces():
    with pytest.raises(WorkerFailedError) as excinfo:
        ProcessBackend(timeout=30.0).run(RaisingProgram(), nprocs=2)
    assert "deliberate rank failure" in str(excinfo.value)


@needs_process
def test_soft_recv_timeout_is_catchable():
    run = ProcessBackend(timeout=30.0).run(SoftTimeoutProgram(), nprocs=2)
    assert run.results == ["timed out", "timed out"]


@needs_process
def test_measured_chrome_trace(tmp_path):
    run = ProcessBackend(timeout=30.0, trace=True).run(EchoProgram(), nprocs=2)
    assert run.trace is not None
    doc = run.trace.to_chrome_trace(process_name="echo")
    events = doc["traceEvents"]
    kinds = {e["ph"] for e in events}
    assert kinds == {"M", "X"}
    xs = [e for e in events if e["ph"] == "X"]
    assert xs and all(e["ts"] >= 0 and e["dur"] >= 0 for e in xs)
    assert {e["tid"] for e in xs} == {0, 1}
    path = run.trace.write_chrome_trace(tmp_path / "trace.json")
    assert json.loads(path.read_text())["traceEvents"]


def test_simulated_chrome_trace(tmp_path):
    """The exporter also works on a machine-attached tracer (gantt --json)."""
    from repro import make_strategy
    from repro.sparse import poisson2d

    A = poisson2d(4, 4)
    machine = Machine(nprocs=2)
    tracer = Tracer.attach(machine)
    strategy = make_strategy("csc_private", machine, A)
    p = strategy.make_vector("p", np.linspace(0, 1, A.nrows))
    q = strategy.make_vector("q")
    strategy.apply(p, q)
    doc = tracer.to_chrome_trace()
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert xs and all(e["cat"] in ("compute", "comm") for e in xs)
    out = tracer.write_chrome_trace(tmp_path / "sim.json")
    assert out.exists() and json.loads(out.read_text())["traceEvents"]


@needs_process
@pytest.mark.skipif("spawn" not in __import__("multiprocessing").get_all_start_methods(),
                    reason="spawn start method unavailable")
def test_spawn_start_method_with_picklable_program():
    ok, detail = process_backend_support("spawn")
    if not ok:
        pytest.skip(f"spawn context unavailable: {detail}")
    run = ProcessBackend(start_method="spawn", timeout=60.0).run(
        EchoProgram(), nprocs=2
    )
    assert run.results == [1.0, 0.0]


@needs_process
def test_invalid_nprocs_and_dest():
    with pytest.raises(ValueError):
        ProcessBackend().run(EchoProgram(), nprocs=0)

    with pytest.raises(WorkerFailedError):
        ProcessBackend(timeout=10.0).run(BadDestProgram(), nprocs=2)


class BadDestProgram:
    def __call__(self, rank, size):
        yield Send(dest=5, payload=1.0, tag=0)
        return rank
