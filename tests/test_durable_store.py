"""DurableCheckpointStore: dict parity, crash safety, corrupt-record skip.

The store must behave as a drop-in ``MutableMapping`` replacement for the
plain dict checkpoint store (hypothesis drives both through the same
operation sequences), and its on-disk journal must make
``latest_complete_checkpoint`` give a fresh process the same answer the
dead one had -- with torn and bit-flipped records skipped, never loaded.
"""

import os
import pickle
import struct
import zlib

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backend.store import DurableCheckpointStore, _record_name
from repro.core.resilience import latest_complete_checkpoint


def _materialize(store):
    return {k: dict(store[k]) for k in store}


def _snap(rank, k, size=5):
    """A checkpoint-shaped payload: arrays + scalars + lists."""
    return {
        "k": k,
        "x": np.arange(size, dtype=float) + rank,
        "r": np.full(size, float(rank)),
        "gamma": 1.25 * (rank + 1),
        "residuals": [1.0, 0.5, 0.25],
    }


def _publish(store, iteration, ranks, size=5):
    """Publish the way both substrates do: live setdefault view."""
    view = store.setdefault(iteration, {})
    for rank in ranks:
        view[rank] = _snap(rank, iteration, size)


# ---------------------------------------------------------------------- #
# dict drop-in parity
# ---------------------------------------------------------------------- #
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.integers(0, 6), st.integers(0, 3)),
        st.tuples(st.just("del"), st.integers(0, 6), st.just(0)),
        st.tuples(st.just("clear"), st.just(0), st.just(0)),
        st.tuples(st.just("assign"), st.integers(0, 6), st.integers(0, 3)),
    ),
    min_size=1,
    max_size=12,
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(ops=_OPS)
def test_roundtrip_matches_dict_store(tmp_path, ops):
    """Same op sequence, same observable state as the plain dict store --
    both live and after a reopen of the directory."""
    root = tmp_path / f"s{abs(hash(tuple(ops))) % 10_000_000}"
    durable = DurableCheckpointStore(str(root), fsync=False)
    plain = {}
    for op, iteration, rank in ops:
        if op == "put":
            durable.setdefault(iteration, {})[rank] = _snap(rank, iteration)
            plain.setdefault(iteration, {})[rank] = _snap(rank, iteration)
        elif op == "del":
            if iteration in plain:
                del plain[iteration]
                del durable[iteration]
        elif op == "clear":
            plain.clear()
            durable.clear()
        else:  # assign a whole iteration at once
            snaps = {r: _snap(r, iteration) for r in range(rank + 1)}
            durable[iteration] = snaps
            plain[iteration] = dict(snaps)

    def same(a, b):
        assert sorted(a) == sorted(b)
        for k in a:
            assert sorted(a[k]) == sorted(b[k])
            for r in a[k]:
                sa, sb = a[k][r], b[k][r]
                assert sa["k"] == sb["k"]
                np.testing.assert_array_equal(sa["x"], sb["x"])
                assert sa["gamma"] == sb["gamma"]

    same(_materialize(durable), plain)
    # a fresh process re-opening the directory sees the identical state
    reopened = DurableCheckpointStore(str(root), fsync=False)
    same(_materialize(reopened), plain)
    assert reopened.skipped_records == []
    assert durable.tmp_files() == []


def test_latest_complete_matches_dict_semantics(tmp_path):
    for make in (dict, lambda: DurableCheckpointStore(
            str(tmp_path / "sem"), fsync=False)):
        store = make()
        _publish(store, 0, range(4))
        _publish(store, 10, range(4))
        _publish(store, 20, range(2))  # partial: crash mid-checkpoint
        k, snaps = latest_complete_checkpoint(store, 4)
        assert k == 10
        assert sorted(snaps) == [0, 1, 2, 3]
        # materialised: survives a clear of the underlying store
        store.clear()
        assert sorted(snaps) == [0, 1, 2, 3]
        assert snaps[2]["k"] == 10


# ---------------------------------------------------------------------- #
# crash safety: torn / corrupt / leftover-tmp records
# ---------------------------------------------------------------------- #
def test_truncated_record_skipped_on_load(tmp_path):
    root = str(tmp_path / "torn")
    _publish(DurableCheckpointStore(root, fsync=False), 0, range(4))
    _publish(DurableCheckpointStore(root, fsync=False), 5, range(4))
    victim = os.path.join(root, _record_name(5, 2))
    raw = open(victim, "rb").read()
    with open(victim, "wb") as fh:
        fh.write(raw[: len(raw) // 2])  # torn mid-payload

    store = DurableCheckpointStore(root, fsync=False)
    assert _record_name(5, 2) in store.skipped_records
    assert sorted(store[5]) == [0, 1, 3]
    # the newest *complete* checkpoint steps back past the torn one
    k, snaps = latest_complete_checkpoint(store, 4)
    assert k == 0 and sorted(snaps) == [0, 1, 2, 3]


def test_bitflipped_record_fails_crc_and_is_skipped(tmp_path):
    root = str(tmp_path / "flip")
    _publish(DurableCheckpointStore(root, fsync=False), 3, range(3))
    victim = os.path.join(root, _record_name(3, 1))
    raw = bytearray(open(victim, "rb").read())
    raw[-7] ^= 0x40  # flip one payload bit; header CRC now disagrees
    with open(victim, "wb") as fh:
        fh.write(bytes(raw))

    store = DurableCheckpointStore(root, fsync=False)
    assert _record_name(3, 1) in store.skipped_records
    assert sorted(store[3]) == [0, 2]
    assert latest_complete_checkpoint(store, 3) is None


def test_crc_collision_resistant_header(tmp_path):
    """A record whose CRC matches but whose length lies is rejected too."""
    root = str(tmp_path / "hdr")
    DurableCheckpointStore(root, fsync=False)
    body = pickle.dumps({"x": 1})
    header = struct.Struct("<qqQI").pack(0, 0, len(body) + 3, zlib.crc32(body))
    with open(os.path.join(root, _record_name(0, 0)), "wb") as fh:
        fh.write(b"RPCKPT1\n" + header + body)
    store = DurableCheckpointStore(root, fsync=False)
    assert _record_name(0, 0) in store.skipped_records
    assert len(store) == 0


def test_leftover_tmp_files_removed_on_open(tmp_path):
    root = str(tmp_path / "tmps")
    store = DurableCheckpointStore(root, fsync=False)
    _publish(store, 0, range(2))
    # simulate a SIGKILL between tmp write and rename
    stray = os.path.join(root, ".tmp-ckpt-00000007-00001.rec-999")
    with open(stray, "wb") as fh:
        fh.write(b"half a record")
    reopened = DurableCheckpointStore(root, fsync=False)
    assert reopened.tmp_files() == []
    assert not os.path.exists(stray)
    assert sorted(reopened[0]) == [0, 1]


def test_manifest_is_advisory_and_atomic(tmp_path):
    root = str(tmp_path / "man")
    store = DurableCheckpointStore(root, fsync=False)
    _publish(store, 0, range(3))
    import json

    manifest = json.load(open(os.path.join(root, "manifest.json")))
    assert manifest["iterations"] == {"0": [0, 1, 2]}
    # a record published after the manifest write (kill between the two)
    # still loads: completeness is judged record-by-record
    from repro.backend.store import _encode_record

    os.unlink(os.path.join(root, "manifest.json"))
    with open(os.path.join(root, _record_name(4, 0)), "wb") as fh:
        fh.write(_encode_record(4, 0, _snap(0, 4)))
    reopened = DurableCheckpointStore(root, fsync=False)
    assert sorted(reopened) == [0, 4]
    assert sorted(reopened[4]) == [0]


# ---------------------------------------------------------------------- #
# driver-restart semantics
# ---------------------------------------------------------------------- #
def test_latest_complete_survives_driver_restart(tmp_path):
    """A fresh store on the same directory recovers exactly the newest
    complete checkpoint the 'killed' driver published."""
    root = str(tmp_path / "restart")
    first = DurableCheckpointStore(root, fsync=False)
    _publish(first, 0, range(4))
    _publish(first, 5, range(4))
    _publish(first, 10, [0, 3])  # interrupted mid-checkpoint
    del first  # the driver dies; nothing flushed beyond published records

    fresh = DurableCheckpointStore(root, fsync=False)
    k, snaps = latest_complete_checkpoint(fresh, 4)
    assert k == 5
    np.testing.assert_array_equal(snaps[1]["x"], _snap(1, 5)["x"])
    assert fresh.tmp_files() == []


def test_live_view_publishes_immediately(tmp_path):
    """The setdefault view journals each rank the moment it is assigned --
    the property the in-flight checkpoint protocol relies on."""
    root = str(tmp_path / "live")
    store = DurableCheckpointStore(root, fsync=False)
    view = store.setdefault(7, {})
    view[0] = _snap(0, 7)
    # another process opening the dir NOW already sees rank 0's record
    other = DurableCheckpointStore(root, fsync=False)
    assert sorted(other[7]) == [0]
    view[1] = _snap(1, 7)
    assert sorted(DurableCheckpointStore(root, fsync=False)[7]) == [0, 1]
