"""Regression: no ProcessBackend failure path may leak worker processes.

A long-lived service runs thousands of one-shot and pooled executions;
a single unreaped child per failed run would exhaust the process/fd
table within hours.  Each test drives one failure exit path (deadline,
worker exception, external SIGKILL, KeyboardInterrupt-style interrupt)
and asserts the parent comes back with **zero** live children -- and no
zombies either, since ``_reap`` ends with a bounded ``join`` on every
worker.
"""

import multiprocessing as mp
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.backend import (
    BackendError,
    ProcessBackend,
    process_backend_support,
)
from repro.backend.process import crash_injection_support
from repro.machine.events import Compute, Recv

_OK, _DETAIL = process_backend_support()
needs_process = pytest.mark.skipif(
    not _OK, reason=f"process backend unavailable: {_DETAIL}"
)
_KILL_OK, _KILL_DETAIL = crash_injection_support()
needs_kill = pytest.mark.skipif(
    not _KILL_OK, reason=f"crash injection unavailable: {_KILL_DETAIL}"
)


# ------------------------------------------------------------------ #
# picklable programs
# ------------------------------------------------------------------ #
class HangEveryoneProgram:
    """Every rank blocks on a receive nobody satisfies."""

    def __call__(self, rank, size):
        got = yield Recv(source=(rank + 1) % size, tag=404)
        return got


class RankRaisesProgram:
    def __call__(self, rank, size):
        yield Compute(1.0)
        if rank == 0:
            raise RuntimeError("deliberate failure for reaping test")
        # peers hang so reaping must kill them, not wait them out
        got = yield Recv(source=0, tag=404)
        return got


class SleepForeverProgram:
    """Hangs in user code: SIGTERM-able but never exits by itself."""

    def __call__(self, rank, size):
        time.sleep(3600.0)
        yield Compute(1.0)
        return rank


def _live_children():
    """Live multiprocessing children (also collects finished ones)."""
    return [p for p in mp.active_children() if p.is_alive()]


def _assert_no_children(grace=5.0):
    deadline = time.monotonic() + grace
    while _live_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    leftovers = _live_children()
    assert leftovers == [], f"leaked workers: {[p.name for p in leftovers]}"
    # and no zombies: every active_children entry must have been joined
    assert mp.active_children() == []


@pytest.fixture(autouse=True)
def _clean_slate():
    _assert_no_children()
    yield
    _assert_no_children()


@needs_process
class TestReapingOnFailure:
    def test_deadline_reaps_all_hanging_ranks(self):
        with pytest.raises(BackendError):
            ProcessBackend(timeout=1.0).run(HangEveryoneProgram(), nprocs=3)

    def test_worker_error_reaps_hanging_peers(self):
        with pytest.raises(BackendError):
            ProcessBackend(timeout=30.0).run(RankRaisesProgram(), nprocs=3)

    def test_sleeping_rank_is_killed_not_waited_for(self):
        t0 = time.monotonic()
        with pytest.raises(BackendError):
            ProcessBackend(timeout=1.0).run(SleepForeverProgram(), nprocs=2)
        # the reaper must escalate to SIGKILL, not ride out the sleep
        assert time.monotonic() - t0 < 30.0

    @needs_kill
    def test_external_crash_reaps_survivors(self):
        # SIGKILL one worker mid-run from a side thread; the remaining
        # hanging ranks must be reaped when the crash is detected
        backend = ProcessBackend(timeout=30.0)
        orig_run = backend.run

        def killer():
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                kids = _live_children()
                if kids:
                    os.kill(kids[0].pid, signal.SIGKILL)
                    return
                time.sleep(0.01)

        t = threading.Thread(target=killer)
        t.start()
        try:
            with pytest.raises(BackendError):
                orig_run(HangEveryoneProgram(), nprocs=3)
        finally:
            t.join()

    def test_success_path_also_leaves_nothing(self):
        run = ProcessBackend(timeout=30.0).run(ComputeOnlyProgram(), nprocs=2)
        assert run.results == [0, 1]


class ComputeOnlyProgram:
    def __call__(self, rank, size):
        yield Compute(1.0)
        return rank
