"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine import CostModel, Machine
from repro.sparse import (
    circuit_nodal,
    convection_diffusion_1d,
    figure1_matrix,
    irregular_powerlaw,
    nas_cg_style,
    poisson1d,
    poisson2d,
    structural_truss,
)


@pytest.fixture
def machine4() -> Machine:
    """A 4-processor hypercube with default costs."""
    return Machine(nprocs=4, topology="hypercube")


@pytest.fixture
def machine8() -> Machine:
    return Machine(nprocs=8, topology="hypercube")


@pytest.fixture
def machine1() -> Machine:
    return Machine(nprocs=1, topology="hypercube")


@pytest.fixture(params=[1, 2, 4, 8])
def machine_pow2(request) -> Machine:
    """Hypercube machines across power-of-two sizes."""
    return Machine(nprocs=request.param, topology="hypercube")


@pytest.fixture(params=["hypercube", "ring", "mesh2d", "complete"])
def machine_topologies(request) -> Machine:
    """A 4-processor machine on every topology."""
    return Machine(nprocs=4, topology=request.param)


@pytest.fixture
def fig1():
    """The paper's Figure-1 6x6 example matrix (CSR)."""
    return figure1_matrix()


@pytest.fixture
def spd_small():
    """A small SPD system: 2-D Poisson on a 6x6 grid (n=36)."""
    return poisson2d(6)


@pytest.fixture
def spd_medium():
    """A medium SPD system: 2-D Poisson on a 10x8 grid (n=80)."""
    return poisson2d(10, 8)


@pytest.fixture
def nonsym_small():
    """A small nonsymmetric system for the BiCG family."""
    return convection_diffusion_1d(40, peclet=0.4)


@pytest.fixture
def irregular_matrix():
    """A skewed-row-length SPD matrix (Section 5.2.2's irregular case)."""
    return irregular_powerlaw(96, seed=7)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


MATRIX_FAMILIES = {
    "poisson1d": lambda: poisson1d(30),
    "poisson2d": lambda: poisson2d(6, 5),
    "truss": lambda: structural_truss(25, seed=3),
    "circuit": lambda: circuit_nodal(30, seed=4),
    "nas_cg": lambda: nas_cg_style(32, seed=5),
    "powerlaw": lambda: irregular_powerlaw(40, seed=6),
}


@pytest.fixture(params=sorted(MATRIX_FAMILIES))
def spd_family_matrix(request):
    """One SPD matrix from each application family the paper cites."""
    return MATRIX_FAMILIES[request.param]()
