"""Fail-stop crash recovery on both backends.

The acceptance story: SIGKILL one worker mid-solve under the process
backend, watch the supervisor classify the loss as WorkerCrashedError
(not a timeout), respawn the ranks, restart from the last complete
checkpoint, and converge to the same solution as a fault-free run.  The
simulated backend goes through the identical driver with a virtual-time
crash, which is what makes the protocol testable without real processes.
"""

import numpy as np
import pytest

from repro.backend import (
    ProcessBackend,
    ResilientCGProgram,
    SimulatedBackend,
    WorkerCrashedError,
    backend_solve,
    crash_injection_support,
    process_backend_support,
    run_with_recovery,
)
from repro.core.resilience import RecoveryExhaustedError, ResilienceConfig
from repro.core.stopping import StoppingCriterion
from repro.machine.faults import FaultPlan, RankCrash, RankFailedError
from repro.sparse.generators import poisson1d, rhs_for_solution

_OK, _DETAIL = process_backend_support()
needs_process = pytest.mark.skipif(
    not _OK, reason=f"process backend unavailable: {_DETAIL}"
)
_KOK, _KDETAIL = crash_injection_support()
needs_crash = pytest.mark.skipif(
    not _KOK, reason=f"crash injection unavailable: {_KDETAIL}"
)


def _problem(n=40):
    A = poisson1d(n)
    b = rhs_for_solution(A, np.linspace(1.0, 2.0, n))
    return A, b, StoppingCriterion(rtol=1e-10, atol=0.0)


class TestCheckpointStore:
    def test_simulated_run_populates_store(self):
        A, b, crit = _problem()
        prog = ResilientCGProgram(A, b, criterion=crit, checkpoint_interval=5)
        store = {}
        run = SimulatedBackend().run(prog, 2, checkpoints=store)
        assert 0 in store  # the iteration-0 checkpoint
        assert any(k >= 5 for k in store)
        for snaps in store.values():
            assert set(snaps) == {0, 1}
            for snap in snaps.values():
                assert {"k", "x", "r", "p", "rho"} <= set(snap)
        assert all(r[2] for r in run.results)  # converged

    @needs_process
    def test_process_run_populates_store(self):
        A, b, crit = _problem()
        prog = ResilientCGProgram(A, b, criterion=crit, checkpoint_interval=5)
        store = {}
        ProcessBackend(timeout=60.0).run(prog, 2, checkpoints=store)
        assert 0 in store and any(k >= 5 for k in store)
        assert all(set(snaps) == {0, 1} for snaps in store.values())


class TestSimulatedCrashRecovery:
    def test_crash_recovers_and_matches_fault_free(self):
        A, b, crit = _problem()
        ref = backend_solve("cg", A, b, backend="simulated", nprocs=4,
                            criterion=crit)
        # fault-free elapsed is ~0.024 virtual seconds over 40 iterations;
        # 0.01 lands mid-solve, past the first interval-5 checkpoint
        plan = FaultPlan(seed=0, crashes=[RankCrash(rank=2, at_time=0.01)])
        res = backend_solve(
            "cg", A, b, backend="simulated", nprocs=4, criterion=crit,
            faults=plan, resilience=ResilienceConfig(checkpoint_interval=5),
        )
        assert res.converged
        assert bool(np.all(res.x == ref.x))  # tolerance-exact: bitwise here
        rec = res.extras["recovery"]
        assert rec["attempts"] == 2
        assert rec["crashes_recovered"] == [2]
        assert rec["restart_iterations"] and rec["restart_iterations"][0] >= 0

    def test_crash_before_first_checkpoint_restarts_from_scratch(self):
        # at 2e-4 virtual seconds not even the iteration-0 checkpoint is
        # complete on every rank, so recovery must restart from scratch
        # (-1 in the restart log), not from a partial snapshot
        A, b, crit = _problem()
        ref = backend_solve("cg", A, b, backend="simulated", nprocs=2,
                            criterion=crit)
        plan = FaultPlan(seed=0, crashes=[RankCrash(rank=1, at_time=2e-4)])
        res = backend_solve(
            "cg", A, b, backend="simulated", nprocs=2, criterion=crit,
            faults=plan, resilience=ResilienceConfig(checkpoint_interval=5),
        )
        assert res.converged
        assert bool(np.all(res.x == ref.x))
        rec = res.extras["recovery"]
        assert rec["attempts"] == 2
        assert rec["restart_iterations"] == [-1]

    def test_recovery_exhausted_is_typed(self):
        A, b, crit = _problem()
        prog = ResilientCGProgram(A, b, criterion=crit, checkpoint_interval=5)
        plan = FaultPlan(seed=0, crashes=[RankCrash(rank=1, at_time=2e-4)])
        with pytest.raises(RecoveryExhaustedError):
            run_with_recovery(
                SimulatedBackend(faults=plan), prog, 2, max_restarts=0
            )

    def test_unrecovered_crash_is_rank_failed(self):
        A, b, crit = _problem()
        prog = ResilientCGProgram(A, b, criterion=crit)
        plan = FaultPlan(seed=0, crashes=[RankCrash(rank=1, at_time=2e-4)])
        with pytest.raises(RankFailedError):
            SimulatedBackend(faults=plan).run(prog, 2)


class TestProcessCrashRecovery:
    @needs_crash
    def test_sigkill_classified_as_worker_crashed(self):
        A, b, crit = _problem()
        prog = ResilientCGProgram(A, b, criterion=crit, checkpoint_interval=5)
        be = ProcessBackend(timeout=60.0, crash_on_checkpoint={1: 5})
        with pytest.raises(WorkerCrashedError) as err:
            be.run(prog, 2)
        assert err.value.rank == 1
        assert "fail-stop" in str(err.value)

    @needs_crash
    def test_sigkill_recovery_converges_to_fault_free_solution(self):
        # the ISSUE acceptance criterion, as a test
        A, b, crit = _problem()
        ref = backend_solve("cg", A, b, backend="simulated", nprocs=2,
                            criterion=crit)
        be = ProcessBackend(timeout=60.0, crash_on_checkpoint={1: 5})
        res = backend_solve(
            "cg", A, b, backend=be, nprocs=2, criterion=crit,
            resilience=ResilienceConfig(checkpoint_interval=5),
        )
        assert res.converged
        np.testing.assert_allclose(res.x, ref.x, rtol=0.0, atol=1e-12)
        rec = res.extras["recovery"]
        assert rec["attempts"] == 2
        assert rec["crashes_recovered"] == [1]
        assert rec["restart_iterations"][0] >= 0
        assert res.extras["resilience"]["restarted_from"] is not None
