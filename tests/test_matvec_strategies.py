"""Tests for the distributed mat-vec strategies (Sections 4 and 5)."""

import numpy as np
import pytest

from repro.core import make_strategy
from repro.core.matvec import (
    ColBlockDenseSerial,
    ColBlockDenseTwoDimTemp,
    CscPrivateMerge,
    CscSerial,
    CsrForall,
    RowBlockDense,
)
from repro.hpf import AlignmentError, Block, DistributedArray, IrregularBlock
from repro.machine import Machine
from repro.sparse import figure1_matrix, irregular_powerlaw, poisson2d

ALL_NAMES = [
    "dense_rowblock",
    "dense_colblock_serial",
    "dense_colblock_2dtemp",
    "csr_forall",
    "csr_forall_aligned",
    "csc_serial",
    "csc_private",
    "csc_private_balanced",
]


@pytest.mark.parametrize("name", ALL_NAMES)
@pytest.mark.parametrize("nprocs,topology", [(1, "hypercube"), (3, "ring"), (4, "hypercube"), (8, "hypercube")])
class TestNumericalEquivalence:
    def test_forward_product(self, name, nprocs, topology, spd_small, rng):
        m = Machine(nprocs=nprocs, topology=topology)
        strat = make_strategy(name, m, spd_small)
        pv = rng.standard_normal(spd_small.nrows)
        p = strat.make_vector("p", pv)
        q = strat.make_vector("q")
        strat.apply(p, q)
        assert np.allclose(q.to_global(), spd_small.matvec(pv))

    def test_transpose_product(self, name, nprocs, topology, spd_small, rng):
        m = Machine(nprocs=nprocs, topology=topology)
        strat = make_strategy(name, m, spd_small)
        xv = rng.standard_normal(spd_small.nrows)
        x = strat.make_vector("x", xv)
        y = strat.make_vector("y")
        strat.apply_transpose(x, y)
        assert np.allclose(y.to_global(), spd_small.rmatvec(xv))


class TestStrategyValidation:
    def test_square_required(self, machine4, rng):
        from repro.sparse import COOMatrix

        rect = COOMatrix([0], [1], [1.0], shape=(2, 3))
        with pytest.raises(ValueError):
            RowBlockDense(machine4, rect)

    def test_foreign_vector_rejected(self, machine4, spd_small):
        strat = make_strategy("csr_forall", machine4, spd_small)
        from repro.hpf import Cyclic

        bad = DistributedArray(machine4, spd_small.nrows, Cyclic(spd_small.nrows, 4))
        good = strat.make_vector("q")
        with pytest.raises(AlignmentError):
            strat.apply(bad, good)

    def test_unknown_name(self, machine4, spd_small):
        with pytest.raises(ValueError):
            make_strategy("nonsense", machine4, spd_small)


class TestScenario1RowBlock:
    def test_apply_charges_allgather(self, spd_small, rng):
        m = Machine(nprocs=4)
        strat = RowBlockDense(m, spd_small)
        p = strat.make_vector("p", rng.standard_normal(36))
        q = strat.make_vector("q")
        before = m.stats.snapshot()
        strat.apply(p, q)
        delta = before.since(m.stats)
        ops = m.stats.by_op()
        assert "allgather" in ops
        assert delta.flops == pytest.approx(2.0 * 36 * 36)

    def test_no_result_rearrangement(self, spd_small, rng):
        """Scenario 1: q blocks are owned where produced -- no extra comm."""
        m = Machine(nprocs=4)
        strat = RowBlockDense(m, spd_small)
        p = strat.make_vector("p", rng.standard_normal(36))
        q = strat.make_vector("q")
        strat.apply(p, q)
        ops = m.stats.by_op()
        assert set(ops) == {"allgather"}

    def test_storage_is_rows_times_n(self, spd_small):
        m = Machine(nprocs=4)
        strat = RowBlockDense(m, spd_small)
        assert strat.storage_words_per_rank().tolist() == [9 * 36] * 4


class TestScenario2ColBlock:
    def test_serial_is_slower_than_rowblock(self, spd_small, rng):
        """Figure 4's point: the serial column-wise loop loses badly."""
        pv = rng.standard_normal(36)
        m1 = Machine(nprocs=4)
        s1 = RowBlockDense(m1, spd_small)
        p1, q1 = s1.make_vector("p", pv), s1.make_vector("q")
        s1.apply(p1, q1)
        m2 = Machine(nprocs=4)
        s2 = ColBlockDenseSerial(m2, spd_small)
        p2, q2 = s2.make_vector("p", pv), s2.make_vector("q")
        s2.apply(p2, q2)
        assert m2.elapsed() > m1.elapsed()

    def test_two_dim_temp_restores_parallelism(self, spd_small, rng):
        pv = rng.standard_normal(36)
        m_serial = Machine(nprocs=4)
        s = ColBlockDenseSerial(m_serial, spd_small)
        s.apply(s.make_vector("p", pv), s.make_vector("q"))
        m_temp = Machine(nprocs=4)
        t = ColBlockDenseTwoDimTemp(m_temp, spd_small)
        t.apply(t.make_vector("p", pv), t.make_vector("q"))
        assert m_temp.elapsed() < m_serial.elapsed()

    def test_two_dim_temp_charges_permanent_storage(self, spd_small):
        m = Machine(nprocs=4)
        t = ColBlockDenseTwoDimTemp(m, spd_small)
        # matrix block + the permanent n-vector temp
        assert t.storage_words_per_rank().tolist() == [9 * 36 + 36] * 4

    def test_transpose_is_cheap_direction(self, spd_small, rng):
        """Column storage makes A^T x the easy product (gather + local)."""
        m = Machine(nprocs=4)
        s = ColBlockDenseSerial(m, spd_small)
        x = s.make_vector("x", rng.standard_normal(36))
        y = s.make_vector("y")
        before = m.stats.snapshot()
        s.apply_transpose(x, y)
        ops = m.stats.by_op()
        assert "allgather" in ops and "p2p" not in ops


class TestCsrForall:
    def test_unaligned_pays_prefetch(self, spd_small, rng):
        m = Machine(nprocs=4)
        strat = CsrForall(m, spd_small, aligned=False)
        assert strat.nonlocal_element_words() > 0
        p = strat.make_vector("p", rng.standard_normal(36))
        q = strat.make_vector("q")
        strat.apply(p, q)
        assert "prefetch" in m.stats.by_op()

    def test_aligned_eliminates_prefetch(self, spd_small, rng):
        m = Machine(nprocs=4)
        strat = CsrForall(m, spd_small, aligned=True)
        assert strat.nonlocal_element_words() == 0
        p = strat.make_vector("p", rng.standard_normal(36))
        q = strat.make_vector("q")
        strat.apply(p, q)
        assert "prefetch" not in m.stats.by_op()

    def test_aligned_apply_is_cheaper(self, spd_small, rng):
        pv = rng.standard_normal(36)
        m1, m2 = Machine(nprocs=4), Machine(nprocs=4)
        s1 = CsrForall(m1, spd_small, aligned=False)
        s2 = CsrForall(m2, spd_small, aligned=True)
        s1.apply(s1.make_vector("p", pv), s1.make_vector("q"))
        s2.apply(s2.make_vector("p", pv), s2.make_vector("q"))
        assert m2.elapsed() < m1.elapsed()

    def test_transpose_uses_private_merge(self, spd_small, rng):
        m = Machine(nprocs=4)
        strat = CsrForall(m, spd_small, aligned=True)
        x = strat.make_vector("x", rng.standard_normal(36))
        y = strat.make_vector("y")
        strat.apply_transpose(x, y)
        assert "reduce_scatter" in m.stats.by_op()


class TestCscVariants:
    def test_serial_compute_serialised(self, spd_small, rng):
        m = Machine(nprocs=4)
        strat = CscSerial(m, spd_small)
        p = strat.make_vector("p", rng.standard_normal(36))
        q = strat.make_vector("q")
        strat.apply(p, q)
        # serial: elapsed >= 2*nnz flops worth of time
        assert m.elapsed() >= 2 * spd_small.nnz * m.cost.t_flop

    def test_private_merge_parallelises(self, spd_small, rng):
        pv = rng.standard_normal(36)
        m_serial = Machine(nprocs=4)
        s = CscSerial(m_serial, spd_small)
        s.apply(s.make_vector("p", pv), s.make_vector("q"))
        m_priv = Machine(nprocs=4)
        pm = CscPrivateMerge(m_priv, spd_small)
        pm.apply(pm.make_vector("p", pv), pm.make_vector("q"))
        assert m_priv.elapsed() < m_serial.elapsed()

    def test_private_merge_needs_no_p_broadcast(self, spd_small, rng):
        """CSC + column-aligned p reads p(j) locally: no allgather."""
        m = Machine(nprocs=4)
        pm = CscPrivateMerge(m, spd_small)
        pm.apply(pm.make_vector("p", rng.standard_normal(36)), pm.make_vector("q"))
        ops = m.stats.by_op()
        assert "allgather" not in ops
        assert "reduce_scatter" in ops

    def test_private_storage_charged_per_apply(self, spd_small, rng):
        m = Machine(nprocs=4)
        pm = CscPrivateMerge(m, spd_small)
        base = m.stats.storage_words_per_rank.copy()
        pm.apply(pm.make_vector("p", rng.standard_normal(36)), pm.make_vector("q"))
        grown = m.stats.storage_words_per_rank - base
        assert (grown >= 36.0).all()

    def test_balanced_variant_uses_irregular_vectors(self):
        A = irregular_powerlaw(64, seed=2)
        m = Machine(nprocs=4)
        pm = CscPrivateMerge(m, A, balanced=True)
        assert isinstance(pm.vector_distribution(), IrregularBlock)

    def test_balanced_reduces_makespan_on_skewed_matrix(self, rng):
        A = irregular_powerlaw(200, seed=9)
        pv = rng.standard_normal(200)
        m_uni = Machine(nprocs=8)
        uni = CscPrivateMerge(m_uni, A, balanced=False)
        uni.apply(uni.make_vector("p", pv), uni.make_vector("q"))
        m_bal = Machine(nprocs=8)
        bal = CscPrivateMerge(m_bal, A, balanced=True)
        bal.apply(bal.make_vector("p", pv), bal.make_vector("q"))
        assert bal.per_rank_nnz().max() <= uni.per_rank_nnz().max()
        assert m_bal.elapsed() <= m_uni.elapsed()

    def test_per_rank_nnz_sums_to_total(self, spd_small):
        m = Machine(nprocs=4)
        pm = CscPrivateMerge(m, spd_small)
        assert pm.per_rank_nnz().sum() == spd_small.nnz
