"""Unit tests for DistributedArray, alignment groups and redistribution."""

import numpy as np
import pytest

from repro.hpf import (
    AlignmentError,
    Block,
    Cyclic,
    DistributedArray,
    DistributedDenseMatrix,
    DistributionError,
    IrregularBlock,
    Replicated,
    aligned,
)
from repro.machine import Machine


class TestConstruction:
    def test_default_block_distribution(self, machine4):
        a = DistributedArray(machine4, 10)
        assert isinstance(a.distribution, Block)
        assert a.to_global().tolist() == [0.0] * 10

    def test_fill_value(self, machine4):
        a = DistributedArray(machine4, 6, fill=2.5)
        assert (a.to_global() == 2.5).all()

    def test_from_global_round_trip(self, machine4, rng):
        values = rng.standard_normal(11)
        for dist in (Block(11, 4), Cyclic(11, 4), IrregularBlock([0, 1, 5, 5, 11])):
            a = DistributedArray.from_global(machine4, values, dist)
            assert np.allclose(a.to_global(), values)

    def test_replicated_round_trip(self, machine4, rng):
        values = rng.standard_normal(7)
        a = DistributedArray.from_global(machine4, values, Replicated(7, 4))
        assert np.allclose(a.to_global(), values)
        assert a.local(2).size == 7

    def test_extent_mismatch_rejected(self, machine4):
        with pytest.raises(DistributionError):
            DistributedArray(machine4, 10, Block(11, 4))

    def test_machine_mismatch_rejected(self, machine4):
        with pytest.raises(DistributionError):
            DistributedArray(machine4, 10, Block(10, 8))

    def test_storage_charged_on_creation(self):
        m = Machine(nprocs=4)
        DistributedArray(m, 12)
        assert m.stats.storage_words_per_rank.sum() == 12.0


class TestElementwiseOps:
    def test_axpy(self, machine4, rng):
        xv, yv = rng.standard_normal(9), rng.standard_normal(9)
        x = DistributedArray.from_global(machine4, xv)
        y = DistributedArray.from_global(machine4, yv)
        y.axpy(2.5, x)
        assert np.allclose(y.to_global(), yv + 2.5 * xv)

    def test_saypx(self, machine4, rng):
        xv, yv = rng.standard_normal(9), rng.standard_normal(9)
        x = DistributedArray.from_global(machine4, xv)
        y = DistributedArray.from_global(machine4, yv)
        y.saypx(0.5, x)  # y = 0.5*y + x
        assert np.allclose(y.to_global(), 0.5 * yv + xv)

    def test_scale_and_fill(self, machine4):
        a = DistributedArray.from_global(machine4, np.arange(8.0))
        a.scale(3.0)
        assert np.allclose(a.to_global(), 3.0 * np.arange(8))
        a.fill(1.0)
        assert (a.to_global() == 1.0).all()

    def test_operators_produce_new_arrays(self, machine4, rng):
        xv, yv = rng.standard_normal(6), rng.standard_normal(6)
        x = DistributedArray.from_global(machine4, xv)
        y = DistributedArray.from_global(machine4, yv)
        assert np.allclose((x + y).to_global(), xv + yv)
        assert np.allclose((x - y).to_global(), xv - yv)
        assert np.allclose((x * y).to_global(), xv * yv)
        assert np.allclose((x / (y + 10.0)).to_global(), xv / (yv + 10.0))
        assert np.allclose((2.0 * x).to_global(), 2 * xv)
        assert np.allclose((-x).to_global(), -xv)
        assert np.allclose(x.to_global(), xv)  # unchanged

    def test_saxpy_charges_2_flops_per_element(self):
        m = Machine(nprocs=4)
        x = DistributedArray(m, 12)
        y = DistributedArray(m, 12)
        before = m.stats.total_flops
        y.axpy(1.0, x)
        assert m.stats.total_flops - before == 24.0

    def test_saxpy_no_communication(self):
        m = Machine(nprocs=4)
        x, y = DistributedArray(m, 12), DistributedArray(m, 12)
        y.axpy(1.0, x)
        assert m.stats.total_messages == 0

    def test_unaligned_operands_rejected(self, machine4):
        x = DistributedArray(machine4, 10, Block(10, 4))
        y = DistributedArray(machine4, 10, Cyclic(10, 4))
        with pytest.raises(AlignmentError):
            y.axpy(1.0, x)

    def test_extent_mismatch_rejected(self, machine4):
        x = DistributedArray(machine4, 10)
        y = DistributedArray(machine4, 9)
        with pytest.raises(AlignmentError):
            y.axpy(1.0, x)

    def test_replicated_operand_allowed(self, machine4, rng):
        xv = rng.standard_normal(8)
        x = DistributedArray.from_global(machine4, xv, Replicated(8, 4))
        y = DistributedArray(machine4, 8)
        y.axpy(1.0, x)
        assert np.allclose(y.to_global(), xv)


class TestReductions:
    def test_dot_value(self, machine4, rng):
        xv, yv = rng.standard_normal(10), rng.standard_normal(10)
        x = DistributedArray.from_global(machine4, xv)
        y = DistributedArray.from_global(machine4, yv)
        assert x.dot(y) == pytest.approx(float(xv @ yv))

    def test_dot_charges_one_allreduce(self):
        m = Machine(nprocs=4)
        x = DistributedArray.from_global(m, np.arange(8.0))
        x.dot(x)
        ops = m.stats.by_op()
        assert ops["allreduce"]["count"] == 1

    def test_norm2(self, machine4, rng):
        xv = rng.standard_normal(10)
        x = DistributedArray.from_global(machine4, xv)
        assert x.norm2() == pytest.approx(float(np.linalg.norm(xv)))

    def test_sum(self, machine4):
        x = DistributedArray.from_global(machine4, np.arange(10.0))
        assert x.sum() == pytest.approx(45.0)

    def test_gather_to_all_charges_allgather(self):
        m = Machine(nprocs=4)
        x = DistributedArray.from_global(m, np.arange(12.0))
        full = x.gather_to_all()
        assert np.allclose(full, np.arange(12.0))
        assert "allgather" in m.stats.by_op()

    def test_replicated_gather_free(self):
        m = Machine(nprocs=4)
        x = DistributedArray.from_global(m, np.arange(5.0), Replicated(5, 4))
        x.gather_to_all()
        assert m.stats.total_messages == 0


class TestAlignmentGroups:
    def test_align_with_adopts_distribution(self, machine4):
        p = DistributedArray(machine4, 10, Cyclic(10, 4), name="p")
        q = DistributedArray(machine4, 10, name="q").align_with(p)
        assert q.distribution.same_mapping(p.distribution)

    def test_cascade_redistribution(self, machine4, rng):
        """Figure-2 semantics: redistributing p moves q, r, x with it."""
        pv = rng.standard_normal(12)
        p = DistributedArray.from_global(machine4, pv, name="p")
        q = DistributedArray(machine4, 12, name="q").align_with(p)
        r = DistributedArray(machine4, 12, name="r").align_with(p)
        x = DistributedArray(machine4, 12, name="x").align_with(p)
        p.redistribute(Cyclic(12, 4))
        for v in (p, q, r, x):
            assert isinstance(v.distribution, Cyclic)
        assert np.allclose(p.to_global(), pv)

    def test_alignee_redistribution_also_cascades(self, machine4):
        p = DistributedArray(machine4, 12, name="p")
        q = DistributedArray(machine4, 12, name="q").align_with(p)
        q.redistribute(Cyclic(12, 4))
        assert isinstance(p.distribution, Cyclic)

    def test_extent_mismatch_rejected(self, machine4):
        p = DistributedArray(machine4, 10)
        with pytest.raises(AlignmentError):
            DistributedArray(machine4, 11).align_with(p)

    def test_cannot_join_two_groups(self, machine4):
        p1 = DistributedArray(machine4, 10, name="p1")
        p2 = DistributedArray(machine4, 10, name="p2")
        q = DistributedArray(machine4, 10, name="q").align_with(p1)
        p2.align_with(p1)  # fine: same group
        other = DistributedArray(machine4, 10, name="other")
        other.align_with(other)  # self-group
        with pytest.raises(AlignmentError):
            other.align_with(p1)

    def test_aligned_predicate(self, machine4):
        p = DistributedArray(machine4, 10)
        q = DistributedArray(machine4, 10)
        c = DistributedArray(machine4, 10, Cyclic(10, 4))
        rep = DistributedArray(machine4, 10, Replicated(10, 4))
        assert aligned(p, q)
        assert not aligned(p, c)
        assert aligned(p, rep)
        assert aligned(p)


class TestRedistributionCharging:
    def test_redistribution_moves_data_and_charges(self, rng):
        m = Machine(nprocs=4)
        values = rng.standard_normal(16)
        a = DistributedArray.from_global(m, values)
        before = m.stats.snapshot()
        a.redistribute(Cyclic(16, 4))
        delta = before.since(m.stats)
        assert delta.words > 0
        assert np.allclose(a.to_global(), values)

    def test_noop_redistribution_free(self):
        m = Machine(nprocs=4)
        a = DistributedArray(m, 16)
        before = m.stats.snapshot()
        a.redistribute(Block(16, 4))
        assert before.since(m.stats).words == 0

    def test_uncharged_layout_change(self):
        m = Machine(nprocs=4)
        a = DistributedArray(m, 16)
        before = m.stats.snapshot()
        a.redistribute(Cyclic(16, 4), charge=False)
        assert before.since(m.stats).words == 0

    def test_to_replicated_is_allgather(self):
        m = Machine(nprocs=4)
        a = DistributedArray(m, 16)
        a.redistribute(Replicated(16, 4))
        assert "allgather" in m.stats.by_op()
        assert a.local(3).size == 16


class TestDistributedDenseMatrix:
    def test_row_blocks(self, machine4, rng):
        a = rng.standard_normal((8, 8))
        m = DistributedDenseMatrix(machine4, a, axis=0)
        assert np.allclose(m.local_block(1), a[2:4, :])
        assert np.allclose(m.to_global(), a)

    def test_col_blocks(self, machine4, rng):
        a = rng.standard_normal((8, 8))
        m = DistributedDenseMatrix(machine4, a, axis=1)
        assert np.allclose(m.local_block(2), a[:, 4:6])

    def test_invalid_axis(self, machine4):
        with pytest.raises(ValueError):
            DistributedDenseMatrix(machine4, np.zeros((4, 4)), axis=2)

    def test_requires_2d(self, machine4):
        with pytest.raises(ValueError):
            DistributedDenseMatrix(machine4, np.zeros(4))

    def test_replicated_rejected(self, machine4):
        with pytest.raises(DistributionError):
            DistributedDenseMatrix(
                machine4, np.zeros((4, 4)), Replicated(4, 4), axis=0
            )


class TestDescriptor:
    def test_descriptor_fields(self, machine4):
        p = DistributedArray(machine4, 10, name="p")
        q = DistributedArray(machine4, 10, name="q").align_with(p)
        dad = q.descriptor(dynamic=True)
        assert dad.extent == 10
        assert dad.counts == (3, 3, 3, 1)
        assert dad.dynamic
        assert dad.align_target == "p"
        assert dad.local_extent(0) == 3
        assert dad.max_local_extent == 3
        assert not dad.is_balanced  # 3 vs 1 differ by more than one
        assert dad.imbalance() == pytest.approx(3 / 2.5)

    def test_balanced_descriptor(self, machine4):
        a = DistributedArray(machine4, 8)
        assert a.descriptor().is_balanced
