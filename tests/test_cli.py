"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import STRATEGIES, build_parser, main


class TestParser:
    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.matrix == "poisson2d"
        assert args.nprocs == 8
        assert args.solver == "cg"

    def test_invalid_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--strategy", "magic"])


class TestInfoAndStrategies:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "SCCS-703" in out
        assert "t_startup" in out

    def test_strategies_lists_all(self, capsys):
        assert main(["strategies"]) == 0
        out = capsys.readouterr().out
        for name in STRATEGIES:
            assert name in out


class TestSolve:
    @pytest.mark.parametrize("solver", ["cg", "pcg", "bicgstab", "gmres"])
    def test_solvers_run(self, solver, capsys):
        rc = main([
            "solve", "--matrix", "poisson2d", "--n", "64", "--nprocs", "4",
            "--solver", solver, "--rtol", "1e-6",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "converged : True" in out
        assert "comm" in out

    def test_every_matrix_family(self, capsys):
        for family in ("poisson1d", "truss", "circuit", "nas_cg", "powerlaw"):
            rc = main([
                "solve", "--matrix", family, "--n", "48", "--nprocs", "4",
                "--rtol", "1e-6",
            ])
            assert rc == 0, family
            assert "converged : True" in capsys.readouterr().out

    def test_topology_option(self, capsys):
        rc = main([
            "solve", "--n", "36", "--nprocs", "3", "--topology", "ring",
            "--rtol", "1e-6",
        ])
        assert rc == 0
        assert "3 procs, ring" in capsys.readouterr().out

    def test_nonconvergence_exit_code(self, capsys):
        rc = main([
            "solve", "--n", "100", "--nprocs", "4", "--rtol", "1e-14",
            "--maxiter", "2",
        ])
        assert rc == 1
        assert "converged : False" in capsys.readouterr().out


class TestGantt:
    def test_gantt_output_shape(self, capsys):
        rc = main([
            "gantt", "--n", "64", "--nprocs", "4",
            "--strategy", "csc_serial", "--width", "30",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        lines = [l for l in out.splitlines() if l.startswith("rank")]
        assert len(lines) == 4
        assert all(len(l.split("|")[1]) == 30 for l in lines)
        assert "utilization" in out


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "info"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0
        assert "SCCS-703" in proc.stdout
