"""The HPCG reproducibility pin: bitwise invariance across everything.

With ``reproducible=True`` every distributed dot rides the fixed-point
superaccumulator, so the *entire solver trajectory* -- solution vector,
per-iteration alpha/beta/gamma, residual history, iteration count -- must
be bitwise identical across

* rank counts (p in {1, 2, 4, 8}),
* reduction packing (classic scalar trees vs one fused payload),
* execution substrate (simulated scheduler vs real OS processes), and
* fault-induced re-execution (chaos restarts replay the same exact dots).

Non-reproducible runs keep the narrower (but still strong) guarantee that
classic and fused packing agree at fixed p, because both drive the same
binomial combine order.
"""

import numpy as np
import pytest

from repro.backend import (
    SimulatedBackend,
    backend_solve,
    hpcg_cross_validate,
    process_backend_support,
)
from repro.backend.chaos import chaos_run
from repro.core import StoppingCriterion
from repro.sparse import poisson2d, rhs_for_solution
from repro.hpcg import hpcg_solve

_OK, _DETAIL = process_backend_support()
needs_process = pytest.mark.skipif(
    not _OK, reason=f"process backend unavailable: {_DETAIL}"
)

SHAPE = 8


def _signature(res):
    """Everything that must be invariant, as comparable values."""
    h = res.extras["hpcg"]
    return (
        res.x.tobytes(),
        res.iterations,
        bool(res.converged),
        tuple(res.history.residual_norms),
        tuple(h["alphas"]),
        tuple(h["betas"]),
        tuple(h["gammas"]),
    )


class TestReproducibleMatrix:
    """The 16-way pin on the simulated backend."""

    @pytest.mark.parametrize("precond", ["none", "jacobi", "mg"])
    def test_invariant_across_p_and_fusion(self, precond):
        ref = None
        for p in (1, 2, 4, 8):
            for fused in (False, True):
                res = hpcg_solve(
                    SHAPE, nprocs=p, precond=precond, fused=fused,
                    reproducible=True)
                assert res.converged
                sig = _signature(res)
                if ref is None:
                    ref = sig
                else:
                    assert sig == ref, (
                        f"{precond} p={p} fused={fused} diverged")

    def test_reproducible_differs_only_in_rounding(self):
        """Sanity: reproducible result is numerically the same solve."""
        a = hpcg_solve(SHAPE, nprocs=4, precond="mg", reproducible=True)
        b = hpcg_solve(SHAPE, nprocs=4, precond="mg", reproducible=False)
        assert a.iterations == b.iterations
        assert np.allclose(a.x, b.x, rtol=1e-12, atol=1e-14)


class TestNonReproducibleFixedP:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_classic_equals_fused_at_fixed_p(self, p):
        """Same binomial combine order => classic == fused even unfused."""
        classic = hpcg_solve(SHAPE, nprocs=p, precond="mg", fused=False)
        fused = hpcg_solve(SHAPE, nprocs=p, precond="mg", fused=True)
        assert _signature(classic) == _signature(fused)


@needs_process
class TestProcessBackendParity:
    @pytest.mark.parametrize("fused", [False, True])
    def test_cross_validate_mg(self, fused):
        report = hpcg_cross_validate(
            SHAPE, nprocs=2, precond="mg", fused=fused, reproducible=True)
        assert report.bitwise_equal

    def test_process_matches_simulated_reference_any_p(self):
        ref = _signature(hpcg_solve(
            SHAPE, nprocs=1, precond="jacobi", reproducible=True))
        for p in (2, 4):
            res = hpcg_solve(
                SHAPE, nprocs=p, precond="jacobi", reproducible=True,
                backend="process")
            assert _signature(res) == ref, f"process p={p} diverged"


class TestRowBlockReproducible:
    """reproducible=True on the existing cg/pcg row-block programs."""

    @pytest.mark.parametrize("solver", ["cg", "pcg"])
    @pytest.mark.parametrize("fused", [False, True])
    def test_p_invariant(self, solver, fused):
        A = poisson2d(8, 8)
        b = rhs_for_solution(A, np.arange(A.nrows, dtype=np.float64) / 7.0)
        crit = StoppingCriterion(rtol=1e-10, maxiter=300)
        ref = None
        for p in (1, 2, 4, 8):
            res = backend_solve(
                solver, A, b, backend=SimulatedBackend(), nprocs=p,
                criterion=crit, fused=fused, reproducible=True)
            sig = (res.x.tobytes(), res.iterations,
                   tuple(res.history.residual_norms))
            if ref is None:
                ref = sig
            else:
                assert sig == ref, f"{solver} fused={fused} p={p} diverged"


class TestChaosExactContract:
    """Under reproducible=True chaos verdicts demand err == 0.0 bitwise."""

    @pytest.mark.parametrize("seed", [0, 3])
    def test_faulted_run_is_bitwise_exact(self, seed):
        record = chaos_run(seed, backend="simulated", nprocs=4,
                           reproducible=True)
        assert record.outcome in ("converged", "degraded")
        assert record.converged_to_reference
        assert record.max_abs_err == 0.0
