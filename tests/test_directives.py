"""Unit tests for the !HPF$ / !EXT$ directive parser."""

import pytest

from repro.hpf.directives import (
    AlignDirective,
    BinOp,
    DirectiveSyntaxError,
    DistributeDirective,
    IndependentDirective,
    IndivisableDirective,
    IterationDirective,
    Num,
    ProcessorsDirective,
    RedistributeDirective,
    SparseMatrixDirective,
    TemplateDirective,
    Var,
    parse_directive,
    parse_directives,
    tokenize,
)

ENV = {"n": 100, "NP": 4, "nz": 500}


class TestTokenizer:
    def test_basic_tokens(self):
        assert tokenize("p(BLOCK)") == ["p", "(", "BLOCK", ")"]

    def test_double_colon_single_token(self):
        assert tokenize(":: a, b") == ["::", "a", ",", "b"]

    def test_expression_tokens(self):
        assert tokenize("(n+NP-1)/NP") == ["(", "n", "+", "NP", "-", "1", ")", "/", "NP"]

    def test_garbage_rejected(self):
        with pytest.raises(DirectiveSyntaxError):
            tokenize("p(BLOCK) @ q")


class TestExpressions:
    def test_fortran_integer_division(self):
        d = parse_directive("!HPF$ DISTRIBUTE col(BLOCK((n+NP-1)/NP))")
        assert d.dist.block_size.eval(ENV) == (100 + 4 - 1) // 4

    def test_case_insensitive_parameters(self):
        d = parse_directive("!HPF$ DISTRIBUTE row(CYCLIC((n+NP-1)/np))")
        assert d.dist.block_size.eval(ENV) == 25

    def test_precedence(self):
        d = parse_directive("!HPF$ DISTRIBUTE x(BLOCK(1+2*3))")
        assert d.dist.block_size.eval({}) == 7

    def test_unknown_parameter(self):
        d = parse_directive("!HPF$ DISTRIBUTE x(BLOCK(m))")
        with pytest.raises(DirectiveSyntaxError):
            d.dist.block_size.eval(ENV)

    def test_division_by_zero(self):
        d = parse_directive("!HPF$ DISTRIBUTE x(BLOCK(1/zero))")
        with pytest.raises(DirectiveSyntaxError):
            d.dist.block_size.eval({"zero": 0})


class TestProcessorsTemplate:
    def test_processors_with_double_colon(self):
        d = parse_directive("!HPF$ PROCESSORS :: PROCS(NP)")
        assert isinstance(d, ProcessorsDirective)
        assert d.name == "PROCS"
        assert d.shape[0].eval(ENV) == 4

    def test_processors_without_double_colon(self):
        d = parse_directive("!HPF$ PROCESSORS PROC(8)")
        assert d.name == "PROC"
        assert d.shape[0].eval({}) == 8

    def test_processors_2d(self):
        d = parse_directive("!HPF$ PROCESSORS GRID(2, 2)")
        assert [e.eval({}) for e in d.shape] == [2, 2]

    def test_template(self):
        d = parse_directive("!HPF$ TEMPLATE T(n)")
        assert isinstance(d, TemplateDirective)
        assert d.extent.eval(ENV) == 100


class TestAlign:
    def test_list_form(self):
        d = parse_directive("!HPF$ ALIGN (:) WITH p(:) :: q, r, x, b")
        assert isinstance(d, AlignDirective)
        assert d.alignees == ["q", "r", "x", "b"]
        assert d.target == "p"
        assert d.source_dims == [":"]

    def test_inline_form(self):
        d = parse_directive("!HPF$ ALIGN a(:) WITH col(:)")
        assert d.alignees == ["a"]
        assert d.target == "col"

    def test_2d_row_alignment(self):
        d = parse_directive("!HPF$ ALIGN A(:, *) WITH p(:)")
        assert d.source_dims == [":", "*"]

    def test_2d_col_alignment(self):
        d = parse_directive("!HPF$ ALIGN A(*, :) WITH p(:)")
        assert d.source_dims == ["*", ":"]

    def test_atom_alignment(self):
        d = parse_directive("!HPF$ ALIGN row(ATOM:i) WITH col(i)")
        assert d.source_dims == [("ATOM", "i")]
        assert d.target_dims == ["i"]

    def test_no_arrays_rejected(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_directive("!HPF$ ALIGN (:) WITH p(:)")

    def test_both_inline_and_list_rejected(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_directive("!HPF$ ALIGN a(:) WITH p(:) :: q")


class TestDistribute:
    def test_plain_block(self):
        d = parse_directive("!HPF$ DISTRIBUTE p(BLOCK)")
        assert isinstance(d, DistributeDirective)
        assert d.dist.kind == "BLOCK"
        assert d.dist.block_size is None
        assert not d.dynamic

    def test_dollar_prefix_accepted(self):
        d = parse_directive("$HPF$ DISTRIBUTE row(BLOCK( (n+NP-1)/NP ))")
        assert d.array == "row"

    def test_cyclic(self):
        d = parse_directive("!HPF$ DISTRIBUTE x(CYCLIC)")
        assert d.dist.kind == "CYCLIC"

    def test_dynamic_prefix(self):
        d = parse_directive("!HPF$ DYNAMIC, DISTRIBUTE row(BLOCK)")
        assert d.dynamic

    def test_dynamic_align(self):
        d = parse_directive("!HPF$ DYNAMIC, ALIGN a(:) WITH col(:)")
        assert isinstance(d, AlignDirective)
        assert d.dynamic

    def test_dynamic_requires_distribute_or_align(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_directive("!HPF$ DYNAMIC, PROCESSORS P(4)")

    def test_unknown_kind_rejected(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_directive("!HPF$ DISTRIBUTE p(DIAGONAL)")


class TestRedistributeAndExtensions:
    def test_redistribute_regular(self):
        d = parse_directive("!HPF$ REDISTRIBUTE row(BLOCK)")
        assert isinstance(d, RedistributeDirective)
        assert d.dist.kind == "BLOCK"
        assert not d.dist.atom

    def test_redistribute_atom_block(self):
        d = parse_directive("!EXT$ REDISTRIBUTE row(ATOM: BLOCK)")
        assert d.dist.atom
        assert d.dist.kind == "BLOCK"

    def test_redistribute_atom_cyclic(self):
        d = parse_directive("!EXT$ REDISTRIBUTE row(ATOM: CYCLIC)")
        assert d.dist.atom
        assert d.dist.kind == "CYCLIC"

    def test_redistribute_using_partitioner(self):
        d = parse_directive("!EXT$ REDISTRIBUTE smA USING CG_BALANCED_PARTITIONER_1")
        assert d.partitioner == "CG_BALANCED_PARTITIONER_1"
        assert d.dist is None

    def test_indivisable(self):
        d = parse_directive("!EXT$ INDIVISABLE row(ATOM:i) :: col(i:i+1)")
        assert isinstance(d, IndivisableDirective)
        assert d.array == "row"
        assert d.atom_var == "i"
        assert d.indirection == "col"
        assert d.lo.eval({"i": 3}) == 3
        assert d.hi.eval({"i": 3}) == 4

    def test_sparse_matrix(self):
        d = parse_directive("!HPF$ SPARSE_MATRIX (CSR) :: smA(row, col, a)")
        assert isinstance(d, SparseMatrixDirective)
        assert d.fmt == "CSR"
        assert d.name == "smA"
        assert d.arrays == ["row", "col", "a"]

    def test_sparse_matrix_csc(self):
        d = parse_directive("!HPF$ SPARSE_MATRIX (CSC) :: M(col, row, a)")
        assert d.fmt == "CSC"

    def test_sparse_matrix_wrong_arity(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_directive("!HPF$ SPARSE_MATRIX (CSR) :: smA(row, col)")

    def test_sparse_matrix_unknown_format(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_directive("!HPF$ SPARSE_MATRIX (ELL) :: smA(a, b, c)")

    def test_independent(self):
        assert isinstance(parse_directive("!HPF$ INDEPENDENT"), IndependentDirective)


class TestIteration:
    def test_full_iteration_directive(self):
        d = parse_directive(
            "!EXT$ ITERATION j ON PROCESSOR(j/np), PRIVATE(q(n)) WITH MERGE(+), NEW(pj, k)"
        )
        assert isinstance(d, IterationDirective)
        assert d.var == "j"
        assert d.on_processor.eval({"j": 9, "np": 4}) == 2
        assert d.privates[0][0] == "q"
        assert d.privates[0][1].eval(ENV) == 100
        assert d.merge_op == "+"
        assert d.news == ["pj", "k"]

    def test_discard_option(self):
        d = parse_directive("!EXT$ ITERATION i ON PROCESSOR(i), PRIVATE(t(n)) WITH DISCARD")
        assert d.discard
        assert d.merge_op is None

    def test_unknown_clause(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_directive("!EXT$ ITERATION i ON PROCESSOR(i), SHARED(x)")


class TestContinuationsAndBlocks:
    def test_paper_figure2_block_parses(self):
        """The complete Figure-2 declaration block, verbatim."""
        text = """
REAL, dimension(1:nz) :: a
INTEGER, dimension(1:nz) :: col
INTEGER, dimension(1:n+1) :: row
REAL, dimension(1:n) :: x, r, p, q
!HPF$ PROCESSORS :: PROCS(NP)
!HPF$ ALIGN (:) WITH p(:) :: q, r, x, b
!HPF$ DISTRIBUTE p(BLOCK)
!HPF$ DISTRIBUTE row(CYCLIC((n+NP-1)/np))
!HPF$ ALIGN a(:) WITH col(:)
!HPF$ DISTRIBUTE col(BLOCK)
"""
        ds = parse_directives(text)
        assert len(ds) == 6
        assert isinstance(ds[0], ProcessorsDirective)

    def test_continuation_lines(self):
        text = (
            "!EXT$ ITERATION j ON PROCESSOR(j/np), &\n"
            "!EXT$ PRIVATE(q(n)) WITH MERGE(+), &\n"
            "!EXT$ NEW(pj, k)\n"
        )
        ds = parse_directives(text)
        assert len(ds) == 1
        assert ds[0].news == ["pj", "k"]

    def test_unterminated_continuation(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_directives("!HPF$ DISTRIBUTE p(BLOCK) &\n")

    def test_continuation_into_non_directive(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_directives("!HPF$ ALIGN (:) WITH p(:) &\nq = 0.0\n")

    def test_non_directive_lines_skipped(self):
        ds = parse_directives("q = 0.0\nDO k=1,Niter\n!HPF$ INDEPENDENT\nEND DO\n")
        assert len(ds) == 1

    def test_missing_prefix_rejected_in_parse_directive(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_directive("DISTRIBUTE p(BLOCK)")

    def test_unknown_keyword(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_directive("!HPF$ FROBNICATE p(BLOCK)")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(DirectiveSyntaxError):
            parse_directive("!HPF$ DISTRIBUTE p(BLOCK) extra")
