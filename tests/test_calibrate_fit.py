"""Deterministic-input tests for the robust message-cost fit.

``fit_message_model`` runs on measured ping-pong samples everywhere else;
here it gets synthetic samples with known ground truth so the robustness
rules -- discard non-finite/non-positive times, refit without >10x
outliers -- are pinned down exactly.
"""

import numpy as np
import pytest

from repro.backend import fit_message_model


def _samples(t_startup=5e-6, t_comm=2e-9, sizes=(1, 64, 256, 1024, 4096)):
    return [(m, t_startup + m * t_comm) for m in sizes]


class TestFitMessageModel:
    def test_recovers_exact_line(self):
        t_startup, t_comm = fit_message_model(_samples())
        assert t_startup == pytest.approx(5e-6, rel=1e-6)
        assert t_comm == pytest.approx(2e-9, rel=1e-6)

    def test_discards_nonfinite_and_nonpositive_times(self):
        noisy = _samples() + [
            (128, float("nan")), (512, float("inf")), (2048, -3e-6), (64, 0.0)
        ]
        t_startup, t_comm = fit_message_model(noisy)
        assert t_startup == pytest.approx(5e-6, rel=1e-6)
        assert t_comm == pytest.approx(2e-9, rel=1e-6)

    def test_refits_without_10x_outlier(self):
        # one sample hit by a scheduler hiccup: 50x the true line
        noisy = _samples()
        noisy[2] = (noisy[2][0], noisy[2][1] * 50.0)
        t_startup, t_comm = fit_message_model(noisy)
        assert t_startup == pytest.approx(5e-6, rel=1e-6)
        assert t_comm == pytest.approx(2e-9, rel=1e-6)

    def test_moderate_noise_is_kept(self):
        # 2x noise is within the 10x gate: it must influence the fit,
        # not be silently discarded
        noisy = _samples()
        noisy[2] = (noisy[2][0], noisy[2][1] * 2.0)
        exact = fit_message_model(_samples())
        fitted = fit_message_model(noisy)
        assert fitted != pytest.approx(exact, rel=1e-9)

    def test_all_samples_bad_raises(self):
        with pytest.raises(ValueError, match="at least two usable"):
            fit_message_model([(1, float("nan")), (64, -1.0)])

    def test_never_discards_below_two_samples(self):
        # two samples, one of them a huge outlier: the refit guard keeps
        # both rather than fitting a single point
        t_startup, t_comm = fit_message_model([(1, 1e-6), (64, 1e-2)])
        assert np.isfinite(t_startup) and np.isfinite(t_comm)
        assert t_startup > 0 and t_comm > 0

    def test_negative_intercept_clamped(self):
        # a fast host can produce a negative least-squares intercept;
        # the fit must clamp rather than hand CostModel a negative constant
        samples = [(1, 1e-9), (64, 1.0e-6), (4096, 64.0e-6)]
        t_startup, t_comm = fit_message_model(samples)
        assert t_startup > 0
