"""Unit tests for SPMD collectives built from point-to-point messages."""

import numpy as np
import pytest

from repro.machine import (
    CostModel,
    Machine,
    allgather_cost,
    allreduce_cost,
    run_spmd,
    spmd,
)

SIZES = [1, 2, 3, 4, 5, 7, 8, 16]


@pytest.mark.parametrize("size", SIZES)
class TestBcast:
    def test_value_reaches_everyone(self, size):
        def prog(rank, nprocs):
            value = {"data": 99} if rank == 0 else None
            out = yield from spmd.bcast(rank, nprocs, value)
            return out

        results = run_spmd(Machine(size, "complete"), prog)
        assert all(r == {"data": 99} for r in results)

    def test_nonzero_root(self, size):
        root = size - 1

        def prog(rank, nprocs):
            value = rank if rank == root else None
            out = yield from spmd.bcast(rank, nprocs, value, root=root)
            return out

        results = run_spmd(Machine(size, "complete"), prog)
        assert all(r == root for r in results)


@pytest.mark.parametrize("size", SIZES)
class TestReduceAllreduce:
    def test_reduce_to_root(self, size):
        def prog(rank, nprocs):
            out = yield from spmd.reduce_to_root(rank, nprocs, rank + 1)
            return out

        results = run_spmd(Machine(size, "complete"), prog)
        assert results[0] == size * (size + 1) // 2
        assert all(r is None for r in results[1:])

    def test_allreduce_sum(self, size):
        def prog(rank, nprocs):
            out = yield from spmd.allreduce_sum(rank, nprocs, float(rank))
            return out

        results = run_spmd(Machine(size, "complete"), prog)
        assert all(r == sum(range(size)) for r in results)

    def test_allreduce_arrays(self, size):
        def prog(rank, nprocs):
            out = yield from spmd.allreduce_sum(rank, nprocs, np.full(3, rank + 1.0))
            return out

        results = run_spmd(Machine(size, "complete"), prog)
        expected = np.full(3, size * (size + 1) / 2)
        for r in results:
            assert np.allclose(r, expected)

    def test_custom_op(self, size):
        def prog(rank, nprocs):
            out = yield from spmd.reduce_to_root(rank, nprocs, rank, op=max)
            return out

        results = run_spmd(Machine(size, "complete"), prog)
        assert results[0] == size - 1


@pytest.mark.parametrize("size", SIZES)
class TestGatherAllgatherScatter:
    def test_gather_to_root(self, size):
        def prog(rank, nprocs):
            out = yield from spmd.gather_to_root(rank, nprocs, rank * 2)
            return out

        results = run_spmd(Machine(size, "complete"), prog)
        assert results[0] == [2 * r for r in range(size)]

    def test_allgather(self, size):
        def prog(rank, nprocs):
            out = yield from spmd.allgather(rank, nprocs, chr(ord("a") + rank))
            return out

        results = run_spmd(Machine(size, "complete"), prog)
        expected = [chr(ord("a") + r) for r in range(size)]
        assert all(r == expected for r in results)

    def test_scatter(self, size):
        def prog(rank, nprocs):
            values = [10 * r for r in range(nprocs)] if rank == 0 else None
            out = yield from spmd.scatter_from_root(rank, nprocs, values)
            return out

        results = run_spmd(Machine(size, "complete"), prog)
        assert results == [10 * r for r in range(size)]

    def test_scatter_nonzero_root(self, size):
        root = size // 2

        def prog(rank, nprocs):
            values = list(range(nprocs)) if rank == root else None
            out = yield from spmd.scatter_from_root(rank, nprocs, values, root=root)
            return out

        results = run_spmd(Machine(size, "complete"), prog)
        assert results == list(range(size))

    def test_scatter_requires_values_on_root(self, size):
        def prog(rank, nprocs):
            out = yield from spmd.scatter_from_root(rank, nprocs, None)
            return out

        with pytest.raises(ValueError):
            run_spmd(Machine(size, "complete"), prog)


class TestEmergentCostMatchesClosedForm:
    """Cross-validation: event-simulated collectives vs the cost formulas.

    The emergent time of a reduce+bcast allreduce should be within a small
    factor of the closed-form recursive-doubling model (same asymptotics:
    O(log P) startups), and the allgather word volume should match.
    """

    def test_allreduce_latency_scales_like_log_p(self):
        times = []
        for p in (2, 4, 8, 16):
            m = Machine(p, "hypercube")

            def prog(rank, nprocs):
                out = yield from spmd.allreduce_sum(rank, nprocs, 1.0)
                return out

            run_spmd(m, prog)
            times.append(m.elapsed())
        # reduce+bcast is 2 log P stages; ratios between successive P should
        # follow (log 2P)/(log P), far below linear scaling
        assert times[-1] / times[0] < 16 / 2  # sublinear in P
        assert times[-1] / times[0] == pytest.approx(4.0, rel=0.35)

    def test_allreduce_emergent_vs_model_same_order(self):
        p = 8
        m = Machine(p, "hypercube")

        def prog(rank, nprocs):
            out = yield from spmd.allreduce_sum(rank, nprocs, 1.0)
            return out

        run_spmd(m, prog)
        model = allreduce_cost(m.topology, m.cost, 1.0).time
        # reduce+bcast pays ~2x recursive doubling's latency
        assert m.elapsed() == pytest.approx(2 * model, rel=0.5)

    def test_allgather_words_match_model(self):
        p, nwords = 8, 10.0
        m = Machine(p, "hypercube")

        def prog(rank, nprocs):
            out = yield from spmd.allgather(rank, nprocs, np.zeros(int(nwords)))
            return out

        run_spmd(m, prog)
        model = allgather_cost(m.topology, m.cost, nwords)
        # gather+bcast moves each block up and back down the tree: within 3x
        # of the recursive-doubling volume, same O(P * m) order
        assert m.stats.total_words == pytest.approx(model.words, rel=2.0)


def _ceil_log2(p):
    return (p - 1).bit_length() if p > 1 else 0


@pytest.mark.parametrize("size", SIZES)
class TestAllreduceVec:
    def test_slotwise_sums(self, size):
        def prog(rank, nprocs):
            out = yield from spmd.allreduce_vec(
                rank, nprocs, [float(rank), 2.0 * rank, 1.0])
            return out

        results = run_spmd(Machine(size, "complete"), prog)
        s = size * (size - 1) / 2.0
        for r in results:
            np.testing.assert_array_equal(r, [s, 2.0 * s, float(size)])

    def test_single_message_per_tree_edge(self, size):
        """Packing k scalars costs ONE reduce+bcast tree, not k of them."""
        m = Machine(size, "complete")

        def prog(rank, nprocs):
            out = yield from spmd.allreduce_vec(rank, nprocs, np.ones(4))
            return out

        run_spmd(m, prog)
        # reduce: size-1 messages up the tree, bcast: size-1 back down
        assert m.stats.total_messages == 2 * (size - 1)


class TestAllreduceVecValidation:
    def test_rejects_empty(self):
        gen = spmd.allreduce_vec(0, 2, [])
        with pytest.raises(ValueError, match="non-empty"):
            next(gen)

    def test_rejects_matrix(self):
        gen = spmd.allreduce_vec(0, 2, np.zeros((2, 2)))
        with pytest.raises(ValueError, match="1-D"):
            next(gen)

    def test_slot_count_mismatch_detected(self):
        def prog(rank, nprocs):
            vec = np.ones(1) if rank == 0 else np.ones(3)
            out = yield from spmd.allreduce_vec(rank, nprocs, vec)
            return out

        with pytest.raises(ValueError, match="slot mismatch"):
            run_spmd(Machine(2, "complete"), prog)

    def test_slot_mismatch_names_offending_rank(self):
        # rank 2 packs a different slot count; the error must name the
        # two ranks whose contributions disagree and both shapes, so the
        # deviant is identifiable from the message alone
        def prog(rank, nprocs):
            vec = np.ones(5) if rank == 2 else np.ones(2)
            out = yield from spmd.allreduce_vec(rank, nprocs, vec)
            return out

        with pytest.raises(
            ValueError,
            match=r"rank 3 contributed \(2,\), rank 2 expected \(5,\)",
        ):
            run_spmd(Machine(4, "complete"), prog)

    def test_slot_mismatch_reports_expected_shape(self):
        def prog(rank, nprocs):
            vec = np.ones(7) if rank == 1 else np.ones(3)
            out = yield from spmd.allreduce_vec(rank, nprocs, vec)
            return out

        with pytest.raises(
            ValueError,
            match=r"rank 1 contributed \(7,\), rank 0 expected \(3,\)",
        ):
            run_spmd(Machine(2, "complete"), prog)


@pytest.mark.parametrize("size", [2, 3, 5, 6, 7, 12, 16])
class TestAllreduceDoublingAnyP:
    """Fold-based recursive doubling: correct and exactly as priced.

    The non-power-of-two cost fix is pinned here: the counted message
    total of a scheduler run must equal ``allreduce_cost``'s fold-based
    count (2f + c log2 c), which the old ``ceil(log2 P) * P`` formula
    overcounted for every P not a power of two (18 vs 14 at P=6).
    """

    def test_result_and_message_count(self, size):
        m = Machine(size, "complete")

        def prog(rank, nprocs):
            out = yield from spmd.allreduce_doubling(
                rank, nprocs, float(rank + 1))
            return out

        results = run_spmd(m, prog)
        assert all(r == size * (size + 1) / 2.0 for r in results)
        model = allreduce_cost(m.topology, m.cost, 1.0)
        c = 1 << (size.bit_length() - 1)
        f = size - c
        assert m.stats.total_messages == model.messages
        assert model.messages == 2 * f + (c.bit_length() - 1) * c

    def test_emergent_time_matches_model(self, size):
        m = Machine(size, "complete")

        def prog(rank, nprocs):
            out = yield from spmd.allreduce_doubling(
                rank, nprocs, float(rank))
            return out

        run_spmd(m, prog)
        model = allreduce_cost(m.topology, m.cost, 1.0)
        # the only gap is the combine flops the generator does not charge
        assert m.elapsed() == pytest.approx(model.time, rel=1e-3)


@pytest.mark.parametrize("size", [2, 3, 5, 6, 8, 12])
class TestAllgatherBruck:
    def test_world_order_and_message_count(self, size):
        m = Machine(size, "complete")

        def prog(rank, nprocs):
            out = yield from spmd.allgather_bruck(rank, nprocs, rank)
            return out

        results = run_spmd(m, prog)
        assert all(r == list(range(size)) for r in results)
        assert m.stats.total_messages == size * _ceil_log2(size)


@pytest.mark.parametrize("rows,cols", [(2, 2), (2, 3), (3, 2), (3, 4)])
class TestAllgatherGrid:
    def test_world_order_and_message_count(self, rows, cols):
        size = rows * cols
        m = Machine(size, "complete")

        def prog(rank, nprocs):
            out = yield from spmd.allgather_grid(
                rank, nprocs, rank, rows, cols)
            return out

        results = run_spmd(m, prog)
        assert all(r == list(range(size)) for r in results)
        # every rank participates in a row phase and a column phase
        assert m.stats.total_messages == size * (
            _ceil_log2(cols) + _ceil_log2(rows))

    def test_grid_must_cover_machine(self, rows, cols):
        gen = spmd.allgather_grid(0, rows * cols + 1, 0.0, rows, cols)
        with pytest.raises(ValueError, match="does not cover"):
            next(gen)
