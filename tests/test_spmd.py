"""Unit tests for SPMD collectives built from point-to-point messages."""

import numpy as np
import pytest

from repro.machine import (
    CostModel,
    Machine,
    allgather_cost,
    allreduce_cost,
    run_spmd,
    spmd,
)

SIZES = [1, 2, 3, 4, 5, 7, 8, 16]


@pytest.mark.parametrize("size", SIZES)
class TestBcast:
    def test_value_reaches_everyone(self, size):
        def prog(rank, nprocs):
            value = {"data": 99} if rank == 0 else None
            out = yield from spmd.bcast(rank, nprocs, value)
            return out

        results = run_spmd(Machine(size, "complete"), prog)
        assert all(r == {"data": 99} for r in results)

    def test_nonzero_root(self, size):
        root = size - 1

        def prog(rank, nprocs):
            value = rank if rank == root else None
            out = yield from spmd.bcast(rank, nprocs, value, root=root)
            return out

        results = run_spmd(Machine(size, "complete"), prog)
        assert all(r == root for r in results)


@pytest.mark.parametrize("size", SIZES)
class TestReduceAllreduce:
    def test_reduce_to_root(self, size):
        def prog(rank, nprocs):
            out = yield from spmd.reduce_to_root(rank, nprocs, rank + 1)
            return out

        results = run_spmd(Machine(size, "complete"), prog)
        assert results[0] == size * (size + 1) // 2
        assert all(r is None for r in results[1:])

    def test_allreduce_sum(self, size):
        def prog(rank, nprocs):
            out = yield from spmd.allreduce_sum(rank, nprocs, float(rank))
            return out

        results = run_spmd(Machine(size, "complete"), prog)
        assert all(r == sum(range(size)) for r in results)

    def test_allreduce_arrays(self, size):
        def prog(rank, nprocs):
            out = yield from spmd.allreduce_sum(rank, nprocs, np.full(3, rank + 1.0))
            return out

        results = run_spmd(Machine(size, "complete"), prog)
        expected = np.full(3, size * (size + 1) / 2)
        for r in results:
            assert np.allclose(r, expected)

    def test_custom_op(self, size):
        def prog(rank, nprocs):
            out = yield from spmd.reduce_to_root(rank, nprocs, rank, op=max)
            return out

        results = run_spmd(Machine(size, "complete"), prog)
        assert results[0] == size - 1


@pytest.mark.parametrize("size", SIZES)
class TestGatherAllgatherScatter:
    def test_gather_to_root(self, size):
        def prog(rank, nprocs):
            out = yield from spmd.gather_to_root(rank, nprocs, rank * 2)
            return out

        results = run_spmd(Machine(size, "complete"), prog)
        assert results[0] == [2 * r for r in range(size)]

    def test_allgather(self, size):
        def prog(rank, nprocs):
            out = yield from spmd.allgather(rank, nprocs, chr(ord("a") + rank))
            return out

        results = run_spmd(Machine(size, "complete"), prog)
        expected = [chr(ord("a") + r) for r in range(size)]
        assert all(r == expected for r in results)

    def test_scatter(self, size):
        def prog(rank, nprocs):
            values = [10 * r for r in range(nprocs)] if rank == 0 else None
            out = yield from spmd.scatter_from_root(rank, nprocs, values)
            return out

        results = run_spmd(Machine(size, "complete"), prog)
        assert results == [10 * r for r in range(size)]

    def test_scatter_nonzero_root(self, size):
        root = size // 2

        def prog(rank, nprocs):
            values = list(range(nprocs)) if rank == root else None
            out = yield from spmd.scatter_from_root(rank, nprocs, values, root=root)
            return out

        results = run_spmd(Machine(size, "complete"), prog)
        assert results == list(range(size))

    def test_scatter_requires_values_on_root(self, size):
        def prog(rank, nprocs):
            out = yield from spmd.scatter_from_root(rank, nprocs, None)
            return out

        with pytest.raises(ValueError):
            run_spmd(Machine(size, "complete"), prog)


class TestEmergentCostMatchesClosedForm:
    """Cross-validation: event-simulated collectives vs the cost formulas.

    The emergent time of a reduce+bcast allreduce should be within a small
    factor of the closed-form recursive-doubling model (same asymptotics:
    O(log P) startups), and the allgather word volume should match.
    """

    def test_allreduce_latency_scales_like_log_p(self):
        times = []
        for p in (2, 4, 8, 16):
            m = Machine(p, "hypercube")

            def prog(rank, nprocs):
                out = yield from spmd.allreduce_sum(rank, nprocs, 1.0)
                return out

            run_spmd(m, prog)
            times.append(m.elapsed())
        # reduce+bcast is 2 log P stages; ratios between successive P should
        # follow (log 2P)/(log P), far below linear scaling
        assert times[-1] / times[0] < 16 / 2  # sublinear in P
        assert times[-1] / times[0] == pytest.approx(4.0, rel=0.35)

    def test_allreduce_emergent_vs_model_same_order(self):
        p = 8
        m = Machine(p, "hypercube")

        def prog(rank, nprocs):
            out = yield from spmd.allreduce_sum(rank, nprocs, 1.0)
            return out

        run_spmd(m, prog)
        model = allreduce_cost(m.topology, m.cost, 1.0).time
        # reduce+bcast pays ~2x recursive doubling's latency
        assert m.elapsed() == pytest.approx(2 * model, rel=0.5)

    def test_allgather_words_match_model(self):
        p, nwords = 8, 10.0
        m = Machine(p, "hypercube")

        def prog(rank, nprocs):
            out = yield from spmd.allgather(rank, nprocs, np.zeros(int(nwords)))
            return out

        run_spmd(m, prog)
        model = allgather_cost(m.topology, m.cost, nwords)
        # gather+bcast moves each block up and back down the tree: within 3x
        # of the recursive-doubling volume, same O(P * m) order
        assert m.stats.total_words == pytest.approx(model.words, rel=2.0)
