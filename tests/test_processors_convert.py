"""Tests for processor arrangements and format-conversion helpers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.hpf import MappingError, ProcessorArrangement
from repro.sparse import (
    CSRMatrix,
    DenseMatrix,
    as_format,
    as_matrix,
    figure1_matrix,
    from_scipy,
)


class TestProcessorArrangement:
    def test_1d(self):
        p = ProcessorArrangement("PROCS", (8,))
        assert p.size == 8
        assert p.ndim == 1
        assert p.rank_of(5) == 5
        assert p.coords_of(5) == (5,)

    def test_scalar_shape_promoted(self):
        assert ProcessorArrangement("P", 4).shape == (4,)

    def test_2d_row_major(self):
        p = ProcessorArrangement("GRID", (2, 3))
        assert p.size == 6
        assert p.rank_of(1, 2) == 5
        assert p.coords_of(4) == (1, 1)

    def test_round_trip(self):
        p = ProcessorArrangement("G", (3, 4))
        for rank in range(12):
            assert p.rank_of(*p.coords_of(rank)) == rank

    def test_coordinate_validation(self):
        p = ProcessorArrangement("G", (2, 2))
        with pytest.raises(MappingError):
            p.rank_of(2, 0)
        with pytest.raises(MappingError):
            p.rank_of(0)
        with pytest.raises(MappingError):
            p.coords_of(4)

    def test_invalid_shape(self):
        with pytest.raises(MappingError):
            ProcessorArrangement("P", (0,))


class TestAsMatrix:
    def test_passthrough(self, fig1):
        assert as_matrix(fig1) is fig1

    def test_ndarray_wrapped_dense(self, rng):
        a = rng.standard_normal((3, 3))
        m = as_matrix(a)
        assert isinstance(m, DenseMatrix)
        assert np.allclose(m.toarray(), a)

    def test_scipy_converted(self, fig1):
        m = as_matrix(fig1.to_scipy())
        assert isinstance(m, CSRMatrix)
        assert np.allclose(m.toarray(), fig1.toarray())

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            as_matrix("not a matrix")


class TestFromScipy:
    @pytest.mark.parametrize("converter", ["tocsr", "tocsc", "tocoo"])
    def test_all_scipy_formats(self, fig1, converter):
        sp_m = getattr(fig1.to_scipy(), converter)()
        back = from_scipy(sp_m)
        assert np.allclose(back.toarray(), fig1.toarray())

    def test_empty_scipy(self):
        back = from_scipy(sp.csr_matrix((3, 3)))
        assert back.nnz == 0
        assert back.shape == (3, 3)


class TestAsFormat:
    def test_unknown_format_rejected(self, fig1):
        with pytest.raises(ValueError):
            as_format(fig1, "ellpack")

    def test_case_insensitive(self, fig1):
        assert as_format(fig1, "CSC").toarray().shape == (6, 6)

    def test_idempotent(self, fig1):
        assert as_format(fig1, "csr") is fig1
