"""Tests for the proposed HPF-2 extension mechanisms (paper Section 5)."""

import numpy as np
import pytest

from repro.extensions import (
    AtomCyclic,
    CommunicationSchedule,
    IndivisableSpec,
    InspectorExecutor,
    OnProcessor,
    PrivateRegion,
    atom_block,
    atom_block_balanced,
    atom_cyclic,
    cg_balanced_partitioner_1,
    edge_cut_partitioner,
    imbalance,
    assignment_imbalance,
    lpt_partitioner,
)
from repro.hpf import Block, Cyclic, DistributedArray, DistributionError, MappingError
from repro.machine import Machine
from repro.sparse import figure1_matrix, irregular_powerlaw, poisson2d


class TestPrivateRegion:
    def test_local_copies_independent(self, machine4):
        region = PrivateRegion(machine4, 6)
        region.local(0)[2] += 5.0
        region.local(1)[2] += 7.0
        assert region.local(0)[2] == 5.0
        assert region.local(1)[2] == 7.0

    def test_merge_sums_copies(self, machine4):
        region = PrivateRegion(machine4, 6)
        for r in range(4):
            region.local(r)[:] = r + 1.0
        out = DistributedArray(machine4, 6)
        region.merge_into(out)
        assert np.allclose(out.to_global(), 10.0)

    def test_merge_charges_reduce_scatter(self):
        m = Machine(nprocs=4)
        region = PrivateRegion(m, 8)
        out = DistributedArray(m, 8)
        region.merge_into(out)
        assert "reduce_scatter" in m.stats.by_op()

    def test_storage_cost_is_n_per_rank(self):
        """The paper's worry: N_P temporary vectors each of length n."""
        m = Machine(nprocs=4)
        base = m.stats.storage_words_per_rank.copy()
        region = PrivateRegion(m, 100)
        assert np.allclose(m.stats.storage_words_per_rank - base, 100.0)
        assert region.storage_words_total == 400.0

    def test_double_merge_rejected(self, machine4):
        region = PrivateRegion(machine4, 4)
        out = DistributedArray(machine4, 4)
        region.merge_into(out)
        with pytest.raises(RuntimeError):
            region.merge_into(out)

    def test_discard_mode(self, machine4):
        region = PrivateRegion(machine4, 4, merge=None)
        out = DistributedArray(machine4, 4)
        with pytest.raises(ValueError):
            region.merge_into(out)
        region.discard()

    def test_context_manager_discards(self, machine4):
        with PrivateRegion(machine4, 4) as region:
            region.local(0)[0] = 1.0
        with pytest.raises(RuntimeError):
            region.local(0)

    def test_extent_mismatch(self, machine4):
        region = PrivateRegion(machine4, 4)
        with pytest.raises(ValueError):
            region.merge_into(DistributedArray(machine4, 5))

    def test_unknown_merge_op(self, machine4):
        with pytest.raises(ValueError):
            PrivateRegion(machine4, 4, merge="*")

    def test_csc_matvec_via_private_region(self, machine4):
        """The Figure-5 pattern end to end."""
        A = figure1_matrix().to_csc()
        p = np.arange(1.0, 7.0)
        mapping = OnProcessor.block(6, 4)
        region = PrivateRegion(machine4, 6)
        for rank, cols in enumerate(mapping.partition(np.arange(6))):
            local = region.local(rank)
            for j in cols:
                rows, vals = A.col_slice(int(j))
                local[rows] += vals * p[j]
        q = DistributedArray(machine4, 6)
        region.merge_into(q)
        assert np.allclose(q.to_global(), A.matvec(p))


class TestOnProcessor:
    def test_block_mapping(self):
        mp = OnProcessor.block(12, 4)
        assert mp.map(np.arange(12)).tolist() == [0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3]

    def test_block_mapping_clamps_tail(self):
        mp = OnProcessor.block(10, 4)  # chunk 3: iterations 9.. map to rank 3
        assert mp.map(np.array([9])).tolist() == [3]

    def test_cyclic_mapping(self):
        mp = OnProcessor.cyclic(3)
        assert mp.map(np.arange(6)).tolist() == [0, 1, 2, 0, 1, 2]

    def test_from_boundaries(self):
        mp = OnProcessor.from_boundaries(np.array([0, 2, 7, 7, 10]))
        assert mp.map(np.array([0, 2, 6, 7, 9])).tolist() == [0, 1, 1, 3, 3]

    def test_partition_preserves_order(self):
        mp = OnProcessor.cyclic(2)
        parts = mp.partition(np.arange(6))
        assert parts[0].tolist() == [0, 2, 4]
        assert parts[1].tolist() == [1, 3, 5]

    def test_counts(self):
        mp = OnProcessor.block(10, 4)
        assert mp.counts(np.arange(10)).tolist() == [3, 3, 3, 1]

    def test_out_of_range_mapping_rejected(self):
        mp = OnProcessor(lambda i: i, 2)  # maps iteration 5 -> rank 5
        with pytest.raises(MappingError):
            mp.map(np.arange(6))

    def test_scalar_callable_fallback(self):
        # a non-vectorisable Python function still works
        mp = OnProcessor(lambda i: int(i) % 3 if np.isscalar(i) or i.ndim == 0 else (_ for _ in ()).throw(TypeError), 3)
        assert mp.map(np.arange(5)).tolist() == [0, 1, 2, 0, 1]


class TestIndivisableSpec:
    def test_atom_sizes_from_figure1(self, fig1):
        spec = IndivisableSpec(fig1.to_csc().indptr)
        assert spec.natoms == 6
        assert spec.atom_sizes().tolist() == [4, 4, 1, 2, 2, 2]
        assert spec.nelements == 15

    def test_atom_range_and_membership(self, fig1):
        spec = IndivisableSpec(fig1.to_csc().indptr)
        assert spec.atom_range(1) == (4, 8)
        assert spec.atom_of_element(np.array([0, 3, 4, 14])).tolist() == [0, 0, 1, 5]

    def test_element_block_splits_atoms(self, fig1):
        """HPF BLOCK cuts columns in half -- the Section 5.2.1 defect."""
        spec = IndivisableSpec(fig1.to_csc().indptr)
        split = spec.split_atoms_under(Block(15, 4))
        assert split.size > 0

    def test_cyclic_splits_nearly_everything(self, fig1):
        spec = IndivisableSpec(fig1.to_csc().indptr)
        split = spec.split_atoms_under(Cyclic(15, 4))
        assert split.size >= 4

    def test_validation(self):
        with pytest.raises(DistributionError):
            IndivisableSpec([1, 3])  # must start at 0
        with pytest.raises(DistributionError):
            IndivisableSpec([0, 5, 3])  # must be monotone

    def test_atom_of_element_bounds(self, fig1):
        spec = IndivisableSpec(fig1.to_csc().indptr)
        with pytest.raises(IndexError):
            spec.atom_of_element(np.array([15]))

    def test_empty_atoms_allowed(self):
        spec = IndivisableSpec([0, 3, 3, 5])
        assert spec.atom_sizes().tolist() == [3, 0, 2]


class TestAtomDistributions:
    def test_atom_block_never_splits(self, fig1):
        spec = IndivisableSpec(fig1.to_csc().indptr)
        for nprocs in (1, 2, 3, 4, 6):
            dist, cuts = atom_block(spec, nprocs)
            assert spec.split_atoms_under(dist).size == 0
            assert cuts[-1] == spec.natoms

    def test_atom_block_balanced_never_splits(self, fig1):
        spec = IndivisableSpec(fig1.to_csc().indptr)
        dist, cuts = atom_block_balanced(spec, 4)
        assert spec.split_atoms_under(dist).size == 0

    def test_balanced_beats_uniform_on_skewed_atoms(self):
        """Section 5.2.2: with skewed columns, balancing by nnz wins."""
        A = irregular_powerlaw(200, seed=3).to_csc()
        spec = IndivisableSpec(A.indptr)
        weights = spec.atom_sizes().astype(float)
        _, cuts_uniform = atom_block(spec, 8)
        _, cuts_balanced = atom_block_balanced(spec, 8)
        assert imbalance(weights, cuts_balanced) <= imbalance(weights, cuts_uniform)

    def test_atom_cyclic_keeps_atoms_whole(self, fig1):
        spec = IndivisableSpec(fig1.to_csc().indptr)
        dist = atom_cyclic(spec, 3)
        assert isinstance(dist, AtomCyclic)
        assert spec.split_atoms_under(dist).size == 0

    def test_atom_cyclic_partition_laws(self, fig1):
        spec = IndivisableSpec(fig1.to_csc().indptr)
        dist = atom_cyclic(spec, 3)
        cover = np.concatenate([dist.local_indices(r) for r in range(3)])
        assert sorted(cover.tolist()) == list(range(15))
        for r in range(3):
            li = dist.local_indices(r)
            assert np.array_equal(dist.global_to_local(li), np.arange(li.size))

    def test_weights_arity_checked(self, fig1):
        spec = IndivisableSpec(fig1.to_csc().indptr)
        with pytest.raises(DistributionError):
            atom_block_balanced(spec, 4, weights=np.ones(3))


class TestPartitioners:
    def test_contiguous_optimality_on_uniform_weights(self):
        cuts = cg_balanced_partitioner_1(np.ones(12), 4)
        assert imbalance(np.ones(12), cuts) == pytest.approx(1.0)

    def test_skewed_weights_balanced(self):
        w = np.array([10, 1, 1, 1, 1, 10, 1, 1, 1, 1], dtype=float)
        cuts = cg_balanced_partitioner_1(w, 2)
        assert imbalance(w, cuts) <= 1.5

    def test_single_processor(self):
        cuts = cg_balanced_partitioner_1(np.arange(5.0), 1)
        assert cuts.tolist() == [0, 5]

    def test_more_parts_than_atoms(self):
        cuts = cg_balanced_partitioner_1(np.ones(2), 5)
        assert cuts[0] == 0 and cuts[-1] == 2
        assert len(cuts) == 6

    def test_zero_weights(self):
        cuts = cg_balanced_partitioner_1(np.zeros(8), 4)
        assert cuts[-1] == 8

    def test_negative_weights_rejected(self):
        with pytest.raises(DistributionError):
            cg_balanced_partitioner_1(np.array([-1.0]), 2)

    def test_lpt_at_least_as_balanced_as_contiguous(self):
        rng = np.random.default_rng(4)
        w = rng.zipf(1.8, size=60).astype(float)
        cuts = cg_balanced_partitioner_1(w, 6)
        assign = lpt_partitioner(w, 6)
        assert assignment_imbalance(w, assign, 6) <= imbalance(w, cuts) + 1e-12

    def test_lpt_assignment_covers_everything(self):
        assign = lpt_partitioner(np.ones(10), 3)
        assert assign.shape == (10,)
        assert set(assign.tolist()) <= {0, 1, 2}

    def test_edge_cut_partitioner_balances_vertices(self):
        A = poisson2d(6, 6)
        assign = edge_cut_partitioner(A, 4, seed=1)
        counts = np.bincount(assign, minlength=4)
        assert counts.max() - counts.min() <= 2

    def test_edge_cut_requires_power_of_two(self):
        with pytest.raises(DistributionError):
            edge_cut_partitioner(poisson2d(4, 4), 3)


class TestInspectorExecutor:
    def test_schedule_matches_owner_computes(self, machine4, fig1):
        csc = fig1.to_csc()
        ie = InspectorExecutor(machine4)
        sched = ie.build_schedule(csc.nnz, csc.indices, Block(6, 4))
        owners = Block(6, 4).owners(csc.indices)
        for r in range(4):
            assert sched.partition[r].tolist() == np.nonzero(owners == r)[0].tolist()

    def test_inspector_charges_time(self, fig1):
        m = Machine(nprocs=4)
        csc = fig1.to_csc()
        sched = InspectorExecutor(m).build_schedule(csc.nnz, csc.indices, Block(6, 4))
        assert sched.build_time > 0
        assert m.elapsed() > 0

    def test_on_processor_is_free_by_contrast(self, fig1):
        """The extension's claim: compile-time mapping has no runtime cost."""
        m = Machine(nprocs=4)
        OnProcessor.block(15, 4).partition(np.arange(15))
        assert m.elapsed() == 0.0

    def test_schedule_reuse_is_free(self, machine4, fig1):
        csc = fig1.to_csc()
        sched = InspectorExecutor(machine4).build_schedule(
            csc.nnz, csc.indices, Block(6, 4)
        )
        t = machine4.elapsed()
        sched.reuse()
        assert machine4.elapsed() == t
        assert sched.reuses == 1

    def test_arity_validation(self, machine4):
        with pytest.raises(ValueError):
            InspectorExecutor(machine4).build_schedule(5, np.zeros(3), Block(6, 4))

    def test_single_rank_no_comm(self, machine1, fig1):
        csc = fig1.to_csc()
        sched = InspectorExecutor(machine1).build_schedule(
            csc.nnz, csc.indices, Block(6, 1)
        )
        assert sched.moved_iterations == 0
        assert sched.build_messages == 0
