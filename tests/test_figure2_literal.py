"""Tests for the literal Figure-2 interpreter vs the strategy path."""

import numpy as np
import pytest

from repro.core import StoppingCriterion, figure2_cg, hpf_cg, make_strategy
from repro.machine import Machine
from repro.sparse import poisson2d, rhs_for_solution, structural_truss

CRIT = StoppingCriterion(rtol=1e-10)


class TestFigure2Literal:
    def test_converges_to_manufactured_solution(self, spd_small, rng):
        xt = rng.standard_normal(spd_small.nrows)
        b = rhs_for_solution(spd_small, xt)
        m = Machine(nprocs=4)
        res = figure2_cg(m, spd_small, b, criterion=CRIT)
        assert res.converged
        assert np.allclose(res.x, xt, atol=1e-6)
        assert res.strategy == "figure2_literal"

    def test_identical_to_strategy_path(self, spd_small, rng):
        """Interpreted Figure-2 == compiled strategy: same numerics AND
        same communication bill."""
        b = rng.standard_normal(spd_small.nrows)
        m_lit = Machine(nprocs=4)
        lit = figure2_cg(m_lit, spd_small, b, criterion=CRIT)
        m_opt = Machine(nprocs=4)
        opt = hpf_cg(
            make_strategy("csr_forall_aligned", m_opt, spd_small), b, criterion=CRIT
        )
        assert lit.iterations == opt.iterations
        assert np.allclose(lit.x, opt.x, atol=1e-12)
        assert lit.comm["words"] == opt.comm["words"]
        assert lit.comm["messages"] == opt.comm["messages"]

    @pytest.mark.parametrize("nprocs,topology", [(1, "hypercube"), (3, "ring"),
                                                 (8, "hypercube")])
    def test_machine_sizes(self, nprocs, topology, rng):
        A = structural_truss(30, seed=2)
        xt = rng.standard_normal(30)
        b = rhs_for_solution(A, xt)
        m = Machine(nprocs=nprocs, topology=topology)
        res = figure2_cg(m, A, b, criterion=CRIT)
        assert res.converged
        assert np.allclose(res.x, xt, atol=1e-6)

    def test_zero_rhs(self, spd_small):
        m = Machine(nprocs=4)
        res = figure2_cg(m, spd_small, np.zeros(spd_small.nrows))
        assert res.converged
        assert res.iterations == 0

    def test_shape_validation(self, spd_small):
        with pytest.raises(ValueError):
            figure2_cg(Machine(nprocs=2), spd_small, np.zeros(5))

    def test_iteration_cap_respected(self, spd_medium, rng):
        b = rng.standard_normal(spd_medium.nrows)
        m = Machine(nprocs=4)
        res = figure2_cg(
            m, spd_medium, b, criterion=StoppingCriterion(rtol=1e-14, maxiter=3)
        )
        assert not res.converged
        assert res.iterations == 3

    def test_matvec_traffic_tagged(self, spd_small, rng):
        m = Machine(nprocs=4)
        figure2_cg(m, spd_small, rng.standard_normal(spd_small.nrows), criterion=CRIT)
        assert "matvec" in m.stats.by_tag()
