"""Unit tests for matrix property queries and MatrixMarket I/O."""

import io

import numpy as np
import pytest

from repro.sparse import (
    COOMatrix,
    bandwidth,
    convection_diffusion_1d,
    figure1_matrix,
    is_diagonally_dominant,
    is_positive_definite,
    is_symmetric,
    nnz_imbalance,
    poisson2d,
    read_matrix_market,
    row_length_stats,
    write_matrix_market,
)


class TestSymmetry:
    def test_poisson_symmetric(self):
        assert is_symmetric(poisson2d(4, 4))

    def test_figure1_not_symmetric(self):
        assert not is_symmetric(figure1_matrix())

    def test_rectangular_never_symmetric(self):
        m = COOMatrix([0], [1], [1.0], shape=(2, 3))
        assert not is_symmetric(m)

    def test_tolerance(self):
        m = COOMatrix([0, 1], [1, 0], [1.0, 1.0 + 1e-14], shape=(2, 2))
        assert is_symmetric(m, tol=1e-12)
        assert not is_symmetric(m, tol=1e-16)


class TestDefiniteness:
    def test_poisson_positive_definite(self):
        assert is_positive_definite(poisson2d(4, 4))

    def test_indefinite_detected(self):
        m = COOMatrix([0, 1], [0, 1], [1.0, -1.0], shape=(2, 2))
        assert not is_positive_definite(m)

    def test_diag_dominance_strict(self):
        m = COOMatrix([0, 0, 1], [0, 1, 1], [3.0, -1.0, 2.0], shape=(2, 2))
        assert is_diagonally_dominant(m, strict=True)

    def test_diag_dominance_violated(self):
        m = COOMatrix([0, 0, 1], [0, 1, 1], [0.5, -1.0, 2.0], shape=(2, 2))
        assert not is_diagonally_dominant(m)


class TestBandwidthAndRowStats:
    def test_diagonal_bandwidth_zero(self):
        m = COOMatrix([0, 1], [0, 1], [1.0, 1.0], shape=(2, 2))
        assert bandwidth(m) == 0

    def test_empty_bandwidth_zero(self):
        assert bandwidth(COOMatrix([], [], [], shape=(3, 3))) == 0

    def test_figure1_bandwidth(self):
        assert bandwidth(figure1_matrix()) == 4  # a51 / a15

    def test_row_stats(self):
        stats = row_length_stats(figure1_matrix())
        assert stats.min == 2
        assert stats.max == 4
        assert stats.mean == pytest.approx(15 / 6)

    def test_empty_row_stats(self):
        stats = row_length_stats(COOMatrix([], [], [], shape=(0, 0)))
        assert stats.max == 0


class TestNnzImbalance:
    def test_even_partition_of_uniform_matrix(self):
        m = poisson2d(4, 4)  # 16 rows
        cuts = np.array([0, 4, 8, 12, 16])
        assert nnz_imbalance(m, cuts) == pytest.approx(1.0, rel=0.2)

    def test_skewed_partition(self):
        m = poisson2d(4, 4)
        cuts = np.array([0, 14, 15, 16, 16])
        assert nnz_imbalance(m, cuts) > 2.0


class TestMatrixMarket:
    def test_general_round_trip(self):
        m = figure1_matrix()
        buf = io.StringIO()
        write_matrix_market(m, buf)
        buf.seek(0)
        back = read_matrix_market(buf)
        assert np.allclose(back.toarray(), m.toarray())

    def test_symmetric_round_trip_stores_lower_triangle(self):
        m = poisson2d(3, 3)
        buf = io.StringIO()
        write_matrix_market(m, buf)
        text = buf.getvalue()
        assert "symmetric" in text.splitlines()[0]
        # stored entries: diagonal + one triangle
        stored = int(text.splitlines()[1].split()[2])
        assert stored < m.nnz
        buf.seek(0)
        assert np.allclose(read_matrix_market(buf).toarray(), m.toarray())

    def test_force_general(self):
        m = poisson2d(3, 3)
        buf = io.StringIO()
        write_matrix_market(m, buf, force_general=True)
        assert "general" in buf.getvalue().splitlines()[0]

    def test_nonsymmetric_written_general(self):
        m = convection_diffusion_1d(5, 0.3)
        buf = io.StringIO()
        write_matrix_market(m, buf)
        assert "general" in buf.getvalue().splitlines()[0]

    def test_file_round_trip(self, tmp_path):
        m = poisson2d(3, 4)
        path = tmp_path / "matrix.mtx"
        write_matrix_market(m, path)
        assert np.allclose(read_matrix_market(path).toarray(), m.toarray())

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError):
            read_matrix_market(io.StringIO("%%MatrixMarket matrix array real\n1 1\n"))

    def test_unsupported_symmetry_rejected(self):
        bad = "%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n"
        with pytest.raises(ValueError):
            read_matrix_market(io.StringIO(bad))

    def test_comments_skipped(self):
        text = (
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment line\n"
            "2 2 1\n"
            "1 2 3.5\n"
        )
        m = read_matrix_market(io.StringIO(text))
        assert m.toarray()[0, 1] == 3.5
