"""Single-reduction (fused) CG: parity, counts, resilience.

The fused Chronopoulos--Gear recurrence must be a drop-in for the
classic programs on every axis this repo cares about:

* **numerics** -- same iterates as classic CG (property-based over random
  SPD matrices and an E12-style family sweep);
* **communication** -- a tag-counted run shows exactly ``iters + 1``
  allreduce trees on BOTH backends (the whole point of the recurrence);
* **parity** -- the packed ``allreduce_vec`` stays bitwise-deterministic
  across the simulated and real-process substrates;
* **fault tolerance** -- the fused ``ResilientCGProgram`` path survives
  crashes, rollbacks, ABFT checks and shrink-redistribution exactly like
  the classic one, and the message-passing baseline's one-shot ``||b||``
  reduction (tag 13) is never replayed by a restart.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backend import (
    ProcessBackend,
    ResilientCGProgram,
    SimulatedBackend,
    TagCountingProgram,
    allreduce_trees,
    backend_solve,
    cross_validate,
    process_backend_support,
    run_with_recovery,
)
from repro.backend.abft import AbftChecksumError
from repro.backend.programs import CGRankProgram, PCGRankProgram
from repro.core.resilience import ResilienceConfig
from repro.core.stopping import StoppingCriterion
from repro.machine.faults import FaultPlan, FaultRule, RankCrash, StateCorruption
from repro.sparse.generators import (
    nas_cg_style,
    poisson1d,
    poisson2d,
    random_sparse_symmetric,
    rhs_for_solution,
    structural_truss,
)

_OK, _DETAIL = process_backend_support()
needs_process = pytest.mark.skipif(
    not _OK, reason=f"process backend unavailable: {_DETAIL}"
)

CRIT = StoppingCriterion(rtol=1e-10, atol=0.0)


def _problem(n=40):
    A = poisson1d(n)
    b = rhs_for_solution(A, np.linspace(1.0, 2.0, n))
    return A, b


def _solve(A, b, fused, nprocs=4, **kw):
    return backend_solve("cg", A, b, backend="simulated", nprocs=nprocs,
                         criterion=CRIT, fused=fused, **kw)


# ---------------------------------------------------------------------- #
# numerics: fused iterates == classic iterates
# ---------------------------------------------------------------------- #
class TestFusedMatchesClassic:
    @pytest.mark.parametrize("nprocs", [1, 2, 4])
    @pytest.mark.parametrize(
        "make",
        [
            lambda: poisson1d(48),
            lambda: poisson2d(8, 8),
            lambda: nas_cg_style(48, seed=3),
            lambda: structural_truss(12, seed=1),
            lambda: random_sparse_symmetric(56, seed=7),
        ],
        ids=["poisson1d", "poisson2d", "nas_cg", "truss", "random_spd"],
    )
    def test_e12_style_family_sweep(self, make, nprocs):
        A = make()
        x_true = np.linspace(1.0, 2.0, A.nrows)
        b = rhs_for_solution(A, x_true)
        classic = _solve(A, b, fused=False, nprocs=nprocs)
        fused = _solve(A, b, fused=True, nprocs=nprocs)
        assert classic.converged and fused.converged
        # the recurrences order flops differently, so right at the 1e-10
        # stopping threshold the decision can shift by one iteration
        assert abs(fused.iterations - classic.iterations) <= 1
        scale = float(np.max(np.abs(x_true)))
        assert float(np.max(np.abs(classic.x - x_true))) <= 1e-7 * scale
        assert float(np.max(np.abs(fused.x - classic.x))) <= 1e-8 * scale

    @given(
        n=st.integers(min_value=4, max_value=48),
        seed=st.integers(min_value=0, max_value=2**16),
        nprocs=st.sampled_from([1, 2, 4]),
    )
    @settings(deadline=None, max_examples=25,
              suppress_health_check=[HealthCheck.too_slow])
    def test_property_iterate_for_iterate(self, n, seed, nprocs):
        """Fused and classic walk the same Krylov trajectory.

        Same iteration count, residual history equal step for step (tiny
        rounding slack: the recurrences order the flops differently), and
        the same solution -- on random diagonally-dominant SPD systems.
        """
        A = random_sparse_symmetric(n, seed=seed)
        rng = np.random.default_rng(seed + 1)
        b = rng.standard_normal(n)
        classic = _solve(A, b, fused=False, nprocs=nprocs)
        fused = _solve(A, b, fused=True, nprocs=nprocs)
        assert abs(fused.iterations - classic.iterations) <= 1
        assert fused.converged == classic.converged
        rc = np.asarray(classic.history.residual_norms)
        rf = np.asarray(fused.history.residual_norms)
        m = min(rc.size, rf.size)
        bscale = float(np.linalg.norm(b)) or 1.0
        # below the stopping threshold the recurrences' residuals drift
        # apart relatively while both keep certifying convergence, so the
        # absolute slack is the threshold itself
        np.testing.assert_allclose(rf[:m], rc[:m], rtol=1e-5,
                                   atol=CRIT.rtol * bscale)
        assert float(np.max(np.abs(fused.x - classic.x))) <= 1e-7 * bscale

    def test_fused_pcg_matches_classic_pcg(self):
        A, b = _problem(40)
        classic = backend_solve("pcg", A, b, backend="simulated", nprocs=4,
                                criterion=CRIT)
        fused = backend_solve("pcg", A, b, backend="simulated", nprocs=4,
                              criterion=CRIT, fused=True)
        assert classic.converged and fused.converged
        assert fused.iterations == classic.iterations
        assert float(np.max(np.abs(fused.x - classic.x))) <= 1e-10


# ---------------------------------------------------------------------- #
# communication: one allreduce tree per iteration, on both backends
# ---------------------------------------------------------------------- #
def _counted(backend, prog_cls, A, b, nprocs, fused, **kw):
    prog = TagCountingProgram(
        prog_cls(A, b, criterion=CRIT, fused=fused, **kw))
    run = backend.run(prog, nprocs)
    iters = run.results[0]["result"][3]
    assert run.results[0]["result"][2]  # converged
    return iters, allreduce_trees(run.results, nprocs)


class TestSingleAllreducePerIteration:
    @pytest.mark.parametrize("nprocs", [2, 4])
    def test_simulated_cg_counts(self, nprocs):
        A, b = _problem(40)
        be = SimulatedBackend()
        ic, trees_c = _counted(be, CGRankProgram, A, b, nprocs, False)
        if_, trees_f = _counted(be, CGRankProgram, A, b, nprocs, True)
        assert ic == if_
        # classic: bnorm + rho at setup, then pq + rho per iteration;
        # fused: ONE packed tree per iteration, b.b riding on the setup one
        assert trees_c == 2 + 2 * ic
        assert trees_f == if_ + 1

    def test_simulated_pcg_counts(self):
        A, b = _problem(40)
        be = SimulatedBackend()
        ic, trees_c = _counted(be, PCGRankProgram, A, b, 4, False)
        if_, trees_f = _counted(be, PCGRankProgram, A, b, 4, True)
        assert ic == if_
        # classic PCG: three trees per iteration (the converged final
        # iteration skips the trailing rho reduction)
        assert trees_c == 3 + 3 * ic - 1
        assert trees_f == if_ + 1

    @needs_process
    def test_process_backend_counts(self):
        """The invariant holds on real processes, not just the model."""
        A, b = _problem(40)
        be = ProcessBackend(timeout=120.0)
        ic, trees_c = _counted(be, CGRankProgram, A, b, 2, False)
        if_, trees_f = _counted(be, CGRankProgram, A, b, 2, True)
        assert ic == if_
        assert trees_c == 2 + 2 * ic
        assert trees_f == if_ + 1


# ---------------------------------------------------------------------- #
# cross-backend bitwise parity of the packed collective
# ---------------------------------------------------------------------- #
@needs_process
class TestCrossBackendParity:
    def test_fused_cg_bitwise(self):
        A, b = _problem(40)
        cv = cross_validate("cg", A, b, nprocs=2, criterion=CRIT, fused=True)
        assert cv.bitwise_equal  # check() already raised otherwise

    def test_fused_pcg_bitwise(self):
        A, b = _problem(40)
        cv = cross_validate("pcg", A, b, nprocs=2, criterion=CRIT, fused=True)
        assert cv.bitwise_equal


# ---------------------------------------------------------------------- #
# fault tolerance: the fused resilient path
# ---------------------------------------------------------------------- #
class TestFusedResilient:
    def test_plain_resilient_matches_reference(self):
        A, b = _problem(40)
        ref = _solve(A, b, fused=False)
        res = _solve(A, b, fused=True,
                     resilience=ResilienceConfig(checkpoint_interval=5))
        assert res.converged
        assert res.extras["resilience"]["checkpoints_published"] >= 1
        assert res.extras["resilience"]["audits"] >= 1
        assert float(np.max(np.abs(res.x - ref.x))) <= 1e-10

    def test_crash_recovery(self):
        A, b = _problem(40)
        ref = _solve(A, b, fused=False)
        plan = FaultPlan(seed=0, crashes=[RankCrash(rank=2, at_time=0.01)])
        res = _solve(A, b, fused=True, faults=plan,
                     resilience=ResilienceConfig(checkpoint_interval=5))
        assert res.converged
        assert len(res.extras["recovery"]["crashes_recovered"]) >= 1
        assert float(np.max(np.abs(res.x - ref.x))) <= 1e-10

    def test_rollback_on_state_corruption(self):
        A, b = _problem(40)
        ref = _solve(A, b, fused=False)
        plan = FaultPlan(
            seed=3,
            state_corruptions=[StateCorruption(iteration=7, target="x",
                                               rank=1)],
        )
        res = _solve(A, b, fused=True, faults=plan,
                     resilience=ResilienceConfig(checkpoint_interval=5,
                                                 sanity_interval=2))
        assert res.converged
        assert res.extras["resilience"]["rollbacks"] >= 1
        assert float(np.max(np.abs(res.x - ref.x))) <= 1e-10

    def test_shrink_reslices_fused_snapshot(self):
        """A shrink must redistribute the fused {x,r,p,s} snapshot."""
        A, b = _problem(40)
        ref = _solve(A, b, fused=False)
        plan = FaultPlan(seed=0, crashes=[RankCrash(rank=1, at_time=0.01)])
        res = _solve(A, b, fused=True, faults=plan, policy="shrink",
                     resilience=ResilienceConfig(checkpoint_interval=5))
        assert res.converged
        assert res.extras["recovery"]["final_nprocs"] == 3
        assert float(np.max(np.abs(res.x - ref.x))) <= 1e-10

    def test_abft_fused_matches_classic(self):
        A, b = _problem(40)
        be = SimulatedBackend()
        out = {}
        for fused in (False, True):
            prog = ResilientCGProgram(A, b, criterion=CRIT, abft=True,
                                      fused=fused)
            run = run_with_recovery(be, prog, 2)
            x = np.concatenate([r[0] for r in run.results])
            assert run.results[0][2]
            out[fused] = x
        assert float(np.max(np.abs(out[True] - out[False]))) <= 1e-10

    def test_abft_fused_detects_packed_corruption(self):
        """Duplicate-sum slots inside the packed message still catch
        in-flight bit flips: corrupt a message payload and the fused
        decode must raise, not silently converge."""
        A, b = _problem(40)
        plan = FaultPlan(
            seed=5,
            rules=[FaultRule(kind="corrupt", tag=3, nth=10)],
        )
        prog = ResilientCGProgram(A, b, criterion=CRIT, abft=True, fused=True,
                                  max_restarts=0)
        with pytest.raises(AbftChecksumError):
            SimulatedBackend(faults=plan).run(prog, 2)


# ---------------------------------------------------------------------- #
# the bnorm2 bugfix: one reduction, ever, across any number of restarts
# ---------------------------------------------------------------------- #
class TestBnormReducedOnce:
    @staticmethod
    def _counting_scheduler(tally):
        from repro.machine.events import Send
        from repro.machine.scheduler import Scheduler

        def wrap(inner):
            def factory(rank, size):
                gen = inner(rank, size)
                try:
                    op = next(gen)
                except StopIteration as stop:
                    return stop.value
                while True:
                    if isinstance(op, Send):
                        tally[op.tag] = tally.get(op.tag, 0) + 1
                    # forward thrown exceptions (receive timeouts on a
                    # crashed peer) to the wrapped program's handlers
                    try:
                        reply = yield op
                    except BaseException as exc:
                        try:
                            op = gen.throw(exc)
                        except StopIteration as stop:
                            return stop.value
                        continue
                    try:
                        op = gen.send(reply)
                    except StopIteration as stop:
                        return stop.value
            return factory

        class CountingScheduler(Scheduler):
            def run(self, program):
                return super().run(wrap(program))

        return CountingScheduler

    def _run(self, monkeypatch, faults, p=4):
        from repro.baselines import message_passing as mp
        from repro.machine import Machine

        tally = {}
        monkeypatch.setattr(mp, "Scheduler",
                            self._counting_scheduler(tally))
        A, b = _problem(40)
        res = mp.spmd_cg(
            Machine(nprocs=p), A, b, criterion=CRIT, faults=faults,
            resilience=ResilienceConfig(checkpoint_interval=5),
        )
        return res, tally

    def test_fresh_start_reduces_bnorm_exactly_once(self, monkeypatch):
        res, tally = self._run(monkeypatch, faults=None)
        assert res.converged
        # tag 13/14 is reserved for the one-shot ||b||^2 allreduce: one
        # binomial reduce (P-1 sends) + one binomial bcast (P-1 sends)
        assert tally.get(13, 0) == 3
        assert tally.get(14, 0) == 3

    def test_crash_restart_does_not_replay_bnorm(self, monkeypatch):
        plan = FaultPlan(seed=0, crashes=[RankCrash(rank=2, at_time=0.01)])
        res, tally = self._run(monkeypatch, faults=plan)
        assert res.converged
        assert res.extras["resilience"]["crash_restarts"] >= 1
        # the restarted attempt takes bnorm2 from its snapshot -- the
        # regression this pins made the count 2 * (P-1) here
        assert tally.get(13, 0) == 3
        assert tally.get(14, 0) == 3
