"""Per-figure integration tests: the paper's artifacts end to end.

These mirror the benchmark harness (E1..E15) in assertion form, so the
claims the benchmarks print are also enforced by the test suite.
"""

import numpy as np
import pytest

from repro.analysis import scenario1_broadcast_time
from repro.baselines import spmd_cg
from repro.core import StoppingCriterion, cg_reference, hpf_bicg, hpf_cg, make_strategy
from repro.core.matvec import CscPrivateMerge, CscSerial, CsrForall, RowBlockDense
from repro.hpf import HpfNamespace
from repro.machine import CostModel, Machine
from repro.sparse import (
    figure1_matrix,
    irregular_powerlaw,
    matrix_with_eigenvalues,
    poisson2d,
    rhs_for_solution,
)

CRIT = StoppingCriterion(rtol=1e-10)


class TestFigure2EndToEnd:
    """The complete Figure-2 program: directives + CG loop."""

    FIGURE2_DIRECTIVES = """
        !HPF$ PROCESSORS :: PROCS(NP)
        !HPF$ ALIGN (:) WITH p(:) :: q, r, x, b
        !HPF$ DISTRIBUTE p(BLOCK)
        !HPF$ DISTRIBUTE row(CYCLIC((n+NP-1)/np))
        !HPF$ ALIGN a(:) WITH col(:)
        !HPF$ DISTRIBUTE col(BLOCK)
    """

    def test_directives_apply_to_declared_arrays(self, machine4):
        A = poisson2d(5, 5).to_csr()
        n, nz = 25, A.nnz
        ns = HpfNamespace(machine4, env={"n": n, "nz": nz})
        for name in ("p", "q", "r", "x", "b"):
            ns.declare(name, n)
        ns.declare("row", n + 1, values=A.indptr.astype(float))
        ns.declare("col", nz, values=A.indices.astype(float))
        ns.declare("a", nz, values=A.data)
        ns.apply(self.FIGURE2_DIRECTIVES)
        # alignment group: redistributing p drags q, r, x, b
        assert ns.array("q").distribution.same_mapping(ns.array("p").distribution)
        assert ns.array("a").distribution.same_mapping(ns.array("col").distribution)

    def test_figure2_cg_converges(self, rng):
        A = poisson2d(6, 6)
        xt = rng.standard_normal(36)
        b = rhs_for_solution(A, xt)
        m = Machine(nprocs=4)
        res = hpf_cg(make_strategy("csr_forall", m, A), b, criterion=CRIT)
        assert res.converged
        assert np.allclose(res.x, xt, atol=1e-6)


class TestScenario1VsScenario2:
    """Figures 3 and 4: row-wise beats serial column-wise; comm is equal."""

    def test_rowwise_beats_colwise_serial(self, rng):
        A = poisson2d(8, 8)
        pv = rng.standard_normal(64)
        m1, m2 = Machine(nprocs=4), Machine(nprocs=4)
        s1, s2 = RowBlockDense(m1, A), make_strategy("dense_colblock_serial", m2, A)
        s1.apply(s1.make_vector("p", pv), s1.make_vector("q"))
        s2.apply(s2.make_vector("p", pv), s2.make_vector("q"))
        assert m1.elapsed() < m2.elapsed()

    def test_measured_broadcast_tracks_paper_formula(self):
        """Simulated allgather time vs t_s*logP + t_c*n/P: same growth."""
        n = 4096
        cost = CostModel()
        ratios = []
        for p in (2, 4, 8, 16):
            m = Machine(nprocs=p, cost=cost)
            s = RowBlockDense(m, poisson2d(64, 64))
            pvec = s.make_vector("p")
            pvec.gather_to_all()
            measured = m.elapsed()
            model = scenario1_broadcast_time(n, p, cost)
            ratios.append(measured / model)
        # constant-factor agreement across P (the paper's formula counts
        # t_comm per stage; the simulator transfers all blocks)
        assert max(ratios) / min(ratios) < 6.0


class TestSection51:
    """The CSC loop: serial in HPF-1, parallel with PRIVATE/MERGE."""

    def test_private_merge_speedup_grows_with_p(self, rng):
        A = poisson2d(16, 16)  # n=256
        pv = rng.standard_normal(256)
        speedups = []
        for p in (2, 4, 8):
            m_ser = Machine(nprocs=p)
            ser = CscSerial(m_ser, A)
            ser.apply(ser.make_vector("p", pv), ser.make_vector("q"))
            m_par = Machine(nprocs=p)
            par = CscPrivateMerge(m_par, A)
            par.apply(par.make_vector("p", pv), par.make_vector("q"))
            speedups.append(m_ser.elapsed() / m_par.elapsed())
        assert speedups[0] > 1.0
        assert speedups == sorted(speedups)

    def test_private_storage_equals_n_per_rank(self):
        m = Machine(nprocs=4)
        A = poisson2d(8, 8)
        par = CscPrivateMerge(m, A)
        base = m.stats.storage_words_per_rank.copy()
        par.apply(par.make_vector("p"), par.make_vector("q"))
        assert ((m.stats.storage_words_per_rank - base) >= 64.0).all()


class TestSection52LoadBalance:
    def test_balanced_partitioner_on_irregular_matrix(self):
        A = irregular_powerlaw(256, seed=13)
        m_uni = Machine(nprocs=8)
        uni = CscPrivateMerge(m_uni, A, balanced=False)
        m_bal = Machine(nprocs=8)
        bal = CscPrivateMerge(m_bal, A, balanced=True)
        uni_imb = uni.per_rank_nnz().max() / uni.per_rank_nnz().mean()
        bal_imb = bal.per_rank_nnz().max() / bal.per_rank_nnz().mean()
        assert bal_imb <= uni_imb
        assert bal_imb < 1.3


class TestSection21Convergence:
    def test_distinct_eigenvalues_bound_iterations(self):
        """CG converges in <= n_e iterations (n_e distinct eigenvalues)."""
        n = 24
        for n_e in (2, 4, 6):
            eigs = np.tile(np.arange(1.0, n_e + 1.0), n // n_e)
            A = matrix_with_eigenvalues(eigs, seed=n_e)
            res = cg_reference(A, np.ones(n), criterion=StoppingCriterion(rtol=1e-9))
            assert res.converged
            assert res.iterations <= n_e + 1


class TestSection21BiCG:
    def test_bicg_pays_more_comm_than_cg_per_iteration(self, rng):
        """Row-optimised layout + A^T products = extra traffic (E13)."""
        A = poisson2d(8, 8)
        b = rng.standard_normal(64)
        crit = StoppingCriterion(rtol=1e-8, maxiter=100)
        m_cg = Machine(nprocs=4)
        res_cg = hpf_cg(CsrForall(m_cg, A, aligned=True), b, criterion=crit)
        m_bi = Machine(nprocs=4)
        res_bi = hpf_bicg(CsrForall(m_bi, A, aligned=True), b, criterion=crit)
        cg_words_per_iter = res_cg.comm["words"] / res_cg.iterations
        bi_words_per_iter = res_bi.comm["words"] / res_bi.iterations
        assert bi_words_per_iter > cg_words_per_iter


class TestHpfVsMessagePassing:
    def test_same_convergence_and_comparable_cost(self, rng):
        A = poisson2d(8, 8)
        b = rng.standard_normal(64)
        m_hpf = Machine(nprocs=8)
        res_hpf = hpf_cg(CsrForall(m_hpf, A, aligned=True), b, criterion=CRIT)
        m_mp = Machine(nprocs=8)
        res_mp = spmd_cg(m_mp, A, b, criterion=CRIT)
        assert abs(res_hpf.iterations - res_mp.iterations) <= 1
        assert np.allclose(res_hpf.x, res_mp.x, atol=1e-8)
        # within 3x on simulated time (the portability price, bounded)
        assert res_hpf.machine_elapsed < 3 * res_mp.machine_elapsed
        assert res_mp.machine_elapsed < 3 * res_hpf.machine_elapsed


class TestFigure1:
    def test_figure1_values_match_paper(self):
        a, row, col = figure1_matrix().to_csc().fortran_arrays()
        assert a.tolist() == [11, 21, 31, 51, 12, 22, 42, 62, 33, 24, 44, 15, 55, 26, 66]
        assert row.tolist() == [1, 2, 3, 5, 1, 2, 4, 6, 3, 2, 4, 1, 5, 2, 6]
        assert col.tolist() == [1, 5, 9, 10, 12, 14, 16]
