"""Tests for the BLAS-1 kernel wrappers and the result/history types."""

import numpy as np
import pytest

from repro.core import ConvergenceHistory, SolveResult
from repro.core.kernels import saxpy, saypx, scopy, sdot, sscal
from repro.hpf import DistributedArray
from repro.machine import Machine


@pytest.fixture
def vectors(machine4, rng):
    xv, yv = rng.standard_normal(10), rng.standard_normal(10)
    x = DistributedArray.from_global(machine4, xv, name="x")
    y = DistributedArray.from_global(machine4, yv, name="y")
    return xv, yv, x, y


class TestKernels:
    def test_saxpy(self, vectors):
        xv, yv, x, y = vectors
        saxpy(3.0, x, y)
        assert np.allclose(y.to_global(), yv + 3.0 * xv)

    def test_saypx(self, vectors):
        xv, yv, x, y = vectors
        saypx(0.25, y, x)  # y = 0.25*y + x, the paper's p = beta*p + r
        assert np.allclose(y.to_global(), 0.25 * yv + xv)

    def test_sdot(self, vectors):
        xv, yv, x, y = vectors
        assert sdot(x, y) == pytest.approx(float(xv @ yv))

    def test_sdot_custom_tag(self, machine4, vectors):
        _, _, x, y = vectors
        sdot(x, y, tag="sdot_custom")
        assert "sdot_custom" in machine4.stats.by_tag()

    def test_scopy(self, vectors):
        xv, _, x, y = vectors
        scopy(x, y)
        assert np.allclose(y.to_global(), xv)

    def test_sscal(self, vectors):
        xv, _, x, _ = vectors
        sscal(-2.0, x)
        assert np.allclose(x.to_global(), -2.0 * xv)

    def test_saxpy_is_communication_free(self):
        m = Machine(nprocs=4)
        x = DistributedArray(m, 8, fill=1.0)
        y = DistributedArray(m, 8, fill=1.0)
        saxpy(1.0, x, y)
        assert m.stats.total_messages == 0


class TestConvergenceHistory:
    def test_iterations_counts_after_initial(self):
        h = ConvergenceHistory()
        for v in (10.0, 5.0, 1.0):
            h.append(v)
        assert h.iterations == 2
        assert h.initial == 10.0
        assert h.final == 1.0

    def test_reduction(self):
        h = ConvergenceHistory()
        h.append(100.0)
        h.append(1.0)
        assert h.reduction() == pytest.approx(0.01)

    def test_convergence_rate_geometric_mean(self):
        h = ConvergenceHistory()
        for v in (16.0, 8.0, 4.0, 2.0):  # halves each iteration
            h.append(v)
        assert h.convergence_rate() == pytest.approx(0.5)

    def test_empty_history(self):
        h = ConvergenceHistory()
        assert h.iterations == 0
        assert np.isnan(h.final)
        assert np.isnan(h.convergence_rate())

    def test_single_entry_rate_nan(self):
        h = ConvergenceHistory()
        h.append(1.0)
        assert np.isnan(h.convergence_rate())


class TestSolveResult:
    def test_final_residual_property(self):
        h = ConvergenceHistory()
        h.append(2.0)
        h.append(0.5)
        res = SolveResult(
            x=np.zeros(3), converged=True, iterations=1, history=h, solver="cg"
        )
        assert res.final_residual == 0.5

    def test_repr_mentions_solver(self):
        h = ConvergenceHistory()
        h.append(1.0)
        res = SolveResult(
            x=np.zeros(2), converged=False, iterations=7, history=h,
            solver="bicg", strategy="csr_forall",
        )
        text = repr(res)
        assert "bicg" in text and "csr_forall" in text and "7" in text
