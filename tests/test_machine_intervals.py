"""Tests for charge_comm_interval and topology-priced halo exchanges."""

import numpy as np
import pytest

from repro.core import CsrHalo
from repro.machine import Machine, Tracer
from repro.sparse import poisson1d


class TestChargeCommInterval:
    def test_advances_all_clocks(self):
        m = Machine(nprocs=4)
        m.charge_comm_interval("halo", 3, 30.0, 1e-4, "matvec")
        assert np.allclose(m.clock, 1e-4)
        rec = m.stats.comm_records[-1]
        assert rec.op == "halo"
        assert rec.messages == 3
        assert rec.words == 30.0

    def test_negative_quantities_rejected(self):
        m = Machine(nprocs=2)
        with pytest.raises(ValueError):
            m.charge_comm_interval("x", -1, 0.0, 0.0)
        with pytest.raises(ValueError):
            m.charge_comm_interval("x", 0, -1.0, 0.0)
        with pytest.raises(ValueError):
            m.charge_comm_interval("x", 0, 0.0, -1.0)

    def test_participants_traced_only(self):
        m = Machine(nprocs=4)
        tr = Tracer.attach(m)
        m.charge_comm_interval("halo", 2, 20.0, 1e-4, participants=[1, 3])
        assert {e.rank for e in tr.events} == {1, 3}

    def test_untraced_when_no_participants(self):
        m = Machine(nprocs=4)
        tr = Tracer.attach(m)
        m.charge_comm_interval("p2p", 2, 20.0, 1e-4)
        assert len(tr) == 0

    def test_invalid_participant_rejected(self):
        m = Machine(nprocs=2)
        Tracer.attach(m)
        with pytest.raises(ValueError):
            m.charge_comm_interval("x", 1, 1.0, 1e-5, participants=[5])

    def test_starts_at_machine_elapsed(self):
        m = Machine(nprocs=4)
        m.charge_compute(2, 1_000_000)
        t0 = m.elapsed()
        m.charge_comm_interval("halo", 1, 1.0, 1e-5)
        assert np.allclose(m.clock, t0 + 1e-5)


class TestHaloTopologyPricing:
    def test_ring_halo_costs_more_than_complete(self):
        """Multi-hop routes price per-hop latency when t_hop > 0."""
        from repro.machine import CostModel

        cost = CostModel(t_hop=1e-5)
        A = poisson1d(64)
        m_ring = Machine(nprocs=8, topology="ring", cost=cost)
        halo_ring = CsrHalo(m_ring, A)
        halo_ring.apply(
            halo_ring.make_vector("p", np.ones(64)), halo_ring.make_vector("q")
        )
        m_full = Machine(nprocs=8, topology="complete", cost=cost)
        halo_full = CsrHalo(m_full, A)
        halo_full.apply(
            halo_full.make_vector("p", np.ones(64)), halo_full.make_vector("q")
        )
        # the 1-D chain's halo partners are ring neighbours: equal cost; the
        # point is that neither pays multi-hop penalties for this pattern
        assert m_ring.elapsed() == pytest.approx(m_full.elapsed())

    def test_scrambled_pattern_pays_hops_on_ring(self, rng):
        from repro.machine import CostModel
        from repro.sparse import permute_symmetric

        cost = CostModel(t_hop=1e-5)
        A = permute_symmetric(poisson1d(64), rng.permutation(64))
        m_ring = Machine(nprocs=8, topology="ring", cost=cost)
        h_ring = CsrHalo(m_ring, A)
        h_ring.apply(h_ring.make_vector("p", np.ones(64)), h_ring.make_vector("q"))
        m_full = Machine(nprocs=8, topology="complete", cost=cost)
        h_full = CsrHalo(m_full, A)
        h_full.apply(h_full.make_vector("p", np.ones(64)), h_full.make_vector("q"))
        # scrambling creates distant partners: the ring pays hop latency
        assert m_ring.elapsed() > m_full.elapsed()
