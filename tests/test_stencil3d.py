"""27-point stencil generator, 3-D BLOCK distribution and halo plans."""

import numpy as np
import pytest

from repro.hpf.distribution import DistributionError, Grid3DBlock, choose_grid3d
from repro.hpcg.program import halo_plan
from repro.sparse import stencil27


class TestStencil27:
    def test_square_defaults(self):
        a = stencil27(4)
        assert a.shape == (64, 64)
        b = stencil27(4, 4, 4)
        assert a.nnz == b.nnz
        np.testing.assert_array_equal(a.toarray(), b.toarray())

    def test_interior_row_has_27_entries(self):
        nx = 5
        a = stencil27(nx)
        # centre point of the 5x5x5 grid: (2, 2, 2)
        row = (2 * nx + 2) * nx + 2
        dense = a.toarray()
        assert np.count_nonzero(dense[row]) == 27
        assert dense[row, row] == 26.0
        offs = dense[row].copy()
        offs[row] = 0.0
        assert np.all(offs[offs != 0.0] == -1.0)

    def test_corner_row_has_8_entries(self):
        dense = stencil27(3).toarray()
        assert np.count_nonzero(dense[0]) == 8  # itself + 7 neighbours

    def test_symmetric(self):
        dense = stencil27(3, 4, 2).toarray()
        np.testing.assert_array_equal(dense, dense.T)

    def test_positive_definite(self):
        dense = stencil27(4).toarray()
        w = np.linalg.eigvalsh(dense)
        assert w.min() > 0.0

    def test_anisotropic_shape(self):
        a = stencil27(4, 3, 2)
        assert a.shape == (24, 24)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError, match=">= 1"):
            stencil27(0)


class TestChooseGrid3d:
    @pytest.mark.parametrize(
        "p,expected",
        [(1, (1, 1, 1)), (2, (1, 1, 2)), (4, (1, 2, 2)), (8, (2, 2, 2)),
         (12, (2, 2, 3)), (27, (3, 3, 3))],
    )
    def test_near_cubic(self, p, expected):
        assert choose_grid3d(p) == expected

    @pytest.mark.parametrize("p", [1, 2, 3, 5, 6, 7, 9, 16, 24])
    def test_covers(self, p):
        px, py, pz = choose_grid3d(p)
        assert px * py * pz == p

    def test_rejects_nonpositive(self):
        with pytest.raises(DistributionError):
            choose_grid3d(0)


class TestGrid3DBlock:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 6, 8, 12])
    def test_partitions_index_space(self, p):
        layout = Grid3DBlock((6, 5, 4), p)
        cover = np.concatenate(
            [layout.local_indices(r) for r in range(p)])
        assert sorted(cover.tolist()) == list(range(6 * 5 * 4))

    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_owners_match_local_indices(self, p):
        layout = Grid3DBlock((8, 8, 8), p)
        idx = np.arange(layout.n)
        owners = layout.owners(idx)
        for r in range(p):
            np.testing.assert_array_equal(
                np.sort(layout.local_indices(r)), idx[owners == r])

    def test_global_to_local_round_trip(self):
        layout = Grid3DBlock((5, 4, 6), 4)
        for r in range(4):
            rows = layout.local_indices(r)
            # local position of each owned id equals its rank in the
            # rank's own row-major enumeration
            np.testing.assert_array_equal(
                layout.global_to_local(rows), np.arange(rows.size))

    def test_explicit_grid_must_cover(self):
        with pytest.raises(DistributionError, match="does not cover"):
            Grid3DBlock((4, 4, 4), 4, grid=(1, 1, 3))

    def test_coords_rank_round_trip(self):
        layout = Grid3DBlock((8, 8, 8), 8)
        for r in range(8):
            assert layout.rank_of(*layout.coords(r)) == r


class TestHaloPlan:
    def test_eight_way_kinds(self):
        """2x2x2 process grid: every rank sees 3 faces, 3 edges, 1 corner."""
        layout = Grid3DBlock((8, 8, 8), 8)
        for r in range(8):
            plan = halo_plan(layout, r)
            kinds = sorted(e["kind"] for e in plan)
            assert kinds == ["corner", "edge", "edge", "edge",
                             "face", "face", "face"]

    def test_single_rank_has_no_neighbours(self):
        assert halo_plan(Grid3DBlock((4, 4, 4), 1), 0) == []

    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_plan_is_symmetric(self, p):
        """What rank a sends rank b is exactly what b expects from a."""
        layout = Grid3DBlock((8, 8, 8), p)
        plans = {r: {e["rank"]: e for e in halo_plan(layout, r)}
                 for r in range(p)}
        for a in range(p):
            for b, entry in plans[a].items():
                mirror = plans[b][a]
                np.testing.assert_array_equal(
                    entry["send_ids"], mirror["recv_ids"])
                np.testing.assert_array_equal(
                    entry["recv_ids"], mirror["send_ids"])
                assert entry["kind"] == mirror["kind"]

    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_sends_own_cells_receives_foreign(self, p):
        layout = Grid3DBlock((8, 8, 8), p)
        for r in range(p):
            mine = set(layout.local_indices(r).tolist())
            for e in halo_plan(layout, r):
                assert set(e["send_ids"].tolist()) <= mine
                assert not (set(e["recv_ids"].tolist()) & mine)

    def test_recv_covers_stencil_reach(self):
        """Every off-rank column a rank's stencil rows touch is received."""
        layout = Grid3DBlock((8, 8, 8), 8)
        a = stencil27(8)
        indptr, indices = a.indptr, a.indices
        for r in range(8):
            rows = layout.local_indices(r)
            cols = set()
            for row in rows:
                cols.update(indices[indptr[row]:indptr[row + 1]].tolist())
            foreign = cols - set(rows.tolist())
            received = set()
            for e in halo_plan(layout, r):
                received.update(e["recv_ids"].tolist())
            assert foreign == received


class TestHaloMatvec:
    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_halo_matvec_matches_reference(self, p):
        """The distributed (precond=none) SpMV path equals a serial SpMV."""
        from repro.hpcg import hpcg_solve

        a = stencil27(6)
        rng = np.random.default_rng(11)
        xstar = rng.standard_normal(a.nrows)
        b = a @ xstar
        res = hpcg_solve(6, nprocs=p, precond="none", b=b, maxiter=400)
        assert res.converged
        assert np.allclose(res.x, xstar, atol=1e-6)
        halo = res.extras["hpcg"]["halo"]
        assert halo["neighbors"] >= 1
