"""Unit tests for interconnect topologies."""

import pytest

from repro.machine import Complete, Hypercube, Mesh2D, Ring, ceil_log2, make_topology


class TestCeilLog2:
    @pytest.mark.parametrize(
        "p,expected", [(1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4), (16, 4)]
    )
    def test_values(self, p, expected):
        assert ceil_log2(p) == expected

    def test_invalid(self):
        with pytest.raises(ValueError):
            ceil_log2(0)


class TestHypercube:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            Hypercube(6)

    @pytest.mark.parametrize("size", [1, 2, 4, 8, 16])
    def test_dimension(self, size):
        assert Hypercube(size).dimension == size.bit_length() - 1

    def test_hops_is_hamming_distance(self):
        h = Hypercube(8)
        assert h.hops(0b000, 0b111) == 3
        assert h.hops(0b101, 0b100) == 1
        assert h.hops(3, 3) == 0

    def test_neighbors_differ_in_one_bit(self):
        h = Hypercube(8)
        for nb in h.neighbors(5):
            assert h.hops(5, nb) == 1
        assert len(h.neighbors(5)) == 3

    def test_diameter(self):
        assert Hypercube(16).diameter == 4

    def test_rank_validation(self):
        with pytest.raises(ValueError):
            Hypercube(4).hops(0, 4)


class TestRing:
    def test_hops_wraps_around(self):
        r = Ring(10)
        assert r.hops(0, 9) == 1
        assert r.hops(0, 5) == 5
        assert r.hops(2, 7) == 5

    def test_neighbors(self):
        r = Ring(5)
        assert sorted(r.neighbors(0)) == [1, 4]

    def test_two_node_ring_single_neighbor(self):
        assert Ring(2).neighbors(0) == [1]

    def test_single_node(self):
        assert Ring(1).neighbors(0) == []
        assert Ring(1).diameter == 0

    def test_diameter(self):
        assert Ring(10).diameter == 5
        assert Ring(7).diameter == 3


class TestMesh2D:
    def test_coords_row_major(self):
        m = Mesh2D(3, 4)
        assert m.coords(0) == (0, 0)
        assert m.coords(5) == (1, 1)
        assert m.coords(11) == (2, 3)

    def test_hops_manhattan(self):
        m = Mesh2D(3, 4)
        assert m.hops(0, 11) == 2 + 3

    def test_corner_has_two_neighbors(self):
        m = Mesh2D(3, 3)
        assert len(m.neighbors(0)) == 2

    def test_center_has_four_neighbors(self):
        m = Mesh2D(3, 3)
        assert len(m.neighbors(4)) == 4

    def test_diameter(self):
        assert Mesh2D(3, 4).diameter == 5

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Mesh2D(0, 4)


class TestComplete:
    def test_all_pairs_one_hop(self):
        c = Complete(5)
        assert c.hops(0, 4) == 1
        assert c.hops(2, 2) == 0

    def test_neighbors_everyone_else(self):
        assert sorted(Complete(4).neighbors(1)) == [0, 2, 3]

    def test_diameter(self):
        assert Complete(6).diameter == 1
        assert Complete(1).diameter == 0


class TestMakeTopology:
    def test_by_name(self):
        assert isinstance(make_topology("hypercube", 8), Hypercube)
        assert isinstance(make_topology("ring", 5), Ring)
        assert isinstance(make_topology("complete", 3), Complete)

    def test_mesh_factorisation_square(self):
        m = make_topology("mesh2d", 12)
        assert isinstance(m, Mesh2D)
        assert m.rows * m.cols == 12
        assert m.rows == 3  # most-square factorisation

    def test_mesh_prime_degrades_to_1xn(self):
        m = make_topology("mesh2d", 7)
        assert (m.rows, m.cols) == (1, 7)

    def test_instance_passthrough(self):
        r = Ring(4)
        assert make_topology(r, 4) is r

    def test_instance_size_mismatch(self):
        with pytest.raises(ValueError):
            make_topology(Ring(4), 5)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_topology("torus", 4)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            make_topology("ring", 0)
