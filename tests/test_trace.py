"""Tests for the execution tracer."""

import numpy as np
import pytest

from repro.core import StoppingCriterion, hpf_cg, make_strategy
from repro.core.matvec import CscSerial
from repro.machine import Machine, Tracer
from repro.sparse import poisson2d


@pytest.fixture
def traced_machine():
    m = Machine(nprocs=4)
    tracer = Tracer.attach(m)
    return m, tracer


class TestEventRecording:
    def test_compute_event(self, traced_machine):
        m, tr = traced_machine
        m.charge_compute(2, 1000)
        assert len(tr) == 1
        ev = tr.events[0]
        assert ev.rank == 2
        assert ev.is_compute
        assert ev.duration == pytest.approx(1000 * m.cost.t_flop)

    def test_zero_duration_not_recorded(self, traced_machine):
        m, tr = traced_machine
        m.charge_compute(0, 0)
        assert len(tr) == 0

    def test_collective_records_every_rank(self, traced_machine):
        m, tr = traced_machine
        m.allreduce(1.0, tag="dot")
        assert len(tr) == 4
        assert {e.rank for e in tr.events} == {0, 1, 2, 3}
        assert all(e.kind == "allreduce" for e in tr.events)
        assert all(not e.is_compute for e in tr.events)

    def test_p2p_records_both_ends(self, traced_machine):
        m, tr = traced_machine
        m.send_recv(0, 3, 100)
        kinds = [(e.rank, e.detail) for e in tr.events]
        assert (0, "-> 3") in kinds
        assert (3, "<- 0") in kinds

    def test_serialized_compute_staggers_ranks(self, traced_machine):
        m, tr = traced_machine
        m.charge_serialized_compute([100, 100, 100, 100])
        starts = sorted(e.start for e in tr.events)
        assert starts == sorted(set(starts))  # strictly staggered

    def test_detach(self, traced_machine):
        m, tr = traced_machine
        tr.detach()
        m.charge_compute(0, 100)
        assert len(tr) == 0


class TestSummaries:
    def test_busy_time_by_kind(self, traced_machine):
        m, tr = traced_machine
        m.charge_compute(1, 2000)
        m.allreduce(1.0)
        assert tr.busy_time(1, "compute") == pytest.approx(2000 * m.cost.t_flop)
        assert tr.busy_time(1, "allreduce") > 0
        assert tr.busy_time(1) == pytest.approx(
            tr.busy_time(1, "compute") + tr.busy_time(1, "allreduce")
        )

    def test_utilization_bounds(self):
        m = Machine(nprocs=4)
        tr = Tracer.attach(m)
        A = poisson2d(6, 6)
        hpf_cg(make_strategy("csr_forall_aligned", m, A), np.ones(36),
               criterion=StoppingCriterion(rtol=1e-8))
        util = tr.utilization()
        assert util.shape == (4,)
        assert ((util >= 0) & (util <= 1)).all()
        assert util.max() > 0.5

    def test_compute_fraction_empty(self, traced_machine):
        _, tr = traced_machine
        assert tr.compute_fraction() == 0.0

    def test_serial_strategy_shows_low_utilization(self):
        """The Scenario-2 serial loop leaves most ranks idle most of the time."""
        m = Machine(nprocs=4)
        tr = Tracer.attach(m)
        A = poisson2d(8, 8)
        strat = CscSerial(m, A)
        strat.apply(strat.make_vector("p", np.ones(64)), strat.make_vector("q"))
        util = tr.utilization()
        # serialisation: each rank busy only its own slice of the compute
        assert util.min() < 0.5

    def test_clear(self, traced_machine):
        m, tr = traced_machine
        m.charge_compute(0, 100)
        tr.clear()
        assert len(tr) == 0
        assert tr.span() == 0.0


class TestGantt:
    def test_gantt_dimensions(self, traced_machine):
        m, tr = traced_machine
        m.charge_compute_all(10000)
        m.allreduce(64.0)
        text = tr.ascii_gantt(width=40)
        lines = text.splitlines()
        assert len(lines) == 5  # header + 4 ranks
        for line in lines[1:]:
            assert line.count("|") == 2
            bar = line.split("|")[1]
            assert len(bar) == 40
            assert set(bar) <= {"#", "~", "."}

    def test_gantt_empty_trace(self, traced_machine):
        _, tr = traced_machine
        assert "trace span" in tr.ascii_gantt()

    def test_gantt_shows_comm_dominance(self, traced_machine):
        m, tr = traced_machine
        m.allgather(10000.0)
        bar = tr.ascii_gantt(width=20).splitlines()[1]
        assert "~" in bar
