"""Tests for the preconditioner family."""

import numpy as np
import pytest

from repro.core import (
    IdentityPreconditioner,
    JacobiPreconditioner,
    NeumannPreconditioner,
    SSORPreconditioner,
    StoppingCriterion,
    cg_reference,
    pcg_reference,
)
from repro.sparse import COOMatrix, poisson2d, rhs_for_solution

TIGHT = StoppingCriterion(rtol=1e-10, maxiter=2000)


@pytest.fixture
def ill_conditioned():
    """A diagonally scaled Poisson system: Jacobi helps a lot here."""
    A = poisson2d(8, 8).to_coo()
    n = 64
    scales = np.logspace(0, 3, n)
    rows, cols, data = A.rows, A.cols, A.data
    scaled = data * scales[rows] * scales[cols]
    return COOMatrix(rows, cols, scaled, (n, n)).to_csr()


class TestIdentity:
    def test_identity_is_noop(self, rng):
        p = IdentityPreconditioner(10)
        r = rng.standard_normal(10)
        assert np.allclose(p.solve(r), r)
        assert p.flops_per_apply == 0.0
        assert p.parallel

    def test_pcg_with_identity_equals_cg(self, spd_medium, rng):
        b = rng.standard_normal(spd_medium.nrows)
        plain = cg_reference(spd_medium, b, criterion=TIGHT)
        ident = pcg_reference(
            spd_medium, b, IdentityPreconditioner(spd_medium.nrows), criterion=TIGHT
        )
        assert abs(plain.iterations - ident.iterations) <= 1


class TestJacobi:
    def test_solve_is_diagonal_scaling(self, spd_small, rng):
        p = JacobiPreconditioner(spd_small)
        r = rng.standard_normal(spd_small.nrows)
        assert np.allclose(p.solve(r), r / spd_small.diagonal())

    def test_reduces_iterations_on_ill_conditioned(self, ill_conditioned, rng):
        xt = rng.standard_normal(64)
        b = rhs_for_solution(ill_conditioned, xt)
        plain = cg_reference(ill_conditioned, b, criterion=TIGHT)
        jac = pcg_reference(
            ill_conditioned, b, JacobiPreconditioner(ill_conditioned), criterion=TIGHT
        )
        assert jac.converged
        assert jac.iterations < plain.iterations
        assert np.allclose(jac.x, xt, atol=1e-5)

    def test_zero_diagonal_rejected(self):
        m = COOMatrix([0, 1], [1, 0], [1.0, 1.0], shape=(2, 2))
        with pytest.raises(ValueError):
            JacobiPreconditioner(m)

    def test_parallel_flag(self, spd_small):
        assert JacobiPreconditioner(spd_small).parallel


class TestSSOR:
    def test_reduces_iterations_vs_jacobi(self, spd_medium, rng):
        xt = rng.standard_normal(spd_medium.nrows)
        b = rhs_for_solution(spd_medium, xt)
        jac = pcg_reference(spd_medium, b, JacobiPreconditioner(spd_medium), criterion=TIGHT)
        ssor = pcg_reference(spd_medium, b, SSORPreconditioner(spd_medium), criterion=TIGHT)
        assert ssor.converged
        assert ssor.iterations < jac.iterations
        assert np.allclose(ssor.x, xt, atol=1e-5)

    def test_omega_range_validated(self, spd_small):
        with pytest.raises(ValueError):
            SSORPreconditioner(spd_small, omega=0.0)
        with pytest.raises(ValueError):
            SSORPreconditioner(spd_small, omega=2.0)

    def test_serial_flag(self, spd_small):
        assert not SSORPreconditioner(spd_small).parallel

    def test_apply_is_spd_operator(self, spd_small, rng):
        """M^{-1} must be symmetric positive definite for PCG validity."""
        p = SSORPreconditioner(spd_small, omega=1.3)
        n = spd_small.nrows
        M_inv = np.column_stack([p.solve(e) for e in np.eye(n)])
        assert np.allclose(M_inv, M_inv.T, atol=1e-10)
        assert (np.linalg.eigvalsh((M_inv + M_inv.T) / 2) > 0).all()


class TestNeumann:
    def test_order_zero_is_jacobi(self, spd_small, rng):
        r = rng.standard_normal(spd_small.nrows)
        nm = NeumannPreconditioner(spd_small, order=0)
        jc = JacobiPreconditioner(spd_small)
        assert np.allclose(nm.solve(r), jc.solve(r))

    def test_higher_order_reduces_iterations(self, spd_medium, rng):
        b = rng.standard_normal(spd_medium.nrows)
        it0 = pcg_reference(
            spd_medium, b, NeumannPreconditioner(spd_medium, 0), criterion=TIGHT
        ).iterations
        it2 = pcg_reference(
            spd_medium, b, NeumannPreconditioner(spd_medium, 2), criterion=TIGHT
        ).iterations
        assert it2 < it0

    def test_parallel_flag(self, spd_small):
        assert NeumannPreconditioner(spd_small).parallel

    def test_invalid_order(self, spd_small):
        with pytest.raises(ValueError):
            NeumannPreconditioner(spd_small, order=-1)

    def test_flops_grow_with_order(self, spd_small):
        f1 = NeumannPreconditioner(spd_small, 1).flops_per_apply
        f3 = NeumannPreconditioner(spd_small, 3).flops_per_apply
        assert f3 > f1
