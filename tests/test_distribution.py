"""Unit tests for HPF distributions (BLOCK, CYCLIC, irregular, replicated)."""

import numpy as np
import pytest

from repro.hpf import (
    Block,
    BlockK,
    Cyclic,
    CyclicK,
    DistributionError,
    IrregularBlock,
    Replicated,
    block_boundaries,
)

ALL_DISTS = [
    Block(10, 4),
    BlockK(10, 4, 3),
    BlockK(9, 4, 2, clamp=True),
    Cyclic(10, 4),
    CyclicK(10, 4, 2),
    IrregularBlock([0, 2, 7, 7, 10]),
]


@pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: repr(d))
class TestPartitionLaws:
    """Every distribution partitions the index space: total, disjoint, owned."""

    def test_local_indices_cover_all(self, dist):
        cover = np.concatenate([dist.local_indices(r) for r in range(dist.nprocs)])
        assert sorted(cover.tolist()) == list(range(dist.n))

    def test_owner_consistency(self, dist):
        for r in range(dist.nprocs):
            li = dist.local_indices(r)
            if li.size:
                assert (dist.owners(li) == r).all()

    def test_local_positions_are_dense(self, dist):
        for r in range(dist.nprocs):
            li = dist.local_indices(r)
            assert np.array_equal(dist.global_to_local(li), np.arange(li.size))

    def test_counts_sum_to_n(self, dist):
        assert dist.counts().sum() == dist.n

    def test_owner_scalar_matches_vector(self, dist):
        idx = np.arange(dist.n)
        owners = dist.owners(idx)
        for i in (0, dist.n // 2, dist.n - 1):
            assert dist.owner(i) == owners[i]

    def test_index_bounds_checked(self, dist):
        with pytest.raises(IndexError):
            dist.owner(dist.n)

    def test_rank_bounds_checked(self, dist):
        with pytest.raises(DistributionError):
            dist.local_indices(dist.nprocs)


class TestBlock:
    def test_default_block_size(self):
        assert Block(10, 4).k == 3
        assert Block(8, 4).k == 2

    def test_block_boundaries_helper(self):
        assert block_boundaries(10, 4).tolist() == [0, 3, 6, 9, 10]

    def test_contiguous_ranges(self):
        d = Block(10, 4)
        assert d.local_range(0) == (0, 3)
        assert d.local_range(3) == (9, 10)

    def test_trailing_rank_may_be_empty(self):
        d = Block(4, 8)
        assert d.local_count(7) == 0

    def test_explicit_k_must_cover(self):
        with pytest.raises(DistributionError):
            BlockK(10, 4, 2)  # 8 < 10

    def test_invalid_k(self):
        with pytest.raises(DistributionError):
            BlockK(10, 4, 0)

    def test_boundaries_method(self):
        assert BlockK(10, 4, 3).boundaries().tolist() == [0, 3, 6, 9, 10]


class TestClampedBlock:
    """The paper's BLOCK((n+NP-1)/NP) on the n+1 pointer array."""

    def test_overflow_goes_to_last_processor(self):
        # n=8, P=4, k=2: pointer array has 9 elements; the 9th lands on rank 3
        d = BlockK(9, 4, 2, clamp=True)
        assert d.owner(8) == 3
        assert d.local_range(3) == (6, 9)

    def test_local_positions_on_last_rank(self):
        d = BlockK(9, 4, 2, clamp=True)
        assert d.global_to_local(np.array([6, 7, 8])).tolist() == [0, 1, 2]

    def test_unclamped_rejects_undersized(self):
        with pytest.raises(DistributionError):
            BlockK(9, 4, 2, clamp=False)


class TestCyclic:
    def test_round_robin(self):
        d = Cyclic(10, 4)
        assert d.owners(np.arange(10)).tolist() == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]

    def test_block_cyclic(self):
        d = CyclicK(12, 3, 2)
        assert d.owners(np.arange(12)).tolist() == [0, 0, 1, 1, 2, 2, 0, 0, 1, 1, 2, 2]

    def test_local_index_interleave(self):
        d = CyclicK(12, 3, 2)
        assert d.local_indices(0).tolist() == [0, 1, 6, 7]
        assert d.global_to_local(np.array([6, 7])).tolist() == [2, 3]

    def test_invalid_k(self):
        with pytest.raises(DistributionError):
            CyclicK(10, 2, 0)


class TestReplicated:
    def test_every_rank_holds_all(self):
        d = Replicated(6, 3)
        for r in range(3):
            assert d.local_count(r) == 6

    def test_no_unique_owner(self):
        with pytest.raises(DistributionError):
            Replicated(6, 3).owners(np.arange(6))

    def test_flag(self):
        assert Replicated(6, 3).is_replicated
        assert not Block(6, 3).is_replicated


class TestIrregularBlock:
    def test_boundaries_respected(self):
        d = IrregularBlock([0, 2, 7, 7, 10])
        assert d.local_count(0) == 2
        assert d.local_count(1) == 5
        assert d.local_count(2) == 0
        assert d.local_count(3) == 3

    def test_owner_by_searchsorted(self):
        d = IrregularBlock([0, 2, 7, 7, 10])
        assert d.owners(np.array([0, 1, 2, 6, 7, 9])).tolist() == [0, 0, 1, 1, 3, 3]

    def test_must_start_at_zero(self):
        with pytest.raises(DistributionError):
            IrregularBlock([1, 5, 10])

    def test_must_be_monotone(self):
        with pytest.raises(DistributionError):
            IrregularBlock([0, 5, 3, 10])

    def test_nprocs_consistency(self):
        with pytest.raises(DistributionError):
            IrregularBlock([0, 5, 10], nprocs=4)

    def test_equality_uses_boundaries(self):
        a = IrregularBlock([0, 2, 7, 7, 10])
        b = IrregularBlock([0, 2, 7, 7, 10])
        c = IrregularBlock([0, 3, 7, 7, 10])
        assert a == b
        assert a != c

    def test_state_is_small(self):
        """Only N_P+1 cut points are stored (the paper's storage claim)."""
        d = IrregularBlock([0, 250, 500, 750, 1000])
        assert d.boundaries().size == 5


class TestSameMapping:
    def test_block_vs_blockk_equivalence(self):
        assert Block(10, 4).same_mapping(BlockK(10, 4, 3))

    def test_block_vs_cyclic_differ(self):
        assert not Block(10, 4).same_mapping(Cyclic(10, 4))

    def test_irregular_matching_block(self):
        irr = IrregularBlock([0, 3, 6, 9, 10])
        assert irr.same_mapping(Block(10, 4))

    def test_extent_mismatch(self):
        assert not Block(10, 4).same_mapping(Block(11, 4))


@pytest.mark.parametrize("dist_factory", [
    lambda: Block(10, 4),
    lambda: BlockK(10, 4, 3),
    lambda: Cyclic(10, 4),
    lambda: CyclicK(10, 4, 2),
    lambda: IrregularBlock([0, 2, 7, 7, 10]),
], ids=["block", "blockk", "cyclic", "cyclick", "irregular"])
class TestMapMemoization:
    """The cached whole-array maps: correct, stable, equality-neutral."""

    def test_owner_map_matches_owners(self, dist_factory):
        d = dist_factory()
        np.testing.assert_array_equal(
            d.owner_map(), d.owners(np.arange(d.n, dtype=np.int64)))

    def test_g2l_map_matches_global_to_local(self, dist_factory):
        d = dist_factory()
        np.testing.assert_array_equal(
            d.global_to_local_map(),
            d.global_to_local(np.arange(d.n, dtype=np.int64)))

    def test_local_indices_cached_matches_uncached(self, dist_factory):
        d = dist_factory()
        for r in range(d.nprocs):
            np.testing.assert_array_equal(
                d.local_indices_cached(r), d.local_indices(r))

    def test_repeat_calls_return_same_object(self, dist_factory):
        d = dist_factory()
        assert d.owner_map() is d.owner_map()
        assert d.global_to_local_map() is d.global_to_local_map()
        assert d.local_indices_cached(0) is d.local_indices_cached(0)

    def test_cached_arrays_are_read_only(self, dist_factory):
        d = dist_factory()
        for arr in (d.owner_map(), d.global_to_local_map(),
                    d.local_indices_cached(0)):
            assert not arr.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                arr[0] = 99

    def test_caching_does_not_affect_equality(self, dist_factory):
        """A warmed cache must not make equal layouts compare unequal."""
        warmed, fresh = dist_factory(), dist_factory()
        warmed.owner_map()
        warmed.global_to_local_map()
        warmed.local_indices_cached(1)
        assert warmed == fresh
        assert fresh == warmed
