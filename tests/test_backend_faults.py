"""Comm-level fault injection, ABFT checks, and cross-backend parity.

The injector is the piece that makes one seeded plan mean the same thing
on both backends; these tests pin its per-op semantics by driving the
wrapper generator by hand, then assert the headline property end to end:
identical FaultPlan seeds produce the identical injected-fault sequence
on the simulated and the process backend.
"""

import numpy as np
import pytest

from repro.backend import (
    CGRankProgram,
    FaultInjectingProgram,
    FaultInjector,
    FaultyComm,
    SimulatedBackend,
    fault_sequence_parity,
    process_backend_support,
)
from repro.backend.abft import (
    AbftChecksumError,
    check_matvec,
    column_checksums,
    decode_dot,
    encode_dot,
)
from repro.machine.events import Barrier, Compute, Recv, Send
from repro.machine.faults import FaultPlan, FaultRule
from repro.sparse.generators import poisson1d, rhs_for_solution

_OK, _DETAIL = process_backend_support()
needs_process = pytest.mark.skipif(
    not _OK, reason=f"process backend unavailable: {_DETAIL}"
)


def _drain(gen, feed=None):
    """Collect every op a wrapped generator yields, resuming with ``feed``."""
    ops, value = [], None
    try:
        op = next(gen)
        while True:
            ops.append(op)
            value = feed.pop(0) if feed else None
            op = gen.send(value)
    except StopIteration as stop:
        return ops, stop.value


def _rule_plan(kind, tag, nth=None):
    return FaultPlan(seed=1, rules=[FaultRule(kind=kind, tag=tag, nth=nth)])


class TestFaultInjector:
    def test_drop_swallows_the_send(self):
        def prog():
            yield Send(dest=1, payload=1.0, tag=5)
            yield Compute(1.0)
            return "done"

        inj = FaultInjector(_rule_plan("drop", tag=5), rank=0)
        ops, result = _drain(inj.wrap(prog()))
        assert [type(o).__name__ for o in ops] == ["Compute"]
        assert result == "done"
        assert inj.log == [(1, "drop", 1, 5)]

    def test_duplicate_yields_twice(self):
        def prog():
            yield Send(dest=1, payload=2.0, tag=5)

        inj = FaultInjector(_rule_plan("duplicate", tag=5), rank=0)
        ops, _ = _drain(inj.wrap(prog()))
        assert [o.payload for o in ops if isinstance(o, Send)] == [2.0, 2.0]

    def test_corrupt_perturbs_payload(self):
        def prog():
            yield Send(dest=1, payload=np.arange(8.0), tag=5)

        inj = FaultInjector(_rule_plan("corrupt", tag=5), rank=0)
        ops, _ = _drain(inj.wrap(prog()))
        assert len(ops) == 1
        assert not np.array_equal(ops[0].payload, np.arange(8.0))

    def test_delay_defers_until_next_blocking_op(self):
        def prog():
            yield Send(dest=1, payload="early", tag=5)
            yield Send(dest=1, payload="late", tag=6)
            got = yield Recv(source=1, tag=7)
            return got

        inj = FaultInjector(_rule_plan("delay", tag=5), rank=0)
        ops, result = _drain(inj.wrap(prog()), feed=[None, None, "reply"])
        kinds = [
            (type(o).__name__, getattr(o, "payload", None)) for o in ops
        ]
        # the delayed tag-5 send is reordered behind tag 6, but flushed
        # before the Recv blocks
        assert kinds == [
            ("Send", "late"), ("Send", "early"), ("Recv", None)
        ]
        assert result == "reply"

    def test_delay_flushes_at_program_end(self):
        def prog():
            yield Send(dest=1, payload="only", tag=5)

        inj = FaultInjector(_rule_plan("delay", tag=5), rank=0)
        ops, _ = _drain(inj.wrap(prog()))
        assert [o.payload for o in ops] == ["only"]

    def test_control_and_self_sends_exempt(self):
        def prog():
            yield Send(dest=1, payload="ack", tag=5, control=True)
            yield Send(dest=0, payload="self", tag=5)

        inj = FaultInjector(_rule_plan("drop", tag=5), rank=0)
        ops, _ = _drain(inj.wrap(prog()))
        assert [o.payload for o in ops] == ["ack", "self"]
        assert inj.log == []

    def test_recv_timeout_forwarded_into_program(self):
        from repro.backend import RecvTimeoutError

        def prog():
            try:
                yield Recv(source=1, tag=5, timeout=1e-3)
            except RecvTimeoutError:
                return "timed out"
            return "delivered"

        inj = FaultInjector(FaultPlan(seed=0), rank=0)
        gen = inj.wrap(prog())
        next(gen)
        with pytest.raises(StopIteration) as stop:
            gen.throw(RecvTimeoutError("boom"))
        assert stop.value.value == "timed out"


class RingProgram:
    """Each rank passes a value right and returns what it got from the left."""

    def __call__(self, rank, size):
        yield Send(dest=(rank + 1) % size, payload=float(rank), tag=1)
        got = yield Recv(source=(rank - 1) % size, tag=1)
        yield Barrier("done")
        return float(got)


class TestFaultyComm:
    def test_fault_free_plan_is_transparent(self):
        def program(rank, size):
            comm = FaultyComm(rank, size, FaultPlan(seed=3))
            total = yield from comm.allreduce_sum(float(rank + 1))
            blocks = yield from comm.allgather(np.full(2, float(rank)))
            return total, float(np.concatenate(blocks).sum())

        run = SimulatedBackend().run(program, 4)
        assert all(r == (10.0, 12.0) for r in run.results)

    def test_rank_local_plans_are_independent(self):
        plan = FaultPlan(seed=9, drop_prob=0.5)
        a, b = plan.for_rank(0), plan.for_rank(1)
        assert a.seed != b.seed


class TestAbft:
    def test_dot_roundtrip(self):
        pair = encode_dot(3.25)
        assert decode_dot(pair) == 3.25

    def test_dot_detects_single_slot_corruption(self):
        pair = encode_dot(3.25)
        pair[1] += 1e-9
        with pytest.raises(AbftChecksumError):
            decode_dot(pair)

    @staticmethod
    def _csr_product(n=16):
        A = poisson1d(n)
        rows = np.repeat(np.arange(n), np.diff(A.indptr))
        colsum, abs_colsum = column_checksums(n, A.indices, A.data)
        p = np.linspace(0.5, 2.0, n)
        q = np.zeros(n)
        np.add.at(q, rows, A.data * p[A.indices])
        return q, colsum, abs_colsum, p

    def test_matvec_checksum_accepts_true_product(self):
        q, colsum, abs_colsum, p = self._csr_product()
        check_matvec(float(q.sum()), colsum, abs_colsum, p)  # must not raise

    def test_matvec_checksum_rejects_corruption(self):
        q, colsum, abs_colsum, p = self._csr_product()
        with pytest.raises(AbftChecksumError):
            check_matvec(float(q.sum()) + 1.0, colsum, abs_colsum, p)


class TestFaultSequenceParity:
    # Corrupted/reordered payloads can desynchronize a *convergence-driven*
    # stopping decision across ranks of the plain (non-fault-tolerant) CG
    # and deadlock it, so parity runs cap the iteration count: control flow
    # -- and hence each rank's send sequence -- is fixed regardless of what
    # the faults do to the values.
    @staticmethod
    def _fixed_length_cg():
        A = poisson1d(24)
        b = rhs_for_solution(A, np.linspace(1.0, 2.0, 24))
        from repro.core.stopping import StoppingCriterion

        return CGRankProgram(
            A, b, criterion=StoppingCriterion(rtol=1e-300, maxiter=8)
        )

    def test_same_seed_same_sequence_simulated_twice(self):
        # determinism of the injector alone, no process backend needed
        plan = FaultPlan(
            seed=17, corrupt_prob=0.05, duplicate_prob=0.05, delay_prob=0.05
        )
        prog_factory = self._fixed_length_cg()

        def run():
            prog = FaultInjectingProgram(
                prog_factory, plan.clone(), return_log=True
            )
            return [
                r["fault_log"] for r in SimulatedBackend().run(prog, 2).results
            ]

        first, second = run(), run()
        assert first == second
        assert any(first)  # faults were actually injected

    @needs_process
    def test_cross_backend_parity_cg(self):
        # drop-free plan: a non-retransmitting program + drops would hang,
        # and retransmission counts are timing-dependent anyway
        plan = FaultPlan(
            seed=23, corrupt_prob=0.04, duplicate_prob=0.04, delay_prob=0.04
        )
        report = fault_sequence_parity(
            self._fixed_length_cg(), plan, nprocs=2
        )
        assert report.sequences_equal
        assert any(report.logs_simulated)
