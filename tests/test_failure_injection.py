"""Failure-injection tests: the system must fail loudly and precisely."""

import numpy as np
import pytest

from repro.core import StoppingCriterion, cg_reference, hpf_cg, make_strategy
from repro.hpf import (
    AlignmentError,
    Cyclic,
    DirectiveSyntaxError,
    DistributedArray,
    HpfNamespace,
)
from repro.machine import DeadlockError, Machine, Recv, run_spmd
from repro.sparse import COOMatrix, poisson2d, tridiagonal


class TestNumericalEdgeCases:
    def test_cg_on_singular_matrix_does_not_hang(self):
        """A singular system: CG must stop (breakdown or cap), not loop."""
        singular = COOMatrix(
            [0, 0, 1, 1], [0, 1, 0, 1], [1.0, 1.0, 1.0, 1.0], shape=(2, 2)
        )
        res = cg_reference(
            singular, np.array([1.0, 0.0]), criterion=StoppingCriterion(maxiter=50)
        )
        assert res.iterations <= 50

    def test_cg_with_consistent_singular_system(self):
        """Consistent singular systems converge to *a* solution."""
        singular = COOMatrix(
            [0, 0, 1, 1], [0, 1, 0, 1], [1.0, 1.0, 1.0, 1.0], shape=(2, 2)
        )
        b = np.array([2.0, 2.0])  # in the range of A
        res = cg_reference(singular, b, criterion=StoppingCriterion(rtol=1e-10))
        assert np.allclose(singular.matvec(res.x), b, atol=1e-8)

    def test_indefinite_matrix_may_break_down_cleanly(self):
        indefinite = COOMatrix([0, 1], [0, 1], [1.0, -1.0], shape=(2, 2))
        res = cg_reference(
            indefinite, np.array([1.0, 1.0]), criterion=StoppingCriterion(maxiter=10)
        )
        assert res.iterations <= 10  # returned, did not raise

    def test_tiny_1x1_system(self):
        A = tridiagonal(1, diag=4.0)
        res = cg_reference(A, np.array([8.0]))
        assert res.converged
        assert res.x[0] == pytest.approx(2.0)

    def test_distributed_1x1_system(self):
        A = tridiagonal(1, diag=4.0)
        m = Machine(nprocs=4)  # more processors than unknowns
        res = hpf_cg(make_strategy("csr_forall", m, A), np.array([8.0]))
        assert res.converged
        assert res.x[0] == pytest.approx(2.0)

    def test_more_processors_than_rows(self, rng):
        A = poisson2d(2, 2)  # n=4
        b = rng.standard_normal(4)
        m = Machine(nprocs=8)
        res = hpf_cg(make_strategy("csc_private", m, A), b,
                     criterion=StoppingCriterion(rtol=1e-10))
        assert res.converged
        assert np.allclose(A.matvec(res.x), b, atol=1e-7)


class TestMisuseDetection:
    def test_unaligned_axpy_raises_alignment_error(self, machine4):
        x = DistributedArray(machine4, 8)
        y = DistributedArray(machine4, 8, Cyclic(8, 4))
        with pytest.raises(AlignmentError):
            x.axpy(1.0, y)

    def test_cross_machine_operands_rejected(self):
        m1, m2 = Machine(nprocs=4), Machine(nprocs=4)
        x = DistributedArray(m1, 8)
        y = DistributedArray(m2, 8)
        with pytest.raises(AlignmentError):
            x.axpy(1.0, y)

    def test_directive_typo_pinpointed(self, machine4):
        ns = HpfNamespace(machine4)
        with pytest.raises(DirectiveSyntaxError) as err:
            ns.apply("!HPF$ DISTRIBUT p(BLOCK)")
        assert "DISTRIBUT" in str(err.value)

    def test_wrong_rhs_length(self, machine4):
        A = poisson2d(3, 3)
        with pytest.raises(ValueError):
            hpf_cg(make_strategy("csr_forall", machine4, A), np.zeros(5))


class TestDeadlocks:
    def test_cyclic_recv_chain_detected(self):
        def prog(rank, size):
            value = yield Recv(source=(rank + 1) % size)
            return value

        with pytest.raises(DeadlockError) as err:
            run_spmd(Machine(nprocs=3, topology="ring"), prog)
        assert "blocked" in str(err.value)

    def test_partial_completion_then_deadlock(self):
        def prog(rank, size):
            if rank == 0:
                return "done"
            value = yield Recv(source=0)
            return value

        with pytest.raises(DeadlockError):
            run_spmd(Machine(nprocs=2), prog)


class TestExtremeCostModels:
    def test_zero_communication_cost_machine(self, rng):
        """A free network: solver still correct, comm time zero."""
        from repro.machine import CostModel

        m = Machine(nprocs=4, cost=CostModel(t_startup=0.0, t_comm=0.0))
        A = poisson2d(4, 4)
        b = rng.standard_normal(16)
        res = hpf_cg(make_strategy("csr_forall_aligned", m, A), b,
                     criterion=StoppingCriterion(rtol=1e-10))
        assert res.converged
        # only the reduction-combine flops remain inside collectives
        assert res.comm["comm_time"] < 1e-5

    def test_zero_flop_cost_machine(self, rng):
        from repro.machine import CostModel

        m = Machine(nprocs=4, cost=CostModel(t_flop=0.0))
        A = poisson2d(4, 4)
        b = rng.standard_normal(16)
        res = hpf_cg(make_strategy("csr_forall_aligned", m, A), b,
                     criterion=StoppingCriterion(rtol=1e-10))
        assert res.converged
        assert res.machine_elapsed == pytest.approx(res.comm["comm_time"], rel=0.3)
