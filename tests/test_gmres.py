"""Tests for restarted GMRES (sequential and distributed)."""

import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro.core import StoppingCriterion, gmres_reference, hpf_cg, hpf_gmres, make_strategy
from repro.machine import Machine
from repro.sparse import (
    convection_diffusion_1d,
    nonsymmetric_diag_dominant,
    poisson2d,
    rhs_for_solution,
)

CRIT = StoppingCriterion(rtol=1e-10, maxiter=3000)


class TestGmresReference:
    def test_spd_system(self, spd_medium, rng):
        xt = rng.standard_normal(spd_medium.nrows)
        b = rhs_for_solution(spd_medium, xt)
        res = gmres_reference(spd_medium, b, restart=25, criterion=CRIT)
        assert res.converged
        assert np.allclose(res.x, xt, atol=1e-5)

    def test_nonsymmetric_system(self, rng):
        A = nonsymmetric_diag_dominant(80, seed=3)
        xt = rng.standard_normal(80)
        b = rhs_for_solution(A, xt)
        res = gmres_reference(A, b, restart=20, criterion=CRIT)
        assert res.converged
        assert np.allclose(res.x, xt, atol=1e-5)

    def test_matches_scipy(self, rng):
        A = convection_diffusion_1d(60, peclet=0.3)
        b = rng.standard_normal(60)
        ours = gmres_reference(A, b, restart=30, criterion=CRIT)
        theirs, info = spla.gmres(A.to_scipy(), b, restart=30, rtol=1e-10, atol=0.0)
        assert info == 0
        assert ours.converged
        assert np.allclose(ours.x, theirs, atol=1e-6)

    def test_full_gmres_converges_within_n(self, rng):
        """Unrestarted GMRES terminates in at most n iterations."""
        A = nonsymmetric_diag_dominant(24, seed=5)
        b = rng.standard_normal(24)
        res = gmres_reference(A, b, restart=24, criterion=CRIT)
        assert res.converged
        assert res.iterations <= 24

    def test_zero_rhs(self, spd_small):
        res = gmres_reference(spd_small, np.zeros(spd_small.nrows))
        assert res.converged and res.iterations == 0

    def test_restart_smaller_than_n_still_converges(self, rng):
        A = poisson2d(8, 8)
        b = rng.standard_normal(64)
        res = gmres_reference(A, b, restart=5, criterion=CRIT)
        assert res.converged

    def test_restart_metadata(self, spd_small, rng):
        res = gmres_reference(spd_small, rng.standard_normal(36), restart=12,
                              criterion=CRIT)
        assert res.extras["restart"] == 12
        assert res.extras["basis_vectors"] == 13

    def test_nonzero_initial_guess(self, spd_small, rng):
        xt = rng.standard_normal(36)
        b = rhs_for_solution(spd_small, xt)
        res = gmres_reference(spd_small, b, x0=xt.copy(), criterion=CRIT)
        assert res.converged
        assert res.iterations == 0


class TestHpfGmres:
    @pytest.mark.parametrize("nprocs,topology", [(1, "hypercube"), (3, "ring"),
                                                 (4, "hypercube")])
    def test_distributed_matches_sequential(self, nprocs, topology, rng):
        A = nonsymmetric_diag_dominant(48, seed=9)
        b = rng.standard_normal(48)
        seq = gmres_reference(A, b, restart=15, criterion=CRIT)
        m = Machine(nprocs=nprocs, topology=topology)
        dist = hpf_gmres(make_strategy("csr_forall_aligned", m, A), b,
                         restart=15, criterion=CRIT)
        assert dist.converged == seq.converged
        assert dist.iterations == seq.iterations
        assert np.allclose(dist.x, seq.x, atol=1e-8)

    def test_basis_storage_reported(self, rng):
        """The paper's 'longer recurrences (which require greater storage)'."""
        A = poisson2d(8, 8)
        b = rng.standard_normal(64)
        m = Machine(nprocs=4)
        res = hpf_gmres(make_strategy("csr_forall_aligned", m, A), b,
                        restart=20, criterion=CRIT)
        assert res.converged
        # 21 basis vectors x ceil(64/4) elements each
        assert res.extras["basis_storage_words_per_rank"] == 21 * 16

    def test_gmres_needs_more_memory_than_cg(self, rng):
        """Storage contrast against CG's fixed four work vectors."""
        A = poisson2d(8, 8)
        b = rng.standard_normal(64)
        m_cg = Machine(nprocs=4)
        hpf_cg(make_strategy("csr_forall_aligned", m_cg, A), b, criterion=CRIT)
        m_gm = Machine(nprocs=4)
        hpf_gmres(make_strategy("csr_forall_aligned", m_gm, A), b,
                  restart=30, criterion=CRIT)
        assert (
            m_gm.stats.storage_words_per_rank.max()
            > m_cg.stats.storage_words_per_rank.max()
        )

    def test_more_dots_per_matvec_than_cg(self, rng):
        """Arnoldi's k+1 orthogonalisation dots drive allreduce pressure."""
        A = poisson2d(8, 8)
        b = rng.standard_normal(64)
        m = Machine(nprocs=4)
        res = hpf_gmres(make_strategy("csr_forall_aligned", m, A), b,
                        restart=20, criterion=CRIT)
        dots = m.stats.by_tag()["dot"]["count"]
        assert dots > 2 * res.iterations  # CG would pay exactly ~2 per iter
