"""Tests for the HpfNamespace data-mapping report."""

import numpy as np
import pytest

from repro.hpf import HpfNamespace
from repro.machine import Machine
from repro.sparse import poisson2d


@pytest.fixture
def full_namespace(machine4):
    A = poisson2d(4, 4).to_csr()
    ns = HpfNamespace(machine4, env={"n": 16, "nz": A.nnz})
    for v in ("p", "q", "r", "x", "b"):
        ns.declare(v, 16)
    ns.declare_sparse("smA", A)
    ns.apply(
        """
        !HPF$ PROCESSORS :: PROCS(NP)
        !HPF$ TEMPLATE T(n)
        !HPF$ ALIGN (:) WITH p(:) :: q, r, x, b
        !HPF$ DISTRIBUTE p(BLOCK)
        !HPF$ SPARSE_MATRIX (CSR) :: smA(row, col, a)
        !EXT$ REDISTRIBUTE smA USING CG_BALANCED_PARTITIONER_1
        !EXT$ ITERATION j ON PROCESSOR(j/4), PRIVATE(q(n)) WITH MERGE(+)
        """
    )
    return ns


class TestReport:
    def test_lists_every_array(self, full_namespace):
        report = full_namespace.report()
        for name in ("p", "q", "r", "x", "b"):
            assert f"\n    {name} " in report or f" {name} " in report

    def test_alignment_targets_shown(self, full_namespace):
        report = full_namespace.report()
        # q/r/x/b all align with p
        assert report.count("align=p") == 4

    def test_processors_and_template(self, full_namespace):
        report = full_namespace.report()
        assert "PROCS(4)" in report
        assert "TEMPLATE t(16)" in report

    def test_sparse_binding_section(self, full_namespace):
        report = full_namespace.report()
        assert "smA: CSR n=16" in report
        assert "non-local elements=0" in report  # after balanced partitioning

    def test_iteration_section(self, full_namespace):
        report = full_namespace.report()
        assert "ON PROCESSOR" in report
        assert "MERGE(+)" in report

    def test_dynamic_flag_shown(self, machine4):
        ns = HpfNamespace(machine4, env={"n": 8})
        ns.declare("row", 8)
        ns.apply("!HPF$ DYNAMIC, DISTRIBUTE row(BLOCK)")
        assert "DYNAMIC" in ns.report()

    def test_dense_matrix_shown(self, machine4, rng):
        ns = HpfNamespace(machine4)
        ns.declare("p", 8)
        ns.declare_matrix("A", rng.standard_normal((8, 8)))
        ns.apply("!HPF$ ALIGN A(:, *) WITH p(:)")
        assert "(BLOCK, *)" in ns.report()

    def test_imbalance_reported(self, machine4):
        ns = HpfNamespace(machine4)
        ns.declare("v", 5)  # 2+1+1+1 under BLOCK(2): imbalanced
        report = ns.report()
        assert "imbalance=" in report

    def test_empty_namespace(self, machine4):
        report = HpfNamespace(machine4).report()
        assert "HPF data mapping report" in report
