"""Unit tests for the machine cost model."""

import pytest

from repro.machine import CostModel


class TestCostModelConstruction:
    def test_defaults_are_positive(self):
        c = CostModel()
        assert c.t_startup > 0
        assert c.t_comm > 0
        assert c.t_flop > 0
        assert c.word_bytes == 8

    def test_negative_startup_rejected(self):
        with pytest.raises(ValueError):
            CostModel(t_startup=-1.0)

    def test_negative_comm_rejected(self):
        with pytest.raises(ValueError):
            CostModel(t_comm=-1e-9)

    def test_negative_flop_rejected(self):
        with pytest.raises(ValueError):
            CostModel(t_flop=-1e-9)

    def test_zero_word_bytes_rejected(self):
        with pytest.raises(ValueError):
            CostModel(word_bytes=0)

    def test_frozen(self):
        c = CostModel()
        with pytest.raises(Exception):
            c.t_startup = 1.0  # type: ignore[misc]


class TestMessageTime:
    def test_zero_words_costs_startup_only(self):
        c = CostModel(t_startup=1e-5, t_comm=1e-8)
        assert c.message_time(0) == pytest.approx(1e-5)

    def test_linear_in_words(self):
        c = CostModel(t_startup=0.0, t_comm=2e-9, t_hop=0.0)
        assert c.message_time(1000) == pytest.approx(2e-6)

    def test_hop_latency_added_per_extra_hop(self):
        c = CostModel(t_startup=1e-6, t_comm=0.0, t_hop=5e-7)
        assert c.message_time(1, hops=3) == pytest.approx(1e-6 + 2 * 5e-7)

    def test_one_hop_has_no_hop_penalty(self):
        c = CostModel(t_startup=1e-6, t_comm=0.0, t_hop=5e-7)
        assert c.message_time(1, hops=1) == pytest.approx(1e-6)

    def test_negative_words_rejected(self):
        with pytest.raises(ValueError):
            CostModel().message_time(-1)

    def test_zero_hops_rejected(self):
        with pytest.raises(ValueError):
            CostModel().message_time(1, hops=0)


class TestComputeTime:
    def test_proportional_to_flops(self):
        c = CostModel(t_flop=2e-9)
        assert c.compute_time(1e6) == pytest.approx(2e-3)

    def test_zero_flops_is_free(self):
        assert CostModel().compute_time(0) == 0.0

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            CostModel().compute_time(-5)


class TestWith:
    def test_with_replaces_only_named_fields(self):
        c = CostModel(t_startup=1e-5)
        c2 = c.with_(t_comm=9e-9)
        assert c2.t_comm == 9e-9
        assert c2.t_startup == 1e-5
        assert c2.t_flop == c.t_flop

    def test_with_returns_new_instance(self):
        c = CostModel()
        assert c.with_(t_flop=1e-10) is not c
