"""Tests for the SPARSE_MATRIX trio binding (Section 5.2)."""

import numpy as np
import pytest

from repro.extensions import SparseMatrixBinding
from repro.hpf import Block, Cyclic
from repro.hpf.errors import DirectiveSemanticError, DistributionError
from repro.machine import Machine
from repro.sparse import figure1_matrix, irregular_powerlaw, poisson2d


@pytest.fixture
def binding(machine4):
    return SparseMatrixBinding(machine4, figure1_matrix(), name="smA")


class TestConstruction:
    def test_csr_format_detected(self, binding):
        assert binding.fmt == "CSR"
        assert binding.n == 6
        assert binding.nnz == 15

    def test_csc_format_detected(self, machine4):
        b = SparseMatrixBinding(machine4, figure1_matrix().to_csc())
        assert b.fmt == "CSC"

    def test_other_formats_rejected(self, machine4):
        with pytest.raises(DirectiveSemanticError):
            SparseMatrixBinding(machine4, figure1_matrix().to_coo())

    def test_pointer_fence_on_last_rank(self, binding):
        """The (n+1)-th element of row is placed in the last processor."""
        assert binding.ptr.distribution.owner(6) == 3

    def test_val_aligned_with_idx(self, binding):
        assert binding.val.distribution.same_mapping(binding.idx.distribution)
        assert binding.val.group is binding.idx.group


class TestTightBinding:
    def test_element_redistribution_moves_both(self, binding):
        binding.redistribute_elements(Cyclic(15, 4))
        assert isinstance(binding.idx.distribution, Cyclic)
        assert isinstance(binding.val.distribution, Cyclic)
        # data is intact
        assert np.allclose(
            binding.val.to_global(), figure1_matrix().data.astype(float)
        )

    def test_extent_checked(self, binding):
        with pytest.raises(DistributionError):
            binding.redistribute_elements(Cyclic(10, 4))


class TestNonlocalElements:
    def test_default_block_layout_has_nonlocal_elements(self, binding):
        """Figure 2's layout: col/a BLOCK over nz does not match row owners."""
        assert binding.nonlocal_elements().sum() > 0

    def test_atom_redistribution_eliminates_them(self, binding):
        binding.redistribute_atoms_uniform()
        assert binding.nonlocal_elements().sum() == 0

    def test_balanced_redistribution_eliminates_them(self, binding):
        binding.redistribute_atoms_balanced()
        assert binding.nonlocal_elements().sum() == 0

    def test_prefetch_charges_when_nonlocal(self, machine4):
        b = SparseMatrixBinding(machine4, figure1_matrix())
        t = b.charge_prefetch()
        assert t > 0
        assert "prefetch" in machine4.stats.by_op()

    def test_prefetch_free_when_aligned(self, machine4):
        b = SparseMatrixBinding(machine4, figure1_matrix())
        b.redistribute_atoms_uniform(charge=False)
        assert b.charge_prefetch() == 0.0


class TestBalancedPartitioning:
    def test_balanced_cuts_reduce_nnz_imbalance(self):
        m = Machine(nprocs=8)
        A = irregular_powerlaw(300, seed=5).to_csr()
        b = SparseMatrixBinding(m, A)
        from repro.extensions import imbalance

        weights = np.diff(A.indptr).astype(float)
        uniform_cuts = b.redistribute_atoms_uniform(charge=False)
        uni = imbalance(weights, uniform_cuts)
        balanced_cuts = b.redistribute_atoms_balanced(charge=False)
        bal = imbalance(weights, balanced_cuts)
        assert bal <= uni

    def test_apply_partitioner_by_name(self, binding):
        cuts = binding.apply_partitioner("CG_BALANCED_PARTITIONER_1")
        assert cuts[-1] == 6

    def test_apply_partitioner_uniform_alias(self, binding):
        cuts = binding.apply_partitioner("ATOM_BLOCK")
        assert cuts[-1] == 6

    def test_unknown_partitioner(self, binding):
        with pytest.raises(DirectiveSemanticError):
            binding.apply_partitioner("MAGIC")

    def test_redistribution_charged_by_default(self):
        m = Machine(nprocs=4)
        b = SparseMatrixBinding(m, poisson2d(5, 5).to_csr())
        before = m.stats.snapshot()
        b.redistribute_atoms_balanced()
        assert before.since(m.stats).words > 0


class TestPointerConsistencyAfterAtoms:
    def test_each_rank_can_walk_its_rows_locally(self, binding):
        cuts = binding.redistribute_atoms_uniform()
        # rank r owns pointer entries for its atom range
        for r in range(4):
            lo, hi = int(cuts[r]), int(cuts[r + 1])
            local_ptr = binding.ptr.local(r)
            expected = figure1_matrix().indptr[lo:hi].astype(float)
            if r == 3:
                expected = figure1_matrix().indptr[lo:].astype(float)
            assert np.allclose(local_ptr, expected)
