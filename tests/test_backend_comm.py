"""Unit tests for the backend-neutral ``Comm`` adapter.

``Comm`` wraps the raw GenOp events and the binomial-tree collectives of
``repro.machine.spmd`` behind one ``(rank, size)``-bound object.  These
tests drive it on the simulated backend and check (a) the semantics of
every method and (b) that the collectives reduce in exactly the same
order as calling ``spmd.*`` directly -- the property the cross-backend
bitwise parity rests on.
"""

import numpy as np
import pytest

from repro.backend import Comm, SimulatedBackend
from repro.machine import spmd


def _run(program, nprocs):
    # "complete" accepts any rank count (hypercube wants powers of two)
    return SimulatedBackend(topology="complete").run(program, nprocs)


def test_comm_validates_rank_and_size():
    with pytest.raises(ValueError):
        Comm(0, 0)
    with pytest.raises(ValueError):
        Comm(4, 4)
    with pytest.raises(ValueError):
        Comm(-1, 2)
    c = Comm(1, 4)
    assert (c.rank, c.size) == (1, 4)


def test_send_recv_roundtrip():
    def program(rank, size):
        comm = Comm(rank, size)
        if rank == 0:
            yield from comm.send(1, {"x": 42}, tag=4)
            reply = yield from comm.recv(source=1, tag=5)
            return reply
        payload = yield from comm.recv(source=0, tag=4)
        yield from comm.send(0, payload["x"] + 1, tag=5)
        return payload

    run = _run(program, 2)
    assert run.results[0] == 43
    assert run.results[1] == {"x": 42}
    assert run.stats.total_messages == 2


def test_compute_charges_declared_flops():
    def program(rank, size):
        comm = Comm(rank, size)
        yield from comm.compute(100.0 * (rank + 1))
        return rank

    run = _run(program, 3)
    assert run.stats.flops_per_rank.tolist() == [100.0, 200.0, 300.0]
    assert run.per_rank[2]["flops"] == 300.0


def test_barrier_aligns_clocks():
    def program(rank, size):
        comm = Comm(rank, size)
        yield from comm.compute(1000.0 * rank)  # deliberately unbalanced
        yield from comm.barrier("sync")
        return rank

    run = _run(program, 4)
    assert run.results == [0, 1, 2, 3]
    # after the barrier every rank has waited up to the slowest one
    assert run.elapsed >= 3000.0 * 1e-9  # 3000 flops at default t_flop


@pytest.mark.parametrize("nprocs", [1, 2, 4, 5])
def test_collectives_semantics(nprocs):
    root = min(1, nprocs - 1)

    def program(rank, size):
        comm = Comm(rank, size)
        rooted = yield from comm.bcast(10 if rank == root else None, root=root)
        total = yield from comm.allreduce_sum(float(rank + 1))
        red = yield from comm.reduce(float(rank + 1), root=0)
        gat = yield from comm.gather(rank, root=0)
        allg = yield from comm.allgather(rank * 2)
        scat = yield from comm.scatter(
            [f"item{i}" for i in range(size)] if rank == 0 else None, root=0
        )
        return rooted, total, red, gat, allg, scat

    run = _run(program, nprocs)
    expected_sum = float(nprocs * (nprocs + 1) / 2)
    for rank, (rooted, total, red, gat, allg, scat) in enumerate(run.results):
        assert rooted == 10
        assert total == expected_sum
        assert allg == [r * 2 for r in range(nprocs)]
        assert scat == f"item{rank}"
        if rank == 0:
            assert red == expected_sum
            assert gat == list(range(nprocs))
        else:
            assert gat is None


def test_comm_collectives_match_raw_spmd_bitwise():
    """Same reduction order => bitwise-identical float results."""
    rng = np.random.default_rng(7)
    values = [float(v) for v in rng.standard_normal(4)]

    def via_comm(rank, size):
        comm = Comm(rank, size)
        result = yield from comm.allreduce_sum(values[rank])
        return result

    def via_spmd(rank, size):
        result = yield from spmd.allreduce_sum(rank, size, values[rank], tag=3)
        return result

    a = _run(via_comm, 4).results
    b = _run(via_spmd, 4).results
    assert a == b  # exact equality, not allclose
    # and the tree order differs from naive left-to-right summation
    assert a[0] == pytest.approx(sum(values))


def test_comm_send_nwords_override():
    def program(rank, size):
        comm = Comm(rank, size)
        if rank == 0:
            yield from comm.send(1, None, tag=1, nwords=512)
        else:
            yield from comm.recv(source=0, tag=1)
        return rank

    run = _run(program, 2)
    assert run.stats.total_words == 512
