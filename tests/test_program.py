"""Tests for HpfNamespace: applying the paper's directives to real arrays."""

import numpy as np
import pytest

from repro.hpf import (
    Block,
    BlockK,
    Cyclic,
    CyclicK,
    DirectiveSemanticError,
    HpfNamespace,
)
from repro.machine import Machine
from repro.sparse import figure1_matrix, poisson2d


@pytest.fixture
def ns(machine4):
    return HpfNamespace(machine4, env={"n": 12, "nz": 40})


class TestDeclarations:
    def test_declare_and_lookup(self, ns):
        ns.declare("p", 12)
        assert ns.array("p").n == 12

    def test_declare_with_values(self, ns, rng):
        v = rng.standard_normal(12)
        ns.declare("b", 12, values=v)
        assert np.allclose(ns.array("b").to_global(), v)

    def test_case_insensitive_lookup(self, ns):
        ns.declare("Row", 13)
        assert ns.array("row").n == 13

    def test_double_declare_rejected(self, ns):
        ns.declare("p", 12)
        with pytest.raises(DirectiveSemanticError):
            ns.declare("p", 12)

    def test_unknown_array(self, ns):
        with pytest.raises(DirectiveSemanticError):
            ns.array("ghost")

    def test_values_shape_checked(self, ns):
        with pytest.raises(DirectiveSemanticError):
            ns.declare("p", 12, values=np.zeros(5))


class TestProcessorsDirective:
    def test_matching_size(self, ns):
        ns.apply("!HPF$ PROCESSORS :: PROCS(NP)")
        assert ns.processors["procs"].size == 4

    def test_wrong_size_rejected(self, ns):
        with pytest.raises(DirectiveSemanticError):
            ns.apply("!HPF$ PROCESSORS :: PROCS(3)")

    def test_np_defaults_to_machine(self, machine8):
        ns = HpfNamespace(machine8)
        ns.apply("!HPF$ PROCESSORS P(NP)")
        assert ns.processors["p"].size == 8


class TestDistributeAlign:
    def test_distribute_block(self, ns):
        ns.declare("p", 12)
        ns.apply("!HPF$ DISTRIBUTE p(BLOCK)")
        assert isinstance(ns.array("p").distribution, Block)

    def test_distribute_cyclic_with_size(self, ns):
        ns.declare("row", 12)
        ns.apply("!HPF$ DISTRIBUTE row(CYCLIC((n+NP-1)/np))")
        d = ns.array("row").distribution
        assert isinstance(d, CyclicK)
        assert d.k == 3

    def test_paper_pointer_block_clamps(self, machine4):
        """BLOCK((n+NP-1)/NP) on the n+1 array puts the fence on the last rank."""
        ns = HpfNamespace(machine4, env={"n": 12})
        ns.declare("row", 13)
        ns.apply("!HPF$ DISTRIBUTE row(BLOCK((n+NP-1)/NP))")
        d = ns.array("row").distribution
        assert isinstance(d, BlockK)
        assert d.owner(12) == 3

    def test_align_list(self, ns, rng):
        ns.declare("p", 12, values=rng.standard_normal(12))
        for name in ("q", "r", "x", "b"):
            ns.declare(name, 12)
        ns.apply("!HPF$ ALIGN (:) WITH p(:) :: q, r, x, b")
        ns.apply("!HPF$ DISTRIBUTE p(BLOCK)")
        # redistribute through the directive layer cascades
        ns.apply("!HPF$ REDISTRIBUTE p(CYCLIC)")
        for name in ("q", "r", "x", "b"):
            assert isinstance(ns.array(name).distribution, Cyclic)

    def test_dynamic_marks_arrays(self, ns):
        ns.declare("row", 12)
        ns.apply("!HPF$ DYNAMIC, DISTRIBUTE row(BLOCK)")
        assert "row" in ns.dynamic

    def test_2d_align_row_block(self, machine4, rng):
        ns = HpfNamespace(machine4, env={"n": 8})
        a = rng.standard_normal((8, 8))
        ns.declare("p", 8)
        ns.declare_matrix("A", a)
        ns.apply("!HPF$ ALIGN A(:, *) WITH p(:)")
        m = ns.matrix("A")
        assert m.axis == 0
        assert np.allclose(m.to_global(), a)

    def test_2d_align_col_block(self, machine4, rng):
        ns = HpfNamespace(machine4, env={"n": 8})
        ns.declare("p", 8)
        ns.declare_matrix("A", rng.standard_normal((8, 8)))
        ns.apply("!HPF$ ALIGN A(*, :) WITH p(:)")
        assert ns.matrix("A").axis == 1

    def test_2d_align_undeclared_matrix(self, ns):
        ns.declare("p", 12)
        with pytest.raises(DirectiveSemanticError):
            ns.apply("!HPF$ ALIGN A(:, *) WITH p(:)")

    def test_matrix_extent_mismatch(self, machine4):
        ns = HpfNamespace(machine4)
        ns.declare("p", 6)
        ns.declare_matrix("A", np.zeros((8, 8)))
        with pytest.raises(DirectiveSemanticError):
            ns.apply("!HPF$ ALIGN A(:, *) WITH p(:)")


class TestSparseTrioDirectives:
    def test_sparse_matrix_binding_and_partitioner(self, machine4):
        A = poisson2d(4, 4).to_csr()
        ns = HpfNamespace(machine4, env={"n": 16, "nz": A.nnz})
        ns.declare_sparse("smA", A)
        ns.apply("!HPF$ SPARSE_MATRIX (CSR) :: smA(row, col, a)")
        binding = ns.sparse("smA")
        assert binding.ptr.name == "row"
        assert binding.idx.name == "col"
        ns.apply("!EXT$ REDISTRIBUTE smA USING CG_BALANCED_PARTITIONER_1")
        assert binding.atom_cuts is not None
        assert binding.nonlocal_elements().sum() == 0

    def test_sparse_matrix_requires_registration(self, ns):
        with pytest.raises(DirectiveSemanticError):
            ns.apply("!HPF$ SPARSE_MATRIX (CSR) :: ghost(row, col, a)")

    def test_sparse_matrix_format_mismatch(self, machine4):
        ns = HpfNamespace(machine4)
        ns.declare_sparse("smA", poisson2d(4, 4).to_csr())
        with pytest.raises(DirectiveSemanticError):
            ns.apply("!HPF$ SPARSE_MATRIX (CSC) :: smA(col, row, a)")

    def test_indivisable_on_bound_trio(self, machine4):
        A = figure1_matrix()
        ns = HpfNamespace(machine4, env={"n": 6, "nz": A.nnz})
        ns.declare_sparse("smA", A)
        ns.apply("!HPF$ SPARSE_MATRIX (CSR) :: smA(row, col, a)")
        ns.apply("!EXT$ INDIVISABLE col(ATOM:i) :: row(i:i+1)")
        assert "col" in ns.atom_specs
        assert ns.atom_specs["col"].natoms == 6

    def test_atom_redistribute_via_directive(self, machine4):
        A = figure1_matrix()
        ns = HpfNamespace(machine4, env={"n": 6, "nz": A.nnz})
        ns.declare_sparse("smA", A)
        ns.apply("!HPF$ SPARSE_MATRIX (CSR) :: smA(row, col, a)")
        ns.apply("!EXT$ REDISTRIBUTE col(ATOM: BLOCK)")
        assert ns.sparse("smA").nonlocal_elements().sum() == 0

    def test_atom_redistribute_without_spec_rejected(self, ns):
        ns.declare("data", 12)
        with pytest.raises(DirectiveSemanticError):
            ns.apply("!EXT$ REDISTRIBUTE data(ATOM: BLOCK)")

    def test_indivisable_from_declared_pointer_array(self, machine4):
        """INDIVISABLE against a plain declared (1-based) pointer array."""
        ns = HpfNamespace(machine4, env={"n": 4})
        ns.declare("data", 10)
        # 1-based Fortran pointer: atoms of sizes 3, 2, 4, 1
        ns.declare("ptr", 5, values=np.array([1.0, 4.0, 6.0, 10.0, 11.0]))
        ns.apply("!EXT$ INDIVISABLE data(ATOM:i) :: ptr(i:i+1)")
        spec = ns.atom_specs["data"]
        assert spec.natoms == 4
        assert spec.atom_sizes().tolist() == [3, 2, 4, 1]
        ns.apply("!EXT$ REDISTRIBUTE data(ATOM: BLOCK)")
        from repro.hpf import IrregularBlock

        assert isinstance(ns.array("data").distribution, IrregularBlock)


class TestIterationDirective:
    def test_iteration_mapping(self, machine4):
        ns = HpfNamespace(machine4, env={"n": 12, "np": 4})
        ns.apply("!EXT$ ITERATION j ON PROCESSOR(j/3), PRIVATE(q(n)) WITH MERGE(+)")
        mapping = ns.iteration_mapping("j")
        parts = mapping.partition(np.arange(12))
        assert [len(p) for p in parts] == [3, 3, 3, 3]

    def test_unknown_iteration_var(self, ns):
        with pytest.raises(DirectiveSemanticError):
            ns.iteration_mapping("k")


class TestTemplate:
    def test_template_recorded(self, ns):
        ns.apply("!HPF$ TEMPLATE T(n)")
        assert ns.templates["t"] == 12
