"""Retry policy and circuit breaker: deterministic, sleep-free tests.

Every test here runs on a fake clock and a recording fake sleep -- no
wall-clock time passes, yet the full trip / half-open / reset state
machine and the seeded jitter stream are exercised exactly.
"""

import pytest

from repro.backend.base import (
    BackendTimeoutError,
    WorkerCrashedError,
    WorkerFailedError,
)
from repro.core.resilience import RecoveryExhaustedError
from repro.machine.faults import StragglerDetectedError
from repro.service import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    CircuitOpenError,
    RetryPolicy,
    is_retryable,
)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


# ------------------------------------------------------------------ #
# retryability
# ------------------------------------------------------------------ #
class TestIsRetryable:
    def test_infrastructure_failures_are_retryable(self):
        for exc in (
            WorkerCrashedError(1, "gone"),
            WorkerFailedError("rank 1 failed"),
            StragglerDetectedError(rank=2, lag=3.0),
            BackendTimeoutError("deadline"),
            RecoveryExhaustedError("gave up"),
        ):
            assert is_retryable(exc), type(exc).__name__

    def test_logic_errors_are_not(self):
        for exc in (ValueError("bad input"), KeyError("x"),
                    ZeroDivisionError()):
            assert not is_retryable(exc), type(exc).__name__


# ------------------------------------------------------------------ #
# backoff schedule
# ------------------------------------------------------------------ #
class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)

    def test_preview_ladder_is_exponential_and_capped(self):
        p = RetryPolicy(max_attempts=6, base_delay=0.1, multiplier=2.0,
                        max_delay=0.5)
        assert p.preview_delays() == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_first_attempt_never_waits(self):
        assert RetryPolicy(seed=7).delay_before(1) == 0.0

    def test_jitter_is_seeded_deterministic(self):
        a = [RetryPolicy(seed=42, max_attempts=5).delay_before(k)
             for k in (2, 3, 4)]
        b = [RetryPolicy(seed=42, max_attempts=5).delay_before(k)
             for k in (2, 3, 4)]
        c = [RetryPolicy(seed=43, max_attempts=5).delay_before(k)
             for k in (2, 3, 4)]
        assert a == b  # same seed: identical delay sequence
        assert a != c  # different seed: decorrelated

    def test_jitter_bounds(self):
        p = RetryPolicy(seed=0, base_delay=0.1, multiplier=2.0,
                        max_delay=10.0, jitter=0.25, max_attempts=10)
        for attempt in range(2, 10):
            base = min(10.0, 0.1 * 2.0 ** (attempt - 2))
            d = p.delay_before(attempt)
            assert base <= d <= base * 1.25

    def test_should_retry_respects_budget_and_type(self):
        p = RetryPolicy(max_attempts=3)
        crash = WorkerCrashedError(0, "gone")
        assert p.should_retry(1, crash)
        assert p.should_retry(2, crash)
        assert not p.should_retry(3, crash)  # budget exhausted
        assert not p.should_retry(1, ValueError("bad"))  # not retryable

    def test_backoff_uses_injected_sleep_only(self):
        slept = []
        p = RetryPolicy(seed=1, base_delay=0.25, sleep=slept.append)
        d = p.backoff(2)
        assert slept == [d] and d >= 0.25
        assert p.backoff(1) == 0.0
        assert slept == [d]  # attempt 1: no sleep call at all


# ------------------------------------------------------------------ #
# circuit breaker state machine
# ------------------------------------------------------------------ #
class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=0.0)

    def test_trips_after_threshold_consecutive_failures(self):
        clk = FakeClock()
        br = CircuitBreaker(failure_threshold=3, reset_timeout=5.0,
                            clock=clk)
        assert br.state == CLOSED
        br.record_failure()
        br.record_failure()
        assert br.state == CLOSED and br.allow()
        br.record_failure()  # third consecutive: trip
        assert br.state == OPEN
        assert not br.allow()
        assert br.trips == 1

    def test_success_resets_the_consecutive_count(self):
        clk = FakeClock()
        br = CircuitBreaker(failure_threshold=2, clock=clk)
        br.record_failure()
        br.record_success()  # interleaved success: streak broken
        br.record_failure()
        assert br.state == CLOSED  # 1 < 2, no trip
        assert br.trips == 0

    def test_check_raises_typed_error_with_retry_after(self):
        clk = FakeClock()
        br = CircuitBreaker(failure_threshold=1, reset_timeout=5.0,
                            clock=clk)
        br.record_failure()
        clk.advance(2.0)
        with pytest.raises(CircuitOpenError) as err:
            br.check()
        assert err.value.retry_after == pytest.approx(3.0)

    def test_half_open_admits_exactly_one_probe(self):
        clk = FakeClock()
        br = CircuitBreaker(failure_threshold=1, reset_timeout=5.0,
                            clock=clk)
        br.record_failure()
        assert not br.allow()
        clk.advance(5.0)  # reset window elapsed
        assert br.state == HALF_OPEN
        assert br.allow()       # the single probe
        assert not br.allow()   # a second concurrent job is refused
        assert br.state == HALF_OPEN

    def test_probe_success_closes(self):
        clk = FakeClock()
        br = CircuitBreaker(failure_threshold=1, reset_timeout=1.0,
                            clock=clk)
        br.record_failure()
        clk.advance(1.0)
        assert br.allow()
        br.record_success()
        assert br.state == CLOSED
        assert br.allow() and br.retry_after() == 0.0
        assert br.trips == 1  # the original trip; closing doesn't add one

    def test_probe_failure_reopens_full_window(self):
        clk = FakeClock()
        br = CircuitBreaker(failure_threshold=2, reset_timeout=4.0,
                            clock=clk)
        br.record_failure()
        br.record_failure()  # trip 1
        clk.advance(4.0)
        assert br.allow()    # probe admitted
        br.record_failure()  # probe failed: immediate re-open (trip 2)
        assert br.state == OPEN
        assert br.trips == 2
        assert br.retry_after() == pytest.approx(4.0)  # full fresh window
        clk.advance(3.9)
        assert not br.allow()
        clk.advance(0.2)
        assert br.allow()  # next probe after the full window

    def test_no_real_clock_involved(self):
        # the whole state machine above ran on the fake clock; verify the
        # breaker never needs wall time by running a full cycle at t=0
        clk = FakeClock()
        br = CircuitBreaker(failure_threshold=1, reset_timeout=0.5,
                            clock=clk)
        br.record_failure()
        clk.advance(0.5)
        assert br.allow()
        br.record_success()
        assert br.state == CLOSED
