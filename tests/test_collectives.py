"""Unit tests for closed-form collective costs."""

import math

import pytest

from repro.machine import (
    CostModel,
    Complete,
    Hypercube,
    Mesh2D,
    Ring,
    allgather_cost,
    allreduce_cost,
    alltoall_cost,
    barrier_cost,
    broadcast_cost,
    gather_cost,
    reduce_cost,
    reduce_scatter_cost,
    scatter_cost,
)

COST = CostModel(t_startup=1e-5, t_comm=1e-8, t_flop=1e-9)

ALL_COLLECTIVES = [
    lambda t: broadcast_cost(t, COST, 100),
    lambda t: reduce_cost(t, COST, 100),
    lambda t: allreduce_cost(t, COST, 100),
    lambda t: allgather_cost(t, COST, 100),
    lambda t: reduce_scatter_cost(t, COST, 100),
    lambda t: gather_cost(t, COST, 100),
    lambda t: scatter_cost(t, COST, 100),
    lambda t: alltoall_cost(t, COST, 100),
    lambda t: barrier_cost(t, COST),
]


class TestDegenerateSingleRank:
    @pytest.mark.parametrize("fn", ALL_COLLECTIVES)
    def test_single_rank_is_free(self, fn):
        c = fn(Hypercube(1))
        assert c.time == 0.0
        assert c.messages == 0
        assert c.words == 0.0


class TestBroadcast:
    def test_hypercube_latency_is_log_p(self):
        c = broadcast_cost(Hypercube(8), COST, 0)
        assert c.time == pytest.approx(3 * COST.t_startup)

    def test_hypercube_message_count(self):
        assert broadcast_cost(Hypercube(8), COST, 10).messages == 7

    def test_ring_slower_than_hypercube(self):
        h = broadcast_cost(Hypercube(16), COST, 100)
        r = broadcast_cost(Ring(16), COST, 100)
        assert r.time > h.time

    def test_grows_with_message_size(self):
        small = broadcast_cost(Hypercube(8), COST, 10)
        big = broadcast_cost(Hypercube(8), COST, 1000)
        assert big.time > small.time

    def test_mesh_between_ring_and_hypercube(self):
        h = broadcast_cost(Hypercube(16), COST, 100).time
        m = broadcast_cost(Mesh2D(4, 4), COST, 100).time
        r = broadcast_cost(Ring(16), COST, 100).time
        assert h <= m <= r


class TestAllreduce:
    def test_hypercube_stages(self):
        c = allreduce_cost(Hypercube(8), COST, 1)
        expected = 3 * (COST.message_time(1) + COST.t_flop)
        assert c.time == pytest.approx(expected)

    def test_monotone_in_p(self):
        times = [allreduce_cost(Hypercube(p), COST, 1).time for p in (2, 4, 8, 16)]
        assert times == sorted(times)

    def test_ring_uses_reduce_scatter_allgather(self):
        c = allreduce_cost(Ring(4), COST, 8)
        assert c.time > 0
        assert c.messages == 2 * 4 * 3


class TestAllgather:
    def test_hypercube_formula(self):
        # log P startups + (P-1) m t_comm
        p, m = 8, 50
        c = allgather_cost(Hypercube(p), COST, m)
        assert c.time == pytest.approx(3 * COST.t_startup + (p - 1) * m * COST.t_comm)

    def test_total_words_scale_with_p(self):
        c4 = allgather_cost(Hypercube(4), COST, 10)
        c8 = allgather_cost(Hypercube(8), COST, 10)
        assert c8.words > c4.words

    def test_ring_message_count(self):
        assert allgather_cost(Ring(5), COST, 10).messages == 5 * 4


class TestReduceScatter:
    def test_words_move_once_per_nonresident_block(self):
        p, n = 4, 100
        c = reduce_scatter_cost(Hypercube(p), COST, n)
        assert c.words == pytest.approx((p - 1) * n)

    def test_time_includes_flops(self):
        free_flops = CostModel(t_startup=0, t_comm=0, t_flop=1e-9)
        c = reduce_scatter_cost(Hypercube(4), free_flops, 100)
        assert c.time > 0


class TestGatherScatterSymmetry:
    def test_scatter_equals_gather(self):
        g = gather_cost(Hypercube(8), COST, 25)
        s = scatter_cost(Hypercube(8), COST, 25)
        assert g == s

    def test_gather_words(self):
        c = gather_cost(Hypercube(8), COST, 25)
        assert c.words == pytest.approx(7 * 25)


class TestAlltoall:
    def test_hypercube_pairwise_exchange(self):
        c = alltoall_cost(Hypercube(8), COST, 10)
        assert c.messages == 3 * 8

    def test_generic_rounds(self):
        c = alltoall_cost(Ring(5), COST, 10)
        assert c.messages == 5 * 4


class TestCollectiveCostAlgebra:
    def test_addition(self):
        a = broadcast_cost(Hypercube(4), COST, 10)
        b = reduce_cost(Hypercube(4), COST, 10)
        s = a + b
        assert s.time == pytest.approx(a.time + b.time)
        assert s.messages == a.messages + b.messages
        assert s.words == pytest.approx(a.words + b.words)
