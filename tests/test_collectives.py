"""Unit tests for closed-form collective costs."""

import math

import pytest

from repro.machine import (
    CostModel,
    Complete,
    Hypercube,
    Mesh2D,
    Ring,
    allgather_cost,
    allreduce_cost,
    alltoall_cost,
    barrier_cost,
    broadcast_cost,
    gather_cost,
    reduce_cost,
    reduce_scatter_cost,
    scatter_cost,
)

COST = CostModel(t_startup=1e-5, t_comm=1e-8, t_flop=1e-9)

ALL_COLLECTIVES = [
    lambda t: broadcast_cost(t, COST, 100),
    lambda t: reduce_cost(t, COST, 100),
    lambda t: allreduce_cost(t, COST, 100),
    lambda t: allgather_cost(t, COST, 100),
    lambda t: reduce_scatter_cost(t, COST, 100),
    lambda t: gather_cost(t, COST, 100),
    lambda t: scatter_cost(t, COST, 100),
    lambda t: alltoall_cost(t, COST, 100),
    lambda t: barrier_cost(t, COST),
]


class TestDegenerateSingleRank:
    @pytest.mark.parametrize("fn", ALL_COLLECTIVES)
    def test_single_rank_is_free(self, fn):
        c = fn(Hypercube(1))
        assert c.time == 0.0
        assert c.messages == 0
        assert c.words == 0.0


class TestBroadcast:
    def test_hypercube_latency_is_log_p(self):
        c = broadcast_cost(Hypercube(8), COST, 0)
        assert c.time == pytest.approx(3 * COST.t_startup)

    def test_hypercube_message_count(self):
        assert broadcast_cost(Hypercube(8), COST, 10).messages == 7

    def test_ring_slower_than_hypercube(self):
        h = broadcast_cost(Hypercube(16), COST, 100)
        r = broadcast_cost(Ring(16), COST, 100)
        assert r.time > h.time

    def test_grows_with_message_size(self):
        small = broadcast_cost(Hypercube(8), COST, 10)
        big = broadcast_cost(Hypercube(8), COST, 1000)
        assert big.time > small.time

    def test_mesh_between_ring_and_hypercube(self):
        h = broadcast_cost(Hypercube(16), COST, 100).time
        m = broadcast_cost(Mesh2D(4, 4), COST, 100).time
        r = broadcast_cost(Ring(16), COST, 100).time
        assert h <= m <= r


class TestAllreduce:
    def test_hypercube_stages(self):
        c = allreduce_cost(Hypercube(8), COST, 1)
        expected = 3 * (COST.message_time(1) + COST.t_flop)
        assert c.time == pytest.approx(expected)

    def test_monotone_in_p(self):
        times = [allreduce_cost(Hypercube(p), COST, 1).time for p in (2, 4, 8, 16)]
        assert times == sorted(times)

    def test_ring_uses_reduce_scatter_allgather(self):
        c = allreduce_cost(Ring(4), COST, 8)
        assert c.time > 0
        assert c.messages == 2 * 4 * 3


class TestAllgather:
    def test_hypercube_formula(self):
        # log P startups + (P-1) m t_comm
        p, m = 8, 50
        c = allgather_cost(Hypercube(p), COST, m)
        assert c.time == pytest.approx(3 * COST.t_startup + (p - 1) * m * COST.t_comm)

    def test_total_words_scale_with_p(self):
        c4 = allgather_cost(Hypercube(4), COST, 10)
        c8 = allgather_cost(Hypercube(8), COST, 10)
        assert c8.words > c4.words

    def test_ring_message_count(self):
        assert allgather_cost(Ring(5), COST, 10).messages == 5 * 4


class TestReduceScatter:
    def test_words_move_once_per_nonresident_block(self):
        p, n = 4, 100
        c = reduce_scatter_cost(Hypercube(p), COST, n)
        assert c.words == pytest.approx((p - 1) * n)

    def test_time_includes_flops(self):
        free_flops = CostModel(t_startup=0, t_comm=0, t_flop=1e-9)
        c = reduce_scatter_cost(Hypercube(4), free_flops, 100)
        assert c.time > 0


class TestGatherScatterSymmetry:
    def test_scatter_equals_gather(self):
        g = gather_cost(Hypercube(8), COST, 25)
        s = scatter_cost(Hypercube(8), COST, 25)
        assert g == s

    def test_gather_words(self):
        c = gather_cost(Hypercube(8), COST, 25)
        assert c.words == pytest.approx(7 * 25)


class TestAlltoall:
    def test_hypercube_pairwise_exchange(self):
        c = alltoall_cost(Hypercube(8), COST, 10)
        assert c.messages == 3 * 8

    def test_generic_rounds(self):
        c = alltoall_cost(Ring(5), COST, 10)
        assert c.messages == 5 * 4


class TestCollectiveCostAlgebra:
    def test_addition(self):
        a = broadcast_cost(Hypercube(4), COST, 10)
        b = reduce_cost(Hypercube(4), COST, 10)
        s = a + b
        assert s.time == pytest.approx(a.time + b.time)
        assert s.messages == a.messages + b.messages
        assert s.words == pytest.approx(a.words + b.words)


class TestNonPowerOfTwoAllreduce:
    """The fold-based allreduce pricing (collective-cost accounting fix)."""

    @pytest.mark.parametrize("p", [3, 5, 6, 7, 12])
    def test_fold_based_message_count(self, p):
        c = 1 << (p.bit_length() - 1)
        f = p - c
        k = c.bit_length() - 1
        got = allreduce_cost(Complete(p), COST, 4.0)
        assert got.messages == 2 * f + k * c
        # the naive ceil(log2 p) * p count overprices every such machine
        assert got.messages < math.ceil(math.log2(p)) * p

    @pytest.mark.parametrize("p", [2, 4, 8, 16])
    def test_power_of_two_is_textbook(self, p):
        got = allreduce_cost(Complete(p), COST, 4.0)
        assert got.messages == p * int(math.log2(p))

    def test_six_ranks_twelve_messages(self):
        # the motivating example: 4 core ranks x 2 stages + 2 fold + 2
        # unfold = 12, where the naive count priced 18
        assert allreduce_cost(Complete(6), COST, 1.0).messages == 12

    @pytest.mark.parametrize("p", [3, 5, 6, 7, 12])
    def test_matches_counted_scheduler_run(self, p):
        from repro.machine import Machine, run_spmd, spmd

        m = Machine(p, "complete")

        def prog(rank, nprocs):
            out = yield from spmd.allreduce_doubling(rank, nprocs, 1.0)
            return out

        run_spmd(m, prog)
        assert m.stats.total_messages == allreduce_cost(
            Complete(p), COST, 1.0).messages


class TestMesh2DAllgatherScaling:
    """The Mesh2D allgather fix: totals scale with ALL ranks, not groups."""

    @pytest.mark.parametrize("rows,cols", [(2, 2), (2, 3), (3, 2), (3, 4)])
    def test_whole_machine_message_total(self, rows, cols):
        p = rows * cols
        got = allgather_cost(Mesh2D(rows, cols), COST, 1.0)
        L = lambda q: (q - 1).bit_length() if q > 1 else 0
        assert got.messages == p * (L(cols) + L(rows))

    @pytest.mark.parametrize("rows,cols", [(2, 3), (3, 4)])
    def test_matches_counted_grid_allgather(self, rows, cols):
        from repro.machine import Machine, run_spmd, spmd

        p = rows * cols
        m = Machine(p, "complete")

        def prog(rank, nprocs):
            out = yield from spmd.allgather_grid(
                rank, nprocs, rank, rows, cols)
            return out

        run_spmd(m, prog)
        assert m.stats.total_messages == allgather_cost(
            Mesh2D(rows, cols), COST, 1.0).messages
