"""Tests for the HPF-2 SHADOW halo-exchange strategy."""

import numpy as np
import pytest

from repro.core import CsrHalo, StoppingCriterion, hpf_bicg, hpf_cg, make_strategy
from repro.machine import Machine
from repro.sparse import (
    irregular_powerlaw,
    nonsymmetric_diag_dominant,
    poisson1d,
    poisson2d,
    rhs_for_solution,
)

CRIT = StoppingCriterion(rtol=1e-10)


class TestNumerics:
    @pytest.mark.parametrize("nprocs,topology", [(1, "hypercube"), (3, "ring"),
                                                 (4, "hypercube"), (8, "hypercube")])
    def test_forward_product(self, nprocs, topology, spd_small, rng):
        m = Machine(nprocs=nprocs, topology=topology)
        strat = CsrHalo(m, spd_small)
        pv = rng.standard_normal(spd_small.nrows)
        p, q = strat.make_vector("p", pv), strat.make_vector("q")
        strat.apply(p, q)
        assert np.allclose(q.to_global(), spd_small.matvec(pv))

    def test_transpose_product(self, rng):
        A = nonsymmetric_diag_dominant(40, seed=1)
        m = Machine(nprocs=4)
        strat = CsrHalo(m, A)
        xv = rng.standard_normal(40)
        x, y = strat.make_vector("x", xv), strat.make_vector("y")
        strat.apply_transpose(x, y)
        assert np.allclose(y.to_global(), A.rmatvec(xv))

    def test_cg_solve(self, spd_medium, rng):
        xt = rng.standard_normal(spd_medium.nrows)
        b = rhs_for_solution(spd_medium, xt)
        m = Machine(nprocs=8)
        res = hpf_cg(CsrHalo(m, spd_medium), b, criterion=CRIT)
        assert res.converged
        assert np.allclose(res.x, xt, atol=1e-6)

    def test_bicg_solve(self, rng):
        A = nonsymmetric_diag_dominant(48, seed=2)
        xt = rng.standard_normal(48)
        b = rhs_for_solution(A, xt)
        m = Machine(nprocs=4)
        res = hpf_bicg(CsrHalo(m, A), b, criterion=StoppingCriterion(rtol=1e-10, maxiter=500))
        assert res.converged
        assert np.allclose(res.x, xt, atol=1e-5)

    def test_registry_name(self, spd_small):
        m = Machine(nprocs=4)
        assert isinstance(make_strategy("csr_halo", m, spd_small), CsrHalo)


class TestHaloStructure:
    def test_single_rank_no_halo(self, spd_small):
        strat = CsrHalo(Machine(nprocs=1), spd_small)
        assert strat.halo_words_total() == 0.0
        assert strat.halo_pairs() == 0

    def test_tridiagonal_needs_one_element_per_neighbor(self):
        A = poisson1d(32)
        strat = CsrHalo(Machine(nprocs=4), A)
        # interior ranks read exactly 1 element from each side
        assert strat.halo_words_total() == 6.0  # 3 boundaries x 2 directions
        assert strat.halo_pairs() == 6

    def test_stencil_shadow_much_smaller_than_vector(self):
        A = poisson2d(16, 16)
        strat = CsrHalo(Machine(nprocs=8), A)
        assert strat.shadow_fraction() < 0.2

    def test_irregular_matrix_shadow_grows(self):
        A = irregular_powerlaw(256, seed=3)
        stencil = CsrHalo(Machine(nprocs=8), poisson2d(16, 16))
        irregular = CsrHalo(Machine(nprocs=8), A)
        assert irregular.shadow_fraction() > stencil.shadow_fraction()

    def test_halo_comm_cheaper_than_broadcast_on_stencil(self, rng):
        A = poisson2d(16, 16)
        pv = rng.standard_normal(256)
        m_halo = Machine(nprocs=8)
        halo = CsrHalo(m_halo, A)
        halo.apply(halo.make_vector("p", pv), halo.make_vector("q"))
        m_bcast = Machine(nprocs=8)
        bcast = make_strategy("csr_forall_aligned", m_bcast, A)
        bcast.apply(bcast.make_vector("p", pv), bcast.make_vector("q"))
        assert m_halo.stats.total_words < m_bcast.stats.total_words / 4
        assert m_halo.elapsed() < m_bcast.elapsed()

    def test_halo_recorded_as_own_op(self, spd_small, rng):
        m = Machine(nprocs=4)
        strat = CsrHalo(m, spd_small)
        strat.apply(strat.make_vector("p", rng.standard_normal(36)),
                    strat.make_vector("q"))
        assert "halo" in m.stats.by_op()

    def test_storage_includes_shadow_buffer(self, spd_small):
        strat = CsrHalo(Machine(nprocs=4), spd_small)
        base = make_strategy("csr_forall_aligned", Machine(nprocs=4), spd_small)
        # halo storage = CSR arrays + pointer + shadow; always >= some words
        assert (strat.storage_words_per_rank() > 0).all()
