"""Tests for the 2-D checkerboard dense strategy."""

import numpy as np
import pytest

from repro.core import (
    DenseCheckerboard,
    RowBlockDense,
    StoppingCriterion,
    hpf_bicg,
    hpf_cg,
    make_strategy,
)
from repro.machine import Machine
from repro.sparse import nonsymmetric_diag_dominant, poisson2d, rhs_for_solution

CRIT = StoppingCriterion(rtol=1e-10)


class TestNumerics:
    @pytest.mark.parametrize("nprocs", [1, 4, 9, 16])
    def test_forward_product(self, nprocs, spd_small, rng):
        m = Machine(nprocs=nprocs, topology="complete")
        strat = DenseCheckerboard(m, spd_small)
        pv = rng.standard_normal(spd_small.nrows)
        p, q = strat.make_vector("p", pv), strat.make_vector("q")
        strat.apply(p, q)
        assert np.allclose(q.to_global(), spd_small.matvec(pv))

    def test_transpose_product(self, rng):
        A = nonsymmetric_diag_dominant(50, seed=1)
        m = Machine(nprocs=4)
        strat = DenseCheckerboard(m, A)
        xv = rng.standard_normal(50)
        x, y = strat.make_vector("x", xv), strat.make_vector("y")
        strat.apply_transpose(x, y)
        assert np.allclose(y.to_global(), A.rmatvec(xv))

    def test_cg_solve(self, spd_medium, rng):
        xt = rng.standard_normal(spd_medium.nrows)
        b = rhs_for_solution(spd_medium, xt)
        m = Machine(nprocs=4)
        res = hpf_cg(DenseCheckerboard(m, spd_medium), b, criterion=CRIT)
        assert res.converged
        assert np.allclose(res.x, xt, atol=1e-6)

    def test_bicg_solve(self, rng):
        A = nonsymmetric_diag_dominant(36, seed=4)
        xt = rng.standard_normal(36)
        b = rhs_for_solution(A, xt)
        m = Machine(nprocs=9, topology="ring")
        res = hpf_bicg(DenseCheckerboard(m, A), b,
                       criterion=StoppingCriterion(rtol=1e-10, maxiter=400))
        assert res.converged
        assert np.allclose(res.x, xt, atol=1e-5)

    def test_registry(self, spd_small):
        m = Machine(nprocs=4)
        assert isinstance(
            make_strategy("dense_checkerboard", m, spd_small), DenseCheckerboard
        )


class TestGridRequirements:
    def test_non_square_rejected(self, spd_small):
        with pytest.raises(ValueError):
            DenseCheckerboard(Machine(nprocs=8), spd_small)

    def test_uneven_n_still_works(self, rng):
        A = nonsymmetric_diag_dominant(37, seed=5)  # 37 not divisible by 3
        m = Machine(nprocs=9, topology="ring")
        strat = DenseCheckerboard(m, A)
        pv = rng.standard_normal(37)
        p, q = strat.make_vector("p", pv), strat.make_vector("q")
        strat.apply(p, q)
        assert np.allclose(q.to_global(), A.matvec(pv))


class TestCommunicationShape:
    def test_less_total_traffic_than_stripes(self, rng):
        """The [17] result: checkerboard beats 1-D stripes in volume."""
        A = poisson2d(16, 16)
        pv = rng.standard_normal(256)
        m1 = Machine(nprocs=16)
        s1 = RowBlockDense(m1, A)
        s1.apply(s1.make_vector("p", pv), s1.make_vector("q"))
        m2 = Machine(nprocs=16, topology="complete")
        s2 = DenseCheckerboard(m2, A)
        s2.apply(s2.make_vector("p", pv), s2.make_vector("q"))
        assert m2.stats.total_words < m1.stats.total_words

    def test_per_rank_words_scale_as_inverse_sqrt_p(self, spd_medium):
        w4 = DenseCheckerboard(
            Machine(nprocs=4), spd_medium
        ).comm_words_received_per_rank()
        w16 = DenseCheckerboard(
            Machine(nprocs=16), spd_medium
        ).comm_words_received_per_rank()
        assert w16 == pytest.approx(w4 / 2, rel=0.1)  # q doubles -> halves

    def test_grid_ops_recorded(self, spd_small, rng):
        m = Machine(nprocs=4)
        strat = DenseCheckerboard(m, spd_small)
        strat.apply(strat.make_vector("p", rng.standard_normal(36)),
                    strat.make_vector("q"))
        ops = m.stats.by_op()
        assert "grid_bcast" in ops
        assert "grid_reduce" in ops

    def test_single_rank_no_comm(self, spd_small, rng):
        m = Machine(nprocs=1)
        strat = DenseCheckerboard(m, spd_small)
        strat.apply(strat.make_vector("p", rng.standard_normal(36)),
                    strat.make_vector("q"))
        assert m.stats.total_messages == 0

    def test_storage_is_block_squared(self, spd_medium):
        strat = DenseCheckerboard(Machine(nprocs=4), spd_medium)
        n = spd_medium.nrows
        expected = (-(-n // 2)) ** 2  # ceil(n/2)^2 for the top-left block
        assert strat.storage_words_per_rank()[0] == expected
