"""Property tests: online REDISTRIBUTE preserves global contents exactly.

The degraded-mode shrink path (DESIGN.md §9) re-slices every CG operand
from the failed layout onto the survivors' layout.  The contract it leans
on is proved here by hypothesis: for *any* layout pair drawn from
``BLOCK``, ``CYCLIC`` and ``(ATOM: BLOCK)`` and *any* non-empty survivor
subset, redistribution reassembles the exact global vector / CSR rows --
bitwise, not to tolerance, because the remap is pure data movement.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.extensions import IndivisableSpec, atom_block
from repro.hpf import Block, Cyclic
from repro.hpf.distribution import (
    SOURCE_LOST,
    RedistributionPlan,
    redistribute_csr,
    redistribute_vector,
    vector_blocks,
)
from repro.sparse import poisson1d

SLOW = settings(
    deadline=None,
    max_examples=40,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def layouts(draw, n: int, nprocs: int = None):
    """One distribution of ``n`` elements: BLOCK, CYCLIC or (ATOM: BLOCK)."""
    p = nprocs if nprocs is not None else draw(st.integers(1, 6))
    kind = draw(st.sampled_from(["block", "cyclic", "atom_block"]))
    if kind == "block":
        return Block(n, p)
    if kind == "cyclic":
        return Cyclic(n, p)
    # random monotone pointer: atoms of irregular size covering 0..n
    n_atoms = draw(st.integers(min_value=1, max_value=max(1, n)))
    interior = draw(
        st.lists(st.integers(0, n), min_size=n_atoms - 1, max_size=n_atoms - 1)
    )
    pointer = np.array([0] + sorted(interior) + [n], dtype=np.int64)
    dist, _ = atom_block(IndivisableSpec(pointer), p)
    return dist


@st.composite
def redistribution_cases(draw):
    n = draw(st.integers(min_value=1, max_value=48))
    old = draw(layouts(n))
    new = draw(layouts(n))
    survivors = draw(
        st.lists(
            st.integers(0, old.nprocs - 1),
            min_size=1,
            max_size=old.nprocs,
            unique=True,
        )
    )
    return old, new, sorted(survivors)


@given(redistribution_cases())
@SLOW
def test_vector_redistribution_is_exact(case):
    old, new, survivors = case
    rng = np.random.default_rng(old.n * 131 + old.nprocs)
    x = rng.standard_normal(old.n)
    blocks = vector_blocks(x, old)
    new_blocks = redistribute_vector(blocks, old, new, survivors=survivors)
    assert len(new_blocks) == new.nprocs
    rebuilt = np.empty(old.n)
    for r in range(new.nprocs):
        idx = new.local_indices(r)
        assert new_blocks[r].shape == idx.shape
        rebuilt[idx] = new_blocks[r]
    assert np.array_equal(rebuilt, x)  # bitwise: pure data movement


@given(redistribution_cases())
@SLOW
def test_csr_redistribution_is_exact(case):
    old, new, _ = case
    A = poisson1d(max(old.n, 1))
    csr = A.to_csr()
    parts = redistribute_csr(csr.indptr, csr.indices, csr.data, old, new)
    assert len(parts) == new.nprocs
    seen_rows = []
    for r, (indptr, indices, data, row_ids) in enumerate(parts):
        expect_rows = new.local_indices(r)
        assert np.array_equal(row_ids, expect_rows)
        assert indptr.shape == (len(row_ids) + 1,)
        for i, g in enumerate(row_ids):
            lo, hi = indptr[i], indptr[i + 1]
            glo, ghi = csr.indptr[g], csr.indptr[g + 1]
            assert np.array_equal(indices[lo:hi], csr.indices[glo:ghi])
            assert np.array_equal(data[lo:hi], csr.data[glo:ghi])
        seen_rows.extend(row_ids.tolist())
    assert sorted(seen_rows) == list(range(old.n))


@st.composite
def plan_cases(draw):
    """Shrink-shaped cases: new layout sized to the survivor subset."""
    n = draw(st.integers(min_value=1, max_value=48))
    old = draw(layouts(n))
    survivors = sorted(
        draw(
            st.lists(
                st.integers(0, old.nprocs - 1),
                min_size=1,
                max_size=old.nprocs,
                unique=True,
            )
        )
    )
    new = draw(layouts(n, nprocs=len(survivors)))
    return old, new, survivors


@given(plan_cases())
@SLOW
def test_plan_accounts_for_every_element(case):
    """The exchange plan's word accounting covers the full index space."""
    old, new, survivors = case
    plan = RedistributionPlan(old, new, survivors=survivors)
    moved = sum(m.words for m in plan.messages)
    # every element is either exchanged or already in place; lost-rank
    # words are a subset of the exchanged ones (restored from checkpoint)
    assert moved + plan.in_place_words == old.n
    assert plan.lost_words == sum(
        m.words for m in plan.messages if m.src == SOURCE_LOST
    )
    for m in plan.messages:
        assert m.dst in range(new.nprocs)
        assert m.words > 0
