"""Geometric multigrid preconditioner: V-cycle, hierarchy, CG coupling."""

import numpy as np
import pytest

from repro.core import (
    JacobiPreconditioner,
    StoppingCriterion,
    hpf_pcg,
    make_strategy,
    pcg_reference,
)
from repro.hpcg import MultigridPreconditioner, hpcg_solve
from repro.machine import Machine
from repro.sparse import rhs_for_solution, stencil27

CRIT = StoppingCriterion(rtol=1e-8, maxiter=500)


@pytest.fixture(scope="module")
def fine():
    return stencil27(8)


@pytest.fixture(scope="module")
def mg(fine):
    return MultigridPreconditioner(fine, (8, 8, 8))


class TestHierarchy:
    def test_depth_from_cube(self, mg):
        # 8 -> 4 -> 2: coarsening stops when a dim would drop below 4's half
        assert mg.depth == 3
        assert [lvl.shape for lvl in mg.levels] == [
            (8, 8, 8), (4, 4, 4), (2, 2, 2)]

    def test_depth_cap(self, fine):
        shallow = MultigridPreconditioner(fine, (8, 8, 8), max_levels=2)
        assert shallow.depth == 2

    def test_odd_dims_stay_single_level(self):
        a = stencil27(5)
        assert MultigridPreconditioner(a, (5, 5, 5)).depth == 1

    def test_flops_per_apply_positive_and_dominated_by_fine(self, mg, fine):
        assert mg.flops_per_apply > 0
        # fine-level work alone (two smooths at 2*nnz + n each) dominates
        assert mg.flops_per_apply > 2 * (2.0 * fine.nnz + fine.nrows)

    def test_shape_mismatch_rejected(self, fine):
        with pytest.raises(ValueError, match="rows"):
            MultigridPreconditioner(fine, (4, 4, 4))

    def test_name_and_serial(self, mg):
        assert mg.name == "mg"
        assert not mg.parallel


class TestVCycle:
    def test_one_apply_reduces_residual(self, mg, fine, rng):
        b = rng.standard_normal(fine.nrows)
        x = mg.solve(b)
        assert np.linalg.norm(b - fine @ x) < 0.5 * np.linalg.norm(b)

    def test_spd_apply(self, mg, fine, rng):
        """M^{-1} acts like an SPD operator: r^T M^{-1} r > 0."""
        for _ in range(5):
            r = rng.standard_normal(fine.nrows)
            assert float(r @ mg.solve(r)) > 0.0

    def test_zero_maps_to_zero(self, mg, fine):
        np.testing.assert_array_equal(
            mg.solve(np.zeros(fine.nrows)), np.zeros(fine.nrows))


class TestMgAcceleratesCg:
    def test_fewer_iterations_than_jacobi_reference(self, fine, mg, rng):
        xt = rng.standard_normal(fine.nrows)
        b = rhs_for_solution(fine, xt)
        res_mg = pcg_reference(fine, b, mg, criterion=CRIT)
        res_j = pcg_reference(
            fine, b, JacobiPreconditioner(fine), criterion=CRIT)
        assert res_mg.converged and res_j.converged
        assert res_mg.iterations < res_j.iterations
        assert np.allclose(res_mg.x, xt, atol=1e-5)

    def test_plugs_into_hpf_pcg(self, fine, mg, rng):
        """MG rides hpf_pcg like SSOR: serialised charging, full convergence."""
        xt = rng.standard_normal(fine.nrows)
        b = rhs_for_solution(fine, xt)
        m = Machine(nprocs=4)
        res = hpf_pcg(
            make_strategy("csr_forall_aligned", m, fine), b, mg,
            criterion=CRIT)
        assert res.converged
        assert np.allclose(res.x, xt, atol=1e-5)
        assert res.extras["preconditioner"] == "mg"

    @pytest.mark.parametrize("p", [1, 4])
    def test_hpcg_solve_mg_beats_jacobi(self, p):
        res_mg = hpcg_solve(8, nprocs=p, precond="mg")
        res_j = hpcg_solve(8, nprocs=p, precond="jacobi")
        assert res_mg.converged and res_j.converged
        assert res_mg.iterations < res_j.iterations
        assert res_mg.extras["hpcg"]["mg_depth"] == 3
        assert res_mg.extras["hpcg"]["mg_flops_per_apply"] > 0
