"""Tests for FORALL semantics and INDEPENDENT/Bernstein checking (Section 5.1)."""

import numpy as np
import pytest

from repro.hpf import (
    AccessLog,
    BernsteinViolationError,
    DistributedArray,
    ManyToOneAssignmentError,
    RecordingArray,
    check_independent,
    forall,
    forall_indexed,
    independent_do,
)
from repro.sparse import figure1_matrix


class TestForall:
    def test_simple_assignment(self, machine4):
        out = DistributedArray(machine4, 8)
        forall(out, lambda j: float(j * j))
        assert np.allclose(out.to_global(), np.arange(8.0) ** 2)

    def test_rhs_evaluated_before_assignment(self, machine4):
        """FORALL(j) a(j) = a(n-1-j) must use the OLD values throughout."""
        out = DistributedArray.from_global(machine4, np.arange(8.0))
        forall(out, lambda j: float(out.to_global()[7 - j]))
        # with RHS-first semantics this is a clean reversal, not a partial one
        assert np.allclose(out.to_global(), np.arange(8.0)[::-1])

    def test_figure2_sparse_matvec_as_forall(self, machine4):
        """The paper's FORALL + inner DO sparse mat-vec is legal and correct."""
        A = figure1_matrix()
        p = np.arange(1.0, 7.0)
        q = DistributedArray(machine4, 6)
        indptr, indices, data = A.indptr, A.indices, A.data

        def body(j):
            acc = 0.0
            for k in range(indptr[j], indptr[j + 1]):
                acc += data[k] * p[indices[k]]
            return acc

        forall(q, body, flops_per_iteration=lambda j: 2.0 * (indptr[j + 1] - indptr[j]))
        assert np.allclose(q.to_global(), A.matvec(p))

    def test_owner_computes_charging(self, machine4):
        out = DistributedArray(machine4, 8)
        forall(out, lambda j: 1.0, flops_per_iteration=10.0)
        assert machine4.stats.flops_per_rank.tolist() == [20.0, 20.0, 20.0, 20.0]


class TestForallIndexed:
    def test_distinct_targets_ok(self, machine4):
        out = DistributedArray(machine4, 8)
        forall_indexed(out, range(8), target=lambda k: 7 - k, value=lambda k: float(k))
        assert np.allclose(out.to_global(), np.arange(8.0)[::-1])

    def test_many_to_one_raises(self, machine4):
        """The CSC scatter loop cannot be a FORALL (Section 5.1)."""
        A = figure1_matrix().to_csc()
        out = DistributedArray(machine4, 6)
        with pytest.raises(ManyToOneAssignmentError):
            forall_indexed(
                out,
                range(A.nnz),
                target=lambda k: int(A.indices[k]),
                value=lambda k: float(A.data[k]),
            )

    def test_combine_plus_simulates_extension(self, machine4):
        """With the (illegal in HPF-1) combine option, the scatter works --
        showing what the PRIVATE/MERGE extension buys."""
        A = figure1_matrix().to_csc()
        p = np.arange(1.0, 7.0)
        out = DistributedArray(machine4, 6)
        cols = A.expanded_cols()
        forall_indexed(
            out,
            range(A.nnz),
            target=lambda k: int(A.indices[k]),
            value=lambda k: float(A.data[k] * p[cols[k]]),
            combine="+",
        )
        assert np.allclose(out.to_global(), A.matvec(p))

    def test_unknown_combine_rejected(self, machine4):
        out = DistributedArray(machine4, 4)
        with pytest.raises(ValueError):
            forall_indexed(
                out, range(4), target=lambda k: 0, value=lambda k: 1.0, combine="*"
            )

    def test_empty_iteration_space(self, machine4):
        out = DistributedArray(machine4, 4, fill=3.0)
        forall_indexed(out, [], target=lambda k: k, value=lambda k: 0.0)
        assert (out.to_global() == 3.0).all()


class TestRecordingArray:
    def test_reads_and_writes_logged(self):
        log = AccessLog()
        arr = RecordingArray("a", np.arange(5.0), log)
        _ = arr[2]
        arr[3] = 9.0
        assert log.reads == {"a": {2}}
        assert log.writes == {"a": {3}}
        assert arr.data[3] == 9.0
        assert len(arr) == 5


class TestBernstein:
    def test_disjoint_iterations_pass(self):
        logs = []
        for i in range(4):
            log = AccessLog()
            log.record_read("a", i)
            log.record_write("q", i)
            logs.append(log)
        check_independent(logs)  # no raise

    def test_write_write_conflict(self):
        l1, l2 = AccessLog(), AccessLog()
        l1.record_write("q", 3)
        l2.record_write("q", 3)
        with pytest.raises(BernsteinViolationError, match="write-after-write"):
            check_independent([l1, l2])

    def test_read_write_conflict(self):
        l1, l2 = AccessLog(), AccessLog()
        l1.record_write("q", 3)
        l2.record_read("q", 3)
        with pytest.raises(BernsteinViolationError, match="read-write"):
            check_independent([l1, l2])

    def test_same_iteration_self_conflict_ok(self):
        log = AccessLog()
        log.record_read("q", 1)
        log.record_write("q", 1)
        check_independent([log])  # within one iteration is fine

    def test_shared_read_only_ok(self):
        logs = []
        for i in range(3):
            log = AccessLog()
            log.record_read("p", 0)  # everyone reads p(0)
            log.record_write("q", i)
            logs.append(log)
        check_independent(logs)


class TestIndependentDo:
    def test_csc_scatter_rejected(self):
        """The paper's exact argument: write-after-write on q(row(k))."""
        A = figure1_matrix().to_csc()
        arrays = {
            "q": np.zeros(6),
            "a": A.data.astype(float),
            "row": A.indices.astype(float),
        }

        def body(k, q, a, row):
            q[int(row[k])] = q[int(row[k])] + a[k]

        with pytest.raises(BernsteinViolationError):
            independent_do(range(A.nnz), body, arrays)

    def test_legal_loop_executes(self):
        arrays = {"q": np.zeros(6), "a": np.arange(6.0)}

        def body(j, q, a):
            q[j] = 2.0 * a[j]

        independent_do(range(6), body, arrays)
        assert np.allclose(arrays["q"], 2.0 * np.arange(6))

    def test_rejected_loop_leaves_data_untouched(self):
        arrays = {"q": np.zeros(3)}

        def body(j, q):
            q[0] = q[0] + 1.0

        with pytest.raises(BernsteinViolationError):
            independent_do(range(3), body, arrays)
        assert (arrays["q"] == 0.0).all()  # trace ran on scratch copies
