"""Tests for the sequential reference solvers against scipy and known answers."""

import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro.core import (
    JacobiPreconditioner,
    StoppingCriterion,
    bicg_reference,
    bicgstab_reference,
    cg_reference,
    cgs_reference,
    gaussian_elimination,
    pcg_reference,
)
from repro.sparse import (
    convection_diffusion_1d,
    matrix_with_eigenvalues,
    poisson2d,
    rhs_for_solution,
)

TIGHT = StoppingCriterion(rtol=1e-12, maxiter=2000)


class TestCgReference:
    def test_matches_manufactured_solution(self, spd_family_matrix, rng):
        A = spd_family_matrix
        xt = rng.standard_normal(A.nrows)
        b = rhs_for_solution(A, xt)
        res = cg_reference(A, b, criterion=TIGHT)
        assert res.converged
        assert np.allclose(res.x, xt, atol=1e-6 * max(1.0, np.abs(xt).max()))

    def test_matches_scipy(self, spd_medium, rng):
        b = rng.standard_normal(spd_medium.nrows)
        ours = cg_reference(spd_medium, b, criterion=TIGHT)
        theirs, info = spla.cg(spd_medium.to_scipy(), b, rtol=1e-12, atol=0.0)
        assert info == 0
        assert np.allclose(ours.x, theirs, atol=1e-6)

    def test_zero_rhs_converges_immediately(self, spd_small):
        res = cg_reference(spd_small, np.zeros(spd_small.nrows))
        assert res.converged
        assert res.iterations == 0

    def test_nonzero_initial_guess(self, spd_small, rng):
        xt = rng.standard_normal(spd_small.nrows)
        b = rhs_for_solution(spd_small, xt)
        res = cg_reference(spd_small, b, x0=xt.copy(), criterion=TIGHT)
        assert res.converged
        assert res.iterations == 0

    def test_history_monotone_overall(self, spd_medium, rng):
        b = rng.standard_normal(spd_medium.nrows)
        res = cg_reference(spd_medium, b, criterion=TIGHT)
        h = res.history.residual_norms
        assert h[-1] < h[0] * 1e-10

    def test_residual_consistent_with_x(self, spd_small, rng):
        b = rng.standard_normal(spd_small.nrows)
        res = cg_reference(spd_small, b, criterion=TIGHT)
        true_res = np.linalg.norm(b - spd_small.matvec(res.x))
        assert true_res == pytest.approx(res.final_residual, abs=1e-8)

    def test_shape_validation(self, spd_small):
        with pytest.raises(ValueError):
            cg_reference(spd_small, np.zeros(5))

    def test_distinct_eigenvalue_bound(self):
        """Section 2.1: CG converges in at most n_e iterations."""
        for k in (2, 3, 5):
            eigs = np.repeat(np.arange(1.0, k + 1.0), 20 // k + 1)[:20]
            A = matrix_with_eigenvalues(eigs, seed=k)
            b = np.ones(20)
            res = cg_reference(A, b, criterion=StoppingCriterion(rtol=1e-9))
            assert res.converged
            assert res.iterations <= k + 1  # + rounding slack


class TestPcgReference:
    def test_jacobi_matches_solution(self, spd_medium, rng):
        xt = rng.standard_normal(spd_medium.nrows)
        b = rhs_for_solution(spd_medium, xt)
        res = pcg_reference(spd_medium, b, JacobiPreconditioner(spd_medium), criterion=TIGHT)
        assert res.converged
        assert np.allclose(res.x, xt, atol=1e-6)

    def test_zero_rhs(self, spd_small):
        res = pcg_reference(
            spd_small, np.zeros(spd_small.nrows), JacobiPreconditioner(spd_small)
        )
        assert res.converged and res.iterations == 0


class TestNonsymmetricFamily:
    @pytest.mark.parametrize("solver", [bicg_reference, cgs_reference, bicgstab_reference])
    def test_solves_convection_diffusion(self, solver, rng):
        A = convection_diffusion_1d(50, peclet=0.4)
        xt = rng.standard_normal(50)
        b = rhs_for_solution(A, xt)
        res = solver(A, b, criterion=StoppingCriterion(rtol=1e-11, maxiter=1000))
        assert res.converged, solver.__name__
        assert np.allclose(res.x, xt, atol=1e-5), solver.__name__

    @pytest.mark.parametrize("solver", [bicg_reference, cgs_reference, bicgstab_reference])
    def test_also_solves_spd(self, solver, spd_small, rng):
        xt = rng.standard_normal(spd_small.nrows)
        b = rhs_for_solution(spd_small, xt)
        res = solver(spd_small, b, criterion=StoppingCriterion(rtol=1e-11, maxiter=1000))
        assert res.converged
        assert np.allclose(res.x, xt, atol=1e-5)

    def test_bicg_equals_cg_on_spd(self, spd_small, rng):
        """On SPD systems BiCG reduces to CG (same iterates)."""
        b = rng.standard_normal(spd_small.nrows)
        crit = StoppingCriterion(rtol=1e-10)
        res_cg = cg_reference(spd_small, b, criterion=crit)
        res_bicg = bicg_reference(spd_small, b, criterion=crit)
        assert abs(res_cg.iterations - res_bicg.iterations) <= 1

    def test_bicgstab_matches_scipy(self, rng):
        A = convection_diffusion_1d(60, peclet=0.3)
        b = rng.standard_normal(60)
        ours = bicgstab_reference(A, b, criterion=StoppingCriterion(rtol=1e-12, maxiter=2000))
        theirs, info = spla.bicgstab(A.to_scipy(), b, rtol=1e-12, atol=0.0)
        assert info == 0
        assert np.allclose(ours.x, theirs, atol=1e-6)


class TestGaussianElimination:
    def test_matches_numpy_solve(self, rng):
        a = rng.standard_normal((12, 12)) + 12 * np.eye(12)
        b = rng.standard_normal(12)
        x, flops = gaussian_elimination(a, b)
        assert np.allclose(x, np.linalg.solve(a, b))
        assert flops > 0

    def test_pivoting_handles_zero_leading_entry(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        x, _ = gaussian_elimination(a, np.array([2.0, 3.0]))
        assert np.allclose(x, [3.0, 2.0])

    def test_singular_detected(self):
        a = np.array([[1.0, 1.0], [1.0, 1.0]])
        with pytest.raises(np.linalg.LinAlgError):
            gaussian_elimination(a, np.array([1.0, 1.0]))

    def test_flop_count_cubic(self):
        rng = np.random.default_rng(0)
        flops = []
        for n in (10, 20, 40):
            a = rng.standard_normal((n, n)) + n * np.eye(n)
            _, f = gaussian_elimination(a, np.ones(n))
            flops.append(f)
        assert flops[1] / flops[0] == pytest.approx(8.0, rel=0.35)
        assert flops[2] / flops[1] == pytest.approx(8.0, rel=0.35)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            gaussian_elimination(np.zeros((2, 3)), np.zeros(2))


class TestStoppingCriterion:
    def test_threshold(self):
        c = StoppingCriterion(rtol=1e-6, atol=1e-9)
        assert c.threshold(100.0) == pytest.approx(1e-4 + 1e-9)

    def test_satisfied(self):
        c = StoppingCriterion(rtol=1e-6)
        assert c.satisfied(1e-7, 1.0)
        assert not c.satisfied(1e-5, 1.0)

    def test_cap_default(self):
        assert StoppingCriterion().cap(50) == 500
        assert StoppingCriterion(maxiter=7).cap(50) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            StoppingCriterion(rtol=-1.0)
        with pytest.raises(ValueError):
            StoppingCriterion(maxiter=0)
