"""Tenant-fair queue: round-robin fairness and admission control."""

import threading

import pytest

from repro.service import ServiceOverloadedError, TenantFairQueue


class TestFairness:
    def test_round_robin_across_tenants(self):
        q = TenantFairQueue(max_depth=32)
        # a floods 4 jobs before b submits 2
        for i in range(4):
            q.put("a", f"a{i}")
        q.put("b", "b0")
        q.put("b", "b1")
        order = [q.get(timeout=0.1) for _ in range(6)]
        # b's first job is served second, not fifth: one service time of
        # delay per cycle, regardless of a's backlog
        assert order == ["a0", "b0", "a1", "b1", "a2", "a3"]

    def test_single_tenant_is_fifo(self):
        q = TenantFairQueue()
        for i in range(5):
            q.put("t", i)
        assert [q.get(timeout=0.1) for _ in range(5)] == list(range(5))

    def test_new_tenant_joins_cycle_at_the_back(self):
        q = TenantFairQueue()
        q.put("a", "a0")
        q.put("a", "a1")
        assert q.get(timeout=0.1) == "a0"
        q.put("b", "b0")  # arrives mid-cycle
        assert q.get(timeout=0.1) == "a1"
        assert q.get(timeout=0.1) == "b0"


class TestAdmissionControl:
    def test_global_bound(self):
        q = TenantFairQueue(max_depth=3)
        for i in range(3):
            q.put(f"t{i}", i)
        with pytest.raises(ServiceOverloadedError) as err:
            q.put("t9", 9)
        assert err.value.tenant is None  # the *global* bound tripped
        assert err.value.depth == 3 and err.value.limit == 3
        # draining one slot re-admits
        q.get(timeout=0.1)
        q.put("t9", 9)

    def test_per_tenant_bound(self):
        q = TenantFairQueue(max_depth=64, max_per_tenant=2)
        q.put("a", 1)
        q.put("a", 2)
        with pytest.raises(ServiceOverloadedError) as err:
            q.put("a", 3)
        assert err.value.tenant == "a"
        assert err.value.depth == 2 and err.value.limit == 2
        q.put("b", 1)  # other tenants unaffected

    def test_validation(self):
        with pytest.raises(ValueError):
            TenantFairQueue(max_depth=0)
        with pytest.raises(ValueError):
            TenantFairQueue(max_per_tenant=0)


class TestLifecycle:
    def test_get_timeout_returns_none(self):
        q = TenantFairQueue()
        assert q.get(timeout=0.01) is None

    def test_close_refuses_submits_but_drains(self):
        q = TenantFairQueue()
        q.put("a", 1)
        q.close()
        with pytest.raises(RuntimeError):
            q.put("a", 2)
        assert q.get(timeout=0.1) == 1  # queued work still served
        assert q.get(timeout=0.1) is None  # closed + empty: immediate None

    def test_close_wakes_blocked_getter(self):
        q = TenantFairQueue()
        got = []
        t = threading.Thread(target=lambda: got.append(q.get(timeout=10.0)))
        t.start()
        q.close()
        t.join(timeout=5.0)
        assert not t.is_alive() and got == [None]

    def test_drain_remaining(self):
        q = TenantFairQueue()
        q.put("a", 1)
        q.put("b", 2)
        q.put("a", 3)
        items = q.drain_remaining()
        assert sorted(items) == [1, 2, 3]
        assert len(q) == 0 and q.depths() == {}

    def test_drain_remaining_in_fair_order(self):
        q = TenantFairQueue()
        for i in range(3):
            q.put("a", f"a{i}")
        q.put("b", "b0")
        # drain returns exactly the order get() would have served
        assert q.drain_remaining() == ["a0", "b0", "a1", "a2"]

    def test_drain_mid_stream_then_submit_again(self):
        # drain is not only a shutdown path: park/drain flows empty the
        # queue mid-stream and keep using it.  The bookkeeping (depth,
        # per-tenant lanes, round-robin cycle) must reset completely.
        q = TenantFairQueue(max_depth=4, max_per_tenant=2)
        q.put("a", "a0")
        q.put("a", "a1")
        q.put("b", "b0")
        assert q.get(timeout=0.1) == "a0"  # mid-stream: cycle is live
        assert q.drain_remaining() == ["b0", "a1"]
        assert len(q) == 0 and q.depths() == {}
        # admission behaves exactly like a fresh queue: the per-tenant
        # bound counts only post-drain submits, and FIFO order holds
        q.put("a", "a2")
        q.put("a", "a3")
        with pytest.raises(ServiceOverloadedError):
            q.put("a", "a4")
        q.put("b", "b1")
        q.put("c", "c0")
        with pytest.raises(ServiceOverloadedError):
            q.put("c", "c1")  # global bound: 4 queued
        assert [q.get(timeout=0.1) for _ in range(4)] == [
            "a2", "b1", "c0", "a3"
        ]

    def test_drain_twice_is_empty_second_time(self):
        q = TenantFairQueue()
        q.put("a", 1)
        assert q.drain_remaining() == [1]
        assert q.drain_remaining() == []

    def test_len_and_depths(self):
        q = TenantFairQueue()
        q.put("a", 1)
        q.put("a", 2)
        q.put("b", 3)
        assert len(q) == 3
        assert q.depths() == {"a": 2, "b": 1}
