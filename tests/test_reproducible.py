"""Property-based tests for the reproducible-reduction superaccumulator.

The whole ``reproducible=True`` contract rests on three properties of
:mod:`repro.backend.reproducible`:

1. **order/chunking invariance** -- splatting the same multiset of addends
   in any permutation, or split across any number of accumulators that are
   then merged, renders the same bits;
2. **correct rounding** -- the rendered float64 equals the correctly
   rounded value of the *exact* sum (pinned against ``math.fsum``);
3. **exact transport** -- the float64 slot encoding used to ride
   ``allreduce_vec`` survives slot-wise summation across ranks without
   rounding, for any reduction-tree shape.

Hypothesis drives all three over mixed-magnitude inputs, including
subnormals and catastrophic cancellation.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backend.reproducible import (
    NLIMBS,
    Superaccumulator,
    dot_slots,
    pack_slots,
    render_slots,
    sum_slots,
    unpack_slots,
)
from repro.machine import Machine, run_spmd, spmd

SLOW = settings(
    deadline=None,
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow],
)

# mixed magnitudes spanning subnormals to near-overflow; fsum of a few
# hundred of these cannot overflow intermediate doubles, so it stays a
# valid correctly-rounded oracle
finite_doubles = st.floats(
    allow_nan=False,
    allow_infinity=False,
    min_value=-1e300,
    max_value=1e300,
    allow_subnormal=True,
)

addend_lists = st.lists(finite_doubles, min_size=0, max_size=200)


def _render(values):
    return Superaccumulator().splat(values).render()


# ---------------------------------------------------------------------- #
# order / chunking invariance
# ---------------------------------------------------------------------- #
@given(addend_lists, st.randoms(use_true_random=False))
@SLOW
def test_permutation_invariance(values, rng):
    """Any ordering of the same addends renders the same bits."""
    shuffled = list(values)
    rng.shuffle(shuffled)
    a = _render(values)
    b = _render(shuffled)
    assert (a == b) and (math.copysign(1.0, a) == math.copysign(1.0, b))


@given(addend_lists, st.integers(min_value=1, max_value=7))
@SLOW
def test_chunking_invariance(values, nchunks):
    """Splitting across accumulators then merging == one big splat."""
    whole = _render(values)
    parts = np.array_split(np.asarray(values, dtype=np.float64), nchunks)
    acc = Superaccumulator()
    for part in parts:
        acc.add(Superaccumulator().splat(part))
    assert acc.render() == whole


@given(addend_lists)
@SLOW
def test_agrees_with_fsum(values):
    """Render == correctly-rounded exact sum (math.fsum oracle).

    ``fsum`` may return -0.0 where the accumulator canonicalises the empty
    / fully-cancelled sum to +0.0, so compare with ``==`` (which treats
    +-0.0 as equal) plus an explicit bit check for nonzero results.
    """
    got = _render(values)
    want = math.fsum(values)
    assert got == want
    if got != 0.0:
        assert math.copysign(1.0, got) == math.copysign(1.0, want)


def test_cancellation_exact():
    """Catastrophic cancellation leaves the exact tiny remainder."""
    vals = [1e16, 1.0, -1e16]
    assert _render(vals) == 1.0
    vals = [1e308, -1e308, 5e-324]
    assert _render(vals) == 5e-324


def test_subnormal_exactness():
    tiny = 5e-324  # smallest subnormal
    assert _render([tiny] * 3) == 3 * tiny
    assert _render([tiny, -tiny]) == 0.0


def test_rejects_non_finite():
    for bad in (math.inf, -math.inf, math.nan):
        with pytest.raises(ValueError, match="finite"):
            Superaccumulator().splat([1.0, bad])


# ---------------------------------------------------------------------- #
# slot transport
# ---------------------------------------------------------------------- #
@given(addend_lists)
@SLOW
def test_slot_round_trip(values):
    slots = sum_slots(np.asarray(values, dtype=np.float64))
    assert slots.shape == (NLIMBS,)
    assert np.all(slots == np.rint(slots))  # exact integers
    assert render_slots(slots) == math.fsum(values)


@given(
    st.lists(addend_lists, min_size=2, max_size=6),
    st.randoms(use_true_random=False),
)
@SLOW
def test_slotwise_sum_is_tree_shape_invariant(partitions, rng):
    """Summing per-rank slot blocks in ANY order renders the same bits.

    This is the transport guarantee: slot values are integers < 2**32 and
    slot-wise float64 sums of a handful of them stay < 2**53, hence exact
    -- so a binomial tree, recursive doubling or a ring all agree.
    """
    blocks = [sum_slots(np.asarray(p, dtype=np.float64)) for p in partitions]
    left_to_right = blocks[0].copy()
    for blk in blocks[1:]:
        left_to_right = left_to_right + blk
    shuffled = list(blocks)
    rng.shuffle(shuffled)
    pairwise = shuffled[0].copy()
    for blk in shuffled[1:]:
        pairwise = pairwise + blk
    np.testing.assert_array_equal(left_to_right, pairwise)
    flat = [v for p in partitions for v in p]
    assert render_slots(left_to_right) == math.fsum(flat)


@given(st.lists(addend_lists, min_size=1, max_size=4))
@SLOW
def test_pack_unpack_round_trip(groups):
    blocks = [sum_slots(np.asarray(g, dtype=np.float64)) for g in groups]
    packed = pack_slots(blocks)
    assert packed.size == len(blocks) * NLIMBS
    for got, want in zip(unpack_slots(packed, len(blocks)), blocks):
        np.testing.assert_array_equal(got, want)


def test_unpack_rejects_wrong_size():
    with pytest.raises(ValueError, match="expected"):
        unpack_slots(np.zeros(NLIMBS + 1), 1)


def test_from_slots_rejects_fractional():
    slots = np.zeros(NLIMBS)
    slots[0] = 0.5
    with pytest.raises(ValueError, match="exact integers"):
        render_slots(slots)


# ---------------------------------------------------------------------- #
# through the real collective
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("size", [1, 2, 3, 4, 8])
def test_dot_through_allreduce_vec_is_p_invariant(size):
    """A distributed reproducible dot == the serial one, for any p."""
    rng = np.random.default_rng(7)
    n = 96
    x = rng.standard_normal(n) * np.logspace(-30, 30, n)
    y = rng.standard_normal(n)
    serial = render_slots(dot_slots(x, y))
    cuts = np.linspace(0, n, size + 1).astype(int)

    def prog(rank, nprocs):
        lo, hi = cuts[rank], cuts[rank + 1]
        out = yield from spmd.allreduce_vec(
            rank, nprocs, dot_slots(x[lo:hi], y[lo:hi]))
        return render_slots(out)

    results = run_spmd(Machine(size, "complete"), prog)
    assert all(r == serial for r in results)
    assert serial == math.fsum((x * y).tolist())
