"""Cross-backend parity: simulated vs real-process execution.

The central claim of the backend subsystem is that the *same* rank
program yields **bitwise-identical** solver output on the discrete-event
simulator and on real OS processes -- same binomial-tree reduction order,
same NumPy arithmetic, so not even the last ulp may differ.  These tests
prove it for the CG and Jacobi-PCG programs at P in {1, 2, 4}, tie the
result back to the ``spmd_cg`` baseline and (loosely) to the HPF-runtime
solvers, whose different reduction order only allows ``allclose``.
"""

import numpy as np
import pytest

from repro.backend import (
    ProcessBackend,
    SimulatedBackend,
    backend_solve,
    cross_validate,
    process_backend_support,
)
from repro.baselines import spmd_cg
from repro.core import JacobiPreconditioner, StoppingCriterion, hpf_cg, hpf_pcg, make_strategy
from repro.machine import Machine
from repro.sparse import poisson2d

_OK, _DETAIL = process_backend_support()
needs_process = pytest.mark.skipif(
    not _OK, reason=f"process backend unavailable: {_DETAIL}"
)

CRIT = StoppingCriterion(rtol=1e-8, maxiter=300)


@pytest.fixture(scope="module")
def problem():
    A = poisson2d(6, 6)
    b = np.random.default_rng(3).standard_normal(A.nrows)
    return A, b


@pytest.fixture(scope="module")
def process_backend():
    return ProcessBackend(timeout=60.0)


@needs_process
@pytest.mark.parametrize("solver", ["cg", "pcg"])
@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_bitwise_parity(problem, process_backend, solver, nprocs):
    A, b = problem
    cv = cross_validate(solver, A, b, nprocs=nprocs, criterion=CRIT,
                        process=process_backend, strict=False)
    assert cv.bitwise_equal, cv.summary()
    assert cv.iterations_equal and cv.residuals_equal
    assert cv.max_abs_diff == 0.0
    assert cv.simulated.converged and cv.process.converged
    # the report carries a usable timing decomposition for both sides
    assert cv.modelled["total"] >= 0.0 and cv.measured["total"] > 0.0


@needs_process
def test_process_matches_spmd_cg_baseline(problem, process_backend):
    """The baseline's Scheduler run and the process run share one program."""
    A, b = problem
    machine = Machine(nprocs=4)
    baseline = spmd_cg(machine, A, b, criterion=CRIT)
    proc = backend_solve("cg", A, b, backend=process_backend, nprocs=4,
                         criterion=CRIT)
    assert proc.x.tobytes() == baseline.x.tobytes()
    assert proc.iterations == baseline.iterations
    assert proc.history.residual_norms == baseline.history.residual_norms


@needs_process
def test_process_close_to_hpf_solvers(problem, process_backend):
    """HPF-runtime solvers reduce in a different order: allclose, not bitwise."""
    A, b = problem
    machine = Machine(nprocs=4)
    hpf_res = hpf_cg(make_strategy("csr_forall_aligned", machine, A), b,
                     criterion=CRIT)
    proc = backend_solve("cg", A, b, backend=process_backend, nprocs=4,
                         criterion=CRIT)
    np.testing.assert_allclose(proc.x, hpf_res.x, rtol=1e-6, atol=1e-9)

    machine2 = Machine(nprocs=4)
    hpf_p = hpf_pcg(make_strategy("csr_forall_aligned", machine2, A), b,
                    JacobiPreconditioner(A), criterion=CRIT)
    procp = backend_solve("pcg", A, b, backend=process_backend, nprocs=4,
                          criterion=CRIT)
    np.testing.assert_allclose(procp.x, hpf_p.x, rtol=1e-6, atol=1e-9)


def test_simulated_backend_solve_matches_spmd_cg(problem):
    """Pure-simulator check (runs even where the process backend can't)."""
    A, b = problem
    machine = Machine(nprocs=2)
    baseline = spmd_cg(machine, A, b, criterion=CRIT)
    sim = backend_solve("cg", A, b, backend=SimulatedBackend(), nprocs=2,
                        criterion=CRIT)
    assert sim.x.tobytes() == baseline.x.tobytes()
    assert sim.iterations == baseline.iterations


@needs_process
def test_cross_validate_strict_raises_on_mismatch(problem, process_backend):
    """strict=True turns any divergence into BackendMismatchError."""
    from repro.backend import cross_validate as cv_fn
    from repro.backend.validate import BackendMismatchError

    A, b = problem
    report = cv_fn("cg", A, b, nprocs=2, criterion=CRIT,
                   process=process_backend, strict=False)
    # sanity: a genuinely equal report passes check()
    assert report.check() is report
    report.bitwise_equal = False
    report.max_abs_diff = 1.0
    with pytest.raises(BackendMismatchError):
        report.check()
