"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core import StoppingCriterion, cg_reference, hpf_cg, make_strategy
from repro.extensions import (
    IndivisableSpec,
    atom_block,
    atom_block_balanced,
    cg_balanced_partitioner_1,
    imbalance,
    lpt_partitioner,
)
from repro.hpf import Block, BlockK, Cyclic, CyclicK, IrregularBlock
from repro.machine import CostModel, Hypercube, Machine, allgather_cost, allreduce_cost
from repro.sparse import COOMatrix, random_sparse_symmetric

SLOW = settings(
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------- #
# distributions
# ---------------------------------------------------------------------- #
@st.composite
def distributions(draw):
    n = draw(st.integers(min_value=0, max_value=64))
    p = draw(st.integers(min_value=1, max_value=8))
    kind = draw(st.sampled_from(["block", "blockk", "cyclic", "cyclick", "irregular"]))
    if kind == "block":
        return Block(n, p)
    if kind == "blockk":
        k = draw(st.integers(min_value=max(1, -(-n // p)), max_value=max(1, n) + 3))
        return BlockK(n, p, k)
    if kind == "cyclic":
        return Cyclic(n, p)
    if kind == "cyclick":
        return CyclicK(n, p, draw(st.integers(min_value=1, max_value=7)))
    cuts = sorted(draw(st.lists(st.integers(0, n), min_size=p - 1, max_size=p - 1)))
    return IrregularBlock(np.array([0] + cuts + [n]), p)


@given(distributions())
@SLOW
def test_distribution_partitions_index_space(dist):
    """Coverage + disjointness: every index owned exactly once."""
    cover = np.concatenate(
        [dist.local_indices(r) for r in range(dist.nprocs)]
        or [np.empty(0, dtype=np.int64)]
    )
    assert sorted(cover.tolist()) == list(range(dist.n))


@given(distributions())
@SLOW
def test_distribution_owner_localindex_consistency(dist):
    for r in range(dist.nprocs):
        li = dist.local_indices(r)
        if li.size:
            assert (dist.owners(li) == r).all()
            assert np.array_equal(dist.global_to_local(li), np.arange(li.size))


# ---------------------------------------------------------------------- #
# partitioners
# ---------------------------------------------------------------------- #
@given(
    st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=60),
    st.integers(min_value=1, max_value=8),
)
@SLOW
def test_contiguous_partitioner_valid_cuts(weights, nparts):
    w = np.asarray(weights, dtype=float)
    cuts = cg_balanced_partitioner_1(w, nparts)
    assert cuts.shape == (nparts + 1,)
    assert cuts[0] == 0 and cuts[-1] == w.size
    assert (np.diff(cuts) >= 0).all()


@given(
    st.lists(st.integers(min_value=1, max_value=50), min_size=4, max_size=60),
    st.integers(min_value=2, max_value=6),
)
@SLOW
def test_contiguous_partitioner_bottleneck_optimality(weights, nparts):
    """The bottleneck is never worse than any even-count contiguous split."""
    w = np.asarray(weights, dtype=float)
    cuts = cg_balanced_partitioner_1(w, nparts)
    prefix = np.concatenate([[0.0], np.cumsum(w)])
    best = (prefix[cuts[1:]] - prefix[cuts[:-1]]).max()
    k = -(-w.size // nparts)
    even = np.minimum(np.arange(nparts + 1) * k, w.size)
    even_bottleneck = (prefix[even[1:]] - prefix[even[:-1]]).max()
    assert best <= even_bottleneck + 1e-9


@given(
    st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=60),
    st.integers(min_value=1, max_value=8),
)
@SLOW
def test_lpt_covers_all_atoms(weights, nparts):
    w = np.asarray(weights, dtype=float)
    assign = lpt_partitioner(w, nparts)
    assert assign.shape == w.shape
    assert ((assign >= 0) & (assign < nparts)).all()


# ---------------------------------------------------------------------- #
# atoms
# ---------------------------------------------------------------------- #
@st.composite
def atom_specs(draw):
    sizes = draw(st.lists(st.integers(0, 9), min_size=1, max_size=30))
    pointer = np.concatenate([[0], np.cumsum(sizes)])
    return IndivisableSpec(pointer)


@given(atom_specs(), st.integers(min_value=1, max_value=8))
@SLOW
def test_atom_block_never_splits_atoms(spec, nprocs):
    dist, cuts = atom_block(spec, nprocs)
    assert spec.split_atoms_under(dist).size == 0
    assert cuts[-1] == spec.natoms


@given(atom_specs(), st.integers(min_value=1, max_value=8))
@SLOW
def test_atom_block_balanced_never_splits_atoms(spec, nprocs):
    dist, _ = atom_block_balanced(spec, nprocs)
    assert spec.split_atoms_under(dist).size == 0


@given(atom_specs())
@SLOW
def test_atom_membership_consistent(spec):
    assume(spec.nelements > 0)
    ks = np.arange(spec.nelements)
    atoms = spec.atom_of_element(ks)
    for k, a in zip(ks[:20], atoms[:20]):
        lo, hi = spec.atom_range(int(a))
        assert lo <= k < hi


# ---------------------------------------------------------------------- #
# sparse formats
# ---------------------------------------------------------------------- #
@st.composite
def coo_matrices(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    m = draw(st.integers(min_value=1, max_value=12))
    nnz = draw(st.integers(min_value=0, max_value=40))
    rows = draw(
        st.lists(st.integers(0, n - 1), min_size=nnz, max_size=nnz)
    )
    cols = draw(
        st.lists(st.integers(0, m - 1), min_size=nnz, max_size=nnz)
    )
    data = draw(
        st.lists(
            st.floats(-10, 10, allow_nan=False, allow_infinity=False),
            min_size=nnz,
            max_size=nnz,
        )
    )
    return COOMatrix(rows, cols, data, shape=(n, m))


@given(coo_matrices())
@SLOW
def test_format_round_trips_preserve_matrix(coo):
    dense = coo.toarray()
    assert np.allclose(coo.to_csr().toarray(), dense)
    assert np.allclose(coo.to_csc().toarray(), dense)
    assert np.allclose(coo.to_csr().to_csc().toarray(), dense)
    assert np.allclose(coo.to_csc().to_coo().toarray(), dense)


@given(coo_matrices(), st.integers(0, 2**31 - 1))
@SLOW
def test_matvec_equivalent_across_formats(coo, seed):
    x = np.random.default_rng(seed).standard_normal(coo.ncols)
    expected = coo.toarray() @ x
    assert np.allclose(coo.to_csr().matvec(x), expected, atol=1e-9)
    assert np.allclose(coo.to_csc().matvec(x), expected, atol=1e-9)
    y = np.random.default_rng(seed + 1).standard_normal(coo.nrows)
    expected_t = coo.toarray().T @ y
    assert np.allclose(coo.to_csr().rmatvec(y), expected_t, atol=1e-9)
    assert np.allclose(coo.to_csc().rmatvec(y), expected_t, atol=1e-9)


# ---------------------------------------------------------------------- #
# collectives: monotonicity in machine size and message size
# ---------------------------------------------------------------------- #
@given(
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=1, max_value=10_000),
)
@SLOW
def test_collective_costs_monotone(p_exp, nwords):
    cost = CostModel()
    p = 2**p_exp
    small = allgather_cost(Hypercube(p), cost, nwords)
    bigger_machine = allgather_cost(Hypercube(2 * p), cost, nwords)
    assert bigger_machine.time >= small.time
    bigger_message = allreduce_cost(Hypercube(max(p, 2)), cost, nwords + 100)
    smaller_message = allreduce_cost(Hypercube(max(p, 2)), cost, nwords)
    assert bigger_message.time >= smaller_message.time


# ---------------------------------------------------------------------- #
# CG invariants
# ---------------------------------------------------------------------- #
@given(st.integers(min_value=0, max_value=10_000), st.integers(3, 30))
@SLOW
def test_cg_solves_random_spd_system(seed, n):
    A = random_sparse_symmetric(n, nnz_per_row=4, seed=seed % 1000)
    rng = np.random.default_rng(seed)
    xt = rng.standard_normal(n)
    b = A.matvec(xt)
    res = cg_reference(A, b, criterion=StoppingCriterion(rtol=1e-12, maxiter=50 * n))
    assert res.converged
    assert np.allclose(res.x, xt, atol=1e-5 * max(1.0, np.abs(xt).max()))


@given(st.integers(min_value=0, max_value=1000))
@settings(deadline=None, max_examples=10, suppress_health_check=[HealthCheck.too_slow])
def test_distributed_cg_matches_sequential_numerics(seed):
    n = 24
    A = random_sparse_symmetric(n, nnz_per_row=4, seed=seed)
    b = np.random.default_rng(seed).standard_normal(n)
    crit = StoppingCriterion(rtol=1e-10, maxiter=500)
    seq = cg_reference(A, b, criterion=crit)
    m = Machine(nprocs=4)
    dist = hpf_cg(make_strategy("csc_private", m, A), b, criterion=crit)
    assert dist.converged == seq.converged
    assert np.allclose(dist.x, seq.x, atol=1e-6)
