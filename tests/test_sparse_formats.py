"""Unit tests for the COO/CSR/CSC/dense storage schemes (paper Section 3)."""

import numpy as np
import pytest

from repro.sparse import (
    COOMatrix,
    CSCMatrix,
    CSRMatrix,
    DenseMatrix,
    as_format,
    figure1_matrix,
    storage_words,
)


@pytest.fixture
def dense_example():
    rng = np.random.default_rng(3)
    a = rng.standard_normal((7, 5))
    a[rng.random((7, 5)) < 0.5] = 0.0
    return a


class TestFigure1Fidelity:
    """E1's core check: the CSC arrays match the paper's Figure 1 exactly."""

    def test_csc_value_array_in_column_order(self, dense_example):
        a, row, col = figure1_matrix().to_csc().fortran_arrays()
        assert a.tolist() == [
            11.0, 21.0, 31.0, 51.0,  # column 1
            12.0, 22.0, 42.0, 62.0,  # column 2
            33.0,                    # column 3
            24.0, 44.0,              # column 4
            15.0, 55.0,              # column 5
            26.0, 66.0,              # column 6
        ]

    def test_csc_row_array(self):
        _, row, _ = figure1_matrix().to_csc().fortran_arrays()
        assert row.tolist() == [1, 2, 3, 5, 1, 2, 4, 6, 3, 2, 4, 1, 5, 2, 6]

    def test_csc_col_pointer(self):
        _, _, col = figure1_matrix().to_csc().fortran_arrays()
        assert col.tolist() == [1, 5, 9, 10, 12, 14, 16]

    def test_nnz_is_15(self):
        assert figure1_matrix().nnz == 15

    def test_round_trip_from_fortran_arrays(self):
        csc = figure1_matrix().to_csc()
        a, row, col = csc.fortran_arrays()
        back = CSCMatrix.from_fortran_arrays(a, row, col, shape=(6, 6))
        assert np.allclose(back.toarray(), csc.toarray())

    def test_csr_fortran_round_trip(self):
        csr = figure1_matrix()
        row, col, a = csr.fortran_arrays()
        back = CSRMatrix.from_fortran_arrays(row, col, a, shape=(6, 6))
        assert np.allclose(back.toarray(), csr.toarray())


class TestCOO:
    def test_duplicate_summation(self):
        m = COOMatrix([0, 0, 1], [0, 0, 1], [1.0, 2.0, 5.0], shape=(2, 2))
        assert m.nnz == 2
        assert m.toarray()[0, 0] == 3.0

    def test_shape_inference(self):
        m = COOMatrix([0, 4], [1, 2], [1.0, 1.0])
        assert m.shape == (5, 3)

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix([0], [5], [1.0], shape=(2, 2))

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix([0, 1], [0], [1.0, 2.0])

    def test_transpose(self):
        m = COOMatrix([0, 1], [2, 0], [3.0, 4.0], shape=(2, 3))
        t = m.transpose()
        assert t.shape == (3, 2)
        assert np.allclose(t.toarray(), m.toarray().T)

    def test_from_dense_and_back(self, dense_example):
        m = COOMatrix.from_dense(dense_example)
        assert np.allclose(m.toarray(), dense_example)
        assert m.nnz == np.count_nonzero(dense_example)

    def test_diagonal(self):
        m = COOMatrix([0, 1, 1], [0, 1, 0], [2.0, 3.0, 9.0], shape=(2, 2))
        assert m.diagonal().tolist() == [2.0, 3.0]

    def test_empty_matrix(self):
        m = COOMatrix([], [], [], shape=(3, 3))
        assert m.nnz == 0
        assert np.allclose(m.matvec(np.ones(3)), 0.0)


class TestCSR:
    def test_validation_indptr_start(self):
        with pytest.raises(ValueError):
            CSRMatrix([1, 2], [0], [1.0], shape=(1, 1))

    def test_validation_indptr_monotone(self):
        with pytest.raises(ValueError):
            CSRMatrix([0, 2, 1], [0, 0], [1.0, 1.0], shape=(2, 1))

    def test_validation_column_bounds(self):
        with pytest.raises(ValueError):
            CSRMatrix([0, 1], [9], [1.0], shape=(1, 2))

    def test_validation_shape_mismatch(self):
        with pytest.raises(ValueError):
            CSRMatrix([0, 1], [0], [1.0], shape=(5, 1))

    def test_row_lengths(self, fig1):
        assert fig1.row_lengths().tolist() == [3, 4, 2, 2, 2, 2]

    def test_row_slice(self, fig1):
        cols, vals = fig1.row_slice(1)
        assert cols.tolist() == [0, 1, 3, 5]
        assert vals.tolist() == [21.0, 22.0, 24.0, 26.0]

    def test_row_slice_bounds(self, fig1):
        with pytest.raises(IndexError):
            fig1.row_slice(6)

    def test_transpose_is_csc_view(self, fig1):
        t = fig1.transpose()
        assert isinstance(t, CSCMatrix)
        assert np.allclose(t.toarray(), fig1.toarray().T)

    def test_diagonal(self, fig1):
        assert fig1.diagonal().tolist() == [11.0, 22.0, 33.0, 44.0, 55.0, 66.0]


class TestCSC:
    def test_col_lengths(self, fig1):
        assert fig1.to_csc().col_lengths().tolist() == [4, 4, 1, 2, 2, 2]

    def test_col_slice(self, fig1):
        rows, vals = fig1.to_csc().col_slice(0)
        assert rows.tolist() == [0, 1, 2, 4]
        assert vals.tolist() == [11.0, 21.0, 31.0, 51.0]

    def test_transpose_is_csr_view(self, fig1):
        csc = fig1.to_csc()
        t = csc.transpose()
        assert isinstance(t, CSRMatrix)
        assert np.allclose(t.toarray(), csc.toarray().T)

    def test_validation_row_bounds(self):
        with pytest.raises(ValueError):
            CSCMatrix([0, 1], [9], [1.0], shape=(2, 1))


class TestDense:
    def test_requires_2d(self):
        with pytest.raises(ValueError):
            DenseMatrix(np.zeros(5))

    def test_nnz_counts_nonzeros(self, dense_example):
        assert DenseMatrix(dense_example).nnz == np.count_nonzero(dense_example)

    def test_stored_elements(self, dense_example):
        assert DenseMatrix(dense_example).stored_elements == dense_example.size

    def test_blocks(self, dense_example):
        d = DenseMatrix(dense_example)
        assert np.allclose(d.row_block(1, 3), dense_example[1:3, :])
        assert np.allclose(d.col_block(0, 2), dense_example[:, 0:2])


class TestMatvecAgreement:
    """All formats produce identical products (against scipy as oracle)."""

    @pytest.mark.parametrize("fmt", ["coo", "csr", "csc", "dense"])
    def test_matvec(self, fig1, fmt, rng):
        x = rng.standard_normal(6)
        m = as_format(fig1, fmt)
        assert np.allclose(m.matvec(x), fig1.to_scipy() @ x)

    @pytest.mark.parametrize("fmt", ["coo", "csr", "csc", "dense"])
    def test_rmatvec(self, fig1, fmt, rng):
        x = rng.standard_normal(6)
        m = as_format(fig1, fmt)
        assert np.allclose(m.rmatvec(x), fig1.to_scipy().T @ x)

    def test_matmul_operator(self, fig1, rng):
        x = rng.standard_normal(6)
        assert np.allclose(fig1 @ x, fig1.matvec(x))

    def test_wrong_length_rejected(self, fig1):
        with pytest.raises(ValueError):
            fig1.matvec(np.ones(7))

    def test_rectangular_matvec(self, rng):
        a = rng.standard_normal((4, 6))
        m = COOMatrix.from_dense(a)
        x = rng.standard_normal(6)
        assert np.allclose(m.matvec(x), a @ x)
        y = rng.standard_normal(4)
        assert np.allclose(m.rmatvec(y), a.T @ y)


class TestStorageWords:
    """Section 3's storage-saving argument, quantified."""

    def test_sparse_beats_dense_for_large_sparse(self):
        """Section 3's saving appears once the matrix is big and sparse.

        (For the tiny Figure-1 example the CSR trio costs 37 words versus
        36 dense -- the scheme pays off at scale, as the paper argues.)
        """
        from repro.sparse import poisson2d

        m = poisson2d(10, 10)
        assert storage_words(m) < storage_words(m.to_dense()) / 4

    def test_csr_formula(self, fig1):
        assert storage_words(fig1) == 2 * 15 + 6 + 1

    def test_coo_formula(self, fig1):
        assert storage_words(fig1.to_coo()) == 3 * 15

    def test_dense_formula(self, fig1):
        assert storage_words(fig1.to_dense()) == 36
