"""Chaos harness: seeded schedules, outcome classification, the contract.

Small fixed seed set here; the fuller sweep lives in benchmark E21 and
the CI chaos job.  Process-backend cases carry support-probe skips so
the suite stays green on hosts without real crash injection.
"""

import numpy as np
import pytest

from repro.backend import process_backend_support
from repro.backend.abft import AbftChecksumError
from repro.backend.base import (
    BackendTimeoutError,
    WorkerCrashedError,
    WorkerFailedError,
)
from repro.backend.chaos import (
    CHAOS_BACKENDS,
    ChaosOutcome,
    chaos_plan,
    chaos_run,
    chaos_sweep,
    classify_failure,
    format_report,
)
from repro.backend.process import crash_injection_support
from repro.core.resilience import RecoveryExhaustedError
from repro.machine.faults import RankFailedError
from repro.machine.scheduler import DeadlockError

_OK, _DETAIL = process_backend_support()
needs_process = pytest.mark.skipif(
    not _OK, reason=f"process backend unavailable: {_DETAIL}"
)
_KOK, _KDETAIL = crash_injection_support()
needs_crash = pytest.mark.skipif(
    not _KOK, reason=f"crash injection unavailable: {_KDETAIL}"
)


class TestClassifyFailure:
    @pytest.mark.parametrize("exc,label", [
        (RecoveryExhaustedError("x"), "recovery_exhausted"),
        (AbftChecksumError("x"), "abft_detected"),
        (RankFailedError("x"), "rank_failed"),
        (WorkerCrashedError(1), "worker_crashed"),
        (BackendTimeoutError("x"), "timeout"),
        (DeadlockError("x"), "deadlock"),
    ])
    def test_typed_errors(self, exc, label):
        assert classify_failure(exc) == label

    def test_worker_failed_message_is_scanned(self):
        exc = WorkerFailedError(
            "rank 2 failed: Traceback ... AbftChecksumError: dot mismatch"
        )
        assert classify_failure(exc) == "abft_detected"
        assert classify_failure(WorkerFailedError("boom")) == "worker_failed"

    def test_unknown_is_none(self):
        assert classify_failure(ValueError("nope")) is None


class TestChaosPlan:
    def test_same_seed_same_plan(self):
        a, b = chaos_plan(7, nprocs=4), chaos_plan(7, nprocs=4)
        assert a["planned"] == b["planned"]
        assert a["crash_on_checkpoint"] == b["crash_on_checkpoint"]
        assert a["plan"].seed == b["plan"].seed

    def test_no_crash_flag(self):
        drawn = chaos_plan(4, nprocs=4, allow_crash=False)
        assert drawn["crash_on_checkpoint"] == {}
        assert not drawn["plan"].crash_schedule()

    def test_corruptions_target_auditable_state(self):
        # only x and r corruptions are detectable by the sanity audit;
        # the harness must never schedule an invisible one
        for seed in range(30):
            for c in chaos_plan(seed, nprocs=4)["plan"].state_corruption_schedule():
                assert c.target in ("x", "r")


class TestChaosRunSimulated:
    @pytest.mark.parametrize("seed", [0, 1, 4])
    def test_contract_holds(self, seed):
        out = chaos_run(seed, backend="simulated")
        assert out.ok
        assert out.outcome == "converged"
        assert out.converged_to_reference
        assert out.max_abs_err == 0.0  # simulated recovery is bitwise-exact

    def test_crash_seed_recovers(self):
        # seed 4 draws a crash (see chaos_plan's RNG stream)
        out = chaos_run(4, backend="simulated")
        assert out.planned["crash"]
        assert out.attempts == 2
        assert len(out.crashes_recovered) == 1

    def test_faults_actually_injected(self):
        out = chaos_run(1, backend="simulated")
        injected = sum(
            out.injected.get(k, 0)
            for k in ("dropped", "duplicated", "corrupted", "delayed")
        )
        assert injected > 0


@needs_crash
class TestChaosRunProcess:
    def test_crash_seed_recovers_for_real(self):
        out = chaos_run(4, backend="process", timeout=60.0)
        assert out.ok and out.outcome == "converged"
        assert out.planned["crash"]
        assert out.attempts == 2
        assert out.converged_to_reference


class TestReport:
    def test_format_report_lists_every_run(self):
        outs = chaos_sweep([0, 1], backends=["simulated"])
        text = format_report(outs)
        assert "seed" in text and "outcome" in text
        assert text.count("simulated") == 2
        assert "contract held on 2/2" in text

    def test_backends_constant(self):
        assert CHAOS_BACKENDS == ("simulated", "process")

    def test_classified_failure_counts_as_ok(self):
        out = ChaosOutcome(
            seed=0, backend="simulated", nprocs=4, n=48,
            outcome="recovery_exhausted", converged_to_reference=False,
            max_abs_err=float("nan"), iterations=0, elapsed=0.0,
        )
        assert out.ok
        out.outcome = "converged"
        assert not out.ok  # converged but not to reference: contract broken
