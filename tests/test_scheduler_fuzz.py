"""Property-based fuzzing of the SPMD scheduler.

Random permutation routings, random message bursts and random collective
compositions must always deliver every payload exactly once, terminate,
and produce identical results on repeated runs (determinism).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.machine import Barrier, Compute, Machine, Recv, Send, run_spmd, spmd

SLOW = settings(
    deadline=None,
    max_examples=20,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def permutations(draw):
    size = draw(st.integers(min_value=2, max_value=8))
    perm = draw(st.permutations(list(range(size))))
    return size, list(perm)


@given(permutations())
@SLOW
def test_permutation_routing_delivers_exactly_once(case):
    """Every rank sends to perm[rank] and receives from its inverse."""
    size, perm = case
    inverse = [0] * size
    for src, dst in enumerate(perm):
        inverse[dst] = src

    def prog(rank, nprocs):
        yield Send(dest=perm[rank], payload=("from", rank))
        got = yield Recv(source=inverse[rank])
        return got

    results = run_spmd(Machine(size, "complete"), prog)
    for rank, got in enumerate(results):
        assert got == ("from", inverse[rank])


@given(permutations())
@SLOW
def test_permutation_routing_is_deterministic(case):
    size, perm = case

    def run_once():
        def prog(rank, nprocs):
            yield Compute(rank * 13.0)
            yield Send(dest=perm[rank], payload=rank)
            got = yield Recv()
            yield Barrier()
            return got

        machine = Machine(size, "complete")
        results = run_spmd(machine, prog)
        return results, machine.elapsed(), machine.stats.total_words

    first = run_once()
    second = run_once()
    assert first[0] == second[0]
    assert first[1] == second[1]
    assert first[2] == second[2]


@given(
    st.integers(min_value=2, max_value=6),
    st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=8),
)
@SLOW
def test_bursts_preserve_fifo_order(size, burst_sizes):
    """Multiple bursts from rank 0 to rank 1 arrive in send order."""

    def prog(rank, nprocs):
        if rank == 0:
            seq = 0
            for burst in burst_sizes:
                for _ in range(burst):
                    yield Send(dest=1, payload=seq)
                    seq += 1
            return seq
        if rank == 1:
            total = sum(burst_sizes)
            got = []
            for _ in range(total):
                got.append((yield Recv(source=0)))
            return got
        return None

    results = run_spmd(Machine(size, "complete"), prog)
    total = sum(burst_sizes)
    assert results[1] == list(range(total))


@given(
    st.integers(min_value=1, max_value=8),
    st.lists(
        st.sampled_from(["allreduce", "bcast", "gather", "allgather", "barrier"]),
        min_size=1,
        max_size=5,
    ),
)
@SLOW
def test_random_collective_compositions(size, ops):
    """Arbitrary sequences of SPMD collectives terminate and agree."""

    def prog(rank, nprocs):
        value = float(rank + 1)
        outcome = []
        for op in ops:
            if op == "allreduce":
                value = yield from spmd.allreduce_sum(rank, nprocs, value)
                outcome.append(value)
            elif op == "bcast":
                root_val = value if rank == 0 else None
                value = yield from spmd.bcast(rank, nprocs, root_val)
                outcome.append(value)
            elif op == "gather":
                gathered = yield from spmd.gather_to_root(rank, nprocs, value)
                if rank == 0:
                    value = float(np.sum(gathered))
                value = yield from spmd.bcast(
                    rank, nprocs, value if rank == 0 else None
                )
                outcome.append(value)
            elif op == "allgather":
                everyone = yield from spmd.allgather(rank, nprocs, value)
                value = float(np.max(everyone))
                outcome.append(value)
            else:
                yield Barrier()
        return tuple(outcome)

    results = run_spmd(Machine(size, "complete"), prog)
    # every collective leaves all ranks agreeing on the value trail
    assert all(r == results[0] for r in results)
