"""ResilientHPCGProgram: parity, recovery policies, ABFT, durable resume.

The fault-free resilient program must reproduce the plain HPCG program
*bitwise* (checkpoints, audits and ABFT duplicate slots are overhead, not
perturbation); under injected faults it must converge to the same answer
through respawn, shrink, rollback or ARQ retransmission; and a durable
checkpoint store must let a freshly started driver -- including one whose
predecessor died by SIGKILL -- resume from the newest complete checkpoint.
"""

import os
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.backend.chaos import chaos_run
from repro.backend.simulated import SimulatedBackend
from repro.backend.store import DurableCheckpointStore
from repro.core.resilience import ResilienceConfig
from repro.core.stopping import StoppingCriterion
from repro.hpcg.program import ResilientHPCGProgram
from repro.hpcg.solve import hpcg_solve
from repro.machine.faults import (
    FaultPlan,
    RankCrash,
    RankFailedError,
    StateCorruption,
)
from repro.machine.reliable import ReliableConfig

SHAPE = (6, 6, 6)
CRIT = StoppingCriterion(rtol=1e-10, atol=0.0)


def _plain(precond="jacobi", **kw):
    return hpcg_solve(SHAPE, backend="simulated", nprocs=4, precond=precond,
                      criterion=CRIT, **kw)


def _resilient(precond="jacobi", **kw):
    kw.setdefault("resilience", ResilienceConfig(
        checkpoint_interval=3, sanity_interval=3, max_restarts=8,
        reliable=ReliableConfig(base_timeout=0.05, max_retries=8),
    ))
    return hpcg_solve(SHAPE, backend="simulated", nprocs=4, precond=precond,
                      criterion=CRIT, **kw)


# ---------------------------------------------------------------------- #
# fault-free parity
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("precond", ["none", "jacobi", "mg"])
@pytest.mark.parametrize("fused", [False, True])
def test_fault_free_bitwise_parity(precond, fused):
    ref = _plain(precond, fused=fused)
    res = _resilient(precond, fused=fused)
    assert res.converged and ref.converged
    np.testing.assert_array_equal(res.x, ref.x)
    assert res.extras["resilience"]["rollbacks"] == 0
    assert res.extras["resilience"]["checkpoints_published"] >= 1


def test_fault_free_parity_reproducible_abft():
    """ABFT duplicate slots and checksummed halo SpMV leave the exact
    superaccumulator trajectory untouched."""
    ref = _plain("jacobi", reproducible=True)
    res = _resilient("jacobi", reproducible=True, abft=True)
    assert res.converged
    np.testing.assert_array_equal(res.x, ref.x)
    assert res.extras["hpcg"]["abft"] is True


# ---------------------------------------------------------------------- #
# recovery policies on the 3-D grid
# ---------------------------------------------------------------------- #
def test_crash_respawn_resumes_from_checkpoint():
    ref = _plain("jacobi")
    plan = FaultPlan(seed=1, crashes=[RankCrash(2, 0.004)])
    res = _resilient("jacobi", faults=plan)
    assert res.converged
    np.testing.assert_allclose(res.x, ref.x, rtol=1e-9, atol=1e-12)
    recov = res.extras["recovery"]
    assert recov["attempts"] >= 2
    assert recov["final_nprocs"] == 4


@pytest.mark.parametrize("precond", ["jacobi", "mg"])
def test_crash_shrink_refactorizes_grid(precond):
    ref = _plain(precond)
    plan = FaultPlan(seed=2, crashes=[RankCrash(1, 0.004)])
    res = _resilient(precond, faults=plan, policy="shrink")
    assert res.converged
    assert res.extras["recovery"]["final_nprocs"] == 3
    np.testing.assert_allclose(res.x, ref.x, rtol=1e-9, atol=1e-12)


def test_state_corruption_rolls_back():
    ref = _plain("jacobi")
    plan = FaultPlan(
        seed=3,
        state_corruptions=[StateCorruption(iteration=4, target="x", rank=1)],
    )
    res = _resilient("jacobi", faults=plan)
    assert res.converged
    assert res.extras["resilience"]["rollbacks"] >= 1
    np.testing.assert_allclose(res.x, ref.x, rtol=1e-9, atol=1e-12)


def test_rebalance_policy_rejected():
    with pytest.raises(ValueError, match="respawn.*shrink"):
        _resilient("jacobi", policy="rebalance",
                   faults=FaultPlan(seed=0, drop_prob=0.01))


# ---------------------------------------------------------------------- #
# reliable halo exchange (satellite: ARQ + rank/face-naming errors)
# ---------------------------------------------------------------------- #
def test_arq_masks_halo_message_faults():
    """Jacobi keeps real halo traffic; drops/dups must be retransmitted
    away without perturbing the answer."""
    ref = _plain("jacobi")
    plan = FaultPlan(seed=4, drop_prob=0.05, duplicate_prob=0.05)
    res = _resilient("jacobi", faults=plan)
    assert res.converged
    np.testing.assert_allclose(res.x, ref.x, rtol=1e-9, atol=1e-12)
    telemetry = res.extras["resilience"]["telemetry"]
    assert telemetry["retransmissions"] > 0


def test_halo_failure_names_both_ranks_and_face():
    """When ARQ gives up, the error says which link died: both ranks and
    the halo kind (face/edge/corner)."""
    # max_restarts=0: the recovery driver re-raises instead of retrying
    plan = FaultPlan(seed=5, drop_prob=1.0)
    with pytest.raises(Exception, match=r"halo (face|edge|corner) exchange "
                                        r"between rank \d+ and rank \d+"):
        hpcg_solve(
            SHAPE, backend="simulated", nprocs=4, precond="jacobi",
            criterion=CRIT, faults=plan,
            resilience=ResilienceConfig(
                max_restarts=0,
                reliable=ReliableConfig(base_timeout=1e-4, max_retries=1),
            ),
        )


# ---------------------------------------------------------------------- #
# durable checkpoints: driver restart and SIGKILL
# ---------------------------------------------------------------------- #
def test_durable_store_resume_bitwise(tmp_path):
    root = str(tmp_path / "ck")
    ref = _plain("jacobi", reproducible=True)

    # first driver: stops early (maxiter) after publishing checkpoints
    first = DurableCheckpointStore(root, fsync=False)
    partial = _resilient("jacobi", reproducible=True, maxiter=5, store=first)
    assert not partial.converged
    assert len(first) >= 1 and first.tmp_files() == []

    # second driver: fresh store object, same directory -> resumes
    second = DurableCheckpointStore(root, fsync=False)
    res = _resilient("jacobi", reproducible=True, store=second)
    assert res.converged
    assert res.extras["resilience"]["restarted_from"] is not None
    assert res.extras["resilience"]["restarted_from"] >= 3
    # exact reductions: the resumed trajectory matches start-to-finish
    np.testing.assert_array_equal(res.x, ref.x)


_KILLED_CHILD = textwrap.dedent("""
    import os, signal
    from repro.backend.store import DurableCheckpointStore
    from repro.core.resilience import ResilienceConfig
    from repro.core.stopping import StoppingCriterion
    from repro.hpcg.solve import hpcg_solve

    class KillingStore(DurableCheckpointStore):
        # SIGKILL the driver mid-checkpoint after a few records: the
        # hardest crash point (some ranks published, some not)
        def __init__(self, path):
            super().__init__(path, fsync=False)
            self.records = 0
        def _write_record(self, iteration, rank, payload):
            super()._write_record(iteration, rank, payload)
            self.records += 1
            if iteration >= 3 and self.records >= 6:
                os.kill(os.getpid(), signal.SIGKILL)

    hpcg_solve(
        (6, 6, 6), backend="simulated", nprocs=4, precond="jacobi",
        criterion=StoppingCriterion(rtol=1e-10, atol=0.0),
        resilience=ResilienceConfig(checkpoint_interval=3, sanity_interval=3),
        reproducible=True, store=KillingStore(os.environ["CKPT_DIR"]),
    )
    raise SystemExit("unreachable: the solve should have been killed")
""")


def test_sigkill_mid_solve_then_resume(tmp_path):
    """Acceptance: SIGKILL the driver mid-solve; a rerun with the same
    --checkpoint-dir resumes from the newest complete checkpoint and
    converges to the same answer (bitwise, reproducible reductions)."""
    root = str(tmp_path / "ck")
    env = dict(os.environ, CKPT_DIR=root,
               PYTHONPATH=os.pathsep.join(sys.path))
    proc = subprocess.run(
        [sys.executable, "-c", _KILLED_CHILD],
        env=env, capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == -signal.SIGKILL, proc.stderr

    store = DurableCheckpointStore(root, fsync=False)
    assert store.tmp_files() == []
    assert len(store) >= 1  # the dead driver left usable checkpoints

    res = hpcg_solve(
        SHAPE, backend="simulated", nprocs=4, precond="jacobi",
        criterion=CRIT, reproducible=True, store=store,
    )
    assert res.converged
    assert res.extras["resilience"]["restarted_from"] is not None
    ref = _plain("jacobi", reproducible=True)
    np.testing.assert_array_equal(res.x, ref.x)


# ---------------------------------------------------------------------- #
# chaos scenario integration
# ---------------------------------------------------------------------- #
def test_chaos_stencil27_smoke():
    out = chaos_run(0, backend="simulated", scenario="stencil27",
                    precond="mg", reproducible=True)
    assert out.ok
    assert out.scenario == "stencil27" and out.precond == "mg"
    assert out.max_abs_err == 0.0
    d = out.to_dict()
    assert d["scenario"] == "stencil27" and d["precond"] == "mg"


def test_chaos_rejects_unknown_scenario():
    with pytest.raises(ValueError, match="scenario"):
        chaos_run(0, scenario="poisson3d")
