"""Service end-to-end on the simulated backend: fast and deterministic.

The dispatcher, queue, retry ladder, breaker and telemetry are all
substrate-agnostic; running them over :class:`SimulatedBackend` (and a
deliberately flaky wrapper around it) exercises every service-level path
in milliseconds.  Warm-pool-specific behaviour lives in
``test_service_pool.py``/``test_service_soak.py``.
"""

import numpy as np
import pytest

from repro.backend.base import ExecutionBackend, WorkerCrashedError
from repro.backend.chaos import _chaos_problem
from repro.backend.simulated import SimulatedBackend
from repro.core.stopping import StoppingCriterion
from repro.service import (
    CircuitBreaker,
    JobSpec,
    JobStatus,
    RetryPolicy,
    ServiceOverloadedError,
    SolverService,
    TenantFairQueue,
)
from repro.service.service import CIRCUIT_OPEN


def _spec(tenant="t0", nprocs=4, **kw):
    A, b = _chaos_problem(48)
    return JobSpec(matrix=A, b=b, tenant=tenant, nprocs=nprocs,
                   criterion=StoppingCriterion(rtol=1e-10, atol=0.0), **kw)


class FlakyBackend(ExecutionBackend):
    """Delegates to the simulator after failing the first ``fail_first``
    runs with an (retryable) infrastructure error."""

    name = "flaky"

    def __init__(self, fail_first=0):
        self.fail_first = fail_first
        self.runs = 0
        self.inner = SimulatedBackend()

    def run(self, program, nprocs, *, checkpoints=None):
        self.runs += 1
        if self.runs <= self.fail_first:
            raise WorkerCrashedError(0, "injected flaky-backend crash")
        return self.inner.run(program, nprocs, checkpoints=checkpoints)


#: retry policy with no real sleeping (tests must not wait out backoff)
def _fast_retry(**kw):
    kw.setdefault("max_attempts", 3)
    kw.setdefault("base_delay", 0.001)
    kw.setdefault("max_delay", 0.002)
    return RetryPolicy(**kw)


class TestHappyPath:
    def test_submit_result_roundtrip(self):
        with SolverService(backend=SimulatedBackend()) as svc:
            res = svc.solve(_spec(), timeout=30.0)
        assert res.status == JobStatus.OK and res.ok
        assert res.iterations > 0
        assert res.nprocs_final == 4
        assert len(res.attempts) == 1
        assert res.attempts[0].outcome == "ok"
        assert res.attempts[0].backoff_before == 0.0
        assert res.queued >= 0.0 and res.elapsed > 0.0

    def test_solution_matches_direct_solve(self):
        from repro.backend.solve import backend_solve

        spec = _spec()
        ref = backend_solve("cg", spec.matrix, spec.b, backend="simulated",
                            nprocs=4, criterion=spec.criterion).x
        with SolverService(backend=SimulatedBackend()) as svc:
            res = svc.solve(spec, timeout=30.0)
        assert np.array_equal(res.x, ref)  # same program, same backend

    def test_many_tenants_all_served(self):
        with SolverService(backend=SimulatedBackend()) as svc:
            handles = [svc.submit(_spec(tenant=f"t{i % 3}"))
                       for i in range(9)]
            results = [h.result(timeout=60.0) for h in handles]
        assert all(r.ok for r in results)
        assert sorted(r.job_id for r in results) == list(range(9))
        assert svc.counters.completed == 9

    def test_status_snapshot(self):
        with SolverService(backend=SimulatedBackend()) as svc:
            svc.solve(_spec(), timeout=30.0)
            st = svc.status()
        assert st["counters"]["submitted"] == 1
        assert st["counters"]["completed"] == 1
        assert st["breaker"]["state"] == "closed"
        assert st["pool"] is None  # not a warm pool


class TestAdmission:
    def test_overload_raises_typed_backpressure(self):
        # a queue of depth 1 with an unstarted... rather: fill the queue
        # faster than the dispatcher can drain by bounding depth at 1 and
        # submitting before start() -- submit requires a started service,
        # so instead use a closed-over slow path: depth 1 and burst
        svc = SolverService(backend=SimulatedBackend(),
                            queue=TenantFairQueue(max_depth=1))
        svc.start()
        try:
            seen_reject = False
            handles = []
            for _ in range(30):
                try:
                    handles.append(svc.submit(_spec()))
                except ServiceOverloadedError as exc:
                    seen_reject = True
                    assert exc.limit == 1
                    break
            assert seen_reject, "30 rapid submits never hit a depth-1 bound"
            assert svc.counters.rejected == 1
            for h in handles:
                assert h.result(timeout=30.0).ok  # accepted jobs complete
        finally:
            svc.shutdown()

    def test_submit_before_start_is_an_error(self):
        svc = SolverService(backend=SimulatedBackend())
        with pytest.raises(RuntimeError):
            svc.submit(_spec())


class TestRetries:
    def test_transient_failure_retried_to_success(self):
        be = FlakyBackend(fail_first=2)
        with SolverService(backend=be, retry=_fast_retry()) as svc:
            res = svc.solve(_spec(), timeout=30.0)
        assert res.ok
        assert len(res.attempts) == 3
        assert [a.outcome for a in res.attempts] == [
            "worker_crashed", "worker_crashed", "ok"
        ]
        # backoff delays recorded and growing per the ladder
        assert res.attempts[0].backoff_before == 0.0
        assert res.attempts[1].backoff_before > 0.0
        assert res.attempts[2].backoff_before > 0.0
        assert svc.counters.retries == 2

    def test_exhausted_retries_fail_classified(self):
        be = FlakyBackend(fail_first=99)
        with SolverService(backend=be, retry=_fast_retry()) as svc:
            res = svc.solve(_spec(), timeout=30.0)
        assert res.status == JobStatus.FAILED and not res.ok
        assert res.classification == "worker_crashed"
        assert len(res.attempts) == 3  # the full budget, no more
        assert be.runs == 3
        assert "injected flaky-backend crash" in res.error

    def test_non_retryable_fails_on_first_attempt(self):
        with SolverService(backend=SimulatedBackend(),
                           retry=_fast_retry()) as svc:
            res = svc.solve(_spec(solver="nope"), timeout=30.0)
        assert res.status == JobStatus.FAILED
        assert len(res.attempts) == 1  # ValueError: no retry


class TestBreaker:
    def test_consecutive_failures_trip_and_fast_fail(self):
        be = FlakyBackend(fail_first=10 ** 6)
        with SolverService(
            backend=be,
            retry=RetryPolicy(max_attempts=1),
            breaker=CircuitBreaker(failure_threshold=2, reset_timeout=60.0),
        ) as svc:
            r1 = svc.solve(_spec(), timeout=30.0)
            r2 = svc.solve(_spec(), timeout=30.0)
            r3 = svc.solve(_spec(), timeout=30.0)  # breaker now open
        assert r1.classification == "worker_crashed"
        assert r2.classification == "worker_crashed"
        assert r3.classification == CIRCUIT_OPEN
        assert r3.attempts == []  # fast-fail: the substrate was not touched
        assert be.runs == 2
        assert svc.counters.breaker_trips == 1
        assert svc.counters.breaker_fast_fails == 1

    def test_probe_recovers_the_stream(self):
        be = FlakyBackend(fail_first=2)
        with SolverService(
            backend=be,
            retry=RetryPolicy(max_attempts=1),
            breaker=CircuitBreaker(failure_threshold=2,
                                   reset_timeout=0.05),
        ) as svc:
            assert not svc.solve(_spec(), timeout=30.0).ok
            assert not svc.solve(_spec(), timeout=30.0).ok  # trips
            import time

            time.sleep(0.1)  # reset window elapses; next job is the probe
            res = svc.solve(_spec(), timeout=30.0)
        assert res.ok  # probe succeeded and the stream is healthy again
        assert svc.breaker.state == "closed"


class TestPerJobKnobIsolation:
    """Per-job SLA knobs must not leak into the shared backend.

    Regression: ``_run_attempt`` sets ``timeout``/``heartbeat_interval``
    on the shared backend only when the spec provides them, so a job
    with a deadline used to poison every later job that did not set its
    own.  The backend never runs (``backend_solve`` is stubbed), so a
    bare ``ProcessBackend`` works without spawning processes.
    """

    def _stubbed_service(self, monkeypatch, backend, seen):
        from types import SimpleNamespace

        import repro.service.service as service_mod

        def fake_backend_solve(solver, matrix, b, *, backend, **kw):
            seen.append({
                "timeout": backend.timeout,
                "heartbeat_interval": backend.heartbeat_interval,
                "straggler_deadline": backend.straggler_deadline,
                "crash_on_checkpoint": dict(backend.crash_on_checkpoint),
            })
            return SimpleNamespace(x=np.zeros(4), iterations=1, extras={})

        monkeypatch.setattr(service_mod, "backend_solve",
                            fake_backend_solve)
        return SolverService(backend=backend, target_nprocs=4)

    def test_deadline_does_not_leak_between_jobs(self, monkeypatch):
        from repro.backend.process import ProcessBackend

        be = ProcessBackend(timeout=300.0, heartbeat_interval=0.5)
        seen = []
        with self._stubbed_service(monkeypatch, be, seen) as svc:
            assert svc.solve(
                _spec(deadline=5.0, heartbeat_interval=0.01,
                      straggler_deadline=1.0,
                      crash_on_checkpoint={0: 2}),
                timeout=30.0,
            ).ok
            assert svc.solve(_spec(), timeout=30.0).ok
        # job 1 saw its own knobs...
        assert seen[0]["timeout"] == 5.0
        assert seen[0]["heartbeat_interval"] == 0.01
        assert seen[0]["straggler_deadline"] == 1.0
        assert seen[0]["crash_on_checkpoint"] == {0: 2}
        # ...job 2 saw the backend's own defaults, not job 1's leftovers
        assert seen[1]["timeout"] == 300.0
        assert seen[1]["heartbeat_interval"] == 0.5
        assert seen[1]["straggler_deadline"] is None
        assert seen[1]["crash_on_checkpoint"] == {}

    def test_knobs_restored_after_each_attempt(self, monkeypatch):
        from repro.backend.process import ProcessBackend

        be = ProcessBackend(timeout=300.0, heartbeat_interval=0.5)
        seen = []
        with self._stubbed_service(monkeypatch, be, seen) as svc:
            assert svc.solve(_spec(deadline=2.5), timeout=30.0).ok
        assert be.timeout == 300.0
        assert be.heartbeat_interval == 0.5
        assert be.straggler_deadline is None
        assert be.crash_on_checkpoint in (None, {})

    def test_simulated_fault_plan_restored(self, monkeypatch):
        from types import SimpleNamespace

        import repro.service.service as service_mod

        be = SimulatedBackend()
        sentinel = object()
        be.faults = sentinel
        monkeypatch.setattr(
            service_mod, "backend_solve",
            lambda *a, **kw: SimpleNamespace(x=np.zeros(4), iterations=1,
                                             extras={}),
        )
        with SolverService(backend=be, target_nprocs=4) as svc:
            assert svc.solve(_spec(straggler_deadline=0.25),
                             timeout=30.0).ok
        assert be.faults is sentinel  # restored, not cleared


class TestShutdown:
    def test_drain_completes_queued_work(self):
        with SolverService(backend=SimulatedBackend()) as svc:
            handles = [svc.submit(_spec()) for _ in range(4)]
            assert svc.drain(timeout=60.0)
            results = [h.result(timeout=1.0) for h in handles]
        assert all(r.ok for r in results)

    def test_shutdown_without_drain_cancels_queued(self):
        # a backend slow enough that jobs are still queued at shutdown
        class SlowBackend(ExecutionBackend):
            name = "slow"

            def __init__(self):
                self.inner = SimulatedBackend()

            def run(self, program, nprocs, *, checkpoints=None):
                import time

                time.sleep(0.2)
                return self.inner.run(program, nprocs,
                                      checkpoints=checkpoints)

        svc = SolverService(backend=SlowBackend())
        svc.start()
        handles = [svc.submit(_spec()) for _ in range(6)]
        svc.shutdown(drain=False)
        results = [h.result(timeout=5.0) for h in handles]
        cancelled = [r for r in results if r.status == JobStatus.CANCELLED]
        finished = [r for r in results if r.status == JobStatus.OK]
        assert cancelled, "no job was cancelled despite drain=False"
        assert len(cancelled) + len(finished) == 6
