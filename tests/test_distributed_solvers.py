"""Integration tests: distributed solvers x strategies x matrices."""

import numpy as np
import pytest

from repro.core import (
    JacobiPreconditioner,
    NeumannPreconditioner,
    SSORPreconditioner,
    StoppingCriterion,
    cg_reference,
    hpf_bicg,
    hpf_bicgstab,
    hpf_cg,
    hpf_cgs,
    hpf_pcg,
    make_strategy,
)
from repro.machine import Machine
from repro.sparse import (
    convection_diffusion_1d,
    irregular_powerlaw,
    poisson2d,
    rhs_for_solution,
)

CRIT = StoppingCriterion(rtol=1e-10, maxiter=1000)

STRATEGIES = [
    "dense_rowblock",
    "dense_colblock_2dtemp",
    "csr_forall",
    "csr_forall_aligned",
    "csc_serial",
    "csc_private",
    "csc_private_balanced",
]


class TestHpfCgAcrossStrategies:
    @pytest.mark.parametrize("name", STRATEGIES + ["dense_colblock_serial"])
    def test_solution_matches_reference(self, name, spd_small, rng):
        xt = rng.standard_normal(spd_small.nrows)
        b = rhs_for_solution(spd_small, xt)
        m = Machine(nprocs=4)
        res = hpf_cg(make_strategy(name, m, spd_small), b, criterion=CRIT)
        assert res.converged
        assert np.allclose(res.x, xt, atol=1e-6)

    @pytest.mark.parametrize("name", STRATEGIES)
    def test_iteration_count_matches_sequential(self, name, spd_small, rng):
        """Distributed execution must not change the numerics."""
        b = rng.standard_normal(spd_small.nrows)
        seq = cg_reference(spd_small, b, criterion=CRIT)
        m = Machine(nprocs=4)
        dist = hpf_cg(make_strategy(name, m, spd_small), b, criterion=CRIT)
        assert abs(dist.iterations - seq.iterations) <= 1

    def test_works_on_every_matrix_family(self, spd_family_matrix, rng):
        xt = rng.standard_normal(spd_family_matrix.nrows)
        b = rhs_for_solution(spd_family_matrix, xt)
        m = Machine(nprocs=4)
        res = hpf_cg(
            make_strategy("csr_forall_aligned", m, spd_family_matrix), b, criterion=CRIT
        )
        assert res.converged
        assert np.allclose(res.x, xt, atol=1e-5 * max(1.0, np.abs(xt).max()))

    def test_nonzero_initial_guess(self, spd_small, rng):
        xt = rng.standard_normal(spd_small.nrows)
        b = rhs_for_solution(spd_small, xt)
        m = Machine(nprocs=4)
        res = hpf_cg(
            make_strategy("csr_forall", m, spd_small), b, x0=xt.copy(), criterion=CRIT
        )
        assert res.converged
        assert res.iterations == 0

    def test_result_metadata(self, spd_small, rng):
        b = rng.standard_normal(spd_small.nrows)
        m = Machine(nprocs=4)
        res = hpf_cg(make_strategy("csr_forall", m, spd_small), b, criterion=CRIT)
        assert res.solver == "cg"
        assert res.strategy == "csr_forall"
        assert res.machine_elapsed > 0
        assert res.comm["messages"] > 0
        assert res.extras["nprocs"] == 4
        assert len(res.extras["flops_per_rank"]) == 4
        assert res.history.iterations == res.iterations

    def test_comm_tags_attribute_traffic(self, spd_small, rng):
        b = rng.standard_normal(spd_small.nrows)
        m = Machine(nprocs=4)
        hpf_cg(make_strategy("csr_forall", m, spd_small), b, criterion=CRIT)
        tags = m.stats.by_tag()
        assert "matvec" in tags
        assert "dot" in tags

    def test_unconverged_flagged(self, spd_medium, rng):
        b = rng.standard_normal(spd_medium.nrows)
        m = Machine(nprocs=4)
        res = hpf_cg(
            make_strategy("csr_forall", m, spd_medium),
            b,
            criterion=StoppingCriterion(rtol=1e-14, maxiter=2),
        )
        assert not res.converged
        assert res.iterations == 2


class TestHpfPcg:
    @pytest.mark.parametrize(
        "precond_factory",
        [JacobiPreconditioner, lambda A: SSORPreconditioner(A, 1.2),
         lambda A: NeumannPreconditioner(A, 2)],
        ids=["jacobi", "ssor", "neumann"],
    )
    def test_preconditioned_solution(self, precond_factory, spd_medium, rng):
        xt = rng.standard_normal(spd_medium.nrows)
        b = rhs_for_solution(spd_medium, xt)
        m = Machine(nprocs=4)
        res = hpf_pcg(
            make_strategy("csr_forall_aligned", m, spd_medium),
            b,
            precond_factory(spd_medium),
            criterion=CRIT,
        )
        assert res.converged
        assert np.allclose(res.x, xt, atol=1e-5)

    def test_ssor_charges_serial_time(self, spd_medium, rng):
        """The parallelism trade-off: SSOR converges faster but serialises."""
        b = rng.standard_normal(spd_medium.nrows)
        m_j = Machine(nprocs=4)
        res_j = hpf_pcg(
            make_strategy("csr_forall_aligned", m_j, spd_medium),
            b, JacobiPreconditioner(spd_medium), criterion=CRIT,
        )
        m_s = Machine(nprocs=4)
        res_s = hpf_pcg(
            make_strategy("csr_forall_aligned", m_s, spd_medium),
            b, SSORPreconditioner(spd_medium), criterion=CRIT,
        )
        assert res_s.iterations < res_j.iterations
        # per-iteration cost of SSOR is higher (serialised triangular solves)
        per_iter_s = res_s.machine_elapsed / res_s.iterations
        per_iter_j = res_j.machine_elapsed / res_j.iterations
        assert per_iter_s > per_iter_j

    def test_preconditioner_name_recorded(self, spd_small, rng):
        b = rng.standard_normal(spd_small.nrows)
        m = Machine(nprocs=4)
        res = hpf_pcg(
            make_strategy("csr_forall", m, spd_small),
            b, JacobiPreconditioner(spd_small), criterion=CRIT,
        )
        assert res.extras["preconditioner"] == "jacobi"


class TestNonsymmetricSolvers:
    @pytest.fixture
    def system(self, rng):
        A = convection_diffusion_1d(48, peclet=0.4)
        xt = rng.standard_normal(48)
        return A, xt, rhs_for_solution(A, xt)

    @pytest.mark.parametrize("solver", [hpf_bicg, hpf_cgs, hpf_bicgstab])
    def test_solution(self, solver, system):
        A, xt, b = system
        m = Machine(nprocs=4)
        res = solver(make_strategy("csr_forall_aligned", m, A), b, criterion=CRIT)
        assert res.converged, solver.__name__
        assert np.allclose(res.x, xt, atol=1e-5)

    def test_bicg_needs_transpose_comm(self, system):
        """E13's mechanism: BiCG pays the wrong-way product's merge."""
        A, _, b = system
        m = Machine(nprocs=4)
        hpf_bicg(make_strategy("csr_forall_aligned", m, A), b, criterion=CRIT)
        assert "reduce_scatter" in m.stats.by_op()

    def test_cgs_avoids_transpose(self, system):
        A, _, b = system
        m = Machine(nprocs=4)
        hpf_cgs(make_strategy("csr_forall_aligned", m, A), b, criterion=CRIT)
        # no transpose -> no private merge traffic in csr_forall_aligned
        assert "reduce_scatter" not in m.stats.by_op()

    def test_bicgstab_four_inner_products(self, system):
        """Section 2.1: BiCGSTAB needs 4 inner products per iteration."""
        A, _, b = system
        m = Machine(nprocs=4)
        res = hpf_bicgstab(make_strategy("csr_forall_aligned", m, A), b, criterion=CRIT)
        dots = m.stats.by_tag()["dot"]["count"]
        # >= 4 per iteration (plus setup norms)
        assert dots >= 4 * res.iterations

    @pytest.mark.parametrize("solver", [hpf_bicg, hpf_cgs, hpf_bicgstab])
    def test_spd_system_also_solved(self, solver, spd_small, rng):
        xt = rng.standard_normal(spd_small.nrows)
        b = rhs_for_solution(spd_small, xt)
        m = Machine(nprocs=4)
        res = solver(make_strategy("csr_forall_aligned", m, spd_small), b, criterion=CRIT)
        assert res.converged
        assert np.allclose(res.x, xt, atol=1e-5)


class TestLoadBalanceDiagnostics:
    def test_balanced_strategy_lowers_matvec_imbalance(self, rng):
        A = irregular_powerlaw(240, seed=11)
        b = rng.standard_normal(240)
        crit = StoppingCriterion(rtol=1e-8, maxiter=300)
        m_uni = Machine(nprocs=8)
        strat_uni = make_strategy("csc_private", m_uni, A)
        res_uni = hpf_cg(strat_uni, b, criterion=crit)
        m_bal = Machine(nprocs=8)
        strat_bal = make_strategy("csc_private_balanced", m_bal, A)
        res_bal = hpf_cg(strat_bal, b, criterion=crit)
        # the mat-vec work (nonzeros per rank) is what the partitioner
        # balances; vector work stays O(n/P) either way
        uni_nnz = strat_uni.per_rank_nnz()
        bal_nnz = strat_bal.per_rank_nnz()
        assert bal_nnz.max() / bal_nnz.mean() <= uni_nnz.max() / uni_nnz.mean()
        assert np.allclose(res_uni.x, res_bal.x, atol=1e-5)
