"""Write-ahead job journal: lifecycle records, replay, dedupe, quarantine.

Fast deterministic coverage on the simulated backend; the real
SIGKILL-the-driver test lives in ``test_service_crash_replay.py``.
"""

import os
import threading
import time

import numpy as np
import pytest

from repro.backend.base import ExecutionBackend, WorkerCrashedError
from repro.backend.chaos import _chaos_problem
from repro.backend.simulated import SimulatedBackend
from repro.core.stopping import StoppingCriterion
from repro.service import (
    JobJournal,
    JobQuarantinedError,
    JobSpec,
    JobStatus,
    RetryPolicy,
    ServiceOverloadedError,
    SolverService,
    TenantFairQueue,
    new_idempotency_key,
)
from repro.service.journal import (
    ACCEPTED,
    COMPLETED,
    DISPATCHED,
    FAILED,
    QUARANTINED,
)


def _spec(tenant="t0", key=None, **kw):
    A, b = _chaos_problem(32)
    return JobSpec(matrix=A, b=b, tenant=tenant, nprocs=4,
                   criterion=StoppingCriterion(rtol=1e-10, atol=0.0),
                   idempotency_key=key, **kw)


def _service(tmp_path, **kw):
    kw.setdefault("backend", SimulatedBackend())
    kw.setdefault("journal_dir", str(tmp_path / "journal"))
    return SolverService(**kw)


class TestRecordLifecycle:
    def test_happy_path_is_three_records(self, tmp_path):
        with _service(tmp_path) as svc:
            assert svc.solve(_spec(key="k"), timeout=30.0).ok
        journal = JobJournal(str(tmp_path / "journal"))
        assert len(journal) == 3  # accepted + dispatched + completed
        state = journal.state("k")
        assert state.terminal == COMPLETED
        assert state.dispatches == 1
        assert state.attempts == []  # ok attempts are not journaled
        assert state.condemnations == 0
        assert journal.tmp_files() == []

    def test_failed_attempts_are_journaled(self, tmp_path):
        class AlwaysCrash(ExecutionBackend):
            name = "crash"

            def run(self, program, nprocs, *, checkpoints=None):
                raise WorkerCrashedError(0, "injected")

        with _service(
            tmp_path, backend=AlwaysCrash(),
            retry=RetryPolicy(max_attempts=2, base_delay=0.001,
                              max_delay=0.002),
        ) as svc:
            res = svc.solve(_spec(key="k"), timeout=30.0)
        assert res.status == JobStatus.FAILED
        journal = JobJournal(str(tmp_path / "journal"))
        state = journal.state("k")
        assert state.terminal == FAILED
        assert [a["outcome"] for a in state.attempts] == [
            "worker_crashed", "worker_crashed"
        ]
        # no pool on this backend: crashes are not condemnation evidence
        assert state.condemnations == 0

    def test_overload_rejection_does_not_poison_the_key(self, tmp_path):
        # a transient queue-full must not permanently fail the key: the
        # rejection is non-terminal for idempotency, so a resubmission
        # re-attempts instead of deduping to the stale rejection
        svc = _service(tmp_path, queue=TenantFairQueue(max_depth=1))
        svc.start()
        try:
            rejected_key = None
            for i in range(50):
                try:
                    svc.submit(_spec(key=f"k{i}"))
                except ServiceOverloadedError:
                    rejected_key = f"k{i}"
                    break
            assert rejected_key is not None
            # the key was released, not bound to the rejection
            assert svc.handle_for(rejected_key) is None
            handle = None
            for _ in range(200):
                try:
                    handle = svc.submit(_spec(key=rejected_key))
                    break
                except ServiceOverloadedError:
                    time.sleep(0.02)
            assert handle is not None, "resubmission never accepted"
            assert svc.counters.deduped == 0
            assert handle.result(timeout=30.0).ok
        finally:
            svc.shutdown()
        journal = JobJournal(str(tmp_path / "journal"))
        assert journal.state(rejected_key).terminal == COMPLETED

    def test_rejected_job_is_replayed_by_restart(self, tmp_path):
        # without a resubmission, the rejected job's ACCEPTED record
        # stays non-terminal -- parked-like, a restart completes it
        svc = _service(tmp_path, queue=TenantFairQueue(max_depth=1))
        svc.start()
        rejected_key = None
        try:
            for i in range(50):
                try:
                    svc.submit(_spec(key=f"k{i}"))
                except ServiceOverloadedError:
                    rejected_key = f"k{i}"
                    break
            assert rejected_key is not None
        finally:
            svc.shutdown()
        journal = JobJournal(str(tmp_path / "journal"))
        assert journal.state(rejected_key).terminal is None
        with _service(tmp_path) as svc2:
            assert svc2.counters.replayed == 1
            assert svc2.handle_for(rejected_key).result(timeout=30.0).ok

    def test_auto_keys_are_unique(self):
        keys = {new_idempotency_key() for _ in range(64)}
        assert len(keys) == 64
        assert all(k.startswith("auto-") for k in keys)


class TestDedupe:
    def test_live_dedupe_returns_same_handle(self, tmp_path):
        with _service(tmp_path) as svc:
            h1 = svc.submit(_spec(key="same"))
            h2 = svc.submit(_spec(key="same"))
            assert h2 is h1
            assert svc.counters.deduped == 1
            assert h1.result(timeout=30.0).ok
        # deduped submit wrote no second ACCEPTED record
        journal = JobJournal(str(tmp_path / "journal"))
        assert len(journal) == 3

    def test_restart_answers_from_recorded_result(self, tmp_path):
        with _service(tmp_path) as svc:
            r1 = svc.solve(_spec(key="k", reproducible=True), timeout=30.0)
        with _service(tmp_path) as svc2:
            r2 = svc2.submit(_spec(key="k", reproducible=True)).result(
                timeout=5.0
            )
        assert svc2.counters.deduped == 1
        assert svc2.counters.submitted == 0  # nothing re-ran
        assert r2.status == JobStatus.OK
        assert np.array_equal(r1.x, r2.x)  # bitwise: the recorded answer

    def test_unkeyed_jobs_never_dedupe(self, tmp_path):
        with _service(tmp_path) as svc:
            h1 = svc.submit(_spec())
            h2 = svc.submit(_spec())
            assert h1 is not h2 and h1.key != h2.key
            assert h1.result(timeout=30.0).ok
            assert h2.result(timeout=30.0).ok
        assert svc.counters.deduped == 0


class TestReplay:
    def test_accepted_jobs_replay_in_original_fair_order(self, tmp_path):
        # journal a dead driver's backlog by hand: tenant a floods, b
        # squeezes one in -- replay must preserve the accept order so
        # the fair queue re-serves b second, exactly as before the death
        journal = JobJournal(str(tmp_path / "journal"))
        order = [("a", "a0"), ("a", "a1"), ("b", "b0"), ("a", "a2")]
        for tenant, key in order:
            journal.accepted(key, _spec(tenant=tenant, key=key))

        served = []
        with _service(tmp_path) as svc:
            assert svc.counters.replayed == 4
            for tenant, key in order:
                res = svc.handle_for(key).result(timeout=30.0)
                assert res.status == JobStatus.OK
                served.append((res.queued, key))
        # the dispatcher dequeues sequentially, so time spent queued
        # orders the jobs as served: a0, b0 (one cycle in), a1, a2
        by_service = [k for _, k in sorted(served)]
        assert by_service == ["a0", "b0", "a1", "a2"]

    def test_dispatched_job_is_rerun(self, tmp_path):
        journal = JobJournal(str(tmp_path / "journal"))
        journal.accepted("k", _spec(key="k"))
        journal.dispatched("k")  # driver died mid-job: one open dispatch
        with _service(tmp_path) as svc:
            res = svc.handle_for("k").result(timeout=30.0)
        assert res.status == JobStatus.OK
        assert svc.counters.replayed == 1
        # the interrupted dispatch was counted as condemnation evidence
        journal2 = JobJournal(str(tmp_path / "journal"))
        assert journal2.state("k").terminal == COMPLETED

    def test_terminal_jobs_are_not_rerun(self, tmp_path):
        with _service(tmp_path) as svc:
            svc.solve(_spec(key="done"), timeout=30.0)
        with _service(tmp_path) as svc2:
            assert svc2.counters.replayed == 0
            assert svc2.handle_for("done").done()

    def test_corrupt_record_is_skipped_not_fatal(self, tmp_path):
        with _service(tmp_path) as svc:
            svc.solve(_spec(key="k0"), timeout=30.0)
            svc.submit(_spec(key="k1"))
            svc.drain(timeout=30.0)
        jdir = tmp_path / "journal"
        # flip bytes in k1's terminal record: k1 loses its terminal
        # event and becomes replayable again -- degraded, not poisoned
        victim = sorted(os.listdir(jdir))[-1]
        raw = bytearray((jdir / victim).read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        (jdir / victim).write_bytes(bytes(raw))
        journal = JobJournal(str(jdir))
        assert journal.skipped_records == [victim]
        # __len__ counts folded records, not max-seq: the corrupt
        # record must not inflate the telemetry count
        assert len(journal) == 5
        assert journal.state("k0").terminal == COMPLETED
        with _service(tmp_path) as svc2:
            assert svc2.counters.replayed == 1
            assert svc2.handle_for("k1").result(timeout=30.0).ok


class TestConcurrency:
    def test_concurrent_appends_lose_no_records(self, tmp_path):
        # submit() journals ACCEPTED from client threads while the
        # dispatcher journals everything else; without the journal's
        # lock two appends can claim one seq and os.replace silently
        # drops a record
        journal = JobJournal(str(tmp_path / "journal"), fsync=False)
        n_threads, per_thread = 8, 25
        barrier = threading.Barrier(n_threads)

        def writer(t):
            barrier.wait()
            for i in range(per_thread):
                journal.accepted(f"t{t}-{i}", None)

        threads = [
            threading.Thread(target=writer, args=(t,))
            for t in range(n_threads)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        total = n_threads * per_thread
        assert len(journal) == total
        reloaded = JobJournal(str(tmp_path / "journal"))
        assert reloaded.skipped_records == []
        assert len(reloaded) == total
        assert len(reloaded.states()) == total


class TestReplayEdgeCases:
    def test_terminal_record_without_result_still_resolves(self, tmp_path):
        # a terminal record whose result payload is None must not leave
        # an unfulfilled handle (a deduped resubmission would block
        # until timeout) -- it resolves with a synthesized result
        journal = JobJournal(str(tmp_path / "journal"))
        journal.accepted("k", _spec(key="k"))
        journal.dispatched("k")
        journal.completed("k", None)
        journal.accepted("q", _spec(key="q"))
        journal.quarantined("q", None)
        with _service(tmp_path) as svc:
            assert svc.counters.replayed == 0
            hk, hq = svc.handle_for("k"), svc.handle_for("q")
            assert hk.done() and hq.done()
            rk = hk.result(timeout=1.0)
            rq = hq.result(timeout=1.0)
            # dedupe resolves immediately instead of blocking
            r2 = svc.submit(_spec(key="k")).result(timeout=1.0)
        assert rk.classification == "journal_result_missing"
        assert rk.status == JobStatus.FAILED  # lost payload can't claim ok
        assert rq.status == JobStatus.QUARANTINED
        assert r2 is rk and svc.counters.deduped == 1

    def test_terminal_replay_does_not_consume_job_ids(self, tmp_path):
        # the recorded job_id is reused; the fallback _new_job_id() must
        # be lazy, not evaluated for every replayed terminal record
        with _service(tmp_path) as svc:
            first = svc.solve(_spec(key="k"), timeout=30.0)
        with _service(tmp_path) as svc2:
            assert svc2.handle_for("k").result(timeout=1.0).job_id \
                == first.job_id
            assert svc2._next_job_id == 0


class TestQuarantine:
    def test_interrupted_dispatches_quarantine_at_replay(self, tmp_path):
        # two driver deaths with this job in flight = the bound (2):
        # never allowed to condemn a third generation
        journal = JobJournal(str(tmp_path / "journal"))
        journal.accepted("poison", _spec(key="poison"))
        journal.dispatched("poison")
        journal.dispatched("poison")  # re-dispatch: death #1; open: #2
        assert JobJournal(str(tmp_path / "journal")).condemnations(
            "poison"
        ) == 2
        with _service(tmp_path) as svc:
            res = svc.handle_for("poison").result(timeout=5.0)
        assert res.status == JobStatus.QUARANTINED
        assert res.classification == "quarantined"
        assert "JobQuarantinedError" in res.error
        assert svc.counters.quarantined == 1
        assert svc.counters.replayed == 0  # never reached the queue
        # terminal now: a third restart replays nothing and dedupes
        with _service(tmp_path) as svc2:
            r2 = svc2.submit(_spec(key="poison")).result(timeout=5.0)
        assert r2.status == JobStatus.QUARANTINED
        assert svc2.counters.deduped == 1
        assert svc2.counters.quarantined == 0  # not re-quarantined

    def test_condemned_attempts_quarantine_mid_retry(self, tmp_path):
        # evidence from journaled condemned attempts (pool generations
        # burned) reaches the bound while the job is still retrying
        journal = JobJournal(str(tmp_path / "journal"))
        journal.accepted("poison", _spec(key="poison"))
        journal.dispatched("poison")
        journal.attempt("poison", 1, "worker_crashed", condemned=True)
        journal.attempt("poison", 2, "worker_crashed", condemned=True)
        state = JobJournal(str(tmp_path / "journal")).state("poison")
        assert state.condemnations == 2 and state.replayable
        with _service(tmp_path) as svc:
            res = svc.handle_for("poison").result(timeout=5.0)
        assert res.status == JobStatus.QUARANTINED

    def test_one_condemnation_is_not_poison(self, tmp_path):
        journal = JobJournal(str(tmp_path / "journal"))
        journal.accepted("k", _spec(key="k"))
        journal.dispatched("k")  # one driver death: below the bound
        with _service(tmp_path) as svc:
            assert svc.handle_for("k").result(timeout=30.0).ok
        assert svc.counters.quarantined == 0

    def test_quarantine_after_validation(self, tmp_path):
        with pytest.raises(ValueError):
            SolverService(backend=SimulatedBackend(), quarantine_after=0)
        err = JobQuarantinedError("k", 3, 2)
        assert err.key == "k" and err.condemnations == 3 and err.bound == 2


class TestDeadlineExpiry:
    def test_expired_deadline_fast_fails_at_dequeue(self, tmp_path):
        # deadline 0: by dequeue time the job has spent its whole budget
        # queued, so it must fail without touching the backend
        class CountingBackend(ExecutionBackend):
            name = "counting"

            def __init__(self):
                self.runs = 0
                self.inner = SimulatedBackend()

            def run(self, program, nprocs, *, checkpoints=None):
                self.runs += 1
                return self.inner.run(program, nprocs,
                                      checkpoints=checkpoints)

        be = CountingBackend()
        with _service(tmp_path, backend=be) as svc:
            res = svc.solve(_spec(key="late", deadline=0.0), timeout=30.0)
        assert res.status == JobStatus.EXPIRED
        assert res.classification == "deadline_expired"
        assert res.attempts == []
        assert be.runs == 0  # the pool was never touched
        assert svc.counters.expired == 1
        # journaled terminal: a restart does not replay it
        journal = JobJournal(str(tmp_path / "journal"))
        assert journal.state("late").terminal == FAILED
        with _service(tmp_path) as svc2:
            assert svc2.counters.replayed == 0

    def test_expiry_works_without_journal(self):
        with SolverService(backend=SimulatedBackend()) as svc:
            res = svc.solve(_spec(deadline=0.0), timeout=30.0)
        assert res.status == JobStatus.EXPIRED
        assert svc.counters.expired == 1


class TestGracefulDrain:
    def test_parked_jobs_replay_exactly_once(self, tmp_path):
        svc = _service(tmp_path)
        svc.start()
        handles = [svc.submit(_spec(key=f"k{i}", tenant=f"t{i % 2}"))
                   for i in range(8)]
        summary = svc.graceful_drain(timeout=30.0)
        assert summary["drained"] and summary["cancelled"] == 0
        statuses = [h.result(timeout=5.0).status for h in handles]
        parked = [i for i, s in enumerate(statuses)
                  if s == JobStatus.PARKED]
        done = [i for i, s in enumerate(statuses) if s == JobStatus.OK]
        assert len(parked) + len(done) == 8
        assert len(parked) == summary["parked"] == svc.counters.parked
        # restart: exactly the parked jobs replay, each completing once
        with _service(tmp_path) as svc2:
            assert svc2.counters.replayed == len(parked)
            for i in range(8):
                assert svc2.handle_for(f"k{i}").result(timeout=30.0).ok
        assert svc2.counters.completed == len(parked)  # done jobs not re-run

    def test_drain_without_journal_cancels(self):
        svc = SolverService(backend=SimulatedBackend())
        svc.start()
        handles = [svc.submit(_spec()) for _ in range(6)]
        summary = svc.graceful_drain(timeout=30.0)
        assert summary["parked"] == 0 and summary["journal"] is None
        statuses = [h.result(timeout=5.0).status for h in handles]
        assert set(statuses) <= {JobStatus.OK, JobStatus.CANCELLED}
        assert statuses.count(JobStatus.CANCELLED) == summary["cancelled"]

    def test_submit_refused_after_drain(self, tmp_path):
        svc = _service(tmp_path)
        svc.start()
        svc.graceful_drain(timeout=10.0)
        with pytest.raises(RuntimeError):
            svc.submit(_spec(key="late"))


class TestStatusSnapshot:
    def test_journal_section(self, tmp_path):
        with _service(tmp_path) as svc:
            svc.solve(_spec(key="k"), timeout=30.0)
            st = svc.status()
        assert st["journal"]["records"] == 3
        assert st["journal"]["jobs"] == 1
        assert st["journal"]["skipped_records"] == 0

    def test_no_journal_section_without_journal(self):
        with SolverService(backend=SimulatedBackend()) as svc:
            assert svc.status()["journal"] is None

    def test_journal_events_exported(self):
        assert ACCEPTED == "accepted" and DISPATCHED == "dispatched"
        assert COMPLETED == "completed" and QUARANTINED == "quarantined"
