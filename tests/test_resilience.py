"""Tests for solver-level fault tolerance (checkpoint / audit / rollback)."""

import numpy as np
import pytest

from repro.baselines import spmd_cg
from repro.core import (
    JacobiPreconditioner,
    RecoveryExhaustedError,
    ResilienceConfig,
    StoppingCriterion,
    hpf_cg,
    hpf_pcg,
    make_strategy,
)
from repro.core.resilience import latest_complete_checkpoint
from repro.machine import FaultPlan, Machine, RankCrash, StateCorruption
from repro.sparse import poisson1d

CRIT = StoppingCriterion(rtol=1e-8, maxiter=300)


def _problem(n=64, seed=0):
    A = poisson1d(n)
    b = np.random.default_rng(seed).standard_normal(n)
    return A, b


def _strategy(A):
    return make_strategy("csr_forall_aligned", Machine(nprocs=4), A)


class TestConfigAndHelpers:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ResilienceConfig(checkpoint_interval=0)
        with pytest.raises(ValueError):
            ResilienceConfig(sanity_interval=0)
        with pytest.raises(ValueError):
            ResilienceConfig(sanity_rtol=0.0)
        with pytest.raises(ValueError):
            ResilienceConfig(max_restarts=-1)
        with pytest.raises(ValueError):
            ResilienceConfig(restart_time=-1.0)
        with pytest.raises(ValueError):
            ResilienceConfig(stagnation_factor=0.0)
        with pytest.raises(ValueError):
            ResilienceConfig(stagnation_patience=0)

    def test_latest_complete_checkpoint(self):
        store = {10: {0: "a", 1: "b"}, 20: {0: "c"}, 5: {0: "d", 1: "e"}}
        k, snap = latest_complete_checkpoint(store, size=2)
        assert k == 10 and snap == {0: "a", 1: "b"}  # 20 is partial
        assert latest_complete_checkpoint({3: {0: "x"}}, size=2) is None
        assert latest_complete_checkpoint({}, size=4) is None


class TestHpfRecovery:
    def test_guarded_fault_free_run_is_identical(self):
        A, b = _problem()
        ref = hpf_cg(_strategy(A), b, criterion=CRIT)
        res = hpf_cg(_strategy(A), b, criterion=CRIT,
                     resilience=ResilienceConfig())
        assert np.array_equal(res.x, ref.x)
        assert res.iterations == ref.iterations
        assert res.extras["resilience"]["restarts"] == 0
        assert res.extras["resilience"]["refreshes"] == 0
        assert res.extras["resilience"]["audits"] > 0

    @pytest.mark.parametrize("target", ["x", "r"])
    def test_invariant_breaking_corruption_rolls_back(self, target):
        A, b = _problem()
        ref = hpf_cg(_strategy(A), b, criterion=CRIT)
        plan = FaultPlan(
            seed=3,
            state_corruptions=[StateCorruption(iteration=7, target=target)],
        )
        res = hpf_cg(_strategy(A), b, criterion=CRIT, faults=plan)
        assert res.converged
        assert res.extras["resilience"]["restarts"] == 1
        assert res.extras["resilience"]["corruptions_detected"] == 1
        assert np.linalg.norm(res.x - ref.x) <= 1e-6 * np.linalg.norm(ref.x)

    def test_direction_corruption_triggers_refresh(self):
        A, b = _problem()
        ref = hpf_cg(_strategy(A), b, criterion=CRIT)
        plan = FaultPlan(
            seed=3,
            state_corruptions=[StateCorruption(iteration=7, target="p")],
        )
        res = hpf_cg(_strategy(A), b, criterion=CRIT, faults=plan)
        assert res.converged
        assert res.extras["resilience"]["refreshes"] >= 1
        assert np.linalg.norm(res.x - ref.x) <= 1e-6 * np.linalg.norm(ref.x)

    def test_exhausted_restarts_raise(self):
        A, b = _problem()
        plan = FaultPlan(
            seed=3,
            state_corruptions=[StateCorruption(iteration=7, target="x")],
        )
        with pytest.raises(RecoveryExhaustedError):
            hpf_cg(_strategy(A), b, criterion=CRIT, faults=plan,
                   resilience=ResilienceConfig(max_restarts=0))

    def test_recovery_overhead_is_charged(self):
        A, b = _problem()
        strat_ref, strat = _strategy(A), _strategy(A)
        hpf_cg(strat_ref, b, criterion=CRIT)
        plan = FaultPlan(
            seed=3,
            state_corruptions=[StateCorruption(iteration=7, target="x")],
        )
        hpf_cg(strat, b, criterion=CRIT, faults=plan)
        assert strat.machine.elapsed() > strat_ref.machine.elapsed()
        restart = [
            r for r in strat.machine.stats.comm_records if r.op == "restart"
        ]
        assert len(restart) == 1

    def test_pcg_corruption_recovery(self):
        A, b = _problem()
        m_ref, m = Machine(nprocs=4), Machine(nprocs=4)
        ref = hpf_pcg(
            make_strategy("csr_forall_aligned", m_ref, A), b,
            JacobiPreconditioner(A), criterion=CRIT,
        )
        plan = FaultPlan(
            seed=3,
            state_corruptions=[StateCorruption(iteration=6, target="r")],
        )
        res = hpf_pcg(
            make_strategy("csr_forall_aligned", m, A), b,
            JacobiPreconditioner(A), criterion=CRIT, faults=plan,
        )
        assert res.converged
        assert res.extras["resilience"]["restarts"] == 1
        assert np.linalg.norm(res.x - ref.x) <= 1e-6 * np.linalg.norm(ref.x)

    def test_pcg_guarded_fault_free_identical(self):
        A, b = _problem()
        m_ref, m = Machine(nprocs=4), Machine(nprocs=4)
        ref = hpf_pcg(
            make_strategy("csr_forall_aligned", m_ref, A), b,
            JacobiPreconditioner(A), criterion=CRIT,
        )
        res = hpf_pcg(
            make_strategy("csr_forall_aligned", m, A), b,
            JacobiPreconditioner(A), criterion=CRIT,
            resilience=ResilienceConfig(),
        )
        assert np.array_equal(res.x, ref.x)
        assert res.iterations == ref.iterations


class TestSpmdRecovery:
    def _reference(self, A, b):
        return spmd_cg(Machine(nprocs=4), A, b, criterion=CRIT)

    def test_guarded_fault_free_matches_unguarded(self):
        A, b = _problem()
        ref = self._reference(A, b)
        res = spmd_cg(Machine(nprocs=4), A, b, criterion=CRIT,
                      resilience=ResilienceConfig())
        assert res.converged
        assert np.linalg.norm(res.x - ref.x) <= 1e-10 * np.linalg.norm(ref.x)
        assert res.extras["resilience"]["extra_iterations"] == 0
        assert res.extras["reliable"]["retransmissions"] == 0

    def test_message_loss_recovered_and_charged(self):
        A, b = _problem()
        ref = self._reference(A, b)
        plan = FaultPlan(seed=11, drop_prob=0.05)
        m = Machine(nprocs=4)
        res = spmd_cg(m, A, b, criterion=CRIT, faults=plan)
        assert res.converged
        assert np.linalg.norm(res.x - ref.x) <= 1e-8 * np.linalg.norm(ref.x)
        assert res.extras["reliable"]["retransmissions"] > 0
        assert res.extras["reliable"]["retransmitted_words"] > 0
        assert res.extras["fault_stats"]["dropped"] > 0
        # retransmissions show up in the machine's accounting
        ref_m = Machine(nprocs=4)
        spmd_cg(ref_m, A, b, criterion=CRIT)
        assert m.stats.total_words > ref_m.stats.total_words

    def test_mid_solve_crash_restarts_from_checkpoint(self):
        A, b = _problem()
        ref_m = Machine(nprocs=4)
        ref = spmd_cg(ref_m, A, b, criterion=CRIT)
        plan = FaultPlan(
            crashes=[RankCrash(rank=2, at_time=0.4 * ref_m.elapsed())]
        )
        res = spmd_cg(Machine(nprocs=4), A, b, criterion=CRIT, faults=plan)
        assert res.converged
        assert np.linalg.norm(res.x - ref.x) <= 1e-8 * np.linalg.norm(ref.x)
        assert res.extras["resilience"]["crash_restarts"] == 1
        assert res.extras["resilience"]["extra_iterations"] > 0

    def test_spmd_state_corruption_rolls_back(self):
        A, b = _problem()
        ref = self._reference(A, b)
        plan = FaultPlan(
            seed=3,
            state_corruptions=[StateCorruption(iteration=8, target="x", rank=1)],
        )
        res = spmd_cg(Machine(nprocs=4), A, b, criterion=CRIT, faults=plan)
        assert res.converged
        assert np.linalg.norm(res.x - ref.x) <= 1e-8 * np.linalg.norm(ref.x)
        assert res.extras["resilience"]["rollbacks"] == 1

    def test_loss_and_crash_combined(self):
        A, b = _problem()
        ref_m = Machine(nprocs=4)
        ref = spmd_cg(ref_m, A, b, criterion=CRIT)
        plan = FaultPlan(
            seed=21, drop_prob=0.02,
            crashes=[RankCrash(rank=1, at_time=0.5 * ref_m.elapsed())],
        )
        res = spmd_cg(Machine(nprocs=4), A, b, criterion=CRIT, faults=plan)
        assert res.converged
        assert np.linalg.norm(res.x - ref.x) <= 1e-8 * np.linalg.norm(ref.x)
        assert res.extras["resilience"]["crash_restarts"] == 1

    def test_bit_identical_repeats_under_faults(self):
        A, b = _problem()

        def run():
            plan = FaultPlan(seed=11, drop_prob=0.05)
            m = Machine(nprocs=4)
            res = spmd_cg(m, A, b, criterion=CRIT, faults=plan)
            return res.x.tobytes(), m.elapsed(), m.stats.total_words

        assert run() == run()
