"""Degraded-mode execution: shrink, rebalance and straggler detection.

DESIGN.md §9 / the ISSUE acceptance story: a 4-rank CG loses one rank
mid-solve (fail-stop SIGKILL or a deadline-stale straggler), the
supervisor shrinks onto the 3 survivors via an online REDISTRIBUTE of
every operand, restores from the newest complete checkpoint re-sliced to
the new layout, and converges to the fault-free answer.  ``rebalance``
instead keeps the slow rank and re-cuts the row space around it -- and on
the process backend (where lateness is per-op, not per-row) a repeat
offender escalates to shrink.
"""

import numpy as np
import pytest

from repro.backend import (
    ProcessBackend,
    RecoveryPolicy,
    ResilientCGProgram,
    SimulatedBackend,
    WorkerCrashedError,
    backend_solve,
    crash_injection_support,
    process_backend_support,
    reslice_snapshots,
    run_with_recovery,
)
from repro.core.resilience import RecoveryExhaustedError, ResilienceConfig
from repro.core.stopping import StoppingCriterion
from repro.extensions import capacity_scaled_partitioner, cg_balanced_partitioner_1
from repro.hpf import Block
from repro.machine.events import Compute, Recv
from repro.machine.faults import (
    FaultPlan,
    RankCrash,
    RankSlowdown,
    RecvTimeoutError,
    StragglerDetectedError,
)
from repro.sparse.generators import poisson1d, rhs_for_solution

_OK, _DETAIL = process_backend_support()
needs_process = pytest.mark.skipif(
    not _OK, reason=f"process backend unavailable: {_DETAIL}"
)
_KOK, _KDETAIL = crash_injection_support()
needs_crash = pytest.mark.skipif(
    not _KOK, reason=f"crash injection unavailable: {_KDETAIL}"
)


def _problem(n=40):
    A = poisson1d(n)
    b = rhs_for_solution(A, np.linspace(1.0, 2.0, n))
    return A, b, StoppingCriterion(rtol=1e-10, atol=0.0)


def _reference(A, b, crit, nprocs=4):
    return backend_solve("cg", A, b, backend="simulated", nprocs=nprocs,
                         criterion=crit)


# a single dilated matvec segment (~60 flops at 1e-9 s/flop) must exceed
# the virtual deadline on its own: CG's halo exchanges drag the peers'
# clocks up to the victim every iteration, so lag never accumulates
_SIM_FACTOR = 1.0e5
_SIM_DEADLINE = 1.0e-3


class TestShrinkSimulated:
    def test_crash_shrink_converges_on_survivors(self):
        # the ISSUE acceptance criterion: kill 1 of 4 mid-solve, shrink,
        # finish on 3 survivors, match the fault-free answer
        A, b, crit = _problem()
        ref = _reference(A, b, crit)
        plan = FaultPlan(seed=0, crashes=[RankCrash(rank=2, at_time=0.01)])
        res = backend_solve(
            "cg", A, b, backend="simulated", nprocs=4, criterion=crit,
            faults=plan, resilience=ResilienceConfig(checkpoint_interval=5),
            policy="shrink",
        )
        assert res.converged
        np.testing.assert_allclose(res.x, ref.x, rtol=0.0, atol=1e-12)
        rec = res.extras["recovery"]
        assert rec["policy"] == "shrink"
        assert rec["final_nprocs"] == 3
        assert rec["crashes_recovered"] == [2]
        assert len(rec["shrinks"]) == 1
        shrink = rec["shrinks"][0]
        assert shrink["victim"] == 2 and not shrink["straggler"]
        # 4 -> 3 on a hypercube cannot stay a hypercube
        assert shrink["topology_fallback"] == "hypercube"
        assert len(rec["redistributions"]) == 1
        redist = rec["redistributions"][0]
        assert redist["messages"] > 0
        assert redist["modelled_time"] > 0.0
        assert redist["lost_words"] > 0.0  # the victim's share moved

    def test_straggler_shrink_converges(self):
        A, b, crit = _problem()
        ref = _reference(A, b, crit)
        plan = FaultPlan(seed=0, slowdowns=[
            RankSlowdown(rank=1, at_time=0.0, factor=_SIM_FACTOR)
        ])
        res = backend_solve(
            "cg", A, b, backend="simulated", nprocs=4, criterion=crit,
            faults=plan, policy="shrink", straggler_deadline=_SIM_DEADLINE,
        )
        assert res.converged
        np.testing.assert_allclose(res.x, ref.x, rtol=0.0, atol=1e-12)
        rec = res.extras["recovery"]
        assert rec["stragglers_detected"] == [1]
        assert rec["final_nprocs"] == 3
        assert rec["shrinks"][0]["straggler"] is True

    def test_straggler_error_is_typed(self):
        A, b, crit = _problem()
        prog = ResilientCGProgram(A, b, criterion=crit)
        plan = FaultPlan(seed=0, slowdowns=[
            RankSlowdown(rank=1, at_time=0.0, factor=_SIM_FACTOR)
        ])
        be = SimulatedBackend(faults=plan, straggler_deadline=_SIM_DEADLINE)
        with pytest.raises(StragglerDetectedError) as err:
            be.run(prog, 4)
        assert err.value.rank == 1
        assert err.value.lag is not None and err.value.lag > _SIM_DEADLINE

    def test_min_ranks_stops_the_shrink(self):
        A, b, crit = _problem()
        prog = ResilientCGProgram(A, b, criterion=crit, checkpoint_interval=5)
        plan = FaultPlan(seed=0, crashes=[RankCrash(rank=2, at_time=0.01)])
        with pytest.raises(RecoveryExhaustedError):
            run_with_recovery(
                SimulatedBackend(faults=plan), prog, 4,
                policy="shrink", min_ranks=4,
            )

    def test_unknown_policy_rejected(self):
        A, b, crit = _problem()
        assert RecoveryPolicy == ("respawn", "shrink", "rebalance")
        with pytest.raises(ValueError):
            backend_solve("cg", A, b, backend="simulated", nprocs=2,
                          criterion=crit, policy="abandon")


class TestRebalanceSimulated:
    def test_rebalance_keeps_all_ranks(self):
        A, b, crit = _problem()
        ref = _reference(A, b, crit)
        plan = FaultPlan(seed=0, slowdowns=[
            RankSlowdown(rank=1, at_time=0.0, factor=_SIM_FACTOR)
        ])
        res = backend_solve(
            "cg", A, b, backend="simulated", nprocs=4, criterion=crit,
            faults=plan, policy="rebalance",
            straggler_deadline=_SIM_DEADLINE,
        )
        assert res.converged
        np.testing.assert_allclose(res.x, ref.x, rtol=0.0, atol=1e-12)
        rec = res.extras["recovery"]
        assert rec["stragglers_detected"] == [1]
        assert rec["final_nprocs"] == 4  # nobody dropped
        assert len(rec["rebalances"]) == 1
        assert rec["shrinks"] == []
        # the straggler's capacity share must have shrunk its chunk
        reb = rec["rebalances"][0]
        assert reb["victim"] == 1
        assert 0.0 < reb["capacity"] < 1.0


class TestShrinkProcess:
    @needs_crash
    def test_sigkill_shrink_converges_on_survivors(self):
        # the ISSUE acceptance criterion on real processes
        A, b, crit = _problem()
        ref = _reference(A, b, crit)
        be = ProcessBackend(timeout=60.0, crash_on_checkpoint={2: 10})
        res = backend_solve(
            "cg", A, b, backend=be, nprocs=4, criterion=crit,
            resilience=ResilienceConfig(checkpoint_interval=5),
            policy="shrink",
        )
        assert res.converged
        np.testing.assert_allclose(res.x, ref.x, rtol=0.0, atol=1e-12)
        rec = res.extras["recovery"]
        assert rec["crashes_recovered"] == [2]
        assert rec["final_nprocs"] == 3
        assert len(rec["shrinks"]) == 1
        assert rec["redistributions"][0]["modelled_time"] > 0.0

    @needs_process
    def test_straggler_detected_and_shrunk(self):
        A, b, crit = _problem()
        ref = _reference(A, b, crit)
        plan = FaultPlan(seed=0, slowdowns=[
            RankSlowdown(rank=1, at_time=0.0, op_delay=1.5)
        ])
        res = backend_solve(
            "cg", A, b, backend="process", nprocs=4, criterion=crit,
            faults=plan, policy="shrink",
            straggler_deadline=1.0, heartbeat_interval=0.2,
        )
        assert res.converged
        np.testing.assert_allclose(res.x, ref.x, rtol=0.0, atol=1e-12)
        rec = res.extras["recovery"]
        assert rec["stragglers_detected"] == [1]
        assert rec["final_nprocs"] == 3

    @needs_process
    def test_rebalance_escalates_to_shrink(self):
        # per-op lateness does not scale with the row count, so giving the
        # straggler fewer rows cannot help; the second detection of the
        # same rank must escalate to a shrink (deliberate design point,
        # DESIGN.md §9)
        A, b, crit = _problem()
        ref = _reference(A, b, crit)
        plan = FaultPlan(seed=0, slowdowns=[
            RankSlowdown(rank=1, at_time=0.0, op_delay=1.5)
        ])
        res = backend_solve(
            "cg", A, b, backend="process", nprocs=4, criterion=crit,
            faults=plan, policy="rebalance",
            straggler_deadline=1.0, heartbeat_interval=0.2,
        )
        assert res.converged
        np.testing.assert_allclose(res.x, ref.x, rtol=0.0, atol=1e-12)
        rec = res.extras["recovery"]
        assert rec["stragglers_detected"] == [1, 1]
        assert len(rec["rebalances"]) == 1
        assert len(rec["shrinks"]) == 1
        assert rec["final_nprocs"] == 3


class TestFaultPlanRemap:
    def test_remap_renumbers_and_drops_the_victim(self):
        plan = FaultPlan(
            seed=0,
            crashes=[RankCrash(rank=1, at_time=1.0),
                     RankCrash(rank=3, at_time=2.0)],
            slowdowns=[RankSlowdown(rank=2, at_time=0.0, factor=10.0)],
        )
        plan.remap_ranks([0, 2, 3])  # rank 1 died
        assert [c.rank for c in plan.crash_schedule()] == [2]  # old 3 -> new 2
        assert [s.rank for s in plan.slowdown_schedule()] == [1]  # old 2 -> new 1

    def test_drop_slowdown_consumes(self):
        plan = FaultPlan(seed=0, slowdowns=[
            RankSlowdown(rank=2, at_time=0.0, factor=10.0)
        ])
        assert plan.slowdown_for(2) is not None
        plan.drop_slowdown(2)
        assert plan.slowdown_for(2) is None


class TestCapacityScaledPartitioner:
    def test_equal_capacities_reduce_to_balanced(self):
        rng = np.random.default_rng(7)
        weights = rng.integers(1, 9, size=60).astype(float)
        cuts = capacity_scaled_partitioner(weights, np.ones(4))
        expect = cg_balanced_partitioner_1(weights, 4)
        assert np.array_equal(cuts, expect)

    def test_straggler_gets_proportionally_less(self):
        weights = np.ones(90)
        cuts = capacity_scaled_partitioner(weights, np.array([1.0, 0.25, 1.0]))
        sizes = np.diff(cuts)
        assert sizes[1] < sizes[0] and sizes[1] < sizes[2]
        # bottleneck *time* is balanced: chunk weight / capacity
        times = [sizes[0] / 1.0, sizes[1] / 0.25, sizes[2] / 1.0]
        assert max(times) / min(times) < 2.0


class TestResliceSnapshots:
    @staticmethod
    def _snaps(x, r, p, dist):
        out = {}
        for rank in range(dist.nprocs):
            idx = dist.local_indices(rank)
            out[rank] = {
                "k": 5, "x": x[idx], "r": r[idx], "p": p[idx],
                "rho": 0.5, "rho0": 2.0, "residuals": [1.0, 0.1],
                "iterations": 5, "bnorm": 3.0,
            }
        return out

    def test_reslice_preserves_global_state(self):
        n = 11
        x = np.arange(n, dtype=float)
        r = x + 100.0
        p = x - 50.0
        old, new = Block(n, 4), Block(n, 3)
        snaps = self._snaps(x, r, p, old)
        resliced = reslice_snapshots(snaps, old, new)
        assert set(resliced) == {0, 1, 2}
        for key, ref in (("x", x), ("r", r), ("p", p)):
            rebuilt = np.empty(n)
            for rank in range(new.nprocs):
                rebuilt[new.local_indices(rank)] = resliced[rank][key]
            assert np.array_equal(rebuilt, ref)
        for snap in resliced.values():
            assert snap["k"] == 5 and snap["rho"] == 0.5
            assert snap["residuals"] == [1.0, 0.1] and snap["bnorm"] == 3.0

    def test_incomplete_checkpoint_rejected(self):
        n = 8
        x = np.arange(n, dtype=float)
        old = Block(n, 4)
        snaps = self._snaps(x, x, x, old)
        del snaps[2]
        with pytest.raises(ValueError):
            reslice_snapshots(snaps, old, Block(n, 3))


class _AlwaysCrashBackend:
    """Fake substrate: every run loses rank 0 immediately."""

    name = "fake"
    faults = None

    def __init__(self):
        self.calls = 0

    def run(self, program, nprocs, checkpoints=None):
        self.calls += 1
        raise WorkerCrashedError(0, "staged fail-stop")


class _RestartableProgram:
    restart = None
    n = 8


class TestAttemptAccounting:
    def test_exhaustion_counts_initial_run_plus_restarts(self):
        be = _AlwaysCrashBackend()
        with pytest.raises(RecoveryExhaustedError) as err:
            run_with_recovery(be, _RestartableProgram(), 2, max_restarts=3)
        assert be.calls == 4  # the first run + 3 recovery attempts
        assert "3 recovery attempts" in str(err.value)

    def test_zero_restarts_still_runs_once(self):
        be = _AlwaysCrashBackend()
        with pytest.raises(RecoveryExhaustedError):
            run_with_recovery(be, _RestartableProgram(), 2, max_restarts=0)
        assert be.calls == 1


class TestProcessBackendConfig:
    """Satellite: heartbeat/deadline knobs via constructor and environment."""

    def test_env_run_deadline(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_DEADLINE", "7.5")
        assert ProcessBackend().timeout == 7.5

    def test_env_run_deadline_none_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_DEADLINE", "none")
        assert ProcessBackend().timeout is None

    def test_env_heartbeat_interval(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEARTBEAT_INTERVAL", "0.05")
        assert ProcessBackend().heartbeat_interval == 0.05

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_DEADLINE", "7.5")
        monkeypatch.setenv("REPRO_HEARTBEAT_INTERVAL", "0.05")
        be = ProcessBackend(timeout=3.0, heartbeat_interval=0.2)
        assert be.timeout == 3.0 and be.heartbeat_interval == 0.2

    def test_malformed_env_named_in_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_DEADLINE", "fast")
        with pytest.raises(ValueError, match="REPRO_RUN_DEADLINE"):
            ProcessBackend()

    def test_nonpositive_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEARTBEAT_INTERVAL", "-1")
        with pytest.raises(ValueError, match="REPRO_HEARTBEAT_INTERVAL"):
            ProcessBackend()

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ProcessBackend(timeout=0.0)
        with pytest.raises(ValueError):
            ProcessBackend(heartbeat_interval=0.0)
        with pytest.raises(ValueError):
            ProcessBackend(straggler_deadline=-1.0)
        with pytest.raises(ValueError, match="must exceed"):
            ProcessBackend(straggler_deadline=0.1, heartbeat_interval=0.5)


class _TimeoutProbeProgram:
    """Rank 0 recvs from a peer that never sends; returns the error fields."""

    def __init__(self, timeout):
        self.timeout = timeout

    def __call__(self, rank, size):
        if rank == 0:
            try:
                yield Recv(source=1, tag=9, timeout=self.timeout)
            except RecvTimeoutError as e:
                return {"rank": e.rank, "peer": e.peer, "tag": e.tag,
                        "elapsed": e.elapsed}
            return "unexpected message"
        yield Compute(1.0)
        return None


class TestRecvTimeoutAttributes:
    """Satellite: the timeout error carries the same fields on both backends."""

    def test_simulated_attrs(self):
        run = SimulatedBackend().run(_TimeoutProbeProgram(0.05), 2)
        got = run.results[0]
        assert got == {"rank": 0, "peer": 1, "tag": 9, "elapsed": 0.05}

    @needs_process
    def test_process_attrs(self):
        run = ProcessBackend(timeout=30.0).run(_TimeoutProbeProgram(0.3), 2)
        got = run.results[0]
        assert got == {"rank": 0, "peer": 1, "tag": 9, "elapsed": 0.3}
