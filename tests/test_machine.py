"""Unit tests for the Machine clock/charging layer."""

import numpy as np
import pytest

from repro.machine import CostModel, Machine


class TestConstruction:
    def test_defaults(self):
        m = Machine(nprocs=4)
        assert m.nprocs == 4
        assert m.elapsed() == 0.0
        assert m.topology.size == 4

    def test_invalid_nprocs(self):
        with pytest.raises(ValueError):
            Machine(nprocs=0)

    def test_custom_cost(self):
        c = CostModel(t_flop=5e-9)
        assert Machine(nprocs=2, cost=c).cost.t_flop == 5e-9


class TestComputeCharging:
    def test_single_rank_clock_advances(self):
        m = Machine(nprocs=4)
        m.charge_compute(2, 1000)
        assert m.clock[2] == pytest.approx(1000 * m.cost.t_flop)
        assert m.clock[0] == 0.0
        assert m.stats.flops_per_rank[2] == 1000

    def test_charge_all_scalar(self):
        m = Machine(nprocs=4)
        m.charge_compute_all(500)
        assert np.allclose(m.clock, 500 * m.cost.t_flop)

    def test_charge_all_vector(self):
        m = Machine(nprocs=3, topology="ring")
        m.charge_compute_all([100, 200, 300])
        assert m.clock[2] == pytest.approx(300 * m.cost.t_flop)
        assert m.stats.total_flops == 600

    def test_serialized_compute_sums_across_ranks(self):
        m = Machine(nprocs=4)
        m.charge_serialized_compute([100, 100, 100, 100])
        # every rank waits for the full 400 flops
        assert np.allclose(m.clock, 400 * m.cost.t_flop)

    def test_serialized_requires_full_vector(self):
        m = Machine(nprocs=4)
        with pytest.raises(ValueError):
            m.charge_serialized_compute([1, 2])

    def test_negative_flops_rejected(self):
        m = Machine(nprocs=2)
        with pytest.raises(ValueError):
            m.charge_compute(0, -1)

    def test_invalid_rank(self):
        m = Machine(nprocs=2)
        with pytest.raises(ValueError):
            m.charge_compute(5, 10)


class TestPointToPoint:
    def test_rendezvous_advances_both_clocks(self):
        m = Machine(nprocs=4)
        m.charge_compute(0, 1e6)  # sender is busy until t0
        t0 = m.clock[0]
        done = m.send_recv(0, 1, 100)
        assert done == pytest.approx(t0 + m.cost.message_time(100))
        assert m.clock[0] == m.clock[1] == done

    def test_self_send_is_free(self):
        m = Machine(nprocs=2)
        m.send_recv(1, 1, 1000)
        assert m.elapsed() == 0.0
        assert m.stats.total_messages == 0

    def test_message_recorded(self):
        m = Machine(nprocs=4)
        m.send_recv(0, 3, 10, tag="halo")
        assert m.stats.total_messages == 1
        assert m.stats.by_tag()["halo"]["words"] == 10


class TestCollectiveCharging:
    def test_collectives_synchronise_all_clocks(self):
        m = Machine(nprocs=4)
        m.charge_compute(1, 1e6)
        m.allreduce(1)
        assert np.allclose(m.clock, m.clock[0])
        assert m.elapsed() > 1e6 * m.cost.t_flop

    @pytest.mark.parametrize(
        "op", ["broadcast", "reduce", "allreduce", "allgather", "reduce_scatter",
               "gather", "scatter", "alltoall"]
    )
    def test_each_collective_records(self, op):
        m = Machine(nprocs=4)
        getattr(m, op)(16.0)
        assert op in m.stats.by_op()

    def test_barrier(self):
        m = Machine(nprocs=4)
        m.charge_compute(3, 1e6)
        m.barrier()
        assert np.allclose(m.clock, m.clock[0])

    def test_invalid_root(self):
        m = Machine(nprocs=2)
        with pytest.raises(ValueError):
            m.broadcast(10, root=7)


class TestReset:
    def test_reset_clears_clock_and_stats(self):
        m = Machine(nprocs=4)
        m.charge_compute_all(100)
        m.allgather(10)
        m.reset()
        assert m.elapsed() == 0.0
        assert m.stats.total_messages == 0
        assert m.stats.total_flops == 0.0


class TestStorageCharging:
    def test_charge_storage(self):
        m = Machine(nprocs=4)
        m.charge_storage(1, 128.0)
        m.charge_storage_all(10.0)
        assert m.stats.storage_words_per_rank[1] == 138.0
        assert m.stats.storage_words_per_rank[0] == 10.0
