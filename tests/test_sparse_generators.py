"""Unit tests for the matrix generators (application families of the intro)."""

import numpy as np
import pytest

from repro.sparse import (
    bandwidth,
    circuit_nodal,
    convection_diffusion_1d,
    irregular_powerlaw,
    is_diagonally_dominant,
    is_positive_definite,
    is_symmetric,
    matrix_with_eigenvalues,
    nas_cg_style,
    poisson1d,
    poisson2d,
    random_sparse_symmetric,
    rhs_for_solution,
    row_length_stats,
    structural_truss,
    tridiagonal,
)


class TestPoisson:
    def test_poisson1d_entries(self):
        a = poisson1d(4).toarray()
        expected = np.array(
            [[2, -1, 0, 0], [-1, 2, -1, 0], [0, -1, 2, -1], [0, 0, -1, 2]],
            dtype=float,
        )
        assert np.allclose(a, expected)

    def test_poisson1d_spd(self):
        assert is_positive_definite(poisson1d(20))

    def test_poisson2d_size_and_symmetry(self):
        m = poisson2d(5, 7)
        assert m.shape == (35, 35)
        assert is_symmetric(m)

    def test_poisson2d_spd(self):
        assert is_positive_definite(poisson2d(6, 6))

    def test_poisson2d_interior_row_has_five_entries(self):
        m = poisson2d(5, 5).to_csr()
        # grid point (2,2) -> index 12: 4 neighbours + diagonal
        assert m.row_lengths()[12] == 5

    def test_poisson2d_bandwidth(self):
        assert bandwidth(poisson2d(4, 6)) == 6

    def test_poisson2d_default_square(self):
        assert poisson2d(4).shape == (16, 16)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            poisson2d(0)
        with pytest.raises(ValueError):
            poisson1d(0)


class TestTridiagonal:
    def test_nonsymmetric_coefficients(self):
        a = tridiagonal(3, lower=-2.0, diag=5.0, upper=1.0).toarray()
        assert np.allclose(a, [[5, 1, 0], [-2, 5, 1], [0, -2, 5]])

    def test_single_element(self):
        assert tridiagonal(1).toarray().tolist() == [[2.0]]


class TestApplicationFamilies:
    def test_truss_spd(self):
        m = structural_truss(30, seed=1)
        assert is_symmetric(m)
        assert is_positive_definite(m)

    def test_truss_deterministic(self):
        a = structural_truss(20, seed=9).toarray()
        b = structural_truss(20, seed=9).toarray()
        assert np.allclose(a, b)

    def test_truss_needs_two_nodes(self):
        with pytest.raises(ValueError):
            structural_truss(1)

    def test_circuit_spd(self):
        m = circuit_nodal(40, seed=2)
        assert is_symmetric(m)
        assert is_positive_definite(m)

    def test_circuit_diagonally_dominant(self):
        assert is_diagonally_dominant(circuit_nodal(40, seed=2))

    def test_circuit_deterministic(self):
        assert np.allclose(
            circuit_nodal(25, seed=5).toarray(), circuit_nodal(25, seed=5).toarray()
        )

    def test_nas_cg_spd(self):
        m = nas_cg_style(48, seed=3)
        assert is_symmetric(m)
        assert is_positive_definite(m)

    def test_random_sparse_symmetric_spd_shift(self):
        m = random_sparse_symmetric(40, nnz_per_row=6, seed=4)
        assert is_symmetric(m)
        assert is_diagonally_dominant(m)

    def test_random_sparse_no_shift_symmetric_only(self):
        m = random_sparse_symmetric(30, seed=4, spd_shift=False)
        assert is_symmetric(m)


class TestIrregularPowerlaw:
    def test_spd_and_symmetric(self):
        m = irregular_powerlaw(60, seed=1)
        assert is_symmetric(m)
        assert is_positive_definite(m)

    def test_row_lengths_are_skewed(self):
        """The Section-5.2.2 premise: some rows far heavier than average."""
        stats = row_length_stats(irregular_powerlaw(300, seed=2))
        assert stats.skew_ratio > 2.0

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            irregular_powerlaw(1)


class TestMatrixWithEigenvalues:
    def test_spectrum_exact(self):
        eigs = [1.0, 2.0, 2.0, 5.0, 5.0, 5.0]
        m = matrix_with_eigenvalues(eigs, seed=0)
        assert np.allclose(sorted(np.linalg.eigvalsh(m.array)), sorted(eigs))

    def test_symmetric(self):
        m = matrix_with_eigenvalues([1.0, 3.0, 7.0], seed=1)
        assert np.allclose(m.array, m.array.T)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            matrix_with_eigenvalues([])


class TestConvectionDiffusion:
    def test_nonsymmetric_when_peclet_nonzero(self):
        assert not is_symmetric(convection_diffusion_1d(10, peclet=0.3))

    def test_symmetric_when_peclet_zero(self):
        assert is_symmetric(convection_diffusion_1d(10, peclet=0.0))

    def test_coefficients(self):
        a = convection_diffusion_1d(3, peclet=0.5).toarray()
        assert np.allclose(a, [[2, -0.5, 0], [-1.5, 2, -0.5], [0, -1.5, 2]])


class TestRhsForSolution:
    def test_manufactured_solution(self, rng):
        m = poisson2d(5, 5)
        xt = rng.standard_normal(25)
        b = rhs_for_solution(m, xt)
        assert np.allclose(b, m.to_scipy() @ xt)
