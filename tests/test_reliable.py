"""Tests for the stop-and-wait reliable messaging layer."""

import numpy as np
import pytest

from repro.machine import (
    Compute,
    FaultPlan,
    FaultRule,
    Machine,
    RankCrash,
    RankFailedError,
    ReliableConfig,
    ReliableEndpoint,
    Scheduler,
)
from repro.machine import reliable as rel
from repro.machine.reliable import checksum


class TestChecksum:
    def test_detects_single_entry_perturbation(self):
        a = np.arange(32.0)
        b = a.copy()
        b[17] += 1e-6
        assert checksum(a) != checksum(b)

    def test_order_sensitive(self):
        assert checksum(np.array([1.0, 2.0])) != checksum(np.array([2.0, 1.0]))
        assert checksum((1.0, 2.0)) != checksum((2.0, 1.0))

    def test_handles_scalars_and_containers(self):
        for payload in (None, 3, 2.5, (1, np.ones(2)), {"a": 1.0}, np.empty(0)):
            checksum(payload)  # must not raise
        assert checksum(5) != checksum(6)


class TestConfigValidation:
    def test_bounds(self):
        with pytest.raises(ValueError):
            ReliableConfig(base_timeout=0.0)
        with pytest.raises(ValueError):
            ReliableConfig(backoff=0.5)
        with pytest.raises(ValueError):
            ReliableConfig(max_retries=-1)


def _p2p_program(telemetry, cfg):
    def prog(rank, size):
        ep = ReliableEndpoint(rank, cfg, telemetry=telemetry)
        if rank == 0:
            yield from ep.send(1, np.arange(16.0), tag=4)
            yield from ep.send(1, np.arange(4.0) + 100.0, tag=4)
            return None
        a = yield from ep.recv(0, tag=4)
        b = yield from ep.recv(0, tag=4)
        return float(a.sum()), float(b.sum())

    return prog


class TestPointToPoint:
    def test_retransmits_through_a_dropped_message(self):
        telemetry = {}
        cfg = ReliableConfig(base_timeout=1e-3)
        # drop the first data transmission on tag 4
        plan = FaultPlan(rules=[FaultRule(kind="drop", src=0, dst=1, tag=4, nth=1)])
        m = Machine(nprocs=2)
        results = Scheduler(m, faults=plan).run(_p2p_program(telemetry, cfg))
        assert results[1] == (sum(range(16)), 100 + 101 + 102 + 103)
        assert telemetry["retransmissions"] == 1
        assert telemetry["retransmitted_words"] > 0
        dropped = [r for r in m.stats.comm_records if r.op == "p2p-dropped"]
        assert len(dropped) == 1

    def test_duplicate_discarded_not_redelivered(self):
        telemetry = {}
        plan = FaultPlan(rules=[FaultRule(kind="duplicate", src=0, dst=1, tag=4)])
        m = Machine(nprocs=2)
        results = Scheduler(m, faults=plan).run(
            _p2p_program(telemetry, ReliableConfig(base_timeout=1e-3))
        )
        assert results[1] == (sum(range(16)), 100 + 101 + 102 + 103)

    def test_corrupted_packet_discarded_and_resent(self):
        telemetry = {}
        plan = FaultPlan(
            seed=5, rules=[FaultRule(kind="corrupt", src=0, dst=1, tag=4, nth=1)]
        )
        m = Machine(nprocs=2)
        results = Scheduler(m, faults=plan).run(
            _p2p_program(telemetry, ReliableConfig(base_timeout=1e-3))
        )
        assert results[1] == (sum(range(16)), 100 + 101 + 102 + 103)
        assert telemetry["corrupt_discarded"] >= 1
        assert telemetry["retransmissions"] >= 1

    def test_sender_gives_up_on_dead_peer(self):
        def prog(rank, size):
            ep = ReliableEndpoint(rank, ReliableConfig(base_timeout=1e-4, max_retries=2))
            if rank == 0:
                yield from ep.send(1, 42, tag=1)
                return None
            yield Compute(1e12)  # never receives
            return None

        plan = FaultPlan(drop_prob=1.0)
        with pytest.raises(RankFailedError, match="no ack"):
            Scheduler(Machine(nprocs=2), faults=plan).run(prog)


def _collective_program(telemetry):
    def prog(rank, size):
        ep = ReliableEndpoint(
            rank, ReliableConfig(base_timeout=1e-3), telemetry=telemetry
        )
        total = yield from rel.allreduce_sum(ep, rank, size, float(rank + 1))
        blocks = yield from rel.allgather(ep, rank, size, np.full(3, float(rank)))
        root_sum = yield from rel.reduce_to_root(ep, rank, size, float(rank))
        top = yield from rel.bcast(ep, rank, size, rank * 11, root=2)
        return total, float(np.concatenate(blocks).sum()), root_sum, top

    return prog


class TestReliableCollectives:
    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_collectives_survive_mixed_faults(self, seed):
        telemetry = {}
        plan = FaultPlan(
            seed=seed, drop_prob=0.15, duplicate_prob=0.1,
            corrupt_prob=0.1, delay_prob=0.05,
        )
        m = Machine(nprocs=4)
        results = Scheduler(m, faults=plan).run(_collective_program(telemetry))
        for rank, (total, gathered, root_sum, top) in enumerate(results):
            assert total == 10.0
            assert gathered == 18.0
            assert root_sum == (6.0 if rank == 0 else None)
            assert top == 22
        assert plan.stats.dropped > 0  # the run was actually exercised

    def test_fault_free_collectives_have_no_retransmissions(self):
        telemetry = {}
        m = Machine(nprocs=4)
        results = Scheduler(m).run(_collective_program(telemetry))
        assert all(r[0] == 10.0 for r in results)
        assert telemetry["retransmissions"] == 0

    def test_crash_in_collective_raises_rank_failed(self):
        def prog(rank, size):
            ep = ReliableEndpoint(rank, ReliableConfig(base_timeout=1e-4, max_retries=3))
            yield Compute(1e6 * rank)
            return (yield from rel.allreduce_sum(ep, rank, size, 1.0))

        plan = FaultPlan(crashes=[RankCrash(rank=0, at_time=1e-5)])
        with pytest.raises(RankFailedError):
            Scheduler(Machine(nprocs=4), faults=plan).run(prog)

    def test_bit_identical_repeats(self):
        def run():
            telemetry = {}
            plan = FaultPlan(seed=5, drop_prob=0.2, duplicate_prob=0.1)
            m = Machine(nprocs=4)
            res = Scheduler(m, faults=plan).run(_collective_program(telemetry))
            return res, m.elapsed(), m.stats.total_words, dict(telemetry)

        assert run() == run()


class TestReliableEdgeCases:
    """ISSUE-mandated edge cases: exhaustion, duplicate acks, charged costs."""

    def test_exhaustion_raises_typed_error_with_bounded_attempts(self):
        telemetry = {}

        def prog(rank, size):
            ep = ReliableEndpoint(
                rank, ReliableConfig(base_timeout=1e-4, max_retries=3),
                telemetry=telemetry,
            )
            if rank == 0:
                yield from ep.send(1, np.arange(8.0), tag=2)
            else:
                yield Compute(1e12)  # never posts the receive
            return None

        plan = FaultPlan(drop_prob=1.0)
        with pytest.raises(RankFailedError, match="after 3 retries") as err:
            Scheduler(Machine(nprocs=2), faults=plan).run(prog)
        assert err.value.rank == 1  # the peer that never acked
        assert telemetry["retransmissions"] == 3  # bounded, no hang

    def test_stale_and_duplicate_acks_are_idempotent_at_sender(self):
        # drive the send generator by hand: a stale ack for an already
        # completed sequence number must be skipped, not treated as the
        # ack of the in-flight message -- even when delivered twice
        ep = ReliableEndpoint(0, ReliableConfig(base_timeout=1.0))
        gen = ep.send(1, 7.0, tag=3)
        next(gen)              # the data Send (seq 0)
        gen.send(None)         # now waiting on the ack Recv
        with pytest.raises(StopIteration):
            gen.send(0)        # matching ack completes the send

        gen = ep.send(1, 8.0, tag=3)  # seq 1
        next(gen)
        op = gen.send(None)
        assert op.tag > 1 << 19       # the ack Recv
        op = gen.send(0)              # stale ack for seq 0: keep listening
        assert op.tag > 1 << 19
        op = gen.send(0)              # duplicated stale ack: still listening
        assert op.tag > 1 << 19
        with pytest.raises(StopIteration):
            gen.send(1)               # the real ack

    def test_duplicate_data_packet_reacked_and_discarded(self):
        telemetry = {}
        plan = FaultPlan(rules=[FaultRule(kind="duplicate", src=0, dst=1, tag=4)])
        m = Machine(nprocs=2)
        results = Scheduler(m, faults=plan).run(
            _p2p_program(telemetry, ReliableConfig(base_timeout=1e-3))
        )
        assert results[1] == (sum(range(16)), 100 + 101 + 102 + 103)
        assert telemetry["duplicates_discarded"] >= 1
        # every duplicate is re-acked so a retransmitting sender can stop
        assert telemetry["acks"] >= 2 + telemetry["duplicates_discarded"]

    def test_retransmission_costs_charged_to_machine_stats(self):
        def run(plan):
            telemetry = {}
            m = Machine(nprocs=2)
            Scheduler(m, faults=plan).run(
                _p2p_program(telemetry, ReliableConfig(base_timeout=1e-3))
            )
            return m, telemetry

        clean_m, _ = run(None)
        faulty_m, telemetry = run(
            FaultPlan(rules=[FaultRule(kind="drop", src=0, dst=1, tag=4, nth=1)])
        )
        assert telemetry["retransmissions"] == 1
        # the retransmitted packet is charged wire words and elapsed time
        assert faulty_m.stats.total_words > clean_m.stats.total_words
        assert faulty_m.elapsed() > clean_m.elapsed()
