"""Unit tests for machine statistics accounting."""

import numpy as np
import pytest

from repro.machine import MachineStats


@pytest.fixture
def stats():
    return MachineStats(nprocs=4)


class TestCommRecording:
    def test_totals(self, stats):
        stats.record_comm("broadcast", 3, 300.0, 1e-4)
        stats.record_comm("allreduce", 8, 8.0, 2e-4, tag="dot")
        assert stats.total_messages == 11
        assert stats.total_words == 308.0
        assert stats.comm_time == pytest.approx(3e-4)

    def test_by_op_groups(self, stats):
        stats.record_comm("p2p", 1, 10.0, 1e-5)
        stats.record_comm("p2p", 1, 20.0, 1e-5)
        stats.record_comm("broadcast", 3, 5.0, 2e-5)
        agg = stats.by_op()
        assert agg["p2p"]["messages"] == 2
        assert agg["p2p"]["words"] == 30.0
        assert agg["p2p"]["count"] == 2
        assert agg["broadcast"]["messages"] == 3

    def test_by_tag_groups(self, stats):
        stats.record_comm("allreduce", 2, 2.0, 1e-5, tag="dot")
        stats.record_comm("allgather", 4, 40.0, 1e-5, tag="matvec")
        stats.record_comm("allreduce", 2, 2.0, 1e-5, tag="dot")
        agg = stats.by_tag()
        assert agg["dot"]["count"] == 2
        assert agg["matvec"]["words"] == 40.0

    def test_untagged_grouping(self, stats):
        stats.record_comm("p2p", 1, 1.0, 1e-6)
        assert "(untagged)" in stats.by_tag()


class TestFlops:
    def test_per_rank_accumulation(self, stats):
        stats.record_flops(0, 100.0)
        stats.record_flops(0, 50.0)
        stats.record_flops(3, 30.0)
        assert stats.flops_per_rank[0] == 150.0
        assert stats.total_flops == 180.0
        assert stats.max_rank_flops == 150.0

    def test_load_imbalance(self, stats):
        stats.flops_per_rank[:] = [100, 100, 100, 100]
        assert stats.load_imbalance() == pytest.approx(1.0)
        stats.flops_per_rank[:] = [400, 0, 0, 0]
        assert stats.load_imbalance() == pytest.approx(4.0)

    def test_load_imbalance_zero_work(self, stats):
        assert stats.load_imbalance() == 1.0


class TestStorage:
    def test_storage_tracking(self, stats):
        stats.record_storage(1, 64.0)
        stats.record_storage(1, 64.0)
        assert stats.storage_words_per_rank[1] == 128.0


class TestSnapshotDelta:
    def test_delta_captures_interval(self, stats):
        stats.record_comm("p2p", 1, 10.0, 1e-5)
        stats.record_flops(0, 5.0)
        snap = stats.snapshot()
        stats.record_comm("p2p", 2, 30.0, 2e-5)
        stats.record_flops(1, 7.0)
        delta = snap.since(stats)
        assert delta.messages == 2
        assert delta.words == 30.0
        assert delta.flops == 7.0
        assert delta.n_records == 1

    def test_reset(self, stats):
        stats.record_comm("p2p", 1, 10.0, 1e-5)
        stats.record_flops(2, 9.0)
        stats.record_storage(0, 8.0)
        stats.reset()
        assert stats.total_messages == 0
        assert stats.total_flops == 0.0
        assert stats.storage_words_per_rank.sum() == 0.0
        assert len(stats.comm_records) == 0
