"""Tests for the analytic cost model, load metrics and report tables."""

import math

import numpy as np
import pytest

from repro.analysis import (
    LoadReport,
    Table,
    classic_cg_iteration_time,
    csc_serial_time,
    csr_storage_words,
    dense_storage_words,
    format_quantity,
    fused_cg_iteration_time,
    fused_cg_saving_per_iteration,
    inner_product_merge_time,
    inner_product_time,
    load_report,
    packed_allreduce_time,
    parallel_efficiency,
    private_merge_matvec_time,
    private_storage_words,
    rowwise_matvec_time,
    saxpy_time,
    scenario1_broadcast_time,
    scenario2_comm_time,
    spmd_allgather_time,
)
from repro.machine import CostModel

COST = CostModel(t_startup=1e-5, t_comm=1e-8, t_flop=1e-9)


class TestPaperFormulas:
    def test_saxpy_scales_inverse_p(self):
        """O(n/N_P): doubling processors halves the SAXPY time."""
        t4 = saxpy_time(1024, 4, COST)
        t8 = saxpy_time(1024, 8, COST)
        assert t4 / t8 == pytest.approx(2.0)

    def test_saxpy_exact(self):
        assert saxpy_time(1000, 4, COST) == pytest.approx(2 * 250 * COST.t_flop)

    def test_inner_product_merge_is_ts_log_p(self):
        assert inner_product_merge_time(8, COST) == pytest.approx(
            COST.t_startup * 3
        )
        assert inner_product_merge_time(1, COST) == 0.0

    def test_inner_product_total(self):
        t = inner_product_time(1000, 4, COST)
        assert t == pytest.approx(2 * 250 * COST.t_flop + COST.t_startup * 2)

    def test_scenario1_formula_literal(self):
        """t_startup*log(N_P) + t_comm*n/N_P, word for word."""
        n, p = 4096, 16
        expected = COST.t_startup * math.log2(p) + COST.t_comm * (n // p)
        assert scenario1_broadcast_time(n, p, COST) == pytest.approx(expected)

    def test_scenario2_equals_scenario1(self):
        """The paper's equality claim between the two scenarios."""
        for n, p in [(1000, 4), (5000, 8), (333, 2)]:
            assert scenario2_comm_time(n, p, COST) == scenario1_broadcast_time(
                n, p, COST
            )

    def test_single_processor_broadcast_free(self):
        assert scenario1_broadcast_time(100, 1, COST) == 0.0

    def test_private_storage_n_times_p(self):
        assert private_storage_words(1000, 16) == 16000.0

    def test_csc_serial_lower_bound(self):
        assert csc_serial_time(500, COST) == pytest.approx(1000 * COST.t_flop)

    def test_private_merge_beats_serial_for_parallel_work(self):
        # enough nonzeros per row that the merge cost amortises
        n, nnz, p = 4096, 409600, 16
        assert private_merge_matvec_time(n, nnz, p, COST) < csc_serial_time(nnz, COST)

    def test_private_merge_does_not_pay_off_for_tiny_work(self):
        # the flip side the paper acknowledges: for sparse work the merge
        # (O(n) words) can rival the saved compute
        n, nnz, p = 4096, 8192, 16
        assert private_merge_matvec_time(n, nnz, p, COST) > 0.5 * csc_serial_time(
            nnz, COST
        )

    def test_rowwise_matvec_includes_broadcast(self):
        t = rowwise_matvec_time(1000, 5000, 4, COST)
        assert t > scenario1_broadcast_time(1000, 4, COST)

    def test_storage_formulas(self):
        assert dense_storage_words(100) == 10000.0
        assert csr_storage_words(100, 500) == 2 * 500 + 101


class TestLoadReport:
    def test_balanced(self):
        r = load_report([100, 100, 100, 100])
        assert r.imbalance == pytest.approx(1.0)
        assert r.cv == pytest.approx(0.0)
        assert r.total == 400

    def test_skewed(self):
        r = load_report([400, 0, 0, 0])
        assert r.imbalance == pytest.approx(4.0)
        assert r.maximum == 400
        assert r.minimum == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            load_report([])

    def test_str_rendering(self):
        assert "imbalance" in str(load_report([1, 2, 3]))


class TestParallelEfficiency:
    def test_ideal(self):
        assert parallel_efficiency(8.0, 1.0, 8) == pytest.approx(1.0)

    def test_half(self):
        assert parallel_efficiency(8.0, 2.0, 8) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            parallel_efficiency(1.0, 0.0, 4)


class TestTable:
    def test_render_alignment(self):
        t = Table(["name", "value"], title="demo")
        t.add_row("saxpy", 1.5)
        t.add_row("dot", 200000.0)
        text = t.render()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "saxpy" in text
        assert "2e+05" in text or "2.000e+05" in text

    def test_row_arity_checked(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_extend(self):
        t = Table(["a"])
        t.extend([[1], [2], [3]])
        assert len(t.rows) == 3

    def test_empty_table_renders(self):
        assert "a" in Table(["a"]).render()


class TestFormatQuantity:
    def test_strings_pass_through(self):
        assert format_quantity("x") == "x"

    def test_bools(self):
        assert format_quantity(True) == "yes"
        assert format_quantity(False) == "no"

    def test_ints(self):
        assert format_quantity(42) == "42"

    def test_small_floats_scientific(self):
        assert "e" in format_quantity(1.5e-7)

    def test_zero(self):
        assert format_quantity(0.0) == "0"

    def test_nan(self):
        assert format_quantity(float("nan")) == "nan"


class TestFusedCgClosedForms:
    """The fused-iteration cost forms are EXACT for the SPMD programs.

    Unlike the paper's idealised hypercube formulas, these model the
    reduce+bcast trees of :mod:`repro.machine.spmd` to the word, so a
    simulator run of the matching collective must reproduce them to
    rounding error -- this exactness is what lets benchmark E23 assert
    modelled == measured instead of "same order".
    """

    @pytest.mark.parametrize("p", [2, 4, 8])
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_packed_allreduce_exact(self, p, k):
        from repro.machine import Machine, run_spmd, spmd

        m = Machine(p, "hypercube")

        def prog(rank, nprocs):
            out = yield from spmd.allreduce_vec(rank, nprocs, np.ones(k))
            return out

        run_spmd(m, prog)
        assert m.elapsed() == pytest.approx(
            packed_allreduce_time(k, p, m.cost), rel=1e-9)

    @pytest.mark.parametrize("p", [2, 4, 8])
    @pytest.mark.parametrize("n", [32, 100])
    def test_spmd_allgather_exact(self, p, n):
        from repro.machine import Machine, run_spmd, spmd

        m = Machine(p, "hypercube")
        chunk = -(-n // p)

        def prog(rank, nprocs):
            out = yield from spmd.allgather(rank, nprocs, np.zeros(chunk))
            return out

        run_spmd(m, prog)
        assert m.elapsed() == pytest.approx(
            spmd_allgather_time(n, p, m.cost), rel=1e-9)

    def test_single_rank_collectives_are_free(self):
        assert packed_allreduce_time(4, 1, COST) == 0.0
        assert spmd_allgather_time(100, 1, COST) == 0.0

    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_saving_formula_identity(self, p):
        n = 256
        L = (p - 1).bit_length()
        chunk = -(-n // p)
        saving = fused_cg_saving_per_iteration(n, p, COST)
        assert saving == pytest.approx(
            2 * L * COST.t_startup - 2 * chunk * COST.t_flop)
        assert saving == pytest.approx(
            classic_cg_iteration_time(n, 0, p, COST)
            - fused_cg_iteration_time(n, 0, p, COST))

    def test_saving_goes_negative_when_compute_bound(self):
        """The formula predicts when fusion stops paying: tiny startup
        cost, huge local blocks -> the extra 2 n/P flops dominate."""
        compute_bound = CostModel(t_startup=1e-9, t_comm=1e-9, t_flop=1e-6)
        assert fused_cg_saving_per_iteration(
            1_000_000, 2, compute_bound) < 0.0
        assert fused_cg_saving_per_iteration(256, 8, COST) > 0.0

    def test_iteration_forms_decompose(self):
        n, nnz, p = 256, 1216, 4
        chunk_n, chunk_nnz = -(-n // p), -(-nnz // p)
        base = spmd_allgather_time(n, p, COST) + 2 * chunk_nnz * COST.t_flop
        assert classic_cg_iteration_time(n, nnz, p, COST) == pytest.approx(
            base + 2 * packed_allreduce_time(1, p, COST)
            + 10 * chunk_n * COST.t_flop)
        assert fused_cg_iteration_time(n, nnz, p, COST) == pytest.approx(
            base + packed_allreduce_time(2, p, COST)
            + 12 * chunk_n * COST.t_flop)
