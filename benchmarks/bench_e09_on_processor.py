"""E9 -- Section 5.1: ON PROCESSOR(f(i)) vs inspector--executor.

'Inspector-executor mechanisms [15] which are costly in nature should be
employed for the determination of the owner of the lhs.  However, in our
case, a much simpler mechanism can be used.  We propose using a ON
PROCESSOR(f(i)) construct ... In this way we can specify the iteration
mapping at compile-time without any runtime overhead.'

Measures the inspector's runtime cost against the zero-cost compile-time
mapping, and shows schedule reuse amortising the inspector across CG
iterations (the paper's reference [20]).
"""

import numpy as np
import pytest

from _harness import record_table
from repro.analysis import Table
from repro.extensions import InspectorExecutor, OnProcessor
from repro.hpf import Block
from repro.machine import Machine
from repro.sparse import poisson2d


def test_e09_mapping_cost(benchmark):
    A = poisson2d(16, 16).to_csc()
    n, nnz = A.nrows, A.nnz

    def run_inspector():
        machine = Machine(nprocs=8)
        ie = InspectorExecutor(machine)
        sched = ie.build_schedule(nnz, A.indices, Block(n, 8))
        return machine, sched

    benchmark(run_inspector)

    t = Table(
        ["mechanism", "runtime cost (s)", "messages", "words"],
        title=f"E9  iteration-mapping cost, nnz={nnz}, N_P=8",
    )
    machine, sched = run_inspector()
    t.add_row("inspector-executor", sched.build_time, sched.build_messages,
              sched.build_words)
    m2 = Machine(nprocs=8)
    t0 = m2.elapsed()
    OnProcessor.block(nnz, 8).partition(np.arange(nnz))
    t.add_row("ON PROCESSOR(j/np)", m2.elapsed() - t0, 0, 0)
    assert sched.build_time > 0
    assert m2.elapsed() - t0 == 0.0
    record_table(
        "e09_mapping_cost", t,
        notes="The compile-time construct pays nothing at runtime; the "
        "inspector pays per-iteration lookups plus a schedule exchange.",
    )


def test_e09_both_produce_owner_computes_partition(benchmark):
    A = poisson2d(12, 12).to_csc()
    n, nnz = A.nrows, A.nnz
    machine = Machine(nprocs=4)
    dist = Block(n, 4)

    sched = InspectorExecutor(machine).build_schedule(nnz, A.indices, dist)

    def on_processor_partition():
        owners = dist.owners(A.indices)
        mapping = OnProcessor(lambda i: owners[i], 4)
        return mapping.partition(np.arange(nnz))

    parts = benchmark(on_processor_partition)
    for r in range(4):
        assert np.array_equal(parts[r], sched.partition[r])

    t = Table(
        ["rank", "iterations (inspector)", "iterations (ON PROCESSOR)", "equal"],
        title="E9b identical owner-computes partitions",
    )
    for r in range(4):
        t.add_row(r, len(sched.partition[r]), len(parts[r]), "yes")
    record_table("e09b_partitions", t)


def test_e09_schedule_reuse_amortisation(benchmark):
    """Across Niter CG iterations the inspector cost amortises once."""
    A = poisson2d(16, 16).to_csc()
    n, nnz = A.nrows, A.nnz

    def amortised_cost(iterations):
        machine = Machine(nprocs=8)
        ie = InspectorExecutor(machine)
        sched = ie.build_schedule(nnz, A.indices, Block(n, 8))
        for _ in range(iterations - 1):
            sched.reuse()
        return sched.build_time / iterations

    benchmark(amortised_cost, 50)

    t = Table(
        ["CG iterations", "inspector cost per iteration (s)"],
        title="E9c schedule reuse (Ponnusamy et al. [20])",
    )
    costs = []
    for iters in (1, 5, 25, 125):
        c = amortised_cost(iters)
        costs.append(c)
        t.add_row(iters, c)
    assert costs == sorted(costs, reverse=True)
    record_table(
        "e09c_reuse", t,
        notes="With reuse the inspector's amortised overhead approaches ON "
        "PROCESSOR's zero, which is why [20] matters for CG loops.",
    )
