"""E14 -- Section 5.2: the SPARSE_MATRIX directive's tight binding.

'A sparse matrix definition puts a tight binding between the members of
this trio, whenever any one's distribution is changed, the other two should
be aligned accordingly. ... the compiler can exploit the locality rule by
knowing the relation among the members of the trio.'
"""

import numpy as np
import pytest

from _harness import record_table
from repro.analysis import Table
from repro.extensions import SparseMatrixBinding
from repro.hpf import HpfNamespace
from repro.machine import Machine
from repro.sparse import irregular_powerlaw, poisson2d


def test_e14_tight_binding_cascade(benchmark):
    A = poisson2d(12, 12).to_csr()

    def redistribute():
        m = Machine(nprocs=8)
        binding = SparseMatrixBinding(m, A)
        binding.redistribute_atoms_balanced(charge=False)
        return binding

    binding = benchmark(redistribute)

    t = Table(
        ["member", "extent", "distribution kind", "consistent"],
        title="E14  trio layout after one REDISTRIBUTE",
    )
    for arr in (binding.ptr, binding.idx, binding.val):
        t.add_row(arr.name, arr.n, type(arr.distribution).__name__, "yes")
    assert binding.val.distribution.same_mapping(binding.idx.distribution)
    assert np.allclose(binding.val.to_global(), A.data)
    record_table(
        "e14_binding", t,
        notes="One directive moved all three arrays; idx/val share one "
        "alignment group so they can never drift apart.",
    )


def test_e14_locality_prefetch_count(benchmark):
    """What the compiler's locality rule must fetch, with vs without the
    directive's knowledge."""
    A = irregular_powerlaw(256, seed=31).to_csr()

    def measure():
        m = Machine(nprocs=8)
        binding = SparseMatrixBinding(m, A)
        before = binding.nonlocal_elements().sum()
        binding.redistribute_atoms_balanced(charge=False)
        after = binding.nonlocal_elements().sum()
        return before, after

    before, after = benchmark(measure)

    t = Table(
        ["layout", "non-local (col,a) element pairs", "prefetch words/apply"],
        title=f"E14b locality rule, nnz={A.nnz}, N_P=8",
    )
    t.add_row("naive BLOCK over nz", before, 2 * before)
    t.add_row("after REDISTRIBUTE smA USING partitioner", after, 2 * after)
    assert before > 0 and after == 0
    record_table("e14b_prefetch", t)


def test_e14_directive_text_end_to_end(benchmark):
    """The full directive flow: SPARSE_MATRIX + REDISTRIBUTE ... USING."""
    A = irregular_powerlaw(192, seed=32).to_csr()

    def run():
        m = Machine(nprocs=4)
        ns = HpfNamespace(m, env={"n": A.nrows, "nz": A.nnz})
        ns.declare_sparse("smA", A)
        ns.apply("!HPF$ SPARSE_MATRIX (CSR) :: smA(row, col, a)")
        ns.apply("!EXT$ REDISTRIBUTE smA USING CG_BALANCED_PARTITIONER_1")
        return ns.sparse("smA")

    binding = benchmark(run)
    assert binding.atom_cuts is not None
    assert binding.nonlocal_elements().sum() == 0

    t = Table(
        ["step", "result"],
        title="E14c directive-driven redistribution",
    )
    t.add_row("SPARSE_MATRIX (CSR) :: smA(row, col, a)", "trio bound")
    t.add_row("REDISTRIBUTE smA USING CG_BALANCED_PARTITIONER_1",
              f"cuts={binding.atom_cuts.tolist()}")
    t.add_row("non-local elements after", 0)
    record_table("e14c_directives", t)
