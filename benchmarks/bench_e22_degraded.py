"""E22 -- Degraded-mode execution: shrink vs respawn, with REDISTRIBUTE cost.

The same mid-solve faults (a fail-stop crash; a deadline-stale straggler)
are recovered under two policies on both substrates:

* ``respawn`` -- restore the full P-rank machine from the newest complete
  checkpoint and re-run (the DESIGN.md §8 protocol);
* ``shrink``  -- drop the victim, run an online REDISTRIBUTE of every CG
  operand onto the P-1 survivors and continue degraded (§9).

The table reports time-to-solution of the final attempt, the driver's
recovery wall-clock, and the modelled single-port cost of the
redistribution exchange (messages, words, seconds under the paper's
``t_startup + m t_comm`` model).  Simulated rows are deterministic;
process rows carry real SIGKILLs / real per-op lateness and vary with
host timing.
"""

import numpy as np
import pytest

from _harness import record_table
from repro.analysis import Table
from repro.backend import ProcessBackend, backend_solve, process_backend_support
from repro.backend.process import crash_injection_support
from repro.core.resilience import ResilienceConfig
from repro.core.stopping import StoppingCriterion
from repro.machine.faults import FaultPlan, RankCrash, RankSlowdown
from repro.sparse.generators import poisson1d, rhs_for_solution

_OK, _DETAIL = process_backend_support()
if _OK:
    _OK, _DETAIL = crash_injection_support()
pytestmark = pytest.mark.skipif(
    not _OK, reason=f"crash injection unavailable: {_DETAIL}"
)

N = 48
NPROCS = 4


def _problem():
    A = poisson1d(N)
    b = rhs_for_solution(A, np.linspace(1.0, 2.0, N))
    return A, b, StoppingCriterion(rtol=1e-10, atol=0.0)


def _crash_plan():
    return FaultPlan(seed=0, crashes=[RankCrash(rank=2, at_time=0.01)])


def _straggler_plan():
    # one dilated matvec segment must exceed the virtual deadline on its
    # own (peers re-synchronise at every halo exchange)
    return FaultPlan(seed=0, slowdowns=[
        RankSlowdown(rank=1, at_time=0.0, factor=1e5, op_delay=1.5)
    ])


def _run_all():
    A, b, crit = _problem()
    ref = backend_solve("cg", A, b, backend="simulated", nprocs=NPROCS,
                        criterion=crit)
    cfg = ResilienceConfig(checkpoint_interval=5)
    rows = []

    def _row(backend_label, fault, policy, res):
        rec = res.extras["recovery"]
        redists = rec["redistributions"]
        rows.append({
            "backend": backend_label,
            "fault": fault,
            "policy": policy,
            "converged": res.converged,
            "err": float(np.max(np.abs(res.x - ref.x))),
            "iters": res.iterations,
            "ranks": rec["final_nprocs"],
            "solve": res.machine_elapsed,
            "rec_wall": rec["recovery_wall"],
            "redist_msgs": sum(r["messages"] for r in redists),
            "redist_words": sum(r["words"] for r in redists),
            "redist_time": sum(r["modelled_time"] for r in redists),
        })

    for policy in ("respawn", "shrink"):
        res = backend_solve(
            "cg", A, b, backend="simulated", nprocs=NPROCS, criterion=crit,
            faults=_crash_plan(), resilience=cfg, policy=policy,
        )
        _row("simulated", "crash", policy, res)
        res = backend_solve(
            "cg", A, b, backend="simulated", nprocs=NPROCS, criterion=crit,
            faults=_straggler_plan(), resilience=cfg, policy=policy,
            straggler_deadline=1e-3,
        )
        _row("simulated", "straggler", policy, res)

    for policy in ("respawn", "shrink"):
        be = ProcessBackend(timeout=60.0, crash_on_checkpoint={2: 10})
        res = backend_solve(
            "cg", A, b, backend=be, nprocs=NPROCS, criterion=crit,
            resilience=cfg, policy=policy,
        )
        _row("process", "crash", policy, res)
        res = backend_solve(
            "cg", A, b, backend="process", nprocs=NPROCS, criterion=crit,
            faults=_straggler_plan(), resilience=cfg, policy=policy,
            straggler_deadline=1.0, heartbeat_interval=0.2,
        )
        _row("process", "straggler", policy, res)
    return rows


def test_e22_degraded_modes(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    assert all(r["converged"] for r in rows)
    assert all(r["err"] < 1e-10 for r in rows)
    # shrink rows really did lose a rank and pay for the remap
    for r in rows:
        if r["policy"] == "shrink":
            assert r["ranks"] == NPROCS - 1
            assert r["redist_time"] > 0.0
        else:
            assert r["ranks"] == NPROCS

    t = Table(
        ["backend", "fault", "policy", "max|err|", "iters", "ranks",
         "solve (s)", "recovery wall (s)", "redist msgs", "redist words",
         "redist model (s)"],
        title=f"E22  degraded-mode recovery: shrink vs respawn "
        f"(poisson1d n={N}, P={NPROCS})",
    )
    for r in rows:
        t.add_row(
            r["backend"], r["fault"], r["policy"], f"{r['err']:.1e}",
            r["iters"], r["ranks"], f"{r['solve']:.4f}",
            f"{r['rec_wall']:.3f}", r["redist_msgs"],
            f"{r['redist_words']:.0f}", f"{r['redist_time']:.2e}",
        )
    record_table(
        "e22_degraded", t,
        notes="Both policies converge to the fault-free reference.  "
        "Shrink finishes on P-1 ranks: it trades the survivors' higher "
        "per-rank load for not having to respawn the victim, paying one "
        "modelled REDISTRIBUTE exchange (single-port, t_startup + m t_comm "
        "per message) up front.  Respawning a straggler re-admits the slow "
        "rank, so its time-to-solution carries the full dilation; on the "
        "process backend the straggler rows sleep for real and dominate "
        "the recovery wall column.",
    )
