"""E21 -- Chaos sweep: seeded fault schedules on both backends.

The robustness contract under test: with the fault-tolerance stack on
(Comm-level injection, reliable ARQ transport, ABFT checksums, sanity
audits + rollbacks, respawn-from-checkpoint recovery), every seeded
fault schedule either converges to the fault-free reference or fails
with a classified typed error -- on the simulated machine AND on real OS
processes, where the crashes are genuine SIGKILLs.

The seed set is fixed so the *simulated* columns of the table are fully
deterministic; process-backend retransmission counts and recovery
wall-clock vary with host timing.
"""

import pytest

from _harness import record_table
from repro.analysis import Table
from repro.backend import process_backend_support
from repro.backend.chaos import chaos_sweep, format_report
from repro.backend.process import crash_injection_support

_OK, _DETAIL = process_backend_support()
if _OK:
    _OK, _DETAIL = crash_injection_support()
pytestmark = pytest.mark.skipif(
    not _OK, reason=f"crash injection unavailable: {_DETAIL}"
)

SEEDS = list(range(8))


def test_e21_chaos_sweep(benchmark):
    outcomes = benchmark.pedantic(
        lambda: chaos_sweep(SEEDS, backends=("simulated", "process"),
                            nprocs=4, n=48, timeout=60.0),
        rounds=1, iterations=1,
    )
    assert all(o.ok for o in outcomes), format_report(outcomes)

    t = Table(
        ["seed", "backend", "outcome", "max|err|", "attempts", "rollbacks",
         "retransmissions", "crashes recovered", "recovery wall (s)",
         "injected d/D/c/y"],
        title="E21  chaos sweep: fault-tolerant CG under seeded schedules "
        "(poisson1d n=48, P=4)",
    )
    for o in outcomes:
        inj = o.injected
        t.add_row(
            o.seed, o.backend, o.outcome, f"{o.max_abs_err:.1e}",
            o.attempts, o.rollbacks, int(o.retransmissions),
            len(o.crashes_recovered), f"{o.recovery_wall:.3f}",
            f"{inj.get('dropped', 0)}/{inj.get('duplicated', 0)}"
            f"/{inj.get('corrupted', 0)}/{inj.get('delayed', 0)}",
        )
    record_table(
        "e21_chaos", t,
        notes="Every run satisfied the chaos contract (converged to the "
        "fault-free reference or raised a classified typed error).  "
        "Simulated recovery is bitwise-exact; process-backend crashes are "
        "real SIGKILLs recovered by respawn + checkpoint restart.  The "
        "injected-fault column counts drops/duplicates/corruptions/delays "
        "actually applied; crash-free seeds agree across backends up to "
        "timing-dependent retransmission counts.",
    )
