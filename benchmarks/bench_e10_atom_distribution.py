"""E10 -- Section 5.2.1: indivisable entities and ATOM: BLOCK.

'The HPF regular block distributions divide the data array in an even
fashion without paying attention to whether the division point is at the
middle of a column or not. ... This ensures that elements of an atom is not
divided among two or more processors. ... A small array in the size of the
number of processors keeps the cut-off points.'
"""

import numpy as np
import pytest

from _harness import record_table
from repro.analysis import Table
from repro.extensions import IndivisableSpec, atom_block, atom_cyclic
from repro.hpf import Block, Cyclic
from repro.machine import Machine
from repro.sparse import irregular_powerlaw, nas_cg_style, poisson2d


def _spec_for(matrix):
    return IndivisableSpec(matrix.to_csc().indptr)


def test_e10_split_atoms(benchmark):
    A = poisson2d(16, 16)
    spec = _spec_for(A)

    benchmark(spec.split_atoms_under, Block(A.nnz, 8))

    t = Table(
        ["matrix", "N_P", "atoms", "split by BLOCK", "split by CYCLIC",
         "split by ATOM:BLOCK", "split by ATOM:CYCLIC"],
        title="E10  atoms split across processors, by distribution",
    )
    for name, A in [
        ("poisson2d 16x16", poisson2d(16, 16)),
        ("nas_cg n=192", nas_cg_style(192, seed=2)),
        ("powerlaw n=192", irregular_powerlaw(192, seed=2)),
    ]:
        spec = _spec_for(A)
        for p in (4, 8):
            blk = spec.split_atoms_under(Block(A.nnz, p)).size
            cyc = spec.split_atoms_under(Cyclic(A.nnz, p)).size
            ab, _ = atom_block(spec, p)
            ac = atom_cyclic(spec, p)
            t.add_row(
                name, p, spec.natoms, blk, cyc,
                spec.split_atoms_under(ab).size,
                spec.split_atoms_under(ac).size,
            )
            assert blk > 0
            assert spec.split_atoms_under(ab).size == 0
            assert spec.split_atoms_under(ac).size == 0
    record_table(
        "e10_split_atoms", t,
        notes="Regular element distributions cut columns in half; the ATOM "
        "distributions never do.",
    )


def test_e10_cutoff_array_size(benchmark):
    """Distribution state: N_P+1 cut points, not an O(n) map."""
    A = irregular_powerlaw(512, seed=4)
    spec = _spec_for(A)

    dist, cuts = benchmark(atom_block, spec, 8)

    t = Table(
        ["representation", "words of state"],
        title=f"E10b distribution map size, nnz={A.nnz}, N_P=8",
    )
    t.add_row("full per-element map (inspector-style)", A.nnz)
    t.add_row("ATOM:BLOCK cut-off points", dist.boundaries().size)
    assert dist.boundaries().size == 9
    record_table(
        "e10b_cutoffs", t,
        notes="'the compiler avoids generating a full distribution map of "
        "the size of the target arrays'",
    )


def test_e10_alignment_cascade_on_trio(benchmark):
    """Redistributing the trio keeps ptr/idx/val consistent (tight binding)."""
    from repro.extensions import SparseMatrixBinding

    A = poisson2d(12, 12).to_csr()

    def rebind():
        m = Machine(nprocs=8)
        binding = SparseMatrixBinding(m, A)
        binding.redistribute_atoms_uniform(charge=False)
        return binding

    binding = benchmark(rebind)
    assert binding.nonlocal_elements().sum() == 0
    assert np.allclose(binding.val.to_global(), A.data)

    t = Table(
        ["member", "distribution after ATOM:BLOCK"],
        title="E10c SPARSE_MATRIX trio after atom redistribution",
    )
    for arr in (binding.ptr, binding.idx, binding.val):
        t.add_row(arr.name, repr(arr.distribution))
    record_table("e10c_trio", t)
