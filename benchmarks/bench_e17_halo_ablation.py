"""E17 -- ablation: SHADOW halo exchange vs the paper's full broadcast.

The paper's row-wise layouts broadcast all of ``p`` every mat-vec because
"a row can have a nonzero entry in any column".  For the banded stencil
matrices of its motivating applications that is pessimistic; HPF-2's
SHADOW directive later standardised ghost-cell exchange.  This ablation
measures both:

* on stencil matrices the halo moves a small, *constant-per-rank* boundary
  -- an order of magnitude less traffic than the broadcast;
* on the irregular matrices of Section 5.2.2 the shadow region balloons
  toward the whole vector, so the optimisation evaporates -- which is why
  the paper's atom/partitioner machinery (not ghost cells) is the right
  tool there.
"""

import numpy as np
import pytest

from _harness import record_table
from repro.analysis import Table
from repro.core import CsrHalo, StoppingCriterion, hpf_cg, make_strategy
from repro.machine import Machine
from repro.sparse import irregular_powerlaw, poisson1d, poisson2d


def _matvec_words(strategy_factory, A, nprocs):
    machine = Machine(nprocs=nprocs)
    strat = strategy_factory(machine, A)
    p = strat.make_vector("p", np.linspace(0, 1, A.nrows))
    q = strat.make_vector("q")
    strat.apply(p, q)
    assert np.allclose(q.to_global(), A.matvec(np.linspace(0, 1, A.nrows)))
    return machine.stats.total_words, machine.elapsed(), strat


def test_e17_halo_vs_broadcast_words(benchmark):
    A = poisson2d(16, 16)
    benchmark(_matvec_words, CsrHalo, A, 8)

    t = Table(
        ["matrix", "N_P", "broadcast words", "halo words", "saving x",
         "shadow frac"],
        title="E17  SHADOW halo vs Scenario-1 broadcast, per mat-vec",
    )
    for name, A in [
        ("poisson1d n=256", poisson1d(256)),
        ("poisson2d 16x16", poisson2d(16, 16)),
        ("poisson2d 24x24", poisson2d(24, 24)),
        ("powerlaw n=256", irregular_powerlaw(256, seed=3)),
    ]:
        for p in (4, 8):
            bw, _, _ = _matvec_words(
                lambda m, a: make_strategy("csr_forall_aligned", m, a), A, p
            )
            hw, _, halo = _matvec_words(CsrHalo, A, p)
            t.add_row(name, p, bw, hw, bw / max(hw, 1.0),
                      halo.shadow_fraction())
            if "poisson" in name:
                assert hw < bw / 3  # stencils: big saving
    record_table(
        "e17_halo_words", t,
        notes="Stencil shadows are thin boundaries; the power-law matrix's "
        "shadow approaches the whole vector, erasing the advantage -- the "
        "irregular case still needs Section 5.2's machinery.",
    )


def test_e17_effect_on_cg_time(benchmark):
    A = poisson2d(20, 20)
    b = np.ones(A.nrows)
    crit = StoppingCriterion(rtol=1e-8)

    def run(factory):
        machine = Machine(nprocs=8)
        return hpf_cg(factory(machine, A), b, criterion=crit)

    benchmark(run, CsrHalo)

    res_halo = run(CsrHalo)
    res_bcast = run(lambda m, a: make_strategy("csr_forall_aligned", m, a))

    t = Table(
        ["strategy", "iterations", "comm words", "sim time (ms)"],
        title="E17b full CG with halo vs broadcast (poisson2d 20x20, N_P=8)",
    )
    t.add_row("broadcast (csr_forall_aligned)", res_bcast.iterations,
              res_bcast.comm["words"], res_bcast.machine_elapsed * 1e3)
    t.add_row("halo (csr_halo)", res_halo.iterations,
              res_halo.comm["words"], res_halo.machine_elapsed * 1e3)
    assert res_halo.iterations == res_bcast.iterations
    assert np.allclose(res_halo.x, res_bcast.x, atol=1e-8)
    assert res_halo.comm["words"] < res_bcast.comm["words"]
    assert res_halo.machine_elapsed < res_bcast.machine_elapsed
    record_table(
        "e17b_cg_effect", t,
        notes="Same numerics; the halo removes most of the mat-vec traffic "
        "that made the sparse solve communication-bound.",
    )


def test_e17_scaling_recovered(benchmark):
    """With the halo, sparse CG recovers real parallel speedup.

    Run on a lower-latency machine (t_s = 2 us, t_c = 2 ns -- an early-2000s
    cluster rather than the default 1996 multicomputer) at n = 4096, where
    the broadcast's O(n) transfer per mat-vec is the binding constraint.
    """
    from repro.machine import CostModel

    A = poisson2d(64, 64)  # n = 4096
    b = np.ones(A.nrows)
    crit = StoppingCriterion(rtol=1e-6, maxiter=400)
    cost = CostModel(t_startup=2e-6, t_comm=2e-9)

    def run(factory, p):
        machine = Machine(nprocs=p, cost=cost)
        return hpf_cg(factory(machine, A), b, criterion=crit).machine_elapsed

    benchmark(run, CsrHalo, 8)

    t = Table(
        ["N_P", "broadcast speedup", "halo speedup"],
        title="E17c sparse CG scaling, broadcast vs halo "
              "(poisson2d 64x64, t_s=2us)",
    )
    base_b = base_h = None
    bcast_factory = lambda m, a: make_strategy("csr_forall_aligned", m, a)
    bcast_speedups, halo_speedups = [], []
    for p in (1, 2, 4, 8, 16):
        tb = run(bcast_factory, p)
        th = run(CsrHalo, p)
        if base_b is None:
            base_b, base_h = tb, th
        bcast_speedups.append(base_b / tb)
        halo_speedups.append(base_h / th)
        t.add_row(p, base_b / tb, base_h / th)
        if p >= 4:
            assert base_h / th > base_b / tb  # halo scales strictly better
    assert halo_speedups[-1] > 2.8
    assert max(bcast_speedups) < max(halo_speedups)
    record_table(
        "e17c_scaling", t,
        notes="The broadcast saturates near 2.3x (it still ships the whole "
        "vector every mat-vec); the halo keeps climbing. On the default "
        "1996 cost model neither scales at this n -- latency swamps the "
        "~5 flops/element stencil, the regime the paper wrote in.",
    )


def test_e17_rcm_ordering(benchmark):
    """Ordering vs structure: RCM fixes a scrambled stencil's halo but makes
    the power-law matrix *worse* -- hub rows defeat bandwidth reduction,
    confirming that Section 5.2.2's irregularity is structural, not an
    artefact of numbering."""
    from repro.sparse import bandwidth, permute_symmetric, reorder_rcm

    rng = np.random.default_rng(3)
    A = poisson2d(16, 16)
    scrambled = permute_symmetric(A, rng.permutation(A.nrows))
    recovered, _ = reorder_rcm(scrambled)
    P = irregular_powerlaw(256, seed=3)
    P_rcm, _ = reorder_rcm(P)

    benchmark(reorder_rcm, scrambled)

    t = Table(
        ["matrix", "bandwidth", "halo words (N_P=8)", "halo pairs"],
        title="E17d RCM reordering: ordering vs structural irregularity",
    )
    rows = {}
    for label, M in [
        ("stencil, natural order", A),
        ("stencil, scrambled", scrambled),
        ("stencil, scrambled + RCM", recovered),
        ("power-law", P),
        ("power-law + RCM", P_rcm),
    ]:
        halo = CsrHalo(Machine(nprocs=8), M)
        rows[label] = halo
        t.add_row(label, bandwidth(M), halo.halo_words_total(), halo.halo_pairs())
    assert (
        rows["stencil, scrambled + RCM"].halo_words_total()
        < rows["stencil, scrambled"].halo_words_total() / 2
    )
    assert (
        rows["power-law + RCM"].halo_words_total()
        > rows["power-law"].halo_words_total() * 0.8
    )
    record_table(
        "e17d_rcm", t,
        notes="RCM restores the scrambled stencil's thin halo (a numbering "
        "problem); the power-law matrix stays expensive under any ordering "
        "(a structure problem) -- the case the paper's partitioners target.",
    )
