"""Benchmark-suite conftest: print every experiment table at session end."""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _harness import registered_tables  # noqa: E402


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    tables = registered_tables()
    if not tables:
        return
    tr = terminalreporter
    tr.section("paper reproduction tables")
    for name, text in tables:
        tr.write_line("")
        tr.write_line(f"== {name} ==")
        for line in text.splitlines():
            tr.write_line(line)
