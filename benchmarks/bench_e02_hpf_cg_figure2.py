"""E2 -- Figure 2: the full HPF CG code (CSR format + directives).

Parses the figure's directive block verbatim, applies it to declared
arrays, runs the distributed CG with the CSR FORALL mat-vec, and reports
convergence plus the per-phase communication decomposition.
"""

import numpy as np

from _harness import record_table
from repro.analysis import Table
from repro.core import (
    StoppingCriterion,
    cg_reference,
    figure2_cg,
    hpf_cg,
    make_strategy,
)
from repro.hpf import HpfNamespace
from repro.machine import Machine
from repro.sparse import poisson2d, rhs_for_solution

FIGURE2_DIRECTIVES = """
REAL, dimension(1:nz) :: a
INTEGER, dimension(1:nz) :: col
INTEGER, dimension(1:n+1) :: row
REAL, dimension(1:n) :: x, r, p, q
!HPF$ PROCESSORS :: PROCS(NP)
!HPF$ ALIGN (:) WITH p(:) :: q, r, x, b
!HPF$ DISTRIBUTE p(BLOCK)
!HPF$ DISTRIBUTE row(CYCLIC((n+NP-1)/np))
!HPF$ ALIGN a(:) WITH col(:)
!HPF$ DISTRIBUTE col(BLOCK)
"""


def _build_namespace(machine, A):
    n, nz = A.nrows, A.nnz
    ns = HpfNamespace(machine, env={"n": n, "nz": nz})
    for name in ("p", "q", "r", "x", "b"):
        ns.declare(name, n)
    ns.declare("row", n + 1, values=A.indptr.astype(float))
    ns.declare("col", nz, values=A.indices.astype(float))
    ns.declare("a", nz, values=A.data)
    ns.apply(FIGURE2_DIRECTIVES)
    return ns


def test_e02_directives_verbatim(benchmark):
    """The figure's directive text parses and maps the declared arrays."""
    A = poisson2d(8, 8).to_csr()
    machine = Machine(nprocs=4)

    ns = benchmark(_build_namespace, machine, A)

    assert ns.array("q").distribution.same_mapping(ns.array("p").distribution)
    assert ns.array("a").distribution.same_mapping(ns.array("col").distribution)
    t = Table(
        ["array", "distribution"],
        title="E2  Figure 2 directives applied (n=64, NP=4)",
    )
    for name in ("p", "q", "r", "x", "b", "row", "col", "a"):
        t.add_row(name, repr(ns.array(name).distribution))
    record_table("e02_directives", t)


def test_e02_figure2_cg_run(benchmark):
    """The Figure-2 CG loop on the simulated machine, vs sequential CG."""
    A = poisson2d(10, 10)
    n = A.nrows
    xt = np.sin(np.arange(n))
    b = rhs_for_solution(A, xt)
    crit = StoppingCriterion(rtol=1e-8)

    seq = cg_reference(A, b, criterion=crit)

    def run():
        machine = Machine(nprocs=4)
        return hpf_cg(make_strategy("csr_forall", machine, A), b, criterion=crit), machine

    (res, machine) = benchmark(run)

    assert res.converged
    assert np.allclose(res.x, xt, atol=1e-5)

    t = Table(
        ["quantity", "sequential", "HPF (NP=4)"],
        title="E2b Figure-2 CG on poisson2d(10x10), rtol=1e-8",
    )
    t.add_row("iterations", seq.iterations, res.iterations)
    t.add_row("final residual", seq.final_residual, res.final_residual)
    t.add_row("||x - x_true||_inf", float(np.abs(seq.x - xt).max()),
              float(np.abs(res.x - xt).max()))
    t.add_row("simulated time (s)", "-", res.machine_elapsed)
    t.add_row("comm words", "-", res.comm["words"])
    tags = machine.stats.by_tag()
    for tag in ("matvec", "dot"):
        if tag in tags:
            t.add_row(f"  words in {tag}", "-", tags[tag]["words"])
    record_table(
        "e02b_cg_run", t,
        notes="Identical iteration counts: the HPF formulation changes the "
        "execution mapping, not the numerics.",
    )


def test_e02_literal_interpreter_equivalence(benchmark):
    """The figure's source, executed construct by construct through the
    language runtime (FORALL + DOT_PRODUCT + saxpy), must equal the
    compiled strategy path in numerics AND communication."""
    A = poisson2d(8, 8)
    xt = np.cos(np.arange(64.0))
    b = rhs_for_solution(A, xt)
    crit = StoppingCriterion(rtol=1e-9)

    def run_literal():
        machine = Machine(nprocs=4)
        return figure2_cg(machine, A, b, criterion=crit)

    lit = benchmark(run_literal)
    m_opt = Machine(nprocs=4)
    opt = hpf_cg(make_strategy("csr_forall_aligned", m_opt, A), b, criterion=crit)

    t = Table(
        ["path", "iterations", "comm words", "comm messages", "max err"],
        title="E2c Figure-2 source interpreted vs compiled strategy",
    )
    t.add_row("interpreted (forall/intrinsics)", lit.iterations,
              lit.comm["words"], lit.comm["messages"],
              float(np.abs(lit.x - xt).max()))
    t.add_row("compiled (csr_forall_aligned)", opt.iterations,
              opt.comm["words"], opt.comm["messages"],
              float(np.abs(opt.x - xt).max()))
    assert lit.iterations == opt.iterations
    assert lit.comm["words"] == opt.comm["words"]
    assert np.allclose(lit.x, opt.x, atol=1e-12)
    record_table(
        "e02c_literal", t,
        notes="Statement-by-statement execution of the figure and the "
        "strategy-object execution charge the machine identically -- the "
        "two views of 'what the compiler emits' agree.",
    )
