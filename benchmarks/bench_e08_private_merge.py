"""E8 -- Section 5.1 / Figure 5: the PRIVATE ... WITH MERGE(+) extension.

Three results in one experiment:
1. HPF-1 *rejects* the CSC scatter loop: FORALL raises many-to-one,
   INDEPENDENT fails Bernstein's conditions (checked live);
2. the privatised loop parallelises it: speedup over the serial CSC
   execution, growing with N_P;
3. the cost the paper flags: n words of private storage per processor and
   the SUM-style merge.
"""

import numpy as np
import pytest

from _harness import record_table
from repro.analysis import Table, csc_serial_time, private_merge_matvec_time, private_storage_words
from repro.core.matvec import CscPrivateMerge, CscSerial
from repro.hpf import (
    BernsteinViolationError,
    DistributedArray,
    ManyToOneAssignmentError,
    forall_indexed,
    independent_do,
)
from repro.machine import Machine
from repro.sparse import figure1_matrix, poisson2d


def test_e08_hpf1_rejections(benchmark):
    """The language-rule half of Section 5.1, exercised."""
    A = figure1_matrix().to_csc()

    def attempt_both():
        outcomes = []
        m = Machine(nprocs=4)
        out = DistributedArray(m, 6)
        try:
            forall_indexed(
                out, range(A.nnz),
                target=lambda k: int(A.indices[k]),
                value=lambda k: float(A.data[k]),
            )
        except ManyToOneAssignmentError:
            outcomes.append("FORALL: ManyToOneAssignmentError")
        arrays = {"q": np.zeros(6), "a": A.data.copy(),
                  "row": A.indices.astype(float)}

        def body(k, q, a, row):
            q[int(row[k])] = q[int(row[k])] + a[k]

        try:
            independent_do(range(A.nnz), body, arrays)
        except BernsteinViolationError:
            outcomes.append("INDEPENDENT: BernsteinViolationError")
        return outcomes

    outcomes = benchmark(attempt_both)
    assert len(outcomes) == 2

    t = Table(
        ["construct", "paper's verdict", "runtime verdict"],
        title="E8  HPF-1 cannot express the CSC scatter loop",
    )
    t.add_row("FORALL", "accumulation not allowed", outcomes[0])
    t.add_row("INDEPENDENT DO", "violates Bernstein's conditions", outcomes[1])
    record_table("e08_rejections", t)


def _csc_times(n_grid, nprocs):
    A = poisson2d(n_grid, n_grid)
    pv = np.linspace(0, 1, A.nrows)
    m_ser = Machine(nprocs=nprocs)
    ser = CscSerial(m_ser, A)
    ser.apply(ser.make_vector("p", pv), ser.make_vector("q"))
    m_par = Machine(nprocs=nprocs)
    par = CscPrivateMerge(m_par, A)
    par.apply(par.make_vector("p", pv), par.make_vector("q"))
    return A, m_ser.elapsed(), m_par.elapsed()


def test_e08_private_speedup(benchmark):
    benchmark(_csc_times, 16, 8)

    n_grid = 16
    t = Table(
        ["N_P", "serial CSC (s)", "PRIVATE+MERGE (s)", "speedup",
         "serial flops-only bound (s)", "model private (s)"],
        title=f"E8b privatised CSC mat-vec, n={n_grid * n_grid}",
    )
    cost = Machine(nprocs=2).cost
    speedups = []
    for p in (2, 4, 8, 16):
        A, t_ser, t_par = _csc_times(n_grid, p)
        speedups.append(t_ser / t_par)
        t.add_row(
            p, t_ser, t_par, t_ser / t_par,
            csc_serial_time(A.nnz, cost),
            private_merge_matvec_time(A.nrows, A.nnz, p, cost),
        )
        assert t_par < t_ser
    assert speedups == sorted(speedups)  # speedup grows with N_P
    record_table(
        "e08b_speedup", t,
        notes="The extension converts the unparallelisable loop into a "
        "parallel one; speedup grows with N_P as the model predicts.",
    )


def test_e08_storage_cost(benchmark):
    """'N_P temporary vectors each of length n ... particularly if n >> N_P'."""
    benchmark(private_storage_words, 4096, 16)

    t = Table(
        ["n", "N_P", "private words total", "vs one vector"],
        title="E8c the PRIVATE storage bill",
    )
    for n, p in [(1024, 4), (4096, 16), (65536, 64)]:
        words = private_storage_words(n, p)
        t.add_row(n, p, words, words / n)
    m = Machine(nprocs=8)
    A = poisson2d(16, 16)
    par = CscPrivateMerge(m, A)
    base = m.stats.storage_words_per_rank.copy()
    par.apply(par.make_vector("p"), par.make_vector("q"))
    measured = (m.stats.storage_words_per_rank - base).max()
    assert measured >= A.nrows
    record_table(
        "e08c_storage", t,
        notes=f"Measured on the machine: {measured:.0f} temporary words per "
        "rank for one n=256 apply -- exactly the n-per-processor the paper "
        "warns about.",
    )
