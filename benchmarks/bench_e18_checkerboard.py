"""E18 -- ablation: 2-D checkerboard vs the paper's 1-D stripes.

Section 4 concludes "it is not possible to reduce the communication time
if the matrix is partitioned into regular stripes either in a row-wise or
column-wise fashion."  The claim is specifically about *stripes*: the 2-D
(BLOCK, BLOCK) checkerboard from the paper's own cost reference (Kumar et
al. [17]) reduces per-processor volume from O(n) to O(n/sqrt(P)).  This
experiment verifies both halves: the two stripe layouts tie (the paper's
claim), and the checkerboard beats them (the boundary of the claim).
"""

import numpy as np
import pytest

from _harness import record_table
from repro.analysis import Table
from repro.core import (
    ColBlockDenseTwoDimTemp,
    DenseCheckerboard,
    RowBlockDense,
    StoppingCriterion,
    hpf_cg,
)
from repro.machine import Machine
from repro.sparse import poisson2d


def _apply_once(strategy_cls, A, nprocs, topology="hypercube"):
    machine = Machine(nprocs=nprocs, topology=topology)
    strat = strategy_cls(machine, A)
    pv = np.linspace(0, 1, A.nrows)
    p, q = strat.make_vector("p", pv), strat.make_vector("q")
    strat.apply(p, q)
    assert np.allclose(q.to_global(), A.matvec(pv))
    return machine


def test_e18_stripes_tie_checkerboard_wins(benchmark):
    A = poisson2d(24, 24)  # n = 576, treated dense
    n = A.nrows
    benchmark(_apply_once, DenseCheckerboard, A, 16, "complete")

    t = Table(
        ["layout", "N_P", "total comm words", "comm time (s)"],
        title=f"E18  dense mat-vec communication, n={n}",
    )
    results = {}
    for label, cls, topo in [
        ("row stripes (BLOCK, *)", RowBlockDense, "hypercube"),
        ("col stripes (*, BLOCK) + temp", ColBlockDenseTwoDimTemp, "hypercube"),
        ("checkerboard (BLOCK, BLOCK)", DenseCheckerboard, "complete"),
    ]:
        m = _apply_once(cls, A, 16, topo)
        results[label] = m
        t.add_row(label, 16, m.stats.total_words, m.stats.comm_time)
    rows_words = results["row stripes (BLOCK, *)"].stats.total_words
    cols_words = results["col stripes (*, BLOCK) + temp"].stats.total_words
    checker_words = results["checkerboard (BLOCK, BLOCK)"].stats.total_words
    # the paper's claim: the stripes tie (same O(n) volume)
    assert rows_words == pytest.approx(cols_words, rel=0.01)
    # the boundary: 2-D blocks beat both
    assert checker_words < rows_words / 2
    record_table(
        "e18_stripes_vs_checker", t,
        notes="Row and column stripes move the same words (the paper's "
        "equality); the 2-D checkerboard moves O(n/sqrt(P)) per rank and "
        "wins -- the claim is about stripes, not about all regular "
        "distributions.",
    )


def test_e18_volume_scaling_with_p(benchmark):
    A = poisson2d(24, 24)
    n = A.nrows
    benchmark(_apply_once, DenseCheckerboard, A, 4, "complete")

    t = Table(
        ["N_P", "stripes words/rank", "checker words/rank", "ratio"],
        title=f"E18b per-rank received words vs N_P, n={n}",
    )
    for p in (4, 16, 64):
        stripes_per_rank = (p - 1) / p * n  # allgather receive volume
        checker = DenseCheckerboard(Machine(nprocs=p, topology="complete"), A)
        cw = checker.comm_words_received_per_rank()
        t.add_row(p, stripes_per_rank, cw, stripes_per_rank / cw)
        if p > 4:
            assert cw < stripes_per_rank
    record_table(
        "e18b_scaling", t,
        notes="Stripes receive ~n words regardless of N_P; the checkerboard "
        "receives 2n/sqrt(N_P), so it breaks even around N_P=4 and the gap "
        "widens with the machine.",
    )


def test_e18_full_cg(benchmark):
    A = poisson2d(32, 32)  # n = 1024 dense operator
    b = np.ones(A.nrows)
    crit = StoppingCriterion(rtol=1e-8)

    def run(cls, topo):
        machine = Machine(nprocs=16, topology=topo)
        return hpf_cg(cls(machine, A), b, criterion=crit)

    benchmark(run, DenseCheckerboard, "complete")

    res_stripe = run(RowBlockDense, "hypercube")
    res_checker = run(DenseCheckerboard, "complete")
    t = Table(
        ["layout", "iterations", "comm words", "sim time (ms)"],
        title="E18c dense CG, stripes vs checkerboard (n=1024, N_P=16)",
    )
    t.add_row("row stripes", res_stripe.iterations, res_stripe.comm["words"],
              res_stripe.machine_elapsed * 1e3)
    t.add_row("checkerboard", res_checker.iterations,
              res_checker.comm["words"], res_checker.machine_elapsed * 1e3)
    assert res_checker.iterations == res_stripe.iterations
    assert np.allclose(res_checker.x, res_stripe.x, atol=1e-8)
    assert res_checker.comm["words"] < res_stripe.comm["words"]
    record_table("e18c_full_cg", t)
