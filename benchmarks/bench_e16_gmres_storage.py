"""E16 -- Section 2.1's GMRES remark, quantified.

'More complex algorithms such as GMRES make use of longer recurrences
(which require greater storage).'

Compares CG's fixed working set against restarted GMRES's (m+1)-vector
Krylov basis -- memory per rank, inner products per mat-vec (allreduce
pressure), and convergence -- on a nonsymmetric system where CG does not
apply and on an SPD system where both do.
"""

import numpy as np
import pytest

from _harness import record_table
from repro.analysis import Table
from repro.core import (
    StoppingCriterion,
    hpf_bicgstab,
    hpf_cg,
    hpf_gmres,
    make_strategy,
)
from repro.machine import Machine
from repro.sparse import nonsymmetric_diag_dominant, poisson2d, rhs_for_solution

CRIT = StoppingCriterion(rtol=1e-9, maxiter=2000)


def _run(solver, A, b, **kwargs):
    machine = Machine(nprocs=8)
    strat = make_strategy("csr_forall_aligned", machine, A)
    res = solver(strat, b, criterion=CRIT, **kwargs)
    return res, machine


def test_e16_storage_vs_cg(benchmark):
    A = poisson2d(12, 12)
    b = np.ones(A.nrows)

    benchmark(_run, hpf_cg, A, b)

    res_cg, m_cg = _run(hpf_cg, A, b)
    rows = [("CG", res_cg, m_cg, "4 work vectors")]
    for restart in (10, 30):
        res, machine = _run(hpf_gmres, A, b, restart=restart)
        rows.append((f"GMRES({restart})", res, machine,
                     f"{restart + 1} basis vectors"))

    t = Table(
        ["solver", "iterations", "converged", "peak temp+array words/rank",
         "recurrence storage"],
        title="E16  storage of long vs short recurrences (n=144, N_P=8)",
    )
    for name, res, machine, note in rows:
        t.add_row(name, res.iterations, res.converged,
                  machine.stats.storage_words_per_rank.max(), note)
    cg_words = rows[0][2].stats.storage_words_per_rank.max()
    gmres30_words = rows[2][2].stats.storage_words_per_rank.max()
    assert gmres30_words > cg_words
    record_table(
        "e16_gmres_storage", t,
        notes="GMRES's Krylov basis is the 'greater storage' of Section 2.1; "
        "CG's short recurrence needs only a constant number of vectors.",
    )


def test_e16_dot_pressure(benchmark):
    """Arnoldi pays k+1 inner products at step k: the allreduce bill grows
    with the restart length, unlike CG's constant two."""
    A = nonsymmetric_diag_dominant(128, seed=4)
    xt = np.cos(np.arange(128.0))
    b = rhs_for_solution(A, xt)

    benchmark(_run, hpf_gmres, A, b, restart=20)

    t = Table(
        ["solver", "iterations", "dots total", "dots per mat-vec"],
        title="E16b inner-product (allreduce) pressure, nonsymmetric n=128",
    )
    res_st, m_st = _run(hpf_bicgstab, A, b)
    dots_st = m_st.stats.by_tag()["dot"]["count"]
    t.add_row("BiCGSTAB", res_st.iterations, dots_st,
              round(dots_st / max(1, 2 * res_st.iterations), 2))
    for restart in (5, 20):
        res, machine = _run(hpf_gmres, A, b, restart=restart)
        dots = machine.stats.by_tag()["dot"]["count"]
        t.add_row(f"GMRES({restart})", res.iterations, dots,
                  round(dots / max(1, res.iterations), 2))
        assert res.converged
        assert np.allclose(res.x, xt, atol=1e-4)
    record_table(
        "e16b_dot_pressure", t,
        notes="GMRES's per-iteration dot count grows with the Krylov index; "
        "the short-recurrence methods stay O(1) -- the reason the paper's "
        "'efficient intrinsic' concern matters even more for GMRES.",
    )
