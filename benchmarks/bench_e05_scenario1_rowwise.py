"""E5 -- Scenario 1 / Figure 3: row-wise (BLOCK, *) dense mat-vec.

'This all-to-all broadcast of messages containing n/N_P vector elements
among N_P processors, takes t_start_up * log N_P + t_comm * n/N_P time if a
tree-like broadcasting mechanism is used. ... Hence, no communication is
needed to rearrange the distribution of the results.'
"""

import numpy as np
import pytest

from _harness import record_table
from repro.analysis import Table, scenario1_broadcast_time
from repro.core.matvec import RowBlockDense
from repro.machine import Machine
from repro.sparse import poisson2d


def _one_apply(n_grid, nprocs):
    A = poisson2d(n_grid, n_grid)
    machine = Machine(nprocs=nprocs)
    strat = RowBlockDense(machine, A)
    p = strat.make_vector("p", np.linspace(0, 1, A.nrows))
    q = strat.make_vector("q")
    t0 = machine.elapsed()
    strat.apply(p, q)
    return machine, A, q, machine.elapsed() - t0


def test_e05_rowwise_matvec(benchmark):
    benchmark(_one_apply, 16, 8)

    n_grid = 16
    n = n_grid * n_grid
    t = Table(
        ["N_P", "broadcast model (s)", "simulated comm (s)",
         "local flops/rank", "extra q comm"],
        title=f"E5  Scenario 1 (BLOCK, *) dense mat-vec, n={n}",
    )
    for p in (2, 4, 8, 16):
        machine, A, q, _ = _one_apply(n_grid, p)
        ops = machine.stats.by_op()
        comm_time = machine.stats.comm_time
        model = scenario1_broadcast_time(n, p, machine.cost)
        flops_per_rank = machine.stats.flops_per_rank.max()
        # the ONLY communication is the allgather of p
        extra = {k: v for k, v in ops.items() if k != "allgather"}
        assert not extra, extra
        t.add_row(p, model, comm_time, flops_per_rank, "none")
        # same shape: simulated = model within a small constant factor
        assert comm_time == pytest.approx(model, rel=4.0)
    record_table(
        "e05_scenario1", t,
        notes="All traffic is the all-to-all broadcast of p; the result "
        "vector q needs no rearrangement, exactly as Figure 3 claims.",
    )


def test_e05_correctness(benchmark):
    machine, A, q, _ = _one_apply(12, 4)
    expected = A.matvec(np.linspace(0, 1, A.nrows))
    assert np.allclose(q.to_global(), expected)

    def rerun():
        return _one_apply(12, 4)[3]

    benchmark(rerun)
