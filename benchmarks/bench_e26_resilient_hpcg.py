"""E26 -- resilient HPCG: checkpoint overhead, durable store, chaos contract.

Three deterministic claims about the fault-tolerant stencil27 path, pinned
in one run (everything below executes on the simulated backend, so every
number is a property of the code, not of the host):

* **checkpoint/audit overhead is bounded and bitwise-free** -- the
  fault-free resilient solve reproduces the plain solve's solution
  *bitwise* at every checkpoint interval, and its simulated-time overhead
  (checkpoint memory traffic + audit SpMVs + reductions) shrinks as the
  interval grows.  The interval-5 overhead ratio is the number CI guards.
* **the durable store is a true drop-in** -- journalling checkpoints
  through :class:`~repro.backend.store.DurableCheckpointStore` (atomic
  records, CRC, manifest) changes nothing observable: same solution bits,
  same iteration count, same checkpoint set as the in-memory dict store,
  and zero leftover tmp files.
* **the chaos contract holds on the HPCG workload** -- a seeded sweep of
  message faults, state corruptions and crashes over ``stencil27``/``mg``
  with ABFT armed and reproducible reductions must end every run either
  converged **bitwise-equal** to the fault-free reference or failed with
  a classified error.

Machine-readable results go to ``BENCH_e26.json``;
``scripts/check_e26_regression.py`` fails CI if parity or the contract
breaks, or if the interval-5 overhead ratio worsens by more than 20%
against the committed baseline.
"""

import tempfile

import numpy as np
import pytest

from _harness import record_json, record_table
from repro.analysis import Table
from repro.backend.chaos import chaos_sweep
from repro.backend.store import DurableCheckpointStore
from repro.core.resilience import ResilienceConfig
from repro.core.stopping import StoppingCriterion
from repro.hpcg import hpcg_solve

SHAPE = (8, 8, 8)
NPROCS = 4
PRECOND = "jacobi"  # keeps real halo traffic in the resilient path
CRIT = StoppingCriterion(rtol=1e-10, atol=0.0)
INTERVALS = (2, 5, 10)
CHAOS_SEEDS = range(8)


def _plain():
    return hpcg_solve(SHAPE, nprocs=NPROCS, precond=PRECOND,
                      criterion=CRIT, reproducible=True)


def _resilient(interval, store=None):
    return hpcg_solve(
        SHAPE, nprocs=NPROCS, precond=PRECOND, criterion=CRIT,
        reproducible=True,
        resilience=ResilienceConfig(
            checkpoint_interval=interval, sanity_interval=interval,
        ),
        store=store if store is not None else {},
    )


def test_e26_resilient_hpcg(benchmark):
    plain = _plain()
    assert plain.converged

    # -------------------------------------------------------------- #
    # checkpoint-interval overhead sweep (simulated time, deterministic)
    # -------------------------------------------------------------- #
    sweep = {}
    for interval in INTERVALS:
        res = _resilient(interval)
        assert res.converged
        bitwise = bool(np.array_equal(res.x, plain.x))
        assert bitwise, f"interval={interval} perturbed the solution"
        sweep[str(interval)] = {
            "iterations": res.iterations,
            "sim_time_ratio": res.machine_elapsed / plain.machine_elapsed,
            "message_ratio": res.comm["messages"] / plain.comm["messages"],
            "checkpoints": res.extras["resilience"]["checkpoints_published"],
            "audits": res.extras["resilience"]["audits"],
            "bitwise_equal_to_plain": bitwise,
        }

    # -------------------------------------------------------------- #
    # durable store vs in-memory dict: observationally identical
    # -------------------------------------------------------------- #
    mem_store = {}
    mem = _resilient(5, store=mem_store)
    with tempfile.TemporaryDirectory() as root:
        durable_store = DurableCheckpointStore(root, fsync=False)
        dur = _resilient(5, store=durable_store)
        durable_matches = (
            bool(np.array_equal(mem.x, dur.x))
            and mem.iterations == dur.iterations
            and sorted(mem_store) == sorted(durable_store)
            and durable_store.tmp_files() == []
        )
    assert durable_matches

    # -------------------------------------------------------------- #
    # chaos contract on the HPCG workload (bitwise under reproducible)
    # -------------------------------------------------------------- #
    outcomes = chaos_sweep(
        CHAOS_SEEDS, backends=("simulated",), nprocs=NPROCS,
        scenario="stencil27", precond="mg", reproducible=True,
    )
    ok = sum(1 for o in outcomes if o.ok)
    assert ok == len(outcomes)

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    t = Table(
        ["interval", "iters", "ckpts", "audits", "sim-time x", "msgs x",
         "bitwise"],
        title=(f"E26  resilient HPCG overhead (stencil27 "
               f"{SHAPE[0]}^3, P={NPROCS}, {PRECOND}, reproducible)"),
    )
    for interval in INTERVALS:
        row = sweep[str(interval)]
        t.add_row(
            interval, row["iterations"], row["checkpoints"], row["audits"],
            f"{row['sim_time_ratio']:.3f}", f"{row['message_ratio']:.3f}",
            "yes" if row["bitwise_equal_to_plain"] else "NO",
        )
    record_table(
        "e26_resilient_hpcg", t,
        notes="Checkpoints are charged as local memory traffic and audits "
        "as full SpMV + reductions, so the simulated-time ratio is the "
        "honest price of resilience; it must fall as the interval grows "
        "and never perturb a single bit of the solution. "
        f"Durable-store parity: {durable_matches}; chaos contract "
        f"(stencil27/mg, ABFT, bitwise): {ok}/{len(outcomes)}.",
    )
    record_json("e26", {
        "experiment": "e26_resilient_hpcg",
        "problem": {
            "matrix": f"stencil27 {SHAPE[0]}^3",
            "n": int(np.prod(SHAPE)),
            "shape": list(SHAPE),
            "precond": PRECOND,
        },
        "nprocs": NPROCS,
        "plain_iterations": plain.iterations,
        "overhead_by_interval": sweep,
        "durable_store_matches_memory": durable_matches,
        "chaos": {
            "scenario": "stencil27",
            "precond": "mg",
            "seeds": list(CHAOS_SEEDS),
            "ok_runs": ok,
            "total_runs": len(outcomes),
            "bitwise": all(
                o.max_abs_err == 0.0 for o in outcomes
                if o.outcome in ("converged", "degraded")
            ),
        },
    })
