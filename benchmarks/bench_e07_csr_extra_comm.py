"""E7 -- Section 4: CSR's extra communication.

'Since the index set of the FORALL in the outer loop is partitioned among
the processors, a processor that is responsible from a specific row may not
have all the actual data elements (i.e., col and a) on that row.
Therefore, additional communication is needed to bring in those missing
elements.'

Measures the non-local col/a element volume under the Figure-2 layout
(elements BLOCK over nz) versus the row-aligned atom layout, across
matrices and machine sizes.
"""

import numpy as np
import pytest

from _harness import record_table
from repro.analysis import Table
from repro.core import StoppingCriterion, hpf_cg
from repro.core.matvec import CsrForall
from repro.machine import Machine
from repro.sparse import irregular_powerlaw, nas_cg_style, poisson2d


def _strategies(A, nprocs):
    m_plain = Machine(nprocs=nprocs)
    m_aligned = Machine(nprocs=nprocs)
    return CsrForall(m_plain, A, aligned=False), CsrForall(m_aligned, A, aligned=True)


def test_e07_nonlocal_element_volume(benchmark):
    A = poisson2d(16, 16)
    benchmark(_strategies, A, 8)

    t = Table(
        ["matrix", "N_P", "nnz", "non-local words (BLOCK nz)",
         "non-local words (row atoms)"],
        title="E7  extra col/a communication per mat-vec",
    )
    for name, A in [
        ("poisson2d 16x16", poisson2d(16, 16)),
        ("nas_cg n=256", nas_cg_style(256, seed=1)),
        ("powerlaw n=256", irregular_powerlaw(256, seed=1)),
    ]:
        for p in (4, 8):
            plain, aligned = _strategies(A, p)
            w_plain = plain.nonlocal_element_words()
            w_aligned = aligned.nonlocal_element_words()
            t.add_row(name, p, A.nnz, w_plain, w_aligned)
            assert w_plain > 0
            assert w_aligned == 0
    record_table(
        "e07_nonlocal", t,
        notes="The default element-BLOCK layout leaves part of every rank's "
        "rows remote; whole-row atoms (Section 5.2.1) eliminate the fetch.",
    )


def test_e07_effect_on_cg_time(benchmark):
    A = poisson2d(12, 12)
    b = np.ones(A.nrows)
    crit = StoppingCriterion(rtol=1e-8)

    def run(aligned):
        m = Machine(nprocs=8)
        return hpf_cg(CsrForall(m, A, aligned=aligned), b, criterion=crit)

    benchmark(run, True)

    res_plain = run(False)
    res_aligned = run(True)
    t = Table(
        ["layout", "iterations", "comm words", "sim time (s)"],
        title="E7b CG cost with vs without the extra CSR communication",
    )
    t.add_row("col/a BLOCK over nz", res_plain.iterations,
              res_plain.comm["words"], res_plain.machine_elapsed)
    t.add_row("col/a by row atoms", res_aligned.iterations,
              res_aligned.comm["words"], res_aligned.machine_elapsed)
    assert res_plain.comm["words"] > res_aligned.comm["words"]
    assert res_plain.machine_elapsed > res_aligned.machine_elapsed
    assert res_plain.iterations == res_aligned.iterations
    record_table("e07b_cg_effect", t)
