"""E27 -- Write-ahead job journal overhead and replay cost.

PR 9 makes the service's accepted work survive a dead driver by
journaling every job lifecycle transition (``accepted`` / ``dispatched``
/ terminal) as one crash-safe record.  Durability that taxes the warm
pool's throughput advantage (E24) would defeat the point, so E27 pins
two numbers:

* **journal overhead** -- the same warm-pool job stream as E24 through
  :class:`SolverService` with and without a journal.  The happy path
  writes exactly 3 records per job; with ``fsync=False`` (the bench and
  test policy the checkpoint store documents; records still survive
  process kill) the journaled stream must keep **>= 0.9x** the
  unjournaled solves/sec -- at most 10%% overhead.  ``fsync=True``
  (power-loss durability) is reported informationally: its cost is the
  disk's flush latency, not the journal's bookkeeping.
* **replay cost** -- time for a fresh :class:`JobJournal` to load and
  fold a journal of L records (the restart path).  Reported as
  records/sec across journal lengths; replay must scale linearly, not
  quadratically, in journal length.

Paths are interleaved per trial (A/B/A/B, best-of over trials) so a
transient host stall cannot charge one path with the other's noise.
Machine-readable results go to ``BENCH_e27.json``; the CI
``service-crash-replay`` job re-runs this benchmark and
``scripts/check_e27_regression.py`` enforces the 10%% gate.
"""

import time

import numpy as np
import pytest

from _harness import record_json, record_table
from repro.analysis import Table
from repro.backend import process_backend_support
from repro.core import StoppingCriterion
from repro.service import JobJournal, JobSpec, SolverService, WarmPool
from repro.sparse import poisson1d

CRIT = StoppingCriterion(rtol=1e-8, maxiter=400)
N = 64          # the E24 stream: small solves where fixed tax dominates
NPROCS = 2
JOBS = 8
TRIALS = 3      # interleaved; best-of per path
TIMEOUT = 60.0
START = "spawn"
REPLAY_JOBS = (32, 128)   # journal lengths for the replay-cost probe
_OK, _DETAIL = process_backend_support(START)


def _problem():
    A = poisson1d(N)
    b = np.random.default_rng(27).standard_normal(A.nrows)
    return A, b


def _stream_seconds(A, b, journal_dir=None, journal_fsync=False):
    """One warmed service, JOBS timed submissions; returns elapsed s."""
    with SolverService(
        backend=WarmPool(NPROCS, timeout=TIMEOUT, start_method=START),
        target_nprocs=NPROCS,
        journal_dir=journal_dir,
        journal_fsync=journal_fsync,
    ) as svc:
        spec = dict(matrix=A, b=b, nprocs=NPROCS, criterion=CRIT)
        first = svc.solve(JobSpec(**spec), timeout=TIMEOUT)
        assert first.ok  # warm-up: generation build + imports excluded
        t0 = time.perf_counter()
        handles = [svc.submit(JobSpec(**spec)) for _ in range(JOBS)]
        results = [h.result(timeout=TIMEOUT) for h in handles]
        elapsed = time.perf_counter() - t0
        assert all(r.ok for r in results)
        for r in results:
            assert np.array_equal(r.x, first.x)  # journaling: same bits
    return elapsed


def _replay_seconds(tmp_path, jobs):
    """Build a journal of ``3 * jobs`` records; time a cold load."""
    A, b = _problem()
    path = str(tmp_path / f"journal-{jobs}")
    journal = JobJournal(path, fsync=False)
    for i in range(jobs):
        key = f"job-{i}"
        spec = JobSpec(matrix=A, b=b, nprocs=NPROCS, criterion=CRIT,
                       idempotency_key=key)
        journal.accepted(key, spec)
        journal.dispatched(key)
        if i % 2 == 0:   # half terminal, half pending: the restart mix
            journal.completed(key, None)
    t0 = time.perf_counter()
    reloaded = JobJournal(path, fsync=False)
    elapsed = time.perf_counter() - t0
    assert len(reloaded) == len(journal)
    assert len(reloaded.replayable()) == jobs // 2
    return len(reloaded), elapsed


@pytest.mark.skipif(not _OK, reason=f"process backend unavailable: {_DETAIL}")
def test_e27_journal_overhead(benchmark, tmp_path):
    A, b = _problem()

    best = {"plain": float("inf"), "journal": float("inf"),
            "fsync": float("inf")}
    for trial in range(TRIALS):
        best["plain"] = min(best["plain"], _stream_seconds(A, b))
        best["journal"] = min(best["journal"], _stream_seconds(
            A, b, journal_dir=str(tmp_path / f"j{trial}"),
        ))
        best["fsync"] = min(best["fsync"], _stream_seconds(
            A, b, journal_dir=str(tmp_path / f"jf{trial}"),
            journal_fsync=True,
        ))

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    plain_rate = JOBS / best["plain"]
    journal_rate = JOBS / best["journal"]
    fsync_rate = JOBS / best["fsync"]
    relative = journal_rate / plain_rate
    overhead_pct = max(0.0, (1.0 - relative) * 100.0)
    fsync_relative = fsync_rate / plain_rate

    replay = [_replay_seconds(tmp_path, jobs) for jobs in REPLAY_JOBS]

    t = Table(
        ["path", "jobs", "best (s)", "solves/sec", "vs no journal"],
        title=f"E27  journal overhead on the warm-pool stream "
        f"(poisson1d n={N}, P={NPROCS}, {JOBS} jobs, best of {TRIALS})",
    )
    t.add_row("no journal", JOBS, f"{best['plain']:.3f}",
              f"{plain_rate:.1f}", "1.00x")
    t.add_row("journal (fsync=False)", JOBS, f"{best['journal']:.3f}",
              f"{journal_rate:.1f}", f"{relative:.2f}x")
    t.add_row("journal (fsync=True)", JOBS, f"{best['fsync']:.3f}",
              f"{fsync_rate:.1f}", f"{fsync_relative:.2f}x")
    for records, elapsed in replay:
        t.add_row(f"replay load ({records} records)", records // 3,
                  f"{elapsed:.4f}",
                  f"{records / elapsed:.0f} rec/s", "-")
    record_table(
        "e27_journal", t,
        notes="The happy path journals 3 records/job (accepted, "
        "dispatched, terminal), each an atomic tmp+rename publish.  "
        "fsync=False survives process kill (the replay contract); "
        "fsync=True additionally survives power loss and pays the "
        "disk's flush latency per record.",
    )
    record_json("e27", {
        "experiment": "e27_journal_overhead",
        "problem": {"matrix": f"poisson1d n={N}", "n": N},
        "criterion": {"rtol": CRIT.rtol, "maxiter": CRIT.maxiter},
        "nprocs": NPROCS,
        "jobs": JOBS,
        "trials": TRIALS,
        "start_method": START,
        "no_journal": {
            "elapsed_s": best["plain"],
            "solves_per_sec": plain_rate,
        },
        "journal_nofsync": {
            "elapsed_s": best["journal"],
            "solves_per_sec": journal_rate,
            "relative_throughput": relative,
            "overhead_pct": overhead_pct,
        },
        "journal_fsync": {
            "elapsed_s": best["fsync"],
            "solves_per_sec": fsync_rate,
            "relative_throughput": fsync_relative,
        },
        "replay": [
            {"records": records, "elapsed_s": elapsed,
             "records_per_sec": records / elapsed}
            for records, elapsed in replay
        ],
    })

    # the acceptance gate: durability must not tax the warm pool >10%
    assert relative >= 0.9, (
        f"journaled stream at {relative:.2f}x unjournaled throughput "
        f"({overhead_pct:.1f}% overhead; gate: <= 10%)"
    )
