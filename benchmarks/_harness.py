"""Shared infrastructure for the experiment benchmarks (E1..E23).

Each benchmark module reproduces one figure or claim of the paper and
renders a paper-style table.  Tables are registered here; the conftest's
``pytest_terminal_summary`` hook prints every registered table after the
pytest-benchmark results, and each table is also written to
``benchmarks/results/<name>.txt`` so the harness output is durable.

:func:`record_json` additionally persists machine-readable results
(``BENCH_<name>.json`` at the repo root) so CI can diff quantitative
benchmark outcomes -- counts, modelled-vs-measured times -- across
commits instead of eyeballing tables.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Tuple

from repro.analysis import Table

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent

_REGISTERED: List[Tuple[str, str]] = []


def record_table(name: str, table: Table, notes: str = "") -> str:
    """Render, persist and register an experiment table."""
    text = table.render()
    if notes:
        text = text + "\n" + notes
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    _REGISTERED.append((name, text))
    return text


def record_json(name: str, payload: Dict[str, Any]) -> Path:
    """Persist a benchmark's machine-readable results.

    Writes ``BENCH_<name>.json`` at the repository root (committed, so a
    CI job can compare the current run against the last committed
    baseline) with deterministic key order.  Returns the path written.
    """
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def registered_tables() -> List[Tuple[str, str]]:
    return list(_REGISTERED)


def clear_registry() -> None:
    _REGISTERED.clear()
