"""Shared infrastructure for the experiment benchmarks (E1..E15).

Each benchmark module reproduces one figure or claim of the paper and
renders a paper-style table.  Tables are registered here; the conftest's
``pytest_terminal_summary`` hook prints every registered table after the
pytest-benchmark results, and each table is also written to
``benchmarks/results/<name>.txt`` so the harness output is durable.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Tuple

from repro.analysis import Table

RESULTS_DIR = Path(__file__).parent / "results"

_REGISTERED: List[Tuple[str, str]] = []


def record_table(name: str, table: Table, notes: str = "") -> str:
    """Render, persist and register an experiment table."""
    text = table.render()
    if notes:
        text = text + "\n" + notes
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    _REGISTERED.append((name, text))
    return text


def registered_tables() -> List[Tuple[str, str]]:
    return list(_REGISTERED)


def clear_registry() -> None:
    _REGISTERED.clear()
