"""E12 -- Section 2.1: convergence properties.

'The CG algorithm will generally converge to the solution of the system
A.x = b in at most n_e iterations, where n_e is the number of distinct
eigenvalues of the coefficient matrix A. ... A preconditioner for A can be
added ... which will increase the speed of convergence.'

Plus the framing claim of the introduction: iterative methods are preferred
over Gaussian elimination when A is large and sparse.
"""

import numpy as np
import pytest

from _harness import record_table
from repro.analysis import Table
from repro.baselines import direct_vs_cg_flops
from repro.core import (
    JacobiPreconditioner,
    SSORPreconditioner,
    StoppingCriterion,
    cg_reference,
    pcg_reference,
)
from repro.sparse import COOMatrix, matrix_with_eigenvalues, poisson2d


def test_e12_distinct_eigenvalue_bound(benchmark):
    n = 36

    def solve_for(n_e):
        eigs = np.tile(np.linspace(1.0, 10.0, n_e), n // n_e + 1)[:n]
        A = matrix_with_eigenvalues(eigs, seed=n_e)
        return cg_reference(A, np.ones(n), criterion=StoppingCriterion(rtol=1e-9))

    benchmark(solve_for, 4)

    t = Table(
        ["distinct eigenvalues n_e", "CG iterations", "bound holds"],
        title=f"E12  CG converges in <= n_e iterations (n={n})",
    )
    for n_e in (1, 2, 3, 4, 6, 9, 12):
        res = solve_for(n_e)
        holds = res.iterations <= n_e + 1
        t.add_row(n_e, res.iterations, "yes" if holds else "NO")
        assert res.converged
        assert holds
    record_table(
        "e12_eigenvalue_bound", t,
        notes="(+1 slack for floating-point roundoff at rtol=1e-9.)",
    )


def _ill_conditioned(n_side=10):
    A = poisson2d(n_side, n_side).to_coo()
    n = n_side * n_side
    scales = np.logspace(0, 2.5, n)
    return COOMatrix(
        A.rows, A.cols, A.data * scales[A.rows] * scales[A.cols], (n, n)
    ).to_csr()


def test_e12_preconditioning(benchmark):
    A = _ill_conditioned()
    n = A.nrows
    b = np.ones(n)
    crit = StoppingCriterion(rtol=1e-10, maxiter=5000)

    benchmark(pcg_reference, A, b, JacobiPreconditioner(A), criterion=crit)

    plain = cg_reference(A, b, criterion=crit)
    jac = pcg_reference(A, b, JacobiPreconditioner(A), criterion=crit)
    ssor = pcg_reference(A, b, SSORPreconditioner(A, omega=1.2), criterion=crit)

    t = Table(
        ["solver", "iterations", "converged", "final residual"],
        title="E12b preconditioning an ill-conditioned system (n=100)",
    )
    t.add_row("CG (no preconditioner)", plain.iterations, plain.converged,
              plain.final_residual)
    t.add_row("PCG + Jacobi", jac.iterations, jac.converged, jac.final_residual)
    t.add_row("PCG + SSOR(1.2)", ssor.iterations, ssor.converged,
              ssor.final_residual)
    assert jac.iterations < plain.iterations
    assert ssor.iterations < jac.iterations
    record_table(
        "e12b_preconditioning", t,
        notes="'will increase the speed of convergence of the CG algorithm' "
        "-- Jacobi helps, SSOR helps more (at a serial per-apply cost, E2).",
    )


def test_e12_cg_vs_gaussian_elimination(benchmark):
    sizes = [(6, 36), (10, 100), (14, 196), (18, 324)]

    benchmark(direct_vs_cg_flops, poisson2d(10, 10), np.ones(100))

    t = Table(
        ["n", "nnz", "GE flops", "CG flops", "CG wins", "GE/CG"],
        title="E12c direct vs iterative on sparse Poisson systems",
    )
    for side, n in sizes:
        A = poisson2d(side, side)
        cmp = direct_vs_cg_flops(A, np.ones(n),
                                 criterion=StoppingCriterion(rtol=1e-8))
        t.add_row(n, cmp["nnz"], cmp["ge_flops"], cmp["cg_flops"],
                  cmp["cg_wins"], cmp["ratio"])
        if n >= 100:
            assert cmp["cg_wins"]
    ratios = [
        direct_vs_cg_flops(poisson2d(s, s), np.ones(nn),
                           criterion=StoppingCriterion(rtol=1e-8))["ratio"]
        for s, nn in sizes
    ]
    assert ratios == sorted(ratios)  # the gap widens with n
    record_table(
        "e12c_direct_vs_cg", t,
        notes="'Conjugate Gradient and other iterative methods are preferred "
        "over simple Gaussian elimination when A is very large and sparse.'",
    )
