"""E24 -- Warm-pool service throughput vs one-shot process execution.

The persistent solver service exists because a one-shot
:class:`ProcessBackend` run pays per solve what the warm pool pays once:
fork/spawn of P rank processes, P+1 queues, a barrier, NumPy warm-up and
a full reap.  For the small solves that dominate a multi-user stream,
that fixed tax is the bill.  E24 pins the claim:

* **throughput** -- N back-to-back solves of the same (n, P) system,
  one-shot (fresh backend per job) vs warm pool (one generation serves
  all N): warm must clear **>= 2x** solves/sec;
* **full stack** -- the same stream through :class:`SolverService`
  (queue, dispatcher, retry/breaker accounting) to show the service
  layers add negligible overhead on top of the pool;
* **determinism** -- every solve, on every path, is bitwise-identical
  (same program, same substrate; reuse must not perturb results).

Machine-readable results go to ``BENCH_e24.json`` at the repo root; the
CI ``service-soak`` job re-runs this benchmark and
``scripts/check_e24_regression.py`` fails if the warm/one-shot speedup
drops below the 2x floor or collapses against the committed baseline.
"""

import time

import numpy as np
import pytest

from _harness import record_json, record_table
from repro.analysis import Table
from repro.backend import ProcessBackend, process_backend_support
from repro.backend.solve import make_solver_program
from repro.core import StoppingCriterion
from repro.service import JobSpec, SolverService, WarmPool
from repro.sparse import poisson1d

CRIT = StoppingCriterion(rtol=1e-8, maxiter=400)
N = 64          # small on purpose: per-solve process tax must dominate
NPROCS = 2
JOBS = 8
TIMEOUT = 60.0
# ``spawn`` for every path: it is the portable start method (the only one
# on macOS/Windows) and the one a production service would use -- and it
# makes the per-job tax the warm pool amortises (fresh interpreter +
# NumPy import per rank) explicit rather than hidden behind Linux fork.
START = "spawn"
_OK, _DETAIL = process_backend_support(START)


def _problem():
    A = poisson1d(N)
    b = np.random.default_rng(24).standard_normal(A.nrows)
    return A, b


def _bitwise_equal(results, ref):
    """Per-rank ``(x_block, residuals, converged, iterations)`` equality."""
    return len(results) == len(ref) and all(
        np.array_equal(a[0], b[0])
        and list(a[1]) == list(b[1])
        and a[2] == b[2]
        and a[3] == b[3]
        for a, b in zip(results, ref)
    )


@pytest.mark.skipif(not _OK, reason=f"process backend unavailable: {_DETAIL}")
def test_e24_warm_pool_vs_one_shot(benchmark):
    A, b = _problem()
    program = make_solver_program("cg", A, b, criterion=CRIT)

    # -- one-shot: a fresh backend (fresh processes) per job ---------- #
    def one_shot_job():
        return ProcessBackend(timeout=TIMEOUT, start_method=START).run(program, NPROCS)

    ref = one_shot_job().results  # warm the imports/page cache once
    t0 = time.perf_counter()
    for _ in range(JOBS):
        run = one_shot_job()
        assert _bitwise_equal(run.results, ref)
    one_shot_s = time.perf_counter() - t0

    # -- warm pool: one generation serves every job ------------------- #
    with WarmPool(NPROCS, timeout=TIMEOUT, start_method=START) as pool:
        warm_run = pool.run(program, NPROCS)  # generation build excluded
        assert _bitwise_equal(warm_run.results, ref)  # reuse: same bits
        t0 = time.perf_counter()
        for _ in range(JOBS):
            run = pool.run(program, NPROCS)
            assert _bitwise_equal(run.results, ref)
        warm_s = time.perf_counter() - t0
        assert pool.rebuilds == 1  # the whole stream rode one generation

    # -- full service stack over the same pool ------------------------ #
    with SolverService(
        backend=WarmPool(NPROCS, timeout=TIMEOUT, start_method=START),
        target_nprocs=NPROCS
    ) as svc:
        first = svc.solve(
            JobSpec(matrix=A, b=b, nprocs=NPROCS, criterion=CRIT),
            timeout=TIMEOUT,
        )
        assert first.ok
        t0 = time.perf_counter()
        handles = [
            svc.submit(JobSpec(matrix=A, b=b, nprocs=NPROCS, criterion=CRIT))
            for _ in range(JOBS)
        ]
        results = [h.result(timeout=TIMEOUT) for h in handles]
        service_s = time.perf_counter() - t0
        assert all(r.ok for r in results)
        x_ref = np.concatenate([blk[0] for blk in ref])[:N]
        for r in results:
            assert np.array_equal(r.x, x_ref)

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    one_shot_rate = JOBS / one_shot_s
    warm_rate = JOBS / warm_s
    service_rate = JOBS / service_s
    speedup = warm_rate / one_shot_rate
    service_speedup = service_rate / one_shot_rate

    t = Table(
        ["path", "jobs", "elapsed (s)", "solves/sec", "vs one-shot"],
        title=f"E24  warm-pool service throughput (poisson1d n={N}, "
        f"P={NPROCS}, {JOBS} jobs)",
    )
    t.add_row("one-shot process", JOBS, f"{one_shot_s:.3f}",
              f"{one_shot_rate:.1f}", "1.00x")
    t.add_row("warm pool", JOBS, f"{warm_s:.3f}",
              f"{warm_rate:.1f}", f"{speedup:.2f}x")
    t.add_row("service (queue+retry)", JOBS, f"{service_s:.3f}",
              f"{service_rate:.1f}", f"{service_speedup:.2f}x")
    record_table(
        "e24_service", t,
        notes="One-shot pays worker start-up (fresh interpreter + NumPy "
        "import under spawn) + queue/barrier construction + reap per "
        "solve; the warm pool pays it once per generation.  All three "
        "paths return bitwise-identical solutions.",
    )
    record_json("e24", {
        "experiment": "e24_service_throughput",
        "problem": {"matrix": f"poisson1d n={N}", "n": N, "nnz": int(A.nnz)},
        "criterion": {"rtol": CRIT.rtol, "maxiter": CRIT.maxiter},
        "nprocs": NPROCS,
        "jobs": JOBS,
        "start_method": START,
        "one_shot": {
            "elapsed_s": one_shot_s,
            "solves_per_sec": one_shot_rate,
        },
        "warm_pool": {
            "elapsed_s": warm_s,
            "solves_per_sec": warm_rate,
            "speedup_vs_one_shot": speedup,
        },
        "service": {
            "elapsed_s": service_s,
            "solves_per_sec": service_rate,
            "speedup_vs_one_shot": service_speedup,
        },
    })

    # the acceptance floor: a warm pool must at least double throughput
    assert speedup >= 2.0, (
        f"warm pool only {speedup:.2f}x one-shot (floor: 2.0x)"
    )
