"""E20 -- Real-process backend vs the simulated cost model.

Everything up to E19 lives on the modelled multicomputer.  E20 runs the
*same* SPMD CG rank program on real OS processes
(:class:`repro.backend.ProcessBackend`) and cross-validates:

* **numerics** -- the process backend must reproduce the simulator's
  output bit for bit (same binomial-tree reduction order, same NumPy
  arithmetic), for P in {1, 2, 4};
* **time** -- the simulated time under the paper's 1996 cost model is
  compared with measured wall-clock time, and again after
  :func:`repro.backend.calibrate_host` fits ``t_startup``/``t_comm``/
  ``t_flop`` to this host, which is where the modelled-vs-measured ratio
  should approach 1.

Only the parity columns of the table are deterministic; the measured
times (and hence the ratios) vary with the host and its load.
"""

import numpy as np
import pytest

from _harness import record_table
from repro.analysis import Table
from repro.backend import (
    ProcessBackend,
    SimulatedBackend,
    calibrate_host,
    cross_validate,
    process_backend_support,
)
from repro.core import StoppingCriterion
from repro.sparse import poisson2d

_OK, _DETAIL = process_backend_support()
pytestmark = pytest.mark.skipif(
    not _OK, reason=f"process backend unavailable: {_DETAIL}"
)

CRIT = StoppingCriterion(rtol=1e-8, maxiter=400)
SIDE = 8  # poisson2d(8, 8): n = 64, converges in ~26 iterations


def _problem():
    A = poisson2d(SIDE, SIDE)
    b = np.random.default_rng(20).standard_normal(A.nrows)
    return A, b


def test_e20_modelled_vs_measured(benchmark):
    A, b = _problem()
    proc = ProcessBackend(timeout=120.0)

    benchmark(lambda: cross_validate("cg", A, b, nprocs=2, criterion=CRIT,
                                     process=proc))

    t = Table(
        ["P", "solver", "bitwise", "iterations", "modelled (s)",
         "measured (s)", "ratio"],
        title=f"E20  simulated vs real-process CG (poisson2d {SIDE}x{SIDE})",
    )
    for nprocs in (1, 2, 4):
        cv = cross_validate("cg", A, b, nprocs=nprocs, criterion=CRIT,
                            process=proc)
        assert cv.bitwise_equal  # check() already ran; assert for the report
        t.add_row(nprocs, "cg", "yes", cv.process.iterations,
                  f"{cv.modelled['total']:.3e}",
                  f"{cv.measured['total']:.3e}", f"{cv.time_ratio:.2f}")
    cv = cross_validate("pcg", A, b, nprocs=2, criterion=CRIT, process=proc)
    t.add_row(2, "pcg", "yes" if cv.bitwise_equal else "NO",
              cv.process.iterations, f"{cv.modelled['total']:.3e}",
              f"{cv.measured['total']:.3e}", f"{cv.time_ratio:.2f}")
    record_table(
        "e20_real_backend", t,
        notes="Bitwise parity is exact by construction (identical reduction "
        "order on both substrates).  The ratio uses the paper's 1996 cost "
        "model, so it mostly reflects how much faster/slower this host is "
        "than an iPSC/860-class node; see e20b for the calibrated model.",
    )


def test_e20b_calibrated_model(benchmark):
    A, b = _problem()
    proc = ProcessBackend(timeout=120.0)

    cal = benchmark.pedantic(
        lambda: calibrate_host(repeats=5, flop_n=500_000),
        rounds=1, iterations=1,
    )
    sim = SimulatedBackend(cost=cal.as_cost_model())

    t = Table(
        ["P", "modelled 1996 (s)", "modelled host (s)", "measured (s)",
         "host ratio"],
        title=f"E20b  cost model calibrated to this host "
        f"(t_startup={cal.t_startup:.2e}s, t_comm={cal.t_comm:.2e}s/word, "
        f"t_flop={cal.t_flop:.2e}s)",
    )
    for nprocs in (2, 4):
        ref = cross_validate("cg", A, b, nprocs=nprocs, criterion=CRIT,
                             process=proc)
        host = cross_validate("cg", A, b, nprocs=nprocs, criterion=CRIT,
                              simulated=sim, process=proc)
        assert host.bitwise_equal
        t.add_row(nprocs, f"{ref.modelled['total']:.3e}",
                  f"{host.modelled['total']:.3e}",
                  f"{host.measured['total']:.3e}", f"{host.time_ratio:.2f}")
    record_table(
        "e20b_calibrated", t,
        notes="After fitting the three constants with a ping-pong and a "
        "timed DAXPY the simulator predicts this host's wall-clock time to "
        "within a small factor; the residual gap is queue/scheduler "
        "overhead the linear model does not price.",
    )
