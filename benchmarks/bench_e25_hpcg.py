"""E25 -- HPCG-class workload: MG-CG vs Jacobi-CG with phase accounting.

The HPCG subsystem's two quantitative claims, pinned in one run over the
``stencil27`` operator on a 16^3 grid:

* **preconditioner quality** -- geometric multigrid must converge in
  measurably fewer CG iterations than Jacobi (HPCG's whole point: the
  V-cycle wipes out the smooth error modes a diagonal scale cannot see).
  The deterministic iteration ratio ``mg / jacobi`` is the number CI
  guards.
* **phase decomposition** -- an HPCG-style timing split (setup / SpMV /
  MG / dot) per configuration, so the cost of the V-cycle and of the
  superaccumulator dots is visible rather than folded into one total.

The reproducible run is also checked for its defining property here:
its per-iteration scalars are *bitwise identical* across p in {1, 4} --
the cheap end of the full matrix ``tests/test_hpcg_bitwise.py`` pins.

Machine-readable results go to ``BENCH_e25.json``;
``scripts/check_e25_regression.py`` fails CI if the iteration ratio
worsens by more than 20% against the committed baseline or if MG ever
needs as many iterations as Jacobi.
"""

import numpy as np
import pytest

from _harness import record_json, record_table
from repro.analysis import Table
from repro.hpcg import hpcg_solve

SHAPE = 16
NPROCS = 4


def _phases(res):
    return dict(res.extras["hpcg"]["phase_seconds"])


def _run(precond, reproducible=False, nprocs=NPROCS):
    return hpcg_solve(
        SHAPE, nprocs=nprocs, precond=precond, fused=True,
        reproducible=reproducible)


def test_e25_hpcg_phases(benchmark):
    runs = {
        "none": _run("none"),
        "jacobi": _run("jacobi"),
        "mg": _run("mg"),
        "mg+repro": _run("mg", reproducible=True),
    }
    for label, res in runs.items():
        assert res.converged, f"{label} failed to converge"

    mg_iters = runs["mg"].iterations
    jacobi_iters = runs["jacobi"].iterations
    assert mg_iters < jacobi_iters
    iter_ratio = mg_iters / jacobi_iters

    # reproducible scalars: bitwise invariant to rank count
    repro1 = _run("mg", reproducible=True, nprocs=1)
    h4, h1 = runs["mg+repro"].extras["hpcg"], repro1.extras["hpcg"]
    assert h4["alphas"] == h1["alphas"]
    assert h4["betas"] == h1["betas"]
    assert np.array_equal(runs["mg+repro"].x, repro1.x)

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    t = Table(
        ["precond", "iters", "setup (s)", "spmv (s)", "mg (s)", "dot (s)",
         "resid"],
        title=f"E25  HPCG phases (stencil27 {SHAPE}^3, P={NPROCS}, fused)",
    )
    payload_runs = {}
    for label, res in runs.items():
        ph = _phases(res)
        t.add_row(
            label, res.iterations, f"{ph['setup']:.3f}",
            f"{ph['spmv']:.3f}", f"{ph['mg']:.3f}", f"{ph['dot']:.3f}",
            f"{res.history.residual_norms[-1]:.2e}",
        )
        payload_runs[label] = {
            "iterations": res.iterations,
            "converged": bool(res.converged),
            "phase_seconds": ph,
            "final_residual": float(res.history.residual_norms[-1]),
        }
    record_table(
        "e25_hpcg", t,
        notes="MG trades per-iteration V-cycle work for a large drop in "
        "iteration count; the reproducible run pays the superaccumulator "
        "tax in the dot phase and buys bitwise invariance to rank count, "
        "fusion and substrate.",
    )
    record_json("e25", {
        "experiment": "e25_hpcg_phases",
        "problem": {
            "matrix": f"stencil27 {SHAPE}^3",
            "n": SHAPE ** 3,
            "shape": [SHAPE, SHAPE, SHAPE],
        },
        "nprocs": NPROCS,
        "mg_depth": runs["mg"].extras["hpcg"]["mg_depth"],
        "runs": payload_runs,
        "iteration_ratio_mg_vs_jacobi": iter_ratio,
        "reproducible_bitwise_p_invariant": True,
    })
