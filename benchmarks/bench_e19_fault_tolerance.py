"""E19 -- Fault-tolerant CG on the simulated multicomputer.

The paper's target machines (iPSC/860, Paragon, CM-5 class systems) ran
message-passing CG on hundreds of nodes where lost packets and node
failures were operational reality.  E19 measures what fault tolerance
costs on the simulated machine:

* a *loss sweep* -- the SPMD CG under increasing message-drop
  probability, with the stop-and-wait reliable transport retransmitting;
  the overhead is visible as retransmitted words and extra simulated time;
* a *mid-solve crash* -- one rank fail-stops partway through the solve;
  the driver restarts from the latest coordinated checkpoint and pays the
  failure-detection backoff plus replayed iterations;
* a *silent corruption* in the HPF solver -- the sanity audit catches the
  broken ``r = b - A x`` invariant and rolls back.

Every faulty run must converge to the fault-free answer, and every run is
bit-identical when repeated with the same seed.
"""

import numpy as np
import pytest

from _harness import record_table
from repro.analysis import Table
from repro.baselines import spmd_cg
from repro.core import ResilienceConfig, StoppingCriterion, hpf_cg, make_strategy
from repro.machine import FaultPlan, Machine, RankCrash, StateCorruption
from repro.sparse import poisson2d

CRIT = StoppingCriterion(rtol=1e-8, maxiter=500)
NPROCS = 4


def _problem():
    A = poisson2d(8, 8)
    b = np.random.default_rng(19).standard_normal(A.nrows)
    return A, b


def _run_spmd(A, b, plan=None):
    m = Machine(nprocs=NPROCS)
    res = spmd_cg(m, A, b, criterion=CRIT, faults=plan,
                  resilience=ResilienceConfig() if plan is not None else None)
    return m, res


def test_e19_message_loss_sweep(benchmark):
    A, b = _problem()
    m_ref, ref = _run_spmd(A, b)

    benchmark(lambda: _run_spmd(A, b, FaultPlan(seed=19, drop_prob=0.02)))

    t = Table(
        ["loss prob", "iterations", "retransmissions", "retransmitted words",
         "total words", "sim time (s)", "time overhead"],
        title=f"E19  SPMD CG under message loss (poisson2d 8x8, N_P={NPROCS})",
    )
    t.add_row("fault-free", ref.iterations, 0, 0.0,
              m_ref.stats.total_words, ref.machine_elapsed, "1.00x")
    for loss in (0.01, 0.02, 0.05):
        plan = FaultPlan(seed=19, drop_prob=loss)
        m, res = _run_spmd(A, b, plan)
        assert res.converged
        # the recovered answer matches the fault-free one
        assert np.linalg.norm(res.x - ref.x) <= 1e-8 * np.linalg.norm(ref.x)
        rel = res.extras["reliable"]
        assert rel["retransmissions"] > 0
        # retransmissions are charged: strictly more words on the wire
        assert m.stats.total_words > m_ref.stats.total_words
        t.add_row(f"{loss:.0%}", res.iterations, rel["retransmissions"],
                  rel["retransmitted_words"], m.stats.total_words,
                  res.machine_elapsed,
                  f"{res.machine_elapsed / ref.machine_elapsed:.2f}x")
    record_table(
        "e19_loss_sweep", t,
        notes="Stop-and-wait retransmission masks loss completely -- same "
        "iteration count and same answer -- at a simulated-time cost that "
        "grows with the loss rate (each drop costs a timeout + resend).",
    )


def test_e19_mid_solve_crash(benchmark):
    A, b = _problem()
    m_ref, ref = _run_spmd(A, b)
    crash_at = 0.4 * ref.machine_elapsed

    def run_crash():
        plan = FaultPlan(crashes=[RankCrash(rank=2, at_time=crash_at)])
        return _run_spmd(A, b, plan)

    m, res = benchmark(run_crash)
    assert res.converged
    assert np.linalg.norm(res.x - ref.x) <= 1e-8 * np.linalg.norm(ref.x)
    ov = res.extras["resilience"]
    assert ov["crash_restarts"] == 1
    assert ov["extra_iterations"] > 0

    # determinism: the same plan replays bit-identically
    m2, res2 = run_crash()
    assert res2.x.tobytes() == res.x.tobytes()
    assert m2.elapsed() == m.elapsed()
    assert m2.stats.total_words == m.stats.total_words

    t = Table(
        ["scenario", "iterations", "extra iters", "crash restarts",
         "total words", "sim time (s)", "time overhead"],
        title=f"E19b  rank 2 fail-stop at 40% of the fault-free solve",
    )
    t.add_row("fault-free", ref.iterations, 0, 0,
              m_ref.stats.total_words, ref.machine_elapsed, "1.00x")
    t.add_row("crash + restart", res.iterations, ov["extra_iterations"],
              ov["crash_restarts"], m.stats.total_words, res.machine_elapsed,
              f"{res.machine_elapsed / ref.machine_elapsed:.2f}x")
    record_table(
        "e19b_crash", t,
        notes="The crashed solve resumes from the last coordinated "
        "checkpoint: the extra iterations are the replayed tail, and the "
        "time overhead is dominated by the exponential-backoff failure "
        "detection before the restart.",
    )


def test_e19_silent_corruption_hpf(benchmark):
    A, b = _problem()
    m_ref = Machine(nprocs=NPROCS)
    ref = hpf_cg(make_strategy("csr_forall_aligned", m_ref, A), b,
                 criterion=CRIT)

    def run_corrupted():
        plan = FaultPlan(
            seed=19,
            state_corruptions=[StateCorruption(iteration=10, target="x")],
        )
        m = Machine(nprocs=NPROCS)
        res = hpf_cg(make_strategy("csr_forall_aligned", m, A), b,
                     criterion=CRIT, faults=plan)
        return m, res

    m, res = benchmark(run_corrupted)
    assert res.converged
    assert np.linalg.norm(res.x - ref.x) <= 1e-8 * np.linalg.norm(ref.x)
    ov = res.extras["resilience"]
    assert ov["corruptions_detected"] == 1
    assert ov["restarts"] == 1

    t = Table(
        ["scenario", "iterations", "audits", "rollbacks",
         "sim time (s)", "time overhead"],
        title="E19c  silent corruption of x at iteration 10 (HPF CG)",
    )
    t.add_row("fault-free", ref.iterations, 0, 0, ref.machine_elapsed, "1.00x")
    t.add_row("corrupted + rollback", res.iterations, ov["audits"],
              ov["restarts"], res.machine_elapsed,
              f"{res.machine_elapsed / ref.machine_elapsed:.2f}x")
    record_table(
        "e19c_corruption", t,
        notes="The periodic sanity audit recomputes ||b - A x|| and catches "
        "the broken recurrence; rollback to the last checkpoint replays a "
        "handful of iterations and the final answer is genuine.",
    )
