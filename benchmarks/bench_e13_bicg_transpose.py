"""E13 -- Section 2.1: the BiCG family's costs under a row-optimised layout.

'BiCG does however require two matrix-vector multiply operations one of
which uses the matrix transpose A^T, and therefore any storage distribution
optimisations made on the basis of row access vs. column access will be
negated with the use of BiCG. ... The Stabilized BiCG algorithm also uses
two matrix vector operations but avoids using A^T ... It does however
involve four inner products.'
"""

import numpy as np
import pytest

from _harness import record_table
from repro.analysis import Table
from repro.core import StoppingCriterion, hpf_bicg, hpf_bicgstab, hpf_cg, hpf_cgs
from repro.core.matvec import CsrForall
from repro.machine import Machine
from repro.sparse import convection_diffusion_1d, poisson2d, rhs_for_solution


def _run(solver, A, b, crit):
    machine = Machine(nprocs=8)
    strat = CsrForall(machine, A, aligned=True)
    res = solver(strat, b, criterion=crit)
    return res, machine


def test_e13_transpose_negates_row_optimisation(benchmark):
    A = poisson2d(12, 12)
    b = np.ones(A.nrows)
    crit = StoppingCriterion(rtol=1e-8, maxiter=400)

    benchmark(_run, hpf_cg, A, b, crit)

    res_cg, m_cg = _run(hpf_cg, A, b, crit)
    res_bi, m_bi = _run(hpf_bicg, A, b, crit)

    cg_per_iter = res_cg.comm["words"] / res_cg.iterations
    bi_per_iter = res_bi.comm["words"] / res_bi.iterations

    t = Table(
        ["solver", "iterations", "comm words/iter", "merge traffic",
         "dots/iter"],
        title="E13  CG vs BiCG under the row-aligned CSR layout, N_P=8",
    )
    cg_rs = m_cg.stats.by_op().get("reduce_scatter", {"words": 0})["words"]
    bi_rs = m_bi.stats.by_op().get("reduce_scatter", {"words": 0})["words"]
    t.add_row("CG", res_cg.iterations, cg_per_iter, cg_rs, 2)
    t.add_row("BiCG (needs A^T)", res_bi.iterations, bi_per_iter, bi_rs, 2)
    assert bi_per_iter > cg_per_iter
    assert bi_rs > cg_rs  # the transpose product's private merge
    record_table(
        "e13_bicg", t,
        notes="The A^T product runs the layout 'the wrong way': each apply "
        "pays a full private-copy merge the forward product avoids.",
    )


def test_e13_family_on_nonsymmetric(benchmark):
    from repro.sparse import nonsymmetric_diag_dominant

    A = nonsymmetric_diag_dominant(128, seed=7)
    xt = np.sin(np.arange(128.0))
    b = rhs_for_solution(A, xt)
    crit = StoppingCriterion(rtol=1e-10, maxiter=800)

    benchmark(_run, hpf_bicgstab, A, b, crit)

    t = Table(
        ["solver", "A^T needed", "matvecs/iter", "dots/iter", "iterations",
         "comm words", "sim time (s)", "max err"],
        title="E13b the nonsymmetric family, diag-dominant nonsymmetric n=128",
    )
    specs = [
        ("BiCG", hpf_bicg, "yes", 2),
        ("CGS", hpf_cgs, "no", 2),
        ("BiCGSTAB", hpf_bicgstab, "no", 2),
    ]
    results = {}
    for name, solver, needs_t, mv in specs:
        res, machine = _run(solver, A, b, crit)
        results[name] = (res, machine)
        dots = machine.stats.by_tag().get("dot", {"count": 0})["count"]
        t.add_row(
            name, needs_t, mv,
            round(dots / max(1, res.iterations), 1),
            res.iterations, res.comm["words"], res.machine_elapsed,
            float(np.abs(res.x - xt).max()),
        )
        assert res.converged
        assert np.allclose(res.x, xt, atol=1e-4)
    # BiCGSTAB uses more inner products per iteration than CG's 2
    bicgstab_res, bicgstab_m = results["BiCGSTAB"]
    dots_per_iter = (
        bicgstab_m.stats.by_tag()["dot"]["count"] / bicgstab_res.iterations
    )
    assert dots_per_iter >= 4
    record_table(
        "e13b_family", t,
        notes="CGS/BiCGSTAB keep the row optimisation (no A^T); BiCGSTAB "
        "pays 4+ inner products per iteration, as Section 2.1 says.",
    )


def test_e13_cgs_irregular_convergence(benchmark):
    """CGS 'can have some undesirable numerical properties such as actual
    divergence or irregular rates of convergence' -- measured as residual
    overshoot (max residual / initial residual) on a convection-dominated
    system where BiCGSTAB stays monotone."""
    A = convection_diffusion_1d(64, peclet=0.6)
    b = np.ones(64)
    crit = StoppingCriterion(rtol=1e-10, maxiter=600)

    res_cgs, _ = _run(hpf_cgs, A, b, crit)
    res_stab, _ = _run(hpf_bicgstab, A, b, crit)

    def overshoot(history):
        h = np.asarray(history)
        return float(h.max() / h[0])

    benchmark(overshoot, res_cgs.history.residual_norms)

    o_cgs = overshoot(res_cgs.history.residual_norms)
    o_stab = overshoot(res_stab.history.residual_norms)
    t = Table(
        ["solver", "converged", "iterations", "residual overshoot (max/initial)"],
        title="E13c CGS's irregular convergence vs BiCGSTAB "
              "(convection-diffusion, peclet=0.6)",
    )
    t.add_row("CGS", res_cgs.converged, res_cgs.iterations, o_cgs)
    t.add_row("BiCGSTAB", res_stab.converged, res_stab.iterations, o_stab)
    assert o_cgs > 10 * o_stab
    record_table(
        "e13c_cgs_overshoot", t,
        notes="CGS's squared polynomials amplify the residual by orders of "
        "magnitude before (if ever) converging -- the instability the paper "
        "cites as the reason not to discuss it further.",
    )
