"""E11 -- Section 5.2.2: irregular matrices and the balanced partitioner.

'In some types of problems, the structure of the sparse matrix is
completely irregular ... neither the HPF regular block distributions nor
the above proposed uniform distributions will allow a good load balance.
... REDISTRIBUTE smA USING CG_BALANCED_PARTITIONER_1'

Measures nnz imbalance and simulated CG time on a power-law matrix under
uniform-atom vs nnz-balanced partitions, plus the LPT and edge-cut
alternatives.
"""

import numpy as np
import pytest

from _harness import record_table
from repro.analysis import Table, load_report
from repro.core import StoppingCriterion, hpf_cg
from repro.core.matvec import CscPrivateMerge
from repro.extensions import (
    assignment_imbalance,
    cg_balanced_partitioner_1,
    edge_cut_partitioner,
    imbalance,
    lpt_partitioner,
)
from repro.machine import Machine
from repro.sparse import irregular_powerlaw, poisson2d


def test_e11_partitioner_imbalance(benchmark):
    A = irregular_powerlaw(512, seed=21)
    weights = np.diff(A.to_csc().indptr).astype(float)

    benchmark(cg_balanced_partitioner_1, weights, 8)

    t = Table(
        ["partitioner", "contiguous", "nnz imbalance (max/mean)"],
        title=f"E11  partitioning a power-law matrix, n=512, N_P=8",
    )
    k = -(-weights.size // 8)
    uniform = np.minimum(np.arange(9) * k, weights.size)
    balanced = cg_balanced_partitioner_1(weights, 8)
    lpt = lpt_partitioner(weights, 8)
    ec = edge_cut_partitioner(A, 8, seed=0)
    ec_imb = assignment_imbalance(weights, ec, 8)
    rows = [
        ("uniform atom BLOCK", "yes", imbalance(weights, uniform)),
        ("CG_BALANCED_PARTITIONER_1", "yes", imbalance(weights, balanced)),
        ("LPT greedy", "no", assignment_imbalance(weights, lpt, 8)),
        ("Kernighan-Lin edge-cut", "no", ec_imb),
    ]
    for r in rows:
        t.add_row(*r)
    assert rows[1][2] <= rows[0][2]
    assert rows[2][2] <= rows[1][2] + 1e-9
    record_table(
        "e11_partitioners", t,
        notes="The balanced contiguous partitioner closes most of the gap; "
        "LPT (non-contiguous) is tightest but needs an O(n) map.",
    )


def test_e11_effect_on_cg(benchmark):
    A = irregular_powerlaw(384, seed=22)
    b = np.ones(A.nrows)
    crit = StoppingCriterion(rtol=1e-8, maxiter=400)

    def run(balanced):
        m = Machine(nprocs=8)
        strat = CscPrivateMerge(m, A, balanced=balanced)
        res = hpf_cg(strat, b, criterion=crit)
        return res, strat

    benchmark(run, True)

    res_uni, strat_uni = run(False)
    res_bal, strat_bal = run(True)
    rep_uni = load_report(strat_uni.per_rank_nnz())
    rep_bal = load_report(strat_bal.per_rank_nnz())

    t = Table(
        ["layout", "nnz imbalance", "max nnz/rank", "iterations",
         "sim time (s)"],
        title="E11b CG on the irregular matrix, N_P=8",
    )
    t.add_row("uniform columns", rep_uni.imbalance, rep_uni.maximum,
              res_uni.iterations, res_uni.machine_elapsed)
    t.add_row("CG_BALANCED_PARTITIONER_1", rep_bal.imbalance, rep_bal.maximum,
              res_bal.iterations, res_bal.machine_elapsed)
    assert rep_bal.imbalance <= rep_uni.imbalance
    assert res_bal.machine_elapsed <= res_uni.machine_elapsed * 1.05
    assert np.allclose(res_uni.x, res_bal.x, atol=1e-6)
    record_table(
        "e11b_cg_effect", t,
        notes="Same numerics, better makespan: the partitioner only moves "
        "work, never changes the algorithm.",
    )


def test_e11_uniform_is_fine_for_regular_matrices(benchmark):
    """Control: on a regular matrix the uniform distribution already
    balances -- the partitioner matters only for irregular structure."""
    A = poisson2d(16, 16)

    def imbalances():
        weights = np.diff(A.to_csc().indptr).astype(float)
        k = -(-weights.size // 8)
        uniform = np.minimum(np.arange(9) * k, weights.size)
        balanced = cg_balanced_partitioner_1(weights, 8)
        return imbalance(weights, uniform), imbalance(weights, balanced)

    uni, bal = benchmark(imbalances)
    t = Table(
        ["layout", "nnz imbalance"],
        title="E11c control: regular matrix (poisson2d 16x16), N_P=8",
    )
    t.add_row("uniform atom BLOCK", uni)
    t.add_row("CG_BALANCED_PARTITIONER_1", bal)
    assert uni < 1.1
    record_table(
        "e11c_regular_control", t,
        notes="'The uniform or regular sparse block distribution can be used "
        "in cases where each sparse matrix row (or column) is known to have "
        "approximately the same number of elements.'",
    )
