"""E15 -- Sections 5.1/6: storage trade-offs and HPF vs message passing.

'Using two-dimensional arrays ... eliminates the allocation/deallocation
costs of vectors at each loop entry/exit.  However, keeping large vectors
in each processor's memory permanently is costly especially if both n and
N_P are very big and this kind of loops are executed just a few times.'

'The advantages are the potential for faster computation ... and
additional code portability and ease of maintenance by comparison with
message-passing implementations.  Disadvantages ... are additional
temporary data-storage requirements of parallel algorithms.'
"""

import numpy as np
import pytest

from _harness import record_table
from repro.analysis import Table, private_storage_words
from repro.baselines import spmd_cg
from repro.core import StoppingCriterion, hpf_cg
from repro.core.matvec import ColBlockDenseTwoDimTemp, CscPrivateMerge, CsrForall
from repro.machine import Machine
from repro.sparse import poisson2d


def test_e15_hpf_vs_message_passing(benchmark):
    A = poisson2d(10, 10)
    b = np.ones(A.nrows)
    crit = StoppingCriterion(rtol=1e-8)

    def run_both():
        m_hpf = Machine(nprocs=8)
        res_hpf = hpf_cg(CsrForall(m_hpf, A, aligned=True), b, criterion=crit)
        m_mp = Machine(nprocs=8)
        res_mp = spmd_cg(m_mp, A, b, criterion=crit)
        return res_hpf, res_mp

    res_hpf, res_mp = benchmark(run_both)

    t = Table(
        ["implementation", "iterations", "messages", "comm words",
         "sim time (s)"],
        title="E15  HPF runtime vs explicit message passing (CG, n=100, N_P=8)",
    )
    t.add_row("HPF (csr_forall_aligned)", res_hpf.iterations,
              res_hpf.comm["messages"], res_hpf.comm["words"],
              res_hpf.machine_elapsed)
    t.add_row("SPMD message passing", res_mp.iterations,
              res_mp.comm["messages"], res_mp.comm["words"],
              res_mp.machine_elapsed)
    assert abs(res_hpf.iterations - res_mp.iterations) <= 1
    assert np.allclose(res_hpf.x, res_mp.x, atol=1e-8)
    ratio = res_hpf.comm["words"] / res_mp.comm["words"]
    assert 0.4 < ratio < 2.5
    record_table(
        "e15_hpf_vs_mp", t,
        notes="Same numerics and comparable communication: the HPF "
        "formulation costs little over hand-written message passing, which "
        "is the paper's portability argument.",
    )


def test_e15_storage_accounting(benchmark):
    """Temporary storage: private per-loop vs permanent 2-D temp vs none."""
    A = poisson2d(12, 12)
    n = A.nrows
    niter = 10

    def measure(strategy_cls, applies):
        m = Machine(nprocs=8)
        strat = strategy_cls(m, A)
        p = strat.make_vector("p", np.linspace(0, 1, n))
        q = strat.make_vector("q")
        base = m.stats.storage_words_per_rank.max()
        for _ in range(applies):
            strat.apply(p, q)
        return m.stats.storage_words_per_rank.max() - base

    benchmark(measure, CscPrivateMerge, 2)

    private_total = measure(CscPrivateMerge, niter)
    twodim_total = measure(ColBlockDenseTwoDimTemp, niter)
    csr_total = measure(lambda m, a: CsrForall(m, a, aligned=True), niter)

    t = Table(
        ["strategy", f"temp words/rank over {niter} applies", "pattern"],
        title=f"E15b temporary storage per rank, n={n}, N_P=8",
    )
    t.add_row("CSC private (alloc per loop)", private_total,
              "n per apply, freed at merge")
    t.add_row("2-D temp (permanent)", twodim_total,
              "n once, held forever")
    t.add_row("CSR row-aligned (no temp)", csr_total, "none")
    assert private_total == pytest.approx(niter * n)
    assert twodim_total == 0.0  # charged once at construction, not per apply
    assert csr_total == 0.0
    record_table(
        "e15b_storage", t,
        notes="The paper's trade-off, measured: repeated private allocation "
        "costs n words per loop entry; the permanent temp pays n once but "
        "holds it for the program lifetime.",
    )


def test_e15_private_storage_formula(benchmark):
    benchmark(private_storage_words, 10**6, 128)
    t = Table(
        ["n", "N_P", "private storage (words)", "fraction of matrix (5n nnz)"],
        title="E15c PRIVATE storage vs problem size",
    )
    for n, p in [(10**4, 16), (10**5, 64), (10**6, 128)]:
        words = private_storage_words(n, p)
        t.add_row(n, p, words, words / (2 * 5 * n))
    record_table(
        "e15c_formula", t,
        notes="'potentially unnecessary storage requirements, particularly "
        "if n >> N_P' -- the bill grows as n * N_P.",
    )
