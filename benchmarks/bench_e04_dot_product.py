"""E4 -- Section 4: inner products.

'The inner products take O(n/N_P) time for the local phase, but the
communication or merge phase changes according to the network architecture
type.  For example on a hypercube architecture it is done in
t_start_up * log N_P time.'

Three comparisons:
1. simulated DOT_PRODUCT time vs the paper's local+merge model over N_P;
2. the merge phase measured on all four topologies;
3. cross-validation: the *event-level* SPMD allreduce (built from
   point-to-point messages) against the closed-form collective model.
"""

import math

import numpy as np
import pytest

from _harness import record_table
from repro.analysis import Table, inner_product_merge_time, inner_product_time
from repro.hpf import DistributedArray
from repro.machine import Machine, allreduce_cost, run_spmd, spmd


def _simulated_dot(n, nprocs, topology):
    machine = Machine(nprocs=nprocs, topology=topology)
    x = DistributedArray(machine, n, fill=1.0)
    t0 = machine.elapsed()
    value = x.dot(x)
    assert value == pytest.approx(float(n))
    return machine.elapsed() - t0, machine


def test_e04_dot_vs_model_over_np(benchmark):
    n = 65536

    benchmark(_simulated_dot, n, 8, "hypercube")

    t = Table(
        ["N_P", "paper model (s)", "simulated (s)", "ratio"],
        title=f"E4  DOT_PRODUCT: local O(n/N_P) + t_s*log(N_P) merge, n={n}",
    )
    for p in (1, 2, 4, 8, 16, 32):
        sim, machine = _simulated_dot(n, p, "hypercube")
        model = inner_product_time(n, p, machine.cost)
        t.add_row(p, model, sim, sim / model if model else 1.0)
        # same order: within 2.5x (the simulator also charges word
        # transfer + combine inside the allreduce)
        if p > 1:
            assert sim == pytest.approx(model, rel=1.5)
    record_table(
        "e04_dot_model", t,
        notes="The merge term grows as log N_P exactly as the paper states; "
        "the simulator adds the (tiny) word-transfer and combine costs.",
    )


def test_e04_merge_phase_by_topology(benchmark):
    """'the merge phase changes according to the network architecture type'"""
    benchmark(_simulated_dot, 4096, 8, "ring")

    t = Table(
        ["topology", "merge model (s)", "simulated dot (s)"],
        title="E4b merge phase by topology, n=4096, N_P=8",
    )
    sims = {}
    for topo in ("hypercube", "complete", "mesh2d", "ring"):
        sim, machine = _simulated_dot(4096, 8, topo)
        sims[topo] = sim
        t.add_row(topo, inner_product_merge_time(8, machine.cost), sim)
    # the ring's linear merge must exceed the hypercube's logarithmic one
    assert sims["ring"] > sims["hypercube"]
    record_table("e04b_merge_topology", t)


def test_e04_event_level_cross_validation(benchmark):
    """Allreduce built from Send/Recv vs the closed-form collective cost."""

    def spmd_allreduce(p):
        machine = Machine(nprocs=p, topology="hypercube")

        def prog(rank, size):
            out = yield from spmd.allreduce_sum(rank, size, 1.0)
            return out

        results = run_spmd(machine, prog)
        assert all(r == p for r in results)
        return machine.elapsed()

    benchmark(spmd_allreduce, 8)

    t = Table(
        ["N_P", "closed-form (s)", "event-simulated (s)", "ratio"],
        title="E4c allreduce: emergent point-to-point cost vs model",
    )
    for p in (2, 4, 8, 16):
        machine = Machine(nprocs=p, topology="hypercube")
        model = allreduce_cost(machine.topology, machine.cost, 1.0).time
        emergent = spmd_allreduce(p)
        ratio = emergent / model
        t.add_row(p, model, emergent, ratio)
        # reduce+bcast is exactly two log-P sweeps vs recursive doubling's one
        assert ratio == pytest.approx(2.0, rel=0.6)
    record_table(
        "e04c_event_validation", t,
        notes="The event simulator reproduces the O(t_s log N_P) shape; the "
        "2x factor is reduce+broadcast vs recursive doubling.",
    )
