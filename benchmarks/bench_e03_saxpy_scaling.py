"""E3 -- Section 4: 'SAXPY operations can be performed in O(n/N_P) time on
any architecture.'

Sweeps n and N_P, comparing the simulated SAXPY time against the paper's
O(n/N_P) model on every topology, and verifies zero communication.
"""

import numpy as np
import pytest

from _harness import record_table
from repro.analysis import Table, saxpy_time
from repro.hpf import DistributedArray
from repro.machine import Machine


def _simulated_saxpy_time(n, nprocs, topology):
    machine = Machine(nprocs=nprocs, topology=topology)
    x = DistributedArray(machine, n, fill=1.0)
    y = DistributedArray(machine, n, fill=2.0)
    t0 = machine.elapsed()
    y.axpy(3.0, x)
    return machine.elapsed() - t0, machine.stats.total_messages


def test_e03_saxpy_scaling(benchmark):
    n = 65536

    benchmark(_simulated_saxpy_time, n, 8, "hypercube")

    t = Table(
        ["N_P", "model O(n/N_P) (s)", "simulated (s)", "speedup", "messages"],
        title=f"E3  SAXPY scaling, n={n} (hypercube)",
    )
    base = None
    for p in (1, 2, 4, 8, 16, 32):
        machine = Machine(nprocs=p)
        sim, msgs = _simulated_saxpy_time(n, p, "hypercube")
        model = saxpy_time(n, p, machine.cost)
        if base is None:
            base = sim
        t.add_row(p, model, sim, base / sim, msgs)
        assert msgs == 0  # "on any architecture": no communication at all
        assert sim == pytest.approx(model, rel=1e-9)
    record_table(
        "e03_saxpy", t,
        notes="Simulated time equals the O(n/N_P) model exactly and carries "
        "zero messages, on every machine size.",
    )


def test_e03_any_architecture(benchmark):
    """'on any architecture': identical cost on all four topologies."""
    n = 16384

    benchmark(_simulated_saxpy_time, n, 8, "ring")

    t = Table(
        ["topology", "simulated (s)", "messages"],
        title=f"E3b SAXPY is topology-independent, n={n}, N_P=8",
    )
    times = []
    for topo in ("hypercube", "ring", "mesh2d", "complete"):
        sim, msgs = _simulated_saxpy_time(n, 8, topo)
        times.append(sim)
        t.add_row(topo, sim, msgs)
    assert len(set(times)) == 1
    record_table("e03b_saxpy_topologies", t)
