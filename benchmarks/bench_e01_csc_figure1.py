"""E1 -- Figure 1: Compressed Sparse Column representation.

Reproduces the worked 6x6 example: the exact ``(a, row, col)`` arrays the
figure draws, the storage comparison of Section 3, and benchmarks the CSC
construction and mat-vec kernels.
"""

import numpy as np

from _harness import record_table
from repro.analysis import Table
from repro.sparse import figure1_matrix, poisson2d, storage_words


def test_e01_figure1_arrays(benchmark):
    """The CSC trio of Figure 1, entry for entry."""
    csr = figure1_matrix()

    csc = benchmark(csr.to_csc)

    a, row, col = csc.fortran_arrays()
    expected_a = [11, 21, 31, 51, 12, 22, 42, 62, 33, 24, 44, 15, 55, 26, 66]
    expected_row = [1, 2, 3, 5, 1, 2, 4, 6, 3, 2, 4, 1, 5, 2, 6]
    expected_col = [1, 5, 9, 10, 12, 14, 16]
    assert a.tolist() == [float(v) for v in expected_a]
    assert row.tolist() == expected_row
    assert col.tolist() == expected_col

    t = Table(["array", "paper (Figure 1)", "reproduced", "match"],
              title="E1  Figure 1: CSC representation of the 6x6 example")
    t.add_row("a", " ".join(str(v) for v in expected_a),
              " ".join(str(int(v)) for v in a), "yes")
    t.add_row("row", " ".join(str(v) for v in expected_row),
              " ".join(str(v) for v in row), "yes")
    t.add_row("col", " ".join(str(v) for v in expected_col),
              " ".join(str(v) for v in col), "yes")
    record_table("e01_figure1", t)


def test_e01_storage_saving(benchmark):
    """Section 3: 'Special storage schemes not only save storage but also
    yield computational savings' -- storage words, dense vs CSC/CSR."""
    cases = {
        "figure1 (6x6, nz=15)": figure1_matrix(),
        "poisson2d 16x16": poisson2d(16, 16),
        "poisson2d 32x32": poisson2d(32, 32),
    }

    def convert_all():
        return {name: m.to_csc() for name, m in cases.items()}

    benchmark(convert_all)

    t = Table(
        ["matrix", "n", "nnz", "dense words", "CSC words", "saving x"],
        title="E1b Section 3: sparse vs dense storage",
    )
    for name, m in cases.items():
        dense = storage_words(m.to_dense())
        sparse = storage_words(m.to_csc())
        t.add_row(name, m.nrows, m.nnz, dense, sparse, dense / sparse)
    record_table(
        "e01b_storage", t,
        notes="Paper: sparse schemes save storage and avoid multiplications "
        "with zero; the saving grows with n (the 6x6 toy is break-even).",
    )


def test_e01_matvec_skips_zeros(benchmark):
    """Computational saving: CSC mat-vec does O(nnz) work, dense does O(n^2)."""
    m = poisson2d(32, 32)
    csc = m.to_csc()
    dense = m.toarray()
    x = np.linspace(0.0, 1.0, m.nrows)

    result = benchmark(csc.matvec, x)
    assert np.allclose(result, dense @ x)

    t = Table(
        ["kernel", "operations", "vs dense"],
        title="E1c mat-vec operation counts (poisson2d 32x32)",
    )
    t.add_row("dense", 2 * m.nrows * m.nrows, 1.0)
    t.add_row("CSC", 2 * m.nnz, (m.nrows * m.nrows) / m.nnz)
    record_table("e01c_matvec_ops", t)
