"""E6 -- Scenario 2 / Figure 4: column-wise (*, BLOCK) dense mat-vec.

'Therefore the matrix-vector operation can not be performed in parallel and
the following serial code is used ... The communication time for Scenario 2
is the same as the communication time for the global broadcast used in
Scenario 1.  Hence, it is not possible to reduce the communication time if
the matrix is partitioned into regular stripes either in a row-wise or
column-wise fashion.'
"""

import numpy as np
import pytest

from _harness import record_table
from repro.analysis import Table, scenario1_broadcast_time, scenario2_comm_time
from repro.core.matvec import ColBlockDenseSerial, ColBlockDenseTwoDimTemp, RowBlockDense
from repro.machine import Machine
from repro.sparse import poisson2d


def _apply(strategy_cls, n_grid, nprocs):
    A = poisson2d(n_grid, n_grid)
    machine = Machine(nprocs=nprocs)
    strat = strategy_cls(machine, A)
    pv = np.linspace(0, 1, A.nrows)
    p = strat.make_vector("p", pv)
    q = strat.make_vector("q")
    strat.apply(p, q)
    assert np.allclose(q.to_global(), A.matvec(pv))
    return machine


def test_e06_three_variants(benchmark):
    n_grid, nprocs = 12, 4
    benchmark(_apply, ColBlockDenseTwoDimTemp, n_grid, nprocs)

    t = Table(
        ["variant", "simulated total (s)", "comm time (s)", "max flops/rank"],
        title=f"E6  Scenario 2 variants, n={n_grid * n_grid}, N_P={nprocs}",
    )
    rows = {}
    for name, cls in [
        ("scenario1 rowwise (ref)", RowBlockDense),
        ("scenario2 serial", ColBlockDenseSerial),
        ("scenario2 + 2-D temp (SUM)", ColBlockDenseTwoDimTemp),
    ]:
        m = _apply(cls, n_grid, nprocs)
        rows[name] = m
        t.add_row(name, m.elapsed(), m.stats.comm_time,
                  m.stats.flops_per_rank.max())
    # the serial variant loses to both parallel variants
    assert rows["scenario2 serial"].elapsed() > rows["scenario1 rowwise (ref)"].elapsed()
    assert rows["scenario2 serial"].elapsed() > rows["scenario2 + 2-D temp (SUM)"].elapsed()
    record_table(
        "e06_scenario2", t,
        notes="The serial column loop is the loser Figure 4 describes; the "
        "2-D temporary + SUM merge restores parallel execution.",
    )


def test_e06_comm_equality_claim(benchmark):
    """The paper's equality: scenario-2 comm == scenario-1 broadcast."""
    benchmark(scenario2_comm_time, 4096, 8, Machine(nprocs=8).cost)

    t = Table(
        ["n", "N_P", "scenario1 model (s)", "scenario2 model (s)",
         "sim s1 comm (s)", "sim s2(2dtemp) comm (s)"],
        title="E6b 'not possible to reduce the communication time'",
    )
    for n_grid, p in [(8, 4), (12, 4), (16, 8)]:
        n = n_grid * n_grid
        cost = Machine(nprocs=p).cost
        s1_model = scenario1_broadcast_time(n, p, cost)
        s2_model = scenario2_comm_time(n, p, cost)
        assert s1_model == s2_model
        m1 = _apply(RowBlockDense, n_grid, p)
        m2 = _apply(ColBlockDenseTwoDimTemp, n_grid, p)
        t.add_row(n, p, s1_model, s2_model, m1.stats.comm_time, m2.stats.comm_time)
        # simulated: same order of magnitude both ways (allgather vs
        # reduce-scatter move the same O(n) volume)
        assert m1.stats.comm_time == pytest.approx(m2.stats.comm_time, rel=2.5)
    record_table(
        "e06b_comm_equality", t,
        notes="Row-wise pays an allgather of p, column-wise pays the SUM "
        "merge of q -- the same O(n) volume, as the paper concludes.",
    )
