"""E23 -- Single-reduction (fused) CG vs classic two-reduction CG.

The paper's cost analysis makes the per-iteration inner-product
reductions the latency bottleneck of distributed CG; the fused
Chronopoulos--Gear recurrence (``solve --fused``) packs all of them into
**one** batched allreduce per iteration (``spmd.allreduce_vec``).  E23
pins the claim three ways:

* **counts** -- a tag-counted scheduler run shows exactly ``iters + 1``
  allreduce trees for fused vs ``2 + 2 iters`` for classic, identical
  iteration counts, and the same solution;
* **model** -- the measured simulated-time saving per iteration matches
  :func:`repro.analysis.fused_cg_saving_per_iteration`
  (``2 ceil(log2 P) t_startup - 2 (n/P) t_flop``) to well under a
  percent;
* **reality** -- on the real-process backend the fused variant stays
  bitwise cross-backend deterministic, and with a calibrated cost model
  the modelled saving is compared against measured wall clock.

Machine-readable results go to ``BENCH_e23.json`` at the repo root (the
repo's first committed benchmark trajectory); CI re-runs the simulator
part and fails if the fused-vs-classic allreduce-count ratio regresses
by more than 20% against the committed baseline
(``scripts/check_e23_regression.py``).
"""

import numpy as np
import pytest

from _harness import record_json, record_table
from repro.analysis import (
    Table,
    classic_cg_iteration_time,
    fused_cg_iteration_time,
    fused_cg_saving_per_iteration,
)
from repro.backend import (
    ProcessBackend,
    SimulatedBackend,
    TagCountingProgram,
    allreduce_trees,
    calibrate_host,
    cross_validate,
    process_backend_support,
)
from repro.backend.programs import CGRankProgram
from repro.core import StoppingCriterion
from repro.machine.costmodel import CostModel
from repro.sparse import poisson2d

CRIT = StoppingCriterion(rtol=1e-8, maxiter=400)
SIDE = 16  # poisson2d(16, 16): n = 256
_OK, _DETAIL = process_backend_support()


def _problem():
    A = poisson2d(SIDE, SIDE)
    b = np.random.default_rng(23).standard_normal(A.nrows)
    return A, b


def _counted_run(backend, A, b, nprocs, fused):
    prog = TagCountingProgram(CGRankProgram(A, b, criterion=CRIT, fused=fused))
    run = backend.run(prog, nprocs)
    x = np.concatenate([r["result"][0] for r in run.results])
    iters = run.results[0]["result"][3]
    converged = run.results[0]["result"][2]
    trees = allreduce_trees(run.results, nprocs)
    return x, iters, converged, trees, run.elapsed


def test_e23_fused_vs_classic_simulated(benchmark):
    A, b = _problem()
    be = SimulatedBackend()
    cost = CostModel()
    n, nnz = A.nrows, A.nnz

    benchmark(lambda: _counted_run(be, A, b, 4, fused=True))

    t = Table(
        ["P", "iters", "allreduce classic", "allreduce fused", "ratio",
         "sim classic (s)", "sim fused (s)", "saving/iter meas",
         "saving/iter model"],
        title=f"E23  single-reduction CG vs classic (poisson2d "
        f"{SIDE}x{SIDE}, n={n})",
    )
    entries = {}
    for nprocs in (2, 4, 8):
        xc, ic, cc, trees_c, el_c = _counted_run(be, A, b, nprocs, False)
        xf, if_, cf, trees_f, el_f = _counted_run(be, A, b, nprocs, True)
        assert cc and cf and ic == if_
        # the headline invariant: exactly one allreduce per iteration
        # (plus the single setup reduction b.b rides along in), vs two
        # per iteration plus two at setup for classic
        assert trees_f == if_ + 1, (trees_f, if_)
        assert trees_c == 2 + 2 * ic, (trees_c, ic)
        # same Krylov iterates: the recurrences agree far below rtol
        assert float(np.max(np.abs(xc - xf))) < 1e-10
        meas_saving = (el_c - el_f) / ic
        model_saving = fused_cg_saving_per_iteration(n, nprocs, cost)
        assert meas_saving == pytest.approx(model_saving, rel=0.05)
        # absolute per-iteration closed forms stay within a few percent
        # (the small residue is setup amortisation)
        assert el_c / ic == pytest.approx(
            classic_cg_iteration_time(n, nnz, nprocs, cost), rel=0.05)
        assert el_f / if_ == pytest.approx(
            fused_cg_iteration_time(n, nnz, nprocs, cost), rel=0.05)
        t.add_row(nprocs, ic, int(trees_c), int(trees_f),
                  f"{trees_f / trees_c:.3f}", f"{el_c:.3e}", f"{el_f:.3e}",
                  f"{meas_saving:.3e}", f"{model_saving:.3e}")
        entries[str(nprocs)] = {
            "iterations": int(ic),
            "allreduce_classic": int(trees_c),
            "allreduce_fused": int(trees_f),
            "allreduce_ratio": trees_f / trees_c,
            "sim_elapsed_classic_s": el_c,
            "sim_elapsed_fused_s": el_f,
            "saving_per_iter_measured_s": meas_saving,
            "saving_per_iter_modelled_s": model_saving,
        }
    record_table(
        "e23_fused_cg", t,
        notes="Fused = Chronopoulos-Gear recurrence: gamma = r.r and "
        "delta = (A r).r travel in ONE packed allreduce_vec per iteration "
        "(b.b rides along on the setup trip).  The modelled saving "
        "2 L t_startup - 2 (n/P) t_flop matches the simulator to <1%.",
    )
    record_json("e23", {
        "experiment": "e23_fused_cg",
        "problem": {"matrix": f"poisson2d {SIDE}x{SIDE}", "n": n, "nnz": nnz},
        "criterion": {"rtol": CRIT.rtol, "maxiter": CRIT.maxiter},
        "simulated": entries,
    })


@pytest.mark.skipif(not _OK, reason=f"process backend unavailable: {_DETAIL}")
def test_e23b_fused_process_calibrated(benchmark):
    import json

    from _harness import REPO_ROOT

    A, b = _problem()
    proc = ProcessBackend(timeout=120.0)

    cal = benchmark.pedantic(
        lambda: calibrate_host(repeats=5, flop_n=500_000),
        rounds=1, iterations=1,
    )
    sim = SimulatedBackend(cost=cal.as_cost_model())

    t = Table(
        ["P", "variant", "bitwise", "iters", "modelled host (s)",
         "measured (s)", "ratio"],
        title=f"E23b  fused CG on real processes, host-calibrated model "
        f"(t_startup={cal.t_startup:.2e}s, t_comm={cal.t_comm:.2e}s/word, "
        f"t_flop={cal.t_flop:.2e}s)",
    )
    process_entries = {}
    for nprocs in (2, 4):
        rows = {}
        for fused in (False, True):
            cv = cross_validate("cg", A, b, nprocs=nprocs, criterion=CRIT,
                                simulated=sim, process=proc, fused=fused)
            assert cv.bitwise_equal
            label = "fused" if fused else "classic"
            t.add_row(nprocs, label, "yes", cv.process.iterations,
                      f"{cv.modelled['total']:.3e}",
                      f"{cv.measured['total']:.3e}", f"{cv.time_ratio:.2f}")
            rows[label] = {
                "iterations": int(cv.process.iterations),
                "modelled_host_s": cv.modelled["total"],
                "measured_s": cv.measured["total"],
                "ratio": cv.time_ratio,
            }
        process_entries[str(nprocs)] = rows
    record_table(
        "e23b_fused_process", t,
        notes="Both variants stay bitwise-deterministic across substrates. "
        "Measured rows vary with host load; the committed JSON is a "
        "trajectory sample, and CI compares only the deterministic "
        "allreduce-count ratio.",
    )
    # fold the measured section into the JSON the simulator test wrote
    path = REPO_ROOT / "BENCH_e23.json"
    payload = json.loads(path.read_text(encoding="utf-8"))
    payload["process_calibrated"] = {
        "t_startup": cal.t_startup,
        "t_comm": cal.t_comm,
        "t_flop": cal.t_flop,
        "runs": process_entries,
    }
    record_json("e23", payload)
