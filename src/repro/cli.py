"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Package, paper and machine-model summary.
``solve``
    Run one distributed CG solve and print the result plus the
    communication bill (options: matrix family, size, processors,
    topology, strategy, solver).  ``--backend process`` runs the SPMD
    rank program on real OS processes with measured wall-clock time
    instead of the simulated cost model.
``strategies``
    List the available mat-vec strategies with their paper references.
``gantt``
    Trace one mat-vec under a chosen strategy and print the ASCII Gantt
    chart (``--json PATH`` additionally writes a Chrome trace-event file
    for chrome://tracing / Perfetto).
``calibrate``
    Measure this host's ``t_startup``/``t_comm``/``t_flop`` with a
    process-backend ping-pong and a timed DAXPY, and print the fitted
    cost model.
``chaos``
    Run seeded randomized fault schedules through the fault-tolerant
    distributed CG on one or both backends and print the per-seed
    report; exits non-zero if any run breaks the chaos contract
    (converge to reference, or fail with a classified typed error).
    ``--stragglers`` adds seeded slowdown faults with deadline detection;
    ``--policy shrink|rebalance`` selects degraded-mode recovery (online
    REDISTRIBUTE onto the survivors / capacity-aware re-partitioning).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]

STRATEGIES = {
    "dense_rowblock": "Scenario 1 / Figure 3: A(BLOCK,*), broadcast of p",
    "dense_colblock_serial": "Scenario 2 / Figure 4: serial column loop",
    "dense_colblock_2dtemp": "Scenario 2 + permanent 2-D temp + SUM merge",
    "csr_forall": "Figure 2: CSR FORALL (naive col/a layout)",
    "csr_forall_aligned": "Figure 2 + Section 5.2.1 whole-row atoms",
    "csc_serial": "Section 5.1 baseline: serialised CSC scatter",
    "csc_private": "Section 5.1: ON PROCESSOR + PRIVATE/MERGE",
    "csc_private_balanced": "Section 5.2.2: CG_BALANCED_PARTITIONER_1",
    "csr_halo": "HPF-2 SHADOW halo exchange (ablation)",
}

MATRICES = {
    "poisson2d": "2-D five-point Poisson (CFD pressure solve)",
    "poisson1d": "1-D Poisson chain",
    "truss": "random-stiffness truss (structural analysis)",
    "circuit": "resistor-network conductance (circuit simulation)",
    "nas_cg": "NAS-CG-style random sparse SPD",
    "powerlaw": "irregular power-law Laplacian (Section 5.2.2)",
}

SOLVERS = ("cg", "pcg", "bicg", "cgs", "bicgstab", "gmres")


def _make_matrix(family: str, n: int):
    from . import (
        circuit_nodal,
        irregular_powerlaw,
        nas_cg_style,
        poisson1d,
        poisson2d,
        structural_truss,
    )

    if family == "poisson2d":
        side = max(2, int(round(np.sqrt(n))))
        return poisson2d(side, side)
    if family == "poisson1d":
        return poisson1d(n)
    if family == "truss":
        return structural_truss(n, seed=0)
    if family == "circuit":
        return circuit_nodal(n, seed=0)
    if family == "nas_cg":
        return nas_cg_style(n, seed=0)
    if family == "powerlaw":
        return irregular_powerlaw(n, seed=0)
    raise ValueError(f"unknown matrix family {family!r}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'HPF and Possible Extensions to support "
            "Conjugate Gradient Algorithms' (Dincer et al., 1995/96)"
        ),
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("info", help="package / paper / machine-model summary")
    sub.add_parser("strategies", help="list mat-vec strategies")

    solve = sub.add_parser("solve", help="run one distributed solve")
    solve.add_argument("--matrix", choices=sorted(MATRICES), default="poisson2d")
    solve.add_argument("--n", type=int, default=256, help="problem size")
    solve.add_argument("-p", "--nprocs", type=int, default=8)
    solve.add_argument(
        "--topology", choices=("hypercube", "ring", "mesh2d", "complete"),
        default="hypercube",
    )
    solve.add_argument("--strategy", choices=sorted(STRATEGIES),
                       default="csr_forall_aligned")
    solve.add_argument("--solver", choices=SOLVERS, default="cg")
    solve.add_argument(
        "--fused", action="store_true",
        help="single-reduction (communication-avoiding) recurrence: all "
             "per-iteration inner products in one batched allreduce "
             "(cg/pcg, either backend)",
    )
    solve.add_argument(
        "--scenario", choices=("stencil27",), default=None,
        help="HPCG-class workload: 3-D 27-point stencil on a subcube "
             "process grid with halo exchange (overrides --matrix/"
             "--solver/--strategy; use --shape/--precond/--reproducible)",
    )
    solve.add_argument(
        "--shape", default="8", metavar="NX[xNYxNZ]",
        help="stencil27 grid dimensions, e.g. '16' (cube) or '16x16x8'",
    )
    solve.add_argument(
        "--precond", choices=("none", "jacobi", "mg"), default="mg",
        help="stencil27 preconditioner: geometric multigrid V-cycle "
             "(default), local Jacobi, or none",
    )
    solve.add_argument(
        "--reproducible", action="store_true",
        help="bitwise-reproducible reductions: inner products ride a "
             "fixed-point superaccumulator, making the solution invariant "
             "to rank count, topology, backend and fusion (backend-"
             "portable solvers: cg/pcg/--scenario stencil27)",
    )
    solve.add_argument("--rtol", type=float, default=1e-8)
    solve.add_argument("--maxiter", type=int, default=None)
    solve.add_argument(
        "--backend", choices=("simulated", "process"), default="simulated",
        help="simulated = event simulator with the paper's cost model "
             "(default); process = real OS processes, measured wall time "
             "(cg/pcg only)",
    )
    solve.add_argument(
        "--timeout", type=float, default=None,
        help="hard wall-clock bound for --backend process (seconds; "
             "default $REPRO_RUN_DEADLINE, else 120)",
    )
    solve.add_argument(
        "--heartbeat-interval", type=float, default=None,
        help="process-backend worker liveness cadence (seconds; default "
             "$REPRO_HEARTBEAT_INTERVAL, else 0.5)",
    )
    solve.add_argument(
        "--policy", choices=("respawn", "shrink", "rebalance"),
        default="respawn",
        help="degraded-mode recovery policy (--backend process, cg only)",
    )
    solve.add_argument(
        "--straggler-deadline", type=float, default=None,
        help="arm straggler detection: flag a rank whose heartbeat stays "
             "stale this many seconds (--backend process, cg only)",
    )
    solve.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="stencil27 only: run the fault-tolerant program and journal "
             "coordinated checkpoints durably to DIR; re-running with the "
             "same DIR after a crash (even SIGKILL of this driver) resumes "
             "from the newest complete checkpoint",
    )

    gantt = sub.add_parser("gantt", help="ASCII Gantt of one mat-vec")
    gantt.add_argument("--matrix", choices=sorted(MATRICES), default="poisson2d")
    gantt.add_argument("--n", type=int, default=256)
    gantt.add_argument("--nprocs", type=int, default=4)
    gantt.add_argument("--strategy", choices=sorted(STRATEGIES),
                       default="csc_private")
    gantt.add_argument("--width", type=int, default=72)
    gantt.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the trace as Chrome trace-event JSON to PATH",
    )

    cal = sub.add_parser(
        "calibrate",
        help="fit t_startup/t_comm/t_flop to this host (process backend)",
    )
    cal.add_argument("--repeats", type=int, default=7,
                     help="ping-pong repetitions per message size")
    cal.add_argument("--max-words", type=int, default=16384,
                     help="largest ping-pong message (8-byte words)")
    cal.add_argument("--flop-n", type=int, default=1_000_000,
                     help="DAXPY length for the t_flop measurement")
    cal.add_argument("--json", metavar="PATH", default=None,
                     help="write the fitted constants as JSON to PATH")

    chaos = sub.add_parser(
        "chaos",
        help="seeded randomized fault schedules through fault-tolerant CG",
    )
    chaos.add_argument(
        "--seeds", default="0:8", metavar="SPEC",
        help="comma list and/or start:stop ranges, e.g. '0:8' or '1,5,9'",
    )
    chaos.add_argument(
        "--backends", default="simulated,process",
        help="comma list drawn from {simulated, process}",
    )
    chaos.add_argument("-p", "--nprocs", type=int, default=4)
    chaos.add_argument("--n", type=int, default=48, help="problem size")
    chaos.add_argument(
        "--scenario", choices=("poisson1d", "stencil27"), default="poisson1d",
        help="workload under chaos: 1-D Poisson CG (default) or the "
             "HPCG-class 27-point stencil solve with ABFT checks armed "
             "(use --precond/--shape; same seeded fault draw either way)",
    )
    chaos.add_argument(
        "--precond", choices=("none", "jacobi", "mg"), default="mg",
        help="stencil27 preconditioner (ignored for poisson1d)",
    )
    chaos.add_argument(
        "--shape", default=None, metavar="NX[xNYxNZ]",
        help="stencil27 grid dimensions (default 6x6x6; overrides --n)",
    )
    chaos.add_argument(
        "--timeout", type=float, default=60.0,
        help="per-run wall-clock bound for the process backend (seconds)",
    )
    chaos.add_argument(
        "--no-crash", action="store_true",
        help="disable fail-stop crash injection (message/state faults only)",
    )
    chaos.add_argument(
        "--policy", choices=("respawn", "shrink", "rebalance"),
        default="respawn",
        help="recovery policy when a rank is lost or flagged as straggler",
    )
    chaos.add_argument(
        "--stragglers", action="store_true",
        help="also draw straggler (slowdown) faults and arm deadline "
             "detection on both backends",
    )
    chaos.add_argument(
        "--straggler-deadline", type=float, default=1.0,
        help="process-backend heartbeat staleness deadline in seconds "
             "(the simulated deadline is fixed in virtual time)",
    )
    chaos.add_argument(
        "--reproducible", action="store_true",
        help="sharpen the contract: solves run over superaccumulator "
             "reductions and an OK outcome (converged or degraded) must "
             "match the reference bitwise, not merely to rtol",
    )
    chaos.add_argument(
        "--report", metavar="PATH", default=None,
        help="also write the per-seed report table to PATH",
    )
    chaos.add_argument(
        "--json", metavar="PATH", default=None, dest="json_path",
        help="write structured per-seed outcomes (outcome, classification, "
             "attempts, injected faults) as JSON to PATH ('-' for stdout)",
    )

    serve = sub.add_parser(
        "serve",
        help="run a multi-tenant job stream through the persistent "
             "solver service (warm pool, retries, chaos soak)",
    )
    serve.add_argument("--jobs", type=int, default=32,
                       help="number of jobs in the stream")
    serve.add_argument("--seed", type=int, default=0,
                       help="soak seed (job fault draws are derived from it)")
    serve.add_argument("--backend", choices=("process", "simulated"),
                       default="process")
    serve.add_argument("-p", "--nprocs", type=int, default=4)
    serve.add_argument("--n", type=int, default=48, help="problem size")
    serve.add_argument("--tenants", type=int, default=4,
                       help="number of tenants sharing the queue")
    serve.add_argument("--policy", choices=("respawn", "shrink", "rebalance"),
                       default="shrink",
                       help="mid-stream recovery policy")
    serve.add_argument("--crash-prob", type=float, default=0.3,
                       help="per-job probability of an injected crash")
    serve.add_argument("--straggler-prob", type=float, default=0.2,
                       help="per-job probability of an injected straggler")
    serve.add_argument("--deadline", type=float, default=60.0,
                       help="per-job wall-clock SLA on the process pool "
                            "(seconds)")
    serve.add_argument(
        "--journal-dir", metavar="DIR", default=None,
        help="write-ahead job journal directory; accepted jobs survive a "
             "dead driver (restart with the same DIR replays them) and "
             "SIGTERM/SIGINT triggers a graceful drain that parks queued "
             "jobs there instead of dropping them",
    )
    serve.add_argument(
        "--json", metavar="PATH", default=None, dest="json_path",
        help="write the full soak report as JSON to PATH ('-' for stdout)",
    )

    submit = sub.add_parser(
        "submit",
        help="submit one solve to an ephemeral service instance and "
             "print its result with full attempt telemetry",
    )
    submit.add_argument("--matrix", choices=sorted(MATRICES),
                        default="poisson2d")
    submit.add_argument("--n", type=int, default=256,
                        help="problem size (rows)")
    submit.add_argument("-p", "--nprocs", type=int, default=4)
    submit.add_argument("--backend", choices=("process", "simulated"),
                        default="process")
    submit.add_argument("--solver", default="cg")
    submit.add_argument("--rtol", type=float, default=1e-8)
    submit.add_argument("--maxiter", type=int, default=None)
    submit.add_argument("--tenant", default="cli")
    submit.add_argument("--deadline", type=float, default=60.0,
                        help="per-attempt wall-clock SLA (seconds, "
                             "process backend)")
    submit.add_argument("--retries", type=int, default=3,
                        help="max service-level attempts")
    submit.add_argument("--policy",
                        choices=("respawn", "shrink", "rebalance"),
                        default="respawn")
    submit.add_argument("--fused", action="store_true",
                        help="single-reduction CG recurrence")
    submit.add_argument(
        "--scenario", choices=("cg", "stencil27"), default="cg",
        help="job kind: row-block solve of --matrix (default) or the "
             "HPCG 27-point stencil built from --shape",
    )
    submit.add_argument(
        "--shape", default="8", metavar="NX[xNYxNZ]",
        help="stencil27 grid dimensions, e.g. '8' (cube) or '16x16x8'",
    )
    submit.add_argument(
        "--precond", choices=("none", "jacobi", "mg"), default="mg",
        help="stencil27 preconditioner",
    )
    submit.add_argument(
        "--reproducible", action="store_true",
        help="bitwise-reproducible reductions (stencil27)",
    )
    submit.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="journal checkpoints durably to DIR; resubmitting after a "
             "service crash resumes from the newest complete checkpoint",
    )
    submit.add_argument(
        "--journal-dir", metavar="DIR", default=None,
        help="write-ahead job journal directory for the ephemeral "
             "service; with --idempotency-key, a resubmission returns "
             "the recorded result instead of re-running",
    )
    submit.add_argument(
        "--idempotency-key", metavar="KEY", default=None,
        help="exactly-once key for the job (requires --journal-dir to "
             "persist across invocations)",
    )
    submit.add_argument(
        "--json", metavar="PATH", default=None, dest="json_path",
        help="write the job result (with attempt telemetry) as JSON to "
             "PATH ('-' for stdout)",
    )
    return parser


def _cmd_info() -> int:
    from . import __version__
    from .machine import CostModel

    cost = CostModel()
    print("repro", __version__)
    print("paper : Dincer, Hawick, Choudhary, Fox -- 'High Performance")
    print("        Fortran and Possible Extensions to support Conjugate")
    print("        Gradient Algorithms', NPAC SCCS-703 / HPDC 1996")
    print(f"model : t_startup={cost.t_startup:.1e}s  t_comm={cost.t_comm:.1e}s/word"
          f"  t_flop={cost.t_flop:.1e}s")
    print("docs  : README.md, DESIGN.md, EXPERIMENTS.md")
    print("bench : pytest benchmarks/ --benchmark-only   (E1..E17)")
    return 0


def _cmd_strategies() -> int:
    width = max(len(k) for k in STRATEGIES)
    for name in sorted(STRATEGIES):
        print(f"{name:<{width}}  {STRATEGIES[name]}")
    return 0


def _cmd_solve_process(args: argparse.Namespace) -> int:
    from . import StoppingCriterion, backend_solve, process_backend_support
    from .backend import ProcessBackend, default_start_method
    from .backend.solve import SOLVER_PROGRAMS

    if args.solver not in SOLVER_PROGRAMS:
        print(f"error: --backend process supports solvers "
              f"{sorted(set(SOLVER_PROGRAMS))}, not {args.solver!r}",
              file=sys.stderr)
        return 2
    degraded = args.policy != "respawn" or args.straggler_deadline is not None
    if degraded and args.solver != "cg":
        print("error: --policy/--straggler-deadline run the fault-tolerant "
              "program and support --solver cg only", file=sys.stderr)
        return 2
    ok, detail = process_backend_support()
    if not ok:
        print(f"error: process backend unavailable on this platform: {detail}",
              file=sys.stderr)
        return 2

    A = _make_matrix(args.matrix, args.n)
    rng = np.random.default_rng(0)
    b = rng.standard_normal(A.nrows)
    crit = StoppingCriterion(rtol=args.rtol, maxiter=args.maxiter)
    # only pass what the user set: absent kwargs fall back to the
    # $REPRO_RUN_DEADLINE / $REPRO_HEARTBEAT_INTERVAL environment knobs
    be_kwargs = {}
    if args.timeout is not None:
        be_kwargs["timeout"] = args.timeout
    if args.heartbeat_interval is not None:
        be_kwargs["heartbeat_interval"] = args.heartbeat_interval
    if args.straggler_deadline is not None:
        be_kwargs["straggler_deadline"] = args.straggler_deadline
    backend = ProcessBackend(**be_kwargs)
    result = backend_solve(args.solver, A, b, backend=backend,
                           nprocs=args.nprocs, criterion=crit,
                           policy=args.policy,
                           straggler_deadline=args.straggler_deadline,
                           fused=args.fused,
                           reproducible=args.reproducible)

    timings = result.extras["timings"]
    print(f"matrix    : {args.matrix} n={A.nrows} nnz={A.nnz}")
    print(f"machine   : {args.nprocs} OS processes "
          f"({backend.start_method or default_start_method()} start)")
    marks = "".join(
        m for m, on in ((" [fused]", args.fused),
                        (" [reproducible]", args.reproducible)) if on
    )
    print(f"solver    : {result.solver} / {result.strategy}{marks}")
    print(f"converged : {result.converged} in {result.iterations} iterations")
    print(f"residual  : {result.final_residual:.3e}")
    print(f"wall time : {result.machine_elapsed * 1e3:.3f} ms (measured)")
    print(f"  compute : {timings['compute'] * 1e3:.3f} ms")
    print(f"  comm    : {timings['comm'] * 1e3:.3f} ms")
    print(f"comm      : {result.comm['messages']} messages, "
          f"{result.comm['words']:.0f} words")
    recovery = result.extras.get("recovery")
    if recovery:
        print(f"recovery  : policy={recovery['policy']} "
              f"attempts={recovery['attempts']} "
              f"final ranks={recovery['final_nprocs']}")
        for shrink in recovery.get("shrinks", []):
            print(f"  {shrink['summary']}")
    return 0 if result.converged else 1


def _parse_shape(spec: str):
    """Parse ``--shape``: '16' -> (16,16,16); '16x16x8' -> (16,16,8)."""
    parts = [int(p) for p in spec.lower().split("x") if p]
    if len(parts) == 1:
        return (parts[0],) * 3
    if len(parts) == 3:
        return tuple(parts)
    raise ValueError(f"--shape wants NX or NXxNYxNZ, got {spec!r}")


def _cmd_solve_hpcg(args: argparse.Namespace) -> int:
    from . import StoppingCriterion
    from .backend import SimulatedBackend, process_backend_support
    from .hpcg import hpcg_solve

    try:
        shape = _parse_shape(args.shape)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.backend == "process":
        ok, detail = process_backend_support()
        if not ok:
            print(f"error: process backend unavailable: {detail}",
                  file=sys.stderr)
            return 2
        backend = "process"
        machine_desc = f"{args.nprocs} OS processes"
    else:
        backend = SimulatedBackend(topology=args.topology)
        machine_desc = f"{args.nprocs} procs, {args.topology} (simulated)"
    crit = StoppingCriterion(rtol=args.rtol, maxiter=args.maxiter)
    extra_kwargs = {}
    if getattr(args, "checkpoint_dir", None):
        from .backend.store import DurableCheckpointStore

        extra_kwargs["store"] = DurableCheckpointStore(args.checkpoint_dir)
    result = hpcg_solve(
        shape, backend=backend, nprocs=args.nprocs, precond=args.precond,
        fused=args.fused, reproducible=args.reproducible, criterion=crit,
        **extra_kwargs,
    )
    hp = result.extras["hpcg"]
    nx, ny, nz = shape
    marks = "".join(
        m for m, on in ((" [fused]", args.fused),
                        (" [reproducible]", args.reproducible)) if on
    )
    print(f"scenario  : stencil27 {nx}x{ny}x{nz} "
          f"(n={result.x.size}, 27-point)")
    print(f"machine   : {machine_desc}, process grid "
          f"{'x'.join(str(g) for g in hp['grid'])}")
    print(f"solver    : hpcg cg / precond={hp['precond']}"
          f"{' depth=' + str(hp['mg_depth']) if hp['precond'] == 'mg' else ''}"
          f"{marks}")
    print(f"converged : {result.converged} in {result.iterations} iterations")
    print(f"residual  : {result.final_residual:.3e}")
    label = "wall time" if args.backend == "process" else "sim time "
    print(f"{label} : {result.machine_elapsed * 1e3:.3f} ms")
    print(f"comm      : {result.comm['messages']} messages, "
          f"{result.comm['words']:.0f} words")
    halo = hp["halo"]
    print(f"halo      : {halo['neighbors']} neighbors "
          f"({halo['faces']}f/{halo['edges']}e/{halo['corners']}c), "
          f"{halo['words_per_exchange']} words per exchange")
    ph = hp["phase_seconds"]
    print("phases    : " + "  ".join(
        f"{k}={ph[k] * 1e3:.2f}ms" for k in ("setup", "spmv", "mg", "dot")
    ))
    resil = result.extras.get("resilience")
    if resil:
        restarted = resil.get("restarted_from")
        print(f"resilience: checkpoints={resil.get('checkpoints_published', 0)} "
              f"audits={resil.get('audits', 0)} "
              f"rollbacks={resil.get('rollbacks', 0)}"
              + (f" resumed from iteration {restarted}"
                 if restarted is not None else ""))
    return 0 if result.converged else 1


def _cmd_solve(args: argparse.Namespace) -> int:
    if args.checkpoint_dir and args.scenario != "stencil27":
        print("error: --checkpoint-dir needs --scenario stencil27",
              file=sys.stderr)
        return 2
    if args.scenario == "stencil27":
        return _cmd_solve_hpcg(args)
    if args.backend == "process":
        return _cmd_solve_process(args)
    if (args.policy != "respawn" or args.straggler_deadline is not None
            or args.heartbeat_interval is not None):
        print("error: --policy/--straggler-deadline/--heartbeat-interval "
              "need --backend process; for the simulated substrate use "
              "'repro chaos --stragglers --policy shrink'", file=sys.stderr)
        return 2

    from . import (
        JacobiPreconditioner,
        Machine,
        StoppingCriterion,
        hpf_bicg,
        hpf_bicgstab,
        hpf_cg,
        hpf_cgs,
        hpf_gmres,
        hpf_pcg,
        make_strategy,
    )

    A = _make_matrix(args.matrix, args.n)
    rng = np.random.default_rng(0)
    b = rng.standard_normal(A.nrows)

    if args.fused or args.reproducible:
        # the fused and reproducible modes live in the backend-portable
        # SPMD rank programs; run them on the simulated substrate
        from . import StoppingCriterion, backend_solve
        from .backend import SimulatedBackend
        from .backend.solve import SOLVER_PROGRAMS

        flags = "/".join(
            f for f, on in (("--fused", args.fused),
                            ("--reproducible", args.reproducible)) if on
        )
        if args.solver not in SOLVER_PROGRAMS:
            print(f"error: {flags} supports solvers "
                  f"{sorted(set(SOLVER_PROGRAMS))}, not {args.solver!r}",
                  file=sys.stderr)
            return 2
        crit = StoppingCriterion(rtol=args.rtol, maxiter=args.maxiter)
        backend = SimulatedBackend(topology=args.topology)
        result = backend_solve(args.solver, A, b, backend=backend,
                               nprocs=args.nprocs, criterion=crit,
                               fused=args.fused,
                               reproducible=args.reproducible)
        marks = "".join(
            m for m, on in ((" [fused]", args.fused),
                            (" [reproducible]", args.reproducible)) if on
        )
        print(f"matrix    : {args.matrix} n={A.nrows} nnz={A.nnz}")
        print(f"machine   : {args.nprocs} procs, {args.topology} (simulated)")
        print(f"solver    : {result.solver} / {result.strategy}{marks}")
        print(f"converged : {result.converged} in {result.iterations} "
              f"iterations")
        print(f"residual  : {result.final_residual:.3e}")
        print(f"sim time  : {result.machine_elapsed * 1e3:.3f} ms")
        print(f"comm      : {result.comm['messages']} messages, "
              f"{result.comm['words']:.0f} words")
        return 0 if result.converged else 1

    machine = Machine(nprocs=args.nprocs, topology=args.topology)
    strategy = make_strategy(args.strategy, machine, A)
    crit = StoppingCriterion(rtol=args.rtol, maxiter=args.maxiter)

    if args.solver == "cg":
        result = hpf_cg(strategy, b, criterion=crit)
    elif args.solver == "pcg":
        result = hpf_pcg(strategy, b, JacobiPreconditioner(A), criterion=crit)
    elif args.solver == "bicg":
        result = hpf_bicg(strategy, b, criterion=crit)
    elif args.solver == "cgs":
        result = hpf_cgs(strategy, b, criterion=crit)
    elif args.solver == "bicgstab":
        result = hpf_bicgstab(strategy, b, criterion=crit)
    else:
        result = hpf_gmres(strategy, b, criterion=crit)

    print(f"matrix    : {args.matrix} n={A.nrows} nnz={A.nnz}")
    print(f"machine   : {args.nprocs} procs, {args.topology}")
    print(f"solver    : {result.solver} / {result.strategy}")
    print(f"converged : {result.converged} in {result.iterations} iterations")
    print(f"residual  : {result.final_residual:.3e}")
    print(f"sim time  : {result.machine_elapsed * 1e3:.3f} ms")
    print(f"comm      : {result.comm['messages']} messages, "
          f"{result.comm['words']:.0f} words")
    for op, agg in sorted(machine.stats.by_op().items()):
        print(f"  {op:<15} {agg['words']:>12.0f} words  {agg['time'] * 1e3:8.3f} ms")
    return 0 if result.converged else 1


def _cmd_gantt(args: argparse.Namespace) -> int:
    from . import Machine, make_strategy
    from .machine import Tracer

    A = _make_matrix(args.matrix, args.n)
    machine = Machine(nprocs=args.nprocs)
    tracer = Tracer.attach(machine)
    strategy = make_strategy(args.strategy, machine, A)
    p = strategy.make_vector("p", np.linspace(0, 1, A.nrows))
    q = strategy.make_vector("q")
    strategy.apply(p, q)
    print(f"{args.strategy} on {args.matrix} n={A.nrows}, N_P={args.nprocs}")
    print(tracer.ascii_gantt(width=args.width))
    util = tracer.utilization()
    print(f"utilization: {np.round(util, 2).tolist()}")
    if args.json:
        path = tracer.write_chrome_trace(args.json, process_name=args.strategy)
        print(f"chrome trace: {path} (load in chrome://tracing or Perfetto)")
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from .backend import calibrate_host, process_backend_support
    from .machine import CostModel

    ok, detail = process_backend_support()
    if not ok:
        print(f"error: process backend unavailable on this platform: {detail}",
              file=sys.stderr)
        return 2

    sizes = tuple(m for m in (1, 64, 256, 1024, 4096, 16384)
                  if m <= args.max_words)
    cal = calibrate_host(sizes=sizes, repeats=args.repeats, flop_n=args.flop_n)
    default = CostModel()
    print("ping-pong samples (best of "
          f"{args.repeats}, one-way):")
    for words, sec in cal.message_samples:
        print(f"  {words:>7d} words  {sec * 1e6:10.2f} us")
    print("fitted host constants vs simulator defaults:")
    print(f"  t_startup : {cal.t_startup:.3e} s   (default {default.t_startup:.3e})")
    print(f"  t_comm    : {cal.t_comm:.3e} s/word (default {default.t_comm:.3e})")
    print(f"  t_flop    : {cal.t_flop:.3e} s      (default {default.t_flop:.3e})")
    print(f"  flop rate : {cal.flop_rate / 1e9:.2f} Gflop/s")
    if args.json:
        import json
        from pathlib import Path

        path = Path(args.json)
        path.write_text(json.dumps(cal.as_dict(), indent=2) + "\n")
        print(f"wrote {path}")
    return 0


def _parse_seed_spec(spec: str) -> List[int]:
    seeds: List[int] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if ":" in part:
            lo, hi = part.split(":", 1)
            seeds.extend(range(int(lo), int(hi)))
        else:
            seeds.append(int(part))
    return seeds


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .backend import process_backend_support
    from .backend.chaos import CHAOS_BACKENDS, chaos_sweep, format_report
    from .backend.process import crash_injection_support

    seeds = _parse_seed_spec(args.seeds)
    if not seeds:
        print("error: --seeds selected no seeds", file=sys.stderr)
        return 2
    backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    for b in backends:
        if b not in CHAOS_BACKENDS:
            print(f"error: unknown backend {b!r}; choose from "
                  f"{CHAOS_BACKENDS}", file=sys.stderr)
            return 2
    if "process" in backends:
        ok, detail = process_backend_support()
        if ok and not args.no_crash:
            ok, detail = crash_injection_support()
        if not ok:
            print(f"note: skipping process backend: {detail}", file=sys.stderr)
            backends = [b for b in backends if b != "process"]
    if not backends:
        print("error: no usable backend remains", file=sys.stderr)
        return 2

    shape = None
    if args.shape is not None:
        try:
            shape = _parse_shape(args.shape)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.scenario == "stencil27" and args.policy == "rebalance":
        print("error: --scenario stencil27 supports --policy respawn|shrink "
              "(rebalancing would break the subcube halo)", file=sys.stderr)
        return 2

    outcomes = chaos_sweep(
        seeds, backends=backends, nprocs=args.nprocs, n=args.n,
        timeout=args.timeout, allow_crash=not args.no_crash,
        policy=args.policy, stragglers=args.stragglers,
        straggler_deadline=args.straggler_deadline,
        reproducible=args.reproducible,
        scenario=args.scenario, precond=args.precond, shape=shape,
    )
    report = format_report(outcomes)
    out = _human_stream(args)
    print(report, file=out)
    if args.report:
        from pathlib import Path

        Path(args.report).write_text(report + "\n")
        print(f"wrote {args.report}", file=out)
    if args.json_path:
        payload = {
            "config": {
                "seeds": seeds,
                "backends": backends,
                "nprocs": args.nprocs,
                "n": args.n,
                "policy": args.policy,
                "allow_crash": not args.no_crash,
                "stragglers": args.stragglers,
                "straggler_deadline": args.straggler_deadline,
                "scenario": args.scenario,
                "precond": (
                    args.precond if args.scenario == "stencil27" else ""
                ),
                "shape": list(shape) if shape else None,
            },
            "contract_held": all(o.ok for o in outcomes),
            "outcomes": [o.to_dict() for o in outcomes],
        }
        _emit_json(payload, args.json_path)
    return 0 if all(o.ok for o in outcomes) else 1


def _human_stream(args: argparse.Namespace):
    """Stdout normally; stderr when ``--json -`` claims stdout for JSON.

    Keeps ``repro <cmd> --json - | jq`` parseable while the table stays
    visible on the terminal.
    """
    return sys.stderr if args.json_path == "-" else sys.stdout


def _emit_json(payload, path: str) -> None:
    import json

    text = json.dumps(payload, indent=2, sort_keys=True)
    if path == "-":
        print(text)
    else:
        from pathlib import Path

        Path(path).write_text(text + "\n")
        print(f"wrote {path}")


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .backend import process_backend_support
    from .backend.process import crash_injection_support
    from .service import soak_run

    if args.backend == "process":
        ok, detail = process_backend_support()
        if ok:
            ok, detail = crash_injection_support()
        if not ok:
            print(f"error: process service unavailable: {detail}",
                  file=sys.stderr)
            return 2

    # Graceful drain on SIGTERM/SIGINT: the handler only sets an event
    # (it must not touch the queue lock the interrupted main thread may
    # hold); a watcher thread does the actual drain.  Queued jobs park
    # in the journal (replayed by the next `repro serve --journal-dir`),
    # the in-flight job finishes, and we exit 0.
    wake = threading.Event()
    state: dict = {"service": None, "signalled": False, "drain": None}

    def _on_signal(signum, frame):  # noqa: ARG001 - signal signature
        state["signalled"] = True
        wake.set()

    def _watch():
        wake.wait()
        svc = state["service"]
        if state["signalled"] and svc is not None:
            state["drain"] = svc.graceful_drain(timeout=4 * args.deadline)

    watcher = threading.Thread(
        target=_watch, name="repro-drain-watcher", daemon=True
    )
    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, _on_signal)
        except ValueError:  # pragma: no cover - non-main thread
            pass
    watcher.start()
    try:
        report = soak_run(
            jobs=args.jobs, seed=args.seed, backend=args.backend,
            nprocs=args.nprocs, n=args.n, tenants=args.tenants,
            crash_prob=args.crash_prob, straggler_prob=args.straggler_prob,
            policy=args.policy, deadline=args.deadline,
            journal_dir=args.journal_dir,
            on_service=lambda svc: state.__setitem__("service", svc),
        )
    finally:
        wake.set()  # release the watcher if no signal ever arrived
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    if state["signalled"]:
        # the watcher drains with timeout=4*deadline; join at least that
        # long (plus slack) so the summary reports the real outcome
        # instead of racing the drain to process exit
        watcher.join(timeout=4 * args.deadline + 10.0)
        drain = state["drain"]
        if drain is None:
            print(
                "graceful drain: still in progress at exit "
                "(parked/cancelled counts unavailable)",
                file=sys.stderr,
            )
        else:
            print(
                f"graceful drain: parked={drain.get('parked', 0)} "
                f"cancelled={drain.get('cancelled', 0)} "
                f"journal={drain.get('journal') or '-'}",
                file=sys.stderr,
            )
    out = _human_stream(args)
    header = (
        f"{'job':>4} {'tenant':<10} {'fault':<10} {'status':<9} "
        f"{'class':<18} {'att':>3} {'ranks':>5} {'bitwise':<7} "
        f"{'elapsed':>8}"
    )
    print(header, file=out)
    print("-" * len(header), file=out)
    for v in report.verdicts:
        print(
            f"{v.job_id:>4} {v.tenant:<10} {v.fault:<10} {v.status:<9} "
            f"{v.classification or '-':<18} {v.attempts:>3} "
            f"{v.nprocs_final or '-':>5} "
            f"{'yes' if v.bitwise else 'no':<7} {v.elapsed:>7.2f}s",
            file=out,
        )
    print("-" * len(header), file=out)
    print(report.summary(), file=out)
    c = report.counters
    print(
        f"service: retries={c.get('retries', 0)} "
        f"rebuilds={c.get('pool_rebuilds', 0)} heals={c.get('heals', 0)} "
        f"breaker_trips={c.get('breaker_trips', 0)} "
        f"busy={c.get('busy_time', 0.0):.2f}s",
        file=out,
    )
    if args.json_path:
        _emit_json(report.as_dict(), args.json_path)
    if state["signalled"]:
        # a drained service exits cleanly: parked jobs are journaled,
        # not lost, so the drain itself is not a failure
        return 0
    return 0 if report.contract_held else 1


def _cmd_submit(args: argparse.Namespace) -> int:
    from . import StoppingCriterion
    from .backend import process_backend_support
    from .backend.simulated import SimulatedBackend
    from .service import (
        JobSpec,
        RetryPolicy,
        ServiceOverloadedError,
        SolverService,
        WarmPool,
    )
    from .service.telemetry import summarize_attempts

    if args.backend == "process":
        ok, detail = process_backend_support()
        if not ok:
            print(f"error: process backend unavailable: {detail}",
                  file=sys.stderr)
            return 2
        backend = WarmPool(args.nprocs, timeout=args.deadline)
    else:
        backend = SimulatedBackend()

    common = dict(
        tenant=args.tenant, nprocs=args.nprocs,
        criterion=StoppingCriterion(rtol=args.rtol, maxiter=args.maxiter),
        policy=args.policy, fused=args.fused,
        deadline=args.deadline if args.backend == "process" else None,
        checkpoint_dir=args.checkpoint_dir,
        idempotency_key=args.idempotency_key,
    )
    if args.scenario == "stencil27":
        if args.policy == "rebalance":
            print("error: stencil27 jobs support --policy respawn|shrink",
                  file=sys.stderr)
            return 2
        try:
            shape = _parse_shape(args.shape)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        problem_desc = (
            f"stencil27 {'x'.join(str(s) for s in shape)} "
            f"precond={args.precond}"
        )
        spec = JobSpec(
            scenario="stencil27", shape=shape, precond=args.precond,
            reproducible=args.reproducible, **common,
        )
    else:
        A = _make_matrix(args.matrix, args.n)
        rng = np.random.default_rng(0)
        b = rng.standard_normal(A.nrows)
        problem_desc = f"{args.matrix} n={A.nrows} nnz={A.nnz}"
        spec = JobSpec(matrix=A, b=b, solver=args.solver, **common)
    deduped = False
    with SolverService(
        backend=backend, target_nprocs=args.nprocs,
        retry=RetryPolicy(max_attempts=args.retries),
        journal_dir=args.journal_dir,
    ) as svc:
        try:
            handle = svc.submit(spec)
            deduped = svc.counters.deduped > 0
            result = handle.result(timeout=10 * args.deadline)
        except ServiceOverloadedError as exc:  # pragma: no cover - depth 64
            print(f"rejected: {exc}", file=sys.stderr)
            return 1

    out = _human_stream(args)
    print(f"job       : #{result.job_id} tenant={result.tenant}", file=out)
    if deduped:
        print("dedupe    : answered from the journal (idempotency key "
              "already terminal)", file=out)
    print(f"problem   : {problem_desc}", file=out)
    print(f"status    : {result.status}"
          + (f" [{result.classification}]" if result.classification else ""),
          file=out)
    print(f"ranks     : requested={result.nprocs_requested} "
          f"final={result.nprocs_final}", file=out)
    print(f"iterations: {result.iterations}", file=out)
    print(f"attempts  : {summarize_attempts(result.attempts)}", file=out)
    print(f"time      : queued {result.queued * 1e3:.1f} ms, "
          f"executed {result.elapsed * 1e3:.1f} ms", file=out)
    if result.error:
        print(f"error     : {result.error}", file=out)
    if args.json_path:
        _emit_json(result.as_dict(), args.json_path)
    return 0 if result.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    if args.command == "info":
        return _cmd_info()
    if args.command == "strategies":
        return _cmd_strategies()
    if args.command == "solve":
        return _cmd_solve(args)
    if args.command == "gantt":
        return _cmd_gantt(args)
    if args.command == "calibrate":
        return _cmd_calibrate(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    parser.error(f"unknown command {args.command}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
