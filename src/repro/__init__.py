"""repro: HPF and proposed extensions for Conjugate Gradient algorithms.

A full Python reproduction of Dincer, Hawick, Choudhary & Fox, *High
Performance Fortran and Possible Extensions to support Conjugate Gradient
Algorithms* (NPAC SCCS-703 / HPDC 1996), built on a simulated
distributed-memory multicomputer.

Quick start::

    from repro import Machine, make_strategy, hpf_cg, poisson2d, rhs_for_solution
    import numpy as np

    A = poisson2d(16)                       # a CFD-style SPD system
    b = rhs_for_solution(A, np.ones(A.nrows))
    machine = Machine(nprocs=8, topology="hypercube")
    strategy = make_strategy("csr_forall", machine, A)   # the Figure-2 code
    result = hpf_cg(strategy, b)
    print(result.iterations, result.machine_elapsed, result.comm)

Subpackages
-----------
``repro.machine``     simulated multicomputer (topologies, cost model, SPMD)
``repro.hpf``         HPF-1 runtime (distributions, ALIGN, FORALL, directives)
``repro.extensions``  the paper's proposed HPF-2 extensions
``repro.sparse``      CSR/CSC/COO/dense formats and matrix generators
``repro.core``        CG / PCG / BiCG / CGS / BiCGSTAB, sequential + distributed
``repro.backend``     execution backends: simulated machine vs real OS processes
``repro.baselines``   message-passing CG and dense Gaussian elimination
``repro.analysis``    the paper's cost formulas, load metrics, report tables
"""

from .analysis import Table, load_report
from .backend import (
    Comm,
    ProcessBackend,
    SimulatedBackend,
    backend_solve,
    calibrate_host,
    cross_validate,
    process_backend_support,
)
from .baselines import direct_solve, direct_vs_cg_flops, spmd_cg
from .hpcg import MultigridPreconditioner, hpcg_solve
from .core import (
    ConvergenceHistory,
    IdentityPreconditioner,
    JacobiPreconditioner,
    NeumannPreconditioner,
    SolveResult,
    SSORPreconditioner,
    StoppingCriterion,
    bicg_reference,
    bicgstab_reference,
    cg_reference,
    cgs_reference,
    gaussian_elimination,
    gmres_reference,
    hpf_bicg,
    hpf_bicgstab,
    hpf_cg,
    hpf_cgs,
    hpf_gmres,
    hpf_pcg,
    make_strategy,
    pcg_reference,
)
from .extensions import (
    IndivisableSpec,
    InspectorExecutor,
    OnProcessor,
    PrivateRegion,
    SparseMatrixBinding,
    cg_balanced_partitioner_1,
)
from .hpf import (
    Block,
    Cyclic,
    DistributedArray,
    HpfNamespace,
    IrregularBlock,
    forall,
    forall_indexed,
)
from .machine import CostModel, Machine
from .sparse import (
    CSCMatrix,
    COOMatrix,
    CSRMatrix,
    DenseMatrix,
    circuit_nodal,
    convection_diffusion_1d,
    figure1_matrix,
    irregular_powerlaw,
    matrix_with_eigenvalues,
    nas_cg_style,
    nonsymmetric_diag_dominant,
    poisson1d,
    poisson2d,
    stencil27,
    rhs_for_solution,
    structural_truss,
)

__version__ = "1.0.0"

__all__ = [
    "Machine",
    "CostModel",
    "Comm",
    "SimulatedBackend",
    "ProcessBackend",
    "backend_solve",
    "hpcg_solve",
    "MultigridPreconditioner",
    "cross_validate",
    "calibrate_host",
    "process_backend_support",
    "DistributedArray",
    "HpfNamespace",
    "Block",
    "Cyclic",
    "IrregularBlock",
    "forall",
    "forall_indexed",
    "PrivateRegion",
    "OnProcessor",
    "InspectorExecutor",
    "IndivisableSpec",
    "SparseMatrixBinding",
    "cg_balanced_partitioner_1",
    "CSRMatrix",
    "CSCMatrix",
    "COOMatrix",
    "DenseMatrix",
    "figure1_matrix",
    "poisson1d",
    "poisson2d",
    "stencil27",
    "structural_truss",
    "circuit_nodal",
    "nas_cg_style",
    "irregular_powerlaw",
    "matrix_with_eigenvalues",
    "convection_diffusion_1d",
    "nonsymmetric_diag_dominant",
    "rhs_for_solution",
    "hpf_cg",
    "hpf_pcg",
    "hpf_bicg",
    "hpf_cgs",
    "hpf_bicgstab",
    "hpf_gmres",
    "gmres_reference",
    "make_strategy",
    "cg_reference",
    "pcg_reference",
    "bicg_reference",
    "cgs_reference",
    "bicgstab_reference",
    "gaussian_elimination",
    "StoppingCriterion",
    "SolveResult",
    "ConvergenceHistory",
    "IdentityPreconditioner",
    "JacobiPreconditioner",
    "SSORPreconditioner",
    "NeumannPreconditioner",
    "spmd_cg",
    "direct_solve",
    "direct_vs_cg_flops",
    "Table",
    "load_report",
    "__version__",
]
