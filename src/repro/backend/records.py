"""Shared crash-safe record plumbing: CRC32 framing + atomic publication.

Two on-disk journals in this codebase need the same guarantees — the
per-``(iteration, rank)`` checkpoint records of
:class:`~repro.backend.store.DurableCheckpointStore` and the job
lifecycle records of :class:`~repro.service.journal.JobJournal` — so the
guarantees live here once:

* **framing** (:class:`RecordCodec`): every record is ``magic`` + an
  optional fixed-width key header + a ``(length, CRC32)`` frame + the
  pickled payload.  Decoding returns ``None`` for anything torn,
  truncated, bit-flipped or length-spoofed, so loaders *skip* damage
  instead of crashing on it;
* **publication** (:func:`atomic_write`): data goes to a ``.tmp-``
  sibling, is flushed (``fsync`` optional), then renamed into place with
  ``os.replace`` — a SIGKILL at any instant leaves either a complete
  checksummed record or an unpublished tmp file, never a half-visible
  one.  :func:`sweep_tmp` removes the leftovers on the next open.

The byte layout is pickled little-endian structs with no padding, so a
codec with key format ``"qq"`` produces exactly the bytes the historic
``"<qqQI"`` checkpoint header produced — extracting the codec changed no
on-disk format.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from typing import Any, Optional, Tuple

__all__ = ["RecordCodec", "atomic_write", "fsync_dir", "sweep_tmp"]

#: suffixed frame carried by every record: payload length, payload CRC32
_FRAME = struct.Struct("<QI")


class RecordCodec:
    """Encode/decode one framed record kind.

    ``magic`` discriminates record kinds (a store record never decodes as
    a journal record); ``key_format`` is an optional :mod:`struct` field
    list (little-endian, no ``<`` prefix) packed between the magic and
    the frame — e.g. ``"qq"`` for the checkpoint store's
    ``(iteration, rank)`` key.
    """

    def __init__(self, magic: bytes, key_format: str = ""):
        if not magic:
            raise ValueError("magic must be non-empty")
        self.magic = bytes(magic)
        self._key = struct.Struct("<" + key_format) if key_format else None
        self._head = len(self.magic) + (
            self._key.size if self._key else 0
        )

    def encode(self, payload: Any, *key: int) -> bytes:
        """Frame ``payload`` (pickled) under ``key`` fields."""
        body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        head = self._key.pack(*key) if self._key else b""
        return (
            self.magic + head + _FRAME.pack(len(body), zlib.crc32(body))
            + body
        )

    def decode(self, raw: bytes) -> Optional[Tuple[tuple, Any]]:
        """``(key_fields, payload)``, or ``None`` if torn/corrupt."""
        if not raw.startswith(self.magic):
            return None
        head = raw[len(self.magic):self._head]
        frame = raw[self._head:self._head + _FRAME.size]
        if self._key and len(head) < self._key.size:
            return None
        if len(frame) < _FRAME.size:
            return None
        length, crc = _FRAME.unpack(frame)
        body = raw[self._head + _FRAME.size:]
        if len(body) != length or zlib.crc32(body) != crc:
            return None
        try:
            payload = pickle.loads(body)
        except Exception:
            return None
        key = self._key.unpack(head) if self._key else ()
        return key, payload


# ---------------------------------------------------------------------- #
# atomic publication
# ---------------------------------------------------------------------- #
def fsync_dir(path: str) -> None:
    """fsync a directory so a just-renamed entry survives power loss."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform quirk
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform quirk
        pass
    finally:
        os.close(fd)


def atomic_write(dirpath: str, name: str, data: bytes,
                 fsync: bool = True) -> None:
    """Publish ``dirpath/name`` atomically via a ``.tmp-`` sibling.

    ``fsync=True`` syncs the file before the rename and the directory
    after it (survives power loss); ``fsync=False`` still survives
    process kill.
    """
    tmp = os.path.join(dirpath, f".tmp-{name}-{os.getpid()}")
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
    os.replace(tmp, os.path.join(dirpath, name))
    if fsync:
        fsync_dir(dirpath)


def sweep_tmp(dirpath: str) -> list:
    """Remove leftover ``.tmp-*`` files (kill mid-write); returns names."""
    swept = []
    for name in sorted(os.listdir(dirpath)):
        if not name.startswith(".tmp-"):
            continue
        try:
            os.unlink(os.path.join(dirpath, name))
        except OSError:  # pragma: no cover - races with another sweeper
            continue
        swept.append(name)
    return swept
