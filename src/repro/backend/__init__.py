"""Execution backends: the same SPMD programs, simulated or real.

The paper's claims live on a modelled multicomputer; this package makes
them testable against wall-clock reality.  One
:class:`~repro.backend.base.Comm`/GenOp protocol, two substrates:

* :class:`SimulatedBackend` -- the deterministic discrete-event scheduler
  with the ``t_startup + m·t_comm`` cost model (the paper's machine);
* :class:`ProcessBackend` -- one OS process per rank, real queues, real
  ``perf_counter`` timing, hard timeouts, per-rank stats mirrored into
  the simulator's :class:`~repro.machine.stats.MachineStats` shape.

On top: :func:`cross_validate` proves both produce bitwise-identical
solver output and reports modelled-vs-measured time (benchmark E20), and
:func:`calibrate_host` fits the cost model's three constants to the host
so the simulator predicts this machine instead of a 1996 one.
"""

from .base import (
    BackendError,
    BackendRun,
    BackendTimeoutError,
    Comm,
    ExecutionBackend,
    WorkerFailedError,
)
from .calibrate import (
    Calibration,
    calibrate_host,
    fit_message_model,
    measure_message_costs,
    measure_t_flop,
)
from .process import ProcessBackend, default_start_method, process_backend_support
from .programs import CGRankProgram, PCGRankProgram, PingPongProgram
from .simulated import SimulatedBackend
from .solve import BACKENDS, backend_solve, make_backend, make_solver_program
from .validate import BackendMismatchError, CrossValidation, cross_validate

__all__ = [
    "BACKENDS",
    "BackendError",
    "BackendMismatchError",
    "BackendRun",
    "BackendTimeoutError",
    "CGRankProgram",
    "Calibration",
    "Comm",
    "CrossValidation",
    "ExecutionBackend",
    "PCGRankProgram",
    "PingPongProgram",
    "ProcessBackend",
    "SimulatedBackend",
    "WorkerFailedError",
    "backend_solve",
    "calibrate_host",
    "cross_validate",
    "default_start_method",
    "fit_message_model",
    "make_backend",
    "make_solver_program",
    "measure_message_costs",
    "measure_t_flop",
    "process_backend_support",
]
