"""Execution backends: the same SPMD programs, simulated or real.

The paper's claims live on a modelled multicomputer; this package makes
them testable against wall-clock reality.  One
:class:`~repro.backend.base.Comm`/GenOp protocol, two substrates:

* :class:`SimulatedBackend` -- the deterministic discrete-event scheduler
  with the ``t_startup + m·t_comm`` cost model (the paper's machine);
* :class:`ProcessBackend` -- one OS process per rank, real queues, real
  ``perf_counter`` timing, hard timeouts, per-rank stats mirrored into
  the simulator's :class:`~repro.machine.stats.MachineStats` shape.

On top: :func:`cross_validate` proves both produce bitwise-identical
solver output and reports modelled-vs-measured time (benchmark E20), and
:func:`calibrate_host` fits the cost model's three constants to the host
so the simulator predicts this machine instead of a 1996 one.

The fault-tolerance layer (DESIGN.md §8) is backend-agnostic: one seeded
:class:`~repro.machine.faults.FaultPlan` drives Comm-level message faults
(:mod:`~repro.backend.faulty`), in-program state corruption and substrate
crash injection identically on both backends;
:class:`ResilientCGProgram` + :func:`run_with_recovery` survive them via
ABFT checksums (:mod:`~repro.backend.abft`), sanity audits/rollbacks and
respawn-from-checkpoint restarts; :mod:`~repro.backend.chaos` sweeps
seeded randomized schedules to enforce the converge-or-classified-error
contract.

Degraded-mode execution (DESIGN.md §9) extends the layer to losses the
respawn protocol cannot mask: under ``policy="shrink"`` a crashed or
deadline-stale rank (:class:`~repro.machine.faults.StragglerDetectedError`)
is dropped, the survivors run an online ``REDISTRIBUTE`` of every CG
operand onto a balanced smaller layout, and the solve continues from the
re-sliced checkpoint; ``policy="rebalance"`` instead re-cuts the row
space around a slow-but-alive rank with the capacity-scaled partitioner.
"""

from .abft import (
    AbftChecksumError,
    check_matvec,
    column_checksums,
    decode_dot,
    encode_dot,
)
from .base import (
    BackendError,
    BackendRun,
    BackendTimeoutError,
    Comm,
    ExecutionBackend,
    RecvTimeoutError,
    WorkerCrashedError,
    WorkerFailedError,
)
from .calibrate import (
    Calibration,
    calibrate_host,
    fit_message_model,
    measure_message_costs,
    measure_t_flop,
)
from .counting import TagCountingProgram, allreduce_trees, tally_send_tags
from .chaos import (
    ChaosOutcome,
    chaos_plan,
    chaos_run,
    chaos_sweep,
    classify_failure,
    format_report,
)
from .faulty import (
    FaultInjectingProgram,
    FaultInjector,
    FaultyComm,
    SlowdownProgram,
)
from .process import (
    DEFAULT_HEARTBEAT_INTERVAL,
    DEFAULT_RUN_DEADLINE,
    ProcessBackend,
    crash_injection_support,
    default_start_method,
    process_backend_support,
)
from .programs import (
    CGRankProgram,
    PCGRankProgram,
    PingPongProgram,
    ResilientCGProgram,
)
from .simulated import SimulatedBackend
from .solve import (
    BACKENDS,
    RecoveryPolicy,
    backend_solve,
    make_backend,
    make_solver_program,
    reslice_snapshots,
    run_with_recovery,
)
from .reproducible import Superaccumulator
from .validate import (
    BackendMismatchError,
    CrossValidation,
    FaultSequenceParity,
    cross_validate,
    fault_sequence_parity,
    hpcg_cross_validate,
)

__all__ = [
    "BACKENDS",
    "AbftChecksumError",
    "BackendError",
    "BackendMismatchError",
    "Superaccumulator",
    "BackendRun",
    "BackendTimeoutError",
    "CGRankProgram",
    "Calibration",
    "ChaosOutcome",
    "Comm",
    "CrossValidation",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "DEFAULT_RUN_DEADLINE",
    "ExecutionBackend",
    "FaultInjectingProgram",
    "FaultInjector",
    "FaultSequenceParity",
    "FaultyComm",
    "PCGRankProgram",
    "PingPongProgram",
    "ProcessBackend",
    "RecoveryPolicy",
    "RecvTimeoutError",
    "ResilientCGProgram",
    "SimulatedBackend",
    "SlowdownProgram",
    "TagCountingProgram",
    "WorkerCrashedError",
    "WorkerFailedError",
    "allreduce_trees",
    "backend_solve",
    "calibrate_host",
    "chaos_plan",
    "chaos_run",
    "chaos_sweep",
    "check_matvec",
    "classify_failure",
    "column_checksums",
    "crash_injection_support",
    "cross_validate",
    "hpcg_cross_validate",
    "decode_dot",
    "default_start_method",
    "encode_dot",
    "fault_sequence_parity",
    "fit_message_model",
    "format_report",
    "make_backend",
    "make_solver_program",
    "measure_message_costs",
    "measure_t_flop",
    "process_backend_support",
    "reslice_snapshots",
    "run_with_recovery",
    "tally_send_tags",
]
