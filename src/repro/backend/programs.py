"""Backend-portable SPMD rank programs (picklable factories).

A program factory is called as ``factory(rank, size)`` and returns the
rank's generator.  Everything here is a module-level class holding plain
NumPy arrays, so factories survive pickling -- the requirement for the
process backend's ``spawn`` start method, where workers receive their
program by pickle instead of inheriting memory from a fork.

:class:`CGRankProgram` is the row-block message-passing CG of the paper's
Section 5.1 -- the *same* program :func:`repro.baselines.message_passing.spmd_cg`
runs on the simulator (that function instantiates this class), which is
what makes the simulated-vs-real cross-validation of
:mod:`repro.backend.validate` an apples-to-apples comparison.
:class:`PCGRankProgram` adds Jacobi preconditioning with the update
ordering of :func:`repro.core.pcg.hpf_pcg`.  :class:`PingPongProgram` is
the two-rank latency/bandwidth microbenchmark behind
:func:`repro.backend.calibrate.calibrate_host`.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from ..hpf.distribution import Block
from ..machine import spmd
from ..machine.events import Compute, Recv, Send
from ..core.stopping import StoppingCriterion
from ..sparse.convert import as_matrix

__all__ = ["CGRankProgram", "PCGRankProgram", "PingPongProgram", "csr_arrays"]


def csr_arrays(matrix):
    """Normalise any accepted matrix into CSR ``(n, indptr, indices, data)``."""
    A = as_matrix(matrix).to_csr()
    return A.nrows, A.indptr, A.indices, A.data


class _RowBlockProgram:
    """Shared state for row-block solvers: CSR slices + vector blocks."""

    def __init__(
        self,
        matrix,
        b: np.ndarray,
        x0: Optional[np.ndarray] = None,
        criterion: Optional[StoppingCriterion] = None,
        maxiter: Optional[int] = None,
    ):
        n, indptr, indices, data = csr_arrays(matrix)
        b = np.asarray(b, dtype=np.float64)
        if b.shape != (n,):
            raise ValueError(f"b must have shape ({n},), got {b.shape}")
        self.n = n
        self.indptr = indptr
        self.indices = indices
        self.data = data
        self.b = b
        self.x_start = (
            np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64)
        )
        self.crit = criterion or StoppingCriterion()
        self.maxiter = maxiter if maxiter is not None else self.crit.cap(n)

    def _local(self, rank: int, size: int):
        """This rank's row range, CSR segment and local row ids."""
        dist = Block(self.n, size)
        lo, hi = dist.local_range(rank)
        seg = slice(int(self.indptr[lo]), int(self.indptr[hi]))
        local_nnz = int(self.indptr[hi] - self.indptr[lo])
        row_ids = (
            np.repeat(
                np.arange(lo, hi, dtype=np.int64),
                np.diff(self.indptr[lo : hi + 1]),
            )
            - lo
        )
        return lo, hi, seg, local_nnz, row_ids


class CGRankProgram(_RowBlockProgram):
    """Row-block SPMD CG rank program (paper §5.1, fault-free path).

    Per iteration: one allgather of ``p`` (the Scenario-1 broadcast), one
    local CSR mat-vec, two allreduce inner products and three local
    SAXPY-type updates.  Each rank returns
    ``(x_block, residuals, converged, iterations)``; the residual history
    and flags are identical on every rank.
    """

    def __call__(self, rank: int, size: int):
        indices, data = self.indices, self.data
        crit, maxiter = self.crit, self.maxiter
        lo, hi, seg, local_nnz, row_ids = self._local(rank, size)
        local_rows = slice(lo, hi)
        x = self.x_start[local_rows].copy()
        bb = self.b[local_rows].copy()

        # r = b - A x0 (one mat-vec only if x0 != 0)
        if np.any(self.x_start):
            x_full = yield from spmd.allgather(rank, size, x)
            x_full = np.concatenate(x_full)
            ax = np.zeros(hi - lo)
            np.add.at(ax, row_ids, data[seg] * x_full[indices[seg]])
            yield Compute(2.0 * local_nnz)
            r = bb - ax
        else:
            r = bb.copy()
        p = r.copy()

        bnorm2 = yield from spmd.allreduce_sum(rank, size, float(bb @ bb))
        yield Compute(2.0 * bb.size)
        bnorm = np.sqrt(bnorm2)
        rho = yield from spmd.allreduce_sum(rank, size, float(r @ r))
        yield Compute(2.0 * r.size)
        residuals = [float(np.sqrt(max(0.0, rho)))]
        if crit.satisfied(residuals[-1], bnorm):
            return x, residuals, True, 0

        converged = False
        iterations = 0
        for k in range(1, maxiter + 1):
            if k > 1:
                beta = rho / rho0
                p = beta * p + r  # saypx
                yield Compute(2.0 * p.size)
            # all-to-all broadcast of p (the Scenario-1 communication)
            blocks = yield from spmd.allgather(rank, size, p)
            p_full = np.concatenate(blocks)
            q = np.zeros(hi - lo)
            np.add.at(q, row_ids, data[seg] * p_full[indices[seg]])
            yield Compute(2.0 * local_nnz)
            pq = yield from spmd.allreduce_sum(rank, size, float(p @ q))
            yield Compute(2.0 * p.size)
            if pq == 0.0:
                break
            alpha = rho / pq
            x += alpha * p
            r -= alpha * q
            yield Compute(4.0 * p.size)
            rho0 = rho
            rho = yield from spmd.allreduce_sum(rank, size, float(r @ r))
            yield Compute(2.0 * r.size)
            residuals.append(float(np.sqrt(max(0.0, rho))))
            iterations = k
            if crit.satisfied(residuals[-1], bnorm):
                converged = True
                break
        return x, residuals, converged, iterations


class PCGRankProgram(_RowBlockProgram):
    """Jacobi-preconditioned row-block SPMD CG rank program.

    Update ordering mirrors :func:`repro.core.pcg.hpf_pcg` (rho = r·z,
    ``p = beta p + z`` at the *end* of the body), with the diagonal
    preconditioner applied locally -- Jacobi needs no communication, the
    paper's "fully parallel, one divide each" case.
    """

    def __init__(self, matrix, b, x0=None, criterion=None, maxiter=None):
        super().__init__(matrix, b, x0, criterion, maxiter)
        A = as_matrix(matrix)
        d = A.diagonal()
        if (d == 0).any():
            raise ValueError("Jacobi preconditioner needs a zero-free diagonal")
        self.inv_diag = 1.0 / d

    def __call__(self, rank: int, size: int):
        indices, data = self.indices, self.data
        crit, maxiter = self.crit, self.maxiter
        lo, hi, seg, local_nnz, row_ids = self._local(rank, size)
        x = self.x_start[lo:hi].copy()
        bb = self.b[lo:hi].copy()
        inv_d = self.inv_diag[lo:hi]

        def matvec(v_full):
            out = np.zeros(hi - lo)
            np.add.at(out, row_ids, data[seg] * v_full[indices[seg]])
            return out

        if np.any(self.x_start):
            blocks = yield from spmd.allgather(rank, size, x)
            ax = matvec(np.concatenate(blocks))
            yield Compute(2.0 * local_nnz)
            r = bb - ax
        else:
            r = bb.copy()

        bnorm2 = yield from spmd.allreduce_sum(rank, size, float(bb @ bb))
        yield Compute(2.0 * bb.size)
        bnorm = np.sqrt(bnorm2)
        rnorm2 = yield from spmd.allreduce_sum(rank, size, float(r @ r))
        yield Compute(2.0 * r.size)
        residuals = [float(np.sqrt(max(0.0, rnorm2)))]
        if crit.satisfied(residuals[-1], bnorm):
            return x, residuals, True, 0

        z = inv_d * r  # Jacobi apply: local, one divide each
        yield Compute(float(hi - lo))
        p = z.copy()
        rho = yield from spmd.allreduce_sum(rank, size, float(r @ z))
        yield Compute(2.0 * r.size)

        converged = False
        iterations = 0
        for k in range(1, maxiter + 1):
            blocks = yield from spmd.allgather(rank, size, p)
            q = matvec(np.concatenate(blocks))
            yield Compute(2.0 * local_nnz)
            pq = yield from spmd.allreduce_sum(rank, size, float(p @ q))
            yield Compute(2.0 * p.size)
            if pq == 0.0:
                break
            alpha = rho / pq
            x += alpha * p
            r -= alpha * q
            yield Compute(4.0 * p.size)
            rnorm2 = yield from spmd.allreduce_sum(rank, size, float(r @ r))
            yield Compute(2.0 * r.size)
            residuals.append(float(np.sqrt(max(0.0, rnorm2))))
            iterations = k
            if crit.satisfied(residuals[-1], bnorm):
                converged = True
                break
            z = inv_d * r
            yield Compute(float(hi - lo))
            rho0 = rho
            rho = yield from spmd.allreduce_sum(rank, size, float(r @ z))
            yield Compute(2.0 * r.size)
            beta = rho / rho0
            p = beta * p + z  # saypx
            yield Compute(2.0 * p.size)
        return x, residuals, converged, iterations


class PingPongProgram:
    """Two-rank ping-pong microbenchmark for host calibration.

    Rank 0 sends an ``m``-word array to rank 1, which echoes it back;
    rank 0 times the round trip with ``perf_counter``.  Returns, on rank
    0, a list of ``(m_words, best_round_trip_seconds)`` samples; the
    calibration fit halves them and regresses against
    ``t_startup + m · t_comm``.  Only meaningful on the process backend
    (on the simulator the measured times are just interpreter overhead).
    """

    def __init__(self, sizes=(1, 64, 256, 1024, 4096, 16384), repeats: int = 7):
        self.sizes = tuple(int(s) for s in sizes)
        self.repeats = int(repeats)
        if min(self.sizes) < 1 or self.repeats < 1:
            raise ValueError("sizes and repeats must be positive")

    def __call__(self, rank: int, size: int):
        if size != 2:
            raise ValueError("PingPongProgram needs exactly 2 ranks")
        samples = []
        for m in self.sizes:
            payload = np.zeros(m, dtype=np.float64)
            best = float("inf")
            for _ in range(self.repeats):
                if rank == 0:
                    t0 = time.perf_counter()
                    yield Send(dest=1, payload=payload, tag=11)
                    payload = yield Recv(source=1, tag=12)
                    best = min(best, time.perf_counter() - t0)
                else:
                    payload = yield Recv(source=0, tag=11)
                    yield Send(dest=0, payload=payload, tag=12)
            if rank == 0:
                samples.append((m, best))
        return samples if rank == 0 else None
