"""Backend-portable SPMD rank programs (picklable factories).

A program factory is called as ``factory(rank, size)`` and returns the
rank's generator.  Everything here is a module-level class holding plain
NumPy arrays, so factories survive pickling -- the requirement for the
process backend's ``spawn`` start method, where workers receive their
program by pickle instead of inheriting memory from a fork.

:class:`CGRankProgram` is the row-block message-passing CG of the paper's
Section 5.1 -- the *same* program :func:`repro.baselines.message_passing.spmd_cg`
runs on the simulator (that function instantiates this class), which is
what makes the simulated-vs-real cross-validation of
:mod:`repro.backend.validate` an apples-to-apples comparison.
:class:`PCGRankProgram` adds Jacobi preconditioning with the update
ordering of :func:`repro.core.pcg.hpf_pcg`.  :class:`PingPongProgram` is
the two-rank latency/bandwidth microbenchmark behind
:func:`repro.backend.calibrate.calibrate_host`.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..hpf.distribution import Block
from ..machine import reliable as rel
from ..machine import spmd
from ..machine.events import Checkpoint, Compute, Recv, Send
from ..machine.faults import FaultPlan
from ..machine.reliable import ReliableConfig, ReliableEndpoint
from ..core.resilience import RecoveryExhaustedError
from ..core.stopping import StoppingCriterion
from ..sparse.convert import as_matrix
from .abft import check_matvec, column_checksums, decode_dot, encode_dot
from .reproducible import (
    dot_slots,
    pack_slots,
    render_slots,
    sum_slots,
    unpack_slots,
)

__all__ = [
    "CGRankProgram",
    "PCGRankProgram",
    "ResilientCGProgram",
    "PingPongProgram",
    "csr_arrays",
]


def csr_arrays(matrix):
    """Normalise any accepted matrix into CSR ``(n, indptr, indices, data)``."""
    A = as_matrix(matrix).to_csr()
    return A.nrows, A.indptr, A.indices, A.data


class _RowBlockProgram:
    """Shared state for row-block solvers: CSR slices + vector blocks.

    ``layout`` makes the row distribution a run-time parameter: any
    *contiguous* :class:`~repro.hpf.distribution.Distribution` over the row
    space (``Block``, ``BlockK``, or the ``ATOM:BLOCK``
    :class:`~repro.hpf.distribution.IrregularBlock` a partitioner
    produced).  The degraded-mode driver re-points it after an online
    REDISTRIBUTE, so the same program instance runs correctly on the
    shrunken rank set.  ``None`` (the default) keeps the classic HPF
    ``BLOCK`` derived from the run's rank count -- every pre-existing
    caller is unchanged.
    """

    def __init__(
        self,
        matrix,
        b: np.ndarray,
        x0: Optional[np.ndarray] = None,
        criterion: Optional[StoppingCriterion] = None,
        maxiter: Optional[int] = None,
        layout=None,
        reproducible: bool = False,
    ):
        n, indptr, indices, data = csr_arrays(matrix)
        b = np.asarray(b, dtype=np.float64)
        if b.shape != (n,):
            raise ValueError(f"b must have shape ({n},), got {b.shape}")
        self.n = n
        self.indptr = indptr
        self.indices = indices
        self.data = data
        self.b = b
        self.x_start = (
            np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64)
        )
        self.crit = criterion or StoppingCriterion()
        self.maxiter = maxiter if maxiter is not None else self.crit.cap(n)
        self.layout = layout
        self.reproducible = bool(reproducible)

    @property
    def layout(self):
        return self._layout

    @layout.setter
    def layout(self, value) -> None:
        if value is not None:
            if not getattr(value, "is_contiguous", False):
                raise ValueError(
                    "row-block programs need a contiguous layout "
                    f"(got {value!r})"
                )
            if value.n != self.n:
                raise ValueError(
                    f"layout extent {value.n} != matrix rows {self.n}"
                )
        self._layout = value

    def _local(self, rank: int, size: int):
        """This rank's row range, CSR segment and local row ids."""
        if self._layout is not None and self._layout.nprocs == size:
            dist = self._layout
        else:
            dist = Block(self.n, size)
        lo, hi = dist.local_range(rank)
        seg = slice(int(self.indptr[lo]), int(self.indptr[hi]))
        local_nnz = int(self.indptr[hi] - self.indptr[lo])
        row_ids = (
            np.repeat(
                np.arange(lo, hi, dtype=np.int64),
                np.diff(self.indptr[lo : hi + 1]),
            )
            - lo
        )
        return lo, hi, seg, local_nnz, row_ids

    def _dot(self, rank: int, size: int, a, b, tag: int = 3):
        """Globally reduced inner product ``a . b`` (one latency tree).

        With ``reproducible=True`` the local elementwise products are
        splat into a superaccumulator and the limb slots travel through
        the packed reduction exactly (:mod:`repro.backend.reproducible`),
        so the result is bitwise invariant to rank count and tree shape.
        """
        if self.reproducible:
            red = yield from spmd.allreduce_vec(
                rank, size, dot_slots(a, b), tag=tag
            )
            return render_slots(red)
        out = yield from spmd.allreduce_sum(rank, size, float(a @ b), tag=tag)
        return float(out)

    def _dots(self, rank: int, size: int, pairs, tag: int = 3):
        """Reduce several inner products in one packed ``allreduce_vec``."""
        if self.reproducible:
            red = yield from spmd.allreduce_vec(
                rank,
                size,
                pack_slots([dot_slots(a, b) for a, b in pairs]),
                tag=tag,
            )
            return [render_slots(s) for s in unpack_slots(red, len(pairs))]
        red = yield from spmd.allreduce_vec(
            rank, size, np.array([float(a @ b) for a, b in pairs]), tag=tag
        )
        return [float(v) for v in red]


class CGRankProgram(_RowBlockProgram):
    """Row-block SPMD CG rank program (paper §5.1, fault-free path).

    Per iteration: one allgather of ``p`` (the Scenario-1 broadcast), one
    local CSR mat-vec, two allreduce inner products and three local
    SAXPY-type updates.  Each rank returns
    ``(x_block, residuals, converged, iterations)``; the residual history
    and flags are identical on every rank.

    ``fused=True`` switches to the single-reduction (communication-
    avoiding, Chronopoulos--Gear) recurrence: the mat-vec rides on ``r``
    instead of ``p`` and the two inner products ``gamma = r.r`` and
    ``delta = (A r).r`` travel in **one** batched
    :func:`~repro.machine.spmd.allreduce_vec` per iteration, with
    ``alpha = gamma / (delta - beta * gamma / alpha_prev)`` recovering the
    classic step length.  Same solution, same residual trajectory (up to
    floating-point reassociation), half the per-iteration ``t_startup``
    latency trees.
    """

    def __init__(
        self,
        matrix,
        b: np.ndarray,
        x0: Optional[np.ndarray] = None,
        criterion: Optional[StoppingCriterion] = None,
        maxiter: Optional[int] = None,
        layout=None,
        fused: bool = False,
        reproducible: bool = False,
    ):
        super().__init__(matrix, b, x0, criterion, maxiter, layout=layout,
                         reproducible=reproducible)
        self.fused = bool(fused)

    def __call__(self, rank: int, size: int):
        if self.fused:
            result = yield from self._run_fused(rank, size)
        else:
            result = yield from self._run_classic(rank, size)
        return result

    def _run_classic(self, rank: int, size: int):
        indices, data = self.indices, self.data
        crit, maxiter = self.crit, self.maxiter
        lo, hi, seg, local_nnz, row_ids = self._local(rank, size)
        local_rows = slice(lo, hi)
        x = self.x_start[local_rows].copy()
        bb = self.b[local_rows].copy()

        # r = b - A x0 (one mat-vec only if x0 != 0)
        if np.any(self.x_start):
            x_full = yield from spmd.allgather(rank, size, x)
            x_full = np.concatenate(x_full)
            ax = np.zeros(hi - lo)
            np.add.at(ax, row_ids, data[seg] * x_full[indices[seg]])
            yield Compute(2.0 * local_nnz)
            r = bb - ax
        else:
            r = bb.copy()
        p = r.copy()

        bnorm2 = yield from self._dot(rank, size, bb, bb)
        yield Compute(2.0 * bb.size)
        bnorm = np.sqrt(bnorm2)
        rho = yield from self._dot(rank, size, r, r)
        yield Compute(2.0 * r.size)
        residuals = [float(np.sqrt(max(0.0, rho)))]
        if crit.satisfied(residuals[-1], bnorm):
            return x, residuals, True, 0

        converged = False
        iterations = 0
        for k in range(1, maxiter + 1):
            if k > 1:
                beta = rho / rho0
                p = beta * p + r  # saypx
                yield Compute(2.0 * p.size)
            # all-to-all broadcast of p (the Scenario-1 communication)
            blocks = yield from spmd.allgather(rank, size, p)
            p_full = np.concatenate(blocks)
            q = np.zeros(hi - lo)
            np.add.at(q, row_ids, data[seg] * p_full[indices[seg]])
            yield Compute(2.0 * local_nnz)
            pq = yield from self._dot(rank, size, p, q)
            yield Compute(2.0 * p.size)
            if pq == 0.0:
                break
            alpha = rho / pq
            x += alpha * p
            r -= alpha * q
            yield Compute(4.0 * p.size)
            rho0 = rho
            rho = yield from self._dot(rank, size, r, r)
            yield Compute(2.0 * r.size)
            residuals.append(float(np.sqrt(max(0.0, rho))))
            iterations = k
            if crit.satisfied(residuals[-1], bnorm):
                converged = True
                break
        return x, residuals, converged, iterations

    def _run_fused(self, rank: int, size: int):
        indices, data = self.indices, self.data
        crit, maxiter = self.crit, self.maxiter
        lo, hi, seg, local_nnz, row_ids = self._local(rank, size)
        x = self.x_start[lo:hi].copy()
        bb = self.b[lo:hi].copy()

        def matvec(v_full):
            out = np.zeros(hi - lo)
            np.add.at(out, row_ids, data[seg] * v_full[indices[seg]])
            return out

        if np.any(self.x_start):
            blocks = yield from spmd.allgather(rank, size, x)
            ax = matvec(np.concatenate(blocks))
            yield Compute(2.0 * local_nnz)
            r = bb - ax
        else:
            r = bb.copy()

        # w = A r: the per-iteration allgather replicates r, not p
        blocks = yield from spmd.allgather(rank, size, r)
        w = matvec(np.concatenate(blocks))
        yield Compute(2.0 * local_nnz)
        # the single fused reduction; b.b rides along on the first trip so
        # even setup needs no second latency tree
        packed = yield from self._dots(
            rank, size, [(r, r), (w, r), (bb, bb)]
        )
        yield Compute(6.0 * r.size)
        gamma, delta = packed[0], packed[1]
        bnorm = float(np.sqrt(packed[2]))
        residuals = [float(np.sqrt(max(0.0, gamma)))]
        if crit.satisfied(residuals[-1], bnorm):
            return x, residuals, True, 0
        if delta == 0.0:
            return x, residuals, False, 0
        alpha = gamma / delta
        p = r.copy()
        s = w.copy()

        converged = False
        iterations = 0
        for k in range(1, maxiter + 1):
            x += alpha * p
            r -= alpha * s
            yield Compute(4.0 * r.size)
            blocks = yield from spmd.allgather(rank, size, r)
            w = matvec(np.concatenate(blocks))
            yield Compute(2.0 * local_nnz)
            packed = yield from self._dots(rank, size, [(r, r), (w, r)])
            yield Compute(4.0 * r.size)
            gamma_new, delta = packed[0], packed[1]
            residuals.append(float(np.sqrt(max(0.0, gamma_new))))
            iterations = k
            if crit.satisfied(residuals[-1], bnorm):
                converged = True
                break
            beta = gamma_new / gamma
            denom = delta - beta * gamma_new / alpha
            if denom == 0.0:
                break
            alpha = gamma_new / denom
            gamma = gamma_new
            p = r + beta * p
            s = w + beta * s
            yield Compute(4.0 * r.size)
        return x, residuals, converged, iterations


class PCGRankProgram(_RowBlockProgram):
    """Jacobi-preconditioned row-block SPMD CG rank program.

    Update ordering mirrors :func:`repro.core.pcg.hpf_pcg` (rho = r·z,
    ``p = beta p + z`` at the *end* of the body), with the diagonal
    preconditioner applied locally -- Jacobi needs no communication, the
    paper's "fully parallel, one divide each" case.

    ``fused=True`` runs the preconditioned single-reduction recurrence:
    per iteration the three inner products ``gamma = r.u``,
    ``delta = (A u).u`` and ``rnorm2 = r.r`` (``u = M^-1 r``) share one
    batched :func:`~repro.machine.spmd.allreduce_vec`.
    """

    def __init__(self, matrix, b, x0=None, criterion=None, maxiter=None,
                 fused: bool = False, reproducible: bool = False):
        super().__init__(matrix, b, x0, criterion, maxiter,
                         reproducible=reproducible)
        A = as_matrix(matrix)
        d = A.diagonal()
        if (d == 0).any():
            raise ValueError("Jacobi preconditioner needs a zero-free diagonal")
        self.inv_diag = 1.0 / d
        self.fused = bool(fused)

    def __call__(self, rank: int, size: int):
        if self.fused:
            result = yield from self._run_fused(rank, size)
        else:
            result = yield from self._run_classic(rank, size)
        return result

    def _run_classic(self, rank: int, size: int):
        indices, data = self.indices, self.data
        crit, maxiter = self.crit, self.maxiter
        lo, hi, seg, local_nnz, row_ids = self._local(rank, size)
        x = self.x_start[lo:hi].copy()
        bb = self.b[lo:hi].copy()
        inv_d = self.inv_diag[lo:hi]

        def matvec(v_full):
            out = np.zeros(hi - lo)
            np.add.at(out, row_ids, data[seg] * v_full[indices[seg]])
            return out

        if np.any(self.x_start):
            blocks = yield from spmd.allgather(rank, size, x)
            ax = matvec(np.concatenate(blocks))
            yield Compute(2.0 * local_nnz)
            r = bb - ax
        else:
            r = bb.copy()

        bnorm2 = yield from self._dot(rank, size, bb, bb)
        yield Compute(2.0 * bb.size)
        bnorm = np.sqrt(bnorm2)
        rnorm2 = yield from self._dot(rank, size, r, r)
        yield Compute(2.0 * r.size)
        residuals = [float(np.sqrt(max(0.0, rnorm2)))]
        if crit.satisfied(residuals[-1], bnorm):
            return x, residuals, True, 0

        z = inv_d * r  # Jacobi apply: local, one divide each
        yield Compute(float(hi - lo))
        p = z.copy()
        rho = yield from self._dot(rank, size, r, z)
        yield Compute(2.0 * r.size)

        converged = False
        iterations = 0
        for k in range(1, maxiter + 1):
            blocks = yield from spmd.allgather(rank, size, p)
            q = matvec(np.concatenate(blocks))
            yield Compute(2.0 * local_nnz)
            pq = yield from self._dot(rank, size, p, q)
            yield Compute(2.0 * p.size)
            if pq == 0.0:
                break
            alpha = rho / pq
            x += alpha * p
            r -= alpha * q
            yield Compute(4.0 * p.size)
            rnorm2 = yield from self._dot(rank, size, r, r)
            yield Compute(2.0 * r.size)
            residuals.append(float(np.sqrt(max(0.0, rnorm2))))
            iterations = k
            if crit.satisfied(residuals[-1], bnorm):
                converged = True
                break
            z = inv_d * r
            yield Compute(float(hi - lo))
            rho0 = rho
            rho = yield from self._dot(rank, size, r, z)
            yield Compute(2.0 * r.size)
            beta = rho / rho0
            p = beta * p + z  # saypx
            yield Compute(2.0 * p.size)
        return x, residuals, converged, iterations

    def _run_fused(self, rank: int, size: int):
        indices, data = self.indices, self.data
        crit, maxiter = self.crit, self.maxiter
        lo, hi, seg, local_nnz, row_ids = self._local(rank, size)
        x = self.x_start[lo:hi].copy()
        bb = self.b[lo:hi].copy()
        inv_d = self.inv_diag[lo:hi]

        def matvec(v_full):
            out = np.zeros(hi - lo)
            np.add.at(out, row_ids, data[seg] * v_full[indices[seg]])
            return out

        if np.any(self.x_start):
            blocks = yield from spmd.allgather(rank, size, x)
            ax = matvec(np.concatenate(blocks))
            yield Compute(2.0 * local_nnz)
            r = bb - ax
        else:
            r = bb.copy()

        u = inv_d * r  # Jacobi apply: local, one divide each
        yield Compute(float(hi - lo))
        blocks = yield from spmd.allgather(rank, size, u)
        w = matvec(np.concatenate(blocks))
        yield Compute(2.0 * local_nnz)
        # one fused reduction carries gamma = r.u, delta = (A u).u, the
        # stopping norm r.r, and (first trip only) b.b
        packed = yield from self._dots(
            rank, size, [(r, u), (w, u), (r, r), (bb, bb)]
        )
        yield Compute(8.0 * r.size)
        gamma, delta = packed[0], packed[1]
        bnorm = float(np.sqrt(packed[3]))
        residuals = [float(np.sqrt(max(0.0, packed[2])))]
        if crit.satisfied(residuals[-1], bnorm):
            return x, residuals, True, 0
        if delta == 0.0:
            return x, residuals, False, 0
        alpha = gamma / delta
        p = u.copy()
        s = w.copy()

        converged = False
        iterations = 0
        for k in range(1, maxiter + 1):
            x += alpha * p
            r -= alpha * s
            yield Compute(4.0 * r.size)
            u = inv_d * r
            yield Compute(float(hi - lo))
            blocks = yield from spmd.allgather(rank, size, u)
            w = matvec(np.concatenate(blocks))
            yield Compute(2.0 * local_nnz)
            packed = yield from self._dots(
                rank, size, [(r, u), (w, u), (r, r)]
            )
            yield Compute(6.0 * r.size)
            gamma_new, delta = packed[0], packed[1]
            residuals.append(float(np.sqrt(max(0.0, packed[2]))))
            iterations = k
            if crit.satisfied(residuals[-1], bnorm):
                converged = True
                break
            beta = gamma_new / gamma
            denom = delta - beta * gamma_new / alpha
            if denom == 0.0:
                break
            alpha = gamma_new / denom
            gamma = gamma_new
            p = u + beta * p
            s = w + beta * s
            yield Compute(4.0 * r.size)
        return x, residuals, converged, iterations


class ResilientCGProgram(_RowBlockProgram):
    """Fault-tolerant row-block SPMD CG: runs unchanged on both backends.

    The numerics are exactly :class:`CGRankProgram`'s -- same update order,
    same binomial-tree collectives -- so a fault-free run returns a
    bitwise-identical solution.  On top of that it layers, all optional and
    all backend-portable:

    * **coordinated checkpoints** every ``checkpoint_interval`` iterations
      (plus iteration 0): each rank keeps a local snapshot for in-program
      rollback *and* publishes it with a
      :class:`~repro.machine.events.Checkpoint` op, so the substrate's
      stable store always holds a restart point for fail-stop recovery
      (:func:`repro.backend.solve.run_with_recovery`);
    * **sanity audits** every ``sanity_interval`` iterations and before
      declaring convergence: the true residual ``||b - A x||`` is
      recomputed (one extra allgather + mat-vec + allreduce) and compared
      with the recurrence residual.  All ranks see identical reduced
      values, so they reach the rollback decision simultaneously without
      extra coordination.  More than ``max_restarts`` rollbacks raises
      :class:`~repro.core.resilience.RecoveryExhaustedError`;
    * **reliable transport** (``reliable=True``): collectives run over the
      stop-and-wait ARQ of :mod:`repro.machine.reliable`, masking dropped,
      duplicated and corrupted messages at a measurable retransmission
      cost;
    * **ABFT checks** (``abft=True``): dot-product reductions carry
      duplicate sums and the mat-vec is column-checksum verified
      (:mod:`repro.backend.abft`), raising
      :class:`~repro.backend.abft.AbftChecksumError` on silent in-flight
      corruption the instant it happens;
    * **state-corruption injection**: a ``faults`` plan's scheduled
      :class:`~repro.machine.faults.StateCorruption` entries are applied
      to this rank's local block (consumed-once, so a rollback's replay is
      clean) -- the adversary the audits exist to catch.

    A recovery driver restarts a crashed run by setting ``restart`` to the
    ``(iteration, {rank: snapshot})`` pair of the newest complete
    checkpoint; every rank then resumes from that coordinated state.  Each
    rank returns ``(x_block, residuals, converged, iterations, extras)``
    with recovery telemetry in ``extras``.

    ``fused=True`` layers all of the above on the single-reduction
    recurrence of :class:`CGRankProgram`: one batched
    ``allreduce_vec`` per iteration carries ``gamma``/``delta`` -- with
    ``abft=True`` their duplicate-sum slots *and* the mat-vec column
    checksum ride in the same packed message (6 words instead of three
    separate latency trees).  Checkpoints then snapshot the extra
    recurrence state (``s``, ``gamma``, ``alpha``) so restarts resume the
    fused iteration exactly.
    """

    def __init__(
        self,
        matrix,
        b: np.ndarray,
        x0: Optional[np.ndarray] = None,
        criterion: Optional[StoppingCriterion] = None,
        maxiter: Optional[int] = None,
        checkpoint_interval: int = 10,
        sanity_interval: int = 5,
        sanity_rtol: float = 1.0e-6,
        max_restarts: int = 4,
        faults: Optional[FaultPlan] = None,
        reliable: bool = False,
        reliable_config: Optional[ReliableConfig] = None,
        abft: bool = False,
        abft_rtol: float = 1.0e-8,
        layout=None,
        fused: bool = False,
        reproducible: bool = False,
    ):
        super().__init__(matrix, b, x0, criterion, maxiter, layout=layout,
                         reproducible=reproducible)
        self.fused = bool(fused)
        if checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if sanity_interval < 1:
            raise ValueError("sanity_interval must be >= 1")
        self.checkpoint_interval = int(checkpoint_interval)
        self.sanity_interval = int(sanity_interval)
        self.sanity_rtol = float(sanity_rtol)
        self.max_restarts = int(max_restarts)
        self.faults = faults
        self.reliable = bool(reliable)
        self.reliable_config = reliable_config
        self.abft = bool(abft)
        self.abft_rtol = float(abft_rtol)
        self.colsum, self.abs_colsum = (
            column_checksums(self.n, self.indices, self.data)
            if self.abft
            else (None, None)
        )
        #: set by the recovery driver: (iteration, {rank: snapshot})
        self.restart: Optional[Tuple[int, Dict[int, Dict[str, Any]]]] = None

    # ------------------------------------------------------------------ #
    def __call__(self, rank: int, size: int):
        if self.fused:
            result = yield from self._run_fused(rank, size)
        else:
            result = yield from self._run_classic(rank, size)
        return result

    def _run_classic(self, rank: int, size: int):
        indices, data = self.indices, self.data
        crit, maxiter = self.crit, self.maxiter
        lo, hi, seg, local_nnz, row_ids = self._local(rank, size)
        bb = self.b[lo:hi].copy()
        plan = self.faults.for_rank(rank) if self.faults is not None else None
        ep = (
            ReliableEndpoint(rank, self.reliable_config)
            if self.reliable
            else None
        )

        def allreduce(value, tag=3):
            if ep is not None:
                out = yield from rel.allreduce_sum(ep, rank, size, value, tag=tag)
            else:
                out = yield from spmd.allreduce_sum(rank, size, value, tag=tag)
            return out

        def allgather(value, tag=7):
            if ep is not None:
                out = yield from rel.allgather(ep, rank, size, value, tag=tag)
            else:
                out = yield from spmd.allgather(rank, size, value, tag=tag)
            return out

        def dot(a, b, tag, what):
            # duplicate-sum ABFT: both slots (or, reproducible, both limb
            # blocks) see the identical addition sequence, so exact
            # equality of the reduced copies is the corruption detector
            if self.reproducible:
                blk = dot_slots(a, b)
                blocks = [blk, blk] if self.abft else [blk]
                red = yield from allreduce(pack_slots(blocks), tag=tag)
                vals = [render_slots(s)
                        for s in unpack_slots(red, len(blocks))]
                if self.abft:
                    return decode_dot(np.array(vals), what)
                return vals[0]
            value = float(a @ b)
            if self.abft:
                pair = yield from allreduce(encode_dot(value), tag=tag)
                return decode_dot(pair, what)
            out = yield from allreduce(value, tag=tag)
            return out

        def matvec(v_full):
            out = np.zeros(hi - lo)
            np.add.at(out, row_ids, data[seg] * v_full[indices[seg]])
            return out

        rollbacks = 0
        audits = 0
        checkpoints_published = 0
        last_snap: Optional[Dict[str, Any]] = None

        def snapshot(k, x, r, p, rho, rho0, residuals, iterations, bnorm):
            return {
                "k": k,
                "x": x.copy(),
                "r": r.copy(),
                "p": p.copy(),
                "rho": rho,
                "rho0": rho0,
                "residuals": list(residuals),
                "iterations": iterations,
                "bnorm": bnorm,
            }

        # ---------------- initial state (fresh or restarted) ----------- #
        if self.restart is not None:
            k0, snaps = self.restart
            snap = snaps[rank]
            if snap["k"] != k0:  # pragma: no cover - driver invariant
                raise ValueError("restart snapshot iteration mismatch")
            x = snap["x"].copy()
            r = snap["r"].copy()
            p = snap["p"].copy()
            rho, rho0 = snap["rho"], snap["rho0"]
            residuals = list(snap["residuals"])
            iterations = snap["iterations"]
            bnorm = snap["bnorm"]
            k = k0
            last_snap = snapshot(k, x, r, p, rho, rho0, residuals,
                                 iterations, bnorm)
            restarted_from: Optional[int] = k0
        else:
            x = self.x_start[lo:hi].copy()
            if np.any(self.x_start):
                blocks = yield from allgather(x)
                ax = matvec(np.concatenate(blocks))
                yield Compute(2.0 * local_nnz)
                r = bb - ax
            else:
                r = bb.copy()
            p = r.copy()
            bnorm2 = yield from dot(bb, bb, 3, "b·b")
            yield Compute(2.0 * bb.size)
            bnorm = float(np.sqrt(bnorm2))
            rho = yield from dot(r, r, 3, "r·r")
            yield Compute(2.0 * r.size)
            rho0 = rho
            residuals = [float(np.sqrt(max(0.0, rho)))]
            iterations = 0
            k = 0
            restarted_from = None
            last_snap = snapshot(0, x, r, p, rho, rho0, residuals,
                                 iterations, bnorm)
            yield Compute(3.0 * x.size)  # checkpoint copy cost (x, r, p)
            yield Checkpoint(iteration=0, payload=last_snap)
            checkpoints_published += 1
            if crit.satisfied(residuals[-1], bnorm):
                return x, residuals, True, 0, self._extras(
                    rollbacks, audits, checkpoints_published, restarted_from,
                    ep, plan,
                )

        # ---------------- main loop ------------------------------------ #
        converged = False
        while k < maxiter:
            k += 1
            if plan is not None:
                corr = plan.take_state_corruption(k, rank)
                if corr is not None:
                    target = {"x": x, "r": r, "p": p}[corr.target]
                    if target.size:
                        i = plan.draw_index(target.size)
                        target[i] += (1.0 + abs(target[i])) * corr.scale
            if k > 1:
                beta = rho / rho0
                p = beta * p + r  # saypx
                yield Compute(2.0 * p.size)
            blocks = yield from allgather(p)
            p_full = np.concatenate(blocks)
            q = matvec(p_full)
            yield Compute(2.0 * local_nnz)
            if self.abft:
                # one fused reduction: duplicate-sum p·q plus the mat-vec
                # column checksum, 4 words instead of 1
                if self.reproducible:
                    pq_blk, qs_blk = dot_slots(p, q), sum_slots(q)
                    red = yield from allreduce(
                        pack_slots([pq_blk, pq_blk, qs_blk, qs_blk]), tag=3
                    )
                    vals = [render_slots(s) for s in unpack_slots(red, 4)]
                    pq = decode_dot(np.array(vals[:2]), "p·q")
                    q_total = decode_dot(np.array(vals[2:]), "sum(A p)")
                else:
                    vec = np.array([float(p @ q)] * 2 + [float(q.sum())] * 2)
                    red = yield from allreduce(vec, tag=3)
                    pq = decode_dot(red[:2], "p·q")
                    q_total = decode_dot(red[2:], "sum(A p)")
                check_matvec(q_total, self.colsum, self.abs_colsum, p_full,
                             self.abft_rtol)
            else:
                pq = yield from dot(p, q, 3, "p·q")
            yield Compute(2.0 * p.size)
            if pq == 0.0:
                break
            alpha = rho / pq
            x += alpha * p
            r -= alpha * q
            yield Compute(4.0 * p.size)
            rho0 = rho
            rho = yield from dot(r, r, 3, "r·r")
            yield Compute(2.0 * r.size)
            residuals.append(float(np.sqrt(max(0.0, rho))))
            iterations = k
            stopping = crit.satisfied(residuals[-1], bnorm)
            need_ckpt = k % self.checkpoint_interval == 0
            if stopping or need_ckpt or k % self.sanity_interval == 0:
                # sanity audit: recompute ||b - A x|| from scratch; every
                # rank sees the same reduced values, so all roll back (or
                # none do) without further coordination
                audits += 1
                x_blocks = yield from allgather(x, tag=21)
                ax = matvec(np.concatenate(x_blocks))
                yield Compute(2.0 * local_nnz)
                d = bb - ax
                true2 = yield from dot(d, d, 23, "audit")
                yield Compute(2.0 * d.size)
                true_norm = float(np.sqrt(max(0.0, true2)))
                if abs(true_norm - residuals[-1]) > self.sanity_rtol * max(
                    bnorm, 1.0e-300
                ):
                    rollbacks += 1
                    if rollbacks > self.max_restarts:
                        raise RecoveryExhaustedError(
                            f"rank {rank}: sanity audit failed at iteration "
                            f"{k} (recurrence {residuals[-1]:.3e} vs true "
                            f"{true_norm:.3e}) after "
                            f"{rollbacks - 1} rollbacks",
                            attempts=[{
                                "outcome": "audit_rollback_exhausted",
                                "rank": rank,
                                "iteration": k,
                                "rollbacks": rollbacks - 1,
                            }],
                        )
                    snap = last_snap
                    x = snap["x"].copy()
                    r = snap["r"].copy()
                    p = snap["p"].copy()
                    rho, rho0 = snap["rho"], snap["rho0"]
                    residuals = list(snap["residuals"])
                    iterations = snap["iterations"]
                    k = snap["k"]
                    yield Compute(3.0 * x.size)  # restore copy cost
                    continue
            if need_ckpt:
                last_snap = snapshot(k, x, r, p, rho, rho0, residuals,
                                     iterations, bnorm)
                yield Compute(3.0 * x.size)  # checkpoint copy cost
                yield Checkpoint(iteration=k, payload=last_snap)
                checkpoints_published += 1
            if stopping:
                converged = True
                break
        return x, residuals, converged, iterations, self._extras(
            rollbacks, audits, checkpoints_published, restarted_from, ep, plan,
        )

    # ------------------------------------------------------------------ #
    def _run_fused(self, rank: int, size: int):
        indices, data = self.indices, self.data
        crit, maxiter = self.crit, self.maxiter
        lo, hi, seg, local_nnz, row_ids = self._local(rank, size)
        bb = self.b[lo:hi].copy()
        plan = self.faults.for_rank(rank) if self.faults is not None else None
        ep = (
            ReliableEndpoint(rank, self.reliable_config)
            if self.reliable
            else None
        )

        def allreduce_vec(values, tag=3):
            if ep is not None:
                out = yield from rel.allreduce_vec(ep, rank, size, values,
                                                   tag=tag)
            else:
                out = yield from spmd.allreduce_vec(rank, size, values,
                                                    tag=tag)
            return out

        def allgather(value, tag=7):
            if ep is not None:
                out = yield from rel.allgather(ep, rank, size, value, tag=tag)
            else:
                out = yield from spmd.allgather(rank, size, value, tag=tag)
            return out

        def dot(a, b, tag, what):
            if self.reproducible:
                blk = dot_slots(a, b)
                blocks = [blk, blk] if self.abft else [blk]
                red = yield from allreduce_vec(pack_slots(blocks), tag=tag)
                vals = [render_slots(s)
                        for s in unpack_slots(red, len(blocks))]
                if self.abft:
                    return decode_dot(np.array(vals), what)
                return vals[0]
            value = float(a @ b)
            if self.abft:
                pair = yield from allreduce_vec(encode_dot(value), tag=tag)
                return decode_dot(pair, what)
            out = yield from allreduce_vec(np.array([value]), tag=tag)
            return float(out[0])

        def matvec(v_full):
            out = np.zeros(hi - lo)
            np.add.at(out, row_ids, data[seg] * v_full[indices[seg]])
            return out

        def fused_iteration_reduce(r, w, r_full, extra=()):
            """One packed reduction: gamma = r.r, delta = w.r (+ extras).

            With ABFT every dot slot travels duplicated and the mat-vec
            column checksum rides along, so silent in-flight corruption
            of the *single* per-iteration message is still caught.
            ``extra`` appends more dot pairs ``(a, b)`` (the first trip
            adds ``(b, b)``).  With ``reproducible=True`` every slot
            becomes a superaccumulator limb block and the duplicate-copy
            check compares exactly-rendered values.
            """
            if self.reproducible:
                base = [dot_slots(r, r), dot_slots(w, r)]
                ex = [dot_slots(a, b) for a, b in extra]
                if self.abft:
                    blocks = []
                    for blk in base + [sum_slots(w)] + ex:
                        blocks += [blk, blk]
                    red = yield from allreduce_vec(pack_slots(blocks))
                    vals = [render_slots(s)
                            for s in unpack_slots(red, len(blocks))]
                    gamma = decode_dot(np.array(vals[0:2]), "r·r")
                    delta = decode_dot(np.array(vals[2:4]), "(A r)·r")
                    w_total = decode_dot(np.array(vals[4:6]), "sum(A r)")
                    check_matvec(w_total, self.colsum, self.abs_colsum,
                                 r_full, self.abft_rtol)
                    rest = [
                        decode_dot(np.array(vals[6 + 2 * i:8 + 2 * i]),
                                   "setup")
                        for i in range(len(ex))
                    ]
                else:
                    blocks = base + ex
                    red = yield from allreduce_vec(pack_slots(blocks))
                    vals = [render_slots(s)
                            for s in unpack_slots(red, len(blocks))]
                    gamma, delta = vals[0], vals[1]
                    rest = vals[2:]
                return gamma, delta, rest
            g, d = float(r @ r), float(w @ r)
            ex = [float(a @ b) for a, b in extra]
            if self.abft:
                slots = [g, g, d, d, float(w.sum()), float(w.sum())]
                slots += [v for pair in ex for v in (pair, pair)]
                red = yield from allreduce_vec(np.array(slots))
                gamma = decode_dot(red[0:2], "r·r")
                delta = decode_dot(red[2:4], "(A r)·r")
                w_total = decode_dot(red[4:6], "sum(A r)")
                check_matvec(w_total, self.colsum, self.abs_colsum, r_full,
                             self.abft_rtol)
                rest = [decode_dot(red[6 + 2 * i:8 + 2 * i], "setup")
                        for i in range(len(ex))]
            else:
                red = yield from allreduce_vec(np.array([g, d, *ex]))
                gamma, delta = float(red[0]), float(red[1])
                rest = [float(v) for v in red[2:]]
            return gamma, delta, rest

        rollbacks = 0
        audits = 0
        checkpoints_published = 0
        last_snap: Optional[Dict[str, Any]] = None

        def snapshot(k, x, r, p, s, gamma, alpha, residuals, iterations,
                     bnorm):
            return {
                "k": k,
                "x": x.copy(),
                "r": r.copy(),
                "p": p.copy(),
                "s": s.copy(),
                "gamma": gamma,
                "alpha": alpha,
                "residuals": list(residuals),
                "iterations": iterations,
                "bnorm": bnorm,
            }

        # ---------------- initial state (fresh or restarted) ----------- #
        if self.restart is not None:
            k0, snaps = self.restart
            snap = snaps[rank]
            if snap["k"] != k0:  # pragma: no cover - driver invariant
                raise ValueError("restart snapshot iteration mismatch")
            x = snap["x"].copy()
            r = snap["r"].copy()
            p = snap["p"].copy()
            s = snap["s"].copy()
            gamma, alpha = snap["gamma"], snap["alpha"]
            residuals = list(snap["residuals"])
            iterations = snap["iterations"]
            bnorm = snap["bnorm"]
            k = k0
            last_snap = snapshot(k, x, r, p, s, gamma, alpha, residuals,
                                 iterations, bnorm)
            restarted_from: Optional[int] = k0
        else:
            x = self.x_start[lo:hi].copy()
            if np.any(self.x_start):
                blocks = yield from allgather(x)
                ax = matvec(np.concatenate(blocks))
                yield Compute(2.0 * local_nnz)
                r = bb - ax
            else:
                r = bb.copy()
            blocks = yield from allgather(r)
            r_full = np.concatenate(blocks)
            w = matvec(r_full)
            yield Compute(2.0 * local_nnz)
            gamma, delta, (bnorm2,) = yield from fused_iteration_reduce(
                r, w, r_full, extra=((bb, bb),)
            )
            yield Compute(6.0 * r.size)
            bnorm = float(np.sqrt(bnorm2))
            residuals = [float(np.sqrt(max(0.0, gamma)))]
            iterations = 0
            k = 0
            restarted_from = None
            if crit.satisfied(residuals[-1], bnorm) or delta == 0.0:
                return x, residuals, crit.satisfied(residuals[-1], bnorm), 0, \
                    self._extras(rollbacks, audits, checkpoints_published,
                                 restarted_from, ep, plan)
            alpha = gamma / delta
            p = r.copy()
            s = w.copy()
            last_snap = snapshot(0, x, r, p, s, gamma, alpha, residuals,
                                 iterations, bnorm)
            yield Compute(4.0 * x.size)  # checkpoint copy cost (x, r, p, s)
            yield Checkpoint(iteration=0, payload=last_snap)
            checkpoints_published += 1

        # ---------------- main loop ------------------------------------ #
        converged = False
        while k < maxiter:
            k += 1
            if plan is not None:
                corr = plan.take_state_corruption(k, rank)
                if corr is not None:
                    target = {"x": x, "r": r, "p": p}[corr.target]
                    if target.size:
                        i = plan.draw_index(target.size)
                        target[i] += (1.0 + abs(target[i])) * corr.scale
            x += alpha * p
            r -= alpha * s
            yield Compute(4.0 * r.size)
            blocks = yield from allgather(r)
            r_full = np.concatenate(blocks)
            w = matvec(r_full)
            yield Compute(2.0 * local_nnz)
            gamma_new, delta, _ = yield from fused_iteration_reduce(
                r, w, r_full
            )
            yield Compute(4.0 * r.size)
            residuals.append(float(np.sqrt(max(0.0, gamma_new))))
            iterations = k
            stopping = crit.satisfied(residuals[-1], bnorm)
            need_ckpt = k % self.checkpoint_interval == 0
            if stopping or need_ckpt or k % self.sanity_interval == 0:
                # sanity audit, exactly as in the classic variant: all
                # ranks compare identical reduced values, so they roll
                # back (or none do) without extra coordination
                audits += 1
                x_blocks = yield from allgather(x, tag=21)
                ax = matvec(np.concatenate(x_blocks))
                yield Compute(2.0 * local_nnz)
                d = bb - ax
                true2 = yield from dot(d, d, 23, "audit")
                yield Compute(2.0 * d.size)
                true_norm = float(np.sqrt(max(0.0, true2)))
                if abs(true_norm - residuals[-1]) > self.sanity_rtol * max(
                    bnorm, 1.0e-300
                ):
                    rollbacks += 1
                    if rollbacks > self.max_restarts:
                        raise RecoveryExhaustedError(
                            f"rank {rank}: sanity audit failed at iteration "
                            f"{k} (recurrence {residuals[-1]:.3e} vs true "
                            f"{true_norm:.3e}) after "
                            f"{rollbacks - 1} rollbacks",
                            attempts=[{
                                "outcome": "audit_rollback_exhausted",
                                "rank": rank,
                                "iteration": k,
                                "rollbacks": rollbacks - 1,
                            }],
                        )
                    snap = last_snap
                    x = snap["x"].copy()
                    r = snap["r"].copy()
                    p = snap["p"].copy()
                    s = snap["s"].copy()
                    gamma, alpha = snap["gamma"], snap["alpha"]
                    residuals = list(snap["residuals"])
                    iterations = snap["iterations"]
                    k = snap["k"]
                    yield Compute(4.0 * x.size)  # restore copy cost
                    continue
            if stopping:
                converged = True
                break
            beta = gamma_new / gamma
            denom = delta - beta * gamma_new / alpha
            if denom == 0.0:
                break
            alpha = gamma_new / denom
            gamma = gamma_new
            p = r + beta * p
            s = w + beta * s
            yield Compute(4.0 * r.size)
            if need_ckpt:
                last_snap = snapshot(k, x, r, p, s, gamma, alpha, residuals,
                                     iterations, bnorm)
                yield Compute(4.0 * x.size)  # checkpoint copy cost
                yield Checkpoint(iteration=k, payload=last_snap)
                checkpoints_published += 1
        return x, residuals, converged, iterations, self._extras(
            rollbacks, audits, checkpoints_published, restarted_from, ep, plan,
        )

    @staticmethod
    def _extras(rollbacks, audits, checkpoints_published, restarted_from,
                ep, plan) -> Dict[str, Any]:
        return {
            "rollbacks": rollbacks,
            "audits": audits,
            "checkpoints_published": checkpoints_published,
            "restarted_from": restarted_from,
            "telemetry": dict(ep.telemetry) if ep is not None else {},
            "fault_stats": plan.stats.as_dict() if plan is not None else {},
        }


class PingPongProgram:
    """Two-rank ping-pong microbenchmark for host calibration.

    Rank 0 sends an ``m``-word array to rank 1, which echoes it back;
    rank 0 times the round trip with ``perf_counter``.  Returns, on rank
    0, a list of ``(m_words, best_round_trip_seconds)`` samples; the
    calibration fit halves them and regresses against
    ``t_startup + m · t_comm``.  Only meaningful on the process backend
    (on the simulator the measured times are just interpreter overhead).
    """

    def __init__(self, sizes=(1, 64, 256, 1024, 4096, 16384), repeats: int = 7):
        self.sizes = tuple(int(s) for s in sizes)
        self.repeats = int(repeats)
        if min(self.sizes) < 1 or self.repeats < 1:
            raise ValueError("sizes and repeats must be positive")

    def __call__(self, rank: int, size: int):
        if size != 2:
            raise ValueError("PingPongProgram needs exactly 2 ranks")
        samples = []
        for m in self.sizes:
            payload = np.zeros(m, dtype=np.float64)
            best = float("inf")
            for _ in range(self.repeats):
                if rank == 0:
                    t0 = time.perf_counter()
                    yield Send(dest=1, payload=payload, tag=11)
                    payload = yield Recv(source=1, tag=12)
                    best = min(best, time.perf_counter() - t0)
                else:
                    payload = yield Recv(source=0, tag=11)
                    yield Send(dest=0, payload=payload, tag=12)
            if rank == 0:
                samples.append((m, best))
        return samples if rank == 0 else None
