"""Chaos harness: seeded randomized fault schedules on both backends.

The contract this harness enforces is the robustness north-star in one
sentence: **under any seeded fault schedule, a fault-tolerant solve either
converges to the reference solution or fails with a classified, typed
error** -- never a hang, never a silently wrong answer, never an anonymous
stack trace.

Per seed, :func:`chaos_plan` draws a fault mix from one NumPy generator:
message-fault probabilities (drop / duplicate / corrupt / delay), possibly
a silent state corruption of ``x`` or ``r`` (the targets the sanity audit
can detect), and possibly a mid-solve fail-stop crash.  The same seed
produces the same mix on both backends; only the crash *trigger* is
substrate-native -- a simulated-time :class:`~repro.machine.faults.RankCrash`
on the simulated machine, a checkpoint-triggered SIGKILL
(``crash_on_checkpoint``) on the process backend, where virtual time does
not exist.

Each run goes through :func:`repro.backend.solve.backend_solve` with
resilience on, i.e. the full stack under test: Comm-level injection,
reliable ARQ transport, in-program audits/rollbacks, substrate crash
injection and the respawn-from-checkpoint recovery driver.  The outcome is
compared against a fault-free reference solve and classified by
:func:`classify_failure`; an *unclassified* exception propagates and fails
the harness, because an unknown failure mode is exactly what chaos testing
exists to surface.

``repro chaos`` (the CLI) and benchmark E21 are thin wrappers over
:func:`chaos_sweep` / :func:`format_report`.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..core.resilience import RecoveryExhaustedError, ResilienceConfig
from ..core.stopping import StoppingCriterion
from ..machine.faults import FaultPlan, RankCrash, RankSlowdown, StateCorruption
from ..machine.reliable import ReliableConfig
from ..machine.scheduler import DeadlockError
from ..hpcg.program import HPCG_PRECONDS
from ..hpcg.solve import hpcg_solve
from ..sparse.generators import poisson1d, rhs_for_solution
from .abft import AbftChecksumError
from .base import (
    BackendTimeoutError,
    WorkerCrashedError,
    WorkerFailedError,
)
from .process import ProcessBackend
from .simulated import SimulatedBackend
from .solve import backend_solve

__all__ = [
    "ChaosOutcome",
    "chaos_plan",
    "chaos_run",
    "chaos_sweep",
    "classify_failure",
    "format_report",
    "CHAOS_BACKENDS",
    "CHAOS_SCENARIOS",
]

CHAOS_BACKENDS = ("simulated", "process")

#: chaos workloads: the 1-D Poisson CG baseline and the HPCG-class
#: 27-point stencil solve (preconditioned, subcube-distributed, ABFT on)
CHAOS_SCENARIOS = ("poisson1d", "stencil27")

#: default 3-D grid for the ``stencil27`` scenario
_STENCIL_SHAPE = (6, 6, 6)

#: outcome labels every chaos run must land on
CONVERGED = "converged"
#: converged on fewer ranks than it started with (a shrink happened)
DEGRADED = "degraded"
_FAILURE_LABELS = {
    "RecoveryExhaustedError": "recovery_exhausted",
    "AbftChecksumError": "abft_detected",
    "RankFailedError": "rank_failed",
    "WorkerCrashedError": "worker_crashed",
    "StragglerDetectedError": "straggler",
    "BackendTimeoutError": "timeout",
    "RecvTimeoutError": "timeout",
    "DeadlockError": "deadlock",
}


def _chaos_problem(n: int):
    """The fixed chaos test problem: 1-D Poisson with a known solution."""
    A = poisson1d(n)
    x_true = np.linspace(1.0, 2.0, n)
    return A, rhs_for_solution(A, x_true)


def classify_failure(exc: BaseException) -> Optional[str]:
    """Map an exception to its chaos outcome label, or ``None`` if unknown.

    Process-backend workers report errors as a
    :class:`~repro.backend.base.WorkerFailedError` whose message embeds the
    worker-side exception name, so classification falls back to scanning
    the message for the known types before giving up.
    """
    for cls_name, label in _FAILURE_LABELS.items():
        if type(exc).__name__ == cls_name:
            return label
    for base in type(exc).__mro__:
        if base.__name__ in _FAILURE_LABELS:
            return _FAILURE_LABELS[base.__name__]
    if isinstance(exc, WorkerFailedError):
        text = str(exc)
        for cls_name, label in _FAILURE_LABELS.items():
            if cls_name in text:
                return label
        return "worker_failed"
    return None


@dataclass
class ChaosOutcome:
    """One seeded chaos run's verdict and accounting."""

    seed: int
    backend: str
    nprocs: int
    n: int
    outcome: str  #: ``"converged"`` or a label from :func:`classify_failure`
    converged_to_reference: bool
    max_abs_err: float
    iterations: int
    elapsed: float  #: harness wall-clock for the whole run, seconds
    planned: Dict[str, Any] = field(default_factory=dict)
    injected: Dict[str, Any] = field(default_factory=dict)
    retransmissions: float = 0.0
    rollbacks: int = 0
    attempts: int = 1
    crashes_recovered: List[int] = field(default_factory=list)
    restart_iterations: List[int] = field(default_factory=list)
    recovery_wall: float = 0.0
    error: str = ""
    policy: str = "respawn"
    stragglers_detected: List[int] = field(default_factory=list)
    final_nprocs: int = 0  #: 0 = never set (pre-degraded-mode outcome)
    scenario: str = "poisson1d"  #: workload the seed ran against
    precond: str = ""  #: preconditioner (stencil27 runs; "" for poisson1d)

    @property
    def ok(self) -> bool:
        """The chaos contract held for this run."""
        if self.outcome in (CONVERGED, DEGRADED):
            return self.converged_to_reference
        return True  # a classified failure is a contract-respecting outcome

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready record of this run (``repro chaos --json``).

        Plain ``asdict`` plus the derived ``ok`` verdict; non-finite
        floats (``max_abs_err`` is NaN on a failed run) are nulled so the
        output is strict JSON.
        """
        out = asdict(self)
        out["ok"] = self.ok
        if not np.isfinite(self.max_abs_err):
            out["max_abs_err"] = None
        return out


def chaos_plan(
    seed: int,
    nprocs: int,
    allow_crash: bool = True,
    allow_straggler: bool = False,
) -> Dict[str, Any]:
    """Draw one seeded fault mix, expressed for both substrates.

    Returns ``{"plan": FaultPlan, "crash_on_checkpoint": {rank: iter},
    "planned": {...}}``.  ``plan`` carries the message faults, the state
    corruption, and (for the simulated backend) the ``RankCrash``;
    ``crash_on_checkpoint`` is the process backend's native expression of
    the same crash -- SIGKILL the victim when it publishes the chosen
    checkpoint.  Rank 0's blocks are never the corruption victim's
    exclusive... any rank can be hit; the draw is uniform.

    With ``allow_straggler`` the mix may also schedule one
    :class:`~repro.machine.faults.RankSlowdown` carrying both substrate
    expressions of the same fault: a compute-dilation ``factor`` large
    enough to trip a virtual-clock deadline on the simulator (baseline
    rank skew is about one message time, ~5e-5 s) and a real per-op
    ``op_delay`` long enough to trip a heartbeat deadline on the process
    backend.  The straggler draws come *after* every pre-existing draw,
    so plans with ``allow_straggler=False`` are bit-identical to older
    releases.
    """
    rng = np.random.default_rng(seed)
    drop = float(rng.uniform(0.0, 0.04))
    duplicate = float(rng.uniform(0.0, 0.04))
    corrupt = float(rng.uniform(0.0, 0.04))
    delay = float(rng.uniform(0.0, 0.04))

    corruptions = []
    if rng.random() < 0.5:
        corruptions.append(
            StateCorruption(
                iteration=int(rng.integers(2, 9)),
                target="x" if rng.random() < 0.5 else "r",
                rank=int(rng.integers(nprocs)),
                scale=float(10.0 ** rng.integers(2, 5)),
            )
        )

    crashes = []
    crash_on_checkpoint: Dict[int, int] = {}
    crash_planned = allow_crash and rng.random() < 0.5
    if crash_planned:
        victim = int(rng.integers(nprocs))
        ckpt = int(rng.integers(1, 4))  # after the 1st..3rd checkpoint
        # simulated trigger: a virtual time early enough to land mid-solve
        crashes.append(RankCrash(victim, float(rng.uniform(1e-4, 5e-3))))
        crash_on_checkpoint[victim] = ckpt

    slowdowns = []
    straggler_planned = allow_straggler and rng.random() < 0.6
    if straggler_planned:
        victim = int(rng.integers(nprocs))
        # simulated expression: dilate charged compute by 1e7..1e8.  CG is
        # bulk-synchronous, so peers' clocks are dragged up to the victim
        # at every halo exchange and the observable lag is roughly ONE
        # dilated op, not an accumulated drift; a single dilated matvec
        # segment must therefore exceed the harness deadline on its own.
        # Process expression: sleep 1.5..3 s per op, beyond a ~1 s
        # heartbeat deadline.  at_time=0 so even a fast solve exhibits
        # the fault.
        slowdowns.append(
            RankSlowdown(
                rank=victim,
                at_time=0.0,
                factor=float(10.0 ** rng.uniform(7.0, 8.0)),
                op_delay=float(rng.uniform(1.5, 3.0)),
            )
        )

    plan = FaultPlan(
        seed=seed,
        drop_prob=drop,
        duplicate_prob=duplicate,
        corrupt_prob=corrupt,
        delay_prob=delay,
        crashes=crashes,
        state_corruptions=corruptions,
        slowdowns=slowdowns,
    )
    planned = {
        "drop_prob": round(drop, 4),
        "duplicate_prob": round(duplicate, 4),
        "corrupt_prob": round(corrupt, 4),
        "delay_prob": round(delay, 4),
        "state_corruptions": len(corruptions),
        "crash": crash_planned,
        "straggler": straggler_planned,
    }
    return {
        "plan": plan,
        "crash_on_checkpoint": crash_on_checkpoint,
        "planned": planned,
    }


def chaos_run(
    seed: int,
    backend: str = "simulated",
    nprocs: int = 4,
    n: int = 48,
    timeout: float = 60.0,
    allow_crash: bool = True,
    reference_x: Optional[np.ndarray] = None,
    rtol: float = 1.0e-8,
    policy: str = "respawn",
    stragglers: bool = False,
    straggler_deadline: float = 1.0,
    reproducible: bool = False,
    scenario: str = "poisson1d",
    precond: str = "mg",
    shape: Optional[Sequence[int]] = None,
) -> ChaosOutcome:
    """Run one seeded chaos schedule and return its classified outcome.

    Any exception *not* classified by :func:`classify_failure` propagates:
    an unknown failure mode is a harness failure, not an outcome.

    ``stragglers`` admits seeded rank slowdowns to the fault mix and arms
    deadline-based detection on the substrate (virtual-clock lag on the
    simulator, heartbeat staleness on real processes).
    ``straggler_deadline`` is the *process-backend* deadline in wall
    seconds; the simulator uses a deadline matched to its virtual clock
    (20 message times).  ``policy`` picks the recovery response
    (:data:`~repro.backend.solve.RecoveryPolicy`); a solve that converges
    on fewer ranks than it started with is classified ``"degraded"`` and
    must still match the reference.

    ``reproducible=True`` *sharpens the contract*: the solve and its
    reference both run over superaccumulator reductions, whose results are
    invariant to rank count and recovery history -- so a converged run
    (and a degraded one: redistribution is an exact permutation and the
    restarted trajectory replays the same exact dots) must match the
    reference **bitwise**, ``max|err| == 0.0``, not merely to ``rtol``.
    The fault draw itself is untouched, so seeds map to the same schedules
    as in legacy (non-reproducible) runs.

    ``scenario`` picks the workload: ``"poisson1d"`` is the 1-D CG
    baseline above; ``"stencil27"`` runs the HPCG-class 27-point stencil
    solve (:func:`~repro.hpcg.solve.hpcg_solve`) with the ``precond``
    preconditioner on a ``shape`` grid (default ``(6, 6, 6)``), ABFT
    checks armed, under the *same* seeded fault draw -- the seed maps to
    one schedule regardless of workload.
    """
    if backend not in CHAOS_BACKENDS:
        raise ValueError(f"backend must be one of {CHAOS_BACKENDS}")
    if scenario not in CHAOS_SCENARIOS:
        raise ValueError(f"scenario must be one of {CHAOS_SCENARIOS}")
    criterion = StoppingCriterion(rtol=1e-10, atol=0.0)
    if scenario == "stencil27":
        if precond not in HPCG_PRECONDS:
            raise ValueError(f"precond must be one of {HPCG_PRECONDS}")
        if policy not in ("respawn", "shrink"):
            raise ValueError(
                "stencil27 chaos supports the 'respawn' and 'shrink' "
                "policies only (rebalancing would break the subcube halo)"
            )
        shape = tuple(int(s) for s in (shape or _STENCIL_SHAPE))
        n = int(np.prod(shape))
        if reference_x is None:
            reference_x = hpcg_solve(
                shape, backend="simulated", nprocs=nprocs, precond=precond,
                criterion=criterion, reproducible=reproducible,
            ).x
    else:
        A, b = _chaos_problem(n)
        if reference_x is None:
            reference_x = backend_solve(
                "cg", A, b, backend="simulated", nprocs=nprocs,
                criterion=criterion, reproducible=reproducible,
            ).x

    drawn = chaos_plan(seed, nprocs, allow_crash=allow_crash,
                       allow_straggler=stragglers)
    plan: FaultPlan = drawn["plan"]
    cfg = ResilienceConfig(
        checkpoint_interval=5,
        sanity_interval=5,
        max_restarts=8,
        # real-seconds ack timeouts for the process backend; on the
        # simulator the conservative stall-driven expiry makes the same
        # values safe (a fault-free receive never expires spuriously)
        reliable=ReliableConfig(base_timeout=0.05, max_retries=8),
    )
    # simulated deadline in *virtual* seconds: it must sit above the ARQ
    # retransmission timeout (base_timeout=0.05 below), or a single
    # injected message drop would stall a healthy rank past the deadline
    # and scapegoat it; 5x that still trips on a dilated rank within a
    # few iterations
    sim_deadline = 0.25 if stragglers else None
    if backend == "simulated":
        be = SimulatedBackend(
            faults=plan.substrate_plan(),
            straggler_deadline=sim_deadline,
        )
    else:
        proc_kwargs: Dict[str, Any] = dict(
            timeout=timeout,
            crash_on_checkpoint=dict(drawn["crash_on_checkpoint"]),
        )
        if stragglers:
            proc_kwargs["straggler_deadline"] = straggler_deadline
            proc_kwargs["heartbeat_interval"] = min(
                0.1, straggler_deadline / 4.0
            )
        be = ProcessBackend(**proc_kwargs)

    out = ChaosOutcome(
        seed=seed, backend=backend, nprocs=nprocs, n=n,
        outcome=CONVERGED, converged_to_reference=False,
        max_abs_err=float("nan"), iterations=0, elapsed=0.0,
        planned=drawn["planned"], policy=policy, final_nprocs=nprocs,
        scenario=scenario,
        precond=precond if scenario == "stencil27" else "",
    )
    t0 = time.perf_counter()
    try:
        if scenario == "stencil27":
            result = hpcg_solve(
                shape, backend=be, nprocs=nprocs, precond=precond,
                criterion=criterion, faults=plan, resilience=cfg,
                policy=policy, reproducible=reproducible, abft=True,
            )
        else:
            result = backend_solve(
                "cg", A, b, backend=be, nprocs=nprocs, criterion=criterion,
                faults=plan, resilience=cfg, policy=policy,
                reproducible=reproducible,
            )
    except Exception as exc:  # noqa: BLE001 - classified or re-raised
        label = classify_failure(exc)
        if label is None:
            raise  # unclassified: the chaos contract itself is broken
        out.outcome = label
        out.error = f"{type(exc).__name__}: {exc}"
        out.elapsed = time.perf_counter() - t0
        return out
    out.elapsed = time.perf_counter() - t0
    err = float(np.max(np.abs(result.x - reference_x)))
    out.max_abs_err = err
    if reproducible:
        # exact reductions: OK (and degraded-OK) means bitwise equality
        out.converged_to_reference = bool(result.converged) and err == 0.0
    else:
        scale = float(np.max(np.abs(reference_x))) or 1.0
        out.converged_to_reference = (
            bool(result.converged) and err <= rtol * scale
        )
    out.iterations = int(result.iterations)
    resil = result.extras.get("resilience", {}) or {}
    recov = result.extras.get("recovery", {}) or {}
    out.rollbacks = int(resil.get("rollbacks", 0))
    out.retransmissions = float(
        (resil.get("telemetry") or {}).get("retransmissions", 0)
    )
    out.injected = dict(result.extras.get("injected_faults") or {})
    out.attempts = int(recov.get("attempts", 1))
    out.crashes_recovered = list(recov.get("crashes_recovered", []))
    out.restart_iterations = list(recov.get("restart_iterations", []))
    out.recovery_wall = float(recov.get("recovery_wall", 0.0))
    out.stragglers_detected = list(recov.get("stragglers_detected", []))
    out.final_nprocs = int(recov.get("final_nprocs", nprocs))
    out.outcome = DEGRADED if out.final_nprocs < nprocs else CONVERGED
    return out


def chaos_sweep(
    seeds: Sequence[int],
    backends: Sequence[str] = CHAOS_BACKENDS,
    nprocs: int = 4,
    n: int = 48,
    timeout: float = 60.0,
    allow_crash: bool = True,
    policy: str = "respawn",
    stragglers: bool = False,
    straggler_deadline: float = 1.0,
    reproducible: bool = False,
    scenario: str = "poisson1d",
    precond: str = "mg",
    shape: Optional[Sequence[int]] = None,
) -> List[ChaosOutcome]:
    """Run every seed on every backend; reference computed once per sweep."""
    criterion = StoppingCriterion(rtol=1e-10, atol=0.0)
    if scenario == "stencil27":
        shape = tuple(int(s) for s in (shape or _STENCIL_SHAPE))
        n = int(np.prod(shape))
        reference = hpcg_solve(
            shape, backend="simulated", nprocs=nprocs, precond=precond,
            criterion=criterion, reproducible=reproducible,
        ).x
    else:
        A, b = _chaos_problem(n)
        reference = backend_solve(
            "cg", A, b, backend="simulated", nprocs=nprocs,
            criterion=criterion, reproducible=reproducible,
        ).x
    outcomes = []
    for backend in backends:
        for seed in seeds:
            outcomes.append(
                chaos_run(
                    seed, backend=backend, nprocs=nprocs, n=n,
                    timeout=timeout, allow_crash=allow_crash,
                    reference_x=reference, policy=policy,
                    stragglers=stragglers,
                    straggler_deadline=straggler_deadline,
                    reproducible=reproducible,
                    scenario=scenario, precond=precond, shape=shape,
                )
            )
    return outcomes


def format_report(outcomes: Sequence[ChaosOutcome]) -> str:
    """Fixed-width per-seed report table (the CI artifact / bench output)."""
    header = (
        f"{'seed':>5} {'backend':<9} {'outcome':<18} {'ref':<5} "
        f"{'max|err|':>10} {'iters':>5} {'att':>3} {'rb':>3} {'rtx':>5} "
        f"{'crash':>5} {'strag':>5} {'ranks':>5} {'rec_wall':>9} "
        f"{'faults (drop/dup/corr/delay)':<28}"
    )
    lines = [header, "-" * len(header)]
    for o in outcomes:
        inj = o.injected or {}
        faults = (
            f"{inj.get('dropped', 0)}/{inj.get('duplicated', 0)}"
            f"/{inj.get('corrupted', 0)}/{inj.get('delayed', 0)}"
        )
        ranks = o.final_nprocs if o.final_nprocs else o.nprocs
        lines.append(
            f"{o.seed:>5} {o.backend:<9} {o.outcome:<18} "
            f"{'yes' if o.converged_to_reference else 'no':<5} "
            f"{o.max_abs_err:>10.2e} {o.iterations:>5} {o.attempts:>3} "
            f"{o.rollbacks:>3} {o.retransmissions:>5.0f} "
            f"{len(o.crashes_recovered):>5} "
            f"{len(o.stragglers_detected):>5} {ranks:>5} "
            f"{o.recovery_wall:>9.3f} {faults:<28}"
        )
    ok = sum(1 for o in outcomes if o.ok)
    lines.append("-" * len(header))
    lines.append(
        f"contract held on {ok}/{len(outcomes)} runs "
        f"(converged-to-reference, degraded-converged, or classified failure)"
    )
    return "\n".join(lines)
