"""Fit the simulator's cost model to the host machine.

The paper's formulas price everything with three constants:
``t_startup`` (per-message latency), ``t_comm`` (per-word transfer time)
and ``t_flop`` (per floating-point operation).  The defaults model a
mid-1990s multicomputer; this module *measures* the three on the machine
you are sitting at, so that simulated times become predictions of real
process-backend times rather than just relative rankings.

* ``t_flop`` -- time a large DAXPY in-process and divide by its 2n flops
  (NumPy-achievable flop rate, which is what the rank programs run).
* ``t_startup``/``t_comm`` -- run the two-rank
  :class:`~repro.backend.programs.PingPongProgram` on the process
  backend, take the best-of-``repeats`` round trip per message size, and
  least-squares fit ``rt/2 = t_startup + m · t_comm``.  Best-of filters
  scheduler noise, the regression separates the fixed from the per-word
  cost exactly as the paper defines them.

The fitted :class:`~repro.machine.costmodel.CostModel` plugs straight
into a :class:`~repro.backend.simulated.SimulatedBackend`, which is how
benchmark E20 produces modelled-vs-measured tables in host units.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..machine.costmodel import CostModel
from .process import ProcessBackend
from .programs import PingPongProgram

__all__ = ["Calibration", "measure_t_flop", "measure_message_costs",
           "calibrate_host", "fit_message_model"]


@dataclass
class Calibration:
    """Host-fitted cost parameters plus the raw samples behind them."""

    t_startup: float
    t_comm: float
    t_flop: float
    #: (words, best one-way seconds) ping-pong samples
    message_samples: List[Tuple[int, float]] = field(default_factory=list)
    #: measured DAXPY flop rate (flop/s), informational
    flop_rate: float = 0.0

    def as_cost_model(self) -> CostModel:
        return CostModel(
            t_startup=self.t_startup, t_comm=self.t_comm, t_flop=self.t_flop
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "t_startup": self.t_startup,
            "t_comm": self.t_comm,
            "t_flop": self.t_flop,
            "flop_rate": self.flop_rate,
        }


def measure_t_flop(n: int = 1_000_000, repeats: int = 5) -> float:
    """Seconds per flop of an in-process DAXPY (best of ``repeats``)."""
    if n < 1 or repeats < 1:
        raise ValueError("n and repeats must be positive")
    rng = np.random.default_rng(0)
    x = rng.standard_normal(n)
    y = rng.standard_normal(n)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        y = y + 1.000000001 * x  # 2n flops, fresh output defeats caching tricks
        best = min(best, time.perf_counter() - t0)
    return best / (2.0 * n)


def fit_message_model(
    samples: Sequence[Tuple[int, float]]
) -> Tuple[float, float]:
    """Least-squares ``(t_startup, t_comm)`` from (words, one-way seconds).

    Robust to the noise a loaded host injects into ping-pong timing:

    * samples with non-finite, zero or negative times are discarded
      outright (a clock can step backwards under NTP adjustment);
    * a Theil-Sen baseline (median of pairwise slopes, median intercept)
      -- which a single wild sample cannot drag, unlike least squares --
      flags samples whose measured time exceeds 10x its prediction as
      scheduler hiccups, and the final least-squares fit runs on the
      survivors (never discarding below two samples).

    Clamps both constants to a tiny positive floor: on a fast host the
    intercept of a noisy fit can dip below zero, and the cost model
    rejects negative constants.
    """
    clean = [
        (int(m), float(t))
        for m, t in samples
        if np.isfinite(t) and t > 0.0 and m >= 0
    ]
    if len(clean) < 2:
        raise ValueError(
            "need at least two usable (words, time) samples to fit; got "
            f"{len(clean)} after discarding non-finite/non-positive times "
            f"from {len(list(samples))}"
        )

    m = np.array([p[0] for p in clean], dtype=float)
    t = np.array([p[1] for p in clean], dtype=float)
    pair_slopes = [
        (t[j] - t[i]) / (m[j] - m[i])
        for i in range(len(clean))
        for j in range(i + 1, len(clean))
        if m[j] != m[i]
    ]
    if pair_slopes:
        ts_slope = float(np.median(pair_slopes))
        ts_intercept = float(np.median(t - ts_slope * m))
        predicted = np.maximum(ts_intercept + ts_slope * m, 1.0e-12)
        keep = t <= 10.0 * predicted
    else:  # all sizes identical: no slope information to gate on
        keep = np.ones(len(clean), dtype=bool)
    if keep.sum() < 2:
        keep[:] = True
    slope, intercept = np.polyfit(m[keep], t[keep], 1)
    floor = 1.0e-12
    return max(float(intercept), floor), max(float(slope), floor)


def measure_message_costs(
    sizes: Sequence[int] = (1, 64, 256, 1024, 4096, 16384),
    repeats: int = 7,
    backend: Optional[ProcessBackend] = None,
) -> List[Tuple[int, float]]:
    """Ping-pong the process backend; returns (words, one-way seconds) samples."""
    be = backend if backend is not None else ProcessBackend(timeout=60.0)
    run = be.run(PingPongProgram(sizes=sizes, repeats=repeats), nprocs=2)
    round_trips = run.results[0]
    return [(m, rt / 2.0) for m, rt in round_trips]


def calibrate_host(
    sizes: Sequence[int] = (1, 64, 256, 1024, 4096, 16384),
    repeats: int = 7,
    flop_n: int = 1_000_000,
    backend: Optional[ProcessBackend] = None,
) -> Calibration:
    """Measure ``t_startup``/``t_comm``/``t_flop`` on this host."""
    samples = measure_message_costs(sizes=sizes, repeats=repeats, backend=backend)
    t_startup, t_comm = fit_message_model(samples)
    t_flop = measure_t_flop(n=flop_n)
    return Calibration(
        t_startup=t_startup,
        t_comm=t_comm,
        t_flop=t_flop,
        message_samples=samples,
        flop_rate=1.0 / t_flop if t_flop > 0 else 0.0,
    )
