"""Cross-validate the simulated cost model against real-process execution.

The point of the backend abstraction: the *same* rank program runs on the
discrete-event simulator (modelled ``t_startup + m·t_comm`` time) and on
real OS processes (measured ``perf_counter`` time).  Because both drive
identical NumPy arithmetic through identical binomial-tree collectives,
the numerical outputs must be **bitwise identical** -- any divergence is a
backend bug, not rounding.  :func:`cross_validate` runs a solve on both,
checks that, and packages the modelled-vs-measured time decomposition
that benchmark E20 tabulates.

Terminology: *modelled* quantities come from the simulator's cost model,
*measured* ones from the process backend's wall clock.  Their ratio only
becomes meaningful after :mod:`repro.backend.calibrate` fits the cost
model's ``t_startup``/``t_comm``/``t_flop`` to the host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

import numpy as np

from ..core.result import SolveResult
from ..core.stopping import StoppingCriterion
from ..machine.faults import FaultPlan
from .base import ExecutionBackend, ProgramFactory
from .faulty import FaultInjectingProgram
from .process import ProcessBackend
from .simulated import SimulatedBackend
from .solve import backend_solve

__all__ = [
    "BackendMismatchError",
    "CrossValidation",
    "cross_validate",
    "hpcg_cross_validate",
    "FaultSequenceParity",
    "fault_sequence_parity",
]


class BackendMismatchError(AssertionError):
    """The two backends produced numerically different solver output."""


@dataclass
class CrossValidation:
    """Parity verdict + modelled-vs-measured timing for one solve."""

    solver: str
    n: int
    nprocs: int
    simulated: SolveResult
    process: SolveResult
    #: solver outputs agree bit for bit (x, residual history, iterations)
    bitwise_equal: bool
    iterations_equal: bool
    residuals_equal: bool
    max_abs_diff: float
    #: modelled (simulated) seconds: total / compute / comm
    modelled: Dict[str, float] = field(default_factory=dict)
    #: measured (process) seconds: total / compute / comm
    measured: Dict[str, float] = field(default_factory=dict)

    @property
    def time_ratio(self) -> float:
        """measured / modelled total time (1.0 = perfectly calibrated model)."""
        if self.modelled.get("total", 0.0) <= 0:
            return float("nan")
        return self.measured.get("total", float("nan")) / self.modelled["total"]

    def check(self) -> "CrossValidation":
        """Raise :class:`BackendMismatchError` unless outputs are bitwise equal."""
        if not self.bitwise_equal:
            raise BackendMismatchError(
                f"{self.solver} (n={self.n}, P={self.nprocs}): simulated and "
                f"process backends disagree -- max |Δx| = {self.max_abs_diff:.3e}, "
                f"iterations {self.simulated.iterations} vs "
                f"{self.process.iterations}, residual histories "
                f"{'equal' if self.residuals_equal else 'DIFFER'}"
            )
        return self

    def summary(self) -> str:
        return (
            f"{self.solver} n={self.n} P={self.nprocs}: "
            f"bitwise={'yes' if self.bitwise_equal else 'NO'} "
            f"iters={self.process.iterations} "
            f"modelled={self.modelled.get('total', float('nan')):.3e}s "
            f"measured={self.measured.get('total', float('nan')):.3e}s "
            f"ratio={self.time_ratio:.2f}"
        )


def cross_validate(
    solver: str,
    matrix,
    b: np.ndarray,
    nprocs: int = 2,
    x0: Optional[np.ndarray] = None,
    criterion: Optional[StoppingCriterion] = None,
    simulated: Optional[Union[SimulatedBackend, ExecutionBackend]] = None,
    process: Optional[Union[ProcessBackend, ExecutionBackend]] = None,
    strict: bool = True,
    fused: bool = False,
    reproducible: bool = False,
) -> CrossValidation:
    """Run one solve on both backends and compare.

    ``strict=True`` (default) raises :class:`BackendMismatchError` on any
    numerical divergence; ``strict=False`` returns the report and lets
    the caller decide.  ``simulated``/``process`` accept pre-configured
    backends (e.g. a custom calibrated cost model, a shorter timeout).
    ``fused=True`` cross-validates the single-reduction recurrence -- the
    packed allreduce must stay bitwise-deterministic across substrates
    just like the classic scalar trees.  ``reproducible=True`` runs both
    solves over superaccumulator reductions; cross-backend parity then
    holds *by construction*, so a mismatch flags transport corruption
    rather than reassociation.
    """
    sim_backend = simulated if simulated is not None else SimulatedBackend()
    proc_backend = process if process is not None else ProcessBackend()

    sim = backend_solve(solver, matrix, b, backend=sim_backend, nprocs=nprocs,
                        x0=x0, criterion=criterion, fused=fused,
                        reproducible=reproducible)
    proc = backend_solve(solver, matrix, b, backend=proc_backend, nprocs=nprocs,
                         x0=x0, criterion=criterion, fused=fused,
                         reproducible=reproducible)

    x_equal = sim.x.shape == proc.x.shape and bool(np.all(sim.x == proc.x))
    max_abs_diff = (
        float(np.max(np.abs(sim.x - proc.x))) if sim.x.shape == proc.x.shape
        else float("inf")
    )
    iters_equal = sim.iterations == proc.iterations
    res_equal = (
        sim.history.residual_norms == proc.history.residual_norms
    )
    report = CrossValidation(
        solver=solver,
        n=int(sim.x.size),
        nprocs=nprocs,
        simulated=sim,
        process=proc,
        bitwise_equal=x_equal and iters_equal and res_equal
        and sim.converged == proc.converged,
        iterations_equal=iters_equal,
        residuals_equal=res_equal,
        max_abs_diff=max_abs_diff,
        modelled=dict(sim.extras["timings"]),
        measured=dict(proc.extras["timings"]),
    )
    return report.check() if strict else report


def hpcg_cross_validate(
    shape,
    nprocs: int = 2,
    precond: str = "mg",
    fused: bool = False,
    reproducible: bool = False,
    criterion: Optional[StoppingCriterion] = None,
    simulated: Optional[Union[SimulatedBackend, ExecutionBackend]] = None,
    process: Optional[Union[ProcessBackend, ExecutionBackend]] = None,
    strict: bool = True,
    **kwargs,
) -> CrossValidation:
    """Cross-backend parity for the HPCG subsystem (stencil27 + MG + halo).

    Same contract as :func:`cross_validate`, but exercising the 3-D
    subcube distribution, face/edge/corner halo exchange and the chosen
    preconditioner instead of the row-block path.  Beyond ``x``, the
    residual history and the iteration count, the per-iteration scalar
    trajectory (``alphas``/``betas``/``gammas`` in
    ``extras["hpcg"]``) must match bit for bit across substrates.
    """
    from ..hpcg.solve import hpcg_solve

    sim_backend = simulated if simulated is not None else SimulatedBackend()
    proc_backend = process if process is not None else ProcessBackend()
    common = dict(nprocs=nprocs, precond=precond, fused=fused,
                  reproducible=reproducible, criterion=criterion, **kwargs)
    sim = hpcg_solve(shape, backend=sim_backend, **common)
    proc = hpcg_solve(shape, backend=proc_backend, **common)

    x_equal = sim.x.shape == proc.x.shape and bool(np.all(sim.x == proc.x))
    max_abs_diff = (
        float(np.max(np.abs(sim.x - proc.x))) if sim.x.shape == proc.x.shape
        else float("inf")
    )
    iters_equal = sim.iterations == proc.iterations
    res_equal = sim.history.residual_norms == proc.history.residual_norms
    scalars_equal = all(
        sim.extras["hpcg"][key] == proc.extras["hpcg"][key]
        for key in ("alphas", "betas", "gammas")
    )
    report = CrossValidation(
        solver=f"hpcg[{precond}]",
        n=int(sim.x.size),
        nprocs=nprocs,
        simulated=sim,
        process=proc,
        bitwise_equal=x_equal and iters_equal and res_equal
        and scalars_equal and sim.converged == proc.converged,
        iterations_equal=iters_equal,
        residuals_equal=res_equal,
        max_abs_diff=max_abs_diff,
        modelled=dict(sim.extras["timings"]),
        measured=dict(proc.extras["timings"]),
    )
    return report.check() if strict else report


@dataclass
class FaultSequenceParity:
    """Cross-backend comparison of the injected-fault sequence.

    ``logs_*`` hold, per rank, the ``(ordinal, action, dest, tag)``
    entries the injector recorded in program order.  With the same user
    plan, determinism of the Comm-level injector demands
    ``sequences_equal``; when the wrapped program's sends are themselves
    deterministic (no retransmitting transport, whose send *count* depends
    on real timing), the injected faults land on identical messages and
    the numerical results must match bitwise too.
    """

    nprocs: int
    logs_simulated: list
    logs_process: list
    stats_simulated: list
    stats_process: list
    sequences_equal: bool
    results_equal: bool

    def check(self) -> "FaultSequenceParity":
        if not self.sequences_equal:
            raise BackendMismatchError(
                "identical FaultPlan seeds produced different injected-fault "
                f"sequences across backends:\nsimulated: {self.logs_simulated}"
                f"\nprocess:   {self.logs_process}"
            )
        return self


def fault_sequence_parity(
    program: ProgramFactory,
    plan: FaultPlan,
    nprocs: int = 2,
    simulated: Optional[ExecutionBackend] = None,
    process: Optional[ExecutionBackend] = None,
    strict: bool = True,
) -> FaultSequenceParity:
    """Assert both backends inject the *same* fault sequence from one seed.

    Wraps ``program`` in :class:`FaultInjectingProgram` (fresh plan clone
    per backend, so RNG streams restart) with per-rank fault logging, runs
    it on both substrates, and compares the logs rank by rank.  Use a
    non-retransmitting program with a drop-free plan (corrupt / duplicate
    / delay) so every rank's send sequence -- and hence its decision
    sequence -- is independent of wall-clock timing.
    """
    sim_backend = simulated if simulated is not None else SimulatedBackend()
    proc_backend = process if process is not None else ProcessBackend()

    run_sim = sim_backend.run(
        FaultInjectingProgram(program, plan.clone(), return_log=True), nprocs
    )
    run_proc = proc_backend.run(
        FaultInjectingProgram(program, plan.clone(), return_log=True), nprocs
    )
    logs_sim = [r["fault_log"] for r in run_sim.results]
    logs_proc = [r["fault_log"] for r in run_proc.results]
    results_equal = _payloads_equal(
        [r["result"] for r in run_sim.results],
        [r["result"] for r in run_proc.results],
    )
    report = FaultSequenceParity(
        nprocs=nprocs,
        logs_simulated=logs_sim,
        logs_process=logs_proc,
        stats_simulated=[r["fault_stats"] for r in run_sim.results],
        stats_process=[r["fault_stats"] for r in run_proc.results],
        sequences_equal=logs_sim == logs_proc,
        results_equal=results_equal,
    )
    return report.check() if strict else report


def _payloads_equal(a, b) -> bool:
    """Structural bitwise equality over nested tuples/lists/arrays/scalars."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray)
            and isinstance(b, np.ndarray)
            and a.shape == b.shape
            and bool(np.all(a == b))
        )
    if isinstance(a, (tuple, list)) and isinstance(b, (tuple, list)):
        return len(a) == len(b) and all(
            _payloads_equal(x, y) for x, y in zip(a, b)
        )
    if isinstance(a, dict) and isinstance(b, dict):
        return set(a) == set(b) and all(
            _payloads_equal(a[k], b[k]) for k in a
        )
    return bool(a == b)
