"""Cross-validate the simulated cost model against real-process execution.

The point of the backend abstraction: the *same* rank program runs on the
discrete-event simulator (modelled ``t_startup + m·t_comm`` time) and on
real OS processes (measured ``perf_counter`` time).  Because both drive
identical NumPy arithmetic through identical binomial-tree collectives,
the numerical outputs must be **bitwise identical** -- any divergence is a
backend bug, not rounding.  :func:`cross_validate` runs a solve on both,
checks that, and packages the modelled-vs-measured time decomposition
that benchmark E20 tabulates.

Terminology: *modelled* quantities come from the simulator's cost model,
*measured* ones from the process backend's wall clock.  Their ratio only
becomes meaningful after :mod:`repro.backend.calibrate` fits the cost
model's ``t_startup``/``t_comm``/``t_flop`` to the host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

import numpy as np

from ..core.result import SolveResult
from ..core.stopping import StoppingCriterion
from .base import ExecutionBackend
from .process import ProcessBackend
from .simulated import SimulatedBackend
from .solve import backend_solve

__all__ = ["BackendMismatchError", "CrossValidation", "cross_validate"]


class BackendMismatchError(AssertionError):
    """The two backends produced numerically different solver output."""


@dataclass
class CrossValidation:
    """Parity verdict + modelled-vs-measured timing for one solve."""

    solver: str
    n: int
    nprocs: int
    simulated: SolveResult
    process: SolveResult
    #: solver outputs agree bit for bit (x, residual history, iterations)
    bitwise_equal: bool
    iterations_equal: bool
    residuals_equal: bool
    max_abs_diff: float
    #: modelled (simulated) seconds: total / compute / comm
    modelled: Dict[str, float] = field(default_factory=dict)
    #: measured (process) seconds: total / compute / comm
    measured: Dict[str, float] = field(default_factory=dict)

    @property
    def time_ratio(self) -> float:
        """measured / modelled total time (1.0 = perfectly calibrated model)."""
        if self.modelled.get("total", 0.0) <= 0:
            return float("nan")
        return self.measured.get("total", float("nan")) / self.modelled["total"]

    def check(self) -> "CrossValidation":
        """Raise :class:`BackendMismatchError` unless outputs are bitwise equal."""
        if not self.bitwise_equal:
            raise BackendMismatchError(
                f"{self.solver} (n={self.n}, P={self.nprocs}): simulated and "
                f"process backends disagree -- max |Δx| = {self.max_abs_diff:.3e}, "
                f"iterations {self.simulated.iterations} vs "
                f"{self.process.iterations}, residual histories "
                f"{'equal' if self.residuals_equal else 'DIFFER'}"
            )
        return self

    def summary(self) -> str:
        return (
            f"{self.solver} n={self.n} P={self.nprocs}: "
            f"bitwise={'yes' if self.bitwise_equal else 'NO'} "
            f"iters={self.process.iterations} "
            f"modelled={self.modelled.get('total', float('nan')):.3e}s "
            f"measured={self.measured.get('total', float('nan')):.3e}s "
            f"ratio={self.time_ratio:.2f}"
        )


def cross_validate(
    solver: str,
    matrix,
    b: np.ndarray,
    nprocs: int = 2,
    x0: Optional[np.ndarray] = None,
    criterion: Optional[StoppingCriterion] = None,
    simulated: Optional[Union[SimulatedBackend, ExecutionBackend]] = None,
    process: Optional[Union[ProcessBackend, ExecutionBackend]] = None,
    strict: bool = True,
) -> CrossValidation:
    """Run one solve on both backends and compare.

    ``strict=True`` (default) raises :class:`BackendMismatchError` on any
    numerical divergence; ``strict=False`` returns the report and lets
    the caller decide.  ``simulated``/``process`` accept pre-configured
    backends (e.g. a custom calibrated cost model, a shorter timeout).
    """
    sim_backend = simulated if simulated is not None else SimulatedBackend()
    proc_backend = process if process is not None else ProcessBackend()

    sim = backend_solve(solver, matrix, b, backend=sim_backend, nprocs=nprocs,
                        x0=x0, criterion=criterion)
    proc = backend_solve(solver, matrix, b, backend=proc_backend, nprocs=nprocs,
                         x0=x0, criterion=criterion)

    x_equal = sim.x.shape == proc.x.shape and bool(np.all(sim.x == proc.x))
    max_abs_diff = (
        float(np.max(np.abs(sim.x - proc.x))) if sim.x.shape == proc.x.shape
        else float("inf")
    )
    iters_equal = sim.iterations == proc.iterations
    res_equal = (
        sim.history.residual_norms == proc.history.residual_norms
    )
    report = CrossValidation(
        solver=solver,
        n=int(sim.x.size),
        nprocs=nprocs,
        simulated=sim,
        process=proc,
        bitwise_equal=x_equal and iters_equal and res_equal
        and sim.converged == proc.converged,
        iterations_equal=iters_equal,
        residuals_equal=res_equal,
        max_abs_diff=max_abs_diff,
        modelled=dict(sim.extras["timings"]),
        measured=dict(proc.extras["timings"]),
    )
    return report.check() if strict else report
