"""Durable, crash-safe checkpoint store.

:class:`DurableCheckpointStore` is a ``MutableMapping`` drop-in for the
plain ``dict`` checkpoint store that :func:`repro.backend.solve.run_with_recovery`
and the backends thread through a resilient solve.  Both substrates
publish snapshots with

    store.setdefault(iteration, {})[rank] = payload

so the store hands out *live* per-iteration views whose ``__setitem__``
journals the record to disk before updating the in-memory mirror.  The
write path is crash-safe at every point:

* each ``(iteration, rank)`` snapshot is one record file, written to a
  ``.tmp-``-prefixed sibling, flushed (``fsync`` by default), then
  published with an atomic ``os.replace`` -- a SIGKILL mid-write leaves
  only a tmp file, never a half-visible record;
* every record carries a magic string, a fixed header and a CRC32 of the
  pickled payload, so torn or bit-flipped records are detected and
  *skipped* on load instead of poisoning recovery;
* a ``manifest.json`` (itself written atomically) records the expected
  record set per iteration.  The manifest is advisory: a valid record
  missing from the manifest (kill between record rename and manifest
  rewrite) still loads, and a manifest entry whose record is gone is
  ignored.

Because iteration completeness is judged record-by-record,
:func:`repro.core.resilience.latest_complete_checkpoint` gives the same
answer to a fresh process re-opening the directory as it gave to the
process that died -- the property the driver-restart recovery path and
the ``SolverService`` rely on.

Fsync policy: ``fsync=True`` (the default) syncs the record file before
the rename and the directory after it, making a published record survive
power loss; ``fsync=False`` trades that for speed and still survives
process kill (the kernel eventually writes the renamed file).  Tests and
benches use ``fsync=False``; services should keep the default.
"""

from __future__ import annotations

import io
import json
import os
from typing import Any, Dict, Iterator, MutableMapping, Optional

from .records import RecordCodec, atomic_write, sweep_tmp

__all__ = ["DurableCheckpointStore"]

_MAGIC = b"RPCKPT1\n"
# key = iteration (int64), rank (int64); the codec appends the
# (length, CRC32) frame -- byte-identical to the historic "<qqQI" header
_CODEC = RecordCodec(_MAGIC, "qq")


def _record_name(iteration: int, rank: int) -> str:
    return f"ckpt-{iteration:08d}-{rank:05d}.rec"


def _encode_record(iteration: int, rank: int, payload: Any) -> bytes:
    return _CODEC.encode(payload, iteration, rank)


def _decode_record(raw: bytes) -> Optional[tuple]:
    """Return ``(iteration, rank, payload)`` or ``None`` if torn/corrupt."""
    decoded = _CODEC.decode(raw)
    if decoded is None:
        return None
    (iteration, rank), payload = decoded
    return iteration, rank, payload


class _IterationView(MutableMapping):
    """Live ``{rank: payload}`` view; writes journal through the store."""

    def __init__(self, store: "DurableCheckpointStore", iteration: int):
        self._store = store
        self._iteration = int(iteration)

    def _ranks(self) -> Dict[int, Any]:
        return self._store._mem.setdefault(self._iteration, {})

    def __getitem__(self, rank: int) -> Any:
        return self._ranks()[rank]

    def __setitem__(self, rank: int, payload: Any) -> None:
        self._store._write_record(self._iteration, int(rank), payload)

    def __delitem__(self, rank: int) -> None:
        self._store._delete_record(self._iteration, int(rank))

    def __iter__(self) -> Iterator[int]:
        return iter(self._ranks())

    def __len__(self) -> int:
        return len(self._ranks())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"_IterationView(iteration={self._iteration}, {dict(self._ranks())!r})"


class DurableCheckpointStore(MutableMapping):
    """On-disk checkpoint store with atomic records and CRC validation.

    Maps ``iteration -> {rank: payload}`` exactly like the in-memory dict
    store; re-opening the same directory reloads every intact record and
    silently skips torn or corrupt ones.
    """

    def __init__(self, path: str, fsync: bool = True):
        self.path = os.fspath(path)
        self.fsync = bool(fsync)
        os.makedirs(self.path, exist_ok=True)
        self._mem: Dict[int, Dict[int, Any]] = {}
        self.skipped_records: list = []
        self._load()

    # ------------------------------------------------------------------ #
    # disk plumbing
    # ------------------------------------------------------------------ #
    def _load(self) -> None:
        # leftovers from a kill mid-write: never published, remove.
        sweep_tmp(self.path)
        for name in sorted(os.listdir(self.path)):
            full = os.path.join(self.path, name)
            if not (name.startswith("ckpt-") and name.endswith(".rec")):
                continue
            try:
                with open(full, "rb") as fh:
                    raw = fh.read()
            except OSError:
                self.skipped_records.append(name)
                continue
            decoded = _decode_record(raw)
            if decoded is None:
                self.skipped_records.append(name)
                continue
            iteration, rank, payload = decoded
            self._mem.setdefault(iteration, {})[rank] = payload

    def _atomic_write(self, name: str, data: bytes) -> None:
        atomic_write(self.path, name, data, fsync=self.fsync)

    def _write_record(self, iteration: int, rank: int, payload: Any) -> None:
        self._atomic_write(
            _record_name(iteration, rank), _encode_record(iteration, rank, payload)
        )
        self._mem.setdefault(iteration, {})[rank] = payload
        self._write_manifest()

    def _delete_record(self, iteration: int, rank: int) -> None:
        ranks = self._mem.get(iteration, {})
        del ranks[rank]
        if not ranks:
            self._mem.pop(iteration, None)
        try:
            os.unlink(os.path.join(self.path, _record_name(iteration, rank)))
        except FileNotFoundError:
            pass
        self._write_manifest()

    def _write_manifest(self) -> None:
        manifest = {
            "version": 1,
            "iterations": {
                str(k): sorted(ranks) for k, ranks in sorted(self._mem.items())
            },
        }
        buf = io.StringIO()
        json.dump(manifest, buf, indent=0, sort_keys=True)
        self._atomic_write("manifest.json", buf.getvalue().encode("utf-8"))

    # ------------------------------------------------------------------ #
    # MutableMapping interface (iteration -> {rank: payload})
    # ------------------------------------------------------------------ #
    def __getitem__(self, iteration: int) -> _IterationView:
        if iteration not in self._mem:
            raise KeyError(iteration)
        return _IterationView(self, iteration)

    def __setitem__(self, iteration: int, snaps: MutableMapping) -> None:
        if iteration in self._mem:
            del self[iteration]
        iteration = int(iteration)
        self._mem[iteration] = {}
        for rank, payload in dict(snaps).items():
            self._write_record(iteration, int(rank), payload)
        if not self._mem[iteration]:
            # an explicitly stored empty iteration still counts as a key
            self._write_manifest()

    def __delitem__(self, iteration: int) -> None:
        ranks = list(self._mem.pop(iteration))
        for rank in ranks:
            try:
                os.unlink(os.path.join(self.path, _record_name(iteration, rank)))
            except FileNotFoundError:
                pass
        self._write_manifest()

    def __iter__(self) -> Iterator[int]:
        return iter(self._mem)

    def __len__(self) -> int:
        return len(self._mem)

    def setdefault(self, iteration: int, default=None) -> _IterationView:
        iteration = int(iteration)
        if iteration not in self._mem:
            self._mem[iteration] = {}
            for rank, payload in dict(default or {}).items():
                self._write_record(iteration, int(rank), payload)
        return _IterationView(self, iteration)

    def clear(self) -> None:
        for iteration in list(self._mem):
            del self[iteration]

    def tmp_files(self) -> list:
        """Leftover ``.tmp-*`` files (should always be empty)."""
        return sorted(
            n for n in os.listdir(self.path) if n.startswith(".tmp-")
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = {k: len(v) for k, v in sorted(self._mem.items())}
        return f"DurableCheckpointStore(path={self.path!r}, iterations={sizes})"
