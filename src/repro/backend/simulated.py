"""The simulated execution backend: the event scheduler behind the Comm API.

Adapts the existing :class:`~repro.machine.machine.Machine` +
:class:`~repro.machine.scheduler.Scheduler` pair to the
:class:`~repro.backend.base.ExecutionBackend` interface.  Nothing about
the cost model changes -- this is strictly a wrapper, so every experiment
that ran on the scheduler before produces byte-identical numbers through
the backend API.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

from ..machine.costmodel import CostModel
from ..machine.faults import FaultPlan
from ..machine.machine import Machine
from ..machine.scheduler import Scheduler
from ..machine.topology import Topology
from ..machine.trace import Tracer
from .base import BackendRun, ExecutionBackend, ProgramFactory

__all__ = ["SimulatedBackend"]


class SimulatedBackend(ExecutionBackend):
    """Run rank programs on the deterministic discrete-event simulator.

    Parameters
    ----------
    machine:
        An existing :class:`Machine` to run on (its clocks/stats are *not*
        reset; deltas are reported).  When ``None``, a fresh machine is
        built per :meth:`run` from ``topology``/``cost``.
    topology, cost:
        Machine construction parameters used when ``machine is None``.
    trace:
        Attach a :class:`Tracer` for the duration of the run and return it
        on the :class:`BackendRun` (timeline in simulated seconds).
    tag:
        Stats tag forwarded to the scheduler's point-to-point records.
    faults:
        An optional :class:`~repro.machine.faults.FaultPlan` handed to the
        scheduler.  The fault-tolerant driver passes only the plan's
        ``substrate_plan()`` share here (crashes + slowdowns) -- message
        faults are injected at the Comm boundary
        (:mod:`repro.backend.faulty`) so they behave identically on the
        process backend.
    straggler_deadline:
        When set, the scheduler raises
        :class:`~repro.machine.faults.StragglerDetectedError` once a live
        rank's virtual clock runs this many seconds past the slowest live
        peer's -- the simulated twin of the process backend's heartbeat
        deadline.
    """

    name = "simulated"

    def __init__(
        self,
        machine: Optional[Machine] = None,
        topology: Union[str, Topology] = "hypercube",
        cost: Optional[CostModel] = None,
        trace: bool = False,
        tag: Optional[str] = None,
        faults: Optional[FaultPlan] = None,
        straggler_deadline: Optional[float] = None,
    ):
        self.machine = machine
        self.topology = topology
        self.cost = cost
        self.trace = trace
        self.tag = tag
        self.faults = faults
        self.straggler_deadline = straggler_deadline

    def run(
        self,
        program: ProgramFactory,
        nprocs: int,
        *,
        checkpoints: Optional[Dict[int, Dict[int, Any]]] = None,
    ) -> BackendRun:
        if self.machine is not None:
            if self.machine.nprocs != nprocs:
                raise ValueError(
                    f"backend machine has {self.machine.nprocs} ranks, "
                    f"run requested {nprocs}"
                )
            machine = self.machine
        else:
            machine = Machine(nprocs=nprocs, topology=self.topology, cost=self.cost)

        stats_before = machine.stats.snapshot()
        clock_before = machine.elapsed()
        flops_before = machine.stats.flops_per_rank.copy()
        clocks_before = machine.clock.copy()

        tracer = None
        prior_tracer = machine.tracer
        if self.trace:
            tracer = Tracer.attach(machine)
        try:
            results = Scheduler(
                machine,
                tag=self.tag,
                faults=self.faults,
                checkpoint_store=checkpoints,
                straggler_deadline=self.straggler_deadline,
            ).run(program)
        finally:
            if tracer is not None:
                machine.tracer = prior_tracer

        delta = stats_before.since(machine.stats)
        elapsed = machine.elapsed() - clock_before
        flops = machine.stats.flops_per_rank - flops_before
        compute_times = flops * machine.cost.t_flop
        per_rank = [
            {
                "wall": float(machine.clock[r] - clocks_before[r]),
                "compute_time": float(compute_times[r]),
                "comm_time": float(machine.clock[r] - clocks_before[r])
                - float(compute_times[r]),
                "flops": float(flops[r]),
            }
            for r in range(nprocs)
        ]
        timings = {
            "total": elapsed,
            "compute": float(compute_times.mean()) if nprocs else 0.0,
            "comm": delta.comm_time / nprocs if nprocs else 0.0,
            "messages": float(delta.messages),
            "words": float(delta.words),
        }
        return BackendRun(
            backend=self.name,
            nprocs=nprocs,
            results=results,
            stats=machine.stats,
            elapsed=elapsed,
            timings=timings,
            per_rank=per_rank,
            trace=tracer,
        )
