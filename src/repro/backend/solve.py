"""Run the distributed solvers on a chosen execution backend.

``backend_solve("cg", A, b, backend=ProcessBackend(), nprocs=4)`` builds
the row-block SPMD rank program for the solver, runs it on the backend,
and assembles the standard :class:`~repro.core.result.SolveResult` via
:func:`repro.core.driver.assemble_backend_result` -- so downstream
reporting treats a real-process solve exactly like a simulated one.

:func:`run_with_recovery` is the backend-agnostic fault recovery driver:
it runs a checkpointing program, and when the substrate reports a crashed
rank -- :class:`~repro.machine.faults.RankFailedError` from the simulated
scheduler, :class:`~repro.backend.base.WorkerCrashedError` from the
process backend's supervisor -- or a deadline-stale straggler
(:class:`~repro.machine.faults.StragglerDetectedError` from either), it
applies the configured :data:`RecoveryPolicy`:

* ``"respawn"`` (default, DESIGN.md §6): re-run *all* ranks from the
  newest checkpoint every rank completed; a straggler's injected slowdown
  is consumed so the respawned rank runs at nominal speed;
* ``"shrink"`` (DESIGN.md §9): drop the victim, run an online
  ``REDISTRIBUTE`` of every CG operand from the ``P``-rank layout onto a
  balanced ``P-1``-rank :class:`~repro.hpf.distribution.IrregularBlock`,
  re-slice the newest complete checkpoint to the new layout, and continue
  degraded on the survivors;
* ``"rebalance"`` (stragglers only): keep all ranks but re-cut the row
  space with :func:`~repro.extensions.partitioners.capacity_scaled_partitioner`
  so the slow rank gets proportionally less work; a rank flagged again
  after its rebalance escalates to a shrink (crashes always shrink under
  this policy -- a dead rank cannot be given less work).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from ..analysis.load_balance import shrink_report
from ..core.driver import assemble_backend_result
from ..core.resilience import (
    RecoveryExhaustedError,
    ResilienceConfig,
    latest_complete_checkpoint,
)
from ..core.result import SolveResult
from ..core.stopping import StoppingCriterion
from ..extensions.partitioners import (
    capacity_scaled_partitioner,
    cg_balanced_partitioner_1,
)
from ..hpf.distribution import (
    Block,
    Distribution,
    IrregularBlock,
    RedistributionPlan,
    redistribute_vector,
)
from ..machine.costmodel import CostModel
from ..machine.faults import (
    FaultPlan,
    RankFailedError,
    StragglerDetectedError,
)
from .base import BackendRun, ExecutionBackend, ProgramFactory, WorkerCrashedError
from .faulty import FaultInjectingProgram, SlowdownProgram
from .process import ProcessBackend
from .programs import CGRankProgram, PCGRankProgram, ResilientCGProgram
from .simulated import SimulatedBackend

__all__ = ["BACKENDS", "SOLVER_PROGRAMS", "RecoveryPolicy", "make_backend",
           "make_solver_program", "backend_solve", "run_with_recovery",
           "reslice_snapshots"]

#: valid values for ``run_with_recovery``'s / ``backend_solve``'s ``policy``
RecoveryPolicy = ("respawn", "shrink", "rebalance")

#: capacity assumed for a straggler whose slowdown factor is unknown
#: (organic lag, no injected fault): rebalance as if it ran at 1/4 speed
_DEFAULT_STRAGGLER_CAPACITY = 0.25

BACKENDS = ("simulated", "process")

SOLVER_PROGRAMS = {
    "cg": CGRankProgram,
    "spmd_cg": CGRankProgram,  # alias: the baseline runs this same program
    "pcg": PCGRankProgram,
}


def make_backend(name: Union[str, ExecutionBackend], **kwargs) -> ExecutionBackend:
    """Resolve a backend name (``"simulated"``/``"process"``) to an instance."""
    if isinstance(name, ExecutionBackend):
        return name
    if name == "simulated":
        return SimulatedBackend(**kwargs)
    if name == "process":
        return ProcessBackend(**kwargs)
    raise ValueError(f"unknown backend {name!r}; expected one of {BACKENDS}")


def make_solver_program(
    solver: str,
    matrix,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    criterion: Optional[StoppingCriterion] = None,
    fused: bool = False,
    reproducible: bool = False,
) -> ProgramFactory:
    """Build the backend-portable rank program for ``solver``.

    ``fused=True`` selects the single-reduction (Chronopoulos--Gear)
    recurrence: one batched allreduce per iteration instead of two.
    """
    try:
        cls = SOLVER_PROGRAMS[solver]
    except KeyError:
        raise ValueError(
            f"solver {solver!r} has no backend-portable SPMD program; "
            f"available: {sorted(SOLVER_PROGRAMS)}"
        ) from None
    return cls(matrix, b, x0=x0, criterion=criterion, fused=fused,
               reproducible=reproducible)


def reslice_snapshots(
    snaps: Dict[int, Dict[str, Any]],
    old: Distribution,
    new: Distribution,
) -> Dict[int, Dict[str, Any]]:
    """Re-slice one complete checkpoint from layout ``old`` onto ``new``.

    The distributed vector state (``x``, ``r``, ``p``, and ``s`` for
    fused-recurrence snapshots) is remapped exactly with
    :func:`~repro.hpf.distribution.redistribute_vector`; every other
    snapshot entry is a reduced scalar (``rho``, ``gamma``, ``bnorm``,
    residual history, ...) identical on every rank by construction, so it
    is taken from rank 0 and shared.  Keys are discovered from the
    snapshot itself, so classic and fused checkpoint formats reslice
    through the same code path.  The result is a ``{new_rank: snapshot}``
    dict a :class:`~repro.backend.programs.ResilientCGProgram` restarts
    from.
    """
    if set(snaps) != set(range(old.nprocs)):
        raise ValueError(
            f"checkpoint is not complete for {old.nprocs} ranks: "
            f"got ranks {sorted(snaps)}"
        )
    base = snaps[0]
    vec_keys = [k for k in ("x", "r", "p", "s") if k in base]
    parts = {
        key: redistribute_vector(
            [np.asarray(snaps[r][key], dtype=np.float64)
             for r in range(old.nprocs)],
            old, new,
        )
        for key in vec_keys
    }
    out: Dict[int, Dict[str, Any]] = {}
    for nr in range(new.nprocs):
        snap: Dict[str, Any] = {}
        for key, value in base.items():
            if key in parts:
                snap[key] = parts[key][nr]
            elif key == "residuals":
                snap[key] = list(value)
            else:
                snap[key] = value
        out[nr] = snap
    return out


def _effective_layout(program, nprocs: int) -> Distribution:
    """The row layout the program actually runs under at ``nprocs`` ranks."""
    layout = getattr(program, "layout", None)
    if layout is not None and layout.nprocs == nprocs:
        return layout
    default = getattr(program, "default_layout", None)
    if default is not None:
        return default(nprocs)
    return Block(program.n, nprocs)


def _fault_plans(backend, program) -> List[FaultPlan]:
    """Every distinct FaultPlan the run consults, deduplicated by identity.

    One user plan typically appears several times -- the substrate share on
    the backend, the message share on a
    :class:`~repro.backend.faulty.FaultInjectingProgram`, the corruption
    share on the inner solver program -- sometimes as the *same* object.
    """
    plans: List[FaultPlan] = []
    seen: set = set()

    def _add(plan) -> None:
        if isinstance(plan, FaultPlan) and id(plan) not in seen:
            seen.add(id(plan))
            plans.append(plan)

    _add(getattr(backend, "faults", None))
    obj = program
    while obj is not None:
        _add(getattr(obj, "plan", None))
        _add(getattr(obj, "faults", None))
        obj = getattr(obj, "inner", None)
    return plans


def _slowdown_wrappers(program) -> List[SlowdownProgram]:
    """The SlowdownProgram wrappers in the factory chain (usually 0 or 1)."""
    found: List[SlowdownProgram] = []
    obj = program
    while obj is not None:
        if isinstance(obj, SlowdownProgram):
            found.append(obj)
        obj = getattr(obj, "inner", None)
    return found


def _consume_slowdowns(backend, program, rank: int) -> None:
    """Retire ``rank``'s pending slowdown everywhere it is scheduled."""
    for plan in _fault_plans(backend, program):
        plan.drop_slowdown(rank)
    for wrapper in _slowdown_wrappers(program):
        wrapper.drop_slowdown(rank)


def _remap_faults(backend, program, survivors: Sequence[int]) -> None:
    """Renumber every pending fault after a shrink onto ``survivors``."""
    for plan in _fault_plans(backend, program):
        plan.remap_ranks(survivors)
    for wrapper in _slowdown_wrappers(program):
        wrapper.remap_ranks(survivors)
    coc = getattr(backend, "crash_on_checkpoint", None)
    if coc:
        new_of = {old: new for new, old in enumerate(survivors)}
        backend.crash_on_checkpoint = {
            new_of[r]: it for r, it in coc.items() if r in new_of
        }


def _degrade_topology(backend, new_nprocs: int) -> Optional[str]:
    """Fall back to a complete network when the topology can't shrink.

    A hypercube minus a node is not a hypercube: when the simulated
    backend's per-run topology spec cannot be instantiated at the survivor
    count (power-of-two constraints, fixed mesh shapes), the degraded
    machine is modelled as a complete network instead -- survivors are
    assumed to route around the hole at unit hop cost.  Returns the old
    spec's repr when a fallback happened, for the recovery telemetry.
    """
    spec = getattr(backend, "topology", None)
    if spec is None or getattr(backend, "machine", None) is not None:
        return None
    from ..machine.topology import make_topology

    try:
        make_topology(spec, new_nprocs)
    except (ValueError, TypeError):
        backend.topology = "complete"
        return str(spec)
    return None


def _redistribute_state(
    backend, program, store, old_layout, new_layout, survivors, nprocs,
    recovery,
) -> None:
    """Point ``program`` at ``new_layout`` with re-sliced checkpoint state.

    The stable store is cleared and re-seeded with the single re-sliced
    entry: stale old-layout snapshots must never satisfy a later
    ``latest_complete_checkpoint`` probe on the new rank count.  Also
    records the modelled cost of the online REDISTRIBUTE -- each global
    row carries its CSR entries (``2*nnz``), its x/r/p elements (3) and
    its indptr entry (1).
    """
    latest = latest_complete_checkpoint(store, nprocs)
    store.clear()
    if latest is None:
        program.restart = None
        recovery["restart_iterations"].append(-1)
    else:
        k0, snaps = latest
        resliced = reslice_snapshots(snaps, old_layout, new_layout)
        store[k0] = resliced
        program.restart = (k0, resliced)
        recovery["restart_iterations"].append(k0)
    program.layout = new_layout
    row_words = 2.0 * np.diff(program.indptr) + 4.0
    plan = RedistributionPlan(
        old_layout, new_layout, survivors=survivors, weights=row_words,
    )
    cost = getattr(backend, "cost", None) or CostModel()
    entry = plan.as_dict()
    entry["modelled_time"] = plan.modelled_time(cost)
    recovery["redistributions"].append(entry)


def run_with_recovery(
    backend: ExecutionBackend,
    program,
    nprocs: int,
    max_restarts: int = 4,
    store: Optional[Dict[int, Dict[int, Any]]] = None,
    policy: str = "respawn",
    min_ranks: int = 1,
    straggler_capacity: Optional[float] = None,
) -> BackendRun:
    """Run a checkpointing program, surviving crashes and stragglers.

    ``program`` must publish :class:`~repro.machine.events.Checkpoint` ops
    and honour a ``restart`` attribute (``ResilientCGProgram`` does both).
    On a crash the driver locates the newest checkpoint *every* rank
    completed in ``store`` (partial snapshots are never restored --
    :func:`~repro.core.resilience.latest_complete_checkpoint`), points the
    program at it, and re-runs.  Crashes in the substrate's fault plan are
    consumed-once, so the respawned ranks do not die again on the same
    schedule.  After ``max_restarts`` failed attempts the driver raises
    :class:`~repro.core.resilience.RecoveryExhaustedError`.

    ``policy`` selects what a re-run looks like (see module docstring):
    ``"respawn"`` keeps all ``nprocs`` ranks; ``"shrink"`` drops the victim
    and redistributes onto the survivors (``program`` must then expose
    ``layout``/``n``/``indptr``, as the row-block programs do);
    ``"rebalance"`` re-cuts the row space around a straggler, giving it
    capacity ``straggler_capacity`` (default: the inverse of its injected
    slowdown factor when known, else 1/4), and escalates to a shrink if
    the same rank is flagged again.  A shrink below ``min_ranks`` raises
    :class:`~repro.core.resilience.RecoveryExhaustedError` instead.

    The returned run's ``recovery`` dict reports ``attempts``,
    ``crashes_recovered`` / ``stragglers_detected`` (ranks, in order),
    ``restart_iterations`` (the checkpoint each restart resumed from),
    ``recovery_wall`` (wall-clock seconds consumed before the successful
    attempt began), ``final_nprocs``, and -- per layout change --
    ``shrinks`` / ``rebalances`` (load-balance before/after) and
    ``redistributions`` (message/word counts and modelled time of each
    online REDISTRIBUTE).
    """
    if policy not in RecoveryPolicy:
        raise ValueError(
            f"unknown recovery policy {policy!r}; expected one of "
            f"{RecoveryPolicy}"
        )
    if min_ranks < 1:
        raise ValueError("min_ranks must be >= 1")
    store = {} if store is None else store
    recovery: Dict[str, Any] = {
        "attempts": 0,
        "attempt_log": [],
        "crashes_recovered": [],
        "stragglers_detected": [],
        "restart_iterations": [],
        "recovery_wall": 0.0,
        "policy": policy,
        "shrinks": [],
        "rebalances": [],
        "redistributions": [],
        "final_nprocs": nprocs,
    }
    cur = nprocs
    rebalanced: set = set()
    loop_start = time.perf_counter()
    while True:
        recovery["attempts"] += 1
        attempt_start = time.perf_counter()
        try:
            run = backend.run(program, cur, checkpoints=store)
        except (WorkerCrashedError, RankFailedError,
                StragglerDetectedError) as exc:
            is_straggler = isinstance(exc, StragglerDetectedError)
            rank = getattr(exc, "rank", None)
            recovery["attempt_log"].append({
                "attempt": recovery["attempts"],
                "nprocs": cur,
                "outcome": "straggler" if is_straggler else "crash",
                "rank": rank,
                "error": f"{type(exc).__name__}: {exc}",
                "elapsed": time.perf_counter() - attempt_start,
            })
            if recovery["attempts"] > max_restarts:
                raise RecoveryExhaustedError(
                    f"run still failing after {max_restarts} "
                    f"recovery attempts: {exc}",
                    attempts=recovery["attempt_log"],
                ) from exc
            if is_straggler:
                recovery["stragglers_detected"].append(rank)
            else:
                recovery["crashes_recovered"].append(
                    -1 if rank is None else rank
                )

            # choose the action this failure gets under the policy
            action = policy
            if rank is None or not 0 <= rank < cur:
                action = "respawn"  # cannot identify a victim: rerun all
            elif policy == "rebalance":
                if not is_straggler:
                    action = "shrink"  # a dead rank cannot be given less work
                elif rank in rebalanced:
                    action = "shrink"  # rebalancing did not cure it: escalate
            recovery["attempt_log"][-1]["action"] = action

            if action == "respawn":
                if is_straggler and rank is not None:
                    # the respawned rank must run at nominal speed
                    _consume_slowdowns(backend, program, rank)
                latest = latest_complete_checkpoint(store, cur)
                if latest is None:
                    # failure before the iteration-0 checkpoint: cold restart
                    program.restart = None
                    recovery["restart_iterations"].append(-1)
                else:
                    program.restart = latest
                    recovery["restart_iterations"].append(latest[0])
                continue

            row_weights = np.diff(program.indptr).astype(np.float64)
            old_layout = _effective_layout(program, cur)
            old_loads = [
                float(row_weights[old_layout.local_indices(r)].sum())
                for r in range(cur)
            ]

            if action == "shrink":
                if cur - 1 < min_ranks:
                    raise RecoveryExhaustedError(
                        f"cannot shrink below min_ranks={min_ranks}: "
                        f"{cur} ranks left and rank {rank} "
                        f"{'straggling' if is_straggler else 'lost'}",
                        attempts=recovery["attempt_log"],
                    ) from exc
                survivors = [r for r in range(cur) if r != rank]
                default = getattr(program, "default_layout", None)
                if default is not None:
                    # grid-structured programs (HPCG subcubes) re-factorise
                    # their own process grid onto the survivor count
                    new_layout = default(cur - 1)
                else:
                    new_layout = IrregularBlock(
                        cg_balanced_partitioner_1(row_weights, cur - 1)
                    )
                _redistribute_state(
                    backend, program, store, old_layout, new_layout,
                    survivors, cur, recovery,
                )
                _remap_faults(backend, program, survivors)
                degraded_topo = _degrade_topology(backend, cur - 1)
                new_loads = [
                    float(row_weights[new_layout.local_indices(r)].sum())
                    for r in range(cur - 1)
                ]
                report = shrink_report(old_loads, new_loads)
                recovery["shrinks"].append(
                    {"victim": rank, "straggler": is_straggler,
                     "summary": str(report),
                     "imbalance_after": report.after.imbalance,
                     "topology_fallback": degraded_topo}
                )
                new_of = {old: new for new, old in enumerate(survivors)}
                rebalanced = {new_of[r] for r in rebalanced if r in new_of}
                cur -= 1
                recovery["final_nprocs"] = cur
                continue

            # action == "rebalance": keep all ranks, shift work off the
            # straggler in proportion to its remaining speed
            slow = next(
                (p.slowdown_for(rank) for p in _fault_plans(backend, program)
                 if p.slowdown_for(rank) is not None),
                None,
            )
            factor = getattr(exc, "factor", None) or (
                slow.factor if slow is not None else None
            )
            capacity = straggler_capacity or (
                1.0 / factor if factor and factor > 1.0
                else _DEFAULT_STRAGGLER_CAPACITY
            )
            capacities = np.ones(cur)
            capacities[rank] = capacity
            new_layout = IrregularBlock(
                capacity_scaled_partitioner(row_weights, capacities)
            )
            _redistribute_state(
                backend, program, store, old_layout, new_layout,
                list(range(cur)), cur, recovery,
            )
            new_loads = [
                float(row_weights[new_layout.local_indices(r)].sum())
                for r in range(cur)
            ]
            recovery["rebalances"].append(
                {"victim": rank, "capacity": float(capacity),
                 "loads_before": old_loads, "loads_after": new_loads}
            )
            rebalanced.add(rank)
            continue
        recovery["recovery_wall"] = attempt_start - loop_start
        recovery["final_nprocs"] = cur
        run.recovery.update(recovery)
        return run


def backend_solve(
    solver: str,
    matrix,
    b: np.ndarray,
    backend: Union[str, ExecutionBackend] = "simulated",
    nprocs: int = 4,
    x0: Optional[np.ndarray] = None,
    criterion: Optional[StoppingCriterion] = None,
    faults: Optional[FaultPlan] = None,
    resilience: Optional[ResilienceConfig] = None,
    policy: str = "respawn",
    min_ranks: int = 1,
    straggler_deadline: Optional[float] = None,
    heartbeat_interval: Optional[float] = None,
    fused: bool = False,
    reproducible: bool = False,
    store: Optional[Dict[int, Dict[int, Any]]] = None,
) -> SolveResult:
    """Solve ``A x = b`` with ``solver`` on the chosen execution backend.

    ``fused=True`` runs the single-reduction (communication-avoiding)
    recurrence of the selected program: all per-iteration inner products
    travel in one batched allreduce (``spmd.allreduce_vec``) instead of
    two or three scalar trees.  Works on both backends and composes with
    ``faults``/``resilience`` (ABFT duplicate-sum slots ride in the same
    packed message).

    ``reproducible=True`` rides every inner product on the fixed-point
    superaccumulator of :mod:`repro.backend.reproducible`: dots and norms
    -- and hence the whole scalar trajectory and solution -- become
    bitwise invariant to rank count, topology, backend and fusion.
    Composes with ABFT (the duplicate-copy corruption check compares
    exactly-rendered values) at the cost of wider reduction payloads.

    With ``faults`` and/or ``resilience`` the solve runs the fault-tolerant
    :class:`~repro.backend.programs.ResilientCGProgram` (``"cg"`` family
    only) under :func:`run_with_recovery`.  The plan is split by layer:
    message faults are injected at the Comm boundary
    (:class:`~repro.backend.faulty.FaultInjectingProgram`), state
    corruptions inside the program, and fail-stop crashes *and slowdowns*
    by the substrate itself -- which is what makes the same plan meaningful
    on both backends.  On the process backend a scheduled slowdown becomes
    real per-op sleeps (:class:`~repro.backend.faulty.SlowdownProgram`);
    on the simulator the scheduler dilates the rank's charged compute
    time.  ``resilience`` also switches the transport: with message faults
    present the collectives run over the reliable ARQ layer.

    ``policy`` / ``min_ranks`` select the degraded-mode recovery behaviour
    (see :func:`run_with_recovery`); ``straggler_deadline`` arms straggler
    detection on either substrate (virtual-clock lag on the simulator,
    heartbeat staleness on real processes) and ``heartbeat_interval``
    tunes the process backend's liveness cadence.

    ``store`` supplies the checkpoint store (default: a fresh in-memory
    dict).  Passing a
    :class:`~repro.backend.store.DurableCheckpointStore` makes the solve
    resumable across driver death: when the store already holds a
    complete checkpoint from a previous (killed) run, the solve restarts
    from it instead of from scratch.
    """
    if policy not in RecoveryPolicy:
        raise ValueError(
            f"unknown recovery policy {policy!r}; expected one of "
            f"{RecoveryPolicy}"
        )
    plain = (
        faults is None and resilience is None and policy == "respawn"
        and straggler_deadline is None and heartbeat_interval is None
        and store is None
    )
    if plain:
        program = make_solver_program(solver, matrix, b, x0=x0,
                                      criterion=criterion, fused=fused,
                                      reproducible=reproducible)
        be = make_backend(backend)
        run = be.run(program, nprocs)
        return assemble_backend_result(run, solver=solver, n=program.n)

    if SOLVER_PROGRAMS.get(solver) is not CGRankProgram:
        raise ValueError(
            f"fault-tolerant backend solves support the 'cg' family only, "
            f"not {solver!r}"
        )
    cfg = resilience or ResilienceConfig()
    plan = faults.clone() if faults is not None else None
    message_faults = plan is not None and plan.message_faults_enabled
    program = ResilientCGProgram(
        matrix, b, x0=x0, criterion=criterion,
        checkpoint_interval=cfg.checkpoint_interval,
        sanity_interval=cfg.sanity_interval,
        sanity_rtol=cfg.sanity_rtol,
        max_restarts=cfg.max_restarts,
        faults=plan,  # state corruptions; rank-local derivation inside
        reliable=message_faults,
        reliable_config=cfg.reliable,
        fused=fused,
        reproducible=reproducible,
    )
    runnable = (
        FaultInjectingProgram(program, plan) if message_faults else program
    )
    # the substrate executes only the crash + slowdown share of the plan;
    # passing the full plan would double-inject the message faults
    substrate_share = plan.substrate_plan() if plan is not None else None
    if isinstance(backend, str):
        kwargs: Dict[str, Any] = {"faults": substrate_share}
        if straggler_deadline is not None:
            kwargs["straggler_deadline"] = straggler_deadline
        if backend == "process" and heartbeat_interval is not None:
            kwargs["heartbeat_interval"] = heartbeat_interval
        be = make_backend(backend, **kwargs)
    else:
        be = backend
    if (
        isinstance(be, ProcessBackend)
        and plan is not None
        and plan.slowdown_schedule()
    ):
        # real lateness the heartbeat monitor can observe (the simulator
        # realises the same schedule by dilating charged compute time)
        runnable = SlowdownProgram(runnable, plan.slowdown_schedule())
    store = {} if store is None else store
    latest = latest_complete_checkpoint(store, nprocs)
    if latest is not None:
        # a durable store outlives the driver: resume from the newest
        # complete checkpoint the previous (killed) process published
        program.restart = latest
    run = run_with_recovery(be, runnable, nprocs,
                            max_restarts=cfg.max_restarts,
                            store=store, policy=policy, min_ranks=min_ranks)
    result = assemble_backend_result(run, solver=solver, n=program.n)
    result.extras["recovery"] = dict(run.recovery)
    result.extras["resilience"] = run.results[0][4] if run.results else {}
    # injected-fault counters are per-rank (each rank's injector sees only
    # its own sends); sum them so reports show whole-run totals
    injected: Dict[str, Any] = {}
    for res in run.results:
        per_rank = (res[4] or {}).get("injected_faults") or {}
        for key, value in per_rank.items():
            if isinstance(value, (int, float)):
                injected[key] = injected.get(key, 0) + value
            else:
                injected.setdefault(key, []).extend(value)
    result.extras["injected_faults"] = injected
    return result
