"""Run the distributed solvers on a chosen execution backend.

``backend_solve("cg", A, b, backend=ProcessBackend(), nprocs=4)`` builds
the row-block SPMD rank program for the solver, runs it on the backend,
and assembles the standard :class:`~repro.core.result.SolveResult` via
:func:`repro.core.driver.assemble_backend_result` -- so downstream
reporting treats a real-process solve exactly like a simulated one.

:func:`run_with_recovery` is the backend-agnostic fail-stop recovery
driver: it runs a checkpointing program, and when the substrate reports a
crashed rank -- :class:`~repro.machine.faults.RankFailedError` from the
simulated scheduler, :class:`~repro.backend.base.WorkerCrashedError` from
the process backend's supervisor -- it respawns *all* ranks and restarts
the solve from the newest checkpoint every rank completed, exactly the
coordinated rollback-restart protocol DESIGN.md §6 specifies for the
simulated machine, now executed for real.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional, Union

import numpy as np

from ..core.driver import assemble_backend_result
from ..core.resilience import (
    RecoveryExhaustedError,
    ResilienceConfig,
    latest_complete_checkpoint,
)
from ..core.result import SolveResult
from ..core.stopping import StoppingCriterion
from ..machine.faults import FaultPlan, RankFailedError
from .base import BackendRun, ExecutionBackend, ProgramFactory, WorkerCrashedError
from .faulty import FaultInjectingProgram
from .process import ProcessBackend
from .programs import CGRankProgram, PCGRankProgram, ResilientCGProgram
from .simulated import SimulatedBackend

__all__ = ["BACKENDS", "SOLVER_PROGRAMS", "make_backend", "make_solver_program",
           "backend_solve", "run_with_recovery"]

BACKENDS = ("simulated", "process")

SOLVER_PROGRAMS = {
    "cg": CGRankProgram,
    "spmd_cg": CGRankProgram,  # alias: the baseline runs this same program
    "pcg": PCGRankProgram,
}


def make_backend(name: Union[str, ExecutionBackend], **kwargs) -> ExecutionBackend:
    """Resolve a backend name (``"simulated"``/``"process"``) to an instance."""
    if isinstance(name, ExecutionBackend):
        return name
    if name == "simulated":
        return SimulatedBackend(**kwargs)
    if name == "process":
        return ProcessBackend(**kwargs)
    raise ValueError(f"unknown backend {name!r}; expected one of {BACKENDS}")


def make_solver_program(
    solver: str,
    matrix,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    criterion: Optional[StoppingCriterion] = None,
) -> ProgramFactory:
    """Build the backend-portable rank program for ``solver``."""
    try:
        cls = SOLVER_PROGRAMS[solver]
    except KeyError:
        raise ValueError(
            f"solver {solver!r} has no backend-portable SPMD program; "
            f"available: {sorted(SOLVER_PROGRAMS)}"
        ) from None
    return cls(matrix, b, x0=x0, criterion=criterion)


def run_with_recovery(
    backend: ExecutionBackend,
    program,
    nprocs: int,
    max_restarts: int = 4,
    store: Optional[Dict[int, Dict[int, Any]]] = None,
) -> BackendRun:
    """Run a checkpointing program, surviving fail-stop rank crashes.

    ``program`` must publish :class:`~repro.machine.events.Checkpoint` ops
    and honour a ``restart`` attribute (``ResilientCGProgram`` does both).
    On a crash the driver locates the newest checkpoint *every* rank
    completed in ``store`` (partial snapshots are never restored --
    :func:`~repro.core.resilience.latest_complete_checkpoint`), points the
    program at it, and re-runs all ranks.  Crashes in the substrate's
    fault plan are consumed-once, so the respawned ranks do not die again
    on the same schedule.  After ``max_restarts`` failed attempts the
    driver raises :class:`~repro.core.resilience.RecoveryExhaustedError`.

    The returned run's ``recovery`` dict reports ``attempts``,
    ``crashes_recovered`` (ranks, in order), ``restart_iterations`` (the
    checkpoint each restart resumed from) and ``recovery_wall`` -- the
    wall-clock seconds consumed before the successful attempt began.
    """
    store = {} if store is None else store
    recovery: Dict[str, Any] = {
        "attempts": 0,
        "crashes_recovered": [],
        "restart_iterations": [],
        "recovery_wall": 0.0,
    }
    loop_start = time.perf_counter()
    while True:
        recovery["attempts"] += 1
        attempt_start = time.perf_counter()
        try:
            run = backend.run(program, nprocs, checkpoints=store)
        except (WorkerCrashedError, RankFailedError) as exc:
            if recovery["attempts"] > max_restarts:
                raise RecoveryExhaustedError(
                    f"run still failing after {max_restarts} "
                    f"recovery attempts: {exc}"
                ) from exc
            rank = getattr(exc, "rank", -1)
            recovery["crashes_recovered"].append(rank)
            latest = latest_complete_checkpoint(store, nprocs)
            if latest is None:
                # crash before the iteration-0 checkpoint: cold restart
                program.restart = None
                recovery["restart_iterations"].append(-1)
            else:
                program.restart = latest
                recovery["restart_iterations"].append(latest[0])
            continue
        recovery["recovery_wall"] = attempt_start - loop_start
        run.recovery.update(recovery)
        return run


def backend_solve(
    solver: str,
    matrix,
    b: np.ndarray,
    backend: Union[str, ExecutionBackend] = "simulated",
    nprocs: int = 4,
    x0: Optional[np.ndarray] = None,
    criterion: Optional[StoppingCriterion] = None,
    faults: Optional[FaultPlan] = None,
    resilience: Optional[ResilienceConfig] = None,
) -> SolveResult:
    """Solve ``A x = b`` with ``solver`` on the chosen execution backend.

    With ``faults`` and/or ``resilience`` the solve runs the fault-tolerant
    :class:`~repro.backend.programs.ResilientCGProgram` (``"cg"`` family
    only) under :func:`run_with_recovery`.  The plan is split by layer:
    message faults are injected at the Comm boundary
    (:class:`~repro.backend.faulty.FaultInjectingProgram`), state
    corruptions inside the program, and fail-stop crashes by the substrate
    itself -- which is what makes the same plan meaningful on both
    backends.  ``resilience`` also switches the transport: with message
    faults present the collectives run over the reliable ARQ layer.
    """
    if faults is None and resilience is None:
        program = make_solver_program(solver, matrix, b, x0=x0,
                                      criterion=criterion)
        be = make_backend(backend)
        run = be.run(program, nprocs)
        return assemble_backend_result(run, solver=solver, n=program.n)

    if SOLVER_PROGRAMS.get(solver) is not CGRankProgram:
        raise ValueError(
            f"fault-tolerant backend solves support the 'cg' family only, "
            f"not {solver!r}"
        )
    cfg = resilience or ResilienceConfig()
    plan = faults.clone() if faults is not None else None
    message_faults = plan is not None and plan.message_faults_enabled
    program = ResilientCGProgram(
        matrix, b, x0=x0, criterion=criterion,
        checkpoint_interval=cfg.checkpoint_interval,
        sanity_interval=cfg.sanity_interval,
        sanity_rtol=cfg.sanity_rtol,
        max_restarts=cfg.max_restarts,
        faults=plan,  # state corruptions; rank-local derivation inside
        reliable=message_faults,
        reliable_config=cfg.reliable,
    )
    runnable = (
        FaultInjectingProgram(program, plan) if message_faults else program
    )
    # the substrate executes only the crash share of the plan; passing the
    # full plan would double-inject the message faults
    crash_share = plan.crashes_only() if plan is not None else None
    if isinstance(backend, str):
        be = make_backend(backend, faults=crash_share)
    else:
        be = backend
    run = run_with_recovery(be, runnable, nprocs,
                            max_restarts=cfg.max_restarts)
    result = assemble_backend_result(run, solver=solver, n=program.n)
    result.extras["recovery"] = dict(run.recovery)
    result.extras["resilience"] = run.results[0][4] if run.results else {}
    # injected-fault counters are per-rank (each rank's injector sees only
    # its own sends); sum them so reports show whole-run totals
    injected: Dict[str, Any] = {}
    for res in run.results:
        per_rank = (res[4] or {}).get("injected_faults") or {}
        for key, value in per_rank.items():
            if isinstance(value, (int, float)):
                injected[key] = injected.get(key, 0) + value
            else:
                injected.setdefault(key, []).extend(value)
    result.extras["injected_faults"] = injected
    return result
