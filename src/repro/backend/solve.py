"""Run the distributed solvers on a chosen execution backend.

``backend_solve("cg", A, b, backend=ProcessBackend(), nprocs=4)`` builds
the row-block SPMD rank program for the solver, runs it on the backend,
and assembles the standard :class:`~repro.core.result.SolveResult` via
:func:`repro.core.driver.assemble_backend_result` -- so downstream
reporting treats a real-process solve exactly like a simulated one.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..core.driver import assemble_backend_result
from ..core.result import SolveResult
from ..core.stopping import StoppingCriterion
from .base import ExecutionBackend, ProgramFactory
from .process import ProcessBackend
from .programs import CGRankProgram, PCGRankProgram
from .simulated import SimulatedBackend

__all__ = ["BACKENDS", "SOLVER_PROGRAMS", "make_backend", "make_solver_program",
           "backend_solve"]

BACKENDS = ("simulated", "process")

SOLVER_PROGRAMS = {
    "cg": CGRankProgram,
    "spmd_cg": CGRankProgram,  # alias: the baseline runs this same program
    "pcg": PCGRankProgram,
}


def make_backend(name: Union[str, ExecutionBackend], **kwargs) -> ExecutionBackend:
    """Resolve a backend name (``"simulated"``/``"process"``) to an instance."""
    if isinstance(name, ExecutionBackend):
        return name
    if name == "simulated":
        return SimulatedBackend(**kwargs)
    if name == "process":
        return ProcessBackend(**kwargs)
    raise ValueError(f"unknown backend {name!r}; expected one of {BACKENDS}")


def make_solver_program(
    solver: str,
    matrix,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    criterion: Optional[StoppingCriterion] = None,
) -> ProgramFactory:
    """Build the backend-portable rank program for ``solver``."""
    try:
        cls = SOLVER_PROGRAMS[solver]
    except KeyError:
        raise ValueError(
            f"solver {solver!r} has no backend-portable SPMD program; "
            f"available: {sorted(SOLVER_PROGRAMS)}"
        ) from None
    return cls(matrix, b, x0=x0, criterion=criterion)


def backend_solve(
    solver: str,
    matrix,
    b: np.ndarray,
    backend: Union[str, ExecutionBackend] = "simulated",
    nprocs: int = 4,
    x0: Optional[np.ndarray] = None,
    criterion: Optional[StoppingCriterion] = None,
) -> SolveResult:
    """Solve ``A x = b`` with ``solver`` on the chosen execution backend."""
    program = make_solver_program(solver, matrix, b, x0=x0, criterion=criterion)
    be = make_backend(backend)
    run = be.run(program, nprocs)
    return assemble_backend_result(run, solver=solver, n=program.n)
