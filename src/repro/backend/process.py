"""Real-parallel execution backend: one OS process per SPMD rank.

Runs the *same* generator rank programs the discrete-event simulator runs
(:mod:`repro.machine.events` protocol), but for real: each rank is a
``multiprocessing`` process, ``Send``/``Recv`` payloads travel over
per-rank inbox queues (OS pipes), ``Barrier`` is a real barrier, and
every segment is timed with ``time.perf_counter``.  ``Compute`` yields
cost nothing here -- the actual NumPy work inside the program body *is*
the computation -- but their declared flop counts are still accumulated,
so the measured run reports the same flop accounting as the simulated
one.

Measured per-rank counters (wall time, time blocked in receives and
barriers, messages, words, declared flops) are mirrored into a
:class:`~repro.machine.stats.MachineStats` of the exact shape the
simulator produces, which is what makes the modelled-vs-measured
cross-validation of :mod:`repro.backend.validate` a one-liner.

Robustness guarantees (CI sandboxes, platforms without ``fork``):

* the start method falls back deterministically: ``fork`` where the OS
  offers it, else ``spawn`` (program factories must then be picklable --
  every factory in :mod:`repro.backend.programs` is);
* :func:`process_backend_support` reports *why* the backend is
  unavailable (e.g. ``sem_open`` missing) so tests can skip explicitly;
* a hard wall-clock ``timeout`` bounds every blocking operation in the
  workers **and** the parent's result collection; on expiry all workers
  are terminated, then killed -- a hung rank can never wedge the caller.

Semantics that intentionally differ from the simulator are catalogued in
DESIGN.md §7; the headline one: ``Recv(timeout=...)`` counts *real*
seconds here, simulated seconds there.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import signal
import time
import traceback
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..machine.events import (
    ANY_SOURCE,
    Barrier,
    Checkpoint,
    Compute,
    Recv,
    Send,
    payload_words,
)
from ..machine.faults import FaultPlan, RecvTimeoutError, StragglerDetectedError
from ..machine.stats import MachineStats
from ..machine.trace import Tracer
from .base import (
    BackendError,
    BackendRun,
    BackendTimeoutError,
    ExecutionBackend,
    ProgramFactory,
    WorkerCrashedError,
    WorkerFailedError,
)

__all__ = [
    "ProcessBackend",
    "process_backend_support",
    "crash_injection_support",
    "default_start_method",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "DEFAULT_RUN_DEADLINE",
]

#: grace period the parent grants workers beyond their own deadline before
#: it starts killing them (seconds)
_PARENT_GRACE = 5.0

#: built-in defaults, overridable by environment or constructor (see
#: :class:`ProcessBackend`)
DEFAULT_HEARTBEAT_INTERVAL = 0.5
DEFAULT_RUN_DEADLINE = 120.0

#: sentinel distinguishing "caller said nothing" (fall back to env/default)
#: from an explicit ``None`` (which disables the run deadline)
_UNSET = object()

#: env-var spellings that disable an optional float knob
_NONE_WORDS = ("", "none", "off", "disabled")


def _env_float(
    name: str,
    default,
    *,
    none_ok: bool = False,
    positive: bool = True,
):
    """Read and validate a float tuning knob from the environment.

    ``none_ok`` accepts ``none``/``off``/``disabled`` (case-insensitive) as
    "disable this bound".  Malformed or non-positive values raise
    ``ValueError`` naming the variable -- a silent fallback would hide the
    typo until a worker hangs forever.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    if none_ok and raw.strip().lower() in _NONE_WORDS:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"environment variable {name}={raw!r} is not a number"
        ) from None
    if positive and value <= 0:
        raise ValueError(
            f"environment variable {name}={raw!r} must be positive"
            + (" (or 'none' to disable)" if none_ok else "")
        )
    return value


def default_start_method() -> str:
    """``fork`` where available (cheap, no pickling), else ``spawn``."""
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def process_backend_support(
    start_method: Optional[str] = None,
) -> Tuple[bool, str]:
    """Probe whether real OS-process execution works on this platform.

    Returns ``(supported, detail)``: ``detail`` is the resolved start
    method when supported, or the reason when not (no ``fork``/``spawn``,
    ``sem_open`` missing in the libc/sandbox, ...).  Tests use this for
    explicit skip markers instead of failing opaquely mid-run.
    """
    try:
        # platforms without a working sem_open (some musl/sandbox setups)
        # fail here rather than deep inside a Barrier
        import multiprocessing.synchronize  # noqa: F401
    except (ImportError, OSError) as exc:
        return False, f"multiprocessing.synchronize unavailable: {exc}"
    method = start_method or default_start_method()
    if method not in mp.get_all_start_methods():
        return False, f"start method {method!r} not available on this platform"
    try:
        ctx = mp.get_context(method)
        ctx.Barrier(1)  # touches the semaphore implementation
    except (ValueError, OSError) as exc:  # pragma: no cover - platform specific
        return False, f"cannot initialise {method!r} context: {exc}"
    return True, method


def crash_injection_support(
    start_method: Optional[str] = None,
) -> Tuple[bool, str]:
    """Probe whether fail-stop crash injection (SIGKILL of children) works.

    Everything :func:`process_backend_support` needs, plus ``os.kill`` and
    ``SIGKILL`` -- sandboxes that forbid signalling children (or Windows,
    which has no SIGKILL) make the recovery tests skip cleanly rather than
    hang or error mid-run.
    """
    ok, detail = process_backend_support(start_method)
    if not ok:
        return False, detail
    if not hasattr(os, "kill"):
        return False, "os.kill unavailable on this platform"
    if not hasattr(signal, "SIGKILL"):
        return False, "signal.SIGKILL unavailable (non-POSIX platform)"
    return True, detail


# ---------------------------------------------------------------------- #
# worker side
# ---------------------------------------------------------------------- #
def _match_store(
    store: Dict[int, Deque[Tuple[int, Any]]], source: int, tag: int
) -> Optional[Any]:
    """Pop the first buffered message matching ``(source, tag)``; None if none.

    Mirrors the scheduler's matching rule: FIFO per tag, first entry from
    the requested source (any entry for ``ANY_SOURCE``).
    """
    dq = store.get(tag)
    if not dq:
        return None
    if source == ANY_SOURCE:
        src, payload = dq.popleft()
    else:
        hit = None
        for i, (src_i, _) in enumerate(dq):
            if src_i == source:
                hit = i
                break
        if hit is None:
            return None
        src, payload = dq[hit]
        del dq[hit]
    if not dq:
        del store[tag]
    return (src, payload)


def _drive(rank, size, program, inboxes, result_q, barrier, timeout, trace,
           hb_interval=DEFAULT_HEARTBEAT_INTERVAL):
    """Run one rank's generator to completion; returns (result, report)."""
    gen = program(rank, size)
    inbox = inboxes[rank]
    store: Dict[int, Deque[Tuple[int, Any]]] = {}
    segments: List[Tuple[str, float, float, str]] = []
    compute_time = 0.0
    recv_wait = 0.0
    barrier_wait = 0.0
    flops = 0.0
    msgs_sent = 0
    words_sent = 0.0
    msgs_recv = 0
    words_recv = 0.0

    barrier.wait(timeout)  # align the measured start across ranks
    result_q.put(("hb", rank, time.monotonic()))  # liveness: run entered
    last_hb = time.monotonic()
    start = time.perf_counter()
    hard_deadline = None if timeout is None else start + timeout

    def _heartbeat() -> None:
        # periodic liveness: the parent's straggler detector watches the
        # age of these; a rank stuck in one slow op goes visibly stale
        nonlocal last_hb
        now = time.monotonic()
        if now - last_hb >= hb_interval:
            result_q.put(("hb", rank, now))
            last_hb = now

    def _remaining(op_deadline: Optional[float]) -> Optional[float]:
        now = time.perf_counter()
        cands = [d for d in (op_deadline, hard_deadline) if d is not None]
        if not cands:
            return None
        return min(cands) - now

    value: Any = None
    throw: Optional[BaseException] = None
    while True:
        t0 = time.perf_counter()
        try:
            if throw is not None:
                exc, throw = throw, None
                op = gen.throw(exc)
            else:
                op = gen.send(value)
        except StopIteration as stop:
            result = stop.value
            t_end = time.perf_counter()
            compute_time += t_end - t0
            if trace:
                segments.append(("compute", t0, t_end, ""))
            break
        t1 = time.perf_counter()
        compute_time += t1 - t0
        if trace:
            segments.append(("compute", t0, t1, ""))
        _heartbeat()
        value = None
        if isinstance(op, Compute):
            flops += op.flops  # the real work already ran inside the program
        elif isinstance(op, Send):
            if not 0 <= op.dest < size:
                raise ValueError(f"rank {rank} sent to invalid rank {op.dest}")
            inboxes[op.dest].put((rank, op.tag, op.payload))
            msgs_sent += 1
            words_sent += op.words()
        elif isinstance(op, Recv):
            if op.source != ANY_SOURCE and not 0 <= op.source < size:
                raise ValueError(
                    f"rank {rank} posted a receive from invalid rank "
                    f"{op.source} (nprocs={size})"
                )
            t_wait = time.perf_counter()
            op_deadline = None if op.timeout is None else t_wait + op.timeout
            matched = _match_store(store, op.source, op.tag)
            while matched is None:
                _heartbeat()  # a rank blocked in a receive is alive
                remaining = _remaining(op_deadline)
                if remaining is not None and remaining <= 0:
                    if op_deadline is not None and (
                        hard_deadline is None or op_deadline <= hard_deadline
                    ):
                        throw = RecvTimeoutError(
                            rank=rank,
                            peer=(
                                None if op.source == ANY_SOURCE else op.source
                            ),
                            tag=op.tag,
                            elapsed=op.timeout,
                        )
                        break
                    raise BackendTimeoutError(
                        f"rank {rank}: hard timeout ({timeout:g}s) expired "
                        f"waiting for a message (source={op.source}, "
                        f"tag={op.tag})"
                    )
                # cap each poll by the heartbeat interval so liveness keeps
                # flowing while we wait
                poll = hb_interval if remaining is None else min(
                    remaining, hb_interval
                )
                try:
                    src, tag, payload = inbox.get(timeout=max(poll, 1e-3))
                except queue_mod.Empty:
                    continue
                store.setdefault(tag, deque()).append((src, payload))
                matched = _match_store(store, op.source, op.tag)
            t_done = time.perf_counter()
            recv_wait += t_done - t_wait
            if matched is not None:
                src, payload = matched
                value = payload
                msgs_recv += 1
                words_recv += payload_words(payload)
                if trace:
                    segments.append(("p2p", t_wait, t_done, f"<- {src}"))
        elif isinstance(op, Checkpoint):
            # ship the snapshot to the supervising parent (stable storage);
            # the put doubles as a heartbeat for crash diagnostics
            result_q.put(("ckpt", rank, (op.iteration, op.payload)))
        elif isinstance(op, Barrier):
            t_wait = time.perf_counter()
            remaining = _remaining(None)
            try:
                barrier.wait(remaining)
            except Exception as exc:
                raise BackendTimeoutError(
                    f"rank {rank}: barrier broken or timed out "
                    f"({type(exc).__name__})"
                ) from exc
            t_done = time.perf_counter()
            barrier_wait += t_done - t_wait
            if trace:
                segments.append(("barrier", t_wait, t_done, op.label))
        else:
            raise TypeError(f"rank {rank} yielded a non-Op value: {op!r}")

    end = time.perf_counter()
    report = {
        "start": start,
        "end": end,
        "wall": end - start,
        "compute_time": compute_time,
        "recv_wait": recv_wait,
        "barrier_wait": barrier_wait,
        "comm_time": recv_wait + barrier_wait,
        "messages": msgs_recv,
        "messages_sent": msgs_sent,
        "words": words_recv,
        "words_sent": words_sent,
        "flops": flops,
        "segments": segments,
    }
    return result, report


def _worker_main(rank, size, program, inboxes, result_q, barrier, timeout,
                 trace, hb_interval=DEFAULT_HEARTBEAT_INTERVAL):
    """Process entry point: run the rank, ship (result, report) or the error."""
    try:
        outcome = ("ok", rank, _drive(rank, size, program, inboxes, result_q,
                                      barrier, timeout, trace, hb_interval))
        # tell the parent this rank is merely draining, not stuck: a rank
        # waiting at the drain barrier stops heartbeating, and without this
        # marker the straggler detector could mistake it for the slow one
        result_q.put(("done", rank, time.monotonic()))
        # Drain barrier: a finished rank may still have sends sitting in its
        # queues' feeder-thread buffers, and the cancel_join_thread() below
        # would discard them on exit.  Nobody leaves until every rank has
        # completed all its receives (the feeders keep flushing while we
        # wait), so cancelling can never lose an undelivered message.
        try:
            barrier.wait(timeout)
        except Exception:
            pass  # a peer failed or timed out; the run is failing anyway
    except BaseException as exc:  # noqa: BLE001 - must report, not die silently
        try:
            barrier.abort()  # release peers blocked at the drain barrier
        except Exception:
            pass
        outcome = ("err", rank, f"{type(exc).__name__}: {exc}\n"
                                f"{traceback.format_exc()}")
    try:
        result_q.put(outcome)
        result_q.close()
        result_q.join_thread()  # flush the result before tearing down
    finally:
        # stray messages to ranks that already exited must not block our
        # feeder threads at interpreter shutdown
        for q in inboxes:
            q.cancel_join_thread()


# ---------------------------------------------------------------------- #
# parent side
# ---------------------------------------------------------------------- #
class ProcessBackend(ExecutionBackend):
    """Execute SPMD rank programs on real OS processes with measured time.

    Parameters
    ----------
    start_method:
        ``"fork"``, ``"spawn"`` or ``"forkserver"``; ``None`` picks
        :func:`default_start_method`.  Under ``spawn`` the program factory
        must be picklable (a module-level class instance, not a closure).
    timeout:
        Hard wall-clock bound in seconds for the whole run.  Workers bound
        every blocking wait by it and the parent kills any process still
        alive once it expires (plus a small grace period).  ``None``
        disables the bound -- never do that in a test suite.  When not
        given, the ``REPRO_RUN_DEADLINE`` environment variable (a float in
        seconds, or ``none``/``off``/``disabled``) is consulted before
        falling back to ``DEFAULT_RUN_DEADLINE``.
    heartbeat_interval:
        Seconds between worker liveness heartbeats (positive).  When not
        given, ``REPRO_HEARTBEAT_INTERVAL`` is consulted before falling
        back to ``DEFAULT_HEARTBEAT_INTERVAL``.  Smaller intervals tighten
        straggler detection latency at the cost of queue traffic.
    straggler_deadline:
        Optional seconds of heartbeat staleness after which an unfinished
        rank is declared a straggler and the run aborted with
        :class:`~repro.machine.faults.StragglerDetectedError` (carrying
        ``rank`` and ``lag``).  Detection only fires while at least one
        *other* rank is demonstrably making progress (fresh heartbeat,
        finished, or reported), so a cold start or a global stall cannot
        misfire.  ``None`` (default) disables detection.  Must exceed the
        heartbeat interval, else every rank would look stale between
        beats.
    trace:
        Record measured per-rank compute/comm segments and return them as
        a :class:`~repro.machine.trace.Tracer` on the run.
    tag:
        Stats tag attached to the mirrored communication records.
    faults:
        Optional :class:`~repro.machine.faults.FaultPlan` whose *crash
        schedule* this backend executes for real: the parent SIGKILLs the
        scheduled rank once the run's wall clock passes ``at_time`` (real
        seconds here, simulated seconds on the simulator -- DESIGN.md §8).
        Message faults in the plan are ignored at this layer; inject them
        at the Comm boundary with :mod:`repro.backend.faulty`.  Crashes are
        consumed-once, so a recovery driver re-running on the same backend
        does not kill the respawned rank again.
    crash_on_checkpoint:
        ``{rank: iteration}`` -- SIGKILL ``rank`` as soon as the parent
        receives its checkpoint for ``iteration`` (or later).  A
        deterministic mid-solve trigger for tests and benches, immune to
        wall-clock jitter.  Consumed-once, like the fault-plan crashes.
    """

    name = "process"

    def __init__(
        self,
        start_method: Optional[str] = None,
        timeout: Optional[float] = _UNSET,
        trace: bool = False,
        tag: Optional[str] = None,
        faults: Optional[FaultPlan] = None,
        crash_on_checkpoint: Optional[Dict[int, int]] = None,
        heartbeat_interval: float = _UNSET,
        straggler_deadline: Optional[float] = None,
    ):
        self.start_method = start_method
        if timeout is _UNSET:
            timeout = _env_float(
                "REPRO_RUN_DEADLINE", DEFAULT_RUN_DEADLINE, none_ok=True
            )
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None to disable)")
        self.timeout = timeout
        if heartbeat_interval is _UNSET:
            heartbeat_interval = _env_float(
                "REPRO_HEARTBEAT_INTERVAL", DEFAULT_HEARTBEAT_INTERVAL
            )
        if heartbeat_interval is None or heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        self.heartbeat_interval = heartbeat_interval
        if straggler_deadline is not None:
            if straggler_deadline <= 0:
                raise ValueError(
                    "straggler_deadline must be positive (or None to disable)"
                )
            if straggler_deadline <= heartbeat_interval:
                raise ValueError(
                    f"straggler_deadline ({straggler_deadline:g}s) must exceed "
                    f"the heartbeat interval ({heartbeat_interval:g}s)"
                )
        self.straggler_deadline = straggler_deadline
        self.trace = trace
        self.tag = tag
        self.faults = faults
        self.crash_on_checkpoint = dict(crash_on_checkpoint or {})

    # -------------------------------------------------------------- #
    def _wants_kills(self) -> bool:
        return bool(self.crash_on_checkpoint) or (
            self.faults is not None and bool(self.faults.crash_schedule())
        )

    @staticmethod
    def _kill_rank(workers, rank: int) -> bool:
        """SIGKILL one worker (fail-stop injection); False if already gone."""
        w = workers[rank]
        if w.exitcode is not None or w.pid is None:
            return False  # finished (or never started): crash missed its window
        os.kill(w.pid, signal.SIGKILL)
        return True

    def _fire_due_time_kills(self, workers, reports, run_start: float) -> None:
        """Execute fault-plan crashes whose real-seconds deadline passed."""
        if self.faults is None:
            return
        elapsed = time.monotonic() - run_start
        for crash in self.faults.crash_schedule():
            if crash.at_time <= elapsed and crash.rank not in reports:
                self.faults.fire_crash(crash.rank)  # consumed-once
                self._kill_rank(workers, crash.rank)

    @staticmethod
    def _crashed_rank(workers, reports) -> Optional[int]:
        """The lowest unreported rank that vanished fail-stop (signal death)."""
        for r, w in enumerate(workers):
            if r not in reports and w.exitcode is not None and w.exitcode < 0:
                return r
        return None

    # -------------------------------------------------------------- #
    def run(
        self,
        program: ProgramFactory,
        nprocs: int,
        *,
        checkpoints: Optional[Dict[int, Dict[int, Any]]] = None,
    ) -> BackendRun:
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        ok, detail = process_backend_support(self.start_method)
        if not ok:
            raise BackendError(f"process backend unavailable: {detail}")
        if self._wants_kills():
            ok_kill, why = crash_injection_support(self.start_method)
            if not ok_kill:
                raise BackendError(f"crash injection unavailable: {why}")
        ctx = mp.get_context(detail)

        inboxes = [ctx.Queue() for _ in range(nprocs)]
        result_q = ctx.Queue()
        barrier = ctx.Barrier(nprocs)
        workers = [
            ctx.Process(
                target=_worker_main,
                args=(rank, nprocs, program, inboxes, result_q, barrier,
                      self.timeout, self.trace, self.heartbeat_interval),
                name=f"repro-rank-{rank}",
                daemon=True,
            )
            for rank in range(nprocs)
        ]
        reports: Dict[int, Tuple[Any, Dict[str, Any]]] = {}
        last_heartbeat: Dict[int, float] = {}
        done_ranks: set = set()
        try:
            for w in workers:
                w.start()
            run_start = time.monotonic()
            deadline = (
                None
                if self.timeout is None
                else run_start + self.timeout + _PARENT_GRACE
            )
            while len(reports) < nprocs:
                self._fire_due_time_kills(workers, reports, run_start)
                # every iteration, not just on an empty queue: busy peers
                # heartbeat constantly, so the queue is rarely empty while
                # a straggler silently stalls
                self._check_straggler(nprocs, reports, done_ranks,
                                      last_heartbeat)
                try:
                    kind, rank, payload = result_q.get(timeout=0.1)
                except queue_mod.Empty:
                    # classify a fail-stop loss before anything else: a rank
                    # that died by signal must surface as a crash, not as the
                    # timeout/abort its stalled peers would otherwise cause
                    crashed = self._crashed_rank(workers, reports)
                    if crashed is not None:
                        raise WorkerCrashedError(
                            crashed,
                            f"worker rank {crashed} vanished fail-stop "
                            f"(exitcode {workers[crashed].exitcode}; last "
                            f"heartbeat "
                            f"{self._hb_age(last_heartbeat, crashed):.2f}s ago)",
                        )
                    dead = [
                        w.name
                        for r, w in enumerate(workers)
                        if r not in reports
                        and w.exitcode is not None
                        and w.exitcode != 0
                    ]
                    if dead:
                        raise WorkerFailedError(
                            f"worker process(es) died without reporting: {dead}"
                        )
                    if deadline is not None and time.monotonic() > deadline:
                        raise BackendTimeoutError(
                            f"process backend timed out after {self.timeout:g}s; "
                            f"ranks missing: "
                            f"{sorted(set(range(nprocs)) - set(reports))}"
                        )
                    continue
                if kind == "hb":
                    last_heartbeat[rank] = time.monotonic()
                    continue
                if kind == "done":
                    # the rank finished its program and is only draining;
                    # exempt it from straggler staleness checks
                    done_ranks.add(rank)
                    last_heartbeat[rank] = time.monotonic()
                    continue
                if kind == "ckpt":
                    last_heartbeat[rank] = time.monotonic()
                    iteration, snapshot = payload
                    if checkpoints is not None:
                        checkpoints.setdefault(iteration, {})[rank] = snapshot
                    due = self.crash_on_checkpoint.get(rank)
                    if due is not None and iteration >= due:
                        del self.crash_on_checkpoint[rank]  # consumed-once
                        self._kill_rank(workers, rank)
                    continue
                if kind == "err":
                    # a peer's error may be collateral damage of an injected
                    # crash (broken barrier, receive timeout); report the
                    # root cause when one exists
                    crashed = self._crashed_rank(workers, reports)
                    if crashed is not None:
                        raise WorkerCrashedError(
                            crashed,
                            f"worker rank {crashed} vanished fail-stop; "
                            f"rank {rank} failed in the aftermath:\n{payload}",
                        )
                    raise WorkerFailedError(
                        f"rank {rank} failed on the process backend:\n{payload}"
                    )
                reports[rank] = payload
            for w in workers:
                w.join(timeout=_PARENT_GRACE)
        finally:
            # every exit path -- success, deadline, crash, worker error,
            # KeyboardInterrupt -- must leave zero live children and no
            # parent-side queue resources (a solver *service* runs
            # thousands of these; leaking one pipe pair per failed run
            # would exhaust the fd table)
            self._reap(workers)
            self._close_queues(inboxes + [result_q])

        return self._assemble(nprocs, reports)

    @staticmethod
    def _hb_age(last_heartbeat: Dict[int, float], rank: int) -> float:
        t = last_heartbeat.get(rank)
        return float("inf") if t is None else time.monotonic() - t

    def _check_straggler(
        self, nprocs, reports, done_ranks, last_heartbeat
    ) -> None:
        """Abort the run when a rank's heartbeats go deadline-stale.

        A rank counts as stale only once it has heartbeated at least once
        (so startup cost is never charged) and is neither done nor
        reported.  Detection further requires at least one *other* rank to
        be demonstrably healthy -- fresh heartbeat, done, or reported --
        so a machine-wide pause (swap storm, suspended laptop) does not
        scapegoat whichever rank happens to be oldest.
        """
        dl = self.straggler_deadline
        if dl is None:
            return
        now = time.monotonic()
        stale: Dict[int, float] = {}
        healthy = False
        for r in range(nprocs):
            if r in reports or r in done_ranks:
                healthy = True
                continue
            t = last_heartbeat.get(r)
            if t is None:
                continue  # not yet started measuring: never stale
            age = now - t
            if age > dl:
                stale[r] = age
            else:
                healthy = True
        if stale and healthy:
            victim = max(stale, key=stale.get)
            others = [
                now - t for r, t in last_heartbeat.items()
                if r != victim
            ]
            lag = stale[victim] - min(others) if others else stale[victim]
            raise StragglerDetectedError(rank=victim, lag=max(lag, 0.0))

    @staticmethod
    def _reap(workers) -> None:
        """Terminate, then kill, any worker still alive.  Never hangs.

        Every join carries a bound, so even a SIGTERM-proof child cannot
        wedge the caller; a final bounded join on *every* worker collects
        the exit status of processes that died on their own (no zombies
        left for ``active_children`` to report).
        """
        for w in workers:
            if w.is_alive():
                w.terminate()
        for w in workers:
            if w.is_alive():
                w.join(timeout=1.0)
        for w in workers:
            if w.pid is None:
                continue  # never started: nothing to collect
            if w.is_alive():  # pragma: no cover - needs a SIGTERM-proof child
                w.kill()
            w.join(timeout=1.0)

    @staticmethod
    def _close_queues(queues) -> None:
        """Release parent-side queue pipes/feeders without ever blocking."""
        for q in queues:
            try:
                q.cancel_join_thread()
                q.close()
            except (OSError, ValueError):  # pragma: no cover - already gone
                pass

    # -------------------------------------------------------------- #
    def _assemble(self, nprocs: int, reports) -> BackendRun:
        results = [reports[r][0] for r in range(nprocs)]
        per_rank_raw = [reports[r][1] for r in range(nprocs)]

        stats = MachineStats(nprocs)
        for r, rep in enumerate(per_rank_raw):
            stats.record_flops(r, rep["flops"])
            if rep["messages"]:
                stats.record_comm(
                    "p2p", rep["messages"], rep["words"], rep["recv_wait"],
                    self.tag,
                )
            if rep["barrier_wait"] > 0.0:
                stats.record_comm("barrier", 0, 0.0, rep["barrier_wait"], self.tag)

        t_zero = min(rep["start"] for rep in per_rank_raw)
        elapsed = max(rep["end"] for rep in per_rank_raw) - t_zero

        tracer = None
        if self.trace:
            tracer = Tracer(nprocs=nprocs)
            for r, rep in enumerate(per_rank_raw):
                for kind, s, e, det in rep["segments"]:
                    tracer.record(r, kind, s - t_zero, e - t_zero, det)

        per_rank = [
            {
                "wall": rep["wall"],
                "compute_time": rep["compute_time"],
                "comm_time": rep["comm_time"],
                "messages": float(rep["messages"]),
                "words": rep["words"],
                "flops": rep["flops"],
            }
            for rep in per_rank_raw
        ]
        timings = {
            "total": elapsed,
            "compute": sum(p["compute_time"] for p in per_rank) / nprocs,
            "comm": sum(p["comm_time"] for p in per_rank) / nprocs,
            "messages": float(sum(p["messages"] for p in per_rank)),
            "words": float(sum(p["words"] for p in per_rank)),
        }
        return BackendRun(
            backend=self.name,
            nprocs=nprocs,
            results=results,
            stats=stats,
            elapsed=elapsed,
            timings=timings,
            per_rank=per_rank,
            trace=tracer,
        )
