"""Algorithm-based fault tolerance (ABFT) checks for distributed CG.

Huang–Abraham-style checksums adapted to the two communication patterns of
the row-block CG iteration, to *detect* silent in-flight corruption rather
than discover it iterations later as a residual blow-up:

* **dot-product reductions** carry every partial sum twice
  (:func:`encode_dot` packs ``[s, s]``).  Both slots undergo the *same*
  elementwise additions, in the same binomial-tree order, on every backend
  -- so after the reduction they are bitwise equal unless a message was
  corrupted in flight.  :func:`decode_dot` therefore checks **exact**
  equality: no tolerance, no false positives, and a single perturbed
  word anywhere in the tree is caught on every rank.

* **the distributed mat-vec** is guarded by the classic column-checksum
  identity ``sum_i (A p)_i == (1^T A) p``.  Each rank knows the full
  column-sum vector (precomputed once from the CSR arrays with
  :func:`column_checksums`) and the full ``p`` it just allgathered, so the
  check costs one extra scalar per rank per iteration plus its reduction.
  Unlike the dot-product check this one needs a tolerance: the left side
  is accumulated in reduction-tree order, the right in BLAS order, so they
  differ by rounding.  The bound scales with ``|1^T| |A| |p|``
  (:func:`check_matvec`), the standard backward-error yardstick.

A failed check raises :class:`AbftChecksumError` inside the rank program;
the chaos harness (:mod:`repro.backend.chaos`) classifies it as a detected
silent-corruption failure, distinct from crashes and timeouts.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "AbftChecksumError",
    "encode_dot",
    "decode_dot",
    "column_checksums",
    "check_matvec",
]


class AbftChecksumError(RuntimeError):
    """An ABFT checksum mismatch: a reduction or mat-vec was corrupted."""


def encode_dot(value: float) -> np.ndarray:
    """Pack a partial dot-product as a duplicate-sum pair ``[s, s]``."""
    v = float(value)
    return np.array([v, v], dtype=np.float64)


def decode_dot(pair: np.ndarray, what: str = "dot") -> float:
    """Unpack a reduced duplicate-sum pair, checking exact slot equality.

    Exactness is sound because both slots experienced the identical
    floating-point operation sequence; see the module docstring.
    """
    pair = np.asarray(pair, dtype=np.float64)
    if pair.shape != (2,):
        raise AbftChecksumError(
            f"ABFT {what} reduction has shape {pair.shape}, expected (2,): "
            "payload structure corrupted in flight"
        )
    a, b = float(pair[0]), float(pair[1])
    if a != b and not (np.isnan(a) and np.isnan(b)):
        raise AbftChecksumError(
            f"ABFT {what} reduction checksum mismatch: "
            f"{a!r} != {b!r} (silent corruption in flight)"
        )
    return a


def column_checksums(
    n: int, indices: np.ndarray, data: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """``(1^T A, 1^T |A|)`` over the full matrix, from its CSR arrays.

    The signed sums verify the identity, the absolute sums scale the
    rounding tolerance of :func:`check_matvec`.
    """
    colsum = np.bincount(indices, weights=data, minlength=n)
    abs_colsum = np.bincount(indices, weights=np.abs(data), minlength=n)
    return colsum.astype(np.float64), abs_colsum.astype(np.float64)


def check_matvec(
    q_sum: float,
    colsum: np.ndarray,
    abs_colsum: np.ndarray,
    p_full: np.ndarray,
    rtol: float = 1.0e-8,
) -> None:
    """Verify ``sum(A p) == colsum @ p`` to within accumulated rounding.

    ``q_sum`` is the globally reduced ``sum_i (A p)_i``.  The tolerance is
    ``rtol * (|colsum| @ |p| + 1)``: proportional to the magnitude actually
    summed, never zero, and loose enough that reduction-order differences
    can never trip it while a fault-plan corruption (which perturbs an
    entry by orders of magnitude) always does.
    """
    expected = float(colsum @ p_full)
    scale = float(abs_colsum @ np.abs(p_full)) + 1.0
    if not np.isfinite(q_sum) or abs(q_sum - expected) > rtol * scale:
        raise AbftChecksumError(
            f"ABFT mat-vec column-checksum mismatch: sum(A p) = {q_sum!r} "
            f"vs 1^T A p = {expected!r} (tolerance {rtol * scale:.3e})"
        )
