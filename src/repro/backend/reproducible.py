"""Bitwise-reproducible reductions via a fixed-point superaccumulator.

Floating-point addition is not associative, so the value of a distributed
dot product depends on rank count, reduction-tree shape and whether the
per-iteration reductions were fused -- exactly the degrees of freedom this
repository exercises.  Following the long-accumulator designs of ExBLAS
(Iakymchuk et al., arXiv:2005.07282), this module removes the dependence:

* every float64 addend is **splat** exactly into a fixed-point accumulator
  of 32-bit limbs spanning the entire double range (down to the smallest
  subnormal, ``2**-1074``);
* limb vectors are **transported** through the existing packed
  :func:`repro.machine.spmd.allreduce_vec` -- each limb is an integer below
  ``2**32`` stored exactly in a float64 slot, and slot-wise float64 sums of
  such integers stay below ``2**53`` for any realistic rank count, so the
  reduction is *exact* regardless of tree shape, topology or fusion;
* the reduced accumulator **renders** to the correctly-rounded float64 of
  the exact sum (CPython big-int division is correctly rounded, including
  into the subnormal range).

Exact + correctly rounded == bitwise invariant: any ordering, chunking or
partitioning of the same multiset of addends produces the same bits.

The accumulator is the substrate of ``reproducible=True`` solves: local
elementwise products ``x[i] * y[i]`` are pointwise-deterministic under any
row partition, so splat + exact reduce + render makes every distributed dot
product and norm independent of ``p``.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

import numpy as np

__all__ = [
    "LIMB_BITS",
    "NLIMBS",
    "Superaccumulator",
    "dot_slots",
    "sum_slots",
    "render_slots",
    "pack_slots",
    "unpack_slots",
]

#: bits per limb; limbs live in int64 so partial sums have 31 bits of
#: headroom before a carry-propagation pass is needed
LIMB_BITS = 32
_LIMB_MASK = (1 << LIMB_BITS) - 1

#: bit position 0 of the accumulator is the least-significant bit of a
#: subnormal double, ``2**-1074``
_BIAS = 1074

#: ``np.frexp`` exponents span [-1073, 1024]; a 53-bit mantissa shifted to
#: bit ``e + 1021`` tops out below bit 2099, i.e. limb 65 -- two spare limbs
#: absorb carries from huge addend counts
NLIMBS = 68

#: splats between carry-normalisation passes; each splat adds < 2**33 to a
#: limb, so 2**28 of them stay far below the int64 overflow point
_NORMALIZE_EVERY = 1 << 28


class Superaccumulator:
    """Exact fixed-point accumulator for float64 addends.

    ``splat`` folds addends in exactly; ``add`` merges accumulators;
    ``render`` returns the correctly-rounded float64 of the exact sum.
    All three are order-invariant by construction.
    """

    __slots__ = ("limbs", "_pending")

    def __init__(self, limbs: Optional[np.ndarray] = None) -> None:
        if limbs is None:
            limbs = np.zeros(NLIMBS, dtype=np.int64)
        else:
            limbs = np.asarray(limbs)
            if limbs.shape != (NLIMBS,):
                raise ValueError(
                    f"superaccumulator has {NLIMBS} limbs, got shape "
                    f"{limbs.shape}"
                )
            limbs = limbs.astype(np.int64, copy=True)
        self.limbs = limbs
        self._pending = 0

    def splat(self, values: Iterable[float]) -> "Superaccumulator":
        """Fold ``values`` (float64 array-like) into the accumulator exactly."""
        x = np.ascontiguousarray(np.asarray(values, dtype=np.float64)).ravel()
        if x.size == 0:
            return self
        if not np.all(np.isfinite(x)):
            raise ValueError("superaccumulator addends must be finite")
        x = x[x != 0.0]
        if x.size == 0:
            return self
        # x = m * 2**e with |m| in [0.5, 1); the 53-bit signed integer
        # mantissa is exact even for subnormals
        m, e = np.frexp(x)
        mant = np.round(np.ldexp(m, 53)).astype(np.int64)
        # value * 2**1074 = mant * 2**q; q < 0 only for subnormals whose
        # low mantissa bits are zero, so the shift below is exact
        q = e.astype(np.int64) + (_BIAS - 53)
        neg = q < 0
        if np.any(neg):
            mant = np.where(neg, mant >> (-q * neg), mant)
            q = np.where(neg, 0, q)
        limb, r = np.divmod(q, LIMB_BITS)
        # split mant * 2**r into three sub-2**53 limb pieces: the unsigned
        # low 32 bits shifted by r (two pieces) plus the signed high part
        lo = (mant & _LIMB_MASK) << r
        hi = (mant >> LIMB_BITS) << r
        acc = self.limbs
        np.add.at(acc, limb, lo & _LIMB_MASK)
        np.add.at(acc, limb + 1, (lo >> LIMB_BITS) + (hi & _LIMB_MASK))
        np.add.at(acc, limb + 2, hi >> LIMB_BITS)
        self._pending += x.size
        if self._pending >= _NORMALIZE_EVERY:
            self._normalize()
        return self

    def add(self, other: "Superaccumulator") -> "Superaccumulator":
        """Merge another accumulator in (exact)."""
        other._normalize()
        self.limbs += other.limbs
        self._pending += 1
        return self

    def _normalize(self) -> None:
        """Carry-propagate so limbs 0..N-2 are in [0, 2**32)."""
        acc = self.limbs
        carry = np.int64(0)
        for i in range(NLIMBS - 1):
            v = acc[i] + carry
            acc[i] = v & _LIMB_MASK
            carry = v >> LIMB_BITS  # arithmetic shift: floor, keeps sign
        acc[NLIMBS - 1] += carry
        self._pending = 0

    def render(self) -> float:
        """The correctly-rounded float64 of the exact accumulated sum."""
        self._normalize()
        total = 0
        for i in range(NLIMBS):
            limb = int(self.limbs[i])
            if limb:
                total += limb << (LIMB_BITS * i)
        if total == 0:
            return 0.0
        try:
            # CPython int/int true division is correctly rounded, subnormals
            # included; the denominator is exact
            return total / (1 << _BIAS)
        except OverflowError:
            return math.inf if total > 0 else -math.inf

    def to_slots(self) -> np.ndarray:
        """Normalised limbs as float64 slots for ``allreduce_vec`` transport.

        Every slot is an integer of magnitude below ``2**32`` (the top limb
        below ``2**53``), so float64 represents it exactly and slot-wise
        sums over ranks remain exact integers below ``2**53`` -- the
        reduction is associative and the result tree-shape-invariant.
        """
        self._normalize()
        if abs(int(self.limbs[NLIMBS - 1])) >= (1 << 53):
            raise OverflowError("superaccumulator top limb exceeds exact float64")
        return self.limbs.astype(np.float64)

    @classmethod
    def from_slots(cls, slots: np.ndarray) -> "Superaccumulator":
        """Rebuild from (possibly slot-wise summed) float64 transport slots."""
        arr = np.asarray(slots, dtype=np.float64)
        if arr.shape != (NLIMBS,):
            raise ValueError(
                f"expected {NLIMBS} transport slots, got shape {arr.shape}"
            )
        if not np.all(arr == np.rint(arr)):
            raise ValueError("transport slots must hold exact integers")
        return cls(limbs=arr.astype(np.int64))


def dot_slots(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Transport slots of the local contribution to a reproducible dot.

    The elementwise products are pointwise-deterministic under any row
    partition (each ``x[i] * y[i]`` is a single IEEE multiply), so splatting
    them exactly makes the global dot independent of the partition.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    return Superaccumulator().splat(x * y).to_slots()


def sum_slots(values: np.ndarray) -> np.ndarray:
    """Transport slots of the local contribution to a reproducible sum."""
    return Superaccumulator().splat(values).to_slots()


def render_slots(slots: np.ndarray) -> float:
    """Correctly-rounded float64 of globally-reduced transport slots."""
    return Superaccumulator.from_slots(slots).render()


def pack_slots(groups: Iterable[np.ndarray]) -> np.ndarray:
    """Concatenate per-dot slot blocks into one ``allreduce_vec`` payload."""
    return np.concatenate([np.asarray(g, dtype=np.float64) for g in groups])


def unpack_slots(vec: np.ndarray, k: int) -> list:
    """Split a reduced payload back into ``k`` slot blocks."""
    arr = np.asarray(vec, dtype=np.float64)
    if arr.size != k * NLIMBS:
        raise ValueError(
            f"packed payload has {arr.size} slots, expected {k}x{NLIMBS}"
        )
    return [arr[i * NLIMBS:(i + 1) * NLIMBS] for i in range(k)]
