"""Comm-level fault injection: one seeded plan, identical on both backends.

PR 1 injected message faults inside the simulated scheduler, which the
process backend can never reach.  This module moves the injection point up
to the boundary every backend shares -- the operation stream a rank
program yields -- so drop, duplicate, corrupt and delay behave *and
sequence* identically whether the ops are interpreted by the
discrete-event scheduler or by real OS processes.

Determinism across substrates comes from two choices:

* each rank draws its decisions from its **own** generator, derived from
  the user's plan by :meth:`~repro.machine.faults.FaultPlan.for_rank`, so
  no global RNG ordering between ranks is needed;
* decisions are consulted in the **sending rank's program order** -- the
  order of ``Send`` ops in the program text -- which is the same on every
  substrate by construction.

Given the same user plan, the injected-fault sequence per rank is
therefore identical on the simulated and the process backend (asserted by
:func:`repro.backend.validate.fault_sequence_parity`).

Injection semantics at this layer (NIC-level, before the wire):

* **drop** -- the ``Send`` is swallowed; the message never enters the
  network and nothing is charged (the simulated scheduler's in-network
  drop charged wire time; a NIC-level drop does not);
* **corrupt** -- the payload is perturbed by the plan's seeded
  :meth:`~repro.machine.faults.FaultPlan.corrupt_payload`;
* **duplicate** -- the ``Send`` is yielded twice back-to-back;
* **delay** -- the ``Send`` is deferred and flushed immediately before the
  rank's next blocking operation (``Recv``/``Barrier``) or at program
  end.  That reorders it behind later sends -- observably perturbing
  delivery order -- while guaranteeing it is on the wire before the
  sender can possibly block on the reply, so request/response protocols
  cannot deadlock on the injection itself.

Control traffic (``Send(control=True)``, the reliable layer's acks) is
exempt, mirroring the scheduler's modelling of a flow-controlled control
channel.  Self-sends are exempt (they never touch the network).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..machine.events import Barrier, Compute, Recv, Send
from ..machine.faults import (
    CORRUPT,
    DELAY,
    DELIVER,
    DROP,
    DUPLICATE,
    FaultPlan,
    RankSlowdown,
)
from .base import Comm, ProgramFactory, RankProgram

__all__ = [
    "FaultInjector",
    "FaultyComm",
    "FaultInjectingProgram",
    "SlowdownProgram",
]

#: one fault-log entry: (message ordinal on this rank, action, dest, tag)
LogEntry = Tuple[int, str, int, int]


class FaultInjector:
    """Applies one rank-local fault plan to a stream of yielded ops.

    ``plan`` must already be rank-local (built with ``plan.for_rank(rank)``)
    so its RNG stream is consulted only by this rank's sends.  ``log``
    records every non-deliver decision in program order -- the artifact the
    cross-backend parity check compares.
    """

    def __init__(self, plan: FaultPlan, rank: int):
        self.plan = plan
        self.rank = rank
        self.log: List[LogEntry] = []
        self._deferred: List[Send] = []

    # ------------------------------------------------------------------ #
    def wrap(self, gen: RankProgram, augment_result: bool = False) -> RankProgram:
        """Drive ``gen``, injecting faults into its outbound sends.

        Forwards resume values and thrown exceptions (receive timeouts)
        transparently, so the wrapped generator is a drop-in replacement.
        With ``augment_result`` the program's return value becomes
        ``{"result": ..., "fault_log": [...], "fault_stats": {...}}``.
        """
        plan, rank = self.plan, self.rank
        value: Any = None
        throw: Optional[BaseException] = None
        while True:
            try:
                if throw is not None:
                    exc, throw = throw, None
                    op = gen.throw(exc)
                else:
                    op = gen.send(value)
            except StopIteration as stop:
                for d in self._deferred:  # nothing may be silently lost
                    yield d
                self._deferred.clear()
                if augment_result:
                    return {
                        "result": stop.value,
                        "fault_log": list(self.log),
                        "fault_stats": plan.stats.as_dict(),
                    }
                return stop.value
            value = None
            if isinstance(op, Send) and not op.control and op.dest != rank:
                action = plan.next_action(rank, op.dest, op.tag)
                ordinal = plan.stats.messages_seen
                if action == DROP:
                    self.log.append((ordinal, DROP, op.dest, op.tag))
                    continue
                if action == CORRUPT:
                    self.log.append((ordinal, CORRUPT, op.dest, op.tag))
                    op = dataclasses.replace(
                        op, payload=plan.corrupt_payload(op.payload)
                    )
                elif action == DELAY:
                    self.log.append((ordinal, DELAY, op.dest, op.tag))
                    plan.delay_for()  # keep the RNG stream substrate-aligned
                    self._deferred.append(op)
                    continue
                elif action == DUPLICATE:
                    self.log.append((ordinal, DUPLICATE, op.dest, op.tag))
                    try:
                        yield op
                    except Exception as exc:  # pragma: no cover - drivers
                        throw = exc          # never throw at a Send
                        continue
                assert action in (DELIVER, CORRUPT, DUPLICATE)
                try:
                    yield op
                except Exception as exc:  # pragma: no cover - see above
                    throw = exc
                continue
            if isinstance(op, (Recv, Barrier)):
                # flush delayed sends before blocking: they must be on the
                # wire before any reply we are about to wait for
                for d in self._deferred:
                    try:
                        yield d
                    except Exception as exc:  # pragma: no cover
                        throw = exc
                self._deferred.clear()
                if throw is not None:
                    continue
                try:
                    value = yield op
                except Exception as exc:  # receive timeout: forward inward
                    throw = exc
                continue
            try:
                yield op  # Compute / Checkpoint / control or self Send
            except Exception as exc:  # pragma: no cover - drivers
                throw = exc


def _merge_injector_stats(gen: RankProgram, injector: FaultInjector):
    """Fold the injector's fault counters into a solver result's extras.

    Solver programs return ``(..., extras_dict)`` tuples; the counters of
    faults actually injected live in the wrapper, which would otherwise
    die with the worker process.  Results of any other shape pass through
    untouched.
    """
    result = yield from gen
    if (
        isinstance(result, tuple)
        and result
        and isinstance(result[-1], dict)
    ):
        extras = dict(result[-1])
        extras["injected_faults"] = injector.plan.stats.as_dict()
        result = result[:-1] + (extras,)
    return result


class FaultyComm(Comm):
    """A :class:`~repro.backend.base.Comm` whose traffic is fault-injected.

    Drop-in replacement for programs written against the ``Comm`` API:
    every primitive and collective routes its op stream through one shared
    :class:`FaultInjector`, so the injector's RNG is consulted in plain
    program order across all of them.  ``plan`` is the *user-level* plan;
    the rank-local derivation happens here.
    """

    def __init__(self, rank: int, size: int, plan: FaultPlan):
        super().__init__(rank, size)
        self.injector = FaultInjector(plan.for_rank(rank), rank)

    def _w(self, gen: RankProgram) -> RankProgram:
        return self.injector.wrap(gen)

    def send(self, *args, **kwargs):
        return self._w(super().send(*args, **kwargs))

    def recv(self, *args, **kwargs):
        return self._w(super().recv(*args, **kwargs))

    def bcast(self, *args, **kwargs):
        return self._w(super().bcast(*args, **kwargs))

    def reduce(self, *args, **kwargs):
        return self._w(super().reduce(*args, **kwargs))

    def allreduce_sum(self, *args, **kwargs):
        return self._w(super().allreduce_sum(*args, **kwargs))

    def gather(self, *args, **kwargs):
        return self._w(super().gather(*args, **kwargs))

    def allgather(self, *args, **kwargs):
        return self._w(super().allgather(*args, **kwargs))

    def scatter(self, *args, **kwargs):
        return self._w(super().scatter(*args, **kwargs))


class FaultInjectingProgram:
    """Picklable factory wrapping a whole rank program in fault injection.

    ``FaultInjectingProgram(inner, plan)(rank, size)`` builds the inner
    rank generator and streams it through a :class:`FaultInjector` seeded
    with ``plan.for_rank(rank)``.  Module-level and holding only picklable
    state, so it survives the process backend's ``spawn`` start method
    like every factory in :mod:`repro.backend.programs`.

    With ``return_log=True`` each rank's result is replaced by
    ``{"result", "fault_log", "fault_stats"}`` -- how the fault sequence
    escapes a worker *process*, where an in-memory log would die with the
    child.
    """

    def __init__(
        self,
        inner: ProgramFactory,
        plan: FaultPlan,
        return_log: bool = False,
    ):
        self.inner = inner
        self.plan = plan
        self.return_log = bool(return_log)

    def __call__(self, rank: int, size: int) -> RankProgram:
        injector = FaultInjector(self.plan.for_rank(rank), rank)
        wrapped = injector.wrap(
            self.inner(rank, size), augment_result=self.return_log
        )
        if self.return_log:
            return wrapped
        return _merge_injector_stats(wrapped, injector)

    # the recovery driver sets ``restart``/``layout`` on whatever factory it
    # runs; forward both to the wrapped program, which is what honours them.
    # Explicit properties (not __getattr__) so pickling stays well-defined.
    @property
    def restart(self):
        return getattr(self.inner, "restart", None)

    @restart.setter
    def restart(self, value):
        self.inner.restart = value

    @property
    def layout(self):
        return getattr(self.inner, "layout", None)

    @layout.setter
    def layout(self, value):
        self.inner.layout = value

    @property
    def default_layout(self):
        # raises AttributeError (-> getattr default) when the inner
        # program has no layout-factory seam
        return self.inner.default_layout

    @property
    def n(self):
        return self.inner.n

    @property
    def indptr(self):
        return self.inner.indptr


class SlowdownProgram:
    """Picklable factory injecting *real* per-op slowdowns (process backend).

    The simulated scheduler models a straggler by dilating charged compute
    time; real OS processes need real lateness a heartbeat monitor can
    observe.  This wrapper sleeps ``op_delay`` wall-clock seconds before
    forwarding each :class:`~repro.machine.events.Compute` op of a slowed
    rank, starting once ``at_time`` seconds have elapsed since the rank
    entered its program.  All other ops, resume values and thrown
    exceptions pass through untouched, so the wrapped program's numerics
    and message sequence are byte-identical to the unwrapped run -- the
    rank is merely late.

    ``drop_slowdown`` / ``remap_ranks`` mirror the
    :class:`~repro.machine.faults.FaultPlan` consumed-once semantics so the
    recovery driver can retire or renumber slowdowns across restarts.
    """

    def __init__(
        self,
        inner: ProgramFactory,
        slowdowns: Sequence[RankSlowdown] = (),
    ):
        self.inner = inner
        ranks = [s.rank for s in slowdowns]
        if len(ranks) != len(set(ranks)):
            raise ValueError("at most one slowdown per rank")
        self.slowdowns: Dict[int, RankSlowdown] = {s.rank: s for s in slowdowns}

    def drop_slowdown(self, rank: int) -> Optional[RankSlowdown]:
        """Consume ``rank``'s slowdown (``None`` if none scheduled)."""
        return self.slowdowns.pop(rank, None)

    def remap_ranks(self, survivors: Sequence[int]) -> None:
        """Renumber pending slowdowns after a shrink (drops dead ranks)."""
        new_of = {old: new for new, old in enumerate(survivors)}
        self.slowdowns = {
            new_of[r]: RankSlowdown(
                rank=new_of[r], at_time=s.at_time, factor=s.factor,
                op_delay=s.op_delay,
            )
            for r, s in self.slowdowns.items()
            if r in new_of
        }

    def __call__(self, rank: int, size: int) -> RankProgram:
        gen = self.inner(rank, size)
        slow = self.slowdowns.get(rank)
        if slow is None or slow.op_delay <= 0.0:
            return gen
        return self._slowed(gen, slow)

    @staticmethod
    def _slowed(gen: RankProgram, slow: RankSlowdown) -> RankProgram:
        start = time.monotonic()
        value: Any = None
        throw: Optional[BaseException] = None
        while True:
            try:
                if throw is not None:
                    exc, throw = throw, None
                    op = gen.throw(exc)
                else:
                    op = gen.send(value)
            except StopIteration as stop:
                return stop.value
            value = None
            if (
                isinstance(op, Compute)
                and time.monotonic() - start >= slow.at_time
            ):
                time.sleep(slow.op_delay)
            try:
                value = yield op
            except Exception as exc:  # receive timeout: forward inward
                throw = exc

    # driver-facing forwarding, same contract as FaultInjectingProgram
    @property
    def restart(self):
        return getattr(self.inner, "restart", None)

    @restart.setter
    def restart(self, value):
        self.inner.restart = value

    @property
    def layout(self):
        return getattr(self.inner, "layout", None)

    @layout.setter
    def layout(self, value):
        self.inner.layout = value

    @property
    def default_layout(self):
        # raises AttributeError (-> getattr default) when the inner
        # program has no layout-factory seam
        return self.inner.default_layout

    @property
    def n(self):
        return self.inner.n

    @property
    def indptr(self):
        return self.inner.indptr
