"""Per-message-tag send counting for rank programs, on either backend.

Neither substrate's :class:`~repro.machine.stats.MachineStats` keeps
per-*message-tag* totals (the scheduler and the process supervisor record
one run-level stats tag), but several invariants in this repo are stated
in message-tag terms -- "the fused recurrence issues exactly one
allreduce tree per iteration", "a restart must not replay the ``bnorm``
reduction".  :class:`TagCountingProgram` wraps any rank program and
tallies every yielded :class:`~repro.machine.events.Send` by its tag,
returning ``{"result": ..., "send_tags": {tag: count}}`` per rank, so a
counted run pins those invariants on the simulator *and* on real
processes (the tallies travel home in the pickled rank result).
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..machine.events import Send

__all__ = ["TagCountingProgram", "tally_send_tags", "allreduce_trees"]


class TagCountingProgram:
    """Wrap a rank-program factory; tally Sends by message tag per rank."""

    def __init__(self, inner) -> None:
        self.inner = inner

    # expose the wrapped program's metadata (layout, n, ...) for drivers
    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)

    def __call__(self, rank: int, size: int):
        gen = self.inner(rank, size)
        counts: Dict[int, int] = {}
        try:
            op = next(gen)
        except StopIteration as stop:
            return {"result": stop.value, "send_tags": counts}
        while True:
            if isinstance(op, Send):
                counts[op.tag] = counts.get(op.tag, 0) + 1
            # exceptions thrown into this wrapper (receive timeouts,
            # injected faults) must reach the wrapped program's own
            # handlers at *its* yield point, not unwind here
            try:
                reply = yield op
            except BaseException as exc:
                try:
                    op = gen.throw(exc)
                except StopIteration as stop:
                    return {"result": stop.value, "send_tags": counts}
                continue
            try:
                op = gen.send(reply)
            except StopIteration as stop:
                return {"result": stop.value, "send_tags": counts}


def tally_send_tags(results: List[Any]) -> Dict[int, int]:
    """Merge the per-rank ``send_tags`` dicts of a counted run's results."""
    total: Dict[int, int] = {}
    for res in results:
        for tag, count in res["send_tags"].items():
            total[tag] = total.get(tag, 0) + count
    return total


def allreduce_trees(results: List[Any], nprocs: int, tag: int = 3) -> float:
    """Number of whole-machine allreduce trees a counted run performed.

    The reduce phase of :func:`~repro.machine.spmd.allreduce_sum` (and of
    the packed :func:`~repro.machine.spmd.allreduce_vec`) sends exactly
    ``P - 1`` messages on ``tag``; dividing the tallied count recovers the
    tree count regardless of backend.  ARQ acks travel on their own tag
    range (``ACK_TAG_BASE + tag``) so they never pollute this count.
    Returns a float so an unexpected partial tree shows up as a
    non-integer instead of silently rounding.
    """
    if nprocs == 1:
        return 0.0
    return tally_send_tags(results).get(tag, 0) / (nprocs - 1)
