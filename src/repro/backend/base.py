"""Execution-backend abstraction: one SPMD program, two substrates.

A rank program is a Python generator yielding the operations of
:mod:`repro.machine.events` (``Send``/``Recv``/``Compute``/``Barrier``).
The same generator can execute on two very different substrates:

* the **simulated** backend (:class:`~repro.backend.simulated.SimulatedBackend`)
  drives it through the deterministic discrete-event
  :class:`~repro.machine.scheduler.Scheduler`, pricing every operation with
  the paper's ``t_startup + m·t_comm`` cost model;
* the **process** backend (:class:`~repro.backend.process.ProcessBackend`)
  runs one OS process per rank, carries payloads over real
  ``multiprocessing`` queues, and measures wall-clock time with
  ``time.perf_counter``.

Because both backends interpret the *same* yielded operations and the same
NumPy arithmetic executes in program order, a fault-free solve produces
bitwise-identical numerical results on both -- the cross-validation layer
(:mod:`repro.backend.validate`) asserts exactly that, and the timing gap
between the two is the modelled-vs-measured comparison of benchmark E20.

This module defines the pieces both implementations share:

* :class:`Comm` -- a communicator adapter bound to ``(rank, size)`` whose
  generator methods wrap the raw events and the :mod:`repro.machine.spmd`
  collectives, so rank programs can be written against one object instead
  of scattering ``yield Send(...)`` calls (the ``DistributedArray`` /
  ``Partition`` idiom of pylops-mpi, at the message-passing level);
* :class:`BackendRun` -- the uniform result record: per-rank return
  values, a :class:`~repro.machine.stats.MachineStats` in the exact shape
  the simulator produces, an elapsed time, and a time decomposition;
* :class:`ExecutionBackend` -- the interface both backends implement.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

from ..machine.events import (
    ANY_SOURCE, Barrier, Checkpoint, Compute, Op, Recv, Send,
)
from ..machine import spmd
from ..machine.faults import RecvTimeoutError
from ..machine.stats import MachineStats

__all__ = [
    "Comm",
    "BackendRun",
    "ExecutionBackend",
    "BackendError",
    "BackendTimeoutError",
    "WorkerFailedError",
    "WorkerCrashedError",
    "RecvTimeoutError",
]

RankProgram = Generator[Op, Any, Any]
ProgramFactory = Callable[[int, int], RankProgram]


class BackendError(RuntimeError):
    """Base class for execution-backend failures."""


class BackendTimeoutError(BackendError, TimeoutError):
    """The hard wall-clock timeout expired before every rank finished.

    Distinct from :class:`~repro.machine.faults.RecvTimeoutError`, which is
    the *per-receive* timeout raised inside a rank program (the canonical
    timeout type on both substrates -- re-exported here so backend code
    never needs a bare ``queue.Empty`` or a second timeout class); this one
    is the run-level deadline the caller set on the whole solve.
    """


class WorkerFailedError(BackendError):
    """A worker process died or raised; the run's results are incomplete."""


class WorkerCrashedError(WorkerFailedError):
    """A worker process vanished fail-stop (killed or segfaulted).

    Carries the ``rank`` that died so a recovery driver can respawn it and
    restart from the newest complete checkpoint instead of aborting.
    """

    def __init__(self, rank: int, message: Optional[str] = None):
        super().__init__(
            message or f"worker rank {rank} crashed (fail-stop)"
        )
        self.rank = rank


class Comm:
    """Backend-neutral communicator for SPMD rank programs.

    Bound to one ``(rank, size)`` pair; every method is a generator to be
    driven with ``yield from``, so the same program text runs unchanged on
    the simulated scheduler and on real OS processes::

        def program(rank, size):
            comm = Comm(rank, size)
            total = yield from comm.allreduce_sum(local_dot)
            yield from comm.compute(2.0 * n_local)

    The collective algorithms are exactly those of
    :mod:`repro.machine.spmd` (binomial trees), so reduction *order* -- and
    therefore floating-point rounding -- is identical across backends.
    """

    def __init__(self, rank: int, size: int):
        if size < 1:
            raise ValueError("size must be >= 1")
        if not 0 <= rank < size:
            raise ValueError(f"rank {rank} out of range for size {size}")
        self.rank = rank
        self.size = size

    # -------------------------------------------------------------- #
    # point-to-point and local ops
    # -------------------------------------------------------------- #
    def send(self, dest: int, payload: Any = None, tag: int = 0,
             nwords: Optional[float] = None) -> RankProgram:
        """Eager send of ``payload`` to ``dest``."""
        yield Send(dest=dest, payload=payload, tag=tag, nwords=nwords)

    def recv(self, source: int = ANY_SOURCE, tag: int = 0,
             timeout: Optional[float] = None) -> RankProgram:
        """Blocking receive; returns the payload."""
        payload = yield Recv(source=source, tag=tag, timeout=timeout)
        return payload

    def compute(self, flops: float) -> RankProgram:
        """Charge local floating-point work (declared flop count)."""
        yield Compute(flops)

    def barrier(self, label: str = "") -> RankProgram:
        """Global synchronisation across all ranks."""
        yield Barrier(label)

    def checkpoint(self, iteration: int, payload: Any) -> RankProgram:
        """Publish this rank's recovery snapshot for ``iteration``.

        The substrate stores it (scheduler checkpoint store / parent
        process); publishing is free here -- charge the copy cost with an
        adjacent :meth:`compute` so both substrates price it identically.
        """
        yield Checkpoint(iteration=iteration, payload=payload)

    # -------------------------------------------------------------- #
    # collectives (binomial trees from repro.machine.spmd)
    # -------------------------------------------------------------- #
    def bcast(self, value: Any, root: int = 0, tag: int = 1) -> RankProgram:
        result = yield from spmd.bcast(self.rank, self.size, value, root, tag)
        return result

    def reduce(self, value: Any, root: int = 0, op=None, tag: int = 2) -> RankProgram:
        kwargs = {"op": op} if op is not None else {}
        result = yield from spmd.reduce_to_root(
            self.rank, self.size, value, root=root, tag=tag, **kwargs
        )
        return result

    def allreduce_sum(self, value: Any, tag: int = 3) -> RankProgram:
        result = yield from spmd.allreduce_sum(self.rank, self.size, value, tag=tag)
        return result

    def gather(self, value: Any, root: int = 0, tag: int = 5) -> RankProgram:
        result = yield from spmd.gather_to_root(
            self.rank, self.size, value, root=root, tag=tag
        )
        return result

    def allgather(self, value: Any, tag: int = 7) -> RankProgram:
        result = yield from spmd.allgather(self.rank, self.size, value, tag=tag)
        return result

    def scatter(self, values: Optional[List[Any]], root: int = 0,
                tag: int = 9) -> RankProgram:
        result = yield from spmd.scatter_from_root(
            self.rank, self.size, values, root=root, tag=tag
        )
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Comm(rank={self.rank}, size={self.size})"


@dataclass
class BackendRun:
    """Outcome of running one SPMD program on an execution backend.

    ``stats`` always has the :class:`~repro.machine.stats.MachineStats`
    shape: the simulated backend fills it with modelled times, the process
    backend mirrors its measured per-rank counters into it, so analysis
    and benchmark code reads either uniformly.

    ``elapsed`` is simulated parallel time (max rank clock) or measured
    wall-clock time (max over ranks, barrier-aligned start), in seconds.

    ``timings`` decomposes ``elapsed``: keys ``"total"``, ``"compute"``
    and ``"comm"`` (sums over ranks divided by nprocs, i.e. averages).

    ``per_rank`` holds one dict per rank with the raw counters
    (``wall``, ``compute_time``, ``comm_time``, ``messages``, ``words``,
    ``flops``).

    ``recovery`` is filled by the fault-tolerant driver
    (:func:`repro.backend.solve.run_with_recovery`): counters such as
    ``attempts``, ``crashes_recovered``, ``restart_iterations`` and the
    recovery wall-clock.  Empty for plain runs.
    """

    backend: str
    nprocs: int
    results: List[Any]
    stats: MachineStats
    elapsed: float
    timings: Dict[str, float] = field(default_factory=dict)
    per_rank: List[Dict[str, float]] = field(default_factory=list)
    trace: Optional[object] = None  # a repro.machine.trace.Tracer, if enabled
    recovery: Dict[str, Any] = field(default_factory=dict)


class ExecutionBackend(abc.ABC):
    """Interface shared by the simulated and process backends."""

    #: short identifier ("simulated" / "process")
    name: str = "backend"

    @abc.abstractmethod
    def run(
        self,
        program: ProgramFactory,
        nprocs: int,
        *,
        checkpoints: Optional[Dict[int, Dict[int, Any]]] = None,
    ) -> BackendRun:
        """Instantiate ``program(rank, nprocs)`` per rank, run all to completion.

        ``checkpoints`` is an optional caller-owned store that
        :class:`~repro.machine.events.Checkpoint` ops write into
        (``{iteration: {rank: payload}}``); it survives a failed run so the
        recovery driver can restart from the newest complete entry.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
