"""Load-balance diagnostics for distributed solves (Section 5.2.2).

Quantifies the imbalance the paper's balanced partitioner exists to fix:
per-rank work distributions, max/mean ratios, and parallel efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "LoadReport",
    "load_report",
    "parallel_efficiency",
    "ShrinkReport",
    "shrink_report",
]


@dataclass(frozen=True)
class LoadReport:
    """Summary of a per-rank work distribution."""

    per_rank: tuple
    total: float
    mean: float
    maximum: float
    minimum: float
    imbalance: float  # max / mean; 1.0 = perfect
    cv: float  # coefficient of variation

    def __str__(self) -> str:
        return (
            f"total={self.total:.0f} max={self.maximum:.0f} "
            f"mean={self.mean:.1f} imbalance={self.imbalance:.3f}"
        )


def load_report(per_rank_work) -> LoadReport:
    """Build a :class:`LoadReport` from per-rank flops / nonzero counts."""
    work = np.asarray(per_rank_work, dtype=np.float64)
    if work.ndim != 1 or work.size == 0:
        raise ValueError("per_rank_work must be a non-empty 1-D array")
    mean = float(work.mean())
    return LoadReport(
        per_rank=tuple(float(w) for w in work),
        total=float(work.sum()),
        mean=mean,
        maximum=float(work.max()),
        minimum=float(work.min()),
        imbalance=float(work.max() / mean) if mean else 1.0,
        cv=float(work.std() / mean) if mean else 0.0,
    )


def parallel_efficiency(serial_time: float, parallel_time: float, nprocs: int) -> float:
    """``T_serial / (N_P * T_parallel)`` -- 1.0 is ideal speedup."""
    if parallel_time <= 0 or nprocs < 1:
        raise ValueError("parallel_time must be positive and nprocs >= 1")
    return serial_time / (nprocs * parallel_time)


@dataclass(frozen=True)
class ShrinkReport:
    """Before/after load balance of a degraded-mode shrink.

    Compares the pre-fault layout on the full rank set with the post-
    REDISTRIBUTE layout on the survivors: per-rank loads, imbalance
    ratios, and the slowdown a perfectly balanced shrink would cost
    (``expected_slowdown = P_old / P_new``) against the bottleneck
    slowdown actually realised.
    """

    before: LoadReport
    after: LoadReport
    nprocs_before: int
    nprocs_after: int
    expected_slowdown: float  # P_old / P_new: the unavoidable part
    bottleneck_slowdown: float  # max-load ratio: what the layout costs

    def __str__(self) -> str:
        return (
            f"shrink {self.nprocs_before}->{self.nprocs_after}: "
            f"imbalance {self.before.imbalance:.3f}->{self.after.imbalance:.3f}, "
            f"bottleneck x{self.bottleneck_slowdown:.3f} "
            f"(ideal x{self.expected_slowdown:.3f})"
        )


def shrink_report(before_per_rank, after_per_rank) -> ShrinkReport:
    """Build a :class:`ShrinkReport` from per-rank loads before/after."""
    before = load_report(before_per_rank)
    after = load_report(after_per_rank)
    return ShrinkReport(
        before=before,
        after=after,
        nprocs_before=len(before.per_rank),
        nprocs_after=len(after.per_rank),
        expected_slowdown=len(before.per_rank) / len(after.per_rank),
        bottleneck_slowdown=(
            after.maximum / before.maximum if before.maximum else 1.0
        ),
    )
