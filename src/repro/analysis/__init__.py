"""Analytic cost formulas (the paper's Section 4), load-balance metrics,
and benchmark table rendering."""

from .cost_model import (
    classic_cg_iteration_time,
    csc_serial_time,
    csr_storage_words,
    dense_storage_words,
    inner_product_local_time,
    inner_product_merge_time,
    fused_cg_iteration_time,
    fused_cg_saving_per_iteration,
    inner_product_time,
    packed_allreduce_time,
    private_merge_matvec_time,
    private_storage_words,
    rowwise_matvec_time,
    saxpy_time,
    scenario1_broadcast_time,
    scenario2_comm_time,
    spmd_allgather_time,
)
from .load_balance import LoadReport, load_report, parallel_efficiency
from .report import Table, format_quantity

__all__ = [
    "saxpy_time",
    "inner_product_local_time",
    "inner_product_merge_time",
    "inner_product_time",
    "scenario1_broadcast_time",
    "scenario2_comm_time",
    "rowwise_matvec_time",
    "private_storage_words",
    "csc_serial_time",
    "private_merge_matvec_time",
    "dense_storage_words",
    "csr_storage_words",
    "packed_allreduce_time",
    "spmd_allgather_time",
    "classic_cg_iteration_time",
    "fused_cg_iteration_time",
    "fused_cg_saving_per_iteration",
    "LoadReport",
    "load_report",
    "parallel_efficiency",
    "Table",
    "format_quantity",
]
