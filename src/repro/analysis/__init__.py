"""Analytic cost formulas (the paper's Section 4), load-balance metrics,
and benchmark table rendering."""

from .cost_model import (
    csc_serial_time,
    csr_storage_words,
    dense_storage_words,
    inner_product_local_time,
    inner_product_merge_time,
    inner_product_time,
    private_merge_matvec_time,
    private_storage_words,
    rowwise_matvec_time,
    saxpy_time,
    scenario1_broadcast_time,
    scenario2_comm_time,
)
from .load_balance import LoadReport, load_report, parallel_efficiency
from .report import Table, format_quantity

__all__ = [
    "saxpy_time",
    "inner_product_local_time",
    "inner_product_merge_time",
    "inner_product_time",
    "scenario1_broadcast_time",
    "scenario2_comm_time",
    "rowwise_matvec_time",
    "private_storage_words",
    "csc_serial_time",
    "private_merge_matvec_time",
    "dense_storage_words",
    "csr_storage_words",
    "LoadReport",
    "load_report",
    "parallel_efficiency",
    "Table",
    "format_quantity",
]
