"""The paper's closed-form cost expressions (Section 4), verbatim.

Every formula the evaluation states is encoded here once, so benchmarks
compare simulator measurements against *these* functions rather than
re-deriving them:

* SAXPY: "can be performed in O(n/N_P) time on any architecture";
* inner product: "O(n/N_P) time for the local phase ... on a hypercube
  architecture it [the merge] is done in t_start_up * log N_P time";
* Scenario 1's all-to-all broadcast: "takes
  t_start_up * log N_P + t_comm * n/N_P time if a tree-like broadcasting
  mechanism is used";
* Scenario 2: "the communication time ... is the same as the communication
  time for the global broadcast used in Scenario 1";
* the PRIVATE extension's storage: "N_P temporary vectors each of length
  n" -- "potentially unnecessary ... particularly if n >> N_P".

All times are produced for a given :class:`~repro.machine.CostModel`.
"""

from __future__ import annotations

import math

from ..machine.costmodel import CostModel

__all__ = [
    "saxpy_time",
    "inner_product_local_time",
    "inner_product_merge_time",
    "inner_product_time",
    "scenario1_broadcast_time",
    "scenario2_comm_time",
    "rowwise_matvec_time",
    "private_storage_words",
    "csc_serial_time",
    "private_merge_matvec_time",
    "dense_storage_words",
    "csr_storage_words",
    "packed_allreduce_time",
    "spmd_allgather_time",
    "classic_cg_iteration_time",
    "fused_cg_iteration_time",
    "fused_cg_saving_per_iteration",
]


def _chunk(n: int, nprocs: int) -> float:
    """``ceil(n / N_P)`` -- the per-processor share of an n-vector."""
    return float(-(-n // nprocs))


def saxpy_time(n: int, nprocs: int, cost: CostModel) -> float:
    """O(n/N_P): two flops per local element, zero communication."""
    return 2.0 * _chunk(n, nprocs) * cost.t_flop


def inner_product_local_time(n: int, nprocs: int, cost: CostModel) -> float:
    """The local multiply-add phase: O(n/N_P)."""
    return 2.0 * _chunk(n, nprocs) * cost.t_flop


def inner_product_merge_time(nprocs: int, cost: CostModel) -> float:
    """The hypercube merge: ``t_start_up * log N_P``."""
    if nprocs <= 1:
        return 0.0
    return cost.t_startup * math.log2(nprocs)


def inner_product_time(n: int, nprocs: int, cost: CostModel) -> float:
    """Local phase plus hypercube merge."""
    return inner_product_local_time(n, nprocs, cost) + inner_product_merge_time(
        nprocs, cost
    )


def scenario1_broadcast_time(n: int, nprocs: int, cost: CostModel) -> float:
    """The paper's all-to-all broadcast bound for replicating ``p``:

    ``t_start_up * log N_P + t_comm * n / N_P``
    (messages of ``n/N_P`` vector elements among ``N_P`` processors with a
    tree-like broadcast).
    """
    if nprocs <= 1:
        return 0.0
    return cost.t_startup * math.log2(nprocs) + cost.t_comm * _chunk(n, nprocs)


def scenario2_comm_time(n: int, nprocs: int, cost: CostModel) -> float:
    """Scenario 2's claim: same as Scenario 1's broadcast.

    "Hence, it is not possible to reduce the communication time if the
    matrix is partitioned into regular stripes either in a row-wise or
    column-wise fashion."
    """
    return scenario1_broadcast_time(n, nprocs, cost)


def rowwise_matvec_time(
    n: int, nnz: int, nprocs: int, cost: CostModel
) -> float:
    """Scenario-1 sparse mat-vec estimate: broadcast + balanced local work.

    Local phase: 2 flops per nonzero, nonzeros assumed evenly spread.
    """
    return scenario1_broadcast_time(n, nprocs, cost) + 2.0 * _chunk(
        nnz, nprocs
    ) * cost.t_flop


def private_storage_words(n: int, nprocs: int) -> float:
    """PRIVATE(q(n)) storage: "N_P temporary vectors each of length n"."""
    return float(n) * float(nprocs)


def csc_serial_time(nnz: int, cost: CostModel) -> float:
    """Lower bound for the unparallelised CSC loop: all 2*nnz flops in sequence."""
    return 2.0 * float(nnz) * cost.t_flop


def private_merge_matvec_time(
    n: int, nnz: int, nprocs: int, cost: CostModel
) -> float:
    """Privatised CSC mat-vec estimate: parallel local phase + SUM merge.

    Merge modelled as the recursive-halving reduce-scatter of an n-vector:
    ``log N_P`` start-ups plus ``(N_P-1)/N_P * n`` transfer+add words.
    """
    local = 2.0 * _chunk(nnz, nprocs) * cost.t_flop
    if nprocs <= 1:
        return local
    merge = cost.t_startup * math.ceil(math.log2(nprocs)) + (
        (nprocs - 1) / nprocs
    ) * n * (cost.t_comm + cost.t_flop)
    return local + merge


# ---------------------------------------------------------------------- #
# fused (single-reduction) CG: closed forms the E23 benchmark validates
# against both the event simulator and calibrated real processes.  These
# model the *SPMD rank programs* of repro.backend.programs exactly (the
# reduce+bcast trees of repro.machine.spmd), not the paper's idealised
# hypercube merge -- which is why they reproduce simulator elapsed times
# to the word.
# ---------------------------------------------------------------------- #


def _ceil_log2(p: int) -> int:
    return (p - 1).bit_length() if p > 1 else 0


def packed_allreduce_time(nscalars: int, nprocs: int, cost: CostModel) -> float:
    """One ``allreduce_vec`` of ``k`` packed scalars: ``2 ceil(log2 P)``
    sequential tree stages (binomial reduce + binomial broadcast), each a
    ``k``-word message::

        2 * ceil(log2 P) * (t_startup + k * t_comm)

    Packing ``k`` reductions costs ``k`` words on every stage but only
    *one* latency tree -- separate scalar allreduces pay the whole
    ``2 ceil(log2 P) * t_startup`` again per scalar, which is the entire
    case for the fused recurrence.
    """
    if nprocs <= 1:
        return 0.0
    return 2.0 * _ceil_log2(nprocs) * cost.message_time(float(nscalars))


def spmd_allgather_time(n: int, nprocs: int, cost: CostModel) -> float:
    """The gather+bcast allgather of :func:`repro.machine.spmd.allgather`.

    Gather: the root's ``ceil(log2 P)`` sequential receives carry
    ``m, 2m, ...`` words (``(P-1) m`` total); broadcast: every stage
    forwards the full ``P m``-word list.  With ``m = ceil(n/P)``::

        2 L t_startup + ((P-1) + L P) * m * t_comm,  L = ceil(log2 P)
    """
    if nprocs <= 1:
        return 0.0
    L = _ceil_log2(nprocs)
    m = _chunk(n, nprocs)
    return 2.0 * L * cost.t_startup + ((nprocs - 1) + L * nprocs) * m * cost.t_comm


def classic_cg_iteration_time(
    n: int, nnz: int, nprocs: int, cost: CostModel
) -> float:
    """One steady-state iteration of the classic two-reduction CG program.

    Allgather of ``p``, local mat-vec (``2 nnz/P`` flops), **two**
    single-scalar allreduce trees (``p.q`` and ``r.r``) and the local
    vector updates (saypx 2, dot 2, x/r 4, dot 2 = ``10 n/P`` flops).
    """
    return (
        spmd_allgather_time(n, nprocs, cost)
        + 2.0 * _chunk(nnz, nprocs) * cost.t_flop
        + 2.0 * packed_allreduce_time(1, nprocs, cost)
        + 10.0 * _chunk(n, nprocs) * cost.t_flop
    )


def fused_cg_iteration_time(
    n: int, nnz: int, nprocs: int, cost: CostModel
) -> float:
    """One steady-state iteration of the single-reduction CG program.

    Same allgather and mat-vec as classic, **one** two-scalar packed
    allreduce (``gamma``/``delta`` together), and the Chronopoulos--Gear
    recurrence's local updates (x/r 4, two dots 4, p/s 4 = ``12 n/P``
    flops -- the recurrence maintains the extra vector ``s = A p``).
    """
    return (
        spmd_allgather_time(n, nprocs, cost)
        + 2.0 * _chunk(nnz, nprocs) * cost.t_flop
        + packed_allreduce_time(2, nprocs, cost)
        + 12.0 * _chunk(n, nprocs) * cost.t_flop
    )


def fused_cg_saving_per_iteration(n: int, nprocs: int, cost: CostModel) -> float:
    """Modelled per-iteration gain of fusing the two reductions into one::

        2 ceil(log2 P) t_startup  -  2 (n/P) t_flop

    One whole latency tree is saved (the second word rides free modulo
    ``2 L t_comm``, which cancels against the dropped 1-word tree), paid
    for by the two extra local flops per element of the ``s`` recurrence.
    Latency-dominated machines (large ``t_startup``, large ``P``) win;
    the formula going negative predicts exactly when fusion stops paying.
    """
    return (
        classic_cg_iteration_time(n, 0, nprocs, cost)
        - fused_cg_iteration_time(n, 0, nprocs, cost)
    )


def dense_storage_words(n: int) -> float:
    """Dense n x n storage."""
    return float(n) * float(n)


def csr_storage_words(n: int, nnz: int) -> float:
    """CSR/CSC trio storage: values + indices + pointer."""
    return 2.0 * float(nnz) + float(n) + 1.0
