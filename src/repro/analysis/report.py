"""Fixed-width table rendering for benchmark output.

The benchmark harness prints paper-style tables (measured vs model,
strategy comparisons, sweeps over N_P) through :class:`Table`, keeping all
formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

__all__ = ["Table", "format_quantity"]

Cell = Union[str, int, float]


def format_quantity(value: Cell, precision: int = 4) -> str:
    """Human-friendly numeric formatting (SI-free, fixed significant digits)."""
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "nan"
    if value == 0:
        return "0"
    if abs(value) >= 1e5 or abs(value) < 1e-3:
        return f"{value:.{precision - 1}e}"
    return f"{value:.{precision}g}"


class Table:
    """Append rows, then render right-aligned fixed-width text."""

    def __init__(self, columns: Sequence[str], title: str = ""):
        self.columns = list(columns)
        self.title = title
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([format_quantity(c) for c in cells])

    def extend(self, rows: Iterable[Sequence[Cell]]) -> None:
        for row in rows:
            self.add_row(*row)

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows))
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(c.rjust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:
        print(self.render())
        print()
