"""Direct-method baseline: dense Gaussian elimination.

The paper's framing: dense problems (computational electromagnetics) "can
be solved using direct methods such as Gaussian elimination, whereas ...
Conjugate Gradient and other iterative methods are preferred over simple
Gaussian elimination when A is very large and sparse".  This wrapper runs
the dense LU of :func:`~repro.core.reference.gaussian_elimination` and
reports the operation count next to a CG solve's, so examples can show the
crossover.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.reference import cg_reference, gaussian_elimination
from ..core.result import SolveResult
from ..core.stopping import StoppingCriterion
from ..sparse.convert import as_matrix

__all__ = ["direct_solve", "direct_vs_cg_flops"]


def direct_solve(matrix, b: np.ndarray) -> SolveResult:
    """Solve by dense LU; flops recorded in ``extras['flops']``."""
    x, flops = gaussian_elimination(matrix, b)
    from ..core.result import ConvergenceHistory

    history = ConvergenceHistory()
    A = as_matrix(matrix)
    history.append(float(np.linalg.norm(np.asarray(b) - A.matvec(x))))
    return SolveResult(
        x=x,
        converged=True,
        iterations=1,
        history=history,
        solver="gaussian_elimination",
        extras={"flops": flops},
    )


def direct_vs_cg_flops(
    matrix, b: np.ndarray, criterion: Optional[StoppingCriterion] = None
) -> dict:
    """Operation counts of dense LU vs CG on the same system.

    Returns a dict with ``ge_flops``, ``cg_flops`` (approximate:
    ``iterations * (2 nnz + 10 n)``) and the winner -- the quantitative
    form of the paper's "preferred when A is very large and sparse".
    """
    A = as_matrix(matrix)
    _, ge_flops = gaussian_elimination(A, b)
    res = cg_reference(A, b, criterion=criterion)
    n = A.nrows
    cg_flops = res.iterations * (2.0 * A.nnz + 10.0 * n)
    return {
        "n": n,
        "nnz": A.nnz,
        "ge_flops": ge_flops,
        "cg_iterations": res.iterations,
        "cg_flops": cg_flops,
        "cg_wins": bool(cg_flops < ge_flops),
        "ratio": ge_flops / cg_flops if cg_flops else float("inf"),
    }
