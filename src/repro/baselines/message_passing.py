"""Explicit message-passing SPMD conjugate gradient.

The comparator the paper holds HPF against: "If we used the
message-passing SPMD model, then each processor would have a private copy
of the vector q which would be used to gather the partial results locally,
and a merge operation would be employed at the end" -- and, for the CSC
loop, "an explicit message-passing program is able to do that
[parallelise]".

Each rank runs a generator program on the discrete-event
:class:`~repro.machine.scheduler.Scheduler`: it owns a block of matrix rows
and the matching vector blocks, exchanges data only through explicit
``Send``/``Recv``-based collectives (:mod:`~repro.machine.spmd`), and
charges its local flops.  Benchmark E15 compares the resulting
communication volume and simulated time against the HPF runtime's CG --
the paper's portability-vs-control trade-off, quantified.

When a :class:`~repro.machine.faults.FaultPlan` (or a
:class:`~repro.core.resilience.ResilienceConfig`) is supplied, the solver
switches to a fault-tolerant execution mode: collectives run over the
stop-and-wait ARQ transport of :mod:`repro.machine.reliable`, every rank
writes a coordinated checkpoint of ``(x, r, p, rho)`` every few
iterations, a periodic sanity audit recomputes ``||b - A x||`` to catch
silent state corruption, and a rank crash triggers a rollback-restart of
the whole program from the latest complete checkpoint.  Benchmark E19
measures what that protection costs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..backend.programs import CGRankProgram
from ..hpf.distribution import Block
from ..machine import reliable as rel
from ..machine.events import Compute
from ..machine.faults import FaultPlan, RankFailedError
from ..machine.machine import Machine
from ..machine.reliable import ReliableConfig, ReliableEndpoint
from ..machine.scheduler import Scheduler
from ..sparse.convert import as_matrix
from ..core.resilience import (
    RecoveryExhaustedError,
    ResilienceConfig,
    latest_complete_checkpoint,
)
from ..core.result import ConvergenceHistory, SolveResult
from ..core.stopping import StoppingCriterion

__all__ = ["spmd_cg"]


def spmd_cg(
    machine: Machine,
    matrix,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    criterion: Optional[StoppingCriterion] = None,
    faults: Optional[FaultPlan] = None,
    resilience: Optional[ResilienceConfig] = None,
) -> SolveResult:
    """Row-block SPMD CG with hand-written message passing.

    Every rank holds ``ceil(n/P)`` rows of A (CSR), its blocks of the
    vectors, and performs per iteration: one allgather of ``p`` (the
    Scenario-1 broadcast), one local sparse mat-vec, two allreduce inner
    products and three local SAXPY-type updates -- the same pattern as the
    HPF ``csr_forall_aligned`` strategy, but built from explicit messages.

    ``faults`` injects message faults, crashes and state corruption;
    ``resilience`` tunes the recovery layer.  Either being set enables
    fault-tolerant execution; both ``None`` (the default) runs the
    original unprotected program.
    """
    A = as_matrix(matrix).to_csr()
    n = A.nrows
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise ValueError(f"b must have shape ({n},), got {b.shape}")
    crit = criterion or StoppingCriterion()
    dist = Block(n, machine.nprocs)
    x_start = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64)
    maxiter = crit.cap(n)
    indptr, indices, data = A.indptr, A.indices, A.data
    history = ConvergenceHistory()

    clock_before = machine.elapsed()
    stats_before = machine.stats.snapshot()

    fault_mode = (faults is not None and faults.enabled) or resilience is not None
    if fault_mode:
        results, extras = _run_resilient(
            machine, dist, indptr, indices, data, b, x_start, crit, maxiter,
            faults, resilience or ResilienceConfig(),
        )
    else:
        extras = None
        # the same picklable rank program the execution backends run, so
        # the simulated baseline and a real-process run are the identical
        # program text (see repro.backend.validate)
        program = CGRankProgram(A, b, x0=x0, criterion=crit, maxiter=maxiter)
        results = Scheduler(machine, tag="spmd_cg").run(program)

    x = np.concatenate([res[0] for res in results])[:n]
    residuals, converged, iterations = results[0][1], results[0][2], results[0][3]
    for rn in residuals:
        history.append(rn)
    delta = stats_before.since(machine.stats)
    return SolveResult(
        x=x,
        converged=converged,
        iterations=iterations,
        history=history,
        solver="cg",
        strategy="spmd_message_passing",
        machine_elapsed=machine.elapsed() - clock_before,
        comm={
            "messages": delta.messages,
            "words": delta.words,
            "comm_time": delta.comm_time,
            "flops": delta.flops,
        },
        extras=extras or {},
    )


def _copy_snapshot(snap):
    x, r, p, rho, rho0, bnorm2 = snap
    return x.copy(), r.copy(), p.copy(), rho, rho0, bnorm2


def _run_resilient(
    machine, dist, indptr, indices, data, b, x_start, crit, maxiter,
    faults, cfg,
):
    """Fault-tolerant SPMD CG: reliable transport + checkpoint recovery.

    The checkpoint ``store`` is shared across attempts (in a real system:
    neighbour memory or stable storage) and keyed ``iteration -> {rank:
    snapshot}``; only checkpoints every rank finished writing are restore
    candidates, so a crash mid-checkpoint cannot mix iterations.
    """
    plan = faults if (faults is not None and faults.enabled) else None
    rcfg = cfg.reliable
    if rcfg is None:
        # first ack wait: generous multiple of one message round-trip
        rcfg = ReliableConfig(
            base_timeout=20.0 * machine.cost.t_startup
            + 8.0 * dist.n * machine.cost.t_comm
        )
    store = {}
    telemetry = {}
    counters = {
        "rollbacks": 0,
        "crash_restarts": 0,
        "checkpoints": 0,
        "audits": 0,
        "refreshes": 0,
        "steps": 0,
    }

    def program(rank: int, size: int):
        ep = ReliableEndpoint(rank, rcfg, telemetry=telemetry)
        lo, hi = dist.local_range(rank)
        seg = slice(int(indptr[lo]), int(indptr[hi]))
        local_nnz = int(indptr[hi] - indptr[lo])
        row_ids = (
            np.repeat(np.arange(lo, hi, dtype=np.int64), np.diff(indptr[lo : hi + 1]))
            - lo
        )
        bb = b[lo:hi].copy()

        def matvec(v_full):
            out = np.zeros(hi - lo)
            np.add.at(out, row_ids, data[seg] * v_full[indices[seg]])
            return out

        def fresh_state():
            x = x_start[lo:hi].copy()
            if np.any(x_start):
                blocks = yield from rel.allgather(ep, rank, size, x)
                ax = matvec(np.concatenate(blocks))
                yield Compute(2.0 * local_nnz)
                r = bb - ax
            else:
                r = bb.copy()
            p = r.copy()
            rho = yield from rel.allreduce_sum(ep, rank, size, float(r @ r))
            yield Compute(2.0 * r.size)
            return 0, x, r, p, rho, rho

        # probe for a checkpoint *before* reducing ||b||: a restart already
        # has bnorm2 in its snapshot, and replaying the reduction here used
        # to shift every message tag/count of the recovered run (tag 13/14
        # is reserved for this one-shot reduction so a counted run can pin
        # that it happens exactly once across any number of restarts)
        ck = latest_complete_checkpoint(store, size)
        if ck is None:
            bnorm2 = yield from rel.allreduce_sum(
                ep, rank, size, float(bb @ bb), tag=13
            )
            yield Compute(2.0 * bb.size)
            k, x, r, p, rho, rho0 = yield from fresh_state()
        else:
            k, snap = ck
            x, r, p, rho, rho0, bnorm2 = _copy_snapshot(snap[rank])
            yield Compute(3.0 * x.size)  # checkpoint read-back
        bnorm = float(np.sqrt(bnorm2))
        residuals = [float(np.sqrt(max(0.0, rho)))]
        if k == 0 and crit.satisfied(residuals[-1], bnorm):
            return x, residuals, True, 0

        converged = False
        iterations = k
        my_rollbacks = 0
        last_true = None
        stagnant_audits = 0
        refreshed = False
        while k < maxiter:
            k += 1
            if rank == 0:
                counters["steps"] += 1
            if k > 1 and not refreshed:
                beta = rho / rho0
                p = beta * p + r  # saypx
                yield Compute(2.0 * p.size)
            refreshed = False
            blocks = yield from rel.allgather(ep, rank, size, p)
            q = matvec(np.concatenate(blocks))
            yield Compute(2.0 * local_nnz)
            pq = yield from rel.allreduce_sum(ep, rank, size, float(p @ q))
            yield Compute(2.0 * p.size)
            if pq == 0.0:
                break
            alpha = rho / pq
            x += alpha * p
            r -= alpha * q
            yield Compute(4.0 * p.size)
            if plan is not None:
                corr = plan.take_state_corruption(k, rank)
                if corr is not None:
                    vec = {"x": x, "r": r, "p": p}[corr.target]
                    if vec.size:
                        i = plan.draw_index(vec.size)
                        vec[i] += (1.0 + abs(vec[i])) * corr.scale
            rho0 = rho
            rho = yield from rel.allreduce_sum(ep, rank, size, float(r @ r))
            yield Compute(2.0 * r.size)
            residuals.append(float(np.sqrt(max(0.0, rho))))
            iterations = k
            stopping = crit.satisfied(residuals[-1], bnorm)
            need_ckpt = k % cfg.checkpoint_interval == 0
            if stopping or need_ckpt or k % cfg.sanity_interval == 0:
                if rank == 0:
                    counters["audits"] += 1
                blocks = yield from rel.allgather(ep, rank, size, x)
                ax = matvec(np.concatenate(blocks))
                yield Compute(2.0 * local_nnz)
                part = float(((bb - ax) ** 2).sum())
                yield Compute(3.0 * bb.size)
                true2 = yield from rel.allreduce_sum(ep, rank, size, part)
                true_norm = float(np.sqrt(max(0.0, true2)))
                if abs(true_norm - residuals[-1]) > cfg.sanity_rtol * max(
                    bnorm, 1.0e-300
                ):
                    # every rank compares the same allreduced values, so the
                    # rollback decision is coordinated without extra messages
                    if my_rollbacks >= cfg.max_restarts:
                        raise RecoveryExhaustedError(
                            f"rank {rank}: sanity audit failed at iteration "
                            f"{k} (recurrence {residuals[-1]:.3e} vs true "
                            f"{true_norm:.3e}) after {my_rollbacks} rollbacks"
                        )
                    my_rollbacks += 1
                    if rank == 0:
                        counters["rollbacks"] += 1
                    ck = latest_complete_checkpoint(store, size)
                    if ck is None:
                        k, x, r, p, rho, rho0 = yield from fresh_state()
                    else:
                        k, snap = ck
                        x, r, p, rho, rho0, _ = _copy_snapshot(snap[rank])
                        yield Compute(3.0 * x.size)
                    iterations = k
                    last_true = None
                    stagnant_audits = 0
                    continue
                if (
                    not stopping
                    and last_true is not None
                    and true_norm > cfg.stagnation_factor * last_true
                ):
                    stagnant_audits += 1
                else:
                    stagnant_audits = 0
                last_true = true_norm
                if stagnant_audits >= cfg.stagnation_patience:
                    # invariant holds but no progress for several audits:
                    # a corrupted search direction is invisible to the
                    # audit -- flush it (plain CG restart)
                    stagnant_audits = 0
                    p = r.copy()
                    refreshed = True
                    if rank == 0:
                        counters["refreshes"] += 1
                if need_ckpt:
                    store.setdefault(k, {})[rank] = (
                        x.copy(), r.copy(), p.copy(), rho, rho0, bnorm2,
                    )
                    yield Compute(3.0 * x.size)  # checkpoint write
                    if len(store[k]) == size:
                        counters["checkpoints"] += 1
                        for old in [kk for kk in store if kk < k]:
                            del store[old]
            if stopping:
                converged = True
                break
        return x, residuals, converged, iterations

    attempts = 0
    while True:
        try:
            results = Scheduler(machine, tag="spmd_cg", faults=plan).run(program)
            break
        except RankFailedError:
            attempts += 1
            if attempts > cfg.max_restarts:
                raise
            counters["crash_restarts"] += 1
            # failover downtime: detect, reassign the rank, reload checkpoints
            machine.charge_comm_interval(
                "restart", 0, 0.0, cfg.restart_time, tag="resilience"
            )

    extras = {
        "resilience": dict(
            counters,
            extra_iterations=counters["steps"] - results[0][3],
        ),
        "reliable": dict(telemetry),
    }
    if plan is not None:
        extras["fault_stats"] = plan.stats.as_dict()
    return results, extras
