"""Explicit message-passing SPMD conjugate gradient.

The comparator the paper holds HPF against: "If we used the
message-passing SPMD model, then each processor would have a private copy
of the vector q which would be used to gather the partial results locally,
and a merge operation would be employed at the end" -- and, for the CSC
loop, "an explicit message-passing program is able to do that
[parallelise]".

Each rank runs a generator program on the discrete-event
:class:`~repro.machine.scheduler.Scheduler`: it owns a block of matrix rows
and the matching vector blocks, exchanges data only through explicit
``Send``/``Recv``-based collectives (:mod:`~repro.machine.spmd`), and
charges its local flops.  Benchmark E15 compares the resulting
communication volume and simulated time against the HPF runtime's CG --
the paper's portability-vs-control trade-off, quantified.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..hpf.distribution import Block
from ..machine import spmd
from ..machine.events import Compute
from ..machine.machine import Machine
from ..machine.scheduler import Scheduler
from ..sparse.convert import as_matrix
from ..core.result import ConvergenceHistory, SolveResult
from ..core.stopping import StoppingCriterion

__all__ = ["spmd_cg"]


def spmd_cg(
    machine: Machine,
    matrix,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    criterion: Optional[StoppingCriterion] = None,
) -> SolveResult:
    """Row-block SPMD CG with hand-written message passing.

    Every rank holds ``ceil(n/P)`` rows of A (CSR), its blocks of the
    vectors, and performs per iteration: one allgather of ``p`` (the
    Scenario-1 broadcast), one local sparse mat-vec, two allreduce inner
    products and three local SAXPY-type updates -- the same pattern as the
    HPF ``csr_forall_aligned`` strategy, but built from explicit messages.
    """
    A = as_matrix(matrix).to_csr()
    n = A.nrows
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise ValueError(f"b must have shape ({n},), got {b.shape}")
    crit = criterion or StoppingCriterion()
    dist = Block(n, machine.nprocs)
    x_start = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64)
    maxiter = crit.cap(n)
    indptr, indices, data = A.indptr, A.indices, A.data
    history = ConvergenceHistory()

    clock_before = machine.elapsed()
    stats_before = machine.stats.snapshot()

    def program(rank: int, size: int):
        lo, hi = dist.local_range(rank)
        local_rows = slice(lo, hi)
        seg = slice(int(indptr[lo]), int(indptr[hi]))
        local_nnz = int(indptr[hi] - indptr[lo])
        row_ids = (
            np.repeat(np.arange(lo, hi, dtype=np.int64), np.diff(indptr[lo : hi + 1]))
            - lo
        )
        x = x_start[local_rows].copy()
        bb = b[local_rows].copy()

        # r = b - A x0 (one mat-vec only if x0 != 0)
        if np.any(x_start):
            x_full = yield from spmd.allgather(rank, size, x)
            x_full = np.concatenate(x_full)
            ax = np.zeros(hi - lo)
            np.add.at(ax, row_ids, data[seg] * x_full[indices[seg]])
            yield Compute(2.0 * local_nnz)
            r = bb - ax
        else:
            r = bb.copy()
        p = r.copy()

        bnorm2 = yield from spmd.allreduce_sum(rank, size, float(bb @ bb))
        yield Compute(2.0 * bb.size)
        bnorm = np.sqrt(bnorm2)
        rho = yield from spmd.allreduce_sum(rank, size, float(r @ r))
        yield Compute(2.0 * r.size)
        residuals = [float(np.sqrt(max(0.0, rho)))]
        if crit.satisfied(residuals[-1], bnorm):
            return x, residuals, True, 0

        converged = False
        iterations = 0
        for k in range(1, maxiter + 1):
            if k > 1:
                beta = rho / rho0
                p = beta * p + r  # saypx
                yield Compute(2.0 * p.size)
            # all-to-all broadcast of p (the Scenario-1 communication)
            blocks = yield from spmd.allgather(rank, size, p)
            p_full = np.concatenate(blocks)
            q = np.zeros(hi - lo)
            np.add.at(q, row_ids, data[seg] * p_full[indices[seg]])
            yield Compute(2.0 * local_nnz)
            pq = yield from spmd.allreduce_sum(rank, size, float(p @ q))
            yield Compute(2.0 * p.size)
            if pq == 0.0:
                break
            alpha = rho / pq
            x += alpha * p
            r -= alpha * q
            yield Compute(4.0 * p.size)
            rho0 = rho
            rho = yield from spmd.allreduce_sum(rank, size, float(r @ r))
            yield Compute(2.0 * r.size)
            residuals.append(float(np.sqrt(max(0.0, rho))))
            iterations = k
            if crit.satisfied(residuals[-1], bnorm):
                converged = True
                break
        return x, residuals, converged, iterations

    results = Scheduler(machine, tag="spmd_cg").run(program)
    x = np.concatenate([res[0] for res in results])[:n]
    residuals, converged, iterations = results[0][1], results[0][2], results[0][3]
    for rn in residuals:
        history.append(rn)
    delta = stats_before.since(machine.stats)
    return SolveResult(
        x=x,
        converged=converged,
        iterations=iterations,
        history=history,
        solver="cg",
        strategy="spmd_message_passing",
        machine_elapsed=machine.elapsed() - clock_before,
        comm={
            "messages": delta.messages,
            "words": delta.words,
            "comm_time": delta.comm_time,
            "flops": delta.flops,
        },
    )
