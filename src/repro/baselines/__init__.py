"""Comparator implementations: explicit message-passing CG and dense LU."""

from .direct import direct_solve, direct_vs_cg_flops
from .message_passing import spmd_cg

__all__ = ["spmd_cg", "direct_solve", "direct_vs_cg_flops"]
