"""FORALL semantics: full-RHS-before-LHS evaluation and many-to-one checks.

HPF's FORALL "semantics require that all the right-hand sides should be
computed before an assignment to the left-hand sides be done.  An
accumulation operation ... is not allowed within the FORALL body."
(Section 5.1.)

:func:`forall` implements the legal CG use (Figure 2): one value computed
per index ``j``, assigned to ``q(j)``, with a sequential inner DO allowed
inside the body.  :func:`forall_indexed` implements the general indexed
form ``FORALL(k) out(target(k)) = value(k)`` and raises
:class:`~repro.hpf.errors.ManyToOneAssignmentError` when two iterations hit
one element -- exactly why the CSC scatter loop cannot be written as a
FORALL, which motivates the PRIVATE/MERGE extension.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

import numpy as np

from .array import DistributedArray
from .errors import ManyToOneAssignmentError

__all__ = ["forall", "forall_indexed"]

Body = Callable[[int], float]


def forall(
    out: DistributedArray,
    body: Body,
    flops_per_iteration: Union[float, Callable[[int], float]] = 0.0,
) -> DistributedArray:
    """``FORALL (j = 1:n) out(j) = body(j)`` under owner-computes.

    Each iteration ``j`` executes on the owner of ``out(j)``; all values
    are materialised before any assignment (temporaries first), preserving
    FORALL's RHS-before-LHS semantics even if ``body`` reads ``out``.

    Parameters
    ----------
    out:
        Target distributed array; its distribution partitions the index set
        ("the index set of the FORALL in the outer loop is partitioned
        among the processors").
    body:
        Callable computing the scalar value of iteration ``j``.  May contain
        an arbitrary sequential inner loop, as in Figure 2's sparse mat-vec.
    flops_per_iteration:
        Work charged to the executing rank per iteration (constant or
        callable of ``j``).
    """
    machine = out.machine
    flops_fn = (
        flops_per_iteration
        if callable(flops_per_iteration)
        else (lambda j, c=float(flops_per_iteration): c)
    )
    staged = []
    for r in range(machine.nprocs):
        idx = out.distribution.local_indices_cached(r)
        values = np.empty(idx.size, dtype=out.dtype)
        flops = 0.0
        for pos, j in enumerate(idx):
            values[pos] = body(int(j))
            flops += flops_fn(int(j))
        staged.append(values)
        machine.charge_compute(r, flops)
    # assignment phase: only after every RHS is computed
    for r in range(machine.nprocs):
        out.local(r)[:] = staged[r]
    return out


def forall_indexed(
    out: DistributedArray,
    indices: Sequence[int],
    target: Callable[[int], int],
    value: Callable[[int], float],
    flops_per_iteration: float = 0.0,
    combine: Optional[str] = None,
) -> DistributedArray:
    """General indexed FORALL: ``FORALL(k in indices) out(target(k)) = value(k)``.

    Enforces the language rule: if two iterations assign the same element,
    :class:`ManyToOneAssignmentError` is raised (unless ``combine`` is
    given, which is *not legal HPF-1* -- callers use it only to show what
    the proposed extension would permit).
    """
    machine = out.machine
    idx = np.asarray(list(indices), dtype=np.int64)
    targets = np.fromiter((target(int(k)) for k in idx), dtype=np.int64, count=idx.size)
    values = np.fromiter((value(int(k)) for k in idx), dtype=np.float64, count=idx.size)
    unique_targets, counts = (
        np.unique(targets, return_counts=True) if idx.size else (targets, targets)
    )
    if idx.size and (counts > 1).any():
        if combine is None:
            clashing = unique_targets[counts > 1][:5].tolist()
            raise ManyToOneAssignmentError(
                "FORALL iterations assign elements "
                f"{clashing}{'...' if (counts > 1).sum() > 5 else ''} more than "
                "once; accumulation is not allowed within a FORALL body "
                "(HPF-1, Section 5.1 of the paper)"
            )
        if combine != "+":
            raise ValueError(f"unsupported combine operation {combine!r}")
    # owner-computes: charge each target's owner for its iterations
    if idx.size:
        owners = out.distribution.owners(targets)
        for r in range(machine.nprocs):
            machine.charge_compute(
                r, flops_per_iteration * float(np.count_nonzero(owners == r))
            )
    # full-RHS-first staging, then assignment/accumulation
    staged = out.to_global()
    if combine == "+":
        np.add.at(staged, targets, values)
    else:
        staged[targets] = values
    for r in range(machine.nprocs):
        out.local(r)[:] = staged[out.distribution.local_indices_cached(r)]
    return out
