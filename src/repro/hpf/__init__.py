"""HPF-1 language runtime: distributions, alignment, distributed arrays,
FORALL/INDEPENDENT semantics, intrinsics, and the directive front-end.

This package models what an HPF compiler and its runtime do with the
paper's directives: data layouts (:mod:`~repro.hpf.distribution`), the
owner-computes array execution (:class:`DistributedArray`), the language
rules that *reject* the CSC scatter loop (:mod:`~repro.hpf.forall`,
:mod:`~repro.hpf.independent`), and a parser accepting the paper's
``!HPF$`` / ``!EXT$`` lines verbatim (:mod:`~repro.hpf.directives`,
applied by :class:`HpfNamespace`).
"""

from .align import AlignmentGroup, aligned
from .array import DistributedArray, DistributedDenseMatrix
from .descriptor import DistributedArrayDescriptor
from .directives import parse_directive, parse_directives
from .distribution import (
    Block,
    BlockK,
    Cyclic,
    CyclicK,
    Distribution,
    IrregularBlock,
    Replicated,
    block_boundaries,
)
from .errors import (
    AlignmentError,
    BernsteinViolationError,
    DirectiveSemanticError,
    DirectiveSyntaxError,
    DistributionError,
    HpfError,
    ManyToOneAssignmentError,
    MappingError,
)
from .forall import forall, forall_indexed
from .independent import AccessLog, RecordingArray, check_independent, independent_do
from .intrinsics import dot_product, maxval, minval, sum_, sum_private_copies
from .processors import ProcessorArrangement
from .program import HpfNamespace

__all__ = [
    "DistributedArray",
    "DistributedDenseMatrix",
    "DistributedArrayDescriptor",
    "AlignmentGroup",
    "aligned",
    "Distribution",
    "Block",
    "BlockK",
    "Cyclic",
    "CyclicK",
    "Replicated",
    "IrregularBlock",
    "block_boundaries",
    "ProcessorArrangement",
    "HpfNamespace",
    "parse_directive",
    "parse_directives",
    "forall",
    "forall_indexed",
    "independent_do",
    "check_independent",
    "RecordingArray",
    "AccessLog",
    "dot_product",
    "sum_",
    "maxval",
    "minval",
    "sum_private_copies",
    "HpfError",
    "DistributionError",
    "AlignmentError",
    "MappingError",
    "ManyToOneAssignmentError",
    "BernsteinViolationError",
    "DirectiveSyntaxError",
    "DirectiveSemanticError",
]
